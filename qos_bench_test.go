package typhoon

// Multi-tenant QoS benchmarks. BenchmarkQoS/Contention runs the paper's
// noisy-neighbour scenario end to end — an acked guaranteed tenant sharing
// a 2 MB/s QoS-enabled fabric with a best-effort flood — and reports the
// guaranteed tenant's p99 complete latency under contention plus how hard
// the flood was policed. BenchmarkQoS/FastPathQoS guards the data-plane
// budget: the cached forwarding path with meters and egress queues active
// must stay allocation-free per frame.

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"typhoon/internal/core"
	"typhoon/internal/openflow"
	"typhoon/internal/packet"
	"typhoon/internal/switchfabric"
	"typhoon/internal/topology"
	"typhoon/internal/tuple"
	"typhoon/internal/workload"
)

type qosRun struct {
	GoldP50Ms      float64 `json:"goldP50Ms"`
	GoldP99Ms      float64 `json:"goldP99Ms"`
	GoldCompleted  uint64  `json:"goldTuplesCompleted"`
	MeterDrops     uint64  `json:"floodMeterDrops"`
	FloodRateBps   uint64  `json:"floodAllocatedBps"`
	ContentionSecs float64 `json:"contentionSecs"`
}

// benchQoSContention runs one contention scenario per iteration and
// returns the per-run series for the BENCH_qos.json artifact.
func benchQoSContention(b *testing.B) []qosRun {
	hosts := []string{"h1", "h2"}
	var runs []qosRun
	for i := 0; i < b.N; i++ {
		c, err := core.NewCluster(core.Config{
			Mode: core.ModeTyphoon, Hosts: hosts, DefaultBatchSize: 100,
			QoS: core.QoSConfig{Enable: true, LinkCapacityBps: 2 << 20},
		})
		if err != nil {
			b.Fatal(err)
		}
		c.Env.Set(workload.EnvStats, workload.NewStats(time.Second))
		c.Env.Set(workload.EnvConfig, workload.NewConfig())

		gold := topology.NewBuilder("bench-qos-gold", 21)
		gold.Ackers(1)
		gold.Source("src", workload.LogicSeqSource, 1)
		gold.Node("sink", workload.LogicSeqChecker, 1).ShuffleFrom("src")
		gold.QoS(topology.QoSGuaranteed, 256<<10)
		gl, err := gold.Build()
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Submit(gl, 15*time.Second); err != nil {
			b.Fatal(err)
		}
		src := waitSrc(b, c, "bench-qos-gold")
		deadline := time.Now().Add(15 * time.Second)
		for src.StatsSnapshot().Completed < 200 {
			if time.Now().After(deadline) {
				b.Fatal("guaranteed tenant never reached speed")
			}
			time.Sleep(5 * time.Millisecond)
		}

		flood := topology.NewBuilder("bench-qos-flood", 22)
		flood.Source("fsrc", workload.LogicSeqSource, 2)
		flood.Node("void", workload.LogicSink, 2).ShuffleFrom("fsrc")
		flood.QoS(topology.QoSBestEffort, 0)
		fl, err := flood.Build()
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Submit(fl, 15*time.Second); err != nil {
			b.Fatal(err)
		}
		meterDrops := func() uint64 {
			var n uint64
			for _, h := range hosts {
				n += c.Host(h).Switch.MeterDrops()
			}
			return n
		}
		// Contention starts once the allocator's meters police the flood.
		deadline = time.Now().Add(20 * time.Second)
		for meterDrops() == 0 {
			if time.Now().After(deadline) {
				b.Fatal("flood was never policed")
			}
			time.Sleep(10 * time.Millisecond)
		}
		t0 := time.Now()
		time.Sleep(2 * time.Second)

		r := qosRun{
			GoldP50Ms:      float64(src.CompleteLatencies.Quantile(0.5).Microseconds()) / 1e3,
			GoldP99Ms:      float64(src.CompleteLatencies.Quantile(0.99).Microseconds()) / 1e3,
			GoldCompleted:  src.StatsSnapshot().Completed,
			MeterDrops:     meterDrops(),
			ContentionSecs: time.Since(t0).Seconds(),
		}
		for _, t := range c.QoSStatus().Topologies {
			if t.Topology == "bench-qos-flood" {
				for _, rate := range t.HostRates {
					r.FloodRateBps += rate
				}
			}
		}
		runs = append(runs, r)
		c.Stop()
	}
	var p99, drops float64
	for _, r := range runs {
		p99 += r.GoldP99Ms
		drops += float64(r.MeterDrops)
	}
	b.ReportMetric(p99/float64(len(runs)), "gold-p99-ms")
	b.ReportMetric(drops/float64(len(runs)), "meter-drops")
	return runs
}

// runSwitchForwardQoS mirrors runSwitchForward with the full QoS data plane
// armed: three-class egress queues on every port and a high-rate meter on
// the matching rule, so every frame pays token-bucket accounting and DRR
// scheduling on the cached path without being dropped.
func runSwitchForwardQoS(n int) (fps, allocsPerOp float64) {
	sw := switchfabric.New("bench", 1, switchfabric.Options{
		RingCapacity: 8192,
		EgressQueues: []switchfabric.QueueClass{
			{Name: "guaranteed", Weight: 8},
			{Name: "burstable", Weight: 4},
			{Name: "best-effort", Weight: 1},
		},
	})
	sw.Start()
	defer sw.Stop()
	a1, a2 := packet.WorkerAddr(1, 1), packet.WorkerAddr(1, 2)
	p1, _ := sw.AddPort("w1", a1)
	p2, _ := sw.AddPort("w2", a2)
	// A meter generous enough to never drop: the bench measures the
	// accounting cost, not policing.
	_ = sw.ApplyMeterMod(openflow.MeterMod{
		Command: openflow.MeterAdd, MeterID: 1,
		RateBps: 1 << 40, BurstBytes: 1 << 30,
	})
	fm := openflow.FlowMod{
		Command: openflow.FlowAdd, Priority: 100,
		Match: openflow.Match{
			Fields: openflow.FieldInPort | openflow.FieldDlSrc | openflow.FieldDlDst | openflow.FieldEtherType,
			InPort: p1.No(), DlSrc: a1, DlDst: a2, EtherType: packet.EtherType,
		},
		Actions: []openflow.Action{openflow.SetQueue(1), openflow.Output(p2.No())},
	}
	fm.Meter = 1
	_ = sw.ApplyFlowMod(fm)
	frame := packet.EncodeTuples(a2, a1, [][]byte{tuple.Encode(tuple.New(tuple.Int(1)))})
	stop := make(chan struct{})
	done := make(chan struct{}, 1)
	go drainPort(p2, stop, done)
	processed := func() uint64 {
		for _, ps := range sw.PortStatsSnapshot() {
			if ps.PortNo == p1.No() {
				return ps.RxPackets
			}
		}
		return 0
	}
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	t0 := time.Now()
	for i := 0; i < n; i++ {
		for !p1.WriteFrame(frame) {
			time.Sleep(10 * time.Microsecond)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for processed() < uint64(n) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&ms1)
	close(stop)
	<-done
	return float64(n) / elapsed.Seconds(), float64(ms1.Mallocs-ms0.Mallocs) / float64(n)
}

// BenchmarkQoS bundles the multi-tenant QoS evaluation. With BENCH_JSON
// set in the environment, the contention series and fast-path figures are
// written to that file (CI uploads BENCH_qos.json as an artifact).
func BenchmarkQoS(b *testing.B) {
	var runs []qosRun
	b.Run("Contention", func(b *testing.B) {
		runs = benchQoSContention(b)
	})
	var fps, allocs float64
	b.Run("FastPathQoS", func(b *testing.B) {
		fps, allocs = runSwitchForwardQoS(b.N)
		b.ReportMetric(fps, "frames/s")
		b.ReportMetric(allocs, "allocs/frame")
	})
	if path := os.Getenv("BENCH_JSON"); path != "" {
		blob, err := json.MarshalIndent(map[string]any{
			"benchmark": "BenchmarkQoS",
			"runs":      runs,
			"fastPath": map[string]float64{
				"framesPerSec":   fps,
				"allocsPerFrame": allocs,
			},
		}, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			b.Fatal(err)
		}
	}
}

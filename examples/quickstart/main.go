// Quickstart: the word-count topology of the paper's Fig 2 running on a
// two-host Typhoon cluster, written against the public API only.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"typhoon"
)

var words = strings.Fields("the quick brown fox jumps over the lazy dog typhoon routes tuples through switches")

// sentences is a spout emitting random sentences.
type sentences struct{ rng *rand.Rand }

func (s *sentences) Open(ctx *typhoon.Context) error {
	s.rng = rand.New(rand.NewSource(int64(ctx.WorkerID())))
	return nil
}
func (s *sentences) Close(*typhoon.Context) error { return nil }
func (s *sentences) Next(ctx *typhoon.Context) (bool, error) {
	n := 3 + s.rng.Intn(5)
	parts := make([]string, n)
	for i := range parts {
		parts[i] = words[s.rng.Intn(len(words))]
	}
	ctx.Emit(typhoon.String(strings.Join(parts, " ")))
	return true, nil
}

// splitter splits sentences into words.
type splitter struct{}

func (splitter) Open(*typhoon.Context) error  { return nil }
func (splitter) Close(*typhoon.Context) error { return nil }
func (splitter) Execute(ctx *typhoon.Context, in typhoon.Tuple) error {
	for _, w := range strings.Fields(in.Field(0).AsString()) {
		ctx.Emit(typhoon.String(w))
	}
	return nil
}

// counter counts words; key-based routing guarantees each word always
// lands on the same instance.
type counter struct {
	mu     sync.Mutex
	counts map[string]int
}

var counters struct {
	mu  sync.Mutex
	all []*counter
}

func (c *counter) Open(*typhoon.Context) error {
	c.counts = make(map[string]int)
	counters.mu.Lock()
	counters.all = append(counters.all, c)
	counters.mu.Unlock()
	return nil
}
func (c *counter) Close(*typhoon.Context) error { return nil }
func (c *counter) Execute(_ *typhoon.Context, in typhoon.Tuple) error {
	if in.Stream != 0 {
		return nil // ignore framework signals
	}
	c.mu.Lock()
	c.counts[in.Field(0).AsString()]++
	c.mu.Unlock()
	return nil
}

func main() {
	typhoon.RegisterSpout("quickstart/sentences", func() typhoon.Spout { return &sentences{} })
	typhoon.RegisterBolt("quickstart/split", func() typhoon.Bolt { return splitter{} })
	typhoon.RegisterBolt("quickstart/count", func() typhoon.Bolt { return &counter{} })

	cluster, err := typhoon.NewCluster(typhoon.Config{Hosts: []string{"h1", "h2"}})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	b := typhoon.NewTopology("wordcount", 1)
	b.Source("input", "quickstart/sentences", 1)
	b.Node("split", "quickstart/split", 2).ShuffleFrom("input")
	b.Node("count", "quickstart/count", 2).FieldsFrom("split", 0).Stateful()
	topo, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.Submit(topo, 10*time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wordcount running on 2 hosts (1 source, 2 splitters, 2 counters)...")
	time.Sleep(3 * time.Second)

	// Merge the counters and print the ranking.
	total := map[string]int{}
	counters.mu.Lock()
	for _, c := range counters.all {
		c.mu.Lock()
		for w, n := range c.counts {
			total[w] += n
		}
		c.mu.Unlock()
	}
	counters.mu.Unlock()
	type wc struct {
		w string
		n int
	}
	var ranked []wc
	for w, n := range total {
		ranked = append(ranked, wc{w, n})
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].n > ranked[j].n })
	fmt.Println("top words after 3 seconds:")
	for i, r := range ranked {
		if i == 5 {
			break
		}
		fmt.Printf("  %-10s %d\n", r.w, r.n)
	}
}

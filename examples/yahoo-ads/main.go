// Yahoo advertisement analytics (the paper's Fig 13 pipeline) with a
// runtime computation-logic swap (Fig 14): the filter initially passes
// only "view" events; mid-run it is hot-swapped for logic that also passes
// "click" events — without restarting the pipeline or losing the windowed
// state in the KV store.
//
//	go run ./examples/yahoo-ads
package main

import (
	"fmt"
	"log"
	"time"

	"typhoon"
	"typhoon/internal/experiments"
	"typhoon/internal/kafkasim"
	"typhoon/internal/kvstore"
	"typhoon/internal/workload"
)

func main() {
	cluster, err := typhoon.NewCluster(typhoon.Config{Hosts: []string{"h1", "h2", "h3"}})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	// External services: the emulated Kafka input and Redis-style store.
	events := kafkasim.New(4)
	store := kvstore.New()
	gen := workload.NewAdEventGen(42, 20, 10)
	gen.PrepopulateCampaigns(store)
	cluster.Env.Set(workload.EnvKafka, events)
	cluster.Env.Set(workload.EnvKV, store)

	stats := workload.NewStats(time.Second)
	cfg := workload.NewConfig()
	cfg.Set(workload.CfgWindowMillis, 1000)
	cluster.Env.Set(workload.EnvStats, stats)
	cluster.Env.Set(workload.EnvConfig, cfg)

	// Continuous event production.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		ticker := time.NewTicker(20 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case now := <-ticker.C:
				gen.Produce(events, 200, now)
			}
		}
	}()

	topo, err := experiments.YahooTopology("yahoo-ads", 1, workload.LogicFilterView)
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.Submit(topo, 10*time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Println("pipeline: kafka -> parse -> filter(view) -> projection -> join -> aggregate")

	rate := func() float64 {
		before := stats.Counter("yahoo.agg.total").Value()
		time.Sleep(2 * time.Second)
		return float64(stats.Counter("yahoo.agg.total").Value()-before) / 2
	}
	time.Sleep(time.Second)
	fmt.Printf("aggregating %.0f events/s with the view-only filter\n", rate())

	fmt.Println("hot-swapping filter logic: view -> view+click (no restart)...")
	if err := cluster.Manager.SwapLogic("yahoo-ads", "filter", workload.LogicFilterViewClick); err != nil {
		log.Fatal(err)
	}
	if err := cluster.Manager.WaitReady("yahoo-ads", 10*time.Second); err != nil {
		log.Fatal(err)
	}
	time.Sleep(time.Second)
	fmt.Printf("aggregating %.0f events/s with the view+click filter (expect ~2x)\n", rate())
	fmt.Printf("campaign windows stored: %d\n", len(store.Keys("window:")))
}

// Live debugging (§4, Fig 12): a debug worker is deployed next to a
// running pipeline at runtime and the tapped worker's egress frames are
// mirrored to it by switch rules — the pipeline's throughput is unaffected
// because no extra application-level serialization happens.
//
//	go run ./examples/livedebug
package main

import (
	"fmt"
	"log"
	"time"

	"typhoon"
	"typhoon/internal/workload"
)

func main() {
	cluster, err := typhoon.NewCluster(typhoon.Config{Hosts: []string{"h1"}})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	stats := workload.NewStats(time.Second)
	cluster.Env.Set(workload.EnvStats, stats)
	cluster.Env.Set(workload.EnvConfig, workload.NewConfig())

	b := typhoon.NewTopology("pipeline", 1)
	b.Source("src", workload.LogicSeqSource, 1)
	b.Node("sink", workload.LogicSink, 1).ShuffleFrom("src")
	topo, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.Submit(topo, 10*time.Second); err != nil {
		log.Fatal(err)
	}

	rate := func() float64 {
		before := stats.Counter("sink.total").Value()
		time.Sleep(2 * time.Second)
		return float64(stats.Counter("sink.total").Value()-before) / 2
	}
	time.Sleep(500 * time.Millisecond)
	fmt.Printf("pipeline throughput: %.0f tuples/s\n", rate())

	// Attach a debug worker to the source at runtime.
	dbg := typhoon.NewLiveDebugger()
	cluster.Controller.AddApp(dbg)
	src := cluster.WorkersOf("pipeline", "src")[0]
	node, err := dbg.Attach(cluster.Controller, "pipeline", src.ID(), workload.LogicDebugSink)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("debug worker %q attached, mirroring worker %d's egress\n", node, src.ID())

	fmt.Printf("throughput while debugging: %.0f tuples/s\n", rate())
	fmt.Println("(no extra serialization: mirroring happens in the switch; on a")
	fmt.Println(" multi-core host the debug worker runs on idle cores and the")
	fmt.Println(" pipeline is unaffected — see Fig 12 in EXPERIMENTS.md)")
	fmt.Printf("debug worker captured %d tuples\n", stats.Counter("debug.seen").Value())

	if err := dbg.Detach(cluster.Controller, "pipeline", src.ID()); err != nil {
		log.Fatal(err)
	}
	captured := stats.Counter("debug.seen").Value()
	fmt.Printf("detached; throughput after: %.0f tuples/s\n", rate())
	if after := stats.Counter("debug.seen").Value(); after == captured {
		fmt.Println("mirroring stopped: no further tuples captured")
	}
}

// Auto scaling (§4, Fig 11): an overloaded splitter's queue grows; the
// auto-scaler app sees the pushed worker statistics and adds splitter
// instances through the streaming manager before the worker runs out of
// memory.
//
//	go run ./examples/autoscale
package main

import (
	"fmt"
	"log"
	"time"

	"typhoon"
	"typhoon/internal/workload"
)

func main() {
	cluster, err := typhoon.NewCluster(typhoon.Config{Hosts: []string{"h1", "h2"}})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	stats := workload.NewStats(time.Second)
	cfg := workload.NewConfig()
	cfg.Set(workload.CfgWorkNanos, 200_000) // 200µs per tuple: one splitter saturates
	cluster.Env.Set(workload.EnvStats, stats)
	cluster.Env.Set(workload.EnvConfig, cfg)

	scaler := typhoon.NewAutoScaler()
	scaler.AddPolicy(typhoon.AutoScalePolicy{
		Topo: "overload", Node: "split",
		ScaleUpQueue: 100, Max: 4, Cooldown: 2 * time.Second,
	})
	cluster.Controller.AddApp(scaler)

	b := typhoon.NewTopology("overload", 1)
	b.Source("src", workload.LogicSentenceSource, 1)
	b.Node("split", workload.LogicSplitter, 1).ShuffleFrom("src")
	b.Node("sink", workload.LogicSink, 1).ShuffleFrom("split")
	topo, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.Submit(topo, 10*time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Println("running with 1 splitter under saturating load...")

	for i := 0; i < 10; i++ {
		time.Sleep(time.Second)
		splitters := len(cluster.WorkersOf("overload", "split"))
		var queue int
		for _, w := range cluster.WorkersOf("overload", "split") {
			queue += w.StatsSnapshot().QueueLen
		}
		fmt.Printf("t=%2ds splitters=%d total-queue=%-6d scale-ups=%d\n",
			i+1, splitters, queue, scaler.ScaleUps())
		if scaler.ScaleUps() >= 2 {
			break
		}
	}
	fmt.Printf("final splitter count: %d\n", len(cluster.WorkersOf("overload", "split")))
}

module typhoon

go 1.22

package typhoon

// Data-plane fast-path benchmark suite: the microflow cache, the zero-alloc
// tuple pipeline and the switch forwarding loop. `scripts/bench.sh` runs
// BenchmarkDataplane with BENCH_JSON set to emit BENCH_dataplane.json
// (uploaded by CI next to BENCH_rescale.json); the named benchmarks expose
// the same scenarios individually for `go test -bench`.
//
// The measurement cores are plain functions over an op count rather than
// *testing.B helpers so BenchmarkDataplane can drive them directly:
// testing.Benchmark deadlocks on the framework's global benchmark lock when
// called from inside a running benchmark.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"typhoon/internal/openflow"
	"typhoon/internal/packet"
	"typhoon/internal/switchfabric"
	"typhoon/internal/topology"
	"typhoon/internal/tuple"
	"typhoon/internal/worker"
)

// drainPort consumes and recycles frames from an egress port until the ring
// closes or stop is signalled, acting like a real receiver: without the
// recycling, the frame pool drains and every in-switch CopyFrame falls back
// to a fresh allocation.
func drainPort(p *switchfabric.Port, stop <-chan struct{}, done chan<- struct{}) {
	defer func() { done <- struct{}{} }()
	var scratch [][]byte
	for {
		frames, err := p.ReadBatch(scratch[:0], 256, 50*time.Millisecond)
		if err != nil {
			return
		}
		scratch = frames
		for _, f := range frames {
			packet.PutFrameBuf(f)
		}
		select {
		case <-stop:
			return
		default:
		}
	}
}

// runSwitchForward pushes n unicast frames through one switch port and
// returns the steady-state forwarding rate plus the pipeline's allocations
// per frame (measured across all goroutines from first write to last
// delivery). rules controls flow-table pressure: the matching rule hides
// behind rules-1 higher-priority decoys in a separate sub-table, so the
// uncached path pays the full staged-classifier lookup per frame while the
// flow caches skip straight to the rule. disableCache turns off both the
// microflow and megaflow caches.
func runSwitchForward(n, rules int, disableCache bool) (fps, allocsPerOp float64) {
	opts := []switchfabric.Option{switchfabric.Options{RingCapacity: 8192}}
	if disableCache {
		opts = append(opts, switchfabric.WithoutMicroflowCache(),
			switchfabric.WithoutMegaflowCache())
	}
	sw := switchfabric.New("bench", 1, opts...)
	sw.Start()
	defer sw.Stop()
	a1, a2 := packet.WorkerAddr(1, 1), packet.WorkerAddr(1, 2)
	p1, _ := sw.AddPort("w1", a1)
	p2, _ := sw.AddPort("w2", a2)
	for i := 0; i < rules-1; i++ {
		decoy := packet.WorkerAddr(7, uint32(1000+i))
		_ = sw.ApplyFlowMod(openflow.FlowMod{
			Command: openflow.FlowAdd, Priority: 200,
			Match: openflow.Match{
				Fields: openflow.FieldInPort | openflow.FieldDlDst | openflow.FieldEtherType,
				InPort: p1.No(), DlDst: decoy, EtherType: packet.EtherType,
			},
			Actions: []openflow.Action{openflow.Output(p2.No())},
		})
	}
	_ = sw.ApplyFlowMod(openflow.FlowMod{
		Command: openflow.FlowAdd, Priority: 100,
		Match: openflow.Match{
			Fields: openflow.FieldInPort | openflow.FieldDlSrc | openflow.FieldDlDst | openflow.FieldEtherType,
			InPort: p1.No(), DlSrc: a1, DlDst: a2, EtherType: packet.EtherType,
		},
		Actions: []openflow.Action{openflow.Output(p2.No())},
	})
	// Non-pooled exact-cap frame: safe to write repeatedly because the
	// pool's capacity gate keeps it from ever being recycled.
	frame := packet.EncodeTuples(a2, a1, [][]byte{tuple.Encode(tuple.New(tuple.Int(1)))})
	stop := make(chan struct{})
	done := make(chan struct{}, 1)
	go drainPort(p2, stop, done)
	processed := func() uint64 {
		for _, ps := range sw.PortStatsSnapshot() {
			if ps.PortNo == p1.No() {
				return ps.RxPackets
			}
		}
		return 0
	}
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	t0 := time.Now()
	for i := 0; i < n; i++ {
		for !p1.WriteFrame(frame) {
			time.Sleep(10 * time.Microsecond)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for processed() < uint64(n) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&ms1)
	close(stop)
	<-done
	return float64(n) / elapsed.Seconds(), float64(ms1.Mallocs-ms0.Mallocs) / float64(n)
}

// BenchmarkSwitchForward measures the switch hot path across flow-table
// sizes, with and without the flow caches. The rule counts trace the
// forwarding curve: with the staged classifier the cached figures stay
// flat from 1 rule to 10k.
func BenchmarkSwitchForward(b *testing.B) {
	for _, rules := range []int{1, 64, 1000, 10000} {
		for _, cached := range []bool{true, false} {
			mode := "cached"
			if !cached {
				mode = "uncached"
			}
			b.Run(fmt.Sprintf("rules=%d/%s", rules, mode), func(b *testing.B) {
				fps, allocs := runSwitchForward(b.N, rules, !cached)
				b.ReportMetric(fps, "frames/s")
				b.ReportMetric(allocs, "allocs/frame")
			})
		}
	}
}

// runSwitchScatter drives n frames from srcs rotating source addresses at
// one destination-only rule hidden among decoy destinations. Every frame
// misses the exact-match microflow cache (its key includes the source), so
// after the single upcall installs the dst-masked megaflow entry, the
// megaflow cache answers the whole scatter. Returns the forwarding rate,
// allocations per frame, and the switch counters.
func runSwitchScatter(n, srcs, rules int) (fps, allocsPerOp float64, cnt switchfabric.Counters) {
	sw := switchfabric.New("bench", 1, switchfabric.Options{RingCapacity: 8192})
	sw.Start()
	defer sw.Stop()
	a1, a2 := packet.WorkerAddr(1, 1), packet.WorkerAddr(1, 2)
	p1, _ := sw.AddPort("w1", a1)
	p2, _ := sw.AddPort("w2", a2)
	for i := 0; i < rules-1; i++ {
		_ = sw.ApplyFlowMod(openflow.FlowMod{
			Command: openflow.FlowAdd, Priority: 100,
			Match: openflow.Match{
				Fields: openflow.FieldDlDst,
				DlDst:  packet.WorkerAddr(7, uint32(1000+i)),
			},
			Actions: []openflow.Action{openflow.Output(p2.No())},
		})
	}
	_ = sw.ApplyFlowMod(openflow.FlowMod{
		Command: openflow.FlowAdd, Priority: 100,
		Match:   openflow.Match{Fields: openflow.FieldDlDst, DlDst: a2},
		Actions: []openflow.Action{openflow.Output(p2.No())},
	})
	// Prebuilt frame pool, one per distinct source; exact-cap buffers are
	// rejected by the frame pool's capacity gate, so rewriting them is safe.
	enc := tuple.Encode(tuple.New(tuple.Int(1)))
	frames := make([][]byte, srcs)
	for i := range frames {
		frames[i] = packet.EncodeTuples(a2, packet.WorkerAddr(9, uint32(i+1)), [][]byte{enc})
	}
	stop := make(chan struct{})
	done := make(chan struct{}, 1)
	go drainPort(p2, stop, done)
	processed := func() uint64 {
		for _, ps := range sw.PortStatsSnapshot() {
			if ps.PortNo == p1.No() {
				return ps.RxPackets
			}
		}
		return 0
	}
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	t0 := time.Now()
	for i := 0; i < n; i++ {
		for !p1.WriteFrame(frames[i%srcs]) {
			time.Sleep(10 * time.Microsecond)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for processed() < uint64(n) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&ms1)
	close(stop)
	<-done
	return float64(n) / elapsed.Seconds(),
		float64(ms1.Mallocs-ms0.Mallocs) / float64(n),
		sw.CountersSnapshot()
}

// BenchmarkSwitchScatter measures the megaflow hit path: 4096 rotating
// sources against one destination-only rule among 64.
func BenchmarkSwitchScatter(b *testing.B) {
	fps, allocs, cnt := runSwitchScatter(b.N, 4096, 64)
	b.ReportMetric(fps, "frames/s")
	b.ReportMetric(allocs, "allocs/frame")
	if cnt.MegaflowHits+cnt.MegaflowMisses > 0 {
		b.ReportMetric(float64(cnt.MegaflowHits)/float64(cnt.MegaflowHits+cnt.MegaflowMisses), "megaflow-hit-rate")
	}
}

// runBroadcastFanout installs one rule with fanout output actions, pushes n
// frames, and returns ingress frames/s and delivered copies/s (the
// serialization-free broadcast of Fig 9: replication happens inside the
// switch).
func runBroadcastFanout(n, fanout int) (fps, dps float64) {
	sw := switchfabric.New("bench", 1, switchfabric.Options{RingCapacity: 8192})
	sw.Start()
	defer sw.Stop()
	a1 := packet.WorkerAddr(1, 1)
	p1, _ := sw.AddPort("w1", a1)
	var acts []openflow.Action
	var sinks []*switchfabric.Port
	for i := 0; i < fanout; i++ {
		p, _ := sw.AddPort("sink", packet.WorkerAddr(1, uint32(2+i)))
		sinks = append(sinks, p)
		acts = append(acts, openflow.Output(p.No()))
	}
	_ = sw.ApplyFlowMod(openflow.FlowMod{
		Command: openflow.FlowAdd, Priority: 100,
		Match: openflow.Match{
			Fields: openflow.FieldInPort | openflow.FieldDlDst | openflow.FieldEtherType,
			InPort: p1.No(), DlDst: packet.Broadcast, EtherType: packet.EtherType,
		},
		Actions: acts,
	})
	frame := packet.EncodeTuples(packet.Broadcast, a1, [][]byte{tuple.Encode(tuple.New(tuple.Int(1)))})
	stop := make(chan struct{})
	done := make(chan struct{}, fanout)
	for _, p := range sinks {
		go drainPort(p, stop, done)
	}
	processed := func() uint64 {
		for _, ps := range sw.PortStatsSnapshot() {
			if ps.PortNo == p1.No() {
				return ps.RxPackets
			}
		}
		return 0
	}
	t0 := time.Now()
	for i := 0; i < n; i++ {
		for !p1.WriteFrame(frame) {
			time.Sleep(10 * time.Microsecond)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for processed() < uint64(n) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(t0)
	close(stop)
	for range sinks {
		<-done
	}
	return float64(n) / elapsed.Seconds(), float64(n*fanout) / elapsed.Seconds()
}

// BenchmarkBroadcastFanout measures in-switch replication at fan-out 1/4/16.
func BenchmarkBroadcastFanout(b *testing.B) {
	for _, fanout := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("fanout=%d", fanout), func(b *testing.B) {
			fps, dps := runBroadcastFanout(b.N, fanout)
			b.ReportMetric(fps, "frames/s")
			b.ReportMetric(dps, "deliveries/s")
		})
	}
}

// tupleCodecStats measures a full serialize/deserialize round trip of a
// representative tuple: wall-clock over n ops, allocations via AllocsPerRun.
func tupleCodecStats(n int) (nsPerOp, allocsPerOp float64) {
	in := tuple.New(tuple.String("the quick brown fox"), tuple.Int(42), tuple.Float(3.14))
	buf := make([]byte, 0, 128)
	op := func() {
		buf = tuple.AppendEncode(buf[:0], in)
		if _, _, err := tuple.Decode(buf); err != nil {
			panic(err)
		}
	}
	t0 := time.Now()
	for i := 0; i < n; i++ {
		op()
	}
	return float64(time.Since(t0).Nanoseconds()) / float64(n), testing.AllocsPerRun(1000, op)
}

// BenchmarkTupleEncodeDecode measures the codec round trip on the tuple
// fast path.
func BenchmarkTupleEncodeDecode(b *testing.B) {
	in := tuple.New(tuple.String("the quick brown fox"), tuple.Int(42), tuple.Float(3.14))
	buf := make([]byte, 0, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = tuple.AppendEncode(buf[:0], in)
		if _, _, err := tuple.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// packetizerStats measures frame staging and flush with pool recycling —
// the steady-state egress path.
func packetizerStats(n int) (nsPerOp, allocsPerOp float64) {
	src := packet.WorkerAddr(1, 1)
	dst := packet.WorkerAddr(1, 2)
	enc := tuple.Encode(tuple.New(tuple.String("payload"), tuple.Int(7)))
	p := packet.NewPacketizer(src, 0)
	i := 0
	op := func() {
		for _, fr := range p.Add(dst, enc) {
			packet.PutFrameBuf(fr)
		}
		if i++; i%100 == 99 {
			for _, fr := range p.FlushAll() {
				packet.PutFrameBuf(fr)
			}
		}
	}
	t0 := time.Now()
	for j := 0; j < n; j++ {
		op()
	}
	return float64(time.Since(t0).Nanoseconds()) / float64(n), testing.AllocsPerRun(1000, op)
}

// BenchmarkPacketizer measures frame multiplexing in the Typhoon I/O layer.
func BenchmarkPacketizer(b *testing.B) {
	src := packet.WorkerAddr(1, 1)
	dst := packet.WorkerAddr(1, 2)
	enc := tuple.Encode(tuple.New(tuple.String("payload"), tuple.Int(7)))
	p := packet.NewPacketizer(src, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, fr := range p.Add(dst, enc) {
			packet.PutFrameBuf(fr)
		}
		if i%100 == 99 {
			for _, fr := range p.FlushAll() {
				packet.PutFrameBuf(fr)
			}
		}
	}
}

// benchBatchSize is the batch the headline emit→recv figures are measured
// at — the transport's DefaultBatchSize as shipped by cluster configs.
const benchBatchSize = 100

// runEmitRecv drives n tuples through the full emit→switch→recv pipeline
// between two worker transports on one switch at the given transport batch
// size, returning end-to-end tuples/s and allocations per tuple (all
// goroutines: sender, switch pump, receiver). A tail dropped under
// backpressure is detected by a silent window rather than waited on forever.
func runEmitRecv(n, batch int) (tps, allocsPerOp float64) {
	sw := switchfabric.New("h1", 1, switchfabric.Options{RingCapacity: 8192})
	sw.Start()
	defer sw.Stop()
	a1, a2 := packet.WorkerAddr(1, 1), packet.WorkerAddr(1, 2)
	p1, _ := sw.AddPort("w1", a1)
	p2, _ := sw.AddPort("w2", a2)
	src := worker.NewSDNTransport(1, 1, p1, worker.SDNTransportConfig{BatchSize: batch})
	dst := worker.NewSDNTransport(1, 2, p2, worker.SDNTransportConfig{BatchSize: batch})
	_ = sw.ApplyFlowMod(openflow.FlowMod{
		Command: openflow.FlowAdd, Priority: 100,
		Match: openflow.Match{
			Fields: openflow.FieldInPort | openflow.FieldDlDst | openflow.FieldEtherType,
			InPort: p1.No(), DlDst: a2, EtherType: packet.EtherType,
		},
		Actions: []openflow.Action{openflow.Output(p2.No())},
	})
	in := tuple.New(tuple.String("the quick brown fox"), tuple.Int(42))
	d := worker.Destination{Workers: []topology.WorkerID{2}}
	done := make(chan int, 1)
	go func() {
		got, empty := 0, 0
		for got < n {
			out, err := dst.Recv(256, 250*time.Millisecond)
			if err != nil {
				break
			}
			if len(out) == 0 {
				if empty++; empty >= 4 {
					break // a second of silence: the tail was dropped
				}
				continue
			}
			empty = 0
			got += len(out)
		}
		done <- got
	}()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	t0 := time.Now()
	for i := 0; i < n; i++ {
		if err := src.Send(d, in); err != nil {
			break
		}
	}
	_ = src.Flush()
	got := <-done
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&ms1)
	return float64(got) / elapsed.Seconds(), float64(ms1.Mallocs-ms0.Mallocs) / float64(n)
}

// BenchmarkEmitRecvPath measures the end-to-end tuple pipeline at the
// default transport batch size.
func BenchmarkEmitRecvPath(b *testing.B) {
	tps, allocs := runEmitRecv(b.N, benchBatchSize)
	b.ReportMetric(tps, "tuples/s")
	b.ReportMetric(allocs, "allocs/tuple")
}

// BenchmarkEmitRecvBatchSweep traces the batching trade-off: batch 1 pays
// one frame per tuple (the latency-first extreme), 256 packs frames to the
// payload budget.
func BenchmarkEmitRecvBatchSweep(b *testing.B) {
	for _, batch := range []int{1, benchBatchSize, 256} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			tps, allocs := runEmitRecv(b.N, batch)
			b.ReportMetric(tps, "tuples/s")
			b.ReportMetric(allocs, "allocs/tuple")
		})
	}
}

// TestEmitRecvAllocRegression is the allocation guard for the emit→recv
// pipeline: the pre-arena pipeline spent ~2 allocs per tuple (the decoded
// tuple's value slice and string copy, plus the per-Recv output slice).
// Arena decode and the reused Recv window eliminate all of them on the
// steady path — what remains is amortized arena chunk growth and harness
// noise, well under a tenth of an alloc per tuple.
func TestEmitRecvAllocRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed guard")
	}
	_, allocs := runEmitRecv(300_000, benchBatchSize)
	if allocs > 0.3 {
		t.Fatalf("emit→recv path allocates %.2f/tuple, want <= 0.3 (arena decode regressed)", allocs)
	}
}

// TestSwitchForwardAllocRegression guards the switch hot loop: forwarding a
// frame through cache lookup + egress hands off the original buffer and
// must not allocate (the small budget absorbs ring-batch and timer noise
// from the surrounding harness).
func TestSwitchForwardAllocRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed guard")
	}
	_, allocs := runSwitchForward(300_000, 16, false)
	if allocs > 0.05 {
		t.Fatalf("switch forward path allocates %.3f/frame, want ~0", allocs)
	}
}

// TestMegaflowHitAllocRegression guards the megaflow hit path: a scatter of
// 4096 sources misses the microflow cache on every frame, and the
// wildcarded lookup that answers instead must both stay allocation-free
// and actually be the layer answering (hit rate, upcall count).
func TestMegaflowHitAllocRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed guard")
	}
	const n = 300_000
	_, allocs, cnt := runSwitchScatter(n, 4096, 64)
	if allocs > 0.05 {
		t.Fatalf("megaflow hit path allocates %.3f/frame, want ~0", allocs)
	}
	if cnt.MegaflowHits < uint64(n)*95/100 {
		t.Fatalf("megaflow hits = %d of %d frames; the scatter is not being absorbed", cnt.MegaflowHits, n)
	}
	if cnt.Upcalls > uint64(n)/100 {
		t.Fatalf("upcalls = %d, want ~1 (megaflow entry should end them)", cnt.Upcalls)
	}
}

// TestRuleScaleForwardRegression pins the tentpole property of the staged
// classifier: cached forwarding throughput is flat in the rule count. The
// 1.5x bound is deliberately loose — the figures should be within noise of
// each other — but fails decisively if rule-linear scanning regresses.
func TestRuleScaleForwardRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed guard")
	}
	const n = 200_000
	fps1, _ := runSwitchForward(n, 1, false)
	fps10k, _ := runSwitchForward(n, 10_000, false)
	if fps10k <= 0 || fps1/fps10k > 1.5 {
		t.Fatalf("cached forwarding at 10k rules is %.0f fps vs %.0f at 1 rule (%.2fx slowdown, want <= 1.5x)",
			fps10k, fps1, fps1/fps10k)
	}
}

// BenchmarkDataplane aggregates the suite above into one machine-readable
// report. With BENCH_JSON set, the results are written to that file
// (BENCH_dataplane.json in CI). Run with -benchtime 1x: the scenarios use
// fixed op counts internally.
func BenchmarkDataplane(b *testing.B) {
	type codecStat struct {
		NsPerOp     float64 `json:"nsPerOp"`
		AllocsPerOp float64 `json:"allocsPerOp"`
	}
	type report struct {
		SwitchForwardFPS map[string]float64 `json:"switchForwardFramesPerSec"`
		SwitchAllocs     float64            `json:"switchForwardAllocsPerFrame"`
		CachedSpeedup64  float64            `json:"cachedSpeedupAt64Rules"`
		RuleScale1to10k  float64            `json:"cachedRuleScale1to10k"`
		MegaflowFPS      float64            `json:"megaflowScatterFramesPerSec"`
		MegaflowAllocs   float64            `json:"megaflowScatterAllocsPerFrame"`
		MegaflowHitRate  float64            `json:"megaflowScatterHitRate"`
		BroadcastDPS     map[string]float64 `json:"broadcastDeliveriesPerSec"`
		TupleCodec       codecStat          `json:"tupleEncodeDecode"`
		Packetizer       codecStat          `json:"packetizer"`
		EmitRecvTPS      float64            `json:"emitRecvTuplesPerSec"`
		EmitRecvAllocs   float64            `json:"emitRecvAllocsPerTuple"`
		EmitRecvSweepTPS map[string]float64 `json:"emitRecvBatchSweepTuplesPerSec"`
		EmitRecvSweepAll map[string]float64 `json:"emitRecvBatchSweepAllocsPerTuple"`
	}
	var rep report
	for i := 0; i < b.N; i++ {
		rep = report{
			SwitchForwardFPS: map[string]float64{},
			BroadcastDPS:     map[string]float64{},
			EmitRecvSweepTPS: map[string]float64{},
			EmitRecvSweepAll: map[string]float64{},
		}
		const swOps = 300_000
		for _, cse := range []struct {
			key          string
			rules        int
			disableCache bool
		}{
			{"rules=1/cached", 1, false},
			{"rules=64/cached", 64, false},
			{"rules=64/uncached", 64, true},
			{"rules=1000/cached", 1000, false},
			{"rules=10000/cached", 10000, false},
			{"rules=10000/uncached", 10000, true},
		} {
			fps, allocs := runSwitchForward(swOps, cse.rules, cse.disableCache)
			rep.SwitchForwardFPS[cse.key] = fps
			if cse.key == "rules=64/cached" {
				rep.SwitchAllocs = allocs
			}
		}
		if un := rep.SwitchForwardFPS["rules=64/uncached"]; un > 0 {
			rep.CachedSpeedup64 = rep.SwitchForwardFPS["rules=64/cached"] / un
		}
		if at10k := rep.SwitchForwardFPS["rules=10000/cached"]; at10k > 0 {
			rep.RuleScale1to10k = rep.SwitchForwardFPS["rules=1/cached"] / at10k
		}
		mfps, mallocs, mcnt := runSwitchScatter(swOps, 4096, 64)
		rep.MegaflowFPS, rep.MegaflowAllocs = mfps, mallocs
		if probes := mcnt.MegaflowHits + mcnt.MegaflowMisses; probes > 0 {
			rep.MegaflowHitRate = float64(mcnt.MegaflowHits) / float64(probes)
		}
		for _, fanout := range []int{1, 4, 16} {
			_, dps := runBroadcastFanout(200_000, fanout)
			rep.BroadcastDPS[fmt.Sprintf("fanout=%d", fanout)] = dps
		}
		ns, allocs := tupleCodecStats(1_000_000)
		rep.TupleCodec = codecStat{NsPerOp: ns, AllocsPerOp: allocs}
		ns, allocs = packetizerStats(2_000_000)
		rep.Packetizer = codecStat{NsPerOp: ns, AllocsPerOp: allocs}
		rep.EmitRecvTPS, rep.EmitRecvAllocs = runEmitRecv(500_000, benchBatchSize)
		for _, sweep := range []struct {
			batch int
			ops   int
		}{
			{1, 100_000}, // one frame per tuple: ~50x the frame rate of batch 100
			{benchBatchSize, 500_000},
			{256, 500_000},
		} {
			key := fmt.Sprintf("batch=%d", sweep.batch)
			tps, allocs := runEmitRecv(sweep.ops, sweep.batch)
			rep.EmitRecvSweepTPS[key] = tps
			rep.EmitRecvSweepAll[key] = allocs
		}
	}
	b.ReportMetric(rep.CachedSpeedup64, "cached-speedup")
	b.ReportMetric(rep.EmitRecvTPS, "emitrecv-tuples/s")
	b.ReportMetric(rep.EmitRecvAllocs, "emitrecv-allocs/tuple")
	if path := os.Getenv("BENCH_JSON"); path != "" {
		blob, err := json.MarshalIndent(map[string]any{
			"benchmark": "BenchmarkDataplane",
			"report":    rep,
		}, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			b.Fatal(err)
		}
	}
}

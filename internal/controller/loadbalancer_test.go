package controller

import (
	"testing"

	"typhoon/internal/topology"
)

func TestAutoWeightsStragglerGetsMinimum(t *testing.T) {
	queues := map[topology.WorkerID]int{
		1: 0,   // drained
		2: 50,  // half backlogged
		3: 100, // straggler
	}
	weights, imbalanced := autoWeights(queues, 8)
	if !imbalanced {
		t.Fatal("backlog present but not reported imbalanced")
	}
	if weights[3] != 1 {
		t.Fatalf("straggler weight = %d, want 1", weights[3])
	}
	if weights[1] != 8 {
		t.Fatalf("drained worker weight = %d, want MaxWeight 8", weights[1])
	}
	if weights[2] <= weights[3] || weights[2] >= weights[1] {
		t.Fatalf("mid-backlog weight %d not between straggler %d and drained %d",
			weights[2], weights[3], weights[1])
	}
}

func TestAutoWeightsMaxWeightCap(t *testing.T) {
	queues := map[topology.WorkerID]int{1: 0, 2: 1000}
	for _, max := range []uint16{1, 2, 3, 8, 64} {
		weights, _ := autoWeights(queues, max)
		for w, got := range weights {
			if got < 1 || got > max {
				t.Fatalf("maxWeight %d: worker %d weight %d outside [1, %d]", max, w, got, max)
			}
		}
		if weights[1] != max {
			t.Fatalf("maxWeight %d: drained worker weight %d, want cap", max, weights[1])
		}
	}
}

func TestAutoWeightsUnknownStatsStayNeutral(t *testing.T) {
	queues := map[topology.WorkerID]int{
		1: -1, // no statistics yet
		2: 40,
	}
	weights, imbalanced := autoWeights(queues, 8)
	if !imbalanced {
		t.Fatal("backlog present but not reported imbalanced")
	}
	if weights[1] != 1 {
		t.Fatalf("unknown-stats worker weight = %d, want neutral 1", weights[1])
	}
}

func TestAutoWeightsAllDrainedNothingToDo(t *testing.T) {
	queues := map[topology.WorkerID]int{1: 0, 2: 0, 3: 0}
	weights, imbalanced := autoWeights(queues, 8)
	if imbalanced {
		t.Fatalf("no backlog but imbalanced (weights %v)", weights)
	}
	for w, got := range weights {
		if got != 1 {
			t.Fatalf("idle worker %d weight = %d, want 1", w, got)
		}
	}
}

func TestAutoWeightsZeroMaxCoercedToOne(t *testing.T) {
	weights, _ := autoWeights(map[topology.WorkerID]int{1: 0, 2: 10}, 0)
	for w, got := range weights {
		if got != 1 {
			t.Fatalf("maxWeight 0: worker %d weight %d, want 1", w, got)
		}
	}
}

// Package controller implements the Typhoon SDN controller (§3.4): the
// unified management layer that programs the data plane with flow rules
// derived from the coordinator's global state, reconfigures workers through
// control tuples carried in PACKET_OUT messages, and hosts SDN control
// plane applications (§4) that consume cross-layer information.
//
// Following the paper, the controller is stateless with respect to stream
// applications: everything it installs is recomputed from the coordinator.
package controller

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"typhoon/internal/coordinator"
	"typhoon/internal/openflow"
	"typhoon/internal/packet"
	"typhoon/internal/paths"
	"typhoon/internal/topology"
	"typhoon/internal/tuple"
)

// ManagerAPI is the slice of streaming-manager functionality exposed to
// control plane applications (the auto-scaler initiates scale-ups, the
// live debugger deploys debug workers).
type ManagerAPI interface {
	// SetParallelism changes a node's parallelism at runtime.
	SetParallelism(topo, node string, parallelism int) error
	// AddDetachedNode adds a node with no edges (e.g. a debug worker)
	// pinned to a host, returning once it is part of the topology.
	AddDetachedNode(topo string, spec topology.NodeSpec, host string) error
	// RemoveNode removes a node added with AddDetachedNode.
	RemoveNode(topo, node string) error
}

// App is an SDN control plane application.
type App interface {
	// Name identifies the app.
	Name() string
	// OnPortStatus observes switch port lifecycle events.
	OnPortStatus(c *Controller, host string, ev openflow.PortStatus)
	// OnPacketIn observes worker-to-controller traffic (decoded control
	// tuples arrive via OnControlTuple instead when parseable).
	OnPacketIn(c *Controller, host string, ev openflow.PacketIn)
	// OnControlTuple observes decoded worker control tuples
	// (METRIC_RESP).
	OnControlTuple(c *Controller, host string, src packet.Addr, t tuple.Tuple)
	// OnTick runs periodically.
	OnTick(c *Controller)
}

// BaseApp provides no-op App methods for embedding.
type BaseApp struct{}

// OnPortStatus implements App.
func (BaseApp) OnPortStatus(*Controller, string, openflow.PortStatus) {}

// OnPacketIn implements App.
func (BaseApp) OnPacketIn(*Controller, string, openflow.PacketIn) {}

// OnControlTuple implements App.
func (BaseApp) OnControlTuple(*Controller, string, packet.Addr, tuple.Tuple) {}

// OnTick implements App.
func (BaseApp) OnTick(*Controller) {}

// Options tunes the controller.
type Options struct {
	// Addr is the listen address; empty selects 127.0.0.1:0.
	Addr string
	// ID names this controller instance within a replicated control plane.
	// Empty (the default) runs standalone: no lease machinery, implicit
	// mastership of every switch — exactly the single-controller behaviour.
	ID string
	// LeaseTTL bounds the registration heartbeat and switch-mastership
	// leases in replicated mode; a crashed controller's switches fail over
	// after at most one TTL plus a campaign tick. Zero selects
	// 5 × TickInterval.
	LeaseTTL time.Duration
	// TickInterval drives periodic reconciliation and app ticks.
	TickInterval time.Duration
	// RuleIdleTimeout, when non-zero, installs data rules with an idle
	// timeout instead of relying on explicit deletion (the paper's §3.5
	// garbage collection; also an ablation knob).
	RuleIdleTimeout time.Duration
	// StatefulFlushDelay separates SIGNAL flushes from the routing
	// updates that follow during stable stateful reconfiguration.
	StatefulFlushDelay time.Duration
	// EnableQoS compiles multi-tenant QoS into the rule set: data rules
	// carry the topology's meter and a set_queue action selecting its rate
	// class's egress queue, and per-topology meters are programmed on every
	// sync. Off by default so QoS-unaware clusters get byte-identical rules.
	EnableQoS bool
}

// Datapath is one connected switch.
type Datapath struct {
	host  string
	dpid  uint64
	conn  *openflow.Conn
	ports []openflow.PortInfo

	mu      sync.Mutex
	pending map[uint32]chan openflow.StatsReply
}

// Host returns the datapath's host name.
func (d *Datapath) Host() string { return d.host }

type topoState struct {
	logical  *topology.Logical
	physical *topology.Physical
	// installed maps rule keys to the installed FlowMod per host.
	installed map[ruleKey]openflow.FlowMod
	// groups maps a source worker to its select-group ID.
	groups map[topology.WorkerID]uint32
	// ctlGen is the last generation control tuples were issued for.
	ctlGen int64
	// ready marks that rules for the current generation are installed.
	ready bool
	// mirrors maps tapped source workers to the debug port receiving
	// copies of their egress frames (live debugger, §4). Applied on every
	// rule compilation so reconciliation preserves taps.
	mirrors map[topology.WorkerID]uint32
	// lbWeights holds per-destination select-group weights set by the
	// SDN load balancer; like mirrors, they are controller state so
	// reconciliation re-applies rather than clobbers them.
	lbWeights map[topology.WorkerID]uint16
	// meterID is the topology's data-plane meter (one ID, programmed on
	// every host carrying its workers); zero until QoS allocates one.
	meterID uint32
	// meterRates holds the bandwidth allocator's current per-host rate
	// assignment (bytes/sec, 0 = admit everything). Like lbWeights it is
	// controller state: reconciliation re-programs it after reconnects
	// and mastership moves instead of falling back to the configured rate.
	meterRates map[string]uint64
}

// SetGroupWeights sets select-group bucket weights for destination workers
// of SDN-balanced edges (the load balancer's knob). Weights persist across
// reconciliation; a zero/absent weight means 1.
func (c *Controller) SetGroupWeights(topoName string, weights map[topology.WorkerID]uint16) error {
	c.mu.Lock()
	ts := c.topos[topoName]
	if ts == nil {
		c.mu.Unlock()
		return fmt.Errorf("controller: unknown topology %q", topoName)
	}
	if ts.lbWeights == nil {
		ts.lbWeights = make(map[topology.WorkerID]uint16)
	}
	for w, wt := range weights {
		ts.lbWeights[w] = wt
	}
	c.mu.Unlock()
	c.SyncTopology(topoName)
	return nil
}

// AddMirror registers a packet-mirroring tap: every egress rule of the
// tapped worker gains an extra output toward debugPort on the next sync.
func (c *Controller) AddMirror(topoName string, src topology.WorkerID, debugPort uint32) error {
	c.mu.Lock()
	ts := c.topos[topoName]
	if ts == nil {
		c.mu.Unlock()
		return fmt.Errorf("controller: unknown topology %q", topoName)
	}
	if ts.mirrors == nil {
		ts.mirrors = make(map[topology.WorkerID]uint32)
	}
	ts.mirrors[src] = debugPort
	c.mu.Unlock()
	c.SyncTopology(topoName)
	return nil
}

// RemoveMirror removes a tap installed with AddMirror.
func (c *Controller) RemoveMirror(topoName string, src topology.WorkerID) {
	c.mu.Lock()
	if ts := c.topos[topoName]; ts != nil {
		delete(ts.mirrors, src)
	}
	c.mu.Unlock()
	c.SyncTopology(topoName)
}

// Controller is the Typhoon SDN controller.
type Controller struct {
	kv   coordinator.KV
	opts Options
	ln   net.Listener

	// syncMu serializes SyncTopology runs (watch and tick goroutines).
	syncMu sync.Mutex

	mu     sync.Mutex
	dps    map[string]*Datapath
	conns  map[net.Conn]struct{}
	topos  map[string]*topoState
	apps   []App
	mgr    ManagerAPI
	nextGp uint32
	nextMt uint32
	// masters is this controller's view of per-switch mastership leases,
	// refreshed by campaign(); roleSent tracks the last role asserted per
	// datapath so ROLE_REQUEST goes out only on change. Both are empty in
	// standalone mode.
	masters  map[string]coordinator.Lease
	roleSent map[string]roleState

	// outage simulates a controller failure (chaos): while set, switch
	// events are discarded, reconciliation is suspended and PACKET_OUT
	// fails — the data plane keeps forwarding on installed rules, which
	// is the SDN degradation mode the paper's design implies.
	outage atomic.Bool
	// pktOutDelay delays every PACKET_OUT (chaos control-latency fault).
	pktOutDelay atomic.Int64

	stopOnce sync.Once
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

// New builds a controller listening for switch connections.
func New(kv coordinator.KV, opts Options) (*Controller, error) {
	if opts.Addr == "" {
		opts.Addr = "127.0.0.1:0"
	}
	if opts.TickInterval <= 0 {
		opts.TickInterval = 200 * time.Millisecond
	}
	if opts.StatefulFlushDelay <= 0 {
		opts.StatefulFlushDelay = 50 * time.Millisecond
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 5 * opts.TickInterval
	}
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, err
	}
	return &Controller{
		kv:       kv,
		opts:     opts,
		ln:       ln,
		dps:      make(map[string]*Datapath),
		conns:    make(map[net.Conn]struct{}),
		topos:    make(map[string]*topoState),
		masters:  make(map[string]coordinator.Lease),
		roleSent: make(map[string]roleState),
		stopCh:   make(chan struct{}),
		nextGp:   1,
		nextMt:   1,
	}, nil
}

// Addr returns the controller's listen address for switches.
func (c *Controller) Addr() string { return c.ln.Addr().String() }

// Manager returns the attached streaming-manager API (may be nil).
func (c *Controller) Manager() ManagerAPI {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mgr
}

// SetManager attaches the streaming-manager API for apps.
func (c *Controller) SetManager(m ManagerAPI) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mgr = m
}

// AddApp deploys a control plane application.
func (c *Controller) AddApp(app App) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.apps = append(c.apps, app)
}

func (c *Controller) appsSnapshot() []App {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]App(nil), c.apps...)
}

// Start launches the accept loop, the coordinator watch, and the ticker.
// Replicated controllers additionally campaign for switch mastership and
// watch the control-plane tree for lease movement.
func (c *Controller) Start() error {
	events, cancel, err := c.kv.Watch(paths.Topologies)
	if err != nil {
		return err
	}
	if c.replicated() {
		cpEvents, cpCancel, err := c.kv.Watch(paths.ControlPlane)
		if err != nil {
			cancel()
			return err
		}
		c.campaign()
		c.wg.Add(1)
		go c.controlPlaneLoop(cpEvents, cpCancel)
	}
	c.wg.Add(3)
	go c.acceptLoop()
	go c.watchLoop(events, cancel)
	go c.tickLoop()
	return nil
}

// Stop halts the controller and drops switch connections.
func (c *Controller) Stop() {
	c.stopOnce.Do(func() { close(c.stopCh) })
	_ = c.ln.Close()
	c.mu.Lock()
	for nc := range c.conns {
		_ = nc.Close()
	}
	c.mu.Unlock()
	c.wg.Wait()
}

// Stopped reports whether Stop has been called — the controller is dead
// and can take no further action on the cluster.
func (c *Controller) Stopped() bool {
	select {
	case <-c.stopCh:
		return true
	default:
		return false
	}
}

// BeginOutage starts a simulated controller outage (chaos). Switch events
// are discarded, reconciliation halts, and PACKET_OUT fails until
// EndOutage; installed flow rules keep the data plane forwarding.
func (c *Controller) BeginOutage() {
	c.outage.Store(true)
}

// EndOutage ends a simulated outage and immediately reconciles every
// topology, reinstalling whatever drifted while the controller was "down".
func (c *Controller) EndOutage() {
	if c.outage.CompareAndSwap(true, false) {
		c.syncAll()
	}
}

// Outage reports whether a simulated controller outage is active.
func (c *Controller) Outage() bool { return c.outage.Load() }

// SetPacketOutDelay makes every subsequent PACKET_OUT wait d before being
// sent (chaos control-plane latency fault). Zero restores normal behaviour.
func (c *Controller) SetPacketOutDelay(d time.Duration) {
	if d < 0 {
		d = 0
	}
	c.pktOutDelay.Store(int64(d))
}

// Datapaths lists connected switch hosts.
func (c *Controller) Datapaths() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.dps))
	for h := range c.dps {
		out = append(out, h)
	}
	return out
}

func (c *Controller) datapath(host string) *Datapath {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dps[host]
}

// Topology returns the controller's cached view of a topology (fault
// detector and tests).
func (c *Controller) Topology(name string) (*topology.Logical, *topology.Physical) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ts := c.topos[name]
	if ts == nil {
		return nil, nil
	}
	return ts.logical, ts.physical
}

func (c *Controller) acceptLoop() {
	defer c.wg.Done()
	for {
		nc, err := c.ln.Accept()
		if err != nil {
			return
		}
		c.mu.Lock()
		select {
		case <-c.stopCh:
			c.mu.Unlock()
			_ = nc.Close()
			return
		default:
		}
		c.conns[nc] = struct{}{}
		c.mu.Unlock()
		c.wg.Add(1)
		go c.serveDatapath(nc)
	}
}

func (c *Controller) serveDatapath(nc net.Conn) {
	defer c.wg.Done()
	conn := openflow.NewConn(nc)
	defer func() {
		c.mu.Lock()
		delete(c.conns, nc)
		c.mu.Unlock()
		_ = conn.Close()
	}()
	if _, err := conn.Send(openflow.Hello{}); err != nil {
		return
	}
	xid, err := conn.Send(openflow.FeaturesRequest{})
	if err != nil {
		return
	}
	_ = xid
	var dp *Datapath
	for {
		rxid, msg, err := conn.Receive()
		if err != nil {
			if dp != nil {
				c.mu.Lock()
				if c.dps[dp.host] == dp {
					delete(c.dps, dp.host)
					// A reconnection needs a fresh role assertion.
					delete(c.roleSent, dp.host)
				}
				c.mu.Unlock()
			}
			return
		}
		switch m := msg.(type) {
		case openflow.Hello:
		case openflow.EchoRequest:
			_ = conn.SendXID(rxid, openflow.EchoReply{Payload: m.Payload})
		case openflow.FeaturesReply:
			dp = &Datapath{
				host:    m.Host,
				dpid:    m.DatapathID,
				conn:    conn,
				ports:   m.Ports,
				pending: make(map[uint32]chan openflow.StatsReply),
			}
			c.mu.Lock()
			c.dps[m.Host] = dp
			c.mu.Unlock()
			c.assertRole(dp)
			// A new datapath may unblock pending topology syncs.
			c.syncAll()
		case openflow.StatsReply:
			if dp != nil {
				dp.mu.Lock()
				ch := dp.pending[rxid]
				delete(dp.pending, rxid)
				dp.mu.Unlock()
				if ch != nil {
					ch <- m
				}
			}
		case openflow.PacketIn:
			if c.outage.Load() {
				continue // a dead controller loses the event
			}
			c.handlePacketIn(dp, m)
		case openflow.PortStatus:
			if dp != nil && !c.outage.Load() {
				for _, app := range c.appsSnapshot() {
					app.OnPortStatus(c, dp.host, m)
				}
			}
		case openflow.FlowRemoved:
			// A rule left the switch (idle timeout or chaos wipe): forget
			// it from the reconciliation cache so the next sync reinstalls
			// it instead of assuming it is still present.
			if dp != nil {
				c.invalidateRule(dp.host, m)
			}
		case openflow.Error:
			// Switch rejected something; reconciliation retries on tick.
		}
	}
}

func (c *Controller) handlePacketIn(dp *Datapath, m openflow.PacketIn) {
	if dp == nil {
		return
	}
	host := dp.host
	apps := c.appsSnapshot()
	// Try to decode a control tuple from the frame.
	if f, err := packet.Decode(m.Data); err == nil && len(f.Tuples) > 0 {
		for _, raw := range f.Tuples {
			if tp, _, err := tuple.Decode(raw); err == nil && tp.Stream.IsControl() {
				for _, app := range apps {
					app.OnControlTuple(c, host, f.Src, tp)
				}
			}
		}
	}
	for _, app := range apps {
		app.OnPacketIn(c, host, m)
	}
}

func (c *Controller) watchLoop(events <-chan coordinator.Event, cancel func()) {
	defer c.wg.Done()
	defer cancel()
	for {
		select {
		case <-c.stopCh:
			return
		case ev, ok := <-events:
			if !ok {
				return
			}
			if name := paths.TopologyName(ev.Path); name != "" {
				c.SyncTopology(name)
			}
		}
	}
}

func (c *Controller) tickLoop() {
	defer c.wg.Done()
	ticker := time.NewTicker(c.opts.TickInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stopCh:
			return
		case <-ticker.C:
			if c.outage.Load() {
				continue
			}
			c.campaign()
			c.syncAll()
			for _, app := range c.appsSnapshot() {
				app.OnTick(c)
			}
		}
	}
}

func (c *Controller) syncAll() {
	names, err := c.kv.Children(paths.Topologies)
	if err != nil {
		return
	}
	for _, n := range names {
		c.SyncTopology(n)
	}
}

// SendControlTuple delivers a control tuple to a worker through the data
// plane (PACKET_OUT → switch → worker port), per §3.3.2.
func (c *Controller) SendControlTuple(topoName string, id topology.WorkerID, ct tuple.Tuple) error {
	if d := time.Duration(c.pktOutDelay.Load()); d > 0 {
		select {
		case <-time.After(d):
		case <-c.stopCh:
			return fmt.Errorf("controller: stopped")
		}
	}
	if c.outage.Load() {
		return fmt.Errorf("controller: outage in progress")
	}
	// Snapshot the topology views under the lock: SyncTopology swaps
	// ts.logical/ts.physical concurrently.
	c.mu.Lock()
	ts := c.topos[topoName]
	var l *topology.Logical
	var p *topology.Physical
	if ts != nil {
		l, p = ts.logical, ts.physical
	}
	c.mu.Unlock()
	if l == nil || p == nil {
		return fmt.Errorf("controller: unknown topology %q", topoName)
	}
	as := p.Worker(id)
	if as == nil {
		return fmt.Errorf("controller: unknown worker %d", id)
	}
	if as.Port == 0 {
		return fmt.Errorf("controller: worker %d has no port yet", id)
	}
	dp := c.datapath(as.Host)
	if dp == nil {
		return fmt.Errorf("controller: no datapath for host %s", as.Host)
	}
	dst := packet.WorkerAddr(l.App, uint32(id))
	frame := packet.EncodeTuples(dst, packet.ControllerAddr, [][]byte{tuple.Encode(ct)})
	_, err := dp.conn.Send(openflow.PacketOut{
		InPort:  openflow.PortController,
		Actions: []openflow.Action{openflow.Output(as.Port)},
		Data:    frame,
	})
	return err
}

// PortStats polls one switch's port counters (the cross-layer network
// statistics of §4).
func (c *Controller) PortStats(host string, timeout time.Duration) ([]openflow.PortStats, error) {
	reply, err := c.stats(host, openflow.StatsRequest{Kind: openflow.StatsPort, Port: openflow.PortAny}, timeout)
	if err != nil {
		return nil, err
	}
	return reply.Ports, nil
}

// FlowStats polls one switch's flow counters.
func (c *Controller) FlowStats(host string, timeout time.Duration) ([]openflow.FlowStats, error) {
	reply, err := c.stats(host, openflow.StatsRequest{Kind: openflow.StatsFlow}, timeout)
	if err != nil {
		return nil, err
	}
	return reply.Flows, nil
}

func (c *Controller) stats(host string, req openflow.StatsRequest, timeout time.Duration) (openflow.StatsReply, error) {
	dp := c.datapath(host)
	if dp == nil {
		return openflow.StatsReply{}, fmt.Errorf("controller: no datapath for host %s", host)
	}
	ch := make(chan openflow.StatsReply, 1)
	xid := dp.conn.XID()
	dp.mu.Lock()
	dp.pending[xid] = ch
	dp.mu.Unlock()
	if err := dp.conn.SendXID(xid, req); err != nil {
		dp.mu.Lock()
		delete(dp.pending, xid)
		dp.mu.Unlock()
		return openflow.StatsReply{}, err
	}
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	select {
	case r := <-ch:
		return r, nil
	case <-time.After(timeout):
		dp.mu.Lock()
		delete(dp.pending, xid)
		dp.mu.Unlock()
		return openflow.StatsReply{}, fmt.Errorf("controller: stats timeout for %s", host)
	case <-c.stopCh:
		return openflow.StatsReply{}, fmt.Errorf("controller: stopped")
	}
}

package controller

import (
	"encoding/json"
	"sort"
	"time"

	"typhoon/internal/coordinator"
	"typhoon/internal/paths"
)

// ControllerStatus is one controller's registration as seen by the
// coordinator.
type ControllerStatus struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
	// Live reports whether the registration heartbeat is current.
	Live bool `json:"live"`
	// AgeMillis is the time since the last heartbeat.
	AgeMillis int64 `json:"ageMillis"`
}

// MasterStatus is one switch's mastership lease.
type MasterStatus struct {
	Host  string `json:"host"`
	Owner string `json:"owner"`
	Epoch uint64 `json:"epoch"`
	// Expired reports a lapsed lease awaiting takeover.
	Expired bool `json:"expired"`
}

// ControlPlaneInfo is the full control-plane view: registrations plus
// per-switch mastership, served at /api/controlplane and by
// `typhoon-ctl controlplane status`.
type ControlPlaneInfo struct {
	Controllers []ControllerStatus `json:"controllers"`
	Masters     []MasterStatus     `json:"masters"`
}

// ReadControlPlaneInfo assembles the control-plane status from coordinator
// state. It needs no controller handle, so CLI tools can call it against a
// bare coordinator connection; an empty result means the cluster runs a
// standalone controller.
func ReadControlPlaneInfo(kv coordinator.KV) (ControlPlaneInfo, error) {
	now := time.Now()
	var info ControlPlaneInfo
	ids, err := kv.Children(paths.Controllers)
	if err != nil && err != coordinator.ErrNotFound {
		return info, err
	}
	sort.Strings(ids)
	for _, id := range ids {
		raw, _, err := kv.Get(paths.ControllerReg(id))
		if err != nil {
			continue
		}
		var r registration
		if json.Unmarshal(raw, &r) != nil {
			continue
		}
		info.Controllers = append(info.Controllers, ControllerStatus{
			ID:        id,
			Addr:      r.Addr,
			Live:      !r.expired(now),
			AgeMillis: (now.UnixNano() - r.RenewedAtNanos) / int64(time.Millisecond),
		})
	}
	hosts, err := kv.Children(paths.Masters)
	if err != nil && err != coordinator.ErrNotFound {
		return info, err
	}
	sort.Strings(hosts)
	for _, host := range hosts {
		l, err := coordinator.ReadLease(kv, paths.SwitchMaster(host))
		if err != nil {
			continue
		}
		info.Masters = append(info.Masters, MasterStatus{
			Host:    host,
			Owner:   l.Owner,
			Epoch:   l.Epoch,
			Expired: l.Expired(now),
		})
	}
	return info, nil
}

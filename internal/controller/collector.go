package controller

import (
	"sort"
	"strconv"
	"sync"
	"time"

	"typhoon/internal/control"
	"typhoon/internal/observe"
	"typhoon/internal/packet"
	"typhoon/internal/topology"
	"typhoon/internal/tuple"
)

// MetricsCollector is the observability control-plane app: it gathers the
// METRIC_RESP statistics workers push (and answers on-demand polls with
// METRIC_REQ sweeps through the data plane), keeps the latest row per
// worker, and exposes the cache both as registry samples and as the
// worker half of the /api/top table.
type MetricsCollector struct {
	BaseApp

	// PollInterval spaces automatic METRIC_REQ sweeps issued from OnTick;
	// zero selects one second, negative disables automatic sweeps (workers
	// still push unsolicited METRIC_RESP in SDN mode).
	PollInterval time.Duration
	// TTL drops cached rows not refreshed within it; zero selects 30 s.
	TTL time.Duration

	mu   sync.Mutex
	rows map[string]map[topology.WorkerID]workerMetric // topo -> worker
	// lastPoll is tracked per controller ID: one collector instance may be
	// shared by every controller of a replicated control plane (so /api/top
	// sees all shards), and each controller sweeps the topologies it owns
	// on its own schedule.
	lastPoll map[string]time.Time
	token    uint64
	polls    uint64
	resps    uint64
}

type workerMetric struct {
	resp control.MetricResp
	host string
	at   time.Time
}

// NewMetricsCollector builds the app.
func NewMetricsCollector() *MetricsCollector {
	return &MetricsCollector{
		rows:     make(map[string]map[topology.WorkerID]workerMetric),
		lastPoll: make(map[string]time.Time),
	}
}

// Name implements App.
func (m *MetricsCollector) Name() string { return "metrics-collector" }

// OnControlTuple implements App: cache METRIC_RESP rows keyed by the
// topology resolved from the sender's data-plane address.
func (m *MetricsCollector) OnControlTuple(c *Controller, host string, src packet.Addr, t tuple.Tuple) {
	kind, err := control.DecodeKind(t)
	if err != nil || kind != control.KindMetricResp {
		return
	}
	var mr control.MetricResp
	if control.DecodePayload(t, &mr) != nil {
		return
	}
	topoName := c.topoByApp(src.App())
	if topoName == "" {
		return
	}
	// PACKET_IN is broadcast to every controller of a replicated control
	// plane; a shared collector would record each response n times. Only
	// the topology's owner writes the row.
	if !c.OwnsTopology(topoName) {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.rows[topoName] == nil {
		m.rows[topoName] = make(map[topology.WorkerID]workerMetric)
	}
	m.rows[topoName][mr.Worker] = workerMetric{resp: mr, host: host, at: time.Now()}
	m.resps++
}

// OnTick implements App: issue a METRIC_REQ sweep at most once per
// PollInterval, and expire stale rows.
func (m *MetricsCollector) OnTick(c *Controller) {
	interval := m.PollInterval
	if interval == 0 {
		interval = time.Second
	}
	m.mu.Lock()
	due := interval > 0 && time.Since(m.lastPoll[c.ID()]) >= interval
	if due {
		m.lastPoll[c.ID()] = time.Now()
	}
	m.expireLocked()
	m.mu.Unlock()
	if due {
		m.Poll(c)
	}
}

// Poll sends one METRIC_REQ to every worker of every topology through the
// data plane (PACKET_OUT → switch → worker port). The HTTP layer's /api/top
// handler calls it so a scrape always triggers a fresh sweep.
func (m *MetricsCollector) Poll(c *Controller) {
	m.mu.Lock()
	m.token++
	token := m.token
	m.polls++
	m.mu.Unlock()
	req := control.Encode(control.KindMetricReq, control.MetricReq{Token: token})
	for _, name := range c.TopologyNames() {
		// Sharded control plane: the topology's owner polls it; everyone
		// else stays quiet so workers see one METRIC_REQ stream.
		if !c.OwnsTopology(name) {
			continue
		}
		_, p := c.Topology(name)
		if p == nil {
			continue
		}
		for _, as := range p.Workers {
			_ = c.SendControlTuple(name, as.Worker, req)
		}
	}
}

func (m *MetricsCollector) expireLocked() {
	ttl := m.TTL
	if ttl <= 0 {
		ttl = 30 * time.Second
	}
	cutoff := time.Now().Add(-ttl)
	for topo, byWorker := range m.rows {
		for id, row := range byWorker {
			if row.at.Before(cutoff) {
				delete(byWorker, id)
			}
		}
		if len(byWorker) == 0 {
			delete(m.rows, topo)
		}
	}
}

// Rows returns the cached worker table sorted by topology, node, worker —
// the worker half of the observability top view.
func (m *MetricsCollector) Rows() []observe.WorkerRow {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.expireLocked()
	now := time.Now()
	var out []observe.WorkerRow
	for topo, byWorker := range m.rows {
		for id, row := range byWorker {
			out = append(out, observe.WorkerRow{
				Topo:      topo,
				Node:      row.resp.Node,
				Worker:    uint32(id),
				Host:      row.host,
				QueueLen:  row.resp.QueueLen,
				Processed: row.resp.Processed,
				Emitted:   row.resp.Emitted,
				Dropped:   row.resp.Dropped,
				ProcSecs:  float64(row.resp.ProcNanos) / 1e9,
				AgeSecs:   now.Sub(row.at).Seconds(),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Topo != out[j].Topo {
			return out[i].Topo < out[j].Topo
		}
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Worker < out[j].Worker
	})
	return out
}

// Register adds the collector's cached rows to a registry as per-worker
// gauge samples (typhoon_worker_*) plus its own sweep counters.
func (m *MetricsCollector) Register(reg *observe.Registry) {
	reg.CounterFunc("typhoon_collector_polls_total",
		"METRIC_REQ sweeps issued by the metrics collector.", nil,
		func() uint64 { m.mu.Lock(); defer m.mu.Unlock(); return m.polls })
	reg.CounterFunc("typhoon_collector_metric_resps_total",
		"METRIC_RESP control tuples cached by the metrics collector.", nil,
		func() uint64 { m.mu.Lock(); defer m.mu.Unlock(); return m.resps })
	reg.AddCollector(func(emit func(observe.Sample)) {
		for _, r := range m.Rows() {
			labels := observe.Labels{
				"topo": r.Topo, "node": r.Node,
				"worker": strconv.FormatUint(uint64(r.Worker), 10), "host": r.Host,
			}
			emit(observe.Sample{Name: "typhoon_worker_queue_frames", Kind: observe.KindGauge,
				Help: "Worker input backlog (decoded tuples plus switch-port queue).", Labels: labels, Value: float64(r.QueueLen)})
			emit(observe.Sample{Name: "typhoon_worker_processed_tuples_total", Kind: observe.KindCounter,
				Help: "Tuples executed by the worker.", Labels: labels, Value: float64(r.Processed)})
			emit(observe.Sample{Name: "typhoon_worker_emitted_tuples_total", Kind: observe.KindCounter,
				Help: "Tuples emitted by the worker.", Labels: labels, Value: float64(r.Emitted)})
			emit(observe.Sample{Name: "typhoon_worker_dropped_tuples_total", Kind: observe.KindCounter,
				Help: "Tuples or frames the worker's transport dropped.", Labels: labels, Value: float64(r.Dropped)})
			emit(observe.Sample{Name: "typhoon_worker_proc_seconds_total", Kind: observe.KindCounter,
				Help: "Cumulative execute time of the worker.", Labels: labels, Value: r.ProcSecs})
			emit(observe.Sample{Name: "typhoon_worker_stats_age_seconds", Kind: observe.KindGauge,
				Help: "Age of the worker's last METRIC_RESP.", Labels: labels, Value: r.AgeSecs})
		}
	})
}

// topoByApp resolves a topology name from a data-plane application ID.
func (c *Controller) topoByApp(app uint16) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	for name, ts := range c.topos {
		if ts.logical != nil && ts.logical.App == app {
			return name
		}
	}
	return ""
}

// TopologyNames lists the controller's cached topologies.
func (c *Controller) TopologyNames() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.topos))
	for name := range c.topos {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

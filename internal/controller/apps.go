package controller

import (
	"sync"
	"time"

	"typhoon/internal/control"
	"typhoon/internal/openflow"
	"typhoon/internal/packet"
	"typhoon/internal/topology"
	"typhoon/internal/tuple"
)

// FaultDetector is the §4 fault-detector app: instead of waiting for
// heartbeat timeouts, it reacts to unexpected switch port removals by
// immediately rerouting traffic away from the dead worker (Fig 10b).
type FaultDetector struct {
	BaseApp

	mu sync.Mutex
	// dead tracks workers redirected away from, per topology, until a
	// newer physical generation resurrects or removes them.
	dead map[string]map[topology.WorkerID]bool
	// Detected counts reacted-to failures (experiments read it).
	detected int
}

// NewFaultDetector builds the app.
func NewFaultDetector() *FaultDetector {
	return &FaultDetector{dead: make(map[string]map[topology.WorkerID]bool)}
}

// Name implements App.
func (f *FaultDetector) Name() string { return "fault-detector" }

// Detected reports how many failures the app reacted to.
func (f *FaultDetector) Detected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.detected
}

// OnPortStatus implements App.
func (f *FaultDetector) OnPortStatus(c *Controller, host string, ev openflow.PortStatus) {
	if ev.Reason != openflow.PortDeleted {
		return
	}
	var zero packet.Addr
	if ev.Addr == zero {
		return
	}
	// Identify the victim from its data-plane address; snapshot the
	// topology views under the lock (SyncTopology swaps them).
	c.mu.Lock()
	var topoName string
	var l *topology.Logical
	var p *topology.Physical
	for name, cand := range c.topos {
		if cand.logical != nil && cand.logical.App == ev.Addr.App() {
			topoName, l, p = name, cand.logical, cand.physical
			break
		}
	}
	c.mu.Unlock()
	if l == nil || p == nil {
		return
	}
	victim := topology.WorkerID(ev.Addr.Worker())
	as := p.Worker(victim)
	if as == nil {
		return // expected removal: worker no longer assigned
	}
	f.mu.Lock()
	if f.dead[topoName] == nil {
		f.dead[topoName] = make(map[topology.WorkerID]bool)
	}
	alreadyDead := f.dead[topoName][victim]
	f.dead[topoName][victim] = true
	if !alreadyDead {
		f.detected++
	}
	f.mu.Unlock()

	// Proactively steer predecessors to the surviving instances, well
	// before any heartbeat timeout fires.
	for _, pred := range topology.Predecessors(l, p, as.Node) {
		routes := topology.RoutesFor(l, p, pred.Node)
		for i := range routes {
			routes[i].NextHops = without(routes[i].NextHops, victim)
		}
		_ = c.SendControlTuple(topoName, pred.Worker,
			control.Encode(control.KindRouting, control.Routing{Routes: routes}))
	}
}

func without(hops []topology.WorkerID, id topology.WorkerID) []topology.WorkerID {
	out := hops[:0:0]
	for _, h := range hops {
		if h != id {
			out = append(out, h)
		}
	}
	return out
}

// AutoScalePolicy configures the auto-scaler for one node.
type AutoScalePolicy struct {
	Topo string
	Node string
	// ScaleUpQueue triggers a scale-up when a worker's queue exceeds it.
	ScaleUpQueue int
	// ScaleDownQueue triggers a scale-down when every worker's queue is
	// below it (and parallelism > Min).
	ScaleDownQueue int
	Min, Max       int
	// Cooldown spaces scaling actions.
	Cooldown time.Duration
}

// AutoScaler is the §4 auto-scaler app: it polls worker statistics with
// METRIC_REQ control tuples and initiates scale up/down through the
// streaming manager when queue levels cross thresholds (Fig 11).
type AutoScaler struct {
	BaseApp

	mu       sync.Mutex
	policies []AutoScalePolicy
	latest   map[string]map[topology.WorkerID]control.MetricResp
	lastAct  map[string]time.Time
	token    uint64
	scaleUps int
}

// NewAutoScaler builds the app.
func NewAutoScaler() *AutoScaler {
	return &AutoScaler{
		latest:  make(map[string]map[topology.WorkerID]control.MetricResp),
		lastAct: make(map[string]time.Time),
	}
}

// Name implements App.
func (a *AutoScaler) Name() string { return "auto-scaler" }

// AddPolicy registers an auto-scaling policy.
func (a *AutoScaler) AddPolicy(p AutoScalePolicy) {
	if p.Cooldown <= 0 {
		p.Cooldown = 2 * time.Second
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.policies = append(a.policies, p)
}

// ScaleUps reports how many scale-up actions were initiated.
func (a *AutoScaler) ScaleUps() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.scaleUps
}

// OnTick implements App: request metrics and evaluate policies.
func (a *AutoScaler) OnTick(c *Controller) {
	a.mu.Lock()
	policies := append([]AutoScalePolicy(nil), a.policies...)
	a.token++
	token := a.token
	a.mu.Unlock()

	for _, pol := range policies {
		if !c.OwnsTopology(pol.Topo) {
			continue // another controller owns this topology's scaling
		}
		l, p := c.Topology(pol.Topo)
		if l == nil {
			continue
		}
		for _, as := range p.Instances(pol.Node) {
			_ = c.SendControlTuple(pol.Topo, as.Worker,
				control.Encode(control.KindMetricReq, control.MetricReq{Token: token}))
		}
		a.evaluate(c, pol, l, p)
	}
}

// OnControlTuple implements App: collect METRIC_RESP statistics.
func (a *AutoScaler) OnControlTuple(c *Controller, host string, src packet.Addr, t tuple.Tuple) {
	kind, err := control.DecodeKind(t)
	if err != nil || kind != control.KindMetricResp {
		return
	}
	var mr control.MetricResp
	if control.DecodePayload(t, &mr) != nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	key := nodeKey(mr.Node)
	if a.latest[key] == nil {
		a.latest[key] = make(map[topology.WorkerID]control.MetricResp)
	}
	a.latest[key][mr.Worker] = mr
}

func nodeKey(node string) string { return node }

func (a *AutoScaler) evaluate(c *Controller, pol AutoScalePolicy, l *topology.Logical, p *topology.Physical) {
	mgr := c.Manager()
	if mgr == nil {
		return
	}
	node := l.Node(pol.Node)
	if node == nil {
		return
	}
	a.mu.Lock()
	stats := a.latest[nodeKey(pol.Node)]
	last := a.lastAct[pol.Topo+"/"+pol.Node]
	var maxQ, minQ, seen int
	minQ = 1 << 30
	for _, as := range p.Instances(pol.Node) {
		mr, ok := stats[as.Worker]
		if !ok {
			continue
		}
		seen++
		if mr.QueueLen > maxQ {
			maxQ = mr.QueueLen
		}
		if mr.QueueLen < minQ {
			minQ = mr.QueueLen
		}
	}
	a.mu.Unlock()
	if seen == 0 || time.Since(last) < pol.Cooldown {
		return
	}
	par := node.Parallelism
	switch {
	case maxQ > pol.ScaleUpQueue && (pol.Max <= 0 || par < pol.Max):
		if err := mgr.SetParallelism(pol.Topo, pol.Node, par+1); err == nil {
			a.mu.Lock()
			a.scaleUps++
			a.lastAct[pol.Topo+"/"+pol.Node] = time.Now()
			a.mu.Unlock()
		}
	case seen == par && maxQ < pol.ScaleDownQueue && par > pol.Min && pol.Min > 0:
		if err := mgr.SetParallelism(pol.Topo, pol.Node, par-1); err == nil {
			a.mu.Lock()
			a.lastAct[pol.Topo+"/"+pol.Node] = time.Now()
			a.mu.Unlock()
		}
	}
}

package controller

import (
	"testing"

	"typhoon/internal/openflow"
	"typhoon/internal/packet"
	"typhoon/internal/topology"
	"typhoon/internal/tuple"
)

// fixture: src(w1@h1) -> mid(w2@h1, w3@h2) -> sink(w4@h2)
func fixture(policy topology.RoutingPolicy) (*topology.Logical, *topology.Physical) {
	l := &topology.Logical{
		App: 1, Name: "t",
		Nodes: []topology.NodeSpec{
			{Name: "src", Logic: "l", Parallelism: 1, Source: true},
			{Name: "mid", Logic: "l", Parallelism: 2},
			{Name: "sink", Logic: "l", Parallelism: 1},
		},
		Edges: []topology.EdgeSpec{
			{From: "src", To: "mid", Policy: policy, HashFields: []int{0}},
			{From: "mid", To: "sink", Policy: topology.Global},
		},
	}
	p := &topology.Physical{
		App: 1, Name: "t", NextWorker: 5,
		Workers: []topology.Assignment{
			{Worker: 1, Node: "src", Index: 0, Host: "h1", Port: 10},
			{Worker: 2, Node: "mid", Index: 0, Host: "h1", Port: 11},
			{Worker: 3, Node: "mid", Index: 1, Host: "h2", Port: 20},
			{Worker: 4, Node: "sink", Index: 0, Host: "h2", Port: 21},
		},
	}
	return l, p
}

var testTun = map[string]uint32{"h1": 99, "h2": 98}

func unitWeight(topology.WorkerID) uint16 { return 1 }

func compile(t *testing.T, policy topology.RoutingPolicy) map[ruleKey]openflow.FlowMod {
	t.Helper()
	l, p := fixture(policy)
	rules, _ := compileRules(l, p, testTun, func(topology.WorkerID) uint32 { return 1 }, unitWeight, 0, 0)
	return rules
}

func findRule(rules map[ruleKey]openflow.FlowMod, host string, pred func(openflow.FlowMod) bool) *openflow.FlowMod {
	for k, fm := range rules {
		if k.host == host && pred(fm) {
			out := fm
			return &out
		}
	}
	return nil
}

func TestCompileLocalUnicast(t *testing.T) {
	rules := compile(t, topology.Shuffle)
	// src(w1) -> mid(w2), same host: plain output rule.
	fm := findRule(rules, "h1", func(fm openflow.FlowMod) bool {
		return fm.Match.DlDst == packet.WorkerAddr(1, 2) && fm.Match.InPort == 10
	})
	if fm == nil {
		t.Fatal("local unicast rule missing")
	}
	if len(fm.Actions) != 1 || fm.Actions[0].Port != 11 {
		t.Fatalf("actions = %v", fm.Actions)
	}
}

func TestCompileRemoteUnicastUsesTunnel(t *testing.T) {
	rules := compile(t, topology.Shuffle)
	// Sender rule on h1: set_tun_dst=h2, output tunnel (Table 3).
	send := findRule(rules, "h1", func(fm openflow.FlowMod) bool {
		return fm.Match.DlDst == packet.WorkerAddr(1, 3)
	})
	if send == nil {
		t.Fatal("remote sender rule missing")
	}
	if send.Actions[0].Type != openflow.ActSetTunnelDst || send.Actions[0].Host != "h2" {
		t.Fatalf("sender actions = %v", send.Actions)
	}
	if send.Actions[1].Port != testTun["h1"] {
		t.Fatal("sender must output to its tunnel port")
	}
	// Receiver rule on h2: in_port=tunnel → worker port.
	recv := findRule(rules, "h2", func(fm openflow.FlowMod) bool {
		return fm.Match.DlDst == packet.WorkerAddr(1, 3) && fm.Match.InPort == testTun["h2"]
	})
	if recv == nil {
		t.Fatal("remote receiver rule missing")
	}
	if recv.Actions[0].Port != 20 {
		t.Fatalf("receiver actions = %v", recv.Actions)
	}
}

func TestCompileControllerRules(t *testing.T) {
	rules := compile(t, topology.Shuffle)
	n := 0
	for k, fm := range rules {
		if fm.Priority == prioControl {
			n++
			if fm.Match.DlDst != packet.ControllerAddr {
				t.Fatal("controller rule must match the controller address")
			}
			if fm.Actions[0].Port != openflow.PortController {
				t.Fatal("controller rule must output to CONTROLLER")
			}
			_ = k
		}
	}
	if n != 4 {
		t.Fatalf("controller rules = %d, want one per worker", n)
	}
}

func TestCompileBroadcast(t *testing.T) {
	rules := compile(t, topology.All)
	// One ingress broadcast rule on h1 covering the local port and the
	// remote host's tunnel exactly once.
	fm := findRule(rules, "h1", func(fm openflow.FlowMod) bool {
		return fm.Match.DlDst == packet.Broadcast && fm.Match.InPort == 10
	})
	if fm == nil {
		t.Fatal("broadcast ingress rule missing")
	}
	var localOut, tunOut, setTun int
	for _, a := range fm.Actions {
		switch {
		case a.Type == openflow.ActOutput && a.Port == 11:
			localOut++
		case a.Type == openflow.ActOutput && a.Port == testTun["h1"]:
			tunOut++
		case a.Type == openflow.ActSetTunnelDst:
			setTun++
		}
	}
	if localOut != 1 || tunOut != 1 || setTun != 1 {
		t.Fatalf("broadcast actions = %v", fm.Actions)
	}
	// Landing rule on h2 replicates to its local target.
	land := findRule(rules, "h2", func(fm openflow.FlowMod) bool {
		return fm.Match.DlDst == packet.Broadcast && fm.Match.InPort == testTun["h2"]
	})
	if land == nil {
		t.Fatal("broadcast landing rule missing")
	}
	if land.Match.DlSrc != packet.WorkerAddr(1, 1) {
		t.Fatal("landing rule must scope by source worker")
	}
}

func TestCompileSDNBalancedGroups(t *testing.T) {
	l, p := fixture(topology.SDNBalanced)
	rules, groups := compileRules(l, p, testTun, func(topology.WorkerID) uint32 { return 7 }, unitWeight, 0, 0)
	if len(groups) != 1 || groups[0].host != "h1" {
		t.Fatalf("groups = %+v", groups)
	}
	gm := groups[0].gm
	if gm.Type != openflow.GroupSelect || len(gm.Buckets) != 2 {
		t.Fatalf("group = %+v", gm)
	}
	// Each bucket rewrites the destination; the remote one tunnels.
	for _, b := range gm.Buckets {
		if b.Actions[0].Type != openflow.ActSetDlDst {
			t.Fatal("bucket must rewrite destination")
		}
	}
	fm := findRule(rules, "h1", func(fm openflow.FlowMod) bool {
		return fm.Match.DlDst == packet.Broadcast && fm.Match.InPort == 10
	})
	if fm == nil || fm.Actions[0].Type != openflow.ActGroup || fm.Actions[0].Group != 7 {
		t.Fatalf("group ingress rule = %+v", fm)
	}
	// Remote landing rules exist for the rewritten destination.
	if findRule(rules, "h2", func(fm openflow.FlowMod) bool {
		return fm.Match.DlDst == packet.WorkerAddr(1, 3) && fm.Match.InPort == testTun["h2"]
	}) == nil {
		t.Fatal("SDN-balanced remote landing rule missing")
	}
}

func TestCompileIdleTimeoutApplied(t *testing.T) {
	l, p := fixture(topology.Shuffle)
	rules, _ := compileRules(l, p, testTun, func(topology.WorkerID) uint32 { return 1 }, unitWeight, 1234, 0)
	for _, fm := range rules {
		if fm.IdleTimeoutMs != 1234 {
			t.Fatalf("idle timeout not applied: %+v", fm)
		}
	}
}

func TestCompileAckEdges(t *testing.T) {
	// Framework streams compile like any other edge: acker unicast rules.
	l, p := fixture(topology.Shuffle)
	l.Edges = append(l.Edges, topology.EdgeSpec{
		From: "src", To: "sink", Policy: topology.Fields,
		HashFields: []int{1}, Stream: tuple.AckStream,
	})
	rules, _ := compileRules(l, p, testTun, func(topology.WorkerID) uint32 { return 1 }, unitWeight, 0, 0)
	if findRule(rules, "h1", func(fm openflow.FlowMod) bool {
		return fm.Match.DlDst == packet.WorkerAddr(1, 4) && fm.Match.InPort == 10
	}) == nil {
		t.Fatal("ack edge rule missing")
	}
}

func TestStaleRuleIdleMs(t *testing.T) {
	if staleRuleIdleMs(0) != 2000 {
		t.Fatal("default stale idle timeout")
	}
	if staleRuleIdleMs(500000000) != 500 { // 500ms in ns
		t.Fatal("configured stale idle timeout")
	}
}

// QoS compilation: data rules carry the topology meter and a set_queue
// selecting the rate class's egress queue; control punts stay untouched.
func TestCompileRulesQoS(t *testing.T) {
	l, p := fixture(topology.Shuffle)
	l.QoSClass = topology.QoSBurstable
	rules, _ := compileRules(l, p, testTun, func(topology.WorkerID) uint32 { return 1 }, unitWeight, 0, 42)
	for _, fm := range rules {
		if fm.Priority == prioControl {
			if fm.Meter != 0 {
				t.Fatalf("control rule got metered: %+v", fm)
			}
			continue
		}
		if fm.Meter != 42 {
			t.Fatalf("data rule missing meter: %+v", fm)
		}
		a := fm.Actions[0]
		if a.Type != openflow.ActSetQueue || a.Queue != topology.QoSClassID(topology.QoSBurstable) {
			t.Fatalf("data rule missing class queue: %+v", fm)
		}
	}
	// QoS off (meterID 0): byte-identical to the legacy rule set.
	plain, _ := compileRules(l, p, testTun, func(topology.WorkerID) uint32 { return 1 }, unitWeight, 0, 0)
	for _, fm := range plain {
		if fm.Meter != 0 || fm.Actions[0].Type == openflow.ActSetQueue {
			t.Fatalf("QoS leaked into non-QoS compilation: %+v", fm)
		}
	}
}

package controller

import (
	"reflect"
	"strconv"
	"strings"
	"time"

	"typhoon/internal/control"
	"typhoon/internal/openflow"
	"typhoon/internal/packet"
	"typhoon/internal/paths"
	"typhoon/internal/topology"
)

// Rule priorities, mirroring Table 3's rule classes.
const (
	prioControl uint16 = 200 // worker → controller
	prioData    uint16 = 100 // unicast worker → worker
	prioBcast   uint16 = 90  // one-to-many / SDN-balanced ingress
)

type ruleKey struct {
	host     string
	match    string
	priority uint16
}

// SyncTopology reconciles the data plane with the coordinator state for one
// topology: missing rules are installed, stale rules deleted, and — when
// the topology generation advanced — the stable-update control tuples of
// §3.5 are injected (SIGNAL flushes for stateful nodes, ROUTING updates,
// ACTIVATE for sources).
func (c *Controller) SyncTopology(name string) {
	if c.outage.Load() {
		return // a dead controller reconciles nothing
	}
	c.syncMu.Lock()
	defer c.syncMu.Unlock()
	lraw, _, lerr := c.kv.Get(paths.Logical(name))
	praw, _, perr := c.kv.Get(paths.Physical(name))
	if lerr != nil || perr != nil {
		c.teardownTopology(name)
		return
	}
	l, err1 := topology.DecodeLogical(lraw)
	p, err2 := topology.DecodePhysical(praw)
	if err1 != nil || err2 != nil {
		return
	}
	// The manager writes the logical topology before the physical one; a
	// sync that catches the gap would act on a stale assignment. Wait for
	// the matching physical generation.
	if p.Generation != l.Generation {
		return
	}
	// Deployment readiness: every worker must be attached to a port and
	// every host's datapath connected.
	for _, as := range p.Workers {
		if as.Port == 0 {
			return
		}
	}
	tun := make(map[string]uint32)
	for _, host := range p.Hosts() {
		dp := c.datapath(host)
		if dp == nil {
			return
		}
		tp, ok := tunnelPort(dp)
		if !ok && len(p.Hosts()) > 1 {
			return
		}
		tun[host] = tp
	}

	c.mu.Lock()
	ts := c.topos[name]
	if ts == nil {
		ts = &topoState{
			installed: make(map[ruleKey]openflow.FlowMod),
			groups:    make(map[topology.WorkerID]uint32),
			ctlGen:    -1,
		}
		c.topos[name] = ts
	}
	prevPhysical := ts.physical
	prevLogical := ts.logical
	prevInstalled := ts.installed
	ctlGen := ts.ctlGen
	// Allocate stable group IDs for SDN-balanced source workers.
	groupOf := func(w topology.WorkerID) uint32 {
		if id, ok := ts.groups[w]; ok {
			return id
		}
		id := c.nextGp
		c.nextGp++
		ts.groups[w] = id
		return id
	}
	weightsSnap := make(map[topology.WorkerID]uint16, len(ts.lbWeights))
	for w, wt := range ts.lbWeights {
		weightsSnap[w] = wt
	}
	// QoS: every topology owns one meter ID; its data rules reference it
	// and classify onto the egress queue of the topology's rate class.
	var meterID uint32
	if c.opts.EnableQoS {
		if ts.meterID == 0 {
			ts.meterID = c.nextMt
			c.nextMt++
		}
		meterID = ts.meterID
	}
	ratesSnap := make(map[string]uint64, len(ts.meterRates))
	for h, r := range ts.meterRates {
		ratesSnap[h] = r
	}
	c.mu.Unlock()
	weightOf := func(w topology.WorkerID) uint16 {
		if wt, ok := weightsSnap[w]; ok && wt > 0 {
			return wt
		}
		return 1
	}

	idle := uint32(0)
	if c.opts.RuleIdleTimeout > 0 {
		idle = uint32(c.opts.RuleIdleTimeout / time.Millisecond)
	}
	desired, groups := compileRules(l, p, tun, groupOf, weightOf, idle, meterID)

	// Apply live-debugger taps: mirror the tapped workers' egress rules
	// to their debug ports. Doing it here keeps taps stable across
	// reconciliation syncs.
	c.mu.Lock()
	mirrors := make(map[topology.WorkerID]uint32, len(ts.mirrors))
	for w, port := range ts.mirrors {
		mirrors[w] = port
	}
	c.mu.Unlock()
	for src, debugPort := range mirrors {
		as := p.Worker(src)
		if as == nil {
			continue
		}
		srcAddr := packet.WorkerAddr(l.App, uint32(src))
		for key, fm := range desired {
			if key.host != as.Host || fm.Priority == prioControl {
				continue
			}
			bySrc := fm.Match.Fields.Has(openflow.FieldDlSrc) && fm.Match.DlSrc == srcAddr
			byPort := fm.Match.Fields.Has(openflow.FieldInPort) && fm.Match.InPort == as.Port
			if !bySrc && !byPort {
				continue
			}
			fm.Actions = append(append([]openflow.Action(nil), fm.Actions...), openflow.Output(debugPort))
			desired[key] = fm
		}
	}

	// Replicated control plane: shard by switch mastership. This controller
	// programs only the switches it masters; the rest of the rule set is
	// some other master's job, and stale cache entries for hosts we lost
	// are forgotten without sends (the new master already owns them).
	repl := c.replicated()
	var mine map[string]bool
	if repl {
		mine = c.masteredHosts()
		for key := range desired {
			if !mine[key.host] {
				delete(desired, key)
			}
		}
		kept := make([]hostGroupMod, 0, len(groups))
		for _, g := range groups {
			if mine[g.host] {
				kept = append(kept, g)
			}
		}
		groups = kept
	}

	// Program meters before rules. A rule referencing a not-yet-programmed
	// meter passes unmetered, so ordering is a courtesy, not a correctness
	// requirement; identical re-adds are switch-side no-ops and rate changes
	// retune in place, so resending every sync keeps reconciliation simple
	// and makes mastership failover self-healing.
	if meterID != 0 {
		for _, host := range p.Hosts() {
			if repl && !mine[host] {
				continue
			}
			rate, ok := ratesSnap[host]
			if !ok {
				rate = l.QoSRateBps // configured rate until the allocator speaks
			}
			if dp := c.datapath(host); dp != nil {
				_, _ = dp.conn.Send(openflow.MeterMod{
					Command: openflow.MeterAdd, MeterID: meterID, RateBps: rate,
				})
			}
		}
	}

	// Program groups first so rules never reference a missing group.
	for _, g := range groups {
		if dp := c.datapath(g.host); dp != nil {
			_, _ = dp.conn.Send(g.gm)
		}
	}
	adds := 0
	for key, fm := range desired {
		if prev, ok := prevInstalled[key]; ok && reflect.DeepEqual(prev, fm) {
			continue
		}
		if dp := c.datapath(key.host); dp != nil {
			_, _ = dp.conn.Send(fm)
			adds++
		}
	}
	for key, fm := range prevInstalled {
		if _, ok := desired[key]; ok {
			continue
		}
		if repl && !mine[key.host] {
			continue // mastership moved away; the new master owns this rule
		}
		if dp := c.datapath(key.host); dp != nil {
			// §3.5: rules of removed workers are not deleted abruptly —
			// in-flight tuples may still match them while predecessors'
			// routing updates propagate. Re-install the rule with an idle
			// timeout so it expires once traffic ceases.
			expiring := fm
			expiring.Command = openflow.FlowAdd
			expiring.IdleTimeoutMs = staleRuleIdleMs(c.opts.RuleIdleTimeout)
			_, _ = dp.conn.Send(expiring)
		}
	}

	c.mu.Lock()
	ts.logical = l
	ts.physical = p
	ts.installed = desired
	ts.ready = true
	c.mu.Unlock()

	// Announce per-host readiness: each switch's master marks the hosts it
	// just programmed so the topology owner can tell when the whole data
	// plane carries this generation before issuing control tuples.
	if repl {
		gen := strconv.FormatInt(l.Generation, 10)
		for _, host := range p.Hosts() {
			if mine[host] {
				c.putMarker(paths.NetReadyHost(name, host), gen)
			}
		}
	}

	// Control tuples are the topology owner's job: exactly one controller
	// (the master of the topology's home switch) drives §3.5, so workers
	// never see duplicate SIGNAL/ROUTING/ACTIVATE streams.
	owns := c.ownsPhysical(p)

	// A managed rescale (updater app) pauses the topology: while the
	// marker is up, the updater owns the §3.5 choreography — state moves
	// by snapshot/restore rather than SIGNAL flush, and sources stay
	// deactivated until migration finishes.
	paused := c.topologyPaused(name)

	if ctlGen < l.Generation {
		if !owns {
			return
		}
		if repl && !c.hostsReady(name, p, l.Generation, mine) {
			return // other masters have not installed this generation yet
		}
		// Stable update (§3.5): flush stateful nodes whose instance sets
		// changed, then refresh routing state everywhere, then activate.
		if prevPhysical != nil && prevLogical != nil && !paused {
			flushed := false
			for _, node := range l.Nodes {
				if !node.Stateful {
					continue
				}
				if instancesEqual(prevPhysical.Instances(node.Name), p.Instances(node.Name)) {
					continue
				}
				for _, as := range prevPhysical.Instances(node.Name) {
					if p.Worker(as.Worker) != nil {
						_ = c.SendControlTuple(name, as.Worker, control.Encode(control.KindSignal, nil))
						flushed = true
					}
				}
			}
			if flushed {
				time.Sleep(c.opts.StatefulFlushDelay)
			}
		}
		for _, as := range p.Workers {
			routes := topology.RoutesFor(l, p, as.Node)
			_ = c.SendControlTuple(name, as.Worker,
				control.Encode(control.KindRouting, control.Routing{Routes: routes}))
		}
		if !paused {
			c.activateSources(name, l, p)
		}
		c.mu.Lock()
		ts.ctlGen = l.Generation
		c.mu.Unlock()
		_, _ = c.kv.Put(paths.NetReady(name), []byte(strconv.FormatInt(l.Generation, 10)))
	} else if owns {
		// Port churn without a generation change (e.g. a crashed worker
		// locally restarted on a fresh port): re-arm routing and re-activate
		// sources that restarted throttled. Routing goes to every worker of
		// the topology, not just the churned ones — the fault detector may
		// have steered predecessors away from a worker that is now back, and
		// only a full refresh re-includes it in their route tables. Churn is
		// detected from the physical assignment rather than local rule adds
		// because in a sharded control plane the churned host may belong to
		// a different master.
		churned := false
		if prevPhysical != nil {
			for _, as := range p.Workers {
				prev := prevPhysical.Worker(as.Worker)
				if prev == nil || prev.Port != as.Port || prev.Host != as.Host {
					churned = true
					break
				}
			}
		}
		if churned {
			for _, as := range p.Workers {
				routes := topology.RoutesFor(l, p, as.Node)
				_ = c.SendControlTuple(name, as.Worker,
					control.Encode(control.KindRouting, control.Routing{Routes: routes}))
			}
		}
		if (adds > 0 || churned) && !paused {
			c.activateSources(name, l, p)
		}
	}
}

// putMarker writes a marker node only when its value changes, so
// steady-state reconciliation generates no coordinator watch traffic.
func (c *Controller) putMarker(path, val string) {
	if raw, _, err := c.kv.Get(path); err == nil && string(raw) == val {
		return
	}
	_, _ = c.kv.Put(path, []byte(val))
}

// hostsReady reports whether every host of the topology carries the rules
// of generation gen, per the per-host markers each switch's master writes.
// Our own hosts are implicitly ready — this sync just installed them.
func (c *Controller) hostsReady(name string, p *topology.Physical, gen int64, mine map[string]bool) bool {
	for _, h := range p.Hosts() {
		if mine[h] {
			continue
		}
		raw, _, err := c.kv.Get(paths.NetReadyHost(name, h))
		if err != nil {
			return false
		}
		g, err := strconv.ParseInt(string(raw), 10, 64)
		if err != nil || g < gen {
			return false
		}
	}
	return true
}

// topologyPaused reports whether a managed rescale holds the topology's
// pause marker.
func (c *Controller) topologyPaused(name string) bool {
	_, _, err := c.kv.Get(paths.Paused(name))
	return err == nil
}

// invalidateRule drops a removed rule from every topology's reconciliation
// cache so the next SyncTopology reinstalls it (FlowRemoved handling: idle
// expiry or a chaos flow-table wipe).
func (c *Controller) invalidateRule(host string, fr openflow.FlowRemoved) {
	key := ruleKey{host: host, match: fr.Match.String(), priority: fr.Priority}
	c.mu.Lock()
	for _, ts := range c.topos {
		if _, ok := ts.installed[key]; ok {
			delete(ts.installed, key)
		}
	}
	c.mu.Unlock()
}

func (c *Controller) activateSources(name string, l *topology.Logical, p *topology.Physical) {
	for _, node := range l.Nodes {
		if !node.Source {
			continue
		}
		for _, as := range p.Instances(node.Name) {
			_ = c.SendControlTuple(name, as.Worker, control.Encode(control.KindActivate, nil))
		}
	}
}

func (c *Controller) teardownTopology(name string) {
	c.mu.Lock()
	ts := c.topos[name]
	delete(c.topos, name)
	c.mu.Unlock()
	if ts == nil {
		return
	}
	hosts := make(map[string]bool)
	for key, fm := range ts.installed {
		hosts[key.host] = true
		if dp := c.datapath(key.host); dp != nil {
			_, _ = dp.conn.Send(openflow.FlowMod{
				Command:  openflow.FlowDeleteStrict,
				Priority: fm.Priority,
				Match:    fm.Match,
			})
		}
	}
	if ts.meterID != 0 {
		for host := range hosts {
			if dp := c.datapath(host); dp != nil {
				_, _ = dp.conn.Send(openflow.MeterMod{
					Command: openflow.MeterDelete, MeterID: ts.meterID,
				})
			}
		}
	}
}

func instancesEqual(a, b []topology.Assignment) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Worker != b[i].Worker {
			return false
		}
	}
	return true
}

// staleRuleIdleMs picks the idle timeout for rules being phased out.
func staleRuleIdleMs(configured time.Duration) uint32 {
	if configured > 0 {
		return uint32(configured / time.Millisecond)
	}
	return 2000
}

// tunnelPort finds the datapath's tunnel port by its conventional name.
func tunnelPort(dp *Datapath) (uint32, bool) {
	for _, p := range dp.ports {
		if strings.HasPrefix(p.Name, "tun") {
			return p.No, true
		}
	}
	return 0, false
}

// compileRules translates a scheduled topology into the Table 3 rule set.
// With a non-zero meterID, data rules (not control punts) are metered and
// classified onto the egress queue of the topology's rate class, which is
// how tenant traffic picks up its QoS treatment at every switch and tunnel.
func compileRules(l *topology.Logical, p *topology.Physical, tun map[string]uint32,
	groupOf func(topology.WorkerID) uint32, weightOf func(topology.WorkerID) uint16,
	idleMs uint32, meterID uint32) (map[ruleKey]openflow.FlowMod, []hostGroupMod) {

	rules := make(map[ruleKey]openflow.FlowMod)
	var groups []hostGroupMod
	queue := topology.QoSClassID(l.QoSClass)
	addr := func(id topology.WorkerID) packet.Addr {
		return packet.WorkerAddr(l.App, uint32(id))
	}
	add := func(host string, fm openflow.FlowMod) {
		fm.IdleTimeoutMs = idleMs
		if meterID != 0 && fm.Priority != prioControl {
			fm.Meter = meterID
			fm.Actions = append([]openflow.Action{openflow.SetQueue(queue)}, fm.Actions...)
		}
		rules[ruleKey{host: host, match: fm.Match.String(), priority: fm.Priority}] = fm
	}

	// Worker → controller rules (METRIC_RESP and other PacketIn traffic).
	for _, as := range p.Workers {
		add(as.Host, openflow.FlowMod{
			Command:  openflow.FlowAdd,
			Priority: prioControl,
			Match: openflow.Match{
				Fields: openflow.FieldInPort | openflow.FieldDlDst | openflow.FieldEtherType,
				InPort: as.Port, DlDst: packet.ControllerAddr, EtherType: packet.EtherType,
			},
			Actions: []openflow.Action{openflow.Output(openflow.PortController)},
		})
	}

	// Broadcast targets per source worker, merged across All edges.
	bcastTargets := make(map[topology.WorkerID][]topology.Assignment)
	// SDN-balanced targets per source worker.
	lbTargets := make(map[topology.WorkerID][]topology.Assignment)

	for _, e := range l.Edges {
		srcs := p.Instances(e.From)
		dsts := p.Instances(e.To)
		switch e.Policy {
		case topology.All:
			for _, s := range srcs {
				bcastTargets[s.Worker] = append(bcastTargets[s.Worker], dsts...)
			}
		case topology.SDNBalanced:
			for _, s := range srcs {
				lbTargets[s.Worker] = append(lbTargets[s.Worker], dsts...)
			}
			// Remote receivers still need unicast landing rules after the
			// group rewrites the destination.
			for _, s := range srcs {
				for _, d := range dsts {
					if d.Host != s.Host {
						addRemoteReceiver(add, tun, addr, s, d)
					}
				}
			}
		default:
			// Unicast fabric: Shuffle, Fields, Global, Direct.
			for _, s := range srcs {
				for _, d := range dsts {
					if s.Host == d.Host {
						add(s.Host, openflow.FlowMod{
							Command:  openflow.FlowAdd,
							Priority: prioData,
							Match:    unicastMatch(s.Port, addr(s.Worker), addr(d.Worker)),
							Actions:  []openflow.Action{openflow.Output(d.Port)},
						})
					} else {
						add(s.Host, openflow.FlowMod{
							Command:  openflow.FlowAdd,
							Priority: prioData,
							Match:    unicastMatch(s.Port, addr(s.Worker), addr(d.Worker)),
							Actions: []openflow.Action{
								openflow.SetTunnelDst(d.Host),
								openflow.Output(tun[s.Host]),
							},
						})
						addRemoteReceiver(add, tun, addr, s, d)
					}
				}
			}
		}
	}

	// One-to-many transfer: a single ingress rule per source worker whose
	// action list covers local ports and each remote host's tunnel once.
	for _, e := range l.Edges {
		if e.Policy != topology.All {
			continue
		}
		for _, s := range p.Instances(e.From) {
			dsts := bcastTargets[s.Worker]
			if dsts == nil {
				continue
			}
			var acts []openflow.Action
			remoteHosts := map[string]bool{}
			remoteDsts := map[string][]topology.Assignment{}
			for _, d := range dsts {
				if d.Host == s.Host {
					acts = append(acts, openflow.Output(d.Port))
				} else {
					remoteHosts[d.Host] = true
					remoteDsts[d.Host] = append(remoteDsts[d.Host], d)
				}
			}
			for h := range remoteHosts {
				acts = append(acts, openflow.SetTunnelDst(h), openflow.Output(tun[s.Host]))
			}
			add(s.Host, openflow.FlowMod{
				Command:  openflow.FlowAdd,
				Priority: prioBcast,
				Match: openflow.Match{
					Fields: openflow.FieldInPort | openflow.FieldDlDst | openflow.FieldEtherType,
					InPort: s.Port, DlDst: packet.Broadcast, EtherType: packet.EtherType,
				},
				Actions: acts,
			})
			// Remote landing rules replicate to that host's targets.
			for h, ds := range remoteDsts {
				var outs []openflow.Action
				for _, d := range ds {
					outs = append(outs, openflow.Output(d.Port))
				}
				add(h, openflow.FlowMod{
					Command:  openflow.FlowAdd,
					Priority: prioBcast,
					Match: openflow.Match{
						Fields: openflow.FieldInPort | openflow.FieldDlSrc | openflow.FieldDlDst | openflow.FieldEtherType,
						InPort: tun[h], DlSrc: addr(s.Worker), DlDst: packet.Broadcast, EtherType: packet.EtherType,
					},
					Actions: outs,
				})
			}
			bcastTargets[s.Worker] = nil
		}
	}

	// SDN load balancing: a select group per source worker rewrites the
	// broadcast destination in weighted round robin (§4).
	for w, dsts := range lbTargets {
		if len(dsts) == 0 {
			continue
		}
		s := p.Worker(w)
		if s == nil {
			continue
		}
		gid := groupOf(w)
		var buckets []openflow.Bucket
		for _, d := range dsts {
			var acts []openflow.Action
			acts = append(acts, openflow.SetDlDst(addr(d.Worker)))
			if d.Host == s.Host {
				acts = append(acts, openflow.Output(d.Port))
			} else {
				acts = append(acts, openflow.SetTunnelDst(d.Host), openflow.Output(tun[s.Host]))
			}
			buckets = append(buckets, openflow.Bucket{Weight: weightOf(d.Worker), Actions: acts})
		}
		groups = append(groups, hostGroupMod{
			host: s.Host,
			gm: openflow.GroupMod{
				Command: openflow.GroupAdd,
				GroupID: gid,
				Type:    openflow.GroupSelect,
				Buckets: buckets,
			},
		})
		add(s.Host, openflow.FlowMod{
			Command:  openflow.FlowAdd,
			Priority: prioBcast,
			Match: openflow.Match{
				Fields: openflow.FieldInPort | openflow.FieldDlDst | openflow.FieldEtherType,
				InPort: s.Port, DlDst: packet.Broadcast, EtherType: packet.EtherType,
			},
			Actions: []openflow.Action{openflow.ToGroup(gid)},
		})
	}

	return rules, groups
}

type hostGroupMod struct {
	host string
	gm   openflow.GroupMod
}

func unicastMatch(inPort uint32, src, dst packet.Addr) openflow.Match {
	return openflow.Match{
		Fields: openflow.FieldInPort | openflow.FieldDlSrc | openflow.FieldDlDst | openflow.FieldEtherType,
		InPort: inPort, DlSrc: src, DlDst: dst, EtherType: packet.EtherType,
	}
}

func addRemoteReceiver(add func(string, openflow.FlowMod), tun map[string]uint32,
	addr func(topology.WorkerID) packet.Addr, s, d topology.Assignment) {
	add(d.Host, openflow.FlowMod{
		Command:  openflow.FlowAdd,
		Priority: prioData,
		Match: openflow.Match{
			Fields: openflow.FieldInPort | openflow.FieldDlSrc | openflow.FieldDlDst | openflow.FieldEtherType,
			InPort: tun[d.Host], DlSrc: addr(s.Worker), DlDst: addr(d.Worker), EtherType: packet.EtherType,
		},
		Actions: []openflow.Action{openflow.Output(d.Port)},
	})
}

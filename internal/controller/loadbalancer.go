package controller

import (
	"fmt"
	"sync"

	"typhoon/internal/control"
	"typhoon/internal/packet"
	"typhoon/internal/topology"
	"typhoon/internal/tuple"
)

// LoadBalancer is the §4 SDN load-balancer app. Edges declared with the
// SDNBalanced policy are compiled into switch select groups; this app
// adjusts bucket weights — manually via SetWeights, or automatically from
// worker queue statistics so slow or straggling workers receive fewer
// tuples than round robin would give them.
type LoadBalancer struct {
	BaseApp

	mu      sync.Mutex
	latest  map[topology.WorkerID]control.MetricResp
	auto    []AutoBalancePolicy
	token   uint64
	applied int
}

// AutoBalancePolicy enables automatic rebalancing for one edge.
type AutoBalancePolicy struct {
	Topo string
	// Node is the downstream node whose instances are balanced.
	Node string
	// MaxWeight caps a bucket's weight.
	MaxWeight uint16
}

// NewLoadBalancer builds the app.
func NewLoadBalancer() *LoadBalancer {
	return &LoadBalancer{latest: make(map[topology.WorkerID]control.MetricResp)}
}

// Name implements App.
func (lb *LoadBalancer) Name() string { return "sdn-load-balancer" }

// AddPolicy enables automatic weight adjustment for a node.
func (lb *LoadBalancer) AddPolicy(p AutoBalancePolicy) {
	if p.MaxWeight == 0 {
		p.MaxWeight = 8
	}
	lb.mu.Lock()
	defer lb.mu.Unlock()
	lb.auto = append(lb.auto, p)
}

// Applied reports how many weight updates were pushed (tests).
func (lb *LoadBalancer) Applied() int {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	return lb.applied
}

// SetWeights reweights the select groups feeding node via SDNBalanced
// edges. Weights become controller state (Controller.SetGroupWeights), so
// rule reconciliation re-applies rather than resets them.
func (lb *LoadBalancer) SetWeights(c *Controller, topoName, node string, weights map[topology.WorkerID]uint16) error {
	l, _ := c.Topology(topoName)
	if l == nil {
		return fmt.Errorf("loadbalancer: unknown topology %q", topoName)
	}
	balanced := false
	for _, e := range l.InEdges(node) {
		if e.Policy == topology.SDNBalanced {
			balanced = true
		}
	}
	if !balanced {
		return fmt.Errorf("loadbalancer: no SDN-balanced edges into node %q", node)
	}
	if err := c.SetGroupWeights(topoName, weights); err != nil {
		return err
	}
	lb.mu.Lock()
	lb.applied++
	lb.mu.Unlock()
	return nil
}

// OnControlTuple implements App: collect queue statistics.
func (lb *LoadBalancer) OnControlTuple(c *Controller, host string, src packet.Addr, t tuple.Tuple) {
	kind, err := control.DecodeKind(t)
	if err != nil || kind != control.KindMetricResp {
		return
	}
	var mr control.MetricResp
	if control.DecodePayload(t, &mr) != nil {
		return
	}
	lb.mu.Lock()
	defer lb.mu.Unlock()
	lb.latest[mr.Worker] = mr
}

// OnTick implements App: poll metrics and rebalance per policy.
func (lb *LoadBalancer) OnTick(c *Controller) {
	lb.mu.Lock()
	policies := append([]AutoBalancePolicy(nil), lb.auto...)
	lb.token++
	token := lb.token
	lb.mu.Unlock()
	for _, pol := range policies {
		if !c.OwnsTopology(pol.Topo) {
			continue // another controller owns this topology's balancing
		}
		l, p := c.Topology(pol.Topo)
		if l == nil {
			continue
		}
		instances := p.Instances(pol.Node)
		for _, as := range instances {
			_ = c.SendControlTuple(pol.Topo, as.Worker,
				control.Encode(control.KindMetricReq, control.MetricReq{Token: token}))
		}
		lb.mu.Lock()
		queues := make(map[topology.WorkerID]int, len(instances))
		for _, as := range instances {
			if mr, ok := lb.latest[as.Worker]; ok {
				queues[as.Worker] = mr.QueueLen
			} else {
				queues[as.Worker] = -1
			}
		}
		lb.mu.Unlock()
		weights, imbalanced := autoWeights(queues, pol.MaxWeight)
		if imbalanced {
			_ = lb.SetWeights(c, pol.Topo, pol.Node, weights)
		}
	}
}

// autoWeights computes select-group bucket weights from worker queue
// depths: weight is inverse to backlog, so the most backlogged worker
// (the straggler) gets 1 and a fully drained worker gets maxWeight. A
// queue depth of -1 marks a worker with no statistics yet; it keeps the
// neutral weight 1. The second result reports whether any backlog exists —
// with all queues empty there is nothing to rebalance.
func autoWeights(queues map[topology.WorkerID]int, maxWeight uint16) (map[topology.WorkerID]uint16, bool) {
	if maxWeight == 0 {
		maxWeight = 1
	}
	maxQ := 0
	for _, q := range queues {
		if q > maxQ {
			maxQ = q
		}
	}
	weights := make(map[topology.WorkerID]uint16, len(queues))
	for w, q := range queues {
		weights[w] = 1
		if q >= 0 && maxQ > 0 {
			weights[w] = uint16(1 + (int(maxWeight)-1)*(maxQ-q)/maxQ)
		}
	}
	return weights, maxQ > 0
}

package controller

import (
	"fmt"
	"sync"
	"time"

	"typhoon/internal/control"
	"typhoon/internal/packet"
	"typhoon/internal/topology"
	"typhoon/internal/tuple"
)

// sleepTick is a short coordination pause used by apps awaiting
// asynchronous state convergence.
func sleepTick() { time.Sleep(20 * time.Millisecond) }

// LoadBalancer is the §4 SDN load-balancer app. Edges declared with the
// SDNBalanced policy are compiled into switch select groups; this app
// adjusts bucket weights — manually via SetWeights, or automatically from
// worker queue statistics so slow or straggling workers receive fewer
// tuples than round robin would give them.
type LoadBalancer struct {
	BaseApp

	mu      sync.Mutex
	latest  map[topology.WorkerID]control.MetricResp
	auto    []AutoBalancePolicy
	token   uint64
	applied int
}

// AutoBalancePolicy enables automatic rebalancing for one edge.
type AutoBalancePolicy struct {
	Topo string
	// Node is the downstream node whose instances are balanced.
	Node string
	// MaxWeight caps a bucket's weight.
	MaxWeight uint16
}

// NewLoadBalancer builds the app.
func NewLoadBalancer() *LoadBalancer {
	return &LoadBalancer{latest: make(map[topology.WorkerID]control.MetricResp)}
}

// Name implements App.
func (lb *LoadBalancer) Name() string { return "sdn-load-balancer" }

// AddPolicy enables automatic weight adjustment for a node.
func (lb *LoadBalancer) AddPolicy(p AutoBalancePolicy) {
	if p.MaxWeight == 0 {
		p.MaxWeight = 8
	}
	lb.mu.Lock()
	defer lb.mu.Unlock()
	lb.auto = append(lb.auto, p)
}

// Applied reports how many weight updates were pushed (tests).
func (lb *LoadBalancer) Applied() int {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	return lb.applied
}

// SetWeights reweights the select groups feeding node via SDNBalanced
// edges. Weights become controller state (Controller.SetGroupWeights), so
// rule reconciliation re-applies rather than resets them.
func (lb *LoadBalancer) SetWeights(c *Controller, topoName, node string, weights map[topology.WorkerID]uint16) error {
	l, _ := c.Topology(topoName)
	if l == nil {
		return fmt.Errorf("loadbalancer: unknown topology %q", topoName)
	}
	balanced := false
	for _, e := range l.InEdges(node) {
		if e.Policy == topology.SDNBalanced {
			balanced = true
		}
	}
	if !balanced {
		return fmt.Errorf("loadbalancer: no SDN-balanced edges into node %q", node)
	}
	if err := c.SetGroupWeights(topoName, weights); err != nil {
		return err
	}
	lb.mu.Lock()
	lb.applied++
	lb.mu.Unlock()
	return nil
}

// OnControlTuple implements App: collect queue statistics.
func (lb *LoadBalancer) OnControlTuple(c *Controller, host string, src packet.Addr, t tuple.Tuple) {
	kind, err := control.DecodeKind(t)
	if err != nil || kind != control.KindMetricResp {
		return
	}
	var mr control.MetricResp
	if control.DecodePayload(t, &mr) != nil {
		return
	}
	lb.mu.Lock()
	defer lb.mu.Unlock()
	lb.latest[mr.Worker] = mr
}

// OnTick implements App: poll metrics and rebalance per policy.
func (lb *LoadBalancer) OnTick(c *Controller) {
	lb.mu.Lock()
	policies := append([]AutoBalancePolicy(nil), lb.auto...)
	lb.token++
	token := lb.token
	lb.mu.Unlock()
	for _, pol := range policies {
		l, p := c.Topology(pol.Topo)
		if l == nil {
			continue
		}
		instances := p.Instances(pol.Node)
		for _, as := range instances {
			_ = c.SendControlTuple(pol.Topo, as.Worker,
				control.Encode(control.KindMetricReq, control.MetricReq{Token: token}))
		}
		// Weight inversely to queue depth: drained workers get more.
		lb.mu.Lock()
		maxQ := 0
		for _, as := range instances {
			if mr, ok := lb.latest[as.Worker]; ok && mr.QueueLen > maxQ {
				maxQ = mr.QueueLen
			}
		}
		weights := make(map[topology.WorkerID]uint16, len(instances))
		for _, as := range instances {
			mr, ok := lb.latest[as.Worker]
			if !ok {
				weights[as.Worker] = 1
				continue
			}
			w := uint16(1)
			if maxQ > 0 {
				w = uint16(1 + (int(pol.MaxWeight)-1)*(maxQ-mr.QueueLen)/maxQ)
			}
			weights[as.Worker] = w
		}
		lb.mu.Unlock()
		if maxQ > 0 {
			_ = lb.SetWeights(c, pol.Topo, pol.Node, weights)
		}
	}
}

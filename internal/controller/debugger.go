package controller

import (
	"fmt"
	"sync"
	"time"

	"typhoon/internal/observe"
	"typhoon/internal/topology"
)

// DebugNodePrefix names detached debug nodes added by the live debugger.
const DebugNodePrefix = "__debug"

// LiveDebugger is the §4 live-debugger app: it dynamically deploys a debug
// worker next to a running topology and mirrors a tapped worker's egress
// frames to it with packet-mirroring rules — no extra application-level
// serialization, so the pipeline's throughput is unaffected (Fig 12,
// Table 5).
//
// The mirror itself is controller state (Controller.AddMirror), so it
// survives rule reconciliation and topology reconfiguration; Attach and
// Detach manage the debug worker's lifecycle around it.
type LiveDebugger struct {
	BaseApp

	mu     sync.Mutex
	taps   map[string]string // "topo/worker" -> debug node name
	traces *observe.TraceLog
}

// NewLiveDebugger builds the app.
func NewLiveDebugger() *LiveDebugger {
	return &LiveDebugger{taps: make(map[string]string)}
}

// Name implements App.
func (d *LiveDebugger) Name() string { return "live-debugger" }

// AttachTraceLog hands the debugger the cluster's completed tuple-path
// traces, making the sampled hop-by-hop view part of the live-debugging
// surface alongside packet mirroring.
func (d *LiveDebugger) AttachTraceLog(l *observe.TraceLog) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.traces = l
}

// RecentTraces returns up to n recently completed tuple-path traces, most
// recent first (n <= 0 returns all retained). Nil without an attached log.
func (d *LiveDebugger) RecentTraces(n int) []observe.TraceRecord {
	d.mu.Lock()
	l := d.traces
	d.mu.Unlock()
	if l == nil {
		return nil
	}
	return l.Recent(n)
}

// Attach deploys a debug worker with the given logic on the host of the
// tapped worker and mirrors that worker's egress rules to it. It returns
// the debug node's name.
func (d *LiveDebugger) Attach(c *Controller, topoName string, src topology.WorkerID, debugLogic string) (string, error) {
	mgr := c.Manager()
	if mgr == nil {
		return "", fmt.Errorf("debugger: no manager attached")
	}
	l, p := c.Topology(topoName)
	if l == nil {
		return "", fmt.Errorf("debugger: unknown topology %q", topoName)
	}
	as := p.Worker(src)
	if as == nil {
		return "", fmt.Errorf("debugger: unknown worker %d", src)
	}
	debugNode := fmt.Sprintf("%s-%d", DebugNodePrefix, src)
	err := mgr.AddDetachedNode(topoName, topology.NodeSpec{
		Name:        debugNode,
		Logic:       debugLogic,
		Parallelism: 1,
	}, as.Host)
	if err != nil {
		return "", err
	}
	// Wait for the debug worker's switch port through the controller's
	// converging view of the physical topology.
	var debugPort uint32
	awaitCond(4*time.Second, func() bool {
		_, cur := c.Topology(topoName)
		if cur != nil {
			for _, cand := range cur.Instances(debugNode) {
				if cand.Port != 0 {
					debugPort = cand.Port
				}
			}
		}
		return debugPort != 0
	})
	if debugPort == 0 {
		_ = mgr.RemoveNode(topoName, debugNode)
		return "", fmt.Errorf("debugger: debug worker did not attach")
	}
	if err := c.AddMirror(topoName, src, debugPort); err != nil {
		_ = mgr.RemoveNode(topoName, debugNode)
		return "", err
	}
	d.mu.Lock()
	d.taps[tapKey(topoName, src)] = debugNode
	d.mu.Unlock()
	return debugNode, nil
}

// Detach removes the mirror rules and the debug worker.
func (d *LiveDebugger) Detach(c *Controller, topoName string, src topology.WorkerID) error {
	d.mu.Lock()
	debugNode, ok := d.taps[tapKey(topoName, src)]
	delete(d.taps, tapKey(topoName, src))
	d.mu.Unlock()
	if !ok {
		return fmt.Errorf("debugger: no tap for worker %d", src)
	}
	c.RemoveMirror(topoName, src)
	if mgr := c.Manager(); mgr != nil {
		return mgr.RemoveNode(topoName, debugNode)
	}
	return nil
}

func tapKey(topo string, id topology.WorkerID) string {
	return fmt.Sprintf("%s/%d", topo, id)
}

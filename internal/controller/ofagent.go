package controller

import (
	"fmt"
	"net"
	"sync"

	"typhoon/internal/openflow"
	"typhoon/internal/switchfabric"
)

// OFAgent is the switch-side protocol endpoint: it connects a software SDN
// switch to the controller over TCP, answers FEATURES/ECHO, applies
// FLOW_MOD/GROUP_MOD/PACKET_OUT/STATS_REQUEST to the switch, and forwards
// the switch's asynchronous events (PACKET_IN, PORT_STATUS, FLOW_REMOVED)
// upstream. It is the part of the prototype that lives inside DPDK-OVS.
type OFAgent struct {
	sw   *switchfabric.Switch
	conn *openflow.Conn

	closeOnce sync.Once
	done      chan struct{}
}

// ConnectSwitch dials the controller and runs the handshake; the agent then
// serves the connection until Close. It registers itself as the switch's
// controller sink.
func ConnectSwitch(addr string, sw *switchfabric.Switch) (*OFAgent, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("controller: dial: %w", err)
	}
	a := &OFAgent{sw: sw, conn: openflow.NewConn(nc), done: make(chan struct{})}
	if _, err := a.conn.Send(openflow.Hello{}); err != nil {
		nc.Close()
		return nil, err
	}
	sw.SetController(a)
	go a.serve()
	return a, nil
}

// Close tears down the connection.
func (a *OFAgent) Close() {
	a.closeOnce.Do(func() {
		_ = a.conn.Close()
	})
	<-a.done
}

// PacketIn implements switchfabric.ControllerSink.
func (a *OFAgent) PacketIn(m openflow.PacketIn) { _, _ = a.conn.Send(m) }

// PortStatus implements switchfabric.ControllerSink.
func (a *OFAgent) PortStatus(m openflow.PortStatus) { _, _ = a.conn.Send(m) }

// FlowRemoved implements switchfabric.ControllerSink.
func (a *OFAgent) FlowRemoved(m openflow.FlowRemoved) { _, _ = a.conn.Send(m) }

func (a *OFAgent) serve() {
	defer close(a.done)
	for {
		xid, msg, err := a.conn.Receive()
		if err != nil {
			return
		}
		switch m := msg.(type) {
		case openflow.Hello:
			// Peer greeting; nothing to do.
		case openflow.EchoRequest:
			_ = a.conn.SendXID(xid, openflow.EchoReply{Payload: m.Payload})
		case openflow.FeaturesRequest:
			_ = a.conn.SendXID(xid, openflow.FeaturesReply{
				DatapathID: a.sw.DatapathID(),
				Host:       a.sw.Name(),
				Ports:      a.sw.Ports(),
			})
		case openflow.FlowMod:
			if err := a.sw.ApplyFlowMod(m); err != nil {
				_ = a.conn.SendXID(xid, openflow.Error{Code: openflow.ErrCodeBadRequest, Msg: err.Error()})
			}
		case openflow.GroupMod:
			if err := a.sw.ApplyGroupMod(m); err != nil {
				_ = a.conn.SendXID(xid, openflow.Error{Code: openflow.ErrCodeUnknownGroup, Msg: err.Error()})
			}
		case openflow.PacketOut:
			if err := a.sw.Inject(m); err != nil {
				_ = a.conn.SendXID(xid, openflow.Error{Code: openflow.ErrCodeBadRequest, Msg: err.Error()})
			}
		case openflow.StatsRequest:
			reply := openflow.StatsReply{Kind: m.Kind}
			switch m.Kind {
			case openflow.StatsPort:
				reply.Ports = a.sw.PortStatsSnapshot()
			case openflow.StatsFlow:
				reply.Flows = a.sw.FlowStatsSnapshot()
			}
			_ = a.conn.SendXID(xid, reply)
		}
	}
}

package controller

import (
	"fmt"
	"net"
	"sync"
	"time"

	"typhoon/internal/openflow"
	"typhoon/internal/switchfabric"
)

// OFAgent is the switch-side protocol endpoint: it connects a software SDN
// switch to the controller over TCP, answers FEATURES/ECHO, applies
// FLOW_MOD/GROUP_MOD/PACKET_OUT/STATS_REQUEST to the switch, and forwards
// the switch's asynchronous events (PACKET_IN, PORT_STATUS, FLOW_REMOVED)
// upstream. It is the part of the prototype that lives inside DPDK-OVS.
type OFAgent struct {
	sw   *switchfabric.Switch
	conn *openflow.Conn

	closeOnce sync.Once
	done      chan struct{}
}

// ConnectSwitch dials the controller and runs the handshake; the agent then
// serves the connection until Close. It registers itself as the switch's
// controller sink.
func ConnectSwitch(addr string, sw *switchfabric.Switch) (*OFAgent, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("controller: dial: %w", err)
	}
	a := &OFAgent{sw: sw, conn: openflow.NewConn(nc), done: make(chan struct{})}
	if _, err := a.conn.Send(openflow.Hello{}); err != nil {
		nc.Close()
		return nil, err
	}
	sw.SetController(a)
	go a.serve()
	return a, nil
}

// Close tears down the connection.
func (a *OFAgent) Close() {
	a.closeOnce.Do(func() {
		_ = a.conn.Close()
	})
	<-a.done
}

// PacketIn implements switchfabric.ControllerSink.
func (a *OFAgent) PacketIn(m openflow.PacketIn) { _, _ = a.conn.Send(m) }

// PortStatus implements switchfabric.ControllerSink.
func (a *OFAgent) PortStatus(m openflow.PortStatus) { _, _ = a.conn.Send(m) }

// FlowRemoved implements switchfabric.ControllerSink.
func (a *OFAgent) FlowRemoved(m openflow.FlowRemoved) { _, _ = a.conn.Send(m) }

func (a *OFAgent) serve() {
	defer close(a.done)
	serveOF(a.conn, a.sw, a)
}

// serveOF runs the switch side of one controller connection until it fails,
// dispatching every controller-to-switch message. The sink identifies this
// connection in the switch's controller registry (mastership claims attach
// to it).
func serveOF(conn *openflow.Conn, sw *switchfabric.Switch, sink switchfabric.ControllerSink) {
	for {
		xid, msg, err := conn.Receive()
		if err != nil {
			return
		}
		switch m := msg.(type) {
		case openflow.Hello:
			// Peer greeting; nothing to do.
		case openflow.EchoRequest:
			_ = conn.SendXID(xid, openflow.EchoReply{Payload: m.Payload})
		case openflow.FeaturesRequest:
			_ = conn.SendXID(xid, openflow.FeaturesReply{
				DatapathID: sw.DatapathID(),
				Host:       sw.Name(),
				Ports:      sw.Ports(),
			})
		case openflow.RoleRequest:
			// Epoch-fenced mastership claim from a replicated controller;
			// the switch refuses stale epochs (see Switch.ClaimMaster).
			if m.Master {
				sw.ClaimMaster(sink, m.Epoch)
			} else {
				sw.ReleaseMaster(sink, m.Epoch)
			}
		case openflow.FlowMod:
			if err := sw.ApplyFlowMod(m); err != nil {
				_ = conn.SendXID(xid, openflow.Error{Code: openflow.ErrCodeBadRequest, Msg: err.Error()})
			}
		case openflow.GroupMod:
			if err := sw.ApplyGroupMod(m); err != nil {
				_ = conn.SendXID(xid, openflow.Error{Code: openflow.ErrCodeUnknownGroup, Msg: err.Error()})
			}
		case openflow.MeterMod:
			if err := sw.ApplyMeterMod(m); err != nil {
				_ = conn.SendXID(xid, openflow.Error{Code: openflow.ErrCodeBadRequest, Msg: err.Error()})
			}
		case openflow.PacketOut:
			if err := sw.Inject(m); err != nil {
				_ = conn.SendXID(xid, openflow.Error{Code: openflow.ErrCodeBadRequest, Msg: err.Error()})
			}
		case openflow.StatsRequest:
			reply := openflow.StatsReply{Kind: m.Kind}
			switch m.Kind {
			case openflow.StatsPort:
				reply.Ports = sw.PortStatsSnapshot()
			case openflow.StatsFlow:
				reply.Flows = sw.FlowStatsSnapshot()
			}
			_ = conn.SendXID(xid, reply)
		}
	}
}

// Agent redial backoff, matching the data-plane tunnel pattern.
const (
	agentRedialBase = 50 * time.Millisecond
	agentRedialMax  = 5 // max backoff shift: 50ms << 5 = 1.6s
)

// MultiAgent connects one switch to every controller of a replicated
// control plane. Each endpoint gets a dedicated link that attaches as a
// controller sink and is maintained forever: when a controller dies, the
// link redials with exponential backoff until it is back, then re-attaches
// so the controller can re-assert its role. Mastership is claimed per-link
// via ROLE_REQUEST, so the switch always knows which connection is master.
type MultiAgent struct {
	sw *switchfabric.Switch

	mu     sync.Mutex
	conns  map[*openflow.Conn]struct{}
	closed bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// ConnectSwitchMulti starts one maintained connection per controller
// address. Unlike ConnectSwitch it does not fail if a controller is down:
// the link keeps dialing in the background, which is exactly the behaviour
// a switch needs while a controller restarts.
func ConnectSwitchMulti(addrs []string, sw *switchfabric.Switch) *MultiAgent {
	m := &MultiAgent{
		sw:    sw,
		conns: make(map[*openflow.Conn]struct{}),
		stop:  make(chan struct{}),
	}
	for _, addr := range addrs {
		m.wg.Add(1)
		go m.maintain(addr)
	}
	return m
}

// Close severs every link and stops redialing.
func (m *MultiAgent) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	close(m.stop)
	for conn := range m.conns {
		_ = conn.Close()
	}
	m.mu.Unlock()
	m.wg.Wait()
}

// track registers a live connection for Close to sever; it reports false
// when the agent is already closed.
func (m *MultiAgent) track(conn *openflow.Conn) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	m.conns[conn] = struct{}{}
	return true
}

func (m *MultiAgent) untrack(conn *openflow.Conn) {
	m.mu.Lock()
	delete(m.conns, conn)
	m.mu.Unlock()
}

func (m *MultiAgent) maintain(addr string) {
	defer m.wg.Done()
	fails := 0
	for {
		select {
		case <-m.stop:
			return
		default:
		}
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			shift := fails
			if shift > agentRedialMax {
				shift = agentRedialMax
			}
			select {
			case <-m.stop:
				return
			case <-time.After(agentRedialBase << shift):
			}
			fails++
			continue
		}
		fails = 0
		conn := openflow.NewConn(nc)
		if !m.track(conn) {
			_ = conn.Close()
			return
		}
		link := &ofLink{conn: conn}
		if _, err := conn.Send(openflow.Hello{}); err == nil {
			m.sw.AttachController(link)
			serveOF(conn, m.sw, link)
			// Detach releases mastership if this link held it; the switch
			// buffers master-only events until a successor claims the role.
			m.sw.DetachController(link)
		}
		m.untrack(conn)
		_ = conn.Close()
	}
}

// ofLink is one controller connection of a MultiAgent.
type ofLink struct {
	conn *openflow.Conn
}

// PacketIn implements switchfabric.ControllerSink.
func (l *ofLink) PacketIn(m openflow.PacketIn) { _, _ = l.conn.Send(m) }

// PortStatus implements switchfabric.ControllerSink.
func (l *ofLink) PortStatus(m openflow.PortStatus) { _, _ = l.conn.Send(m) }

// FlowRemoved implements switchfabric.ControllerSink.
func (l *ofLink) FlowRemoved(m openflow.FlowRemoved) { _, _ = l.conn.Send(m) }

package controller

import "time"

// pollInterval paces condition re-checks in awaitCond: fine-grained enough
// that convergence waits add at most ~1 ms of latency (the fixed 20 ms
// sleeps it replaced dominated reconfiguration time in tight harnesses).
const pollInterval = time.Millisecond

// awaitCond polls cond until it reports true or the timeout elapses,
// returning whether the condition was met. It is the shared condition-wait
// used by control plane applications awaiting asynchronous convergence
// (debug worker attachment, drain completion, readiness markers).
func awaitCond(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(pollInterval)
	}
}

package controller

import (
	"testing"

	"typhoon/internal/coordinator"
	"typhoon/internal/openflow"
	"typhoon/internal/packet"
	"typhoon/internal/topology"
	"typhoon/internal/workload"
)

// fdTestController builds an unstarted controller whose cache already holds
// one topology view, so OnPortStatus can be driven directly.
func fdTestController(t *testing.T) (*Controller, *topology.Logical, *topology.Physical) {
	t.Helper()
	c, err := New(coordinator.NewStore(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)

	b := topology.NewBuilder("fdtest", 7)
	b.Source("src", workload.LogicSeqSource, 1)
	b.Node("split", workload.LogicSplitter, 2).ShuffleFrom("src")
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := &topology.Physical{
		App: 7, Name: "fdtest", NextWorker: 4,
		Workers: []topology.Assignment{
			{Worker: 1, Node: "src", Index: 0, Host: "h1", Port: 1},
			{Worker: 2, Node: "split", Index: 0, Host: "h1", Port: 2},
			{Worker: 3, Node: "split", Index: 1, Host: "h2", Port: 1},
		},
	}
	c.mu.Lock()
	c.topos["fdtest"] = &topoState{
		logical: l, physical: p,
		installed: make(map[ruleKey]openflow.FlowMod),
		groups:    make(map[topology.WorkerID]uint32),
		ctlGen:    l.Generation,
	}
	c.mu.Unlock()
	return c, l, p
}

func TestFaultDetectorOnPortStatusDetectsWorkerLoss(t *testing.T) {
	c, l, _ := fdTestController(t)
	fd := NewFaultDetector()

	ev := openflow.PortStatus{
		Reason: openflow.PortDeleted,
		Addr:   packet.WorkerAddr(l.App, 2),
	}
	fd.OnPortStatus(c, "h1", ev)
	if got := fd.Detected(); got != 1 {
		t.Fatalf("Detected() = %d after port loss, want 1", got)
	}
	// The same victim's port vanishing again (e.g. a restart-then-crash)
	// is not a new failure.
	fd.OnPortStatus(c, "h1", ev)
	if got := fd.Detected(); got != 1 {
		t.Fatalf("Detected() = %d after duplicate event, want 1 (dedup)", got)
	}
}

func TestFaultDetectorOnPortStatusIgnoresNonFailures(t *testing.T) {
	c, l, _ := fdTestController(t)
	fd := NewFaultDetector()

	// Port additions and modifications are not failures.
	fd.OnPortStatus(c, "h1", openflow.PortStatus{
		Reason: openflow.PortAdded, Addr: packet.WorkerAddr(l.App, 2),
	})
	fd.OnPortStatus(c, "h1", openflow.PortStatus{
		Reason: openflow.PortModified, Addr: packet.WorkerAddr(l.App, 2),
	})
	// A deletion with no bound worker address (e.g. a tunnel port).
	fd.OnPortStatus(c, "h1", openflow.PortStatus{Reason: openflow.PortDeleted})
	// A deletion for an app the controller doesn't manage.
	fd.OnPortStatus(c, "h1", openflow.PortStatus{
		Reason: openflow.PortDeleted, Addr: packet.WorkerAddr(999, 2),
	})
	// A deletion for a worker no longer assigned (expected removal).
	fd.OnPortStatus(c, "h1", openflow.PortStatus{
		Reason: openflow.PortDeleted, Addr: packet.WorkerAddr(l.App, 42),
	})
	if got := fd.Detected(); got != 0 {
		t.Fatalf("Detected() = %d, want 0", got)
	}
}

package controller_test

// The live-debugger tap lifecycle needs a full data plane (manager,
// switches, agents), so this test builds a small core cluster; the
// external test package avoids the core -> controller import cycle.

import (
	"strings"
	"testing"
	"time"

	"typhoon/internal/controller"
	"typhoon/internal/core"
	"typhoon/internal/topology"
	"typhoon/internal/workload"
)

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestLiveDebuggerTapInstallRemove(t *testing.T) {
	c, err := core.NewCluster(core.Config{
		Mode:              core.ModeTyphoon,
		Hosts:             []string{"h1", "h2"},
		HeartbeatInterval: 100 * time.Millisecond,
		HeartbeatTimeout:  2 * time.Second,
		DrainDelay:        100 * time.Millisecond,
		RestartDelay:      200 * time.Millisecond,
		DefaultBatchSize:  50,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	stats := workload.NewStats(100 * time.Millisecond)
	cfg := workload.NewConfig()
	cfg.Set(workload.CfgSourceRate, 2000)
	c.Env.Set(workload.EnvStats, stats)
	c.Env.Set(workload.EnvConfig, cfg)

	b := topology.NewBuilder("tap", 3)
	b.Source("src", workload.LogicSentenceSource, 1)
	b.Node("sink", workload.LogicSink, 1).ShuffleFrom("src")
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(l, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "pipeline flowing", func() bool {
		return stats.Counter("sink.total").Value() > 100
	})

	dbg := controller.NewLiveDebugger()
	c.Controller.AddApp(dbg)
	src := c.WorkersOf("tap", "src")
	if len(src) != 1 {
		t.Fatalf("source workers = %d", len(src))
	}
	srcID := src[0].ID()

	// Install: a debug node appears in the topology and receives mirrored
	// copies of the source's egress without touching the pipeline.
	debugNode, err := dbg.Attach(c.Controller, "tap", srcID, workload.LogicDebugSink)
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	if !strings.HasPrefix(debugNode, controller.DebugNodePrefix) {
		t.Fatalf("debug node %q lacks prefix %q", debugNode, controller.DebugNodePrefix)
	}
	lNow, _, err := c.Manager.Describe("tap")
	if err != nil {
		t.Fatal(err)
	}
	if lNow.Node(debugNode) == nil {
		t.Fatalf("debug node %q not in topology after attach", debugNode)
	}
	waitFor(t, 10*time.Second, "mirrored tuples at debug sink", func() bool {
		return stats.Counter("debug.seen").Value() > 50
	})
	sinkBefore := stats.Counter("sink.total").Value()
	waitFor(t, 10*time.Second, "pipeline still flowing under tap", func() bool {
		return stats.Counter("sink.total").Value() > sinkBefore+100
	})

	// Remove: the debug node leaves the topology, mirroring stops, and a
	// second detach reports there is nothing to remove.
	if err := dbg.Detach(c.Controller, "tap", srcID); err != nil {
		t.Fatalf("detach: %v", err)
	}
	waitFor(t, 10*time.Second, "debug node removed", func() bool {
		lNow, _, err := c.Manager.Describe("tap")
		return err == nil && lNow.Node(debugNode) == nil
	})
	// Mirror teardown is asynchronous: rule reconciliation and in-flight
	// frames settle first, then the count must stay flat while the
	// pipeline keeps moving.
	waitFor(t, 10*time.Second, "mirroring quiesced", func() bool {
		before := stats.Counter("debug.seen").Value()
		time.Sleep(200 * time.Millisecond)
		return stats.Counter("debug.seen").Value() == before
	})
	seenAfterDetach := stats.Counter("debug.seen").Value()
	sinkAfter := stats.Counter("sink.total").Value()
	waitFor(t, 10*time.Second, "pipeline flowing after detach", func() bool {
		return stats.Counter("sink.total").Value() > sinkAfter+100
	})
	if got := stats.Counter("debug.seen").Value(); got > seenAfterDetach {
		t.Fatalf("debug sink still receiving after detach (%d -> %d)", seenAfterDetach, got)
	}
	if err := dbg.Detach(c.Controller, "tap", srcID); err == nil {
		t.Fatal("second detach succeeded; tap bookkeeping not cleared")
	}
}

package controller

import (
	"encoding/json"
	"hash/fnv"
	"sort"
	"time"

	"typhoon/internal/coordinator"
	"typhoon/internal/openflow"
	"typhoon/internal/paths"
	"typhoon/internal/topology"
)

// Replicated control plane (distributed controllers).
//
// When Options.ID is set, N controller instances run concurrently against
// the same coordinator. Each switch has exactly one master at a time,
// elected through a lease at paths.SwitchMaster(host); the remaining
// controllers are slaves that stay connected (hot standby) but receive no
// asynchronous switch events. Sharding is by switch: a controller installs
// rules only on the switches it masters, and the master of a topology's
// first host (its "home" switch) additionally owns the topology's control
// tuples and its app work, so exactly one controller drives each topology.
//
// Election is rendezvous-hashed for spread and sticky for stability: the
// preferred controller of a host claims a vacant or expired lease, the
// current holder renews until it dies, and a non-preferred controller takes
// an expired lease over only after an extra TTL of grace (covering the case
// where the preferred controller died too). Epochs from the lease fence
// role claims at the switch, so a paused ex-master cannot reassert itself.

// registration is the value stored at paths.ControllerReg(id): a heartbeat
// that marks the controller live and advertises its listen address.
type registration struct {
	Addr           string `json:"addr"`
	RenewedAtNanos int64  `json:"renewedAtNanos"`
	TTLNanos       int64  `json:"ttlNanos"`
}

func (r registration) expired(now time.Time) bool {
	return now.UnixNano()-r.RenewedAtNanos > r.TTLNanos
}

// roleState remembers the last role asserted toward a datapath so campaigns
// re-send only on change (mastership gained/lost or epoch advanced).
type roleState struct {
	master bool
	epoch  uint64
}

// replicated reports whether this controller is part of a replicated
// control plane. Standalone controllers (no ID) master every switch
// implicitly and skip the lease machinery entirely.
func (c *Controller) replicated() bool { return c.opts.ID != "" }

// ID returns the controller's instance ID ("" when standalone).
func (c *Controller) ID() string { return c.opts.ID }

// campaign runs one election round: refresh our registration heartbeat,
// compute the live controller set, then acquire/renew/concede the
// mastership lease of every known switch host and assert the resulting
// roles toward connected datapaths.
func (c *Controller) campaign() {
	if !c.replicated() || c.outage.Load() {
		return
	}
	now := time.Now()
	ttl := c.opts.LeaseTTL
	reg := registration{Addr: c.Addr(), RenewedAtNanos: now.UnixNano(), TTLNanos: int64(ttl)}
	b, _ := json.Marshal(reg)
	_, _ = c.kv.Put(paths.ControllerReg(c.opts.ID), b)

	live := c.liveControllers(now)
	hosts := map[string]bool{}
	if kids, err := c.kv.Children(paths.Agents); err == nil {
		for _, h := range kids {
			hosts[h] = true
		}
	}
	c.mu.Lock()
	for h := range c.dps {
		hosts[h] = true
	}
	c.mu.Unlock()

	masters := make(map[string]coordinator.Lease, len(hosts))
	for host := range hosts {
		path := paths.SwitchMaster(host)
		cur, err := coordinator.ReadLease(c.kv, path)
		preferred := rendezvousOwner(host, live) == c.opts.ID
		claim := false
		switch {
		case err != nil:
			// Vacant (or corrupt) lease: the preferred controller claims it.
			claim = preferred
		case cur.Owner == c.opts.ID:
			// Sticky: keep renewing what we hold even if no longer
			// preferred; rebalancing only happens across failures.
			claim = true
		case cur.Expired(now):
			// The holder died. The preferred controller takes over at once;
			// anyone else waits one extra TTL in case the preferred
			// controller is gone too.
			claim = preferred || now.UnixNano()-cur.RenewedAtNanos > 2*cur.TTLNanos
		}
		if claim {
			if l, _, err := coordinator.AcquireLease(c.kv, path, c.opts.ID, ttl, now); err == nil {
				masters[host] = l
				continue
			}
		}
		if err == nil {
			masters[host] = cur
		}
	}
	c.adoptMasters(masters)
}

// adoptMasters installs the campaign's view of mastership and sends
// ROLE_REQUEST to every connected datapath whose role changed.
func (c *Controller) adoptMasters(masters map[string]coordinator.Lease) {
	type assertion struct {
		dp     *Datapath
		master bool
		epoch  uint64
	}
	var out []assertion
	c.mu.Lock()
	c.masters = masters
	for host, dp := range c.dps {
		l, ok := masters[host]
		if !ok {
			continue
		}
		want := roleState{master: l.Owner == c.opts.ID, epoch: l.Epoch}
		prev, had := c.roleSent[host]
		if had && prev == want {
			continue
		}
		c.roleSent[host] = want
		if !want.master && (!had || !prev.master) {
			continue // never were master here; nothing to release
		}
		out = append(out, assertion{dp: dp, master: want.master, epoch: want.epoch})
	}
	c.mu.Unlock()
	for _, a := range out {
		_, _ = a.dp.conn.Send(openflow.RoleRequest{Master: a.master, Epoch: a.epoch})
	}
}

// assertRole re-sends our role toward a freshly connected datapath: the
// switch-side link is new, so any previous master claim died with the old
// connection.
func (c *Controller) assertRole(dp *Datapath) {
	if !c.replicated() {
		return
	}
	c.mu.Lock()
	l, ok := c.masters[dp.host]
	master := ok && l.Owner == c.opts.ID
	if ok {
		c.roleSent[dp.host] = roleState{master: master, epoch: l.Epoch}
	} else {
		delete(c.roleSent, dp.host)
	}
	c.mu.Unlock()
	if master {
		_, _ = dp.conn.Send(openflow.RoleRequest{Master: true, Epoch: l.Epoch})
	}
}

// liveControllers returns the sorted IDs of controllers with unexpired
// registrations, always including this one.
func (c *Controller) liveControllers(now time.Time) []string {
	live := []string{c.opts.ID}
	ids, err := c.kv.Children(paths.Controllers)
	if err != nil {
		return live
	}
	for _, id := range ids {
		if id == c.opts.ID {
			continue
		}
		raw, _, err := c.kv.Get(paths.ControllerReg(id))
		if err != nil {
			continue
		}
		var r registration
		if json.Unmarshal(raw, &r) != nil || r.expired(now) {
			continue
		}
		live = append(live, id)
	}
	sort.Strings(live)
	return live
}

// ControllerLive reports whether a controller's registration heartbeat is
// current (the updater's stale-pause reaper uses this to detect a rescale
// whose driver died).
func (c *Controller) ControllerLive(id string) bool {
	raw, _, err := c.kv.Get(paths.ControllerReg(id))
	if err != nil {
		return false
	}
	var r registration
	if err := json.Unmarshal(raw, &r); err != nil {
		return false
	}
	return !r.expired(time.Now())
}

// rendezvousOwner picks the preferred master of a host among the live
// controllers by highest rendezvous (FNV-1a) score, so switches spread
// evenly and each host's preference is stable under membership churn.
func rendezvousOwner(host string, ids []string) string {
	var best string
	var bestScore uint64
	for _, id := range ids {
		h := fnv.New64a()
		_, _ = h.Write([]byte(host))
		_, _ = h.Write([]byte{'/'})
		_, _ = h.Write([]byte(id))
		s := h.Sum64()
		if best == "" || s > bestScore || (s == bestScore && id < best) {
			best, bestScore = id, s
		}
	}
	return best
}

// IsMaster reports whether this controller masters the given switch host.
// Standalone controllers master everything.
func (c *Controller) IsMaster(host string) bool {
	if !c.replicated() {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	l, ok := c.masters[host]
	return ok && l.Owner == c.opts.ID
}

// MasterOf returns the current master and lease epoch for a switch host as
// this controller sees it.
func (c *Controller) MasterOf(host string) (owner string, epoch uint64, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	l, ok := c.masters[host]
	return l.Owner, l.Epoch, ok
}

// masteredHosts snapshots the hosts this controller currently masters.
func (c *Controller) masteredHosts() map[string]bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]bool, len(c.masters))
	for h, l := range c.masters {
		if l.Owner == c.opts.ID {
			out[h] = true
		}
	}
	return out
}

// ownsPhysical reports whether this controller owns a topology's control
// work: the owner is the master of the topology's home switch — the first
// host in sorted order — so ownership is a pure function of mastership.
func (c *Controller) ownsPhysical(p *topology.Physical) bool {
	if !c.replicated() {
		return true
	}
	hosts := p.Hosts()
	if len(hosts) == 0 {
		return true
	}
	return c.IsMaster(hosts[0])
}

// OwnsTopology reports whether this controller runs the app work (metrics
// polling, auto-scaling, rescales) for the named topology. Control plane
// applications use it to shard themselves.
func (c *Controller) OwnsTopology(name string) bool {
	if !c.replicated() {
		return true
	}
	c.mu.Lock()
	ts := c.topos[name]
	var p *topology.Physical
	if ts != nil {
		p = ts.physical
	}
	c.mu.Unlock()
	if p == nil {
		return false
	}
	return c.ownsPhysical(p)
}

// controlPlaneLoop reacts to mastership movement: when a lease changes
// hands (or disappears) the controller re-campaigns and reconciles at once
// instead of waiting for the next tick, which keeps failover latency at
// lease-expiry granularity rather than tick granularity.
func (c *Controller) controlPlaneLoop(events <-chan coordinator.Event, cancel func()) {
	defer c.wg.Done()
	defer cancel()
	for {
		select {
		case <-c.stopCh:
			return
		case ev, ok := <-events:
			if !ok {
				return
			}
			if c.outage.Load() {
				continue
			}
			if c.masterMoved(ev) {
				c.campaign()
				c.syncAll()
			}
		}
	}
}

// masterMoved filters control-plane events down to those that can change
// mastership: lease deletions and owner/epoch transitions. Renewal writes
// (same owner, same epoch) arrive on every campaign of every controller
// and must not retrigger campaigns, or the watch would feed itself.
func (c *Controller) masterMoved(ev coordinator.Event) bool {
	host, ok := paths.ParseSwitchMaster(ev.Path)
	if !ok {
		return false
	}
	if ev.Type == coordinator.EventDeleted {
		return true
	}
	l, err := coordinator.DecodeLease(ev.Data)
	if err != nil {
		return true
	}
	c.mu.Lock()
	cur, have := c.masters[host]
	c.mu.Unlock()
	return !have || cur.Owner != l.Owner || cur.Epoch != l.Epoch
}

package controller

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"typhoon/internal/control"
	"typhoon/internal/packet"
	"typhoon/internal/paths"
	"typhoon/internal/topology"
	"typhoon/internal/tuple"
	"typhoon/internal/worker"
)

// Updater is the control plane application that executes the paper's §3.5
// stable topology update protocol for stateful rescales. A managed rescale
// runs in three phases:
//
//  1. Pause: a pause marker is written to the coordinator (gating the
//     reconciliation loop's source activation and SIGNAL flushes), all
//     source workers receive DEACTIVATE control tuples, and the pipeline is
//     drained until every worker reports an empty input queue and stable
//     processed counts across two consecutive METRIC_REQ sweeps.
//  2. Migrate: the old instances of the rescaled node answer SNAPSHOT_REQ
//     tuples with their keyed state; the streaming manager reschedules the
//     node at the new parallelism; once the controller has programmed the
//     new generation's flow rules (NetReady), the collected state is
//     re-partitioned with the router's rendezvous hash ring and pushed to
//     every new instance with RESTORE tuples (replace semantics).
//  3. Resume: the pause marker is removed and sources are re-activated.
//
// Every control exchange rides the data plane (PACKET_OUT down, the
// control-stream punt rule up), so the protocol exercises exactly the
// channels the paper describes — and keeps working through tunnel-level
// chaos, because controller connections are host-local.
type Updater struct {
	BaseApp

	// rescaleMu serializes managed rescales.
	rescaleMu sync.Mutex

	mu        sync.Mutex
	token     uint64
	metrics   map[uint64]chan control.MetricResp
	snapshots map[uint64]chan control.SnapshotResp
	restores  map[uint64]chan control.RestoreResp
}

// NewUpdater builds the app.
func NewUpdater() *Updater {
	return &Updater{
		metrics:   make(map[uint64]chan control.MetricResp),
		snapshots: make(map[uint64]chan control.SnapshotResp),
		restores:  make(map[uint64]chan control.RestoreResp),
	}
}

// Name implements App.
func (u *Updater) Name() string { return "stable-updater" }

// RescaleReport describes one completed managed rescale.
type RescaleReport struct {
	// Topology and Node identify the rescaled node.
	Topology string `json:"topology"`
	Node     string `json:"node"`
	// From and To are the old and new parallelism.
	From int `json:"from"`
	To   int `json:"to"`
	// Pause is how long sources were deactivated end to end — the §3.5
	// service interruption the protocol promises to bound.
	Pause time.Duration `json:"pauseNanos"`
	// Drain is the portion of Pause spent waiting for in-flight tuples.
	Drain time.Duration `json:"drainNanos"`
	// KeysMigrated counts state entries moved between instances.
	KeysMigrated int `json:"keysMigrated"`
	// StateBytes is the total size of migrated state blobs.
	StateBytes int `json:"stateBytes"`
	// Generation is the topology generation the rescale produced.
	Generation int64 `json:"generation"`
}

// Rescale changes a node's parallelism with the three-phase stable update
// protocol. It blocks until the rescale completes or timeout elapses
// (zero selects 30 s); on any failure the topology is unpaused and sources
// re-activated before the error returns, so a failed rescale degrades to a
// pause, never a wedged pipeline.
func (u *Updater) Rescale(c *Controller, topoName, node string, parallelism int, timeout time.Duration) (*RescaleReport, error) {
	u.rescaleMu.Lock()
	defer u.rescaleMu.Unlock()
	if parallelism < 1 {
		return nil, fmt.Errorf("updater: parallelism must be >= 1")
	}
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	deadline := time.Now().Add(timeout)

	mgr := c.Manager()
	if mgr == nil {
		return nil, fmt.Errorf("updater: no manager attached")
	}
	l, p := c.Topology(topoName)
	if l == nil || p == nil {
		return nil, fmt.Errorf("updater: unknown topology %q", topoName)
	}
	spec := l.Node(node)
	if spec == nil {
		return nil, fmt.Errorf("updater: unknown node %q", node)
	}
	report := &RescaleReport{
		Topology: topoName, Node: node,
		From: spec.Parallelism, To: parallelism,
	}
	oldInstances := append([]topology.Assignment(nil), p.Instances(node)...)

	// Phase 1: pause. The marker gates the reconciliation loop; the
	// DEACTIVATE tuples throttle sources through the data plane. In a
	// replicated control plane the marker carries the driver's ID so peers
	// can reap it if this controller dies mid-rescale (see OnTick).
	marker := "1"
	if c.replicated() {
		marker = c.opts.ID
	}
	if _, err := c.kv.Put(paths.Paused(topoName), []byte(marker)); err != nil {
		return nil, fmt.Errorf("updater: pause marker: %w", err)
	}
	pauseStart := time.Now()
	resumed := false
	resume := func() {
		if resumed {
			return
		}
		if c.Stopped() {
			// The driving controller died mid-rescale. A dead controller
			// cannot clean up after itself: the pause marker stays, and a
			// surviving peer's reaper (OnTick) resumes the topology once the
			// driver's heartbeat lapses.
			return
		}
		resumed = true
		_ = c.kv.Delete(paths.Paused(topoName))
		if l2, p2 := c.Topology(topoName); l2 != nil {
			c.activateSources(topoName, l2, p2)
		}
		report.Pause = time.Since(pauseStart)
	}
	defer resume()

	u.setSourcesActive(c, topoName, false)

	drainStart := time.Now()
	if err := u.drain(c, topoName, deadline); err != nil {
		return nil, err
	}
	report.Drain = time.Since(drainStart)

	// Phase 2: migrate. Snapshot the old owners, reschedule, wait for the
	// network, then hand each new owner its share of the key space.
	var state map[string][]byte
	if spec.Stateful {
		var err error
		state, err = u.collectSnapshots(c, topoName, oldInstances, deadline)
		if err != nil {
			return nil, err
		}
		report.KeysMigrated = len(state)
		for _, blob := range state {
			report.StateBytes += len(blob)
		}
	}

	if err := mgr.SetParallelism(topoName, node, parallelism); err != nil {
		return nil, fmt.Errorf("updater: reschedule: %w", err)
	}
	lraw, _, err := c.kv.Get(paths.Logical(topoName))
	if err != nil {
		return nil, fmt.Errorf("updater: read rescheduled topology: %w", err)
	}
	l2, err := topology.DecodeLogical(lraw)
	if err != nil {
		return nil, err
	}
	report.Generation = l2.Generation
	if !awaitCond(time.Until(deadline), func() bool { return u.netReady(c, topoName, l2.Generation) }) {
		return nil, fmt.Errorf("updater: network not programmed for generation %d", l2.Generation)
	}

	if spec.Stateful {
		_, p2 := c.Topology(topoName)
		if p2 == nil {
			return nil, fmt.Errorf("updater: topology %q vanished mid-rescale", topoName)
		}
		newInstances := p2.Instances(node)
		if len(newInstances) != parallelism {
			return nil, fmt.Errorf("updater: expected %d instances of %q, found %d",
				parallelism, node, len(newInstances))
		}
		if err := u.restoreState(c, topoName, newInstances, state, deadline); err != nil {
			return nil, err
		}
	}

	// Phase 3: resume.
	resume()
	return report, nil
}

// setSourcesActive sends ACTIVATE/DEACTIVATE to every source instance.
func (u *Updater) setSourcesActive(c *Controller, topoName string, active bool) {
	l, p := c.Topology(topoName)
	if l == nil || p == nil {
		return
	}
	kind := control.KindDeactivate
	if active {
		kind = control.KindActivate
	}
	for _, node := range l.Nodes {
		if !node.Source {
			continue
		}
		for _, as := range p.Instances(node.Name) {
			_ = c.SendControlTuple(topoName, as.Worker, control.Encode(kind, nil))
		}
	}
}

// drain waits until the paused pipeline has no in-flight tuples: two
// consecutive METRIC_REQ sweeps in which every worker reports an empty
// input queue and the cluster-wide processed count did not move.
func (u *Updater) drain(c *Controller, topoName string, deadline time.Time) error {
	var lastProcessed uint64
	stableOnce := false
	for time.Now().Before(deadline) {
		if c.Stopped() {
			return fmt.Errorf("updater: controller stopped mid-drain")
		}
		queued, processed, complete := u.metricSweep(c, topoName, deadline)
		if complete && queued == 0 {
			if stableOnce && processed == lastProcessed {
				return nil
			}
			stableOnce = true
			lastProcessed = processed
		} else {
			stableOnce = false
		}
		time.Sleep(5 * pollInterval)
	}
	return fmt.Errorf("updater: drain of %q timed out", topoName)
}

// metricSweep polls every worker of the topology once, returning the
// summed queue length and processed count, and whether every worker
// answered before the sweep window closed.
func (u *Updater) metricSweep(c *Controller, topoName string, deadline time.Time) (queued int, processed uint64, complete bool) {
	_, p := c.Topology(topoName)
	if p == nil {
		return 0, 0, false
	}
	workers := append([]topology.Assignment(nil), p.Workers...)
	ch := make(chan control.MetricResp, len(workers)+1)
	token := u.register(func(t uint64) { u.metrics[t] = ch })
	defer u.unregister(func() { delete(u.metrics, token) })
	sent := 0
	for _, as := range workers {
		if c.SendControlTuple(topoName, as.Worker,
			control.Encode(control.KindMetricReq, control.MetricReq{Token: token})) == nil {
			sent++
		}
	}
	if sent < len(workers) {
		return 0, 0, false // someone unreachable (restarting): not drained
	}
	sweepEnd := time.Now().Add(time.Second)
	if sweepEnd.After(deadline) {
		sweepEnd = deadline
	}
	got := 0
	for got < sent && time.Now().Before(sweepEnd) {
		select {
		case mr := <-ch:
			queued += mr.QueueLen
			processed += mr.Processed
			got++
		case <-time.After(pollInterval):
		}
	}
	return queued, processed, got == sent
}

// collectSnapshots gathers the full key range from every old instance of
// the rescaled node, retrying stragglers until the deadline.
func (u *Updater) collectSnapshots(c *Controller, topoName string, instances []topology.Assignment, deadline time.Time) (map[string][]byte, error) {
	state := make(map[string][]byte)
	pendingSet := make(map[topology.WorkerID]bool, len(instances))
	for _, as := range instances {
		pendingSet[as.Worker] = true
	}
	ch := make(chan control.SnapshotResp, len(instances)+1)
	token := u.register(func(t uint64) { u.snapshots[t] = ch })
	defer u.unregister(func() { delete(u.snapshots, token) })
	for len(pendingSet) > 0 {
		if c.Stopped() {
			return nil, fmt.Errorf("updater: controller stopped mid-snapshot")
		}
		if !time.Now().Before(deadline) {
			return nil, fmt.Errorf("updater: %d snapshot(s) of %q never arrived", len(pendingSet), topoName)
		}
		for id := range pendingSet {
			_ = c.SendControlTuple(topoName, id, control.Encode(control.KindSnapshotReq,
				control.SnapshotReq{Token: token, From: 0, To: worker.NumPartitions}))
		}
		round := time.Now().Add(time.Second)
		if round.After(deadline) {
			round = deadline
		}
		for len(pendingSet) > 0 && time.Now().Before(round) {
			select {
			case resp := <-ch:
				if !pendingSet[resp.Worker] {
					continue // duplicate from a re-sent request
				}
				delete(pendingSet, resp.Worker)
				for k, v := range resp.State {
					state[k] = v
				}
			case <-time.After(pollInterval):
			}
		}
	}
	return state, nil
}

// restoreState re-partitions the collected state over the new instance set
// with the router's rendezvous hash ring and pushes every instance its
// share — including empty shares, since RESTORE has replace semantics and
// surviving instances must drop the keys they no longer own.
func (u *Updater) restoreState(c *Controller, topoName string, instances []topology.Assignment, state map[string][]byte, deadline time.Time) error {
	n := len(instances)
	shares := make([]map[string][]byte, n)
	for i := range shares {
		shares[i] = make(map[string][]byte)
	}
	for k, v := range state {
		idx := worker.OwnerIndex(worker.PartitionOfKey(k), n)
		shares[idx][k] = v
	}
	byWorker := make(map[topology.WorkerID]map[string][]byte, n)
	for i, as := range instances {
		// Instances arrive sorted by Index; guard against gaps anyway.
		if as.Index >= 0 && as.Index < n {
			byWorker[as.Worker] = shares[as.Index]
		} else {
			byWorker[as.Worker] = shares[i]
		}
	}
	pendingSet := make(map[topology.WorkerID]bool, n)
	for _, as := range instances {
		pendingSet[as.Worker] = true
	}
	ch := make(chan control.RestoreResp, n+1)
	token := u.register(func(t uint64) { u.restores[t] = ch })
	defer u.unregister(func() { delete(u.restores, token) })
	for len(pendingSet) > 0 {
		if c.Stopped() {
			return fmt.Errorf("updater: controller stopped mid-restore")
		}
		if !time.Now().Before(deadline) {
			return fmt.Errorf("updater: %d restore ack(s) of %q never arrived", len(pendingSet), topoName)
		}
		for id := range pendingSet {
			_ = c.SendControlTuple(topoName, id, control.Encode(control.KindRestore,
				control.Restore{Token: token, State: byWorker[id]}))
		}
		round := time.Now().Add(time.Second)
		if round.After(deadline) {
			round = deadline
		}
		for len(pendingSet) > 0 && time.Now().Before(round) {
			select {
			case resp := <-ch:
				delete(pendingSet, resp.Worker)
			case <-time.After(pollInterval):
			}
		}
	}
	return nil
}

// OnTick implements App: reap pause markers orphaned by a dead controller.
// A rescale whose driver dies mid-flight must degrade to a pause, never a
// wedged pipeline — the marker would otherwise gate source activation
// forever. When the marker names a controller whose registration heartbeat
// has lapsed, the topology's current owner deletes it and re-activates
// sources; the half-finished rescale is abandoned, but the pipeline runs.
func (u *Updater) OnTick(c *Controller) {
	if !c.replicated() {
		return
	}
	for _, name := range c.TopologyNames() {
		if !c.OwnsTopology(name) {
			continue
		}
		raw, _, err := c.kv.Get(paths.Paused(name))
		if err != nil {
			continue
		}
		owner := string(raw)
		if owner == "" || owner == "1" || owner == c.ID() || c.ControllerLive(owner) {
			continue
		}
		_ = c.kv.Delete(paths.Paused(name))
		if l, p := c.Topology(name); l != nil && p != nil {
			c.activateSources(name, l, p)
		}
	}
}

// netReady reports whether the controller has programmed the data plane
// for at least generation gen.
func (u *Updater) netReady(c *Controller, topoName string, gen int64) bool {
	raw, _, err := c.kv.Get(paths.NetReady(topoName))
	if err != nil {
		return false
	}
	got, perr := strconv.ParseInt(string(raw), 10, 64)
	return perr == nil && got >= gen
}

// register allocates a fresh token and installs a response channel for it.
func (u *Updater) register(install func(token uint64)) uint64 {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.token++
	install(u.token)
	return u.token
}

func (u *Updater) unregister(remove func()) {
	u.mu.Lock()
	defer u.mu.Unlock()
	remove()
}

// OnControlTuple implements App: route worker replies to the in-flight
// rescale's collection channels by token.
func (u *Updater) OnControlTuple(c *Controller, host string, src packet.Addr, t tuple.Tuple) {
	kind, err := control.DecodeKind(t)
	if err != nil {
		return
	}
	switch kind {
	case control.KindMetricResp:
		var mr control.MetricResp
		if control.DecodePayload(t, &mr) != nil {
			return
		}
		u.mu.Lock()
		ch := u.metrics[mr.Token]
		u.mu.Unlock()
		deliver(ch, mr)
	case control.KindSnapshotResp:
		var sr control.SnapshotResp
		if control.DecodePayload(t, &sr) != nil {
			return
		}
		u.mu.Lock()
		ch := u.snapshots[sr.Token]
		u.mu.Unlock()
		deliver(ch, sr)
	case control.KindRestoreResp:
		var rr control.RestoreResp
		if control.DecodePayload(t, &rr) != nil {
			return
		}
		u.mu.Lock()
		ch := u.restores[rr.Token]
		u.mu.Unlock()
		deliver(ch, rr)
	}
}

// deliver enqueues a reply without ever blocking the PacketIn path.
func deliver[T any](ch chan T, v T) {
	if ch == nil {
		return
	}
	select {
	case ch <- v:
	default:
	}
}

package controller

import (
	"fmt"
	"sort"
	"sync"

	"typhoon/internal/control"
	"typhoon/internal/openflow"
	"typhoon/internal/packet"
	"typhoon/internal/topology"
	"typhoon/internal/tuple"
)

// TopologyQoS is one topology's row of the QoS status surface: its rate
// class, the operator-configured rate, and the bandwidth allocator's
// current per-host meter assignment (0 = admit everything).
type TopologyQoS struct {
	Topology      string            `json:"topology"`
	Class         string            `json:"class"`
	ConfiguredBps uint64            `json:"configuredBps"`
	HostRates     map[string]uint64 `json:"hostRates,omitempty"`
}

// QoSEnabled reports whether this controller compiles QoS into rules.
func (c *Controller) QoSEnabled() bool { return c.opts.EnableQoS }

// QoSStatus snapshots the QoS assignment of every tracked topology.
func (c *Controller) QoSStatus() []TopologyQoS {
	c.mu.Lock()
	out := make([]TopologyQoS, 0, len(c.topos))
	for name, ts := range c.topos {
		if ts.logical == nil {
			continue
		}
		row := TopologyQoS{
			Topology:      name,
			Class:         ts.logical.QoSClass,
			ConfiguredBps: ts.logical.QoSRateBps,
		}
		if row.Class == "" {
			row.Class = topology.QoSBestEffort
		}
		if len(ts.meterRates) > 0 {
			row.HostRates = make(map[string]uint64, len(ts.meterRates))
			for h, r := range ts.meterRates {
				row.HostRates[h] = r
			}
		}
		out = append(out, row)
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Topology < out[j].Topology })
	return out
}

// SetMeterRate assigns a topology's meter rate on one host (bytes/sec,
// 0 = admit everything) and reprograms the switch when this controller
// masters it. The assignment is remembered in controller state so
// reconciliation re-sends it after switch reconnects and mastership moves.
func (c *Controller) SetMeterRate(topoName, host string, rateBps uint64) error {
	c.mu.Lock()
	ts := c.topos[topoName]
	if ts == nil {
		c.mu.Unlock()
		return fmt.Errorf("controller: unknown topology %q", topoName)
	}
	meterID := ts.meterID
	if ts.meterRates == nil {
		ts.meterRates = make(map[string]uint64)
	}
	prev, had := ts.meterRates[host]
	ts.meterRates[host] = rateBps
	c.mu.Unlock()
	if meterID == 0 {
		return fmt.Errorf("controller: topology %q has no meter (QoS disabled?)", topoName)
	}
	if had && prev == rateBps {
		return nil // steady state: nothing to send
	}
	if !c.IsMaster(host) {
		return nil // recorded; the host's master programs its own view
	}
	dp := c.datapath(host)
	if dp == nil {
		return fmt.Errorf("controller: no datapath for host %s", host)
	}
	// MeterAdd retunes in place when the meter exists, so the same command
	// covers first assignment and every reassignment after.
	_, err := dp.conn.Send(openflow.MeterMod{
		Command: openflow.MeterAdd, MeterID: meterID, RateBps: rateBps,
	})
	return err
}

// BandwidthConfig tunes the bandwidth-allocator app.
type BandwidthConfig struct {
	// LinkCapacityBps is the egress budget managed per host (bytes/sec).
	LinkCapacityBps uint64
	// Hysteresis is the fractional rate change below which reassignment is
	// suppressed; defaults to 0.1 (10%).
	Hysteresis float64
	// MinShareFrac floors every metered tenant's rate at this fraction of
	// the link capacity; defaults to 0.05 (5%).
	MinShareFrac float64
}

// BandwidthAllocator is the QoS control plane app: an online feedback loop
// that polls worker statistics with METRIC_REQ sweeps (like the
// auto-scaler) and continuously reassigns per-topology meter rates from
// observed demand. Guaranteed tenants are never policed — their protection
// is the egress queue weight plus the caps this app keeps on everyone
// else; burstable tenants split the spare capacity left after guaranteed
// floors in proportion to demand; best-effort tenants share a quarter of
// the spare so a flooding tenant is firmly rate-capped.
//
// Sharding and failover follow the replicated control plane: each
// topology's owner runs its metric sweep, each switch's master applies the
// rates for its host, and because every input is recomputed from the
// coordinator-backed topology view plus fresh metrics, a controller that
// inherits a switch converges on the next tick with no handoff protocol.
type BandwidthAllocator struct {
	BaseApp

	cfg BandwidthConfig

	mu    sync.Mutex
	token uint64
	// latest maps app ID → worker → newest metric response.
	latest map[uint16]map[topology.WorkerID]control.MetricResp
	// prevEmitted remembers the last emitted counter per worker so demand
	// is a per-tick delta, not a lifetime total.
	prevEmitted map[topology.WorkerID]uint64
	reassigns   int
}

// NewBandwidthAllocator builds the app.
func NewBandwidthAllocator(cfg BandwidthConfig) *BandwidthAllocator {
	if cfg.LinkCapacityBps == 0 {
		cfg.LinkCapacityBps = 64 << 20 // 64 MB/s default budget
	}
	if cfg.Hysteresis <= 0 {
		cfg.Hysteresis = 0.1
	}
	if cfg.MinShareFrac <= 0 {
		cfg.MinShareFrac = 0.05
	}
	return &BandwidthAllocator{
		cfg:         cfg,
		latest:      make(map[uint16]map[topology.WorkerID]control.MetricResp),
		prevEmitted: make(map[topology.WorkerID]uint64),
	}
}

// Name implements App.
func (b *BandwidthAllocator) Name() string { return "bandwidth-allocator" }

// Reassigns reports how many meter-rate reassignments were issued.
func (b *BandwidthAllocator) Reassigns() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.reassigns
}

// OnControlTuple implements App: collect METRIC_RESP statistics keyed by
// the sender's application ID (the topology's data-plane identity).
func (b *BandwidthAllocator) OnControlTuple(c *Controller, host string, src packet.Addr, t tuple.Tuple) {
	kind, err := control.DecodeKind(t)
	if err != nil || kind != control.KindMetricResp {
		return
	}
	var mr control.MetricResp
	if control.DecodePayload(t, &mr) != nil {
		return
	}
	b.mu.Lock()
	app := src.App()
	if b.latest[app] == nil {
		b.latest[app] = make(map[topology.WorkerID]control.MetricResp)
	}
	b.latest[app][mr.Worker] = mr
	b.mu.Unlock()
}

// tenant is one topology's per-tick allocation state on one host.
type tenant struct {
	name   string
	class  string
	conf   uint64 // configured rate
	demand uint64 // emitted delta + backlog, the proportional-share weight
}

// OnTick implements App: sweep metrics for owned topologies, then compute
// and apply per-host rate assignments for mastered switches.
func (b *BandwidthAllocator) OnTick(c *Controller) {
	b.mu.Lock()
	b.token++
	token := b.token
	b.mu.Unlock()

	// Per-host tenant sets, built from every tracked topology. The metric
	// sweep is sharded by topology ownership (one controller polls each
	// topology); allocation below is sharded by switch mastership inside
	// SetMeterRate, so overlapping views never fight.
	tenants := make(map[string][]*tenant)
	for _, name := range c.TopologyNames() {
		l, p := c.Topology(name)
		if l == nil || p == nil {
			continue
		}
		if c.OwnsTopology(name) {
			for _, as := range p.Workers {
				_ = c.SendControlTuple(name, as.Worker,
					control.Encode(control.KindMetricReq, control.MetricReq{Token: token}))
			}
		}
		class := l.QoSClass
		if class == "" {
			class = topology.QoSBestEffort
		}
		b.mu.Lock()
		stats := b.latest[l.App]
		perHost := make(map[string]*tenant)
		for _, as := range p.Workers {
			tn := perHost[as.Host]
			if tn == nil {
				tn = &tenant{name: name, class: class, conf: l.QoSRateBps}
				perHost[as.Host] = tn
			}
			mr, ok := stats[as.Worker]
			if !ok {
				continue
			}
			delta := mr.Emitted - b.prevEmitted[as.Worker]
			if mr.Emitted < b.prevEmitted[as.Worker] {
				delta = mr.Emitted // worker restarted; counter reset
			}
			b.prevEmitted[as.Worker] = mr.Emitted
			tn.demand += delta + uint64(mr.QueueLen)
		}
		b.mu.Unlock()
		for host, tn := range perHost {
			tenants[host] = append(tenants[host], tn)
		}
	}

	for host, tns := range tenants {
		if !c.IsMaster(host) {
			continue // the host's master runs this host's allocation
		}
		b.allocateHost(c, host, tns)
	}
}

// allocateHost computes and applies one host's rate assignment.
func (b *BandwidthAllocator) allocateHost(c *Controller, host string, tns []*tenant) {
	capacity := b.cfg.LinkCapacityBps
	floor := uint64(float64(capacity) * b.cfg.MinShareFrac)

	var reserved uint64
	var burst, best []*tenant
	for _, tn := range tns {
		switch tn.class {
		case topology.QoSGuaranteed:
			if tn.conf < capacity {
				reserved += tn.conf
			} else {
				reserved += capacity
			}
		case topology.QoSBurstable:
			burst = append(burst, tn)
		default:
			best = append(best, tn)
		}
	}
	spare := capacity - reserved
	if spare < capacity/10 {
		spare = capacity / 10
	}

	apply := func(tn *tenant, rate uint64) {
		if rate != 0 && rate < floor {
			rate = floor
		}
		if b.withinHysteresis(c, tn.name, host, rate) {
			return
		}
		if err := c.SetMeterRate(tn.name, host, rate); err == nil {
			b.mu.Lock()
			b.reassigns++
			b.mu.Unlock()
		}
	}

	// Guaranteed tenants are never policed by their own meter.
	for _, tn := range tns {
		if tn.class == topology.QoSGuaranteed {
			apply(tn, 0)
		}
	}
	// Burstable tenants share the whole spare pool by demand; best-effort
	// tenants share a quarter of it, so a flood is capped well below the
	// point where it could crowd the link.
	shareOut(burst, spare, apply)
	shareOut(best, spare/4, apply)
}

// shareOut splits a pool across tenants in proportion to demand; with no
// demand signal at all, the split is even.
func shareOut(tns []*tenant, pool uint64, apply func(*tenant, uint64)) {
	if len(tns) == 0 {
		return
	}
	var total uint64
	for _, tn := range tns {
		total += tn.demand
	}
	for _, tn := range tns {
		var rate uint64
		if total == 0 {
			rate = pool / uint64(len(tns))
		} else {
			rate = uint64(float64(pool) * float64(tn.demand) / float64(total))
		}
		apply(tn, rate)
	}
}

// withinHysteresis reports whether the new rate is close enough to the
// current assignment that re-sending would only churn the data plane.
func (b *BandwidthAllocator) withinHysteresis(c *Controller, topo, host string, rate uint64) bool {
	c.mu.Lock()
	ts := c.topos[topo]
	var cur uint64
	var had bool
	if ts != nil && ts.meterRates != nil {
		cur, had = ts.meterRates[host]
	}
	c.mu.Unlock()
	if !had {
		return false
	}
	if cur == rate {
		return true
	}
	if cur == 0 || rate == 0 {
		return false // metered ↔ unmetered is always worth sending
	}
	diff := float64(rate) - float64(cur)
	if diff < 0 {
		diff = -diff
	}
	return diff/float64(cur) < b.cfg.Hysteresis
}

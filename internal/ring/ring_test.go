package ring

import (
	"sync"
	"testing"
	"time"
)

func TestTryEnqueueDropsWhenFull(t *testing.T) {
	r := New(2)
	if !r.TryEnqueue([]byte("a")) || !r.TryEnqueue([]byte("b")) {
		t.Fatal("enqueue into non-full ring failed")
	}
	if r.TryEnqueue([]byte("c")) {
		t.Fatal("enqueue into full ring should fail")
	}
	s := r.Stats()
	if s.Enqueued != 2 || s.Dropped != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if r.Len() != 2 || r.Capacity() != 2 {
		t.Fatalf("len=%d cap=%d", r.Len(), r.Capacity())
	}
}

func TestDequeueFIFO(t *testing.T) {
	r := New(8)
	r.TryEnqueue([]byte("1"))
	r.TryEnqueue([]byte("2"))
	a, err := r.Dequeue()
	if err != nil || string(a) != "1" {
		t.Fatalf("got %q err=%v", a, err)
	}
	b, _ := r.Dequeue()
	if string(b) != "2" {
		t.Fatalf("got %q", b)
	}
	if r.Stats().Dequeued != 2 {
		t.Fatal("dequeued counter wrong")
	}
}

func TestBlockingEnqueueReleasedByConsumer(t *testing.T) {
	r := New(1)
	r.TryEnqueue([]byte("x"))
	done := make(chan error, 1)
	go func() { done <- r.Enqueue([]byte("y")) }()
	time.Sleep(10 * time.Millisecond)
	if _, err := r.Dequeue(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestCloseReleasesBlockedConsumers(t *testing.T) {
	r := New(4)
	errc := make(chan error, 1)
	go func() {
		_, err := r.Dequeue()
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	r.Close()
	if err := <-errc; err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if !r.Closed() {
		t.Fatal("Closed() should be true")
	}
	if r.TryEnqueue([]byte("z")) {
		t.Fatal("enqueue after close should fail")
	}
}

func TestCloseDrainsQueuedFrames(t *testing.T) {
	r := New(4)
	r.TryEnqueue([]byte("keep"))
	r.Close()
	f, err := r.Dequeue()
	if err != nil || string(f) != "keep" {
		t.Fatalf("queued frame lost on close: %q %v", f, err)
	}
	if _, err := r.Dequeue(); err != ErrClosed {
		t.Fatalf("drained ring should report ErrClosed, got %v", err)
	}
}

func TestDequeueBatch(t *testing.T) {
	r := New(16)
	for i := 0; i < 5; i++ {
		r.TryEnqueue([]byte{byte(i)})
	}
	out, err := r.DequeueBatch(nil, 3, time.Second)
	if err != nil || len(out) != 3 {
		t.Fatalf("batch len=%d err=%v", len(out), err)
	}
	out, err = r.DequeueBatch(out[:0], 0, time.Second)
	if err != nil || len(out) != 2 {
		t.Fatalf("second batch len=%d err=%v", len(out), err)
	}
}

func TestDequeueBatchTimeout(t *testing.T) {
	r := New(4)
	start := time.Now()
	out, err := r.DequeueBatch(nil, 4, 20*time.Millisecond)
	if err != nil || len(out) != 0 {
		t.Fatalf("timeout batch: len=%d err=%v", len(out), err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Fatal("returned before timeout")
	}
	// Poll mode returns immediately.
	out, err = r.DequeueBatch(nil, 4, 0)
	if err != nil || len(out) != 0 {
		t.Fatalf("poll batch: len=%d err=%v", len(out), err)
	}
}

func TestDequeueBatchClosed(t *testing.T) {
	r := New(4)
	r.Close()
	if _, err := r.DequeueBatch(nil, 4, time.Second); err != ErrClosed {
		t.Fatalf("err = %v", err)
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	r := New(1024)
	const producers, perProducer = 8, 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				_ = r.Enqueue([]byte{1})
			}
		}()
	}
	var consumed int
	var mu sync.Mutex
	var cwg sync.WaitGroup
	for c := 0; c < 4; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				if _, err := r.Dequeue(); err != nil {
					return
				}
				mu.Lock()
				consumed++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for r.Len() > 0 {
		time.Sleep(time.Millisecond)
	}
	r.Close()
	cwg.Wait()
	if consumed != producers*perProducer {
		t.Fatalf("consumed %d, want %d", consumed, producers*perProducer)
	}
}

func TestDequeueBatchPollWithQueuedFrames(t *testing.T) {
	// wait=0 must not miss frames that are already queued.
	r := New(8)
	r.TryEnqueue([]byte("a"))
	r.TryEnqueue([]byte("b"))
	out, err := r.DequeueBatch(nil, 8, 0)
	if err != nil || len(out) != 2 {
		t.Fatalf("poll batch: len=%d err=%v", len(out), err)
	}
}

func TestDequeueBatchCloseWhileWaiting(t *testing.T) {
	r := New(4)
	errc := make(chan error, 1)
	go func() {
		_, err := r.DequeueBatch(nil, 4, time.Minute)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	r.Close()
	select {
	case err := <-errc:
		if err != ErrClosed {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("DequeueBatch not released by Close")
	}
}

func TestDequeueBatchMaxSmallerThanQueued(t *testing.T) {
	r := New(16)
	for i := 0; i < 10; i++ {
		r.TryEnqueue([]byte{byte(i)})
	}
	out, err := r.DequeueBatch(nil, 4, time.Second)
	if err != nil || len(out) != 4 {
		t.Fatalf("len=%d err=%v", len(out), err)
	}
	if out[0][0] != 0 || out[3][0] != 3 {
		t.Fatalf("batch not FIFO: %v", out)
	}
	if r.Len() != 6 {
		t.Fatalf("ring holds %d frames, want 6", r.Len())
	}
}

func TestEnqueueTimeoutFullCountsOneDrop(t *testing.T) {
	r := New(1)
	r.TryEnqueue([]byte("x"))
	start := time.Now()
	if err := r.EnqueueTimeout([]byte("y"), 20*time.Millisecond); err != ErrFull {
		t.Fatalf("err = %v, want ErrFull", err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Fatal("returned before deadline")
	}
	if s := r.Stats(); s.Dropped != 1 {
		t.Fatalf("dropped = %d, want exactly 1", s.Dropped)
	}
}

func TestEnqueueTimeoutReleasedByConsumer(t *testing.T) {
	r := New(1)
	r.TryEnqueue([]byte("x"))
	done := make(chan error, 1)
	go func() { done <- r.EnqueueTimeout([]byte("y"), time.Minute) }()
	time.Sleep(10 * time.Millisecond)
	if _, err := r.Dequeue(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("EnqueueTimeout = %v after space freed", err)
	}
	if s := r.Stats(); s.Enqueued != 2 || s.Dropped != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestEnqueueTimeoutClosed(t *testing.T) {
	r := New(1)
	r.Close()
	if err := r.EnqueueTimeout([]byte("z"), time.Second); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	// Close while a producer is blocked on a full ring.
	r2 := New(1)
	r2.TryEnqueue([]byte("x"))
	done := make(chan error, 1)
	go func() { done <- r2.EnqueueTimeout([]byte("y"), time.Minute) }()
	time.Sleep(10 * time.Millisecond)
	r2.Close()
	if err := <-done; err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestEnqueueTimeoutZeroWaitPolls(t *testing.T) {
	r := New(1)
	if err := r.EnqueueTimeout([]byte("a"), 0); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := r.EnqueueTimeout([]byte("b"), 0); err != ErrFull {
		t.Fatalf("err = %v, want ErrFull", err)
	}
	if time.Since(start) > 50*time.Millisecond {
		t.Fatal("zero wait should not block")
	}
}

func TestDefaultCapacity(t *testing.T) {
	if New(0).Capacity() != DefaultCapacity {
		t.Fatal("default capacity not applied")
	}
}

// Package ring provides bounded frame queues that stand in for the DPDK
// shared-memory ring ports connecting workers to the software SDN switch in
// the Typhoon prototype.
//
// Rings are deliberately lossy on the enqueue side: when a TX/RX queue
// overflows, frames are dropped and counted, reproducing the switch-level
// packet loss behaviour discussed in §8 of the paper (recovered, when it
// matters, by the application-level ACK mechanism).
package ring

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClosed is returned by blocking operations on a closed ring.
var ErrClosed = errors.New("ring: closed")

// ErrFull is returned by EnqueueTimeout when the ring stays full past the
// deadline.
var ErrFull = errors.New("ring: full")

// DefaultCapacity is the default ring size in frames.
const DefaultCapacity = 4096

// Stats is a snapshot of ring counters.
type Stats struct {
	Enqueued uint64 // frames accepted
	Dropped  uint64 // frames rejected because the ring was full
	Dequeued uint64 // frames consumed
	Bytes    uint64 // payload bytes accepted
}

// Ring is a bounded multi-producer multi-consumer frame queue.
type Ring struct {
	ch       chan []byte
	closed   chan struct{}
	closeOne sync.Once

	enqueued atomic.Uint64
	dropped  atomic.Uint64
	dequeued atomic.Uint64
	bytes    atomic.Uint64
}

// New builds a ring with the given capacity; cap <= 0 selects
// DefaultCapacity.
func New(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Ring{ch: make(chan []byte, capacity), closed: make(chan struct{})}
}

// Capacity returns the ring capacity in frames.
func (r *Ring) Capacity() int { return cap(r.ch) }

// Len returns the current queue depth.
func (r *Ring) Len() int { return len(r.ch) }

// TryEnqueue offers a frame without blocking. It returns false (and counts
// a drop) when the ring is full or closed.
func (r *Ring) TryEnqueue(frame []byte) bool {
	select {
	case <-r.closed:
		r.dropped.Add(1)
		return false
	default:
	}
	select {
	case r.ch <- frame:
		r.enqueued.Add(1)
		r.bytes.Add(uint64(len(frame)))
		return true
	default:
		r.dropped.Add(1)
		return false
	}
}

// Enqueue blocks until the frame is accepted or the ring is closed.
func (r *Ring) Enqueue(frame []byte) error {
	select {
	case r.ch <- frame:
		r.enqueued.Add(1)
		r.bytes.Add(uint64(len(frame)))
		return nil
	case <-r.closed:
		return ErrClosed
	}
}

// EnqueueTimeout blocks until the frame is accepted, the ring is closed, or
// wait elapses. A full ring past the deadline returns ErrFull and counts
// exactly one drop (unlike a TryEnqueue retry loop, which inflates the drop
// counter on every probe); a closed ring returns ErrClosed and also counts a
// drop. A wait <= 0 degenerates to TryEnqueue semantics.
func (r *Ring) EnqueueTimeout(frame []byte, wait time.Duration) error {
	select {
	case <-r.closed:
		r.dropped.Add(1)
		return ErrClosed
	default:
	}
	select {
	case r.ch <- frame:
		r.enqueued.Add(1)
		r.bytes.Add(uint64(len(frame)))
		return nil
	default:
	}
	if wait <= 0 {
		r.dropped.Add(1)
		return ErrFull
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case r.ch <- frame:
		r.enqueued.Add(1)
		r.bytes.Add(uint64(len(frame)))
		return nil
	case <-timer.C:
		r.dropped.Add(1)
		return ErrFull
	case <-r.closed:
		r.dropped.Add(1)
		return ErrClosed
	}
}

// Dequeue blocks until a frame is available or the ring is closed and
// drained.
func (r *Ring) Dequeue() ([]byte, error) {
	select {
	case f := <-r.ch:
		r.dequeued.Add(1)
		return f, nil
	default:
	}
	select {
	case f := <-r.ch:
		r.dequeued.Add(1)
		return f, nil
	case <-r.closed:
		// Drain anything raced in before close.
		select {
		case f := <-r.ch:
			r.dequeued.Add(1)
			return f, nil
		default:
			return nil, ErrClosed
		}
	}
}

// DequeueBatch waits up to wait for at least one frame, then drains up to
// max frames without blocking, appending to dst. It returns dst and ErrClosed
// only when the ring is closed and empty. A wait of 0 polls.
func (r *Ring) DequeueBatch(dst [][]byte, max int, wait time.Duration) ([][]byte, error) {
	if max <= 0 {
		max = cap(r.ch)
	}
	first, err := r.dequeueTimeout(wait)
	if err != nil {
		return dst, err
	}
	if first == nil {
		return dst, nil // timed out, no frames
	}
	dst = append(dst, first)
	for len(dst) > 0 && max > 1 {
		select {
		case f := <-r.ch:
			r.dequeued.Add(1)
			dst = append(dst, f)
			max--
		default:
			return dst, nil
		}
	}
	return dst, nil
}

// dequeueTimeout waits up to wait for one frame; (nil, nil) means timeout.
func (r *Ring) dequeueTimeout(wait time.Duration) ([]byte, error) {
	select {
	case f := <-r.ch:
		r.dequeued.Add(1)
		return f, nil
	default:
	}
	if wait <= 0 {
		return nil, nil
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case f := <-r.ch:
		r.dequeued.Add(1)
		return f, nil
	case <-timer.C:
		return nil, nil
	case <-r.closed:
		select {
		case f := <-r.ch:
			r.dequeued.Add(1)
			return f, nil
		default:
			return nil, ErrClosed
		}
	}
}

// Close marks the ring closed. Blocked producers and consumers are released;
// already-queued frames remain readable via Dequeue until drained.
func (r *Ring) Close() {
	r.closeOne.Do(func() { close(r.closed) })
}

// Closed reports whether Close has been called.
func (r *Ring) Closed() bool {
	select {
	case <-r.closed:
		return true
	default:
		return false
	}
}

// Stats returns a snapshot of the ring counters.
func (r *Ring) Stats() Stats {
	return Stats{
		Enqueued: r.enqueued.Load(),
		Dropped:  r.dropped.Load(),
		Dequeued: r.dequeued.Load(),
		Bytes:    r.bytes.Load(),
	}
}

package paths

import (
	"testing"

	"typhoon/internal/topology"
)

func TestTopologyConstructorsRoundTrip(t *testing.T) {
	cases := []struct {
		path string
		kind string
	}{
		{Logical("wordcount"), "logical"},
		{Physical("wordcount"), "physical"},
		{TopologyPrefix("wordcount"), ""},
	}
	for _, c := range cases {
		name, kind, ok := SplitTopology(c.path)
		if !ok || name != "wordcount" || kind != c.kind {
			t.Errorf("SplitTopology(%q) = (%q, %q, %v), want (wordcount, %q, true)",
				c.path, name, kind, ok, c.kind)
		}
		if got := TopologyName(c.path); got != "wordcount" {
			t.Errorf("TopologyName(%q) = %q", c.path, got)
		}
	}
}

func TestSplitTopologyRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"/",
		"/topologies",        // subtree root, no name
		"/topologies/",       // empty name
		"/topologies//extra", // empty name with kind
		"/status/t/netready", // wrong subtree
		"/agents/h1",
		"topologies/t/logical", // missing leading slash
		"/topologiesX/t/logical",
	}
	for _, p := range bad {
		if name, kind, ok := SplitTopology(p); ok {
			t.Errorf("SplitTopology(%q) accepted as (%q, %q)", p, name, kind)
		}
		if got := TopologyName(p); got != "" {
			t.Errorf("TopologyName(%q) = %q, want empty", p, got)
		}
	}
}

func TestAgentRoundTrip(t *testing.T) {
	host, ok := ParseAgent(Agent("host-7"))
	if !ok || host != "host-7" {
		t.Fatalf("ParseAgent(Agent(host-7)) = (%q, %v)", host, ok)
	}
	bad := []string{
		"",
		"/agents",
		"/agents/",
		"/agents/h1/extra", // nested path is not a registration
		"/heartbeats/t/1",
		"agents/h1",
	}
	for _, p := range bad {
		if host, ok := ParseAgent(p); ok {
			t.Errorf("ParseAgent(%q) accepted as %q", p, host)
		}
	}
}

func TestHeartbeatRoundTrip(t *testing.T) {
	for _, id := range []topology.WorkerID{0, 1, 42, 1<<32 - 1} {
		name, got, ok := ParseHeartbeat(Heartbeat("wc", id))
		if !ok || name != "wc" || got != id {
			t.Fatalf("ParseHeartbeat(Heartbeat(wc, %d)) = (%q, %d, %v)", id, name, got, ok)
		}
	}
	bad := []string{
		"",
		"/heartbeats",
		"/heartbeats/wc",            // no worker ID
		"/heartbeats/wc/",           // empty worker ID
		"/heartbeats//3",            // empty topology name
		"/heartbeats/wc/abc",        // non-numeric ID
		"/heartbeats/wc/-1",         // negative ID
		"/heartbeats/wc/4294967296", // overflows uint32
		"/status/wc/3",
		"heartbeats/wc/3",
	}
	for _, p := range bad {
		if name, id, ok := ParseHeartbeat(p); ok {
			t.Errorf("ParseHeartbeat(%q) accepted as (%q, %d)", p, name, id)
		}
	}
	if HeartbeatPrefix("wc") != "/heartbeats/wc" {
		t.Fatalf("HeartbeatPrefix = %q", HeartbeatPrefix("wc"))
	}
}

func TestStatusRoundTrip(t *testing.T) {
	cases := []struct {
		path   string
		marker string
	}{
		{NetReady("wc"), "netready"},
		{Activated("wc"), "activated"},
		{Paused("wc"), "paused"},
	}
	for _, c := range cases {
		name, marker, ok := ParseStatus(c.path)
		if !ok || name != "wc" || marker != c.marker {
			t.Errorf("ParseStatus(%q) = (%q, %q, %v), want (wc, %q, true)",
				c.path, name, marker, ok, c.marker)
		}
	}
	bad := []string{
		"",
		"/status",
		"/status/wc",      // no marker
		"/status/wc/",     // empty marker
		"/status//paused", // empty name
		"/topologies/wc/logical",
		"status/wc/paused",
	}
	for _, p := range bad {
		if name, marker, ok := ParseStatus(p); ok {
			t.Errorf("ParseStatus(%q) accepted as (%q, %q)", p, name, marker)
		}
	}
}

func TestValidName(t *testing.T) {
	for _, good := range []string{"a", "wordcount", "node-1", "x.y"} {
		if !ValidName(good) {
			t.Errorf("ValidName(%q) = false", good)
		}
	}
	for _, bad := range []string{"", "a/b", "/", "a/"} {
		if ValidName(bad) {
			t.Errorf("ValidName(%q) = true", bad)
		}
	}
}

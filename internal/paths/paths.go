// Package paths defines the coordinator tree layout shared by every
// Typhoon component (the concrete encoding of Table 1's global states):
//
//	/topologies/<name>/logical    JSON topology.Logical   (streaming manager ⇄ SDN controller)
//	/topologies/<name>/physical   JSON topology.Physical  (manager → controller, agents, workers)
//	/agents/<host>                JSON agent registration (agents → manager, controller)
//	/heartbeats/<name>/<worker>   unix-nano timestamp     (agents → manager fault monitor)
//	/status/<name>/netready       generation the SDN controller finished programming
//	/status/<name>/netready.<h>   per-host generation (replicated control plane)
//	/status/<name>/activated      baseline activation marker (manager → agents)
//	/status/<name>/paused         managed-rescale pause marker (updater app → controller)
//	/controlplane/controllers/<id>  JSON controller registration + liveness lease
//	/controlplane/masters/<host>    JSON switch-mastership lease (coordinator-elected)
package paths

import (
	"strconv"
	"strings"

	"typhoon/internal/topology"
)

// Topologies is the prefix covering all topology state.
const Topologies = "/topologies"

// Agents is the prefix covering worker agent registrations.
const Agents = "/agents"

// Heartbeats is the prefix covering worker heartbeats.
const Heartbeats = "/heartbeats"

// Status is the prefix covering controller-written readiness markers.
const Status = "/status"

// ControlPlane is the prefix covering the replicated control plane: the
// controller registrations and the per-switch mastership leases of the
// distributed-controllers design (Yazıcı et al.).
const ControlPlane = "/controlplane"

// Controllers is the prefix covering controller registrations.
const Controllers = ControlPlane + "/controllers"

// Masters is the prefix covering per-switch mastership leases.
const Masters = ControlPlane + "/masters"

// Logical returns the logical-topology node for a topology name.
func Logical(name string) string { return Topologies + "/" + name + "/logical" }

// Physical returns the physical-topology node for a topology name.
func Physical(name string) string { return Topologies + "/" + name + "/physical" }

// TopologyPrefix returns the subtree of one topology.
func TopologyPrefix(name string) string { return Topologies + "/" + name }

// Agent returns the registration node of a worker agent host.
func Agent(host string) string { return Agents + "/" + host }

// Heartbeat returns the heartbeat node of one worker.
func Heartbeat(name string, id topology.WorkerID) string {
	return Heartbeats + "/" + name + "/" + strconv.FormatUint(uint64(id), 10)
}

// HeartbeatPrefix returns the heartbeat subtree of one topology.
func HeartbeatPrefix(name string) string { return Heartbeats + "/" + name }

// NetReady returns the controller-readiness node of one topology.
func NetReady(name string) string { return Status + "/" + name + "/netready" }

// NetReadyHost returns the per-host readiness node of one topology. In a
// replicated control plane each controller programs only the switches it
// masters and records the generation here; the topology's owning controller
// aggregates these into the plain NetReady marker the manager waits on. The
// host rides inside the marker element (dot separator) so ParseStatus keeps
// working on the two-element status layout.
func NetReadyHost(name, host string) string {
	return Status + "/" + name + "/netready." + host
}

// Activated returns the activation marker of one topology (baseline mode:
// sources stay throttled until the manager activates the topology).
func Activated(name string) string { return Status + "/" + name + "/activated" }

// Paused returns the managed-rescale pause marker of one topology. While
// present, the SDN controller's reconciliation neither activates sources
// nor injects SIGNAL flushes: the updater app owns the stable-update
// choreography (§3.5) until it removes the marker.
func Paused(name string) string { return Status + "/" + name + "/paused" }

// ControllerReg returns the registration node of one controller instance.
func ControllerReg(id string) string { return Controllers + "/" + id }

// SwitchMaster returns the mastership-lease node of one switch host.
func SwitchMaster(host string) string { return Masters + "/" + host }

// ParseControllerReg parses a controller registration path back into the
// controller ID.
func ParseControllerReg(p string) (id string, ok bool) {
	rest, found := strings.CutPrefix(p, Controllers+"/")
	if !found || !ValidName(rest) {
		return "", false
	}
	return rest, true
}

// ParseSwitchMaster parses a mastership-lease path back into the host name.
func ParseSwitchMaster(p string) (host string, ok bool) {
	rest, found := strings.CutPrefix(p, Masters+"/")
	if !found || !ValidName(rest) {
		return "", false
	}
	return rest, true
}

// ValidName reports whether a name is usable as one path element: non-empty
// and free of the separator. Constructors do not validate (callers pass
// compile-time names); parsers reject anything a valid constructor could
// not have produced.
func ValidName(name string) bool {
	return name != "" && !strings.Contains(name, "/")
}

// SplitTopology parses a path under Topologies into the topology name and
// the remaining kind ("logical", "physical", or "" for the subtree root).
// It rejects paths outside the Topologies subtree and malformed names.
func SplitTopology(p string) (name, kind string, ok bool) {
	rest, found := strings.CutPrefix(p, Topologies+"/")
	if !found {
		return "", "", false
	}
	name, kind, _ = strings.Cut(rest, "/")
	if !ValidName(name) {
		return "", "", false
	}
	return name, kind, true
}

// TopologyName extracts the topology name from any path under Topologies,
// or "" when the path lies outside the subtree.
func TopologyName(p string) string {
	name, _, ok := SplitTopology(p)
	if !ok {
		return ""
	}
	return name
}

// ParseAgent parses an agent registration path back into the host name.
func ParseAgent(p string) (host string, ok bool) {
	rest, found := strings.CutPrefix(p, Agents+"/")
	if !found || !ValidName(rest) {
		return "", false
	}
	return rest, true
}

// ParseHeartbeat parses a heartbeat path back into its topology name and
// worker ID, rejecting malformed keys.
func ParseHeartbeat(p string) (name string, id topology.WorkerID, ok bool) {
	rest, found := strings.CutPrefix(p, Heartbeats+"/")
	if !found {
		return "", 0, false
	}
	name, idPart, hasID := strings.Cut(rest, "/")
	if !hasID || !ValidName(name) {
		return "", 0, false
	}
	n, err := strconv.ParseUint(idPart, 10, 32)
	if err != nil {
		return "", 0, false
	}
	return name, topology.WorkerID(n), true
}

// ParseStatus parses a status path into its topology name and marker kind
// ("netready", "activated", "paused").
func ParseStatus(p string) (name, marker string, ok bool) {
	rest, found := strings.CutPrefix(p, Status+"/")
	if !found {
		return "", "", false
	}
	name, marker, hasMarker := strings.Cut(rest, "/")
	if !hasMarker || !ValidName(name) || !ValidName(marker) {
		return "", "", false
	}
	return name, marker, true
}

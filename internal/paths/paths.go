// Package paths defines the coordinator tree layout shared by every
// Typhoon component (the concrete encoding of Table 1's global states):
//
//	/topologies/<name>/logical    JSON topology.Logical   (streaming manager ⇄ SDN controller)
//	/topologies/<name>/physical   JSON topology.Physical  (manager → controller, agents, workers)
//	/agents/<host>                JSON agent registration (agents → manager, controller)
//	/heartbeats/<name>/<worker>   unix-nano timestamp     (agents → manager fault monitor)
//	/status/<name>/netready       generation the SDN controller finished programming
package paths

import (
	"strconv"

	"typhoon/internal/topology"
)

// Topologies is the prefix covering all topology state.
const Topologies = "/topologies"

// Agents is the prefix covering worker agent registrations.
const Agents = "/agents"

// Heartbeats is the prefix covering worker heartbeats.
const Heartbeats = "/heartbeats"

// Status is the prefix covering controller-written readiness markers.
const Status = "/status"

// Logical returns the logical-topology node for a topology name.
func Logical(name string) string { return Topologies + "/" + name + "/logical" }

// Physical returns the physical-topology node for a topology name.
func Physical(name string) string { return Topologies + "/" + name + "/physical" }

// TopologyPrefix returns the subtree of one topology.
func TopologyPrefix(name string) string { return Topologies + "/" + name }

// Agent returns the registration node of a worker agent host.
func Agent(host string) string { return Agents + "/" + host }

// Heartbeat returns the heartbeat node of one worker.
func Heartbeat(name string, id topology.WorkerID) string {
	return Heartbeats + "/" + name + "/" + strconv.FormatUint(uint64(id), 10)
}

// HeartbeatPrefix returns the heartbeat subtree of one topology.
func HeartbeatPrefix(name string) string { return Heartbeats + "/" + name }

// NetReady returns the controller-readiness node of one topology.
func NetReady(name string) string { return Status + "/" + name + "/netready" }

// Activated returns the activation marker of one topology (baseline mode:
// sources stay throttled until the manager activates the topology).
func Activated(name string) string { return Status + "/" + name + "/activated" }

package apiclient_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"typhoon/internal/apiclient"
	"typhoon/internal/chaos"
	"typhoon/internal/core"
	"typhoon/internal/observe"
	"typhoon/internal/switchfabric"
)

// serve mounts the real observe.Handler so the client is tested against
// the production envelope wrapping, not a hand-rolled fake.
func serve(t *testing.T, o observe.ServerOptions) *apiclient.Client {
	t.Helper()
	srv := httptest.NewServer(observe.Handler(o))
	t.Cleanup(srv.Close)
	return apiclient.New(strings.TrimPrefix(srv.URL, "http://"))
}

func TestTopDecodesEnvelope(t *testing.T) {
	want := observe.TopSnapshot{
		At:       time.Unix(1700000000, 0).UTC(),
		Switches: []observe.SwitchRow{{Host: "h1", Ports: 3, Rules: 7, RxFrames: 42}},
	}
	cl := serve(t, observe.ServerOptions{Top: func() observe.TopSnapshot { return want }})
	got, err := cl.Top()
	if err != nil {
		t.Fatalf("Top: %v", err)
	}
	if len(got.Switches) != 1 || got.Switches[0] != want.Switches[0] {
		t.Fatalf("Top = %+v, want %+v", got, want)
	}
}

func TestErrorEnvelopeBecomesTypedError(t *testing.T) {
	cl := serve(t, observe.ServerOptions{
		Qos: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			http.Error(w, "no such topology", http.StatusConflict)
		}),
	})
	err := cl.QoSSet("ghost", "burstable", 0)
	apiErr, ok := err.(*apiclient.Error)
	if !ok {
		t.Fatalf("QoSSet error = %T (%v), want *apiclient.Error", err, err)
	}
	if apiErr.Status != http.StatusConflict || apiErr.Message != "no such topology" {
		t.Fatalf("error = %+v, want 409/no such topology", apiErr)
	}
}

func TestDisabledRouteIs404(t *testing.T) {
	cl := serve(t, observe.ServerOptions{}) // no handlers wired at all
	_, err := cl.ControlPlane()
	apiErr, ok := err.(*apiclient.Error)
	if !ok || apiErr.Status != http.StatusNotFound {
		t.Fatalf("ControlPlane on bare server = %v, want 404 Error", err)
	}
}

func TestChaosApplyAndLog(t *testing.T) {
	var gotSpec chaos.Spec
	cl := serve(t, observe.ServerOptions{
		Chaos: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if r.Method == http.MethodPost {
				_ = json.NewDecoder(r.Body).Decode(&gotSpec)
				_ = json.NewEncoder(w).Encode(map[string]string{"applied": "partition h1<->h2"})
				return
			}
			_ = json.NewEncoder(w).Encode([]chaos.Injection{{Detail: "wiped 12 rules"}})
		}),
	})
	applied, err := cl.ChaosApply(chaos.Spec{Kind: chaos.KindPartition, Host: "h1", Peer: "h2"})
	if err != nil || applied != "partition h1<->h2" {
		t.Fatalf("ChaosApply = %q, %v", applied, err)
	}
	if gotSpec.Kind != chaos.KindPartition || gotSpec.Host != "h1" || gotSpec.Peer != "h2" {
		t.Fatalf("server saw spec %+v", gotSpec)
	}
	log, err := cl.ChaosLog()
	if err != nil || len(log) != 1 || log[0].Detail != "wiped 12 rules" {
		t.Fatalf("ChaosLog = %+v, %v", log, err)
	}
}

func TestTransportErrorMentionsMetricsFlag(t *testing.T) {
	cl := apiclient.New("127.0.0.1:1") // nothing listens on port 1
	_, err := cl.Top()
	if err == nil || !strings.Contains(err.Error(), "-metrics") {
		t.Fatalf("Top against dead endpoint = %v, want hint about -metrics", err)
	}
	if _, ok := err.(*apiclient.Error); ok {
		t.Fatalf("transport failure should not be an API *Error: %v", err)
	}
}

// TestQoSStatusMirrorsCore pins the client's QoS types to the server's
// wire format: a core.QoSStatusReport must round-trip losslessly into
// apiclient.QoSStatus.
func TestQoSStatusMirrorsCore(t *testing.T) {
	report := core.QoSStatusReport{
		Enabled: true,
		Hosts: []core.QoSHostRow{{
			Host:       "h1",
			MeterDrops: 9,
			Meters:     []switchfabric.MeterInfo{{ID: 1, RateBps: 1 << 20, BurstBytes: 64 << 10, Drops: 9}},
			Queues:     []switchfabric.QueueStats{{Class: "guaranteed", Depth: 2, Enqueued: 100, Dropped: 1}},
		}},
		Queues: core.DefaultQueueClasses(),
	}
	blob, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	var got apiclient.QoSStatus
	if err := json.Unmarshal(blob, &got); err != nil {
		t.Fatal(err)
	}
	back, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(back) != string(blob) {
		t.Fatalf("round trip mismatch:\n core: %s\nclient: %s", blob, back)
	}
}

// TestBatchStatusMirrorsCore pins the client's batch types to the server's
// wire format: a core.BatchStatusReport must round-trip losslessly into
// apiclient.BatchStatus.
func TestBatchStatusMirrorsCore(t *testing.T) {
	report := core.BatchStatusReport{
		DefaultSize:     256,
		FlushDeadlineNs: int64(2 * time.Millisecond),
		Hosts: []core.BatchHostRow{{
			Host: "h1", Workers: 3,
			TuplesSent: 1000, FramesSent: 11, TuplesReceived: 990,
			BatchOccupancy: 90.9,
		}},
	}
	blob, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	var got apiclient.BatchStatus
	if err := json.Unmarshal(blob, &got); err != nil {
		t.Fatal(err)
	}
	back, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(back) != string(blob) {
		t.Fatalf("round trip mismatch:\n core: %s\nclient: %s", blob, back)
	}
}

func TestBatchSetQuery(t *testing.T) {
	var gotQuery string
	cl := serve(t, observe.ServerOptions{
		Batch: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			gotQuery = r.URL.RawQuery
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write([]byte(`{"status":"ok"}`))
		}),
	})
	if err := cl.BatchSet(256, -time.Millisecond); err != nil {
		t.Fatalf("BatchSet: %v", err)
	}
	if gotQuery != "deadline=-1ms&size=256" {
		t.Fatalf("query = %q", gotQuery)
	}
}

func TestQoSStatusThroughHandler(t *testing.T) {
	cl := serve(t, observe.ServerOptions{
		Qos: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(core.QoSStatusReport{
				Enabled: true,
				Queues:  core.DefaultQueueClasses(),
			})
		}),
	})
	st, err := cl.QoS()
	if err != nil {
		t.Fatalf("QoS: %v", err)
	}
	if !st.Enabled || len(st.Queues) != 3 || st.Queues[0].Name != "guaranteed" {
		t.Fatalf("QoS = %+v", st)
	}
}

// Package apiclient is the typed Go client of the cluster observability
// API — the versioned /api/v1 surface and its envelope contract
// ({"data": ...} on success, {"error": {"code", "message"}} on failure).
// Every typhoon-ctl observability subcommand speaks through this client;
// ad-hoc HTTP against the cluster belongs nowhere else.
package apiclient

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"typhoon/internal/chaos"
	"typhoon/internal/controller"
	"typhoon/internal/observe"
	"typhoon/internal/scenario"
	"typhoon/internal/switchfabric"
)

// DefaultTimeout bounds one API round trip unless a call overrides it
// (Rescale derives its own from the requested rescale timeout).
const DefaultTimeout = 10 * time.Second

// Client talks to one cluster's observability HTTP endpoint
// (typhoon-cluster -metrics).
type Client struct {
	addr string // host:port
	hc   *http.Client
}

// New returns a client for the observability endpoint at addr (host:port).
func New(addr string) *Client {
	return &Client{addr: addr, hc: &http.Client{Timeout: DefaultTimeout}}
}

// Error is an API-level failure: the endpoint answered, but with the error
// half of the envelope (or a bare non-2xx status). Transport failures are
// returned as wrapped net errors instead.
type Error struct {
	// Status is the HTTP status code (mirrored by the envelope's code).
	Status int
	// Message is the server's human-readable description.
	Message string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s: %s", http.StatusText(e.Status), e.Message)
}

// get performs a GET against /api/v1/<path> and decodes the envelope's
// data into out (which may be nil to discard it).
func (c *Client) get(path string, query url.Values, out any) error {
	return c.do(c.hc, http.MethodGet, path, query, nil, out)
}

// post performs a POST against /api/v1/<path> with an optional JSON body.
func (c *Client) post(path string, query url.Values, body, out any) error {
	return c.do(c.hc, http.MethodPost, path, query, body, out)
}

// do is the envelope-decoding core every typed method rides on.
func (c *Client) do(hc *http.Client, method, path string, query url.Values, body, out any) error {
	u := "http://" + c.addr + "/api/v1/" + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	var rd io.Reader
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(blob)
	}
	req, err := http.NewRequest(method, u, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := hc.Do(req)
	if err != nil {
		return fmt.Errorf("cannot reach cluster API at %s (%w); is typhoon-cluster running with -metrics?", c.addr, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	var env observe.Envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		// Not an envelope at all — a proxy error page or a pre-/api/v1
		// server. Surface the status and body as-is.
		return &Error{Status: resp.StatusCode, Message: strings.TrimSpace(string(raw))}
	}
	if env.Error != nil {
		return &Error{Status: env.Error.Code, Message: env.Error.Message}
	}
	if resp.StatusCode != http.StatusOK {
		return &Error{Status: resp.StatusCode, Message: strings.TrimSpace(string(raw))}
	}
	if out != nil && len(env.Data) > 0 {
		if err := json.Unmarshal(env.Data, out); err != nil {
			return fmt.Errorf("apiclient: /api/v1/%s: malformed data payload: %w", path, err)
		}
	}
	return nil
}

// MetricsText fetches the raw Prometheus exposition from /metrics. This is
// the one unversioned surface — the text format is its own contract.
func (c *Client) MetricsText() ([]byte, error) {
	resp, err := c.hc.Get("http://" + c.addr + "/metrics")
	if err != nil {
		return nil, fmt.Errorf("cannot reach cluster API at %s (%w); is typhoon-cluster running with -metrics?", c.addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, &Error{Status: resp.StatusCode, Message: "metrics endpoint unavailable"}
	}
	return io.ReadAll(resp.Body)
}

// Metrics fetches the registry snapshot as structured samples.
func (c *Client) Metrics() ([]observe.Sample, error) {
	var out []observe.Sample
	err := c.get("metrics", nil, &out)
	return out, err
}

// Top fetches the live cluster table. Each request makes the controller
// issue a METRIC_REQ sweep, so worker rows track the data plane live.
func (c *Client) Top() (observe.TopSnapshot, error) {
	var snap observe.TopSnapshot
	err := c.get("top", nil, &snap)
	return snap, err
}

// Traces fetches up to n recent completed tuple-path traces.
func (c *Client) Traces(n int) ([]observe.TraceRecord, error) {
	q := url.Values{}
	if n > 0 {
		q.Set("n", strconv.Itoa(n))
	}
	var out []observe.TraceRecord
	err := c.get("traces", q, &out)
	return out, err
}

// ChaosApply injects one fault and returns the engine's description of
// what it applied.
func (c *Client) ChaosApply(s chaos.Spec) (string, error) {
	var out struct {
		Applied string `json:"applied"`
	}
	if err := c.post("chaos", nil, s, &out); err != nil {
		return "", err
	}
	return out.Applied, nil
}

// ChaosLog fetches the engine's injection record, oldest first.
func (c *Client) ChaosLog() ([]chaos.Injection, error) {
	var out []chaos.Injection
	err := c.get("chaos", nil, &out)
	return out, err
}

// Rescale runs a managed stable rescale and returns its report. A zero
// timeout selects the server default; otherwise the HTTP client waits a
// grace period past the requested bound so the server, not the transport,
// reports expiry.
func (c *Client) Rescale(topo, node string, parallelism int, timeout time.Duration) (controller.RescaleReport, error) {
	q := url.Values{}
	q.Set("topo", topo)
	q.Set("node", node)
	q.Set("parallelism", strconv.Itoa(parallelism))
	hc := &http.Client{Timeout: 35 * time.Second}
	if timeout > 0 {
		q.Set("timeout", timeout.String())
		hc.Timeout = timeout + 5*time.Second
	}
	var report controller.RescaleReport
	err := c.do(hc, http.MethodPost, "rescale", q, nil, &report)
	return report, err
}

// ScenarioRun executes a declarative scenario spec on the cluster via
// /api/v1/scenario and returns its report. duration > 0 overrides the
// spec's play duration. Scenario runs last as long as their spec says, so
// the round trip carries no client-side timeout; cancel by killing the
// process (the server aborts the run when the request context drops).
func (c *Client) ScenarioRun(spec json.RawMessage, duration time.Duration) (*scenario.Report, error) {
	q := url.Values{}
	if duration > 0 {
		q.Set("duration", duration.String())
	}
	hc := &http.Client{}
	var report scenario.Report
	if err := c.do(hc, http.MethodPost, "scenario", q, spec, &report); err != nil {
		return nil, err
	}
	return &report, nil
}

// ControlPlane fetches controller registrations and per-switch mastership.
// Both lists are empty for a standalone single-controller cluster.
func (c *Client) ControlPlane() (controller.ControlPlaneInfo, error) {
	var info controller.ControlPlaneInfo
	err := c.get("controlplane", nil, &info)
	return info, err
}

// QoSHostRow is one host's data-plane QoS statistics. It mirrors the wire
// format of core's QoS status report (pinned by a compatibility test).
type QoSHostRow struct {
	Host       string                    `json:"host"`
	MeterDrops uint64                    `json:"meterDrops"`
	Meters     []switchfabric.MeterInfo  `json:"meters,omitempty"`
	Queues     []switchfabric.QueueStats `json:"queues,omitempty"`
}

// QoSStatus is the /api/v1/qos GET payload: per-topology rate classes and
// per-host meter and egress-queue statistics.
type QoSStatus struct {
	Enabled    bool                      `json:"enabled"`
	Topologies []controller.TopologyQoS  `json:"topologies,omitempty"`
	Hosts      []QoSHostRow              `json:"hosts,omitempty"`
	Queues     []switchfabric.QueueClass `json:"queueClasses,omitempty"`
}

// BatchHostRow is one host's aggregated transport batching statistics. It
// mirrors the wire format of core's batch status report.
type BatchHostRow struct {
	Host           string  `json:"host"`
	Workers        int     `json:"workers"`
	TuplesSent     uint64  `json:"tuplesSent"`
	FramesSent     uint64  `json:"framesSent"`
	TuplesReceived uint64  `json:"tuplesReceived"`
	BatchOccupancy float64 `json:"batchOccupancy"`
}

// BatchStatus is the /api/v1/batch GET payload: the batching defaults new
// workers inherit plus realized per-host occupancy.
type BatchStatus struct {
	DefaultSize     int            `json:"defaultSize"`
	FlushDeadlineNs int64          `json:"flushDeadlineNs"`
	Hosts           []BatchHostRow `json:"hosts,omitempty"`
}

// Batch fetches the cluster's batching status.
func (c *Client) Batch() (BatchStatus, error) {
	var st BatchStatus
	err := c.get("batch", nil, &st)
	return st, err
}

// BatchSet retunes the data-plane batching knobs cluster-wide. size <= 0
// and deadline == 0 leave the respective knob unchanged; a negative
// deadline disables the bounded staging wait.
func (c *Client) BatchSet(size int, deadline time.Duration) error {
	q := url.Values{}
	if size > 0 {
		q.Set("size", strconv.Itoa(size))
	}
	if deadline != 0 {
		q.Set("deadline", deadline.String())
	}
	return c.post("batch", q, nil, nil)
}

// QoS fetches the cluster's QoS status.
func (c *Client) QoS() (QoSStatus, error) {
	var st QoSStatus
	err := c.get("qos", nil, &st)
	return st, err
}

// QoSSet reassigns a running topology's rate class and, optionally, its
// configured bandwidth (rateBps 0 leaves the class's rate to the online
// bandwidth allocator).
func (c *Client) QoSSet(topo, class string, rateBps uint64) error {
	q := url.Values{}
	q.Set("topo", topo)
	q.Set("class", class)
	if rateBps > 0 {
		q.Set("rate", strconv.FormatUint(rateBps, 10))
	}
	return c.post("qos", q, nil, nil)
}

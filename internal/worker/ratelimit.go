package worker

import (
	"sync"
	"time"
)

// RateLimiter is a token bucket used by the input rate controller of the
// I/O layer (INPUT_RATE control tuples adjust it at runtime).
type RateLimiter struct {
	mu     sync.Mutex
	rate   float64 // tokens per second; <= 0 means unlimited
	tokens float64
	burst  float64
	last   time.Time
}

// NewRateLimiter builds a limiter; rate <= 0 means unlimited.
func NewRateLimiter(rate float64) *RateLimiter {
	l := &RateLimiter{last: time.Now()}
	l.SetRate(rate)
	return l
}

// SetRate changes the sustained rate; <= 0 disables limiting.
func (l *RateLimiter) SetRate(rate float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.rate = rate
	l.burst = rate / 100
	if l.burst < 1 {
		l.burst = 1
	}
	if l.tokens > l.burst {
		l.tokens = l.burst
	}
}

// Rate returns the configured rate.
func (l *RateLimiter) Rate() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rate
}

// Allow consumes one token if available.
func (l *RateLimiter) Allow() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.rate <= 0 {
		return true
	}
	now := time.Now()
	l.tokens += l.rate * now.Sub(l.last).Seconds()
	l.last = now
	if l.tokens > l.burst {
		l.tokens = l.burst
	}
	if l.tokens >= 1 {
		l.tokens--
		return true
	}
	return false
}

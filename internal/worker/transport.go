package worker

import (
	"errors"
	"sync"
	"time"

	"typhoon/internal/topology"
	"typhoon/internal/tuple"
)

// errTransportClosed is returned by Recv once a transport is closed.
var errTransportClosed = errors.New("worker: transport closed")

// Transport is the pluggable tuple transport beneath the framework layer —
// the equivalent of Storm's IContext/IConnection extension point the
// prototype plugs its DPDK library into (§5). The Typhoon SDN data plane
// (SDNTransport) and the Storm-style TCP baseline both implement it, which
// is what makes the paper's head-to-head comparisons possible.
//
// Transports are used by a single worker goroutine; implementations need
// not be safe for concurrent Send calls.
type Transport interface {
	// Send delivers one tuple to the destination workers. A broadcast
	// destination asks for network-level replication where available;
	// transports without it fall back to per-destination sends.
	Send(d Destination, t tuple.Tuple) error
	// SendControl sends a tuple to the SDN controller (METRIC_RESP). On
	// transports without a controller path it is a no-op.
	SendControl(t tuple.Tuple) error
	// Recv returns the next batch of incoming tuples, waiting up to wait
	// for the first. The returned slice may be a view into a transport-
	// owned buffer valid only until the next Recv call; the tuples
	// themselves own their storage and may be retained. It returns an
	// error only when the transport is closed.
	Recv(max int, wait time.Duration) ([]tuple.Tuple, error)
	// Flush pushes any batched tuples to the wire.
	Flush() error
	// Reconfigure applies a transport-level control tuple (BATCH_SIZE
	// adjusts the egress batch threshold; future kinds slot in without
	// widening this interface). Transports ignore kinds they do not
	// understand and return nil; an error means the tuple was understood
	// but malformed or inapplicable.
	Reconfigure(t tuple.Tuple) error
	// InQueueLen reports tuples/frames queued toward this worker, the
	// queue-status metric the auto-scaler polls.
	InQueueLen() int
	// Stats reports transport counters.
	Stats() TransportStats
	// Close releases the transport; pending Recv calls return an error.
	Close() error
}

// TransportStats counts transport-level activity.
type TransportStats struct {
	// TuplesSent counts application-visible sends (one per destination
	// for unicast, one per broadcast).
	TuplesSent uint64
	// Serializations counts tuple serializations performed; the Fig 9
	// comparison is the ratio of this to TuplesSent under fan-out.
	Serializations uint64
	// FramesSent counts data-plane frames (SDN transport only).
	FramesSent uint64
	// Dropped counts tuples or frames lost to full queues.
	Dropped uint64
	// TuplesReceived counts tuples delivered to the worker.
	TuplesReceived uint64
}

// ChanTransport is an in-process Transport connecting workers through Go
// channels. It exists for unit tests and as the simplest reference
// implementation of the interface contract.
type ChanTransport struct {
	self  topology.WorkerID
	inbox chan tuple.Tuple
	net   *ChanNetwork

	mu     sync.Mutex
	ctrl   chan tuple.Tuple
	closed chan struct{}
	once   sync.Once

	stats TransportStats
}

// ChanNetwork wires ChanTransports together.
type ChanNetwork struct {
	mu    sync.Mutex
	peers map[topology.WorkerID]*ChanTransport
	// Control receives worker-to-controller tuples.
	Control chan tuple.Tuple
}

// NewChanNetwork builds an empty channel network.
func NewChanNetwork() *ChanNetwork {
	return &ChanNetwork{
		peers:   make(map[topology.WorkerID]*ChanTransport),
		Control: make(chan tuple.Tuple, 1024),
	}
}

// Attach creates a transport for the given worker ID.
func (n *ChanNetwork) Attach(id topology.WorkerID) *ChanTransport {
	n.mu.Lock()
	defer n.mu.Unlock()
	t := &ChanTransport{
		self:   id,
		inbox:  make(chan tuple.Tuple, 4096),
		net:    n,
		ctrl:   n.Control,
		closed: make(chan struct{}),
	}
	n.peers[id] = t
	return t
}

func (n *ChanNetwork) lookup(id topology.WorkerID) *ChanTransport {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.peers[id]
}

// Send implements Transport.
func (t *ChanTransport) Send(d Destination, in tuple.Tuple) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats.Serializations++ // channel transport "serializes" once
	for _, id := range d.Workers {
		peer := t.net.lookup(id)
		if peer == nil {
			t.stats.Dropped++
			continue
		}
		select {
		case peer.inbox <- in:
			t.stats.TuplesSent++
		default:
			t.stats.Dropped++
		}
	}
	return nil
}

// SendControl implements Transport.
func (t *ChanTransport) SendControl(in tuple.Tuple) error {
	select {
	case t.ctrl <- in:
	default:
	}
	return nil
}

// Recv implements Transport.
func (t *ChanTransport) Recv(max int, wait time.Duration) ([]tuple.Tuple, error) {
	if max <= 0 {
		max = 64
	}
	var out []tuple.Tuple
	var timer *time.Timer
	var timeout <-chan time.Time
	if wait > 0 {
		timer = time.NewTimer(wait)
		timeout = timer.C
		defer timer.Stop()
	}
	select {
	case tp := <-t.inbox:
		out = append(out, tp)
	case <-t.closed:
		return nil, errTransportClosed
	case <-timeout:
		return nil, nil
	default:
		if wait <= 0 {
			return nil, nil
		}
		select {
		case tp := <-t.inbox:
			out = append(out, tp)
		case <-t.closed:
			return nil, errTransportClosed
		case <-timeout:
			return nil, nil
		}
	}
	for len(out) < max {
		select {
		case tp := <-t.inbox:
			out = append(out, tp)
		default:
			t.mu.Lock()
			t.stats.TuplesReceived += uint64(len(out))
			t.mu.Unlock()
			return out, nil
		}
	}
	t.mu.Lock()
	t.stats.TuplesReceived += uint64(len(out))
	t.mu.Unlock()
	return out, nil
}

// Flush implements Transport (no batching to flush).
func (t *ChanTransport) Flush() error { return nil }

// Reconfigure implements Transport: the channel transport has no knobs,
// so every control tuple is ignored.
func (t *ChanTransport) Reconfigure(tuple.Tuple) error { return nil }

// InQueueLen implements Transport.
func (t *ChanTransport) InQueueLen() int { return len(t.inbox) }

// Stats implements Transport.
func (t *ChanTransport) Stats() TransportStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// Close implements Transport.
func (t *ChanTransport) Close() error {
	t.once.Do(func() { close(t.closed) })
	return nil
}

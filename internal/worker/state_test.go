package worker

import (
	"fmt"
	"testing"

	"typhoon/internal/tuple"
)

func TestPartitionOfKeyInRange(t *testing.T) {
	for i := 0; i < 1000; i++ {
		p := PartitionOfKey(fmt.Sprintf("key-%d", i))
		if p >= NumPartitions {
			t.Fatalf("partition %d out of range", p)
		}
	}
}

func TestPartitionOfKeyMatchesFieldHash(t *testing.T) {
	// The snapshot redistribution path must agree with the router's Fields
	// routing for single-field keys, or migrated state lands on the wrong
	// instance.
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		tu := tuple.New(tuple.String(key))
		routed := PartitionOf(tuple.HashFields(tu, []int{0}))
		if got := PartitionOfKey(key); got != routed {
			t.Fatalf("PartitionOfKey(%q) = %d, router hashes to %d", key, got, routed)
		}
	}
}

func TestOwnerIndexBounds(t *testing.T) {
	for n := 1; n <= 8; n++ {
		for p := uint32(0); p < NumPartitions; p++ {
			idx := OwnerIndex(p, n)
			if idx < 0 || idx >= n {
				t.Fatalf("OwnerIndex(%d, %d) = %d out of range", p, n, idx)
			}
		}
	}
}

func TestOwnerIndexDeterministic(t *testing.T) {
	for p := uint32(0); p < NumPartitions; p++ {
		if OwnerIndex(p, 4) != OwnerIndex(p, 4) {
			t.Fatalf("OwnerIndex(%d, 4) unstable", p)
		}
	}
}

func TestOwnerIndexSpreadsPartitions(t *testing.T) {
	// Rendezvous hashing over 64 partitions must use every instance of
	// reasonable parallelisms — an unused instance would silently halve
	// effective capacity.
	for n := 2; n <= 6; n++ {
		used := make(map[int]bool)
		for p := uint32(0); p < NumPartitions; p++ {
			used[OwnerIndex(p, n)] = true
		}
		if len(used) != n {
			t.Fatalf("parallelism %d: only %d instances own partitions", n, len(used))
		}
	}
}

func TestOwnerIndexMinimalMovement(t *testing.T) {
	// The rendezvous property: growing n to n+1 only moves partitions onto
	// the new instance — no partition shuffles between surviving instances.
	for n := 1; n <= 7; n++ {
		moved, toNew := 0, 0
		for p := uint32(0); p < NumPartitions; p++ {
			before, after := OwnerIndex(p, n), OwnerIndex(p, n+1)
			if before != after {
				moved++
				if after == n {
					toNew++
				}
			}
		}
		if moved != toNew {
			t.Fatalf("scale %d->%d: %d partitions moved, only %d to the new instance",
				n, n+1, moved, toNew)
		}
	}
}

func TestKeyRangeContains(t *testing.T) {
	full := FullKeyRange()
	if full.From != 0 || full.To != NumPartitions {
		t.Fatalf("FullKeyRange = %+v", full)
	}
	for p := uint32(0); p < NumPartitions; p++ {
		if !full.Contains(p) {
			t.Fatalf("full range misses partition %d", p)
		}
	}
	r := KeyRange{From: 8, To: 16}
	for p := uint32(0); p < NumPartitions; p++ {
		want := p >= 8 && p < 16
		if r.Contains(p) != want {
			t.Fatalf("KeyRange[8,16).Contains(%d) = %v", p, !want)
		}
	}
}

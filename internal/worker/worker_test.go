package worker

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"typhoon/internal/control"
	"typhoon/internal/topology"
	"typhoon/internal/tuple"
)

// seqSource emits consecutive integers up to a limit.
type seqSource struct {
	n     int64
	limit int64
}

func (s *seqSource) Open(*Context) error  { return nil }
func (s *seqSource) Close(*Context) error { return nil }
func (s *seqSource) Next(ctx *Context) (bool, error) {
	if s.limit > 0 && s.n >= s.limit {
		return false, nil
	}
	ctx.Emit(tuple.Int(s.n))
	s.n++
	return true, nil
}

// collector records everything it sees.
type collector struct {
	mu      sync.Mutex
	ints    []int64
	signals int
}

func (c *collector) Open(*Context) error  { return nil }
func (c *collector) Close(*Context) error { return nil }
func (c *collector) Execute(_ *Context, in tuple.Tuple) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if in.Stream.IsSignal() {
		c.signals++
		return nil
	}
	c.ints = append(c.ints, in.Field(0).AsInt())
	return nil
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.ints)
}

// forwarder re-emits each input's first field.
type forwarder struct{}

func (forwarder) Open(*Context) error  { return nil }
func (forwarder) Close(*Context) error { return nil }
func (forwarder) Execute(ctx *Context, in tuple.Tuple) error {
	if in.Stream.IsSignal() {
		return nil
	}
	ctx.Emit(in.Field(0))
	return nil
}

// faulty fails on the nth tuple.
type faulty struct{ after int }

func (f *faulty) Open(*Context) error  { return nil }
func (f *faulty) Close(*Context) error { return nil }
func (f *faulty) Execute(*Context, tuple.Tuple) error {
	f.after--
	if f.after <= 0 {
		return errors.New("boom")
	}
	return nil
}

// terminal consumes and emits nothing (for acking chains).
type terminal struct{ seen atomic.Int64 }

func (t *terminal) Open(*Context) error  { return nil }
func (t *terminal) Close(*Context) error { return nil }
func (t *terminal) Execute(_ *Context, in tuple.Tuple) error {
	if !in.Stream.IsSignal() {
		t.seen.Add(1)
	}
	return nil
}

func init() {
	RegisterLogic("test/collector", func() Component { return &collector{} })
	RegisterLogic("test/forwarder", func() Component { return forwarder{} })
}

// testAcker duplicates the XOR acker from internal/ack (which cannot be
// imported here without a cycle, since it imports this package).
type testAcker struct {
	pending map[uint64]*ackEntry
}

type ackEntry struct {
	xor  uint64
	src  int64
	init bool
}

func newTestAcker() *testAcker { return &testAcker{pending: map[uint64]*ackEntry{}} }

func (a *testAcker) Open(*Context) error  { return nil }
func (a *testAcker) Close(*Context) error { return nil }
func (a *testAcker) Execute(ctx *Context, in tuple.Tuple) error {
	if in.Stream != tuple.AckStream {
		return nil
	}
	root := uint64(in.Field(1).AsInt())
	e := a.pending[root]
	if e == nil {
		e = &ackEntry{}
		a.pending[root] = e
	}
	e.xor ^= uint64(in.Field(2).AsInt())
	if in.Field(0).AsInt() == 0 {
		e.init = true
		e.src = in.Field(3).AsInt()
	}
	if e.init && e.xor == 0 {
		delete(a.pending, root)
		ctx.EmitOn(tuple.CompleteStream, tuple.Int(e.src), tuple.Int(int64(root)))
	}
	return nil
}

func dataRoute(to topology.WorkerID, policy topology.RoutingPolicy) topology.Route {
	return topology.Route{
		Edge:     topology.EdgeSpec{From: "src", To: "dst", Policy: policy},
		NextHops: []topology.WorkerID{to},
	}
}

// startWorker builds and starts a worker with a dedicated logic instance.
func startWorker(t *testing.T, cfg Config, comp Component, tr Transport) *Worker {
	t.Helper()
	name := "test/inst/" + t.Name() + "/" + cfg.Node
	RegisterLogic(name, func() Component { return comp })
	cfg.Logic = name
	w, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	w.Start()
	t.Cleanup(func() {
		if !w.stopped.Load() {
			w.Stop()
		}
	})
	return w
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not met before timeout")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestSourceToSinkPipeline(t *testing.T) {
	net := NewChanNetwork()
	sink := &collector{}
	startWorker(t, Config{App: 1, ID: 2, Node: "sink"}, sink, net.Attach(2))
	startWorker(t, Config{
		App: 1, ID: 1, Node: "src", Source: true,
		Routes: []topology.Route{dataRoute(2, topology.Shuffle)},
	}, &seqSource{limit: 100}, net.Attach(1))

	waitFor(t, 5*time.Second, func() bool { return sink.count() == 100 })
	sink.mu.Lock()
	defer sink.mu.Unlock()
	for i, v := range sink.ints {
		if v != int64(i) {
			t.Fatalf("ints[%d] = %d (order broken)", i, v)
		}
	}
}

func TestRoutingControlTupleRedirects(t *testing.T) {
	net := NewChanNetwork()
	sinkA, sinkB := &collector{}, &collector{}
	startWorker(t, Config{App: 1, ID: 2, Node: "a"}, sinkA, net.Attach(2))
	startWorker(t, Config{App: 1, ID: 3, Node: "b"}, sinkB, net.Attach(3))
	srcTr := net.Attach(1)
	startWorker(t, Config{
		App: 1, ID: 1, Node: "src", Source: true,
		Routes: []topology.Route{dataRoute(2, topology.Shuffle)},
	}, &seqSource{}, srcTr)

	waitFor(t, 5*time.Second, func() bool { return sinkA.count() > 50 })
	// Inject a ROUTING control tuple steering traffic to worker 3.
	ctl := net.Attach(99)
	_ = ctl.Send(Destination{Workers: []topology.WorkerID{1}},
		control.Encode(control.KindRouting, control.Routing{
			Routes: []topology.Route{dataRoute(3, topology.Shuffle)},
		}))
	waitFor(t, 5*time.Second, func() bool { return sinkB.count() > 50 })
	a := sinkA.count()
	time.Sleep(50 * time.Millisecond)
	if growth := sinkA.count() - a; growth > 10 {
		t.Fatalf("sink A still receiving heavily after reroute (+%d)", growth)
	}
}

func TestActivateDeactivate(t *testing.T) {
	net := NewChanNetwork()
	sink := &collector{}
	startWorker(t, Config{App: 1, ID: 2, Node: "sink"}, sink, net.Attach(2))
	startWorker(t, Config{
		App: 1, ID: 1, Node: "src", Source: true,
		Routes: []topology.Route{dataRoute(2, topology.Shuffle)},
	}, &seqSource{}, net.Attach(1))
	ctl := net.Attach(99)

	waitFor(t, 5*time.Second, func() bool { return sink.count() > 10 })
	_ = ctl.Send(Destination{Workers: []topology.WorkerID{1}}, control.Encode(control.KindDeactivate, nil))
	time.Sleep(50 * time.Millisecond)
	n := sink.count()
	time.Sleep(100 * time.Millisecond)
	if sink.count()-n > 5 {
		t.Fatalf("source still emitting after DEACTIVATE (+%d)", sink.count()-n)
	}
	_ = ctl.Send(Destination{Workers: []topology.WorkerID{1}}, control.Encode(control.KindActivate, nil))
	waitFor(t, 5*time.Second, func() bool { return sink.count() > n+100 })
}

func TestInputRateControl(t *testing.T) {
	net := NewChanNetwork()
	sink := &collector{}
	startWorker(t, Config{App: 1, ID: 2, Node: "sink"}, sink, net.Attach(2))
	startWorker(t, Config{
		App: 1, ID: 1, Node: "src", Source: true, RateLimit: 100,
		Routes: []topology.Route{dataRoute(2, topology.Shuffle)},
	}, &seqSource{}, net.Attach(1))

	time.Sleep(500 * time.Millisecond)
	got := sink.count()
	// 100/s for 0.5 s ≈ 50 tuples; allow generous slack plus burst.
	if got < 20 || got > 120 {
		t.Fatalf("rate-limited source delivered %d tuples in 500ms", got)
	}
}

func TestMetricRequestResponse(t *testing.T) {
	net := NewChanNetwork()
	sink := &collector{}
	startWorker(t, Config{App: 1, ID: 2, Node: "sink"}, sink, net.Attach(2))
	startWorker(t, Config{
		App: 1, ID: 1, Node: "src", Source: true,
		Routes: []topology.Route{dataRoute(2, topology.Shuffle)},
	}, &seqSource{limit: 50}, net.Attach(1))
	waitFor(t, 5*time.Second, func() bool { return sink.count() == 50 })

	ctl := net.Attach(99)
	_ = ctl.Send(Destination{Workers: []topology.WorkerID{1}},
		control.Encode(control.KindMetricReq, control.MetricReq{Token: 77}))
	select {
	case resp := <-net.Control:
		kind, err := control.DecodeKind(resp)
		if err != nil || kind != control.KindMetricResp {
			t.Fatalf("kind=%v err=%v", kind, err)
		}
		var mr control.MetricResp
		if err := control.DecodePayload(resp, &mr); err != nil {
			t.Fatal(err)
		}
		if mr.Token != 77 || mr.Worker != 1 || mr.Node != "src" || mr.Emitted < 50 {
			t.Fatalf("resp = %+v", mr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no METRIC_RESP")
	}
}

func TestSignalReachesApplicationLayer(t *testing.T) {
	net := NewChanNetwork()
	sink := &collector{}
	startWorker(t, Config{App: 1, ID: 2, Node: "sink"}, sink, net.Attach(2))
	ctl := net.Attach(99)
	_ = ctl.Send(Destination{Workers: []topology.WorkerID{2}}, control.Encode(control.KindSignal, nil))
	waitFor(t, 5*time.Second, func() bool {
		sink.mu.Lock()
		defer sink.mu.Unlock()
		return sink.signals == 1
	})
}

func TestBatchSizeControl(t *testing.T) {
	net := NewChanNetwork()
	tr := net.Attach(2)
	w := startWorker(t, Config{App: 1, ID: 2, Node: "sink"}, &collector{}, tr)
	ctl := net.Attach(99)
	_ = ctl.Send(Destination{Workers: []topology.WorkerID{2}},
		control.Encode(control.KindBatchSize, control.BatchSize{Size: 777}))
	// ChanTransport ignores batch size; this verifies the control path
	// doesn't crash and the worker stays healthy.
	time.Sleep(50 * time.Millisecond)
	if w.ExitErr() != nil {
		t.Fatal(w.ExitErr())
	}
}

func TestExecuteErrorCrashesWorker(t *testing.T) {
	net := NewChanNetwork()
	exited := make(chan error, 1)
	startWorker(t, Config{
		App: 1, ID: 2, Node: "sink",
		OnExit: func(_ topology.WorkerID, err error) { exited <- err },
	}, &faulty{after: 3}, net.Attach(2))
	startWorker(t, Config{
		App: 1, ID: 1, Node: "src", Source: true,
		Routes: []topology.Route{dataRoute(2, topology.Shuffle)},
	}, &seqSource{}, net.Attach(1))

	select {
	case err := <-exited:
		if err == nil {
			t.Fatal("expected failure")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker did not crash")
	}
}

func TestStreamSubscriptionFilter(t *testing.T) {
	net := NewChanNetwork()
	sink := &collector{}
	w := startWorker(t, Config{
		App: 1, ID: 2, Node: "sink",
		Subscriptions: []tuple.StreamID{5},
	}, sink, net.Attach(2))
	ctl := net.Attach(99)
	_ = ctl.Send(Destination{Workers: []topology.WorkerID{2}}, tuple.OnStream(5, tuple.Int(1)))
	_ = ctl.Send(Destination{Workers: []topology.WorkerID{2}}, tuple.OnStream(6, tuple.Int(2)))
	waitFor(t, 5*time.Second, func() bool { return sink.count() == 1 })
	waitFor(t, 5*time.Second, func() bool { return w.StatsSnapshot().Filtered == 1 })
}

// wireAckTopology builds src(1) -> mid(2) -> (terminal), with acker(3).
func wireAckTopology(t *testing.T, net *ChanNetwork, srcLimit int64) (*Worker, *terminal) {
	t.Helper()
	term := &terminal{}
	ackRoute := topology.Route{
		Edge:     topology.EdgeSpec{From: "*", To: "__acker", Policy: topology.Fields, HashFields: []int{1}, Stream: tuple.AckStream},
		NextHops: []topology.WorkerID{3},
	}
	completeRoute := topology.Route{
		Edge:     topology.EdgeSpec{From: "__acker", To: "src", Policy: topology.Direct, Stream: tuple.CompleteStream},
		NextHops: []topology.WorkerID{1},
	}
	startWorker(t, Config{
		App: 1, ID: 3, Node: "__acker", Acking: true,
		Subscriptions: []tuple.StreamID{tuple.AckStream},
		Routes:        []topology.Route{completeRoute},
	}, newTestAcker(), net.Attach(3))
	startWorker(t, Config{
		App: 1, ID: 2, Node: "mid", Acking: true,
		Routes: []topology.Route{ackRoute},
	}, term, net.Attach(2))
	src := startWorker(t, Config{
		App: 1, ID: 1, Node: "src", Source: true, Acking: true,
		AckTimeout: 300 * time.Millisecond,
		Routes:     []topology.Route{dataRoute(2, topology.Shuffle), ackRoute},
	}, &seqSource{limit: srcLimit}, net.Attach(1))
	return src, term
}

func TestGuaranteedProcessingCompletes(t *testing.T) {
	net := NewChanNetwork()
	src, term := wireAckTopology(t, net, 200)
	waitFor(t, 10*time.Second, func() bool { return src.StatsSnapshot().Completed == 200 })
	if term.seen.Load() != 200 {
		t.Fatalf("terminal saw %d", term.seen.Load())
	}
	if src.CompleteLatencies.Count() != 200 {
		t.Fatalf("latency samples = %d", src.CompleteLatencies.Count())
	}
	if src.StatsSnapshot().Replayed != 0 {
		t.Fatalf("unexpected replays: %d", src.StatsSnapshot().Replayed)
	}
}

func TestReplayWhenAckerUnreachable(t *testing.T) {
	net := NewChanNetwork()
	// Source tracks tuples but the acker route points to a nonexistent
	// worker, so completes never arrive and replays kick in.
	deadAck := topology.Route{
		Edge:     topology.EdgeSpec{From: "src", To: "__acker", Policy: topology.Fields, HashFields: []int{1}, Stream: tuple.AckStream},
		NextHops: []topology.WorkerID{42},
	}
	sink := &collector{}
	startWorker(t, Config{App: 1, ID: 2, Node: "sink"}, sink, net.Attach(2))
	src := startWorker(t, Config{
		App: 1, ID: 1, Node: "src", Source: true, Acking: true,
		AckTimeout: 100 * time.Millisecond, MaxPending: 10,
		Routes: []topology.Route{dataRoute(2, topology.Shuffle), deadAck},
	}, &seqSource{limit: 5}, net.Attach(1))

	waitFor(t, 10*time.Second, func() bool { return src.StatsSnapshot().Replayed >= 5 })
	// The sink receives originals plus replays.
	if sink.count() < 5 {
		t.Fatalf("sink got %d", sink.count())
	}
}

func TestMaxPendingBackpressure(t *testing.T) {
	net := NewChanNetwork()
	deadAck := topology.Route{
		Edge:     topology.EdgeSpec{From: "src", To: "__acker", Policy: topology.Fields, HashFields: []int{1}, Stream: tuple.AckStream},
		NextHops: []topology.WorkerID{42},
	}
	sink := &collector{}
	startWorker(t, Config{App: 1, ID: 2, Node: "sink"}, sink, net.Attach(2))
	startWorker(t, Config{
		App: 1, ID: 1, Node: "src", Source: true, Acking: true,
		AckTimeout: time.Hour, MaxPending: 7,
		Routes: []topology.Route{dataRoute(2, topology.Shuffle), deadAck},
	}, &seqSource{}, net.Attach(1))
	time.Sleep(200 * time.Millisecond)
	if got := sink.count(); got != 7 {
		t.Fatalf("pending cap not enforced: sink got %d, want 7", got)
	}
}

func TestWorkerRejectsWrongKind(t *testing.T) {
	net := NewChanNetwork()
	RegisterLogic("test/onlybolt", func() Component { return &collector{} })
	if _, err := New(Config{ID: 1, Node: "x", Logic: "test/onlybolt", Source: true}, net.Attach(1)); err == nil {
		t.Fatal("bolt as spout should fail")
	}
	if _, err := New(Config{ID: 1, Node: "x", Logic: "nope"}, net.Attach(2)); err == nil {
		t.Fatal("unknown logic should fail")
	}
}

func TestRegistry(t *testing.T) {
	RegisterLogic("test/registry-entry", func() Component { return &collector{} })
	found := false
	for _, n := range RegisteredLogic() {
		if n == "test/registry-entry" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered logic not listed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("empty registration should panic")
		}
	}()
	RegisterLogic("", nil)
}

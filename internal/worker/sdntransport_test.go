package worker

import (
	"testing"
	"time"

	"typhoon/internal/openflow"
	"typhoon/internal/packet"
	"typhoon/internal/switchfabric"
	"typhoon/internal/topology"
	"typhoon/internal/tuple"
)

// newSwitchPair wires src worker 1 and sink workers over one switch with
// unicast and broadcast rules installed.
func newSwitchEnv(t *testing.T, sinks int) (*switchfabric.Switch, *SDNTransport, []*SDNTransport) {
	t.Helper()
	sw := switchfabric.New("h1", 1, switchfabric.Options{RingCapacity: 4096})
	sw.Start()
	t.Cleanup(sw.Stop)

	srcAddr := packet.WorkerAddr(1, 1)
	srcPort, err := sw.AddPort("w1", srcAddr)
	if err != nil {
		t.Fatal(err)
	}
	srcTr := NewSDNTransport(1, 1, srcPort, SDNTransportConfig{BatchSize: 1})

	var sinkTrs []*SDNTransport
	var outs []openflow.Action
	for i := 0; i < sinks; i++ {
		id := topology.WorkerID(2 + i)
		addr := packet.WorkerAddr(1, uint32(id))
		p, err := sw.AddPort("w", addr)
		if err != nil {
			t.Fatal(err)
		}
		sinkTrs = append(sinkTrs, NewSDNTransport(1, id, p, SDNTransportConfig{BatchSize: 1}))
		outs = append(outs, openflow.Output(p.No()))
		// Unicast rule src -> sink.
		if err := sw.ApplyFlowMod(openflow.FlowMod{
			Command: openflow.FlowAdd, Priority: 100,
			Match: openflow.Match{
				Fields: openflow.FieldInPort | openflow.FieldDlDst | openflow.FieldEtherType,
				InPort: srcPort.No(), DlDst: addr, EtherType: packet.EtherType,
			},
			Actions: []openflow.Action{openflow.Output(p.No())},
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Broadcast rule src -> all sinks.
	if err := sw.ApplyFlowMod(openflow.FlowMod{
		Command: openflow.FlowAdd, Priority: 100,
		Match: openflow.Match{
			Fields: openflow.FieldInPort | openflow.FieldDlDst | openflow.FieldEtherType,
			InPort: srcPort.No(), DlDst: packet.Broadcast, EtherType: packet.EtherType,
		},
		Actions: outs,
	}); err != nil {
		t.Fatal(err)
	}
	return sw, srcTr, sinkTrs
}

func recvN(t *testing.T, tr *SDNTransport, n int) []tuple.Tuple {
	t.Helper()
	var out []tuple.Tuple
	deadline := time.Now().Add(5 * time.Second)
	for len(out) < n {
		if time.Now().After(deadline) {
			t.Fatalf("received %d of %d", len(out), n)
		}
		got, err := tr.Recv(64, 100*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, got...)
	}
	return out
}

func TestSDNTransportUnicast(t *testing.T) {
	_, src, sinks := newSwitchEnv(t, 1)
	for i := 0; i < 50; i++ {
		err := src.Send(Destination{Workers: []topology.WorkerID{2}}, tuple.New(tuple.Int(int64(i))))
		if err != nil {
			t.Fatal(err)
		}
	}
	_ = src.Flush()
	got := recvN(t, sinks[0], 50)
	for i, tp := range got {
		if tp.Field(0).AsInt() != int64(i) {
			t.Fatalf("got[%d] = %v (order broken)", i, tp)
		}
	}
}

func TestSDNTransportBroadcastSingleSerialization(t *testing.T) {
	_, src, sinks := newSwitchEnv(t, 4)
	const n = 20
	for i := 0; i < n; i++ {
		err := src.Send(Destination{
			Workers:   []topology.WorkerID{2, 3, 4, 5},
			Broadcast: true,
		}, tuple.New(tuple.String("fanout"), tuple.Int(int64(i))))
		if err != nil {
			t.Fatal(err)
		}
	}
	_ = src.Flush()
	for _, sink := range sinks {
		recvN(t, sink, n)
	}
	s := src.Stats()
	if s.Serializations != n {
		t.Fatalf("serializations = %d, want %d (one per tuple regardless of fan-out)", s.Serializations, n)
	}
	if s.FramesSent != n {
		t.Fatalf("frames = %d, want %d (switch replicates)", s.FramesSent, n)
	}
}

func TestSDNTransportBatching(t *testing.T) {
	_, src, sinks := newSwitchEnv(t, 1)
	src.SetBatchSize(10)
	if src.BatchSize() != 10 {
		t.Fatal("batch size not applied")
	}
	for i := 0; i < 9; i++ {
		_ = src.Send(Destination{Workers: []topology.WorkerID{2}}, tuple.New(tuple.Int(int64(i))))
	}
	// Below the batch threshold nothing should be on the wire yet.
	if got, _ := sinks[0].Recv(64, 50*time.Millisecond); len(got) != 0 {
		t.Fatalf("premature flush: %d tuples", len(got))
	}
	_ = src.Send(Destination{Workers: []topology.WorkerID{2}}, tuple.New(tuple.Int(9)))
	recvN(t, sinks[0], 10)
}

func TestSDNTransportControlPath(t *testing.T) {
	sw, src, _ := newSwitchEnv(t, 1)
	srcPort := sw.Port(1)
	// Install the worker→controller rule of Table 3.
	if err := sw.ApplyFlowMod(openflow.FlowMod{
		Command: openflow.FlowAdd, Priority: 200,
		Match: openflow.Match{
			Fields: openflow.FieldInPort | openflow.FieldDlDst | openflow.FieldEtherType,
			InPort: srcPort.No(), DlDst: packet.ControllerAddr, EtherType: packet.EtherType,
		},
		Actions: []openflow.Action{openflow.Output(openflow.PortController)},
	}); err != nil {
		t.Fatal(err)
	}
	sink := &recordingSink{packetIn: make(chan []byte, 4)}
	sw.SetController(sink)
	if err := src.SendControl(tuple.OnStream(tuple.ControlStream, tuple.String("METRIC_RESP"))); err != nil {
		t.Fatal(err)
	}
	select {
	case data := <-sink.packetIn:
		f, err := packet.Decode(data)
		if err != nil || !f.Dst.IsController() {
			t.Fatalf("frame: %+v err=%v", f, err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no PacketIn at controller")
	}
}

type recordingSink struct{ packetIn chan []byte }

func (r *recordingSink) PacketIn(m openflow.PacketIn) {
	select {
	case r.packetIn <- m.Data:
	default:
	}
}
func (r *recordingSink) PortStatus(openflow.PortStatus)   {}
func (r *recordingSink) FlowRemoved(openflow.FlowRemoved) {}

func TestSDNTransportLargeTupleSegmentation(t *testing.T) {
	_, src, sinks := newSwitchEnv(t, 1)
	big := make([]byte, 3*packet.DefaultMaxPayload)
	for i := range big {
		big[i] = byte(i)
	}
	if err := src.Send(Destination{Workers: []topology.WorkerID{2}}, tuple.New(tuple.Bytes(big))); err != nil {
		t.Fatal(err)
	}
	_ = src.Flush()
	got := recvN(t, sinks[0], 1)
	if b := got[0].Field(0).AsBytes(); len(b) != len(big) || b[1234] != big[1234] {
		t.Fatal("segmented tuple mangled")
	}
	if src.Stats().FramesSent < 3 {
		t.Fatalf("frames = %d, want >= 3", src.Stats().FramesSent)
	}
}

func TestSDNTransportClosedPort(t *testing.T) {
	sw, src, _ := newSwitchEnv(t, 1)
	if err := sw.RemovePort(1); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Recv(1, 50*time.Millisecond); err == nil {
		t.Fatal("Recv on removed port should fail")
	}
	if src.InQueueLen() != 0 {
		t.Fatal("queue should be empty")
	}
}

func TestWorkerOverSDNTransport(t *testing.T) {
	// End-to-end: real workers over a real switch.
	_, srcTr, sinkTrs := newSwitchEnv(t, 1)
	sink := &collector{}
	startWorker(t, Config{App: 1, ID: 2, Node: "sink"}, sink, sinkTrs[0])
	startWorker(t, Config{
		App: 1, ID: 1, Node: "src", Source: true, BatchSize: 10,
		Routes: []topology.Route{dataRoute(2, topology.Shuffle)},
	}, &seqSource{limit: 500}, srcTr)
	waitFor(t, 10*time.Second, func() bool { return sink.count() == 500 })
}

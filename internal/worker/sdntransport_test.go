package worker

import (
	"testing"
	"time"

	"typhoon/internal/control"
	"typhoon/internal/openflow"
	"typhoon/internal/packet"
	"typhoon/internal/switchfabric"
	"typhoon/internal/topology"
	"typhoon/internal/tuple"
)

// newSwitchPair wires src worker 1 and sink workers over one switch with
// unicast and broadcast rules installed.
func newSwitchEnv(t *testing.T, sinks int) (*switchfabric.Switch, *SDNTransport, []*SDNTransport) {
	t.Helper()
	sw := switchfabric.New("h1", 1, switchfabric.Options{RingCapacity: 4096})
	sw.Start()
	t.Cleanup(sw.Stop)

	srcAddr := packet.WorkerAddr(1, 1)
	srcPort, err := sw.AddPort("w1", srcAddr)
	if err != nil {
		t.Fatal(err)
	}
	srcTr := NewSDNTransport(1, 1, srcPort, SDNTransportConfig{BatchSize: 1})

	var sinkTrs []*SDNTransport
	var outs []openflow.Action
	for i := 0; i < sinks; i++ {
		id := topology.WorkerID(2 + i)
		addr := packet.WorkerAddr(1, uint32(id))
		p, err := sw.AddPort("w", addr)
		if err != nil {
			t.Fatal(err)
		}
		sinkTrs = append(sinkTrs, NewSDNTransport(1, id, p, SDNTransportConfig{BatchSize: 1}))
		outs = append(outs, openflow.Output(p.No()))
		// Unicast rule src -> sink.
		if err := sw.ApplyFlowMod(openflow.FlowMod{
			Command: openflow.FlowAdd, Priority: 100,
			Match: openflow.Match{
				Fields: openflow.FieldInPort | openflow.FieldDlDst | openflow.FieldEtherType,
				InPort: srcPort.No(), DlDst: addr, EtherType: packet.EtherType,
			},
			Actions: []openflow.Action{openflow.Output(p.No())},
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Broadcast rule src -> all sinks.
	if err := sw.ApplyFlowMod(openflow.FlowMod{
		Command: openflow.FlowAdd, Priority: 100,
		Match: openflow.Match{
			Fields: openflow.FieldInPort | openflow.FieldDlDst | openflow.FieldEtherType,
			InPort: srcPort.No(), DlDst: packet.Broadcast, EtherType: packet.EtherType,
		},
		Actions: outs,
	}); err != nil {
		t.Fatal(err)
	}
	return sw, srcTr, sinkTrs
}

func recvN(t *testing.T, tr *SDNTransport, n int) []tuple.Tuple {
	t.Helper()
	var out []tuple.Tuple
	deadline := time.Now().Add(5 * time.Second)
	for len(out) < n {
		if time.Now().After(deadline) {
			t.Fatalf("received %d of %d", len(out), n)
		}
		got, err := tr.Recv(64, 100*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, got...)
	}
	return out
}

func TestSDNTransportUnicast(t *testing.T) {
	_, src, sinks := newSwitchEnv(t, 1)
	for i := 0; i < 50; i++ {
		err := src.Send(Destination{Workers: []topology.WorkerID{2}}, tuple.New(tuple.Int(int64(i))))
		if err != nil {
			t.Fatal(err)
		}
	}
	_ = src.Flush()
	got := recvN(t, sinks[0], 50)
	for i, tp := range got {
		if tp.Field(0).AsInt() != int64(i) {
			t.Fatalf("got[%d] = %v (order broken)", i, tp)
		}
	}
}

func TestSDNTransportBroadcastSingleSerialization(t *testing.T) {
	_, src, sinks := newSwitchEnv(t, 4)
	const n = 20
	for i := 0; i < n; i++ {
		err := src.Send(Destination{
			Workers:   []topology.WorkerID{2, 3, 4, 5},
			Broadcast: true,
		}, tuple.New(tuple.String("fanout"), tuple.Int(int64(i))))
		if err != nil {
			t.Fatal(err)
		}
	}
	_ = src.Flush()
	for _, sink := range sinks {
		recvN(t, sink, n)
	}
	s := src.Stats()
	if s.Serializations != n {
		t.Fatalf("serializations = %d, want %d (one per tuple regardless of fan-out)", s.Serializations, n)
	}
	if s.FramesSent != n {
		t.Fatalf("frames = %d, want %d (switch replicates)", s.FramesSent, n)
	}
}

func TestSDNTransportBatching(t *testing.T) {
	_, src, sinks := newSwitchEnv(t, 1)
	src.SetBatchSize(10)
	src.SetFlushDeadline(-1) // threshold-only semantics under test
	if src.BatchSize() != 10 {
		t.Fatal("batch size not applied")
	}
	for i := 0; i < 9; i++ {
		_ = src.Send(Destination{Workers: []topology.WorkerID{2}}, tuple.New(tuple.Int(int64(i))))
	}
	// Below the batch threshold nothing should be on the wire yet.
	if got, _ := sinks[0].Recv(64, 50*time.Millisecond); len(got) != 0 {
		t.Fatalf("premature flush: %d tuples", len(got))
	}
	_ = src.Send(Destination{Workers: []topology.WorkerID{2}}, tuple.New(tuple.Int(9)))
	recvN(t, sinks[0], 10)
}

// TestSDNTransportFlushDeadline pins the bounded staging wait: tuples that
// never reach the batch threshold must still flush once the deadline
// expires, driven by the Recv calls the worker loop makes every iteration.
func TestSDNTransportFlushDeadline(t *testing.T) {
	_, src, sinks := newSwitchEnv(t, 1)
	src.SetBatchSize(1000) // threshold unreachable in this test
	src.SetFlushDeadline(5 * time.Millisecond)
	if got := src.FlushDeadline(); got != 5*time.Millisecond {
		t.Fatalf("FlushDeadline = %v, want 5ms", got)
	}
	for i := 0; i < 3; i++ {
		if err := src.Send(Destination{Workers: []topology.WorkerID{2}}, tuple.New(tuple.Int(int64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	// No explicit Flush: drive the source's loop the way Worker.run does
	// (Recv every iteration) and wait for the deadline to push the batch out.
	got := 0
	deadline := time.Now().Add(5 * time.Second)
	for got < 3 && time.Now().Before(deadline) {
		if _, err := src.Recv(16, 0); err != nil {
			t.Fatal(err)
		}
		out, err := sinks[0].Recv(64, 5*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		got += len(out)
	}
	if got != 3 {
		t.Fatalf("deadline flush delivered %d of 3 tuples", got)
	}
	// Negative disables; zero is the wire-format "unchanged" and is ignored.
	src.SetFlushDeadline(-1)
	if src.FlushDeadline() != 0 {
		t.Fatal("negative deadline should disable")
	}
	src.SetFlushDeadline(0)
	if src.FlushDeadline() != 0 {
		t.Fatal("zero deadline should be ignored")
	}
}

// TestSDNTransportReconfigureFlushDeadline checks the BATCH_SIZE control
// tuple's deadline field reaches the transport without disturbing the batch
// threshold when Size is zero.
func TestSDNTransportReconfigureFlushDeadline(t *testing.T) {
	_, src, _ := newSwitchEnv(t, 1)
	src.SetBatchSize(42)
	in := control.Encode(control.KindBatchSize, control.BatchSize{FlushDeadline: 3 * time.Millisecond})
	if err := src.Reconfigure(in); err != nil {
		t.Fatal(err)
	}
	if got := src.FlushDeadline(); got != 3*time.Millisecond {
		t.Fatalf("FlushDeadline = %v, want 3ms", got)
	}
	if src.BatchSize() != 42 {
		t.Fatalf("BatchSize = %d, want 42 (Size 0 means unchanged)", src.BatchSize())
	}
}

// TestSDNTransportRecvReusesSlice pins the zero-alloc delivery contract:
// consecutive Recv calls hand out windows of the transport's reusable decode
// buffer, while the tuples themselves stay valid after later refills.
func TestSDNTransportRecvReusesSlice(t *testing.T) {
	_, src, sinks := newSwitchEnv(t, 1)
	src.SetBatchSize(100)
	send := func(base int) {
		for i := 0; i < 10; i++ {
			err := src.Send(Destination{Workers: []topology.WorkerID{2}},
				tuple.New(tuple.String("retained-payload"), tuple.Int(int64(base+i))))
			if err != nil {
				t.Fatal(err)
			}
		}
		_ = src.Flush()
	}
	send(0)
	out1, err := sinks[0].Recv(5, time.Second)
	if err != nil || len(out1) != 5 {
		t.Fatalf("first Recv: %d tuples, err %v", len(out1), err)
	}
	out2, err := sinks[0].Recv(5, time.Second)
	if err != nil || len(out2) != 5 {
		t.Fatalf("second Recv: %d tuples, err %v", len(out2), err)
	}
	if cap(out1) < 6 || &out1[:6][5] != &out2[0] {
		t.Fatal("Recv did not hand out windows of one reusable buffer")
	}
	// Retain the first batch's strings across a refill: arena ownership
	// transfer means later decodes must never scribble over them.
	retained := make([]string, 0, 10)
	for _, tp := range append(append([]tuple.Tuple{}, out1...), out2...) {
		retained = append(retained, tp.Field(0).AsString())
	}
	send(10)
	out3 := recvN(t, sinks[0], 10)
	if out3[0].Field(1).AsInt() != 10 {
		t.Fatalf("refill starts at %d, want 10", out3[0].Field(1).AsInt())
	}
	for i, s := range retained {
		if s != "retained-payload" {
			t.Fatalf("retained[%d] corrupted after refill: %q", i, s)
		}
	}
}

// TestSDNTransportMaxSizeTupleStraddle covers a tuple whose encoding exactly
// fills one frame arriving while smaller tuples are staged: the staged frame
// must flush first (preserving order) and the max-size tuple must ride alone
// without being segmented.
func TestSDNTransportMaxSizeTupleStraddle(t *testing.T) {
	const maxPayload = 256
	sw := switchfabric.New("h1", 1, switchfabric.Options{RingCapacity: 4096})
	sw.Start()
	t.Cleanup(sw.Stop)
	srcAddr, dstAddr := packet.WorkerAddr(1, 1), packet.WorkerAddr(1, 2)
	srcPort, err := sw.AddPort("w1", srcAddr)
	if err != nil {
		t.Fatal(err)
	}
	dstPort, err := sw.AddPort("w2", dstAddr)
	if err != nil {
		t.Fatal(err)
	}
	src := NewSDNTransport(1, 1, srcPort, SDNTransportConfig{BatchSize: 1000, MaxPayload: maxPayload})
	sink := NewSDNTransport(1, 2, dstPort, SDNTransportConfig{BatchSize: 1})
	if err := sw.ApplyFlowMod(openflow.FlowMod{
		Command: openflow.FlowAdd, Priority: 100,
		Match: openflow.Match{
			Fields: openflow.FieldInPort | openflow.FieldDlDst | openflow.FieldEtherType,
			InPort: srcPort.No(), DlDst: dstAddr, EtherType: packet.EtherType,
		},
		Actions: []openflow.Action{openflow.Output(dstPort.No())},
	}); err != nil {
		t.Fatal(err)
	}
	d := Destination{Workers: []topology.WorkerID{2}}
	// Size the big tuple so its length-prefixed record is exactly maxPayload.
	overhead := len(tuple.Encode(tuple.New(tuple.Int(0), tuple.Bytes(nil))))
	pad := make([]byte, maxPayload-4-overhead)
	big := tuple.New(tuple.Int(3), tuple.Bytes(pad))
	if n := len(tuple.Encode(big)) + 4; n != maxPayload {
		t.Fatalf("big tuple record is %d bytes, want exactly %d", n, maxPayload)
	}
	for i := 0; i < 3; i++ {
		_ = src.Send(d, tuple.New(tuple.Int(int64(i)), tuple.Bytes(nil)))
	}
	if err := src.Send(d, big); err != nil {
		t.Fatal(err)
	}
	for i := 4; i < 6; i++ {
		_ = src.Send(d, tuple.New(tuple.Int(int64(i)), tuple.Bytes(nil)))
	}
	_ = src.Flush()
	got := recvN(t, sink, 6)
	for i, tp := range got {
		if tp.Field(0).AsInt() != int64(i) {
			t.Fatalf("got[%d] seq %d: straddling flush broke order", i, tp.Field(0).AsInt())
		}
	}
	if len(got[3].Field(1).AsBytes()) != len(pad) {
		t.Fatal("max-size tuple payload mangled")
	}
	// Frame 1: the three staged smalls, flushed to make room. Frame 2: the
	// max-size tuple alone. Frame 3: the trailing smalls. No segmentation.
	if f := src.Stats().FramesSent; f != 3 {
		t.Fatalf("frames sent = %d, want 3 (staged flush + full frame + tail)", f)
	}
}

func TestSDNTransportControlPath(t *testing.T) {
	sw, src, _ := newSwitchEnv(t, 1)
	srcPort := sw.Port(1)
	// Install the worker→controller rule of Table 3.
	if err := sw.ApplyFlowMod(openflow.FlowMod{
		Command: openflow.FlowAdd, Priority: 200,
		Match: openflow.Match{
			Fields: openflow.FieldInPort | openflow.FieldDlDst | openflow.FieldEtherType,
			InPort: srcPort.No(), DlDst: packet.ControllerAddr, EtherType: packet.EtherType,
		},
		Actions: []openflow.Action{openflow.Output(openflow.PortController)},
	}); err != nil {
		t.Fatal(err)
	}
	sink := &recordingSink{packetIn: make(chan []byte, 4)}
	sw.SetController(sink)
	if err := src.SendControl(tuple.OnStream(tuple.ControlStream, tuple.String("METRIC_RESP"))); err != nil {
		t.Fatal(err)
	}
	select {
	case data := <-sink.packetIn:
		f, err := packet.Decode(data)
		if err != nil || !f.Dst.IsController() {
			t.Fatalf("frame: %+v err=%v", f, err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no PacketIn at controller")
	}
}

type recordingSink struct{ packetIn chan []byte }

func (r *recordingSink) PacketIn(m openflow.PacketIn) {
	select {
	case r.packetIn <- m.Data:
	default:
	}
}
func (r *recordingSink) PortStatus(openflow.PortStatus)   {}
func (r *recordingSink) FlowRemoved(openflow.FlowRemoved) {}

func TestSDNTransportLargeTupleSegmentation(t *testing.T) {
	_, src, sinks := newSwitchEnv(t, 1)
	big := make([]byte, 3*packet.DefaultMaxPayload)
	for i := range big {
		big[i] = byte(i)
	}
	if err := src.Send(Destination{Workers: []topology.WorkerID{2}}, tuple.New(tuple.Bytes(big))); err != nil {
		t.Fatal(err)
	}
	_ = src.Flush()
	got := recvN(t, sinks[0], 1)
	if b := got[0].Field(0).AsBytes(); len(b) != len(big) || b[1234] != big[1234] {
		t.Fatal("segmented tuple mangled")
	}
	if src.Stats().FramesSent < 3 {
		t.Fatalf("frames = %d, want >= 3", src.Stats().FramesSent)
	}
}

func TestSDNTransportClosedPort(t *testing.T) {
	sw, src, _ := newSwitchEnv(t, 1)
	if err := sw.RemovePort(1); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Recv(1, 50*time.Millisecond); err == nil {
		t.Fatal("Recv on removed port should fail")
	}
	if src.InQueueLen() != 0 {
		t.Fatal("queue should be empty")
	}
}

func TestWorkerOverSDNTransport(t *testing.T) {
	// End-to-end: real workers over a real switch.
	_, srcTr, sinkTrs := newSwitchEnv(t, 1)
	sink := &collector{}
	startWorker(t, Config{App: 1, ID: 2, Node: "sink"}, sink, sinkTrs[0])
	startWorker(t, Config{
		App: 1, ID: 1, Node: "src", Source: true, BatchSize: 10,
		Routes: []topology.Route{dataRoute(2, topology.Shuffle)},
	}, &seqSource{limit: 500}, srcTr)
	waitFor(t, 10*time.Second, func() bool { return sink.count() == 500 })
}

package worker

import (
	"sync/atomic"
	"time"

	"typhoon/internal/clock"
	"typhoon/internal/control"
	"typhoon/internal/packet"
	"typhoon/internal/switchfabric"
	"typhoon/internal/topology"
	"typhoon/internal/tuple"
)

// SDNTransport is the Typhoon I/O layer of §3.3.1: it converts tuples to
// custom Ethernet frames and exchanges them with the host's software SDN
// switch through ring-buffer ports.
//
// The decisive property for one-to-many routing (Fig 9) is implemented
// here: a broadcast destination costs exactly one serialization and one
// frame regardless of fan-out, because replication happens in the switch.
type SDNTransport struct {
	app  uint16
	self topology.WorkerID
	port *switchfabric.Port

	pktz  *packet.Packetizer
	dpktz *packet.Depacketizer

	batch      atomic.Int64
	sinceFlush int

	// encScratch and rxBatch are per-transport reusable buffers for the
	// zero-alloc fast path. Send/Recv run on the worker goroutine only.
	encScratch []byte
	rxBatch    [][]byte

	// inQueue holds decoded tuples not yet handed to the worker. Only the
	// worker goroutine touches the slice; inLen mirrors its length so
	// InQueueLen can be read from other goroutines (stats, auto-scaler).
	inQueue []tuple.Tuple
	inLen   atomic.Int64

	sampler FrameSampler
	sink    func(packet.TraceAnnex)

	tuplesSent     atomic.Uint64
	serializations atomic.Uint64
	framesSent     atomic.Uint64
	dropped        atomic.Uint64
	tuplesReceived atomic.Uint64
	closed         atomic.Bool
}

// FrameSampler decides which emitted frames carry a tuple-path trace annex
// and allocates trace IDs. *observe.Sampler satisfies it; the indirection
// keeps the worker package free of an observe dependency.
type FrameSampler interface {
	// Sample reports whether the next frame should be traced and, if so,
	// returns its trace ID.
	Sample() (uint64, bool)
}

// SDNTransportConfig tunes an SDNTransport.
type SDNTransportConfig struct {
	// BatchSize is the number of tuples accumulated before frames are
	// flushed to the switch (the configurable batching knob of Fig 8).
	BatchSize int
	// MaxPayload caps frame payload size.
	MaxPayload int
	// Sampler, when set, selects emitted frames to carry a trace annex.
	Sampler FrameSampler
	// TraceSink, when set, receives completed trace annexes extracted from
	// frames this transport dequeues.
	TraceSink func(packet.TraceAnnex)
}

// DefaultBatchSize matches the batch size used by most of the paper's SDN
// control-plane experiments (§6.2).
const DefaultBatchSize = 100

// NewSDNTransport attaches a transport for worker self to a switch port.
func NewSDNTransport(app uint16, self topology.WorkerID, port *switchfabric.Port, cfg SDNTransportConfig) *SDNTransport {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	t := &SDNTransport{
		app:     app,
		self:    self,
		port:    port,
		pktz:    packet.NewPacketizer(packet.WorkerAddr(app, uint32(self)), cfg.MaxPayload),
		dpktz:   packet.NewDepacketizer(),
		sampler: cfg.Sampler,
		sink:    cfg.TraceSink,
	}
	t.batch.Store(int64(cfg.BatchSize))
	return t
}

// Addr returns this worker's data-plane address.
func (t *SDNTransport) Addr() packet.Addr { return packet.WorkerAddr(t.app, uint32(t.self)) }

// Send implements Transport. The tuple is serialized exactly once; unicast
// fan-out reuses the encoded bytes per destination frame, and broadcast
// emits a single frame the switch replicates.
func (t *SDNTransport) Send(d Destination, in tuple.Tuple) error {
	// The packetizer copies enc into its staging buffer, so the encode
	// scratch is safe to reuse on the next Send.
	t.encScratch = tuple.AppendEncode(t.encScratch[:0], in)
	enc := t.encScratch
	t.serializations.Add(1)
	switch {
	case d.Broadcast, d.SDNBalanced:
		t.writeFrames(t.pktz.Add(packet.Broadcast, enc))
		t.tuplesSent.Add(1)
	default:
		for _, id := range d.Workers {
			t.writeFrames(t.pktz.Add(packet.WorkerAddr(t.app, uint32(id)), enc))
			t.tuplesSent.Add(1)
		}
	}
	t.sinceFlush++
	if int64(t.sinceFlush) >= t.batch.Load() {
		return t.Flush()
	}
	return nil
}

// SendControl implements Transport: the tuple is addressed to the
// controller pseudo-address and flushed immediately (statistics replies
// should not sit in a batch).
func (t *SDNTransport) SendControl(in tuple.Tuple) error {
	t.encScratch = tuple.AppendEncode(t.encScratch[:0], in)
	enc := t.encScratch
	t.serializations.Add(1)
	t.writeFrames(t.pktz.Add(packet.ControllerAddr, enc))
	t.tuplesSent.Add(1)
	return t.Flush()
}

// Flush implements Transport.
func (t *SDNTransport) Flush() error {
	t.sinceFlush = 0
	t.writeFrames(t.pktz.FlushAll())
	return nil
}

// writeFrameWait bounds the backpressure a full switch ingress ring exerts
// on a sender before the frame is dropped (the loss mode §8 discusses). It
// matches the worst-case stall of the spin-retry loop it replaced, but
// blocks on the ring's channel instead of burning CPU in a sleep-poll loop,
// and counts exactly one ring drop per abandoned frame.
const writeFrameWait = 10 * time.Millisecond

// writeFrames pushes frames into the switch ingress ring with bounded
// blocking backpressure (modelling the DPDK TX ring).
func (t *SDNTransport) writeFrames(frames [][]byte) {
	for _, f := range frames {
		if t.sampler != nil {
			if id, ok := t.sampler.Sample(); ok {
				traced := packet.WithTrace(f, packet.TraceAnnex{ID: id, Hops: []packet.TraceHop{{
					Kind: packet.HopEmit, Actor: uint64(t.self), Detail: uint32(t.app),
					At: clock.CoarseUnixNano(),
				}}})
				packet.PutFrameBuf(f) // WithTrace copied; recycle the original
				f = traced
			}
		}
		if err := t.port.WriteFrameTimeout(f, writeFrameWait); err != nil {
			t.dropped.Add(1)
			packet.PutFrameBuf(f) // never entered the ring; still solely ours
			continue
		}
		t.framesSent.Add(1)
	}
}

// Recv implements Transport: frames are read from the switch in batches,
// depacketized, and deserialized into tuples.
func (t *SDNTransport) Recv(max int, wait time.Duration) ([]tuple.Tuple, error) {
	if max <= 0 {
		max = 256
	}
	if len(t.inQueue) == 0 {
		frames, err := t.port.ReadBatch(t.rxBatch[:0], max, wait)
		if err != nil {
			return nil, errTransportClosed
		}
		t.rxBatch = frames
		for _, fr := range frames {
			if t.sink != nil && packet.Traced(fr) {
				done := packet.AppendTraceHop(fr, packet.TraceHop{
					Kind: packet.HopDequeue, Actor: uint64(t.self), Detail: uint32(t.app),
					At: clock.CoarseUnixNano(),
				})
				if annex, ok := packet.ExtractTrace(done); ok {
					t.sink(annex)
				}
			}
			ins, err := t.dpktz.Feed(fr)
			if err != nil {
				t.dropped.Add(1)
				packet.PutFrameBuf(fr)
				continue
			}
			for _, in := range ins {
				tp, _, err := tuple.Decode(in.Data)
				if err != nil {
					t.dropped.Add(1)
					continue
				}
				t.inQueue = append(t.inQueue, tp)
			}
			// The unique-ownership protocol makes this transport the sole
			// owner of every frame it dequeues, and tuple.Decode copied all
			// values out, so the buffer can re-enter the pool here.
			packet.PutFrameBuf(fr)
		}
		t.inLen.Store(int64(len(t.inQueue)))
	}
	n := len(t.inQueue)
	if n == 0 {
		return nil, nil
	}
	if n > max {
		n = max
	}
	out := make([]tuple.Tuple, n)
	copy(out, t.inQueue[:n])
	t.inQueue = t.inQueue[n:]
	t.inLen.Store(int64(len(t.inQueue)))
	t.tuplesReceived.Add(uint64(n))
	return out, nil
}

// Reconfigure implements Transport: BATCH_SIZE tuples adjust the egress
// batch threshold; other kinds are ignored.
func (t *SDNTransport) Reconfigure(in tuple.Tuple) error {
	kind, err := control.DecodeKind(in)
	if err != nil || kind != control.KindBatchSize {
		return nil
	}
	var b control.BatchSize
	if err := control.DecodePayload(in, &b); err != nil {
		return err
	}
	t.SetBatchSize(b.Size)
	return nil
}

// SetBatchSize adjusts the egress batch threshold directly (the
// Reconfigure path decodes BATCH_SIZE tuples into this).
func (t *SDNTransport) SetBatchSize(n int) {
	if n > 0 {
		t.batch.Store(int64(n))
	}
}

// BatchSize returns the current batch threshold.
func (t *SDNTransport) BatchSize() int { return int(t.batch.Load()) }

// InQueueLen implements Transport: decoded tuples awaiting dispatch plus
// frames queued in the switch port.
func (t *SDNTransport) InQueueLen() int { return int(t.inLen.Load()) + t.port.QueueLen() }

// Stats implements Transport.
func (t *SDNTransport) Stats() TransportStats {
	return TransportStats{
		TuplesSent:     t.tuplesSent.Load(),
		Serializations: t.serializations.Load(),
		FramesSent:     t.framesSent.Load(),
		Dropped:        t.dropped.Load(),
		TuplesReceived: t.tuplesReceived.Load(),
	}
}

// Close implements Transport. The switch port itself is owned by the
// worker agent, which removes it (triggering the PortStatus event).
func (t *SDNTransport) Close() error {
	t.closed.Store(true)
	return nil
}

var _ Transport = (*SDNTransport)(nil)
var _ Transport = (*ChanTransport)(nil)

package worker

import (
	"sync/atomic"
	"time"

	"typhoon/internal/clock"
	"typhoon/internal/control"
	"typhoon/internal/packet"
	"typhoon/internal/switchfabric"
	"typhoon/internal/topology"
	"typhoon/internal/tuple"
)

// SDNTransport is the Typhoon I/O layer of §3.3.1: it converts tuples to
// custom Ethernet frames and exchanges them with the host's software SDN
// switch through ring-buffer ports.
//
// The decisive property for one-to-many routing (Fig 9) is implemented
// here: a broadcast destination costs exactly one serialization and one
// frame regardless of fan-out, because replication happens in the switch.
type SDNTransport struct {
	app  uint16
	self topology.WorkerID
	port *switchfabric.Port

	pktz  *packet.Packetizer
	dpktz *packet.Depacketizer

	batch      atomic.Int64
	sinceFlush int

	// flushDeadline bounds how long staged tuples may wait for the batch
	// threshold (nanoseconds; 0 disables). stagedAt is the coarse-clock
	// stamp of the oldest tuple staged since the last flush, touched only
	// by the worker goroutine; the deadline itself is atomic so control
	// tuples can retune it live.
	flushDeadline atomic.Int64
	stagedAt      int64

	// encScratch and rxBatch are per-transport reusable buffers for the
	// zero-alloc fast path. Send/Recv run on the worker goroutine only.
	encScratch []byte
	rxBatch    [][]byte

	// arena supplies the receive path's tuple storage (values + string
	// bytes); ownership of decoded regions transfers to the tuples, so
	// retained tuples stay valid forever while steady-state decode costs
	// ~0 allocations per tuple.
	arena tuple.Arena

	// inBuf is the reusable decode buffer; inQueue is its not-yet-delivered
	// window. Recv hands out sub-slices of inBuf directly (valid until the
	// next Recv), so delivery itself allocates nothing. Only the worker
	// goroutine touches the slices; inLen mirrors the queue length so
	// InQueueLen can be read from other goroutines (stats, auto-scaler).
	inBuf   []tuple.Tuple
	inQueue []tuple.Tuple
	inLen   atomic.Int64

	sampler FrameSampler
	sink    func(packet.TraceAnnex)

	tuplesSent     atomic.Uint64
	serializations atomic.Uint64
	framesSent     atomic.Uint64
	dropped        atomic.Uint64
	tuplesReceived atomic.Uint64
	closed         atomic.Bool
}

// FrameSampler decides which emitted frames carry a tuple-path trace annex
// and allocates trace IDs. *observe.Sampler satisfies it; the indirection
// keeps the worker package free of an observe dependency.
type FrameSampler interface {
	// Sample reports whether the next frame should be traced and, if so,
	// returns its trace ID.
	Sample() (uint64, bool)
}

// SDNTransportConfig tunes an SDNTransport.
type SDNTransportConfig struct {
	// BatchSize is the number of tuples accumulated before frames are
	// flushed to the switch (the configurable batching knob of Fig 8).
	BatchSize int
	// FlushDeadline bounds how long staged tuples may wait for the batch
	// threshold, so latency stays capped when the offered rate is low.
	// Zero selects DefaultFlushDeadline; negative disables the deadline
	// (flushes then happen only on the threshold and explicit Flush).
	FlushDeadline time.Duration
	// MaxPayload caps frame payload size.
	MaxPayload int
	// Sampler, when set, selects emitted frames to carry a trace annex.
	Sampler FrameSampler
	// TraceSink, when set, receives completed trace annexes extracted from
	// frames this transport dequeues.
	TraceSink func(packet.TraceAnnex)
}

// DefaultBatchSize matches the batch size used by most of the paper's SDN
// control-plane experiments (§6.2).
const DefaultBatchSize = 100

// DefaultFlushDeadline is the default bound on how long a staged tuple may
// wait for its batch to fill. It matches the worker loop's default flush
// interval and is comfortably above the coarse clock's 500µs granularity.
const DefaultFlushDeadline = time.Millisecond

// NewSDNTransport attaches a transport for worker self to a switch port.
func NewSDNTransport(app uint16, self topology.WorkerID, port *switchfabric.Port, cfg SDNTransportConfig) *SDNTransport {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	t := &SDNTransport{
		app:     app,
		self:    self,
		port:    port,
		pktz:    packet.NewPacketizer(packet.WorkerAddr(app, uint32(self)), cfg.MaxPayload),
		dpktz:   packet.NewDepacketizer(),
		sampler: cfg.Sampler,
		sink:    cfg.TraceSink,
	}
	t.batch.Store(int64(cfg.BatchSize))
	switch {
	case cfg.FlushDeadline == 0:
		t.flushDeadline.Store(int64(DefaultFlushDeadline))
	case cfg.FlushDeadline > 0:
		t.flushDeadline.Store(int64(cfg.FlushDeadline))
	}
	return t
}

// Addr returns this worker's data-plane address.
func (t *SDNTransport) Addr() packet.Addr { return packet.WorkerAddr(t.app, uint32(t.self)) }

// Send implements Transport. The tuple is serialized exactly once; unicast
// fan-out reuses the encoded bytes per destination frame, and broadcast
// emits a single frame the switch replicates.
func (t *SDNTransport) Send(d Destination, in tuple.Tuple) error {
	// The packetizer copies enc into its staging buffer, so the encode
	// scratch is safe to reuse on the next Send.
	t.encScratch = tuple.AppendEncode(t.encScratch[:0], in)
	enc := t.encScratch
	t.serializations.Add(1)
	switch {
	case d.Broadcast, d.SDNBalanced:
		t.writeFrames(t.pktz.Add(packet.Broadcast, enc))
		t.tuplesSent.Add(1)
	default:
		for _, id := range d.Workers {
			t.writeFrames(t.pktz.Add(packet.WorkerAddr(t.app, uint32(id)), enc))
			t.tuplesSent.Add(1)
		}
	}
	t.sinceFlush++
	if int64(t.sinceFlush) >= t.batch.Load() {
		return t.Flush()
	}
	if t.stagedAt == 0 {
		t.stagedAt = clock.CoarseUnixNano()
	} else if dl := t.flushDeadline.Load(); dl > 0 && clock.CoarseUnixNano()-t.stagedAt >= dl {
		return t.Flush()
	}
	return nil
}

// SendControl implements Transport: the tuple is addressed to the
// controller pseudo-address and flushed immediately (statistics replies
// should not sit in a batch).
func (t *SDNTransport) SendControl(in tuple.Tuple) error {
	t.encScratch = tuple.AppendEncode(t.encScratch[:0], in)
	enc := t.encScratch
	t.serializations.Add(1)
	t.writeFrames(t.pktz.Add(packet.ControllerAddr, enc))
	t.tuplesSent.Add(1)
	return t.Flush()
}

// Flush implements Transport.
func (t *SDNTransport) Flush() error {
	t.sinceFlush = 0
	t.stagedAt = 0
	t.writeFrames(t.pktz.FlushAll())
	return nil
}

// maybeDeadlineFlush flushes staged tuples whose bounded wait has expired.
// It runs on the worker goroutine (Recv is called every loop iteration), so
// the deadline fires even when no further Send arrives — the low-rate case
// the bound exists for.
func (t *SDNTransport) maybeDeadlineFlush() {
	if t.stagedAt == 0 {
		return
	}
	if dl := t.flushDeadline.Load(); dl > 0 && clock.CoarseUnixNano()-t.stagedAt >= dl {
		_ = t.Flush()
	}
}

// writeFrameWait bounds the backpressure a full switch ingress ring exerts
// on a sender before the frame is dropped (the loss mode §8 discusses). It
// matches the worst-case stall of the spin-retry loop it replaced, but
// blocks on the ring's channel instead of burning CPU in a sleep-poll loop,
// and counts exactly one ring drop per abandoned frame.
const writeFrameWait = 10 * time.Millisecond

// writeFrames pushes frames into the switch ingress ring with bounded
// blocking backpressure (modelling the DPDK TX ring).
func (t *SDNTransport) writeFrames(frames [][]byte) {
	for _, f := range frames {
		if t.sampler != nil {
			if id, ok := t.sampler.Sample(); ok {
				traced := packet.WithTrace(f, packet.TraceAnnex{ID: id, Hops: []packet.TraceHop{{
					Kind: packet.HopEmit, Actor: uint64(t.self), Detail: uint32(packet.TupleCount(f)),
					At: clock.CoarseUnixNano(),
				}}})
				packet.PutFrameBuf(f) // WithTrace copied; recycle the original
				f = traced
			}
		}
		if err := t.port.WriteFrameTimeout(f, writeFrameWait); err != nil {
			t.dropped.Add(1)
			packet.PutFrameBuf(f) // never entered the ring; still solely ours
			continue
		}
		t.framesSent.Add(1)
	}
}

// Recv implements Transport: frames are read from the switch in batches,
// depacketized, and deserialized into tuples through the transport's arena
// (~0 allocations per tuple in steady state). The returned slice is a window
// into the transport's reusable decode buffer and is only valid until the
// next Recv call; the tuples themselves own their storage and may be
// retained indefinitely.
func (t *SDNTransport) Recv(max int, wait time.Duration) ([]tuple.Tuple, error) {
	t.maybeDeadlineFlush()
	if max <= 0 {
		max = 256
	}
	if len(t.inQueue) == 0 {
		frames, err := t.port.ReadBatch(t.rxBatch[:0], max, wait)
		if err != nil {
			return nil, errTransportClosed
		}
		t.rxBatch = frames
		t.inBuf = t.inBuf[:0]
		for _, fr := range frames {
			if t.sink != nil && packet.Traced(fr) {
				done := packet.AppendTraceHop(fr, packet.TraceHop{
					Kind: packet.HopDequeue, Actor: uint64(t.self), Detail: uint32(packet.TupleCount(fr)),
					At: clock.CoarseUnixNano(),
				})
				if annex, ok := packet.ExtractTrace(done); ok {
					t.sink(annex)
				}
			}
			ins, err := t.dpktz.Feed(fr)
			if err != nil {
				t.dropped.Add(1)
				packet.PutFrameBuf(fr)
				continue
			}
			for _, in := range ins {
				tp, _, err := tuple.DecodeInto(in.Data, &t.arena)
				if err != nil {
					t.dropped.Add(1)
					continue
				}
				t.inBuf = append(t.inBuf, tp)
			}
			// The unique-ownership protocol makes this transport the sole
			// owner of every frame it dequeues, and DecodeInto copied all
			// values into the arena, so the buffer can re-enter the pool.
			packet.PutFrameBuf(fr)
		}
		t.inQueue = t.inBuf
		t.inLen.Store(int64(len(t.inQueue)))
	}
	n := len(t.inQueue)
	if n == 0 {
		return nil, nil
	}
	if n > max {
		n = max
	}
	out := t.inQueue[:n]
	t.inQueue = t.inQueue[n:]
	t.inLen.Store(int64(len(t.inQueue)))
	t.tuplesReceived.Add(uint64(n))
	return out, nil
}

// Reconfigure implements Transport: BATCH_SIZE tuples adjust the egress
// batch threshold and flush deadline; other kinds are ignored.
func (t *SDNTransport) Reconfigure(in tuple.Tuple) error {
	kind, err := control.DecodeKind(in)
	if err != nil || kind != control.KindBatchSize {
		return nil
	}
	var b control.BatchSize
	if err := control.DecodePayload(in, &b); err != nil {
		return err
	}
	t.SetBatchSize(b.Size)
	if b.FlushDeadline != 0 {
		t.SetFlushDeadline(b.FlushDeadline)
	}
	return nil
}

// SetBatchSize adjusts the egress batch threshold directly (the
// Reconfigure path decodes BATCH_SIZE tuples into this).
func (t *SDNTransport) SetBatchSize(n int) {
	if n > 0 {
		t.batch.Store(int64(n))
	}
}

// BatchSize returns the current batch threshold.
func (t *SDNTransport) BatchSize() int { return int(t.batch.Load()) }

// SetFlushDeadline adjusts the bounded staging wait. Negative disables the
// deadline; zero is ignored (the Reconfigure wire format uses zero for
// "unchanged").
func (t *SDNTransport) SetFlushDeadline(d time.Duration) {
	switch {
	case d > 0:
		t.flushDeadline.Store(int64(d))
	case d < 0:
		t.flushDeadline.Store(0)
	}
}

// FlushDeadline returns the current staging deadline (0 when disabled).
func (t *SDNTransport) FlushDeadline() time.Duration {
	return time.Duration(t.flushDeadline.Load())
}

// InQueueLen implements Transport: decoded tuples awaiting dispatch plus
// frames queued in the switch port.
func (t *SDNTransport) InQueueLen() int { return int(t.inLen.Load()) + t.port.QueueLen() }

// Stats implements Transport.
func (t *SDNTransport) Stats() TransportStats {
	return TransportStats{
		TuplesSent:     t.tuplesSent.Load(),
		Serializations: t.serializations.Load(),
		FramesSent:     t.framesSent.Load(),
		Dropped:        t.dropped.Load(),
		TuplesReceived: t.tuplesReceived.Load(),
	}
}

// Close implements Transport. The switch port itself is owned by the
// worker agent, which removes it (triggering the PortStatus event).
func (t *SDNTransport) Close() error {
	t.closed.Store(true)
	return nil
}

var _ Transport = (*SDNTransport)(nil)
var _ Transport = (*ChanTransport)(nil)

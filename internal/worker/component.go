// Package worker implements the Typhoon worker of Fig 4, structured as the
// paper's three layers:
//
//   - the application computation layer (user Components registered by
//     name, so logic can be fetched and hot-swapped like application
//     binaries),
//   - the framework layer (routing policies, control-tuple handling,
//     de/serialization, guaranteed-processing bookkeeping), and
//   - the I/O layer (packetization, batching, input rate control and the
//     worker statistics reporter), provided by SDNTransport for Typhoon or
//     a pluggable baseline transport.
package worker

import (
	"fmt"
	"sort"
	"sync"

	"typhoon/internal/tuple"
)

// Emitter is the surface computation logic uses to produce tuples. It is
// implemented by the worker framework layer.
type Emitter interface {
	// Emit sends values on the default stream.
	Emit(values ...tuple.Value)
	// EmitOn sends values on a specific stream.
	EmitOn(stream tuple.StreamID, values ...tuple.Value)
}

// Context gives computation logic access to its identity and emission.
type Context struct {
	em     Emitter
	id     uint32
	node   string
	index  int
	shared *SharedEnv
}

// NewContext builds a Context around an Emitter. Workers build their own
// contexts; this constructor exists for tests and for embedding components
// in other runtimes.
func NewContext(em Emitter, id uint32, node string, index int, env *SharedEnv) *Context {
	return &Context{em: em, id: id, node: node, index: index, shared: env}
}

// Emit sends values on the default stream.
func (c *Context) Emit(values ...tuple.Value) { c.em.Emit(values...) }

// EmitOn sends values on the given stream.
func (c *Context) EmitOn(s tuple.StreamID, values ...tuple.Value) { c.em.EmitOn(s, values...) }

// WorkerID returns this worker's physical ID.
func (c *Context) WorkerID() uint32 { return c.id }

// Node returns the logical node name.
func (c *Context) Node() string { return c.node }

// Index returns the instance index within the node.
func (c *Context) Index() int { return c.index }

// Env returns the shared environment (external services such as the
// emulated Kafka and KV store), which may be nil.
func (c *Context) Env() *SharedEnv { return c.shared }

// queueReporter is implemented by emitters that can report input backlog.
type queueReporter interface{ InQueueLen() int }

// QueueLen reports the worker's current input backlog (tuples and frames
// queued toward it); components use it to model load-dependent behaviour
// such as memory exhaustion under overload (Fig 11).
func (c *Context) QueueLen() int {
	if q, ok := c.em.(queueReporter); ok {
		return q.InQueueLen()
	}
	return 0
}

// SharedEnv carries references to external services that computation logic
// may need (the Yahoo benchmark's Kafka source and Redis store). Values are
// arbitrary and looked up by well-known keys.
type SharedEnv struct {
	mu sync.RWMutex
	m  map[string]any
}

// NewSharedEnv builds an empty environment.
func NewSharedEnv() *SharedEnv { return &SharedEnv{m: make(map[string]any)} }

// Set stores a service under a key.
func (e *SharedEnv) Set(key string, v any) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.m[key] = v
}

// Get fetches a service by key, or nil.
func (e *SharedEnv) Get(key string) any {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.m[key]
}

// Component is the lifecycle shared by all computation logic.
type Component interface {
	// Open is called once before any tuples flow.
	Open(ctx *Context) error
	// Close is called when the worker shuts down.
	Close(ctx *Context) error
}

// Bolt consumes tuples. Signal tuples (tuple.SignalStream) are delivered to
// Execute like data so stateful bolts can implement the flush pattern of
// Listing 2.
type Bolt interface {
	Component
	Execute(ctx *Context, in tuple.Tuple) error
}

// Spout generates tuples. Next should emit zero or more tuples and report
// whether it did any work; idle spouts are polled with backoff.
type Spout interface {
	Component
	Next(ctx *Context) (bool, error)
}

// Factory builds a fresh Component instance for a worker.
type Factory func() Component

var (
	regMu    sync.RWMutex
	registry = make(map[string]Factory)
)

// RegisterLogic installs a computation-logic factory under a name. The name
// is what logical topologies reference; re-registering a name replaces the
// factory (how new application binaries are "fetched" in this emulation).
func RegisterLogic(name string, f Factory) {
	if name == "" || f == nil {
		panic("worker: RegisterLogic with empty name or nil factory")
	}
	regMu.Lock()
	defer regMu.Unlock()
	registry[name] = f
}

// NewLogic instantiates registered logic.
func NewLogic(name string) (Component, error) {
	regMu.RLock()
	f := registry[name]
	regMu.RUnlock()
	if f == nil {
		return nil, fmt.Errorf("worker: unknown logic %q", name)
	}
	return f(), nil
}

// RegisteredLogic lists registered logic names, sorted.
func RegisteredLogic() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

package worker

import (
	"sync"

	"typhoon/internal/topology"
	"typhoon/internal/tuple"
)

// Router implements the framework layer's routing policies (Listing 1).
// Its state — the next-hop sets and policy descriptors per out-edge — is
// exactly what ROUTING control tuples replace at runtime, so the whole
// table swaps atomically under a mutex the data path shares.
type Router struct {
	mu     sync.Mutex
	routes []*routeState
}

type routeState struct {
	edge     topology.EdgeSpec
	nextHops []topology.WorkerID
	counter  uint64 // round-robin cursor (policy-specific state)
}

// Destination is one routing decision for a tuple.
type Destination struct {
	// Workers are the target worker IDs.
	Workers []topology.WorkerID
	// Broadcast requests network-level replication (the destination
	// address becomes the broadcast address and the switch fans out).
	Broadcast bool
	// SDNBalanced requests switch-level destination selection: the worker
	// stamps the broadcast address and a select group rewrites it.
	SDNBalanced bool
}

// NewRouter builds a router from an initial routing table.
func NewRouter(routes []topology.Route) *Router {
	r := &Router{}
	r.Update(routes)
	return r
}

// Update atomically replaces the routing table (ROUTING control tuple).
// Round-robin counters reset, which is harmless for shuffle semantics.
func (r *Router) Update(routes []topology.Route) {
	states := make([]*routeState, 0, len(routes))
	for _, rt := range routes {
		states = append(states, &routeState{
			edge:     rt.Edge,
			nextHops: append([]topology.WorkerID(nil), rt.NextHops...),
		})
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.routes = states
}

// Routes returns a copy of the current routing table.
func (r *Router) Routes() []topology.Route {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]topology.Route, 0, len(r.routes))
	for _, s := range r.routes {
		out = append(out, topology.Route{
			Edge:     s.edge,
			NextHops: append([]topology.WorkerID(nil), s.nextHops...),
		})
	}
	return out
}

// Route computes the destinations of a tuple: one Destination per out-edge
// subscribed to the tuple's stream.
func (r *Router) Route(t tuple.Tuple) []Destination {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Destination
	for _, s := range r.routes {
		if s.edge.Stream != t.Stream {
			continue
		}
		n := len(s.nextHops)
		if n == 0 {
			continue
		}
		switch s.edge.Policy {
		case topology.Shuffle:
			idx := s.counter % uint64(n)
			s.counter++
			out = append(out, Destination{Workers: s.nextHops[idx : idx+1]})
		case topology.Fields:
			// Two-level key routing (§3.5): hash → partition → owner via
			// rendezvous hashing, so rescaling the destination node moves
			// only the partitions whose owner changed and the controller's
			// updater app can compute exactly which state entries migrate.
			part := PartitionOf(tuple.HashFields(t, s.edge.HashFields))
			idx := OwnerIndex(part, n)
			out = append(out, Destination{Workers: s.nextHops[idx : idx+1]})
		case topology.Global:
			out = append(out, Destination{Workers: s.nextHops[:1]})
		case topology.All:
			out = append(out, Destination{Workers: s.nextHops, Broadcast: true})
		case topology.SDNBalanced:
			out = append(out, Destination{Workers: s.nextHops, SDNBalanced: true})
		case topology.Direct:
			want := topology.WorkerID(t.Field(0).AsInt())
			for _, h := range s.nextHops {
				if h == want {
					out = append(out, Destination{Workers: []topology.WorkerID{want}})
					break
				}
			}
		}
	}
	return out
}

package worker

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"typhoon/internal/control"
	"typhoon/internal/metrics"
	"typhoon/internal/topology"
	"typhoon/internal/tuple"
)

// Config describes one worker instance.
type Config struct {
	App   uint16
	ID    topology.WorkerID
	Node  string
	Index int
	// Logic names the registered computation-logic factory.
	Logic string
	// Source marks spout workers.
	Source bool
	// Stateful marks workers with flushable in-memory state (Table 4).
	Stateful bool
	// Routes is the initial routing table.
	Routes []topology.Route
	// Subscriptions lists the data streams this worker accepts; nil
	// accepts every stream (signal and control streams are always
	// handled).
	Subscriptions []tuple.StreamID
	// Acking enables guaranteed processing: emissions are tracked through
	// the acker and sources replay expired tuples.
	Acking bool
	// MaxPending caps in-flight tracked source tuples (backpressure).
	MaxPending int
	// AckTimeout is how long a tracked tuple may stay incomplete before
	// the source replays it.
	AckTimeout time.Duration
	// BatchSize is the initial I/O batch threshold.
	BatchSize int
	// FlushInterval bounds how long tuples may sit in the egress batch.
	FlushInterval time.Duration
	// RateLimit is the initial input rate (tuples/sec); <= 0 unlimited.
	RateLimit float64
	// StartInactive launches source workers throttled; the SDN controller
	// activates them once flow rules are in place (deployment step v of
	// §3.2 and the ACTIVATE tuple of Table 2).
	StartInactive bool
	// StatsInterval makes the worker statistics reporter (Fig 4) push
	// unsolicited METRIC_RESP tuples to the controller this often; zero
	// disables pushing (metrics then flow only on METRIC_REQ).
	StatsInterval time.Duration
	// Env is the shared environment passed to components.
	Env *SharedEnv
	// OnExit, when set, is invoked once when the worker stops, with nil
	// on graceful shutdown or the failure error on a crash.
	OnExit func(id topology.WorkerID, err error)
}

// Stats is a snapshot of a worker's internal counters (METRIC_RESP data).
type Stats struct {
	Processed uint64
	Emitted   uint64
	Completed uint64
	Replayed  uint64
	Filtered  uint64
	QueueLen  int
	ProcNanos uint64
}

type pendingEntry struct {
	stream   tuple.StreamID
	values   []tuple.Value
	emitted  time.Time
	attempts int
}

// Worker is one running worker instance. All processing happens on a
// single goroutine, matching the single-threaded executor model the paper's
// prototype inherits from Storm.
type Worker struct {
	cfg  Config
	comp Component
	tr   Transport
	rt   *Router
	ctx  *Context
	rate *RateLimiter

	active  atomic.Bool
	stopped atomic.Bool
	stopCh  chan struct{}
	done    chan struct{}
	exitErr error
	exitMu  sync.Mutex

	// Fault-injection hooks (internal/chaos): a pending induced failure,
	// a one-shot stall, and a per-tuple slowdown in nanoseconds.
	failInj chan error
	hangNs  atomic.Int64
	slowNs  atomic.Int64

	// Framework-layer state for guaranteed processing.
	rng     *rand.Rand
	curRoot uint64
	curXor  uint64
	anchor  bool
	pending map[uint64]*pendingEntry

	// CompleteLatencies records end-to-end tuple latency observed at the
	// source when acking is enabled (Figs 8c/8d are its CDF).
	CompleteLatencies *metrics.Latencies

	processed atomic.Uint64
	emitted   atomic.Uint64
	completed atomic.Uint64
	replayed  atomic.Uint64
	filtered  atomic.Uint64
	procNanos atomic.Uint64

	subs map[tuple.StreamID]bool
}

// New builds a worker from config, instantiating its logic and binding it
// to a transport. Call Start to begin processing.
func New(cfg Config, tr Transport) (*Worker, error) {
	comp, err := NewLogic(cfg.Logic)
	if err != nil {
		return nil, err
	}
	if cfg.Source {
		if _, ok := comp.(Spout); !ok {
			return nil, fmt.Errorf("worker: logic %q is not a Spout", cfg.Logic)
		}
	} else if _, ok := comp.(Bolt); !ok {
		return nil, fmt.Errorf("worker: logic %q is not a Bolt", cfg.Logic)
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = 10000
	}
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = 5 * time.Second
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = time.Millisecond
	}
	w := &Worker{
		cfg:               cfg,
		comp:              comp,
		tr:                tr,
		rt:                NewRouter(cfg.Routes),
		rate:              NewRateLimiter(cfg.RateLimit),
		stopCh:            make(chan struct{}),
		done:              make(chan struct{}),
		failInj:           make(chan error, 1),
		rng:               rand.New(rand.NewSource(int64(cfg.ID)*2654435761 + 1)),
		pending:           make(map[uint64]*pendingEntry),
		CompleteLatencies: metrics.NewLatencies(0),
	}
	if cfg.BatchSize > 0 {
		_ = tr.Reconfigure(control.Encode(control.KindBatchSize,
			control.BatchSize{Size: cfg.BatchSize}))
	}
	if len(cfg.Subscriptions) > 0 {
		w.subs = make(map[tuple.StreamID]bool, len(cfg.Subscriptions))
		for _, s := range cfg.Subscriptions {
			w.subs[s] = true
		}
	}
	w.ctx = &Context{em: w, id: uint32(cfg.ID), node: cfg.Node, index: cfg.Index, shared: cfg.Env}
	w.active.Store(!cfg.StartInactive)
	return w, nil
}

// ID returns the worker's physical ID.
func (w *Worker) ID() topology.WorkerID { return w.cfg.ID }

// Node returns the logical node name.
func (w *Worker) Node() string { return w.cfg.Node }

// Router exposes the routing table (tests and the in-process controller
// use it; production reconfiguration goes through ROUTING control tuples).
func (w *Worker) Router() *Router { return w.rt }

// Transport exposes the underlying transport.
func (w *Worker) Transport() Transport { return w.tr }

// Start launches the worker goroutine.
func (w *Worker) Start() {
	go w.run()
}

// Stop requests a graceful shutdown and waits for the loop to exit.
func (w *Worker) Stop() {
	if w.stopped.CompareAndSwap(false, true) {
		close(w.stopCh)
	}
	<-w.done
}

// Wait blocks until the worker exits (crash or Stop).
func (w *Worker) Wait() { <-w.done }

// ExitErr returns the failure that stopped the worker, or nil.
func (w *Worker) ExitErr() error {
	w.exitMu.Lock()
	defer w.exitMu.Unlock()
	return w.exitErr
}

// Fail injects a failure: the worker exits from its processing loop with
// err as if its logic had crashed, taking the usual crash path (port
// removal, OnExit, agent restart). It is the chaos engine's crash hook.
func (w *Worker) Fail(err error) {
	if err == nil {
		err = fmt.Errorf("worker %d: injected failure", w.cfg.ID)
	}
	select {
	case w.failInj <- err:
	default: // a failure is already pending
	}
}

// Hang stalls the worker's processing loop once for d (heartbeats continue
// — the agent owns those — so a hung worker models a live-but-stuck
// executor, detectable only through queue growth). Chaos hook.
func (w *Worker) Hang(d time.Duration) {
	if d > 0 {
		w.hangNs.Store(int64(d))
	}
}

// Slow adds d of artificial processing time per executed tuple; zero
// restores full speed. It models a slow consumer (chaos hook).
func (w *Worker) Slow(d time.Duration) {
	if d < 0 {
		d = 0
	}
	w.slowNs.Store(int64(d))
}

// Activate unthrottles a source worker (ACTIVATE control tuple, or the
// manager's activation path in the baseline).
func (w *Worker) Activate() { w.active.Store(true) }

// Deactivate throttles a source worker.
func (w *Worker) Deactivate() { w.active.Store(false) }

// StatsSnapshot returns current worker statistics.
func (w *Worker) StatsSnapshot() Stats {
	return Stats{
		Processed: w.processed.Load(),
		Emitted:   w.emitted.Load(),
		Completed: w.completed.Load(),
		Replayed:  w.replayed.Load(),
		Filtered:  w.filtered.Load(),
		QueueLen:  w.tr.InQueueLen(),
		ProcNanos: w.procNanos.Load(),
	}
}

func (w *Worker) run() {
	var failure error
	defer func() {
		_ = w.comp.Close(w.ctx)
		_ = w.tr.Flush()
		_ = w.tr.Close()
		w.exitMu.Lock()
		w.exitErr = failure
		w.exitMu.Unlock()
		close(w.done)
		if w.cfg.OnExit != nil {
			w.cfg.OnExit(w.cfg.ID, failure)
		}
	}()
	if err := w.comp.Open(w.ctx); err != nil {
		failure = fmt.Errorf("worker %d: open: %w", w.cfg.ID, err)
		return
	}
	spout, _ := w.comp.(Spout)
	bolt, _ := w.comp.(Bolt)

	lastFlush := time.Now()
	lastReplayScan := time.Now()
	lastStats := time.Now()
	idleSpins := 0
	for {
		select {
		case <-w.stopCh:
			return
		case err := <-w.failInj:
			failure = err
			return
		default:
		}
		if ns := w.hangNs.Swap(0); ns > 0 {
			// Injected stall: sleep without processing, but stay
			// responsive to Stop so teardown is never blocked.
			select {
			case <-w.stopCh:
				return
			case <-time.After(time.Duration(ns)):
			}
		}

		// Receive phase. Sources poll; bolts block briefly.
		wait := time.Duration(0)
		if spout == nil {
			wait = time.Millisecond
		}
		tuples, err := w.tr.Recv(256, wait)
		if err != nil {
			// Transport closed underneath us. During a graceful Stop that
			// is expected; otherwise (port removed, peer vanished) it is a
			// crash — report it so the agent's restart path fires instead
			// of leaving a zombie that still looks alive.
			if !w.stopped.Load() {
				failure = fmt.Errorf("worker %d (%s): %w", w.cfg.ID, w.cfg.Node, err)
			}
			return
		}
		worked := len(tuples) > 0
		for _, t := range tuples {
			if err := w.dispatch(bolt, t); err != nil {
				failure = err
				return
			}
		}

		// Emission phase for sources.
		if spout != nil && w.active.Load() && len(w.pending) < w.cfg.MaxPending {
			if w.rate.Allow() {
				did, err := spout.Next(w.ctx)
				if err != nil {
					failure = fmt.Errorf("worker %d: next: %w", w.cfg.ID, err)
					return
				}
				worked = worked || did
			}
		}

		now := time.Now()
		if now.Sub(lastFlush) >= w.cfg.FlushInterval {
			_ = w.tr.Flush()
			lastFlush = now
		}
		if w.cfg.Acking && w.cfg.Source && now.Sub(lastReplayScan) >= w.cfg.AckTimeout/4 {
			w.replayExpired(now)
			lastReplayScan = now
		}
		if w.cfg.StatsInterval > 0 && now.Sub(lastStats) >= w.cfg.StatsInterval {
			w.pushStats()
			lastStats = now
		}
		if worked {
			idleSpins = 0
		} else {
			idleSpins++
			if idleSpins > 64 {
				time.Sleep(200 * time.Microsecond)
			}
		}
	}
}

// dispatch routes one incoming tuple to the right layer.
func (w *Worker) dispatch(bolt Bolt, t tuple.Tuple) error {
	switch {
	case t.Stream.IsControl():
		w.handleControl(t)
		return nil
	case t.Stream == tuple.CompleteStream:
		w.handleComplete(t)
		return nil
	case t.Stream.IsSignal():
		// Signals reach the application layer (Listing 2).
		if bolt == nil {
			return nil
		}
		return w.execute(bolt, t)
	default:
		if w.subs != nil && !w.subs[t.Stream] {
			w.filtered.Add(1)
			return nil
		}
		if bolt == nil {
			w.filtered.Add(1)
			return nil
		}
		for !w.rate.Allow() {
			time.Sleep(100 * time.Microsecond)
		}
		return w.execute(bolt, t)
	}
}

func (w *Worker) execute(bolt Bolt, t tuple.Tuple) error {
	if ns := w.slowNs.Load(); ns > 0 {
		time.Sleep(time.Duration(ns))
	}
	w.anchor = w.cfg.Acking && t.Root != 0
	w.curRoot = t.Root
	w.curXor = t.ID
	start := time.Now()
	err := bolt.Execute(w.ctx, t)
	w.procNanos.Add(uint64(time.Since(start)))
	w.processed.Add(1)
	if err != nil {
		w.anchor = false
		return fmt.Errorf("worker %d (%s): execute: %w", w.cfg.ID, w.cfg.Node, err)
	}
	if w.anchor {
		w.sendAck(1, w.curRoot, w.curXor, 0)
	}
	w.anchor = false
	return nil
}

// InQueueLen reports the worker's input backlog (Context.QueueLen).
func (w *Worker) InQueueLen() int { return w.tr.InQueueLen() }

// Emit implements Emitter.
func (w *Worker) Emit(values ...tuple.Value) { w.EmitOn(tuple.DefaultStream, values...) }

// EmitOn implements Emitter.
func (w *Worker) EmitOn(s tuple.StreamID, values ...tuple.Value) {
	t := tuple.OnStream(s, values...)
	dests := w.rt.Route(t)
	if len(dests) == 0 {
		// No subscribers: the tuple is dropped and, crucially, never
		// joins a tuple tree (an unconsumable edge would otherwise keep
		// the tree from completing).
		return
	}
	if w.anchor {
		// Anchored emission: child edge ID joins the XOR of the tree.
		t.Root = w.curRoot
		t.ID = w.nonZeroRand()
		w.curXor ^= t.ID
	} else if w.cfg.Acking && w.cfg.Source && !isFrameworkStream(s) {
		root := w.nonZeroRand()
		t.Root, t.ID = root, root
		w.pending[root] = &pendingEntry{
			stream:  s,
			values:  values,
			emitted: time.Now(),
		}
		w.sendAck(0, root, root, uint64(w.cfg.ID))
	}
	for _, d := range dests {
		_ = w.tr.Send(d, t)
		w.emitted.Add(1)
	}
}

func (w *Worker) send(t tuple.Tuple) {
	for _, d := range w.rt.Route(t) {
		_ = w.tr.Send(d, t)
		w.emitted.Add(1)
	}
}

// sendAck emits an acker tuple: kind 0 = INIT (with source worker), kind 1
// = ACK. Acker tuples travel on tuple.AckStream and are routed by the
// root's hash so a given tuple tree always meets the same acker.
func (w *Worker) sendAck(kind int64, root, xor, src uint64) {
	at := tuple.OnStream(tuple.AckStream,
		tuple.Int(kind), tuple.Int(int64(root)), tuple.Int(int64(xor)), tuple.Int(int64(src)))
	w.send(at)
}

func (w *Worker) handleComplete(t tuple.Tuple) {
	root := uint64(t.Field(1).AsInt())
	e := w.pending[root]
	if e == nil {
		return
	}
	delete(w.pending, root)
	w.completed.Add(1)
	w.CompleteLatencies.Record(time.Since(e.emitted))
}

func (w *Worker) replayExpired(now time.Time) {
	const maxAttempts = 5
	for root, e := range w.pending {
		if now.Sub(e.emitted) < w.cfg.AckTimeout {
			continue
		}
		delete(w.pending, root)
		if e.attempts+1 >= maxAttempts {
			continue
		}
		w.replayed.Add(1)
		newRoot := w.nonZeroRand()
		t := tuple.OnStream(e.stream, e.values...)
		t.Root, t.ID = newRoot, newRoot
		w.pending[newRoot] = &pendingEntry{
			stream:   e.stream,
			values:   e.values,
			emitted:  now,
			attempts: e.attempts + 1,
		}
		w.sendAck(0, newRoot, newRoot, uint64(w.cfg.ID))
		w.send(t)
	}
}

func (w *Worker) handleControl(t tuple.Tuple) {
	kind, err := control.DecodeKind(t)
	if err != nil {
		return
	}
	switch kind {
	case control.KindRouting:
		var r control.Routing
		if control.DecodePayload(t, &r) == nil {
			w.rt.Update(r.Routes)
		}
	case control.KindSignal:
		// Forward to the application layer as a flush signal.
		if bolt, ok := w.comp.(Bolt); ok {
			_ = w.execute(bolt, control.NewSignal())
		}
	case control.KindMetricReq:
		var req control.MetricReq
		_ = control.DecodePayload(t, &req)
		w.sendMetrics(req.Token)
	case control.KindInputRate:
		var r control.InputRate
		if control.DecodePayload(t, &r) == nil {
			w.rate.SetRate(r.TuplesPerSec)
		}
	case control.KindActivate:
		w.active.Store(true)
	case control.KindDeactivate:
		w.active.Store(false)
	case control.KindSnapshotReq:
		var req control.SnapshotReq
		if control.DecodePayload(t, &req) == nil {
			w.sendSnapshot(req)
		}
	case control.KindRestore:
		var r control.Restore
		if control.DecodePayload(t, &r) == nil {
			w.restoreState(r)
		}
	default:
		// Transport-level knobs (BATCH_SIZE today, future kinds) go to the
		// transport whole: it decodes what it understands and ignores the
		// rest, so new control-tuple kinds never widen the interface.
		_ = w.tr.Reconfigure(t)
	}
}

// sendSnapshot answers a SNAPSHOT_REQ (§3.5 state migration). Both
// handlers run on the processing goroutine, so components never see
// concurrent Execute/Snapshot/Restore calls. Non-stateful logic answers
// with an empty snapshot so the updater's collection never hangs.
func (w *Worker) sendSnapshot(req control.SnapshotReq) {
	resp := control.SnapshotResp{Token: req.Token, Worker: w.cfg.ID, Node: w.cfg.Node}
	if sc, ok := w.comp.(StatefulComponent); ok {
		state, err := sc.SnapshotState(w.ctx, KeyRange{From: req.From, To: req.To})
		if err == nil {
			resp.State = state
		}
	}
	_ = w.tr.SendControl(control.Encode(control.KindSnapshotResp, resp))
	_ = w.tr.Flush()
}

// restoreState applies a RESTORE (replace semantics) and acknowledges it.
func (w *Worker) restoreState(r control.Restore) {
	if sc, ok := w.comp.(StatefulComponent); ok {
		_ = sc.RestoreState(w.ctx, r.State)
	}
	_ = w.tr.SendControl(control.Encode(control.KindRestoreResp,
		control.RestoreResp{Token: r.Token, Worker: w.cfg.ID}))
	_ = w.tr.Flush()
}

// pushStats is the worker statistics reporter of Fig 4: unsolicited
// metrics toward the controller so overload is visible even when the
// worker's ingress path is congested.
func (w *Worker) pushStats() { w.sendMetrics(0) }

func (w *Worker) sendMetrics(token uint64) {
	s := w.StatsSnapshot()
	resp := control.MetricResp{
		Token:     token,
		Worker:    w.cfg.ID,
		Node:      w.cfg.Node,
		QueueLen:  s.QueueLen,
		Processed: s.Processed,
		Emitted:   s.Emitted,
		Dropped:   w.tr.Stats().Dropped,
		ProcNanos: s.ProcNanos,
	}
	_ = w.tr.SendControl(control.Encode(control.KindMetricResp, resp))
}

func (w *Worker) nonZeroRand() uint64 {
	for {
		if v := w.rng.Uint64(); v != 0 {
			return v
		}
	}
}

// isFrameworkStream reports whether a stream is owned by the framework
// (never tracked for guaranteed processing).
func isFrameworkStream(s tuple.StreamID) bool {
	return s == tuple.AckStream || s == tuple.CompleteStream ||
		s.IsControl() || s.IsSignal()
}

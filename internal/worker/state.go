package worker

import (
	"typhoon/internal/tuple"
)

// The stable-update protocol of §3.5 migrates keyed worker state between
// instance sets when a stateful node is rescaled. The key space is carved
// into a fixed number of partitions; key-based (Fields) routing first maps
// a tuple to its partition and then assigns the partition to an instance
// with rendezvous hashing, so a parallelism change moves only the
// partitions whose owner actually changed — the "hashing ring" the
// controller's updater app reasons about when it asks old owners for
// snapshots and hands the entries to their new owners.

// NumPartitions is the fixed size of the key-partition space shared by the
// router, stateful components and the controller's updater app.
const NumPartitions = 64

// KeyRange selects the partitions [From, To) of the key space.
type KeyRange struct {
	From uint32 `json:"from"`
	To   uint32 `json:"to"`
}

// FullKeyRange covers every partition.
func FullKeyRange() KeyRange { return KeyRange{From: 0, To: NumPartitions} }

// Contains reports whether partition p falls in the range.
func (r KeyRange) Contains(p uint32) bool { return p >= r.From && p < r.To }

// StatefulComponent is computation logic whose keyed in-memory state can be
// migrated during a stable topology update. State is exposed as one opaque
// blob per routing key; the framework never interprets the blobs, only the
// keys (to decide ownership by partition).
type StatefulComponent interface {
	Component
	// SnapshotState returns the component's state entries whose key falls
	// in the partition range, keyed by the routing key. The component keeps
	// running afterwards; the updater pauses upstream before snapshotting.
	SnapshotState(ctx *Context, r KeyRange) (map[string][]byte, error)
	// RestoreState replaces the component's entire state with the given
	// entries (replace semantics: keys absent from state are dropped).
	RestoreState(ctx *Context, state map[string][]byte) error
}

// PartitionOf maps a routing hash to its key partition.
func PartitionOf(hash uint64) uint32 { return uint32(hash % NumPartitions) }

// PartitionOfKey maps a single string routing key to its partition. It is
// definitionally consistent with the router's Fields policy for an edge
// hashing one string field, so components and the updater agree with the
// data plane about which instance owns a key.
func PartitionOfKey(key string) uint32 {
	t := tuple.New(tuple.String(key))
	return PartitionOf(tuple.HashFields(t, []int{0}))
}

// OwnerIndex assigns a partition to an instance index among n instances
// using rendezvous (highest-random-weight) hashing: each (partition,
// instance) pair gets a deterministic score and the instance with the
// highest score wins. Changing n moves only the partitions whose winner
// changed — on average 1/n of them — which keeps state migration minimal
// compared to modulo placement, where almost every key moves.
func OwnerIndex(part uint32, n int) int {
	if n <= 1 {
		return 0
	}
	best, bestScore := 0, uint64(0)
	for i := 0; i < n; i++ {
		s := mix64(uint64(part)<<32 | uint64(i))
		if s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// mix64 is a SplitMix64 finalizer: a cheap, well-distributed bijection used
// to score (partition, instance) pairs.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

package worker

import (
	"reflect"
	"testing"

	"typhoon/internal/topology"
	"typhoon/internal/tuple"
)

func route(policy topology.RoutingPolicy, hops []topology.WorkerID, fields ...int) topology.Route {
	return topology.Route{
		Edge:     topology.EdgeSpec{From: "a", To: "b", Policy: policy, HashFields: fields},
		NextHops: hops,
	}
}

func TestShuffleRoundRobin(t *testing.T) {
	r := NewRouter([]topology.Route{route(topology.Shuffle, []topology.WorkerID{1, 2, 3})})
	var got []topology.WorkerID
	for i := 0; i < 6; i++ {
		d := r.Route(tuple.New(tuple.Int(int64(i))))
		if len(d) != 1 || len(d[0].Workers) != 1 {
			t.Fatalf("dest = %+v", d)
		}
		got = append(got, d[0].Workers[0])
	}
	want := []topology.WorkerID{1, 2, 3, 1, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestFieldsRoutingConsistency(t *testing.T) {
	r := NewRouter([]topology.Route{route(topology.Fields, []topology.WorkerID{1, 2, 3, 4}, 0)})
	first := make(map[string]topology.WorkerID)
	for i := 0; i < 100; i++ {
		for _, key := range []string{"apple", "banana", "cherry", "date"} {
			d := r.Route(tuple.New(tuple.String(key), tuple.Int(int64(i))))
			w := d[0].Workers[0]
			if prev, ok := first[key]; ok && prev != w {
				t.Fatalf("key %q routed to both %d and %d", key, prev, w)
			}
			first[key] = w
		}
	}
}

func TestGlobalRouting(t *testing.T) {
	r := NewRouter([]topology.Route{route(topology.Global, []topology.WorkerID{7, 8, 9})})
	for i := 0; i < 5; i++ {
		d := r.Route(tuple.New(tuple.Int(int64(i))))
		if d[0].Workers[0] != 7 {
			t.Fatalf("global routed to %d", d[0].Workers[0])
		}
	}
}

func TestAllRoutingBroadcast(t *testing.T) {
	hops := []topology.WorkerID{1, 2, 3}
	r := NewRouter([]topology.Route{route(topology.All, hops)})
	d := r.Route(tuple.New(tuple.Int(1)))
	if !d[0].Broadcast || !reflect.DeepEqual(d[0].Workers, hops) {
		t.Fatalf("dest = %+v", d[0])
	}
}

func TestSDNBalancedRouting(t *testing.T) {
	r := NewRouter([]topology.Route{route(topology.SDNBalanced, []topology.WorkerID{1, 2})})
	d := r.Route(tuple.New(tuple.Int(1)))
	if !d[0].SDNBalanced || d[0].Broadcast {
		t.Fatalf("dest = %+v", d[0])
	}
}

func TestDirectRouting(t *testing.T) {
	r := NewRouter([]topology.Route{route(topology.Direct, []topology.WorkerID{5, 6})})
	d := r.Route(tuple.New(tuple.Int(6), tuple.Int(99)))
	if len(d) != 1 || d[0].Workers[0] != 6 {
		t.Fatalf("dest = %+v", d)
	}
	// Unknown direct target: dropped.
	if d := r.Route(tuple.New(tuple.Int(42))); len(d) != 0 {
		t.Fatalf("unknown direct target should drop, got %+v", d)
	}
}

func TestStreamFiltering(t *testing.T) {
	edgeA := topology.Route{
		Edge:     topology.EdgeSpec{From: "a", To: "b", Policy: topology.Shuffle, Stream: 1},
		NextHops: []topology.WorkerID{1},
	}
	edgeB := topology.Route{
		Edge:     topology.EdgeSpec{From: "a", To: "c", Policy: topology.Shuffle, Stream: 2},
		NextHops: []topology.WorkerID{2},
	}
	r := NewRouter([]topology.Route{edgeA, edgeB})
	d := r.Route(tuple.OnStream(1, tuple.Int(0)))
	if len(d) != 1 || d[0].Workers[0] != 1 {
		t.Fatalf("stream 1 dest = %+v", d)
	}
	d = r.Route(tuple.OnStream(2, tuple.Int(0)))
	if len(d) != 1 || d[0].Workers[0] != 2 {
		t.Fatalf("stream 2 dest = %+v", d)
	}
	if d = r.Route(tuple.OnStream(9, tuple.Int(0))); len(d) != 0 {
		t.Fatalf("unsubscribed stream dest = %+v", d)
	}
}

func TestRouterUpdateSwapsTable(t *testing.T) {
	r := NewRouter([]topology.Route{route(topology.Shuffle, []topology.WorkerID{1})})
	r.Update([]topology.Route{route(topology.Shuffle, []topology.WorkerID{2, 3})})
	seen := map[topology.WorkerID]bool{}
	for i := 0; i < 4; i++ {
		seen[r.Route(tuple.New())[0].Workers[0]] = true
	}
	if seen[1] || !seen[2] || !seen[3] {
		t.Fatalf("seen = %v", seen)
	}
	got := r.Routes()
	if len(got) != 1 || !reflect.DeepEqual(got[0].NextHops, []topology.WorkerID{2, 3}) {
		t.Fatalf("Routes() = %+v", got)
	}
}

func TestEmptyNextHopsSkipped(t *testing.T) {
	r := NewRouter([]topology.Route{route(topology.Shuffle, nil)})
	if d := r.Route(tuple.New()); len(d) != 0 {
		t.Fatalf("empty hops dest = %+v", d)
	}
}

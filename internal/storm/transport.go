// Package storm implements the baseline stream transport Typhoon is
// compared against (§6): Storm-style worker-level TCP connections with
// application-level routing.
//
// The decisive cost it reproduces is per-destination serialization: a tuple
// sent to k next-hop workers is serialized k times, once per connection,
// because each copy carries distinct per-destination metadata (§1, [42]).
// One-to-many routing therefore degrades with fan-out (Fig 9), and tapping
// a stream for debugging costs extra serializations (Fig 12, Table 5).
package storm

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"typhoon/internal/topology"
	"typhoon/internal/tuple"
	"typhoon/internal/worker"
)

// errClosed is returned after Close.
var errClosed = errors.New("storm: transport closed")

// Network is the worker address registry of a baseline cluster: the role
// the scheduler's "transport channel information (IP address and TCP port)"
// plays in §2.
type Network struct {
	mu    sync.Mutex
	addrs map[topology.WorkerID]string
}

// NewNetwork builds an empty registry.
func NewNetwork() *Network {
	return &Network{addrs: make(map[topology.WorkerID]string)}
}

func (n *Network) register(id topology.WorkerID, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.addrs[id] = addr
}

func (n *Network) unregister(id topology.WorkerID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.addrs, id)
}

// Lookup resolves a worker's TCP address.
func (n *Network) Lookup(id topology.WorkerID) (string, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	a, ok := n.addrs[id]
	return a, ok
}

// Frame layout: length(u32) src(u32) dst(u32) tuple-bytes. The 12-byte
// header is the per-destination metadata that forces one serialization per
// destination.
const frameHeader = 12

// maxFrame bounds one tuple frame on the wire.
const maxFrame = 16 << 20

// TCPTransport is a worker.Transport over per-destination TCP connections.
type TCPTransport struct {
	self topology.WorkerID
	net  *Network
	ln   net.Listener

	conns map[topology.WorkerID]*outConn

	inMu    sync.Mutex
	inConns map[net.Conn]struct{}

	inbox  chan tuple.Tuple
	closed chan struct{}
	once   sync.Once
	wg     sync.WaitGroup

	tuplesSent     atomic.Uint64
	serializations atomic.Uint64
	dropped        atomic.Uint64
	tuplesReceived atomic.Uint64
}

type outConn struct {
	c  net.Conn
	bw *bufio.Writer
}

// Listen attaches a transport for worker id to the registry, binding a TCP
// listener on the loopback interface.
func Listen(id topology.WorkerID, network *Network) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("storm: listen: %w", err)
	}
	t := &TCPTransport{
		self:    id,
		net:     network,
		ln:      ln,
		conns:   make(map[topology.WorkerID]*outConn),
		inConns: make(map[net.Conn]struct{}),
		inbox:   make(chan tuple.Tuple, 8192),
		closed:  make(chan struct{}),
	}
	network.register(id, ln.Addr().String())
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the transport's listen address.
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

// Send implements worker.Transport. Broadcast falls back to one
// serialization and one TCP write per destination — the baseline behaviour
// the paper measures.
func (t *TCPTransport) Send(d worker.Destination, in tuple.Tuple) error {
	for _, id := range d.Workers {
		// Fresh serialization for every destination: the frame embeds
		// destination-specific metadata, as in Storm's transport layer.
		buf := make([]byte, frameHeader, frameHeader+tuple.EncodedSize(in))
		binary.BigEndian.PutUint32(buf[4:8], uint32(t.self))
		binary.BigEndian.PutUint32(buf[8:12], uint32(id))
		buf = tuple.AppendEncode(buf, in)
		binary.BigEndian.PutUint32(buf[0:4], uint32(len(buf)-4))
		t.serializations.Add(1)

		oc := t.connTo(id)
		if oc == nil {
			t.dropped.Add(1)
			continue
		}
		if _, err := oc.bw.Write(buf); err != nil {
			t.dropConn(id)
			t.dropped.Add(1)
			continue
		}
		t.tuplesSent.Add(1)
	}
	return nil
}

// SendControl implements worker.Transport: the baseline has no SDN
// controller path, so control replies go nowhere.
func (t *TCPTransport) SendControl(tuple.Tuple) error { return nil }

// Flush implements worker.Transport.
func (t *TCPTransport) Flush() error {
	for id, oc := range t.conns {
		if err := oc.bw.Flush(); err != nil {
			t.dropConn(id)
		}
	}
	return nil
}

// Recv implements worker.Transport.
func (t *TCPTransport) Recv(max int, wait time.Duration) ([]tuple.Tuple, error) {
	if max <= 0 {
		max = 64
	}
	var out []tuple.Tuple
	var timeout <-chan time.Time
	if wait > 0 {
		timer := time.NewTimer(wait)
		defer timer.Stop()
		timeout = timer.C
	}
	select {
	case tp := <-t.inbox:
		out = append(out, tp)
	case <-t.closed:
		return nil, errClosed
	default:
		if wait <= 0 {
			return nil, nil
		}
		select {
		case tp := <-t.inbox:
			out = append(out, tp)
		case <-t.closed:
			return nil, errClosed
		case <-timeout:
			return nil, nil
		}
	}
	for len(out) < max {
		select {
		case tp := <-t.inbox:
			out = append(out, tp)
		default:
			t.tuplesReceived.Add(uint64(len(out)))
			return out, nil
		}
	}
	t.tuplesReceived.Add(uint64(len(out)))
	return out, nil
}

// Reconfigure implements worker.Transport; the baseline's Netty-style
// buffered writers flush on Flush, so the BATCH_SIZE knob (and any other
// transport-level control tuple) is a no-op.
func (t *TCPTransport) Reconfigure(tuple.Tuple) error { return nil }

// InQueueLen implements worker.Transport.
func (t *TCPTransport) InQueueLen() int { return len(t.inbox) }

// Stats implements worker.Transport.
func (t *TCPTransport) Stats() worker.TransportStats {
	return worker.TransportStats{
		TuplesSent:     t.tuplesSent.Load(),
		Serializations: t.serializations.Load(),
		Dropped:        t.dropped.Load(),
		TuplesReceived: t.tuplesReceived.Load(),
	}
}

// Close implements worker.Transport.
func (t *TCPTransport) Close() error {
	t.once.Do(func() {
		close(t.closed)
		t.net.unregister(t.self)
		_ = t.ln.Close()
		for id := range t.conns {
			t.dropConn(id)
		}
		t.inMu.Lock()
		for c := range t.inConns {
			_ = c.Close()
		}
		t.inMu.Unlock()
	})
	t.wg.Wait()
	return nil
}

func (t *TCPTransport) connTo(id topology.WorkerID) *outConn {
	if oc, ok := t.conns[id]; ok {
		return oc
	}
	addr, ok := t.net.Lookup(id)
	if !ok {
		return nil
	}
	c, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return nil
	}
	oc := &outConn{c: c, bw: bufio.NewWriterSize(c, 64<<10)}
	t.conns[id] = oc
	return oc
}

func (t *TCPTransport) dropConn(id topology.WorkerID) {
	if oc, ok := t.conns[id]; ok {
		_ = oc.c.Close()
		delete(t.conns, id)
	}
}

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.inMu.Lock()
		select {
		case <-t.closed:
			t.inMu.Unlock()
			_ = c.Close()
			return
		default:
		}
		t.inConns[c] = struct{}{}
		t.inMu.Unlock()
		t.wg.Add(1)
		go t.readLoop(c)
	}
}

func (t *TCPTransport) readLoop(c net.Conn) {
	defer t.wg.Done()
	defer func() {
		t.inMu.Lock()
		delete(t.inConns, c)
		t.inMu.Unlock()
		_ = c.Close()
	}()
	br := bufio.NewReaderSize(c, 64<<10)
	var hdr [4]byte
	// One arena per connection: decoded tuples take ownership of their
	// regions, so the reader itself stays near allocation-free.
	var arena tuple.Arena
	for {
		select {
		case <-t.closed:
			return
		default:
		}
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		n := int(binary.BigEndian.Uint32(hdr[:]))
		if n < frameHeader-4 || n > maxFrame {
			return
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(br, body); err != nil {
			return
		}
		// Deserialization happens here, once per received copy.
		tp, _, err := tuple.DecodeInto(body[8:], &arena)
		if err != nil {
			t.dropped.Add(1)
			continue
		}
		select {
		case t.inbox <- tp:
		case <-t.closed:
			return
		default:
			t.dropped.Add(1)
		}
	}
}

var _ worker.Transport = (*TCPTransport)(nil)

package storm

import (
	"testing"
	"time"

	"typhoon/internal/topology"
	"typhoon/internal/tuple"
	"typhoon/internal/worker"
)

func pair(t *testing.T) (*Network, *TCPTransport, *TCPTransport) {
	t.Helper()
	n := NewNetwork()
	a, err := Listen(1, n)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Listen(2, n)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return n, a, b
}

func recvN(t *testing.T, tr *TCPTransport, n int) []tuple.Tuple {
	t.Helper()
	var out []tuple.Tuple
	deadline := time.Now().Add(5 * time.Second)
	for len(out) < n {
		if time.Now().After(deadline) {
			t.Fatalf("received %d of %d", len(out), n)
		}
		got, err := tr.Recv(64, 50*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, got...)
	}
	return out
}

func TestUnicastDelivery(t *testing.T) {
	_, a, b := pair(t)
	for i := 0; i < 100; i++ {
		err := a.Send(worker.Destination{Workers: []topology.WorkerID{2}}, tuple.New(tuple.Int(int64(i))))
		if err != nil {
			t.Fatal(err)
		}
	}
	_ = a.Flush()
	got := recvN(t, b, 100)
	for i, tp := range got {
		if tp.Field(0).AsInt() != int64(i) {
			t.Fatalf("order broken at %d: %v", i, tp)
		}
	}
}

func TestPerDestinationSerialization(t *testing.T) {
	n := NewNetwork()
	src, _ := Listen(1, n)
	defer src.Close()
	var sinks []*TCPTransport
	var ids []topology.WorkerID
	for i := 0; i < 5; i++ {
		s, err := Listen(topology.WorkerID(2+i), n)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		sinks = append(sinks, s)
		ids = append(ids, s.self)
	}
	const tuples = 20
	for i := 0; i < tuples; i++ {
		// Broadcast request: the baseline degrades to per-destination.
		err := src.Send(worker.Destination{Workers: ids, Broadcast: true}, tuple.New(tuple.String("fanout")))
		if err != nil {
			t.Fatal(err)
		}
	}
	_ = src.Flush()
	for _, s := range sinks {
		recvN(t, s, tuples)
	}
	if got := src.Stats().Serializations; got != tuples*5 {
		t.Fatalf("serializations = %d, want %d (one per destination)", got, tuples*5)
	}
}

func TestSendToUnknownWorkerDrops(t *testing.T) {
	_, a, _ := pair(t)
	_ = a.Send(worker.Destination{Workers: []topology.WorkerID{99}}, tuple.New(tuple.Int(1)))
	if a.Stats().Dropped != 1 {
		t.Fatalf("dropped = %d", a.Stats().Dropped)
	}
}

func TestSendAfterPeerClosed(t *testing.T) {
	_, a, b := pair(t)
	_ = a.Send(worker.Destination{Workers: []topology.WorkerID{2}}, tuple.New(tuple.Int(1)))
	_ = a.Flush()
	recvN(t, b, 1)
	b.Close()
	// Writes eventually fail and are counted as drops; the sender must
	// not wedge.
	deadline := time.Now().Add(5 * time.Second)
	for a.Stats().Dropped == 0 {
		if time.Now().After(deadline) {
			t.Fatal("drops never recorded after peer close")
		}
		_ = a.Send(worker.Destination{Workers: []topology.WorkerID{2}}, tuple.New(tuple.Int(2)))
		_ = a.Flush()
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRecvTimeoutAndClose(t *testing.T) {
	_, a, _ := pair(t)
	start := time.Now()
	got, err := a.Recv(8, 30*time.Millisecond)
	if err != nil || len(got) != 0 {
		t.Fatalf("got=%v err=%v", got, err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("returned before timeout")
	}
	a.Close()
	if _, err := a.Recv(8, time.Second); err == nil {
		t.Fatal("Recv after close should fail")
	}
}

func TestControlPathIsNoop(t *testing.T) {
	_, a, _ := pair(t)
	if err := a.SendControl(tuple.New()); err != nil {
		t.Fatal(err)
	}
	if err := a.Reconfigure(tuple.New()); err != nil { // no-op, must not fail
		t.Fatal(err)
	}
	if a.InQueueLen() != 0 {
		t.Fatal("queue should be empty")
	}
}

func TestWorkersOverTCPTransport(t *testing.T) {
	// Full pipeline with the worker runtime over the baseline transport.
	n := NewNetwork()
	srcTr, err := Listen(1, n)
	if err != nil {
		t.Fatal(err)
	}
	sinkTr, err := Listen(2, n)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan int64, 1024)
	worker.RegisterLogic("storm-test/sink", func() worker.Component { return chanSink{got} })
	worker.RegisterLogic("storm-test/src", func() worker.Component { return &limitedSource{limit: 300} })

	sink, err := worker.New(worker.Config{App: 1, ID: 2, Node: "sink", Logic: "storm-test/sink"}, sinkTr)
	if err != nil {
		t.Fatal(err)
	}
	src, err := worker.New(worker.Config{
		App: 1, ID: 1, Node: "src", Source: true, Logic: "storm-test/src",
		Routes: []topology.Route{{
			Edge:     topology.EdgeSpec{From: "src", To: "sink", Policy: topology.Shuffle},
			NextHops: []topology.WorkerID{2},
		}},
	}, srcTr)
	if err != nil {
		t.Fatal(err)
	}
	sink.Start()
	src.Start()
	defer sink.Stop()
	defer src.Stop()

	seen := 0
	deadline := time.After(10 * time.Second)
	for seen < 300 {
		select {
		case <-got:
			seen++
		case <-deadline:
			t.Fatalf("saw %d of 300", seen)
		}
	}
}

type chanSink struct{ ch chan int64 }

func (c chanSink) Open(*worker.Context) error  { return nil }
func (c chanSink) Close(*worker.Context) error { return nil }
func (c chanSink) Execute(_ *worker.Context, in tuple.Tuple) error {
	if !in.Stream.IsSignal() {
		select {
		case c.ch <- in.Field(0).AsInt():
		default:
		}
	}
	return nil
}

type limitedSource struct{ n, limit int64 }

func (s *limitedSource) Open(*worker.Context) error  { return nil }
func (s *limitedSource) Close(*worker.Context) error { return nil }
func (s *limitedSource) Next(ctx *worker.Context) (bool, error) {
	if s.n >= s.limit {
		return false, nil
	}
	ctx.Emit(tuple.Int(s.n))
	s.n++
	return true, nil
}

package observe

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"typhoon/internal/packet"
)

// TestRegistryConcurrency hammers registration, instrument updates and
// scraping from parallel goroutines; run with -race.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const workers = 8
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			labels := Labels{"worker": fmt.Sprint(i)}
			for j := 0; j < 200; j++ {
				c := r.Counter("typhoon_test_ops_total", "ops", labels)
				c.Inc()
				g := r.Gauge("typhoon_test_queue", "queue", labels)
				g.Set(float64(j))
				h := r.Histogram("typhoon_test_latency_seconds", "lat", labels, nil)
				h.Observe(float64(j) / 1000)
				r.GaugeFunc("typhoon_test_live", "live", labels, func() float64 { return 1 })
			}
		}(i)
	}
	// Concurrent scrapers.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				var sb strings.Builder
				if err := r.WritePrometheus(&sb); err != nil {
					t.Error(err)
					return
				}
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()

	// Every worker's counter must have exactly its 200 increments.
	for i := 0; i < workers; i++ {
		c := r.Counter("typhoon_test_ops_total", "ops", Labels{"worker": fmt.Sprint(i)})
		if c.Value() != 200 {
			t.Fatalf("worker %d counter = %d, want 200", i, c.Value())
		}
	}
}

// TestWritePrometheusGolden pins the exposition format byte for byte.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("typhoon_switch_tx_frames_total", "Frames delivered to ports.", Labels{"host": "h1"}).Add(42)
	r.Counter("typhoon_switch_tx_frames_total", "Frames delivered to ports.", Labels{"host": "h2"}).Add(7)
	r.Gauge("typhoon_worker_queue_frames", "Worker input backlog.", Labels{"host": "h1", "worker": "3"}).Set(5)
	r.GaugeFunc("typhoon_controller_datapaths", "Connected switches.", nil, func() float64 { return 2 })
	h := r.Histogram("typhoon_trace_e2e_seconds", "Emit-to-dequeue trace span.", nil, []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.002)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP typhoon_controller_datapaths Connected switches.
# TYPE typhoon_controller_datapaths gauge
typhoon_controller_datapaths 2
# HELP typhoon_switch_tx_frames_total Frames delivered to ports.
# TYPE typhoon_switch_tx_frames_total counter
typhoon_switch_tx_frames_total{host="h1"} 42
typhoon_switch_tx_frames_total{host="h2"} 7
# HELP typhoon_trace_e2e_seconds Emit-to-dequeue trace span.
# TYPE typhoon_trace_e2e_seconds histogram
typhoon_trace_e2e_seconds_bucket{le="0.001"} 1
typhoon_trace_e2e_seconds_bucket{le="0.01"} 2
typhoon_trace_e2e_seconds_bucket{le="+Inf"} 3
typhoon_trace_e2e_seconds_sum 5.0025
typhoon_trace_e2e_seconds_count 3
# HELP typhoon_worker_queue_frames Worker input backlog.
# TYPE typhoon_worker_queue_frames gauge
typhoon_worker_queue_frames{host="h1",worker="3"} 5
`
	if sb.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

func TestRegistryUnregister(t *testing.T) {
	r := NewRegistry()
	r.Counter("typhoon_x_total", "x", Labels{"worker": "1"}).Inc()
	r.Counter("typhoon_x_total", "x", Labels{"worker": "2"}).Inc()
	r.Unregister("typhoon_x_total", Labels{"worker": "1"})
	var sb strings.Builder
	_ = r.WritePrometheus(&sb)
	if strings.Contains(sb.String(), `worker="1"`) {
		t.Fatal("unregistered series still exposed")
	}
	if !strings.Contains(sb.String(), `worker="2"`) {
		t.Fatal("surviving series lost")
	}
}

func TestCollectorAndHandler(t *testing.T) {
	r := NewRegistry()
	r.AddCollector(func(emit func(Sample)) {
		emit(Sample{
			Name: "typhoon_switch_port_queue_frames", Kind: KindGauge,
			Help:   "Frames queued toward the port's device.",
			Labels: Labels{"host": "h1", "port": "1"}, Value: 9,
		})
	})
	srv := httptest.NewServer(Handler(ServerOptions{Registry: r, EnablePprof: true}))
	defer srv.Close()

	body := httpGet(t, srv.URL+"/metrics")
	if !strings.Contains(body, `typhoon_switch_port_queue_frames{host="h1",port="1"} 9`) {
		t.Fatalf("collector sample missing from scrape:\n%s", body)
	}
	if !strings.Contains(httpGet(t, srv.URL+"/debug/pprof/cmdline"), "") {
		t.Fatal("pprof route missing")
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestTraceLogRing(t *testing.T) {
	l := NewTraceLog(4)
	for i := 1; i <= 6; i++ {
		l.Record(packet.TraceAnnex{ID: uint64(i), Hops: []packet.TraceHop{
			{Kind: packet.HopEmit, At: 100},
			{Kind: packet.HopDequeue, At: 100 + int64(i)*1000},
		}})
	}
	if l.Total() != 6 {
		t.Fatalf("total = %d", l.Total())
	}
	recent := l.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("retained %d traces", len(recent))
	}
	// Most recent first: IDs 6,5,4,3.
	for i, want := range []uint64{6, 5, 4, 3} {
		if recent[i].ID != want {
			t.Fatalf("recent[%d].ID = %d, want %d", i, recent[i].ID, want)
		}
	}
	if got := recent[0].E2ESeconds(); got <= 0 {
		t.Fatalf("e2e span = %v", got)
	}
	if got := l.Recent(2); len(got) != 2 || got[0].ID != 6 {
		t.Fatalf("Recent(2) = %+v", got)
	}
}

func TestSampler(t *testing.T) {
	s := NewSampler(4)
	hits := 0
	for i := 0; i < 40; i++ {
		if _, ok := s.Sample(); ok {
			hits++
		}
	}
	if hits != 10 {
		t.Fatalf("sampled %d of 40 with period 4", hits)
	}
	var disabled *Sampler
	if _, ok := disabled.Sample(); ok {
		t.Fatal("nil sampler sampled")
	}
	if _, ok := NewSampler(0).Sample(); ok {
		t.Fatal("disabled sampler sampled")
	}
}

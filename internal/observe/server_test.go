package observe

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func decodeEnvelope(t *testing.T, rec *httptest.ResponseRecorder) Envelope {
	t.Helper()
	var env Envelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("response is not an envelope: %v\n%s", err, rec.Body.String())
	}
	return env
}

func testOptions() ServerOptions {
	reg := NewRegistry()
	reg.Counter("test_total", "A counter.", nil).Add(3)
	traces := NewTraceLog(4)
	return ServerOptions{
		Registry: reg,
		Traces:   traces,
		Top: func() TopSnapshot {
			return TopSnapshot{
				At:       time.Unix(1700000000, 0).UTC(),
				Switches: []SwitchRow{{Host: "h1", Ports: 2}},
			}
		},
	}
}

// TestLegacyRoutesServeBarePayloads pins the pre-versioning /api/* aliases:
// bare JSON bodies, no envelope, application/json content type.
func TestLegacyRoutesServeBarePayloads(t *testing.T) {
	h := Handler(testOptions())
	for _, path := range []string{"/api/metrics", "/api/top", "/api/traces"} {
		rec := get(t, h, path)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d", path, rec.Code)
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%s: Content-Type %q", path, ct)
		}
		var probe map[string]json.RawMessage
		if err := json.Unmarshal(rec.Body.Bytes(), &probe); err == nil {
			if _, hasData := probe["data"]; hasData {
				t.Fatalf("%s: legacy route wrapped in envelope: %s", path, rec.Body.String())
			}
		}
	}
}

// TestV1RoutesServeEnvelopes pins the versioned contract: every /api/v1
// success is {"data": ...} with the payload intact.
func TestV1RoutesServeEnvelopes(t *testing.T) {
	h := Handler(testOptions())
	for _, path := range []string{"/api/v1/metrics", "/api/v1/top", "/api/v1/traces?n=5"} {
		rec := get(t, h, path)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d", path, rec.Code)
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%s: Content-Type %q", path, ct)
		}
		env := decodeEnvelope(t, rec)
		if env.Error != nil {
			t.Fatalf("%s: unexpected error envelope: %+v", path, env.Error)
		}
		if len(env.Data) == 0 {
			t.Fatalf("%s: envelope has no data", path)
		}
	}
	var snap TopSnapshot
	env := decodeEnvelope(t, get(t, h, "/api/v1/top"))
	if err := json.Unmarshal(env.Data, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Switches) != 1 || snap.Switches[0].Host != "h1" {
		t.Fatalf("top data = %+v", snap)
	}
}

// TestV1ErrorEnvelopePreservesStatus pins the error half: a handler's
// http.Error becomes {"error": {"code", "message"}} with the status kept.
func TestV1ErrorEnvelopePreservesStatus(t *testing.T) {
	o := testOptions()
	o.Rescale = http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "no such node", http.StatusConflict)
	})
	h := Handler(o)

	rec := get(t, h, "/api/rescale")
	if rec.Code != http.StatusConflict || strings.TrimSpace(rec.Body.String()) != "no such node" {
		t.Fatalf("legacy error: %d %q", rec.Code, rec.Body.String())
	}

	rec = get(t, h, "/api/v1/rescale")
	if rec.Code != http.StatusConflict {
		t.Fatalf("v1 error status = %d", rec.Code)
	}
	env := decodeEnvelope(t, rec)
	if env.Error == nil || env.Error.Code != http.StatusConflict || env.Error.Message != "no such node" {
		t.Fatalf("v1 error envelope = %+v", env.Error)
	}
	if len(env.Data) != 0 {
		t.Fatalf("error envelope carries data: %s", env.Data)
	}
}

// TestV1PlainTextSuccessBecomesJSONString covers legacy handlers that
// answer 200 with a non-JSON body: the wrapper must still produce a valid
// envelope.
func TestV1PlainTextSuccessBecomesJSONString(t *testing.T) {
	o := testOptions()
	o.Qos = http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("all good"))
	})
	env := decodeEnvelope(t, get(t, Handler(o), "/api/v1/qos"))
	var s string
	if err := json.Unmarshal(env.Data, &s); err != nil || s != "all good" {
		t.Fatalf("data = %s (%v), want JSON string", env.Data, err)
	}
}

// TestV1EmptySuccessBodyBecomesNullData covers 200-with-empty-body
// handlers: the envelope's data must be explicit JSON null, not absent
// garbage.
func TestV1EmptySuccessBodyBecomesNullData(t *testing.T) {
	o := testOptions()
	o.Chaos = http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	rec := get(t, Handler(o), "/api/v1/chaos")
	env := decodeEnvelope(t, rec)
	if string(env.Data) != "null" {
		t.Fatalf("data = %q, want null", env.Data)
	}
}

// TestNilHandlersDisableRoutesOnBothSurfaces: unwired endpoints must 404
// on the legacy and the versioned path alike.
func TestNilHandlersDisableRoutesOnBothSurfaces(t *testing.T) {
	h := Handler(ServerOptions{Registry: NewRegistry()})
	for _, path := range []string{
		"/api/traces", "/api/v1/traces",
		"/api/top", "/api/v1/top",
		"/api/chaos", "/api/v1/chaos",
		"/api/rescale", "/api/v1/rescale",
		"/api/controlplane", "/api/v1/controlplane",
		"/api/qos", "/api/v1/qos",
	} {
		if rec := get(t, h, path); rec.Code != http.StatusNotFound {
			t.Fatalf("%s: status %d, want 404", path, rec.Code)
		}
	}
}

// TestPrometheusSurfaceUnversioned: /metrics stays the text exposition.
func TestPrometheusSurfaceUnversioned(t *testing.T) {
	rec := get(t, Handler(testOptions()), "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "test_total 3") {
		t.Fatalf("exposition missing counter:\n%s", rec.Body.String())
	}
}

// TestTopPollHookRunsPerRequest: the METRIC_REQ sweep hook fires on both
// surfaces.
func TestTopPollHookRunsPerRequest(t *testing.T) {
	polls := 0
	o := testOptions()
	o.Poll = func() { polls++ }
	h := Handler(o)
	get(t, h, "/api/top")
	get(t, h, "/api/v1/top")
	if polls != 2 {
		t.Fatalf("polls = %d, want 2", polls)
	}
}

package observe

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"
)

// SwitchRow is one switch's line in the cluster top view.
type SwitchRow struct {
	Host       string `json:"host"`
	DPID       uint64 `json:"dpid"`
	Ports      int    `json:"ports"`
	Rules      int    `json:"rules"`
	RxFrames   uint64 `json:"rxFrames"`
	TxFrames   uint64 `json:"txFrames"`
	Forwarded  uint64 `json:"forwarded"`
	Replicated uint64 `json:"replicated"`
	Dropped    uint64 `json:"dropped"`
}

// WorkerRow is one worker's line in the cluster top view, derived from the
// controller's METRIC_RESP cache.
type WorkerRow struct {
	Topo      string  `json:"topo"`
	Node      string  `json:"node"`
	Worker    uint32  `json:"worker"`
	Host      string  `json:"host"`
	QueueLen  int     `json:"queueLen"`
	Processed uint64  `json:"processed"`
	Emitted   uint64  `json:"emitted"`
	Dropped   uint64  `json:"dropped"`
	ProcSecs  float64 `json:"procSecs"`
	// AgeSecs is how stale this row is (time since the METRIC_RESP).
	AgeSecs float64 `json:"ageSecs"`
}

// TopSnapshot is the live cluster table served at /api/top.
type TopSnapshot struct {
	At       time.Time   `json:"at"`
	Switches []SwitchRow `json:"switches"`
	Workers  []WorkerRow `json:"workers"`
}

// ServerOptions wires the pieces the HTTP endpoint exposes.
type ServerOptions struct {
	// Registry backs /metrics and /api/metrics.
	Registry *Registry
	// Traces backs /api/traces; nil disables the route.
	Traces *TraceLog
	// Top builds the /api/top table; nil disables the route.
	Top func() TopSnapshot
	// Poll, when set, is invoked before Top on /api/top requests — the
	// hook the cluster uses to issue a METRIC_REQ sweep through the
	// control-tuple path so the next scrape is fresh.
	Poll func()
	// Chaos, when non-nil, is mounted at /api/chaos (fault injection
	// over HTTP; GET lists injections, POST applies a fault spec).
	Chaos http.Handler
	// Rescale, when non-nil, is mounted at /api/rescale (POST triggers a
	// managed stable rescale and returns its report).
	Rescale http.Handler
	// ControlPlane, when non-nil, is mounted at /api/controlplane (GET
	// returns controller registrations and per-switch mastership).
	ControlPlane http.Handler
	// Qos, when non-nil, is mounted at /api/qos (GET reports per-topology
	// rate classes and meter/queue statistics, POST reassigns a topology's
	// class and configured rate).
	Qos http.Handler
	// Batch, when non-nil, is mounted at /api/batch (GET reports batching
	// defaults and realized per-host occupancy, POST retunes batch size
	// and flush deadline cluster-wide).
	Batch http.Handler
	// Scenario, when non-nil, is mounted at /api/scenario (POST runs a
	// declarative scenario spec and returns its report).
	Scenario http.Handler
	// EnablePprof adds net/http/pprof under /debug/pprof/.
	EnablePprof bool
}

// Envelope is the uniform /api/v1 response body: exactly one of Data and
// Error is set. Legacy /api/* routes keep their bare payloads for one
// release; new consumers should read /api/v1/* only.
type Envelope struct {
	Data  json.RawMessage `json:"data,omitempty"`
	Error *APIError       `json:"error,omitempty"`
}

// APIError is the error half of the /api/v1 envelope.
type APIError struct {
	// Code mirrors the HTTP status code.
	Code int `json:"code"`
	// Message is a human-readable description.
	Message string `json:"message"`
}

// Handler assembles the observability HTTP mux. The versioned surface is
// /api/v1/*, every response wrapped in the Envelope contract:
//
//	/metrics                 Prometheus text exposition
//	/api/v1/metrics          registry samples as JSON
//	/api/v1/top              live cluster table (switches + workers)
//	/api/v1/traces?n=N       recent completed tuple-path traces
//	/api/v1/chaos            fault injection (GET log, POST spec)
//	/api/v1/rescale          managed stable rescale (POST topo/node/parallelism)
//	/api/v1/controlplane     controller registrations and switch mastership
//	/api/v1/qos              rate classes and meter/queue stats (GET), class/rate set (POST)
//	/api/v1/batch            batching defaults and occupancy (GET), size/deadline set (POST)
//	/api/v1/scenario         declarative scenario run (POST spec, returns report)
//	/debug/pprof/*           standard Go profiling endpoints
//
// The pre-versioning /api/* routes remain as aliases serving their legacy
// bare payloads for one release.
func Handler(o ServerOptions) http.Handler {
	mux := http.NewServeMux()
	// route mounts one endpoint twice: the legacy handler verbatim at
	// /api/<name>, and its envelope-wrapped form at /api/v1/<name>.
	route := func(name string, h http.Handler) {
		mux.Handle("/api/"+name, h)
		mux.Handle("/api/v1/"+name, envelopeWrap(h))
	}
	if o.Registry != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = o.Registry.WritePrometheus(w)
		})
		route("metrics", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			writeJSON(w, o.Registry.Snapshot())
		}))
	}
	if o.Traces != nil {
		route("traces", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			n, _ := strconv.Atoi(r.URL.Query().Get("n"))
			writeJSON(w, o.Traces.Recent(n))
		}))
	}
	if o.Top != nil {
		route("top", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			if o.Poll != nil {
				o.Poll()
			}
			writeJSON(w, o.Top())
		}))
	}
	if o.Chaos != nil {
		route("chaos", o.Chaos)
	}
	if o.Rescale != nil {
		route("rescale", o.Rescale)
	}
	if o.ControlPlane != nil {
		route("controlplane", o.ControlPlane)
	}
	if o.Qos != nil {
		route("qos", o.Qos)
	}
	if o.Batch != nil {
		route("batch", o.Batch)
	}
	if o.Scenario != nil {
		route("scenario", o.Scenario)
	}
	if o.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// envelopeWrap adapts a legacy handler to the /api/v1 envelope contract by
// recording its response: success payloads become {"data": ...}, error
// statuses become {"error": {"code": ..., "message": ...}} with the status
// preserved, so one handler implementation serves both surfaces.
func envelopeWrap(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &responseRecorder{header: make(http.Header), code: http.StatusOK}
		h.ServeHTTP(rec, r)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(rec.code)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if rec.code >= 400 {
			_ = enc.Encode(Envelope{Error: &APIError{
				Code:    rec.code,
				Message: strings.TrimSpace(rec.buf.String()),
			}})
			return
		}
		body := bytes.TrimSpace(rec.buf.Bytes())
		if len(body) == 0 {
			body = []byte("null")
		}
		if !json.Valid(body) {
			// Legacy plain-text success bodies become JSON strings.
			body, _ = json.Marshal(string(body))
		}
		_ = enc.Encode(Envelope{Data: body})
	})
}

// responseRecorder captures a handler's response for envelope rewriting.
type responseRecorder struct {
	header http.Header
	code   int
	buf    bytes.Buffer
}

func (r *responseRecorder) Header() http.Header { return r.header }

func (r *responseRecorder) WriteHeader(code int) { r.code = code }

func (r *responseRecorder) Write(p []byte) (int, error) { return r.buf.Write(p) }

package observe

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// SwitchRow is one switch's line in the cluster top view.
type SwitchRow struct {
	Host       string `json:"host"`
	DPID       uint64 `json:"dpid"`
	Ports      int    `json:"ports"`
	Rules      int    `json:"rules"`
	RxFrames   uint64 `json:"rxFrames"`
	TxFrames   uint64 `json:"txFrames"`
	Forwarded  uint64 `json:"forwarded"`
	Replicated uint64 `json:"replicated"`
	Dropped    uint64 `json:"dropped"`
}

// WorkerRow is one worker's line in the cluster top view, derived from the
// controller's METRIC_RESP cache.
type WorkerRow struct {
	Topo      string  `json:"topo"`
	Node      string  `json:"node"`
	Worker    uint32  `json:"worker"`
	Host      string  `json:"host"`
	QueueLen  int     `json:"queueLen"`
	Processed uint64  `json:"processed"`
	Emitted   uint64  `json:"emitted"`
	Dropped   uint64  `json:"dropped"`
	ProcSecs  float64 `json:"procSecs"`
	// AgeSecs is how stale this row is (time since the METRIC_RESP).
	AgeSecs float64 `json:"ageSecs"`
}

// TopSnapshot is the live cluster table served at /api/top.
type TopSnapshot struct {
	At       time.Time   `json:"at"`
	Switches []SwitchRow `json:"switches"`
	Workers  []WorkerRow `json:"workers"`
}

// ServerOptions wires the pieces the HTTP endpoint exposes.
type ServerOptions struct {
	// Registry backs /metrics and /api/metrics.
	Registry *Registry
	// Traces backs /api/traces; nil disables the route.
	Traces *TraceLog
	// Top builds the /api/top table; nil disables the route.
	Top func() TopSnapshot
	// Poll, when set, is invoked before Top on /api/top requests — the
	// hook the cluster uses to issue a METRIC_REQ sweep through the
	// control-tuple path so the next scrape is fresh.
	Poll func()
	// Chaos, when non-nil, is mounted at /api/chaos (fault injection
	// over HTTP; GET lists injections, POST applies a fault spec).
	Chaos http.Handler
	// Rescale, when non-nil, is mounted at /api/rescale (POST triggers a
	// managed stable rescale and returns its report).
	Rescale http.Handler
	// ControlPlane, when non-nil, is mounted at /api/controlplane (GET
	// returns controller registrations and per-switch mastership).
	ControlPlane http.Handler
	// EnablePprof adds net/http/pprof under /debug/pprof/.
	EnablePprof bool
}

// Handler assembles the observability HTTP mux:
//
//	/metrics          Prometheus text exposition
//	/api/metrics      the same samples as JSON
//	/api/top          live cluster table (switches + workers)
//	/api/traces?n=N   recent completed tuple-path traces
//	/api/chaos        fault injection (GET log, POST spec)
//	/api/rescale      managed stable rescale (POST topo/node/parallelism)
//	/api/controlplane controller registrations and switch mastership
//	/debug/pprof/*    standard Go profiling endpoints
func Handler(o ServerOptions) http.Handler {
	mux := http.NewServeMux()
	if o.Registry != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = o.Registry.WritePrometheus(w)
		})
		mux.HandleFunc("/api/metrics", func(w http.ResponseWriter, _ *http.Request) {
			writeJSON(w, o.Registry.Snapshot())
		})
	}
	if o.Traces != nil {
		mux.HandleFunc("/api/traces", func(w http.ResponseWriter, r *http.Request) {
			n, _ := strconv.Atoi(r.URL.Query().Get("n"))
			writeJSON(w, o.Traces.Recent(n))
		})
	}
	if o.Top != nil {
		mux.HandleFunc("/api/top", func(w http.ResponseWriter, _ *http.Request) {
			if o.Poll != nil {
				o.Poll()
			}
			writeJSON(w, o.Top())
		})
	}
	if o.Chaos != nil {
		mux.Handle("/api/chaos", o.Chaos)
	}
	if o.Rescale != nil {
		mux.Handle("/api/rescale", o.Rescale)
	}
	if o.ControlPlane != nil {
		mux.Handle("/api/controlplane", o.ControlPlane)
	}
	if o.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

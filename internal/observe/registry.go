// Package observe is Typhoon's cluster-wide observability layer: a live,
// queryable view of a running cluster that the paper's control-plane apps
// (§4) and external tooling share.
//
// It has three parts:
//
//   - A hierarchical metric registry (Registry): every switch, worker
//     agent, worker, coordinator and controller registers counters, gauges
//     and latency histograms keyed by host/node/worker labels. Components
//     with hot-path atomic counters register read-only funcs or collectors,
//     so registration adds no cost to the data path — the registry polls at
//     scrape time.
//
//   - Tuple-path tracing (TraceLog): sampled data-plane frames carry a hop
//     annex (internal/packet trace annex) recording ingress port, flow-rule
//     match, egress/replication and worker dequeue; completed traces land
//     in a ring buffer the live debugger and the HTTP API expose.
//
//   - An HTTP exposition endpoint (Handler): Prometheus text format on
//     /metrics, JSON on /api/*, and net/http/pprof under /debug/pprof/.
//
// The registry deliberately speaks the Prometheus text exposition format
// with nothing but the standard library, mirroring how the prototype's
// METRIC_REQ/RESP control tuples made cross-layer statistics available to
// any consumer.
package observe

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind classifies a metric series for exposition.
type Kind int

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Labels key one series within a metric family; the hierarchy host → node →
// worker is expressed as labels so any level can be aggregated over.
type Labels map[string]string

// canonical renders labels sorted as {k="v",...} (empty for no labels),
// which doubles as the series key and the exposition suffix.
func (l Labels) canonical() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, l[k])
	}
	b.WriteByte('}')
	return b.String()
}

// merged returns a copy of l with overrides applied.
func (l Labels) merged(over Labels) Labels {
	out := make(Labels, len(l)+len(over))
	for k, v := range l {
		out[k] = v
	}
	for k, v := range over {
		out[k] = v
	}
	return out
}

// Counter is a monotonically increasing metric owned by the registry.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increments by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous metric owned by the registry.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Sample is one scraped series value.
type Sample struct {
	// Name is the metric family name (e.g. typhoon_switch_tx_frames_total).
	Name string `json:"name"`
	// Kind is the family's exposition type.
	Kind Kind `json:"-"`
	// Help is the family's one-line description.
	Help string `json:"-"`
	// Labels key the series within the family.
	Labels Labels `json:"labels,omitempty"`
	// Value is the sample value (counters and gauges).
	Value float64 `json:"value"`
	// Hist is non-nil for histogram samples.
	Hist *HistogramSnapshot `json:"hist,omitempty"`
}

// series is one registered metric instance.
type series struct {
	name   string
	kind   Kind
	help   string
	labels Labels
	key    string // labels.canonical()

	read  func() float64 // counter / gauge value at scrape time
	hist  *Histogram     // histogram state (read is nil)
	owned any            // registry-owned *Counter / *Gauge, if any
}

// Registry is a concurrency-safe metric registry. All registration methods
// are idempotent for an identical (name, labels) pair: re-registering
// returns the existing instrument, so restarted components reattach to
// their series instead of erroring.
type Registry struct {
	mu         sync.RWMutex
	families   map[string]*family
	collectors []func(emit func(Sample))
}

type family struct {
	kind   Kind
	help   string
	series map[string]*series
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) register(name string, kind Kind, help string, labels Labels) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{kind: kind, help: help, series: make(map[string]*series)}
		r.families[name] = f
	}
	key := labels.canonical()
	s := f.series[key]
	if s == nil {
		s = &series{name: name, kind: kind, help: help, labels: labels.merged(nil), key: key}
		f.series[key] = s
	}
	return s
}

// Counter registers (or retrieves) a counter series.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	s := r.register(name, KindCounter, help, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.read == nil {
		c := &Counter{}
		s.read = func() float64 { return float64(c.Value()) }
		s.hist = nil
		s.owned = c
	}
	c, _ := s.owned.(*Counter)
	return c
}

// CounterFunc registers a counter series whose value is read from fn at
// scrape time — the zero-hot-path-cost pattern for components that already
// maintain atomic counters.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() uint64) {
	s := r.register(name, KindCounter, help, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s.read = func() float64 { return float64(fn()) }
}

// Gauge registers (or retrieves) a settable gauge series.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	s := r.register(name, KindGauge, help, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.read == nil {
		g := &Gauge{}
		s.read = g.Value
		s.owned = g
	}
	g, _ := s.owned.(*Gauge)
	return g
}

// GaugeFunc registers a gauge series read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	s := r.register(name, KindGauge, help, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s.read = fn
}

// Histogram registers (or retrieves) a histogram series with the given
// bucket upper bounds; nil buckets selects DefLatencyBuckets.
func (r *Registry) Histogram(name, help string, labels Labels, buckets []float64) *Histogram {
	s := r.register(name, KindHistogram, help, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.hist == nil {
		s.hist = newHistogram(buckets)
		s.read = nil
	}
	return s.hist
}

// AddCollector installs a scrape-time callback that emits samples for
// series whose population is dynamic (per-port counters of a switch whose
// ports come and go, per-worker stats from the controller's METRIC_RESP
// cache). Collectors run on every scrape, after registered series.
func (r *Registry) AddCollector(fn func(emit func(Sample))) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// Unregister removes one series; removing the last series of a family
// removes the family. It is how agents retire per-worker series when a
// worker is killed or rescheduled away.
func (r *Registry) Unregister(name string, labels Labels) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		return
	}
	delete(f.series, labels.canonical())
	if len(f.series) == 0 {
		delete(r.families, name)
	}
}

// Snapshot scrapes every registered series and collector into a flat,
// deterministically ordered sample list.
func (r *Registry) Snapshot() []Sample {
	r.mu.RLock()
	var out []Sample
	for name, f := range r.families {
		for _, s := range f.series {
			smp := Sample{Name: name, Kind: f.kind, Help: f.help, Labels: s.labels}
			if s.hist != nil {
				h := s.hist.Snapshot()
				smp.Hist = &h
			} else if s.read != nil {
				smp.Value = s.read()
			}
			out = append(out, smp)
		}
	}
	collectors := make([]func(emit func(Sample)), len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.RUnlock()
	for _, c := range collectors {
		c(func(s Sample) { out = append(out, s) })
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Labels.canonical() < out[j].Labels.canonical()
	})
	return out
}

// WritePrometheus writes the registry contents in the Prometheus text
// exposition format (version 0.0.4), deterministically ordered.
func (r *Registry) WritePrometheus(w io.Writer) error {
	samples := r.Snapshot()
	var lastName string
	for _, s := range samples {
		if s.Name != lastName {
			if s.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.Name, s.Help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind); err != nil {
				return err
			}
			lastName = s.Name
		}
		if s.Hist != nil {
			if err := writeHistogram(w, s); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", s.Name, s.Labels.canonical(), formatValue(s.Value)); err != nil {
			return err
		}
	}
	return nil
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

func writeHistogram(w io.Writer, s Sample) error {
	h := s.Hist
	cum := uint64(0)
	for i, ub := range h.Buckets {
		cum += h.Counts[i]
		ls := s.Labels.merged(Labels{"le": formatValue(ub)})
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.Name, ls.canonical(), cum); err != nil {
			return err
		}
	}
	inf := s.Labels.merged(Labels{"le": "+Inf"})
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.Name, inf.canonical(), h.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", s.Name, s.Labels.canonical(), formatValue(h.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", s.Name, s.Labels.canonical(), h.Count)
	return err
}

// Scope is a registry view with fixed base labels, so a component can
// register its series without repeating its position in the hierarchy.
type Scope struct {
	r    *Registry
	base Labels
}

// With returns a scoped view of the registry adding base to every
// registration made through it.
func (r *Registry) With(base Labels) *Scope { return &Scope{r: r, base: base.merged(nil)} }

// Counter registers a counter under the scope's base labels.
func (s *Scope) Counter(name, help string, labels Labels) *Counter {
	return s.r.Counter(name, help, s.base.merged(labels))
}

// CounterFunc registers a func-backed counter under the base labels.
func (s *Scope) CounterFunc(name, help string, labels Labels, fn func() uint64) {
	s.r.CounterFunc(name, help, s.base.merged(labels), fn)
}

// Gauge registers a gauge under the base labels.
func (s *Scope) Gauge(name, help string, labels Labels) *Gauge {
	return s.r.Gauge(name, help, s.base.merged(labels))
}

// GaugeFunc registers a func-backed gauge under the base labels.
func (s *Scope) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	s.r.GaugeFunc(name, help, s.base.merged(labels), fn)
}

// Histogram registers a histogram under the base labels.
func (s *Scope) Histogram(name, help string, labels Labels, buckets []float64) *Histogram {
	return s.r.Histogram(name, help, s.base.merged(labels), buckets)
}

// Registry returns the underlying registry.
func (s *Scope) Registry() *Registry { return s.r }

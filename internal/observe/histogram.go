package observe

import (
	"sync"
)

// DefLatencyBuckets are the default histogram bounds in seconds, tuned for
// intra-cluster tuple latencies (tens of microseconds) up to control-plane
// round trips (seconds).
var DefLatencyBuckets = []float64{
	0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5,
}

// Histogram is a fixed-bucket latency/size distribution. Unlike
// metrics.Latencies (reservoir sampling for offline CDF extraction), a
// Histogram is mergeable and scrape-friendly: constant memory, cumulative
// bucket exposition.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // upper bounds, ascending
	counts []uint64  // per-bucket (non-cumulative) counts
	sum    float64
	count  uint64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]uint64, len(b))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sum += v
	h.count++
	for i, ub := range h.bounds {
		if v <= ub {
			h.counts[i]++
			return
		}
	}
	// Beyond the last bound: only +Inf (the total count) covers it.
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	// Buckets are the upper bounds.
	Buckets []float64 `json:"buckets"`
	// Counts are per-bucket (non-cumulative) observation counts.
	Counts []uint64 `json:"counts"`
	// Sum is the sum of all observed values.
	Sum float64 `json:"sum"`
	// Count is the total number of observations.
	Count uint64 `json:"count"`
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Buckets: append([]float64(nil), h.bounds...),
		Counts:  append([]uint64(nil), h.counts...),
		Sum:     h.sum,
		Count:   h.count,
	}
	return s
}

package observe

import (
	"sync"
	"sync/atomic"
	"time"

	"typhoon/internal/packet"
)

// DefaultTraceEvery is the default frame sampling period: one in every
// DefaultTraceEvery data frames a worker emits carries a trace annex.
const DefaultTraceEvery = 256

// Sampler makes the per-frame trace sampling decision. It is shared by all
// transports of a host (or cluster) so the sampled rate is global, and is
// safe for concurrent use.
type Sampler struct {
	every uint64
	n     atomic.Uint64
	next  atomic.Uint64 // trace ID allocator
}

// NewSampler builds a sampler tracing one frame in every. every <= 0
// disables sampling entirely (Sample always returns false).
func NewSampler(every int) *Sampler {
	if every <= 0 {
		return &Sampler{}
	}
	return &Sampler{every: uint64(every)}
}

// Sample reports whether the next frame should carry a trace annex and, if
// so, allocates its trace ID.
func (s *Sampler) Sample() (uint64, bool) {
	if s == nil || s.every == 0 {
		return 0, false
	}
	if s.n.Add(1)%s.every != 0 {
		return 0, false
	}
	return s.next.Add(1), true
}

// TraceRecord is one completed tuple-path trace.
type TraceRecord struct {
	// ID is the trace ID allocated at the sampled emission.
	ID uint64 `json:"id"`
	// Hops are the recorded path stages in traversal order.
	Hops []packet.TraceHop `json:"hops"`
	// CompletedAt is when the receiving worker dequeued the frame.
	CompletedAt time.Time `json:"completedAt"`
}

// E2ESeconds returns the emit-to-dequeue wall-clock span of the trace, or
// zero when either endpoint hop is missing.
func (t TraceRecord) E2ESeconds() float64 {
	var first, last int64
	for _, h := range t.Hops {
		if h.Kind == packet.HopEmit && first == 0 {
			first = h.At
		}
		if h.Kind == packet.HopDequeue {
			last = h.At
		}
	}
	if first == 0 || last == 0 || last < first {
		return 0
	}
	return time.Duration(last - first).Seconds()
}

// TraceLog is a bounded ring of completed traces — the live-debugger's and
// the HTTP API's window into the data plane's recent behaviour.
type TraceLog struct {
	mu    sync.Mutex
	buf   []TraceRecord
	next  int
	total uint64

	e2e *Histogram // optional: registered by the cluster assembly
}

// DefaultTraceLogCapacity bounds the retained trace window.
const DefaultTraceLogCapacity = 512

// NewTraceLog builds a trace ring; capacity <= 0 selects
// DefaultTraceLogCapacity.
func NewTraceLog(capacity int) *TraceLog {
	if capacity <= 0 {
		capacity = DefaultTraceLogCapacity
	}
	return &TraceLog{buf: make([]TraceRecord, 0, capacity)}
}

// SetLatencyHistogram attaches a histogram that every completed trace's
// emit-to-dequeue span is observed into.
func (l *TraceLog) SetLatencyHistogram(h *Histogram) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.e2e = h
}

// Record stores one completed trace annex. It is the sink receiving-side
// transports call after appending their dequeue hop.
func (l *TraceLog) Record(a packet.TraceAnnex) {
	rec := TraceRecord{ID: a.ID, Hops: a.Hops, CompletedAt: time.Now()}
	l.mu.Lock()
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, rec)
	} else {
		l.buf[l.next] = rec
		l.next = (l.next + 1) % cap(l.buf)
	}
	l.total++
	h := l.e2e
	l.mu.Unlock()
	if h != nil {
		if s := rec.E2ESeconds(); s > 0 {
			h.Observe(s)
		}
	}
}

// Total reports how many traces were ever recorded (including evicted).
func (l *TraceLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Recent returns up to n traces, most recent first. n <= 0 returns all
// retained traces.
func (l *TraceLog) Recent(n int) []TraceRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	size := len(l.buf)
	if size == 0 {
		return nil
	}
	if n <= 0 || n > size {
		n = size
	}
	start := 0 // oldest slot; l.next once the ring has wrapped
	if size == cap(l.buf) {
		start = l.next
	}
	out := make([]TraceRecord, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, l.buf[(start+size-1-i)%size])
	}
	return out
}

// Package kafkasim is the partitioned, replayable message log the Yahoo
// streaming benchmark (§6.2, Fig 13) consumes from — the role Apache Kafka
// plays in the paper's testbed. Producers append to partitions; consumers
// track per-partition offsets independently, so the same log can feed both
// the Typhoon and baseline pipelines identically.
package kafkasim

import (
	"fmt"
	"sync"
)

// Log is an append-only partitioned message log.
type Log struct {
	mu         sync.RWMutex
	partitions [][][]byte
	next       int
}

// New builds a log with the given partition count.
func New(partitions int) *Log {
	if partitions < 1 {
		partitions = 1
	}
	return &Log{partitions: make([][][]byte, partitions)}
}

// Partitions returns the partition count.
func (l *Log) Partitions() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.partitions)
}

// Append adds one record to a partition.
func (l *Log) Append(partition int, value []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if partition < 0 || partition >= len(l.partitions) {
		return fmt.Errorf("kafkasim: partition %d out of range", partition)
	}
	l.partitions[partition] = append(l.partitions[partition], value)
	return nil
}

// Produce adds one record, spreading across partitions round robin.
func (l *Log) Produce(value []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	p := l.next % len(l.partitions)
	l.next++
	l.partitions[p] = append(l.partitions[p], value)
}

// Len reports the total number of records.
func (l *Log) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	n := 0
	for _, p := range l.partitions {
		n += len(p)
	}
	return n
}

// Consumer reads a subset of partitions with its own offsets.
type Consumer struct {
	log        *Log
	partitions []int
	offsets    map[int]int
}

// NewConsumer builds a consumer over the given partitions; empty means all.
func (l *Log) NewConsumer(partitions ...int) *Consumer {
	if len(partitions) == 0 {
		for i := 0; i < l.Partitions(); i++ {
			partitions = append(partitions, i)
		}
	}
	return &Consumer{log: l, partitions: partitions, offsets: make(map[int]int)}
}

// Poll returns up to max records across the consumer's partitions,
// advancing offsets.
func (c *Consumer) Poll(max int) [][]byte {
	if max <= 0 {
		max = 64
	}
	var out [][]byte
	c.log.mu.RLock()
	defer c.log.mu.RUnlock()
	for _, p := range c.partitions {
		if p < 0 || p >= len(c.log.partitions) {
			continue
		}
		part := c.log.partitions[p]
		off := c.offsets[p]
		for off < len(part) && len(out) < max {
			out = append(out, part[off])
			off++
		}
		c.offsets[p] = off
		if len(out) >= max {
			break
		}
	}
	return out
}

// Lag reports records not yet consumed.
func (c *Consumer) Lag() int {
	c.log.mu.RLock()
	defer c.log.mu.RUnlock()
	lag := 0
	for _, p := range c.partitions {
		if p >= 0 && p < len(c.log.partitions) {
			lag += len(c.log.partitions[p]) - c.offsets[p]
		}
	}
	return lag
}

// Rewind resets the consumer's offsets to the beginning.
func (c *Consumer) Rewind() {
	for p := range c.offsets {
		c.offsets[p] = 0
	}
}

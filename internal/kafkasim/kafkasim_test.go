package kafkasim

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestAppendPoll(t *testing.T) {
	l := New(2)
	if l.Partitions() != 2 {
		t.Fatalf("partitions = %d", l.Partitions())
	}
	if err := l.Append(0, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(5, []byte("x")); err == nil {
		t.Fatal("out-of-range partition accepted")
	}
	c := l.NewConsumer()
	got := c.Poll(10)
	if len(got) != 2 {
		t.Fatalf("polled %d", len(got))
	}
	if len(c.Poll(10)) != 0 {
		t.Fatal("re-polled consumed records")
	}
}

func TestProduceRoundRobin(t *testing.T) {
	l := New(3)
	for i := 0; i < 9; i++ {
		l.Produce([]byte{byte(i)})
	}
	if l.Len() != 9 {
		t.Fatalf("len = %d", l.Len())
	}
	for p := 0; p < 3; p++ {
		c := l.NewConsumer(p)
		if got := c.Poll(100); len(got) != 3 {
			t.Fatalf("partition %d has %d records", p, len(got))
		}
	}
}

func TestIndependentConsumers(t *testing.T) {
	l := New(1)
	l.Produce([]byte("x"))
	c1, c2 := l.NewConsumer(), l.NewConsumer()
	if len(c1.Poll(1)) != 1 || len(c2.Poll(1)) != 1 {
		t.Fatal("consumers must have independent offsets")
	}
}

func TestLagAndRewind(t *testing.T) {
	l := New(1)
	for i := 0; i < 5; i++ {
		l.Produce([]byte{byte(i)})
	}
	c := l.NewConsumer()
	if c.Lag() != 5 {
		t.Fatalf("lag = %d", c.Lag())
	}
	c.Poll(3)
	if c.Lag() != 2 {
		t.Fatalf("lag after poll = %d", c.Lag())
	}
	c.Rewind()
	if c.Lag() != 5 {
		t.Fatalf("lag after rewind = %d", c.Lag())
	}
}

func TestPollBatchLimit(t *testing.T) {
	l := New(1)
	for i := 0; i < 100; i++ {
		l.Produce([]byte{1})
	}
	c := l.NewConsumer()
	if got := c.Poll(0); len(got) != 64 { // default batch
		t.Fatalf("default poll = %d", len(got))
	}
}

func TestPropertyNothingLostNothingDuplicated(t *testing.T) {
	f := func(parts uint8, n uint8) bool {
		l := New(int(parts%4) + 1)
		for i := 0; i < int(n); i++ {
			l.Produce([]byte(fmt.Sprintf("%d", i)))
		}
		c := l.NewConsumer()
		seen := map[string]bool{}
		for {
			batch := c.Poll(7)
			if len(batch) == 0 {
				break
			}
			for _, r := range batch {
				if seen[string(r)] {
					return false // duplicate
				}
				seen[string(r)] = true
			}
		}
		return len(seen) == int(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Package kvstore is the in-memory key-value store the Yahoo streaming
// benchmark's join and aggregation workers use (§6.2, Fig 13) — the role
// Redis plays in the paper's testbed. It supports plain keys, hashes and
// atomic counters, which is the subset the benchmark touches.
package kvstore

import (
	"sort"
	"strings"
	"sync"
)

// Store is a concurrency-safe in-memory KV store.
type Store struct {
	mu     sync.RWMutex
	keys   map[string]string
	hashes map[string]map[string]string
	counts map[string]int64

	ops uint64
}

// New builds an empty store.
func New() *Store {
	return &Store{
		keys:   make(map[string]string),
		hashes: make(map[string]map[string]string),
		counts: make(map[string]int64),
	}
}

// Set stores a string value.
func (s *Store) Set(key, value string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ops++
	s.keys[key] = value
}

// Get fetches a string value.
func (s *Store) Get(key string) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.keys[key]
	return v, ok
}

// Del removes a key from all families.
func (s *Store) Del(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ops++
	delete(s.keys, key)
	delete(s.hashes, key)
	delete(s.counts, key)
}

// HSet stores a hash field.
func (s *Store) HSet(key, field, value string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ops++
	h := s.hashes[key]
	if h == nil {
		h = make(map[string]string)
		s.hashes[key] = h
	}
	h[field] = value
}

// HGet fetches a hash field.
func (s *Store) HGet(key, field string) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.hashes[key][field]
	return v, ok
}

// HGetAll copies a hash.
func (s *Store) HGetAll(key string) map[string]string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]string, len(s.hashes[key]))
	for f, v := range s.hashes[key] {
		out[f] = v
	}
	return out
}

// Incr atomically adds delta to a counter and returns the new value.
func (s *Store) Incr(key string, delta int64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ops++
	s.counts[key] += delta
	return s.counts[key]
}

// Counter reads a counter.
func (s *Store) Counter(key string) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.counts[key]
}

// Keys lists keys with the given prefix across all families, sorted.
func (s *Store) Keys(prefix string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seen := make(map[string]bool)
	for k := range s.keys {
		if strings.HasPrefix(k, prefix) {
			seen[k] = true
		}
	}
	for k := range s.hashes {
		if strings.HasPrefix(k, prefix) {
			seen[k] = true
		}
	}
	for k := range s.counts {
		if strings.HasPrefix(k, prefix) {
			seen[k] = true
		}
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Ops reports the number of mutating operations served.
func (s *Store) Ops() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ops
}

// SumCounters sums all counters with the given prefix.
func (s *Store) SumCounters(prefix string) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var sum int64
	for k, v := range s.counts {
		if strings.HasPrefix(k, prefix) {
			sum += v
		}
	}
	return sum
}

package kvstore

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func TestSetGetDel(t *testing.T) {
	s := New()
	if _, ok := s.Get("missing"); ok {
		t.Fatal("missing key found")
	}
	s.Set("k", "v")
	if v, ok := s.Get("k"); !ok || v != "v" {
		t.Fatalf("get = %q %v", v, ok)
	}
	s.Del("k")
	if _, ok := s.Get("k"); ok {
		t.Fatal("deleted key found")
	}
}

func TestHashes(t *testing.T) {
	s := New()
	s.HSet("h", "f1", "a")
	s.HSet("h", "f2", "b")
	if v, ok := s.HGet("h", "f1"); !ok || v != "a" {
		t.Fatalf("hget = %q %v", v, ok)
	}
	if _, ok := s.HGet("h", "nope"); ok {
		t.Fatal("missing field found")
	}
	all := s.HGetAll("h")
	if !reflect.DeepEqual(all, map[string]string{"f1": "a", "f2": "b"}) {
		t.Fatalf("hgetall = %v", all)
	}
	s.Del("h")
	if len(s.HGetAll("h")) != 0 {
		t.Fatal("hash survived delete")
	}
}

func TestCounters(t *testing.T) {
	s := New()
	if s.Incr("c", 5) != 5 {
		t.Fatal("incr")
	}
	if s.Incr("c", -2) != 3 {
		t.Fatal("negative incr")
	}
	if s.Counter("c") != 3 {
		t.Fatal("counter read")
	}
	s.Incr("window:a", 1)
	s.Incr("window:b", 2)
	if s.SumCounters("window:") != 3 {
		t.Fatalf("sum = %d", s.SumCounters("window:"))
	}
}

func TestKeysPrefix(t *testing.T) {
	s := New()
	s.Set("ad:1", "x")
	s.HSet("ad:2", "f", "y")
	s.Incr("ad:3", 1)
	s.Set("other", "z")
	keys := s.Keys("ad:")
	if !reflect.DeepEqual(keys, []string{"ad:1", "ad:2", "ad:3"}) {
		t.Fatalf("keys = %v", keys)
	}
}

func TestOpsCounting(t *testing.T) {
	s := New()
	s.Set("a", "1")
	s.HSet("h", "f", "1")
	s.Incr("c", 1)
	s.Del("a")
	if s.Ops() != 4 {
		t.Fatalf("ops = %d", s.Ops())
	}
}

func TestConcurrentIncr(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				s.Incr(fmt.Sprintf("c%d", n%2), 1)
			}
		}(i)
	}
	wg.Wait()
	if s.Counter("c0")+s.Counter("c1") != 8000 {
		t.Fatalf("total = %d", s.Counter("c0")+s.Counter("c1"))
	}
}

// Package metrics provides the measurement primitives the evaluation
// harness and the worker statistics reporter share: counters, windowed
// throughput timelines, and latency distributions with CDF extraction
// (Figs 8, 10-12 and 14 are all built from these).
package metrics

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Timeline buckets event counts into fixed intervals from a start time,
// producing the per-second throughput series plotted in Figs 10-12 and 14.
// The bucket array is bounded by MaxBuckets: a single sample with a far-
// future timestamp (a clock jump, a stray frame) can no longer allocate
// gigabytes of empty buckets.
type Timeline struct {
	start    time.Time
	interval time.Duration
	max      int

	mu      sync.Mutex
	buckets []float64
	dropped uint64
}

// MaxBuckets is the default cap on a timeline's bucket count — one week of
// one-second buckets, far beyond any experiment run.
const MaxBuckets = 7 * 24 * 3600

// NewTimeline builds a timeline starting at start with the given bucket
// width; interval <= 0 selects one second. The bucket count is capped at
// MaxBuckets; use NewTimelineCapped for a custom cap.
func NewTimeline(start time.Time, interval time.Duration) *Timeline {
	return NewTimelineCapped(start, interval, 0)
}

// NewTimelineCapped builds a timeline holding at most maxBuckets buckets;
// maxBuckets <= 0 selects MaxBuckets.
func NewTimelineCapped(start time.Time, interval time.Duration, maxBuckets int) *Timeline {
	if interval <= 0 {
		interval = time.Second
	}
	if maxBuckets <= 0 {
		maxBuckets = MaxBuckets
	}
	return &Timeline{start: start, interval: interval, max: maxBuckets}
}

// Add records v at time t; times before start are clamped to bucket 0, and
// samples beyond the bucket cap are counted in Dropped instead of growing
// the array.
func (tl *Timeline) Add(t time.Time, v float64) {
	idx := int(t.Sub(tl.start) / tl.interval)
	if idx < 0 {
		idx = 0
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	if idx >= tl.max {
		tl.dropped++
		return
	}
	for len(tl.buckets) <= idx {
		tl.buckets = append(tl.buckets, 0)
	}
	tl.buckets[idx] += v
}

// Dropped reports samples rejected for falling beyond the bucket cap.
func (tl *Timeline) Dropped() uint64 {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return tl.dropped
}

// Series returns a copy of the bucket values.
func (tl *Timeline) Series() []float64 {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	out := make([]float64, len(tl.buckets))
	copy(out, tl.buckets)
	return out
}

// Rates converts bucket counts into per-second rates.
func (tl *Timeline) Rates() []float64 {
	s := tl.Series()
	perSec := float64(time.Second) / float64(tl.interval)
	for i := range s {
		s[i] *= perSec
	}
	return s
}

// Interval returns the bucket width.
func (tl *Timeline) Interval() time.Duration { return tl.interval }

// Start returns the timeline origin.
func (tl *Timeline) Start() time.Time { return tl.start }

// Latencies collects duration samples with reservoir sampling so memory
// stays bounded under multi-million-tuple runs, and extracts quantiles and
// CDFs (Figs 8c/8d).
type Latencies struct {
	mu      sync.Mutex
	samples []time.Duration
	seen    uint64
	maxKeep int
	rng     *rand.Rand
}

// NewLatencies builds a recorder keeping at most maxKeep samples;
// maxKeep <= 0 selects 100000.
func NewLatencies(maxKeep int) *Latencies {
	if maxKeep <= 0 {
		maxKeep = 100000
	}
	return &Latencies{maxKeep: maxKeep, rng: rand.New(rand.NewSource(42))}
}

// Record adds one sample.
func (l *Latencies) Record(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seen++
	if len(l.samples) < l.maxKeep {
		l.samples = append(l.samples, d)
		return
	}
	// Reservoir: replace a random slot with probability maxKeep/seen.
	if idx := l.rng.Uint64() % l.seen; idx < uint64(l.maxKeep) {
		l.samples[idx] = d
	}
}

// Count returns the number of recorded samples (including evicted ones).
func (l *Latencies) Count() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seen
}

// Quantile returns the q-quantile (0..1) of the retained samples, or zero
// when empty.
func (l *Latencies) Quantile(q float64) time.Duration {
	s := l.sorted()
	if len(s) == 0 {
		return 0
	}
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	return s[int(q*float64(len(s)-1)+0.5)]
}

// Mean returns the average of retained samples.
func (l *Latencies) Mean() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range l.samples {
		sum += d
	}
	return sum / time.Duration(len(l.samples))
}

// CDFPoint is one (latency, cumulative fraction) pair.
type CDFPoint struct {
	Latency  time.Duration
	Fraction float64
}

// CDF returns up to points evenly spaced CDF points.
func (l *Latencies) CDF(points int) []CDFPoint {
	s := l.sorted()
	if len(s) == 0 {
		return nil
	}
	if points <= 0 || points > len(s) {
		points = len(s)
	}
	out := make([]CDFPoint, 0, points)
	for i := 1; i <= points; i++ {
		frac := float64(i) / float64(points)
		idx := int(frac*float64(len(s))) - 1
		if idx < 0 {
			idx = 0
		}
		out = append(out, CDFPoint{Latency: s[idx], Fraction: frac})
	}
	return out
}

func (l *Latencies) sorted() []time.Duration {
	l.mu.Lock()
	s := make([]time.Duration, len(l.samples))
	copy(s, l.samples)
	l.mu.Unlock()
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s
}

package metrics

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("value = %d", c.Value())
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8010 {
		t.Fatalf("concurrent value = %d", c.Value())
	}
}

func TestTimelineBucketing(t *testing.T) {
	start := time.Unix(1000, 0)
	tl := NewTimeline(start, time.Second)
	tl.Add(start, 1)
	tl.Add(start.Add(500*time.Millisecond), 2)
	tl.Add(start.Add(2*time.Second), 5)
	tl.Add(start.Add(-time.Hour), 100) // clamped to bucket 0
	s := tl.Series()
	if len(s) != 3 || s[0] != 103 || s[1] != 0 || s[2] != 5 {
		t.Fatalf("series = %v", s)
	}
	if tl.Interval() != time.Second || !tl.Start().Equal(start) {
		t.Fatal("accessors")
	}
}

func TestTimelineRates(t *testing.T) {
	start := time.Unix(0, 0)
	tl := NewTimeline(start, 100*time.Millisecond)
	tl.Add(start, 10)
	r := tl.Rates()
	if len(r) != 1 || r[0] != 100 { // 10 per 100ms = 100/s
		t.Fatalf("rates = %v", r)
	}
	if NewTimeline(start, 0).Interval() != time.Second {
		t.Fatal("default interval")
	}
}

// TestTimelineBucketCap pins the fix for unbounded bucket growth: one
// far-future sample must not allocate buckets out to its index.
func TestTimelineBucketCap(t *testing.T) {
	start := time.Unix(1000, 0)
	tl := NewTimelineCapped(start, time.Second, 10)
	tl.Add(start.Add(5*time.Second), 1)
	tl.Add(start.Add(1000*time.Hour), 7) // beyond the cap: dropped
	tl.Add(start.Add(9*time.Second), 2)  // last valid bucket
	tl.Add(start.Add(10*time.Second), 3) // first invalid bucket
	s := tl.Series()
	if len(s) != 10 {
		t.Fatalf("retained %d buckets, want 10", len(s))
	}
	if s[5] != 1 || s[9] != 2 {
		t.Fatalf("series = %v", s)
	}
	if tl.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tl.Dropped())
	}
	// Default constructor gets the week-long default cap.
	def := NewTimeline(start, time.Second)
	def.Add(start.Add(1000000*time.Hour), 1)
	if got := len(def.Series()); got != 0 {
		t.Fatalf("default timeline grew %d buckets from one far-future sample", got)
	}
	if def.Dropped() != 1 {
		t.Fatalf("default dropped = %d", def.Dropped())
	}
}

func TestLatenciesQuantiles(t *testing.T) {
	l := NewLatencies(0)
	for i := 1; i <= 100; i++ {
		l.Record(time.Duration(i) * time.Millisecond)
	}
	if l.Count() != 100 {
		t.Fatalf("count = %d", l.Count())
	}
	if q := l.Quantile(0.5); q < 45*time.Millisecond || q > 55*time.Millisecond {
		t.Fatalf("p50 = %v", q)
	}
	if l.Quantile(0) != time.Millisecond {
		t.Fatalf("p0 = %v", l.Quantile(0))
	}
	if l.Quantile(1) != 100*time.Millisecond {
		t.Fatalf("p100 = %v", l.Quantile(1))
	}
	if m := l.Mean(); m < 49*time.Millisecond || m > 52*time.Millisecond {
		t.Fatalf("mean = %v", m)
	}
}

func TestLatenciesEmpty(t *testing.T) {
	l := NewLatencies(10)
	if l.Quantile(0.5) != 0 || l.Mean() != 0 || l.CDF(5) != nil {
		t.Fatal("empty recorder should return zeros")
	}
}

func TestLatenciesReservoirBounded(t *testing.T) {
	l := NewLatencies(100)
	for i := 0; i < 10000; i++ {
		l.Record(time.Duration(i))
	}
	if l.Count() != 10000 {
		t.Fatalf("count = %d", l.Count())
	}
	l.mu.Lock()
	n := len(l.samples)
	l.mu.Unlock()
	if n != 100 {
		t.Fatalf("retained %d samples", n)
	}
}

func TestCDFMonotonic(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		l := NewLatencies(0)
		for _, v := range raw {
			l.Record(time.Duration(v) * time.Microsecond)
		}
		cdf := l.CDF(10)
		for i := 1; i < len(cdf); i++ {
			if cdf[i].Latency < cdf[i-1].Latency || cdf[i].Fraction <= cdf[i-1].Fraction {
				return false
			}
		}
		return len(cdf) > 0 && cdf[len(cdf)-1].Fraction == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentTimelineAndLatencies(t *testing.T) {
	tl := NewTimeline(time.Now(), 10*time.Millisecond)
	l := NewLatencies(1000)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				tl.Add(time.Now(), 1)
				l.Record(time.Duration(j))
			}
		}()
	}
	wg.Wait()
	var sum float64
	for _, v := range tl.Series() {
		sum += v
	}
	if sum != 2000 {
		t.Fatalf("timeline sum = %v", sum)
	}
	if l.Count() != 2000 {
		t.Fatalf("latency count = %d", l.Count())
	}
}

// Package openflow implements the control-plane wire protocol spoken
// between the Typhoon SDN controller and the software SDN switches.
//
// It is a compact OpenFlow-style protocol covering exactly the message set
// the paper's prototype uses (§3.4, Table 3): HELLO/ECHO handshake and
// keepalive, FEATURES discovery, FLOW_MOD rule programming with idle
// timeouts, GROUP_MOD select groups for SDN-level load balancing, PACKET_OUT
// control-tuple injection, PACKET_IN worker-to-controller delivery,
// PORT_STATUS events for fault detection, and PORT/FLOW statistics.
//
// Messages are framed as: version(1) type(1) pad(2) length(4, big endian,
// full message) xid(4). All multi-byte integers are big endian, as in
// OpenFlow (the length field is widened to 32 bits so large statistics
// replies are not artificially capped).
package openflow

import (
	"errors"
	"fmt"

	"typhoon/internal/packet"
)

// Version is the protocol version byte carried in every header.
const Version = 0x01

// HeaderLen is the fixed message header size.
const HeaderLen = 12

// MaxMessageLen bounds a single message (a PacketOut carries at most one
// data-plane frame plus headers).
const MaxMessageLen = 1 << 20

// MsgType enumerates message types.
type MsgType uint8

// Protocol message types.
const (
	TypeHello MsgType = iota + 1
	TypeError
	TypeEchoRequest
	TypeEchoReply
	TypeFeaturesRequest
	TypeFeaturesReply
	TypeFlowMod
	TypeFlowRemoved
	TypeGroupMod
	TypePacketOut
	TypePacketIn
	TypePortStatus
	TypeStatsRequest
	TypeStatsReply
	TypeRoleRequest
	TypeMeterMod
)

func (t MsgType) String() string {
	switch t {
	case TypeHello:
		return "HELLO"
	case TypeError:
		return "ERROR"
	case TypeEchoRequest:
		return "ECHO_REQUEST"
	case TypeEchoReply:
		return "ECHO_REPLY"
	case TypeFeaturesRequest:
		return "FEATURES_REQUEST"
	case TypeFeaturesReply:
		return "FEATURES_REPLY"
	case TypeFlowMod:
		return "FLOW_MOD"
	case TypeFlowRemoved:
		return "FLOW_REMOVED"
	case TypeGroupMod:
		return "GROUP_MOD"
	case TypePacketOut:
		return "PACKET_OUT"
	case TypePacketIn:
		return "PACKET_IN"
	case TypePortStatus:
		return "PORT_STATUS"
	case TypeStatsRequest:
		return "STATS_REQUEST"
	case TypeStatsReply:
		return "STATS_REPLY"
	case TypeRoleRequest:
		return "ROLE_REQUEST"
	case TypeMeterMod:
		return "METER_MOD"
	default:
		return fmt.Sprintf("TYPE(%d)", uint8(t))
	}
}

// Reserved port numbers.
const (
	// PortController directs frames to the SDN controller (PACKET_IN), and
	// marks controller-injected frames as in_port in PACKET_OUT rules.
	PortController uint32 = 0xFFFFFFFD
	// PortAny matches any port in deletions and stats requests.
	PortAny uint32 = 0xFFFFFFFF
)

// Errors shared by encode/decode.
var (
	ErrTruncated  = errors.New("openflow: truncated message")
	ErrBadVersion = errors.New("openflow: bad protocol version")
	ErrBadType    = errors.New("openflow: unknown message type")
	ErrTooLarge   = errors.New("openflow: message exceeds maximum size")
)

// Message is any protocol message body.
type Message interface {
	// MsgType identifies the concrete message.
	MsgType() MsgType
	// appendBody appends the encoded body (everything after the header).
	appendBody(dst []byte) []byte
}

// FieldSet is a bitmask of populated Match fields; unset fields wildcard.
type FieldSet uint8

// Match field bits.
const (
	FieldInPort FieldSet = 1 << iota
	FieldDlSrc
	FieldDlDst
	FieldEtherType
)

// FieldAll is every match field: the mask of a fully-specified match.
const FieldAll = FieldInPort | FieldDlSrc | FieldDlDst | FieldEtherType

// Has reports whether all bits in f are present.
func (s FieldSet) Has(f FieldSet) bool { return s&f == f }

// String renders the mask like ovs-ofctl wildcard output.
func (s FieldSet) String() string {
	if s == 0 {
		return "any"
	}
	out := ""
	for _, f := range []struct {
		bit  FieldSet
		name string
	}{
		{FieldInPort, "in_port"},
		{FieldDlSrc, "dl_src"},
		{FieldDlDst, "dl_dst"},
		{FieldEtherType, "eth_type"},
	} {
		if s.Has(f.bit) {
			if out != "" {
				out += "|"
			}
			out += f.name
		}
	}
	return out
}

// Match selects frames by ingress port, addresses and EtherType, the exact
// rule vocabulary of Table 3.
type Match struct {
	Fields    FieldSet
	InPort    uint32
	DlSrc     packet.Addr
	DlDst     packet.Addr
	EtherType uint16
}

// Covers reports whether the match accepts a frame with the given
// attributes.
func (m Match) Covers(inPort uint32, src, dst packet.Addr, etherType uint16) bool {
	if m.Fields.Has(FieldInPort) && m.InPort != inPort {
		return false
	}
	if m.Fields.Has(FieldDlSrc) && m.DlSrc != src {
		return false
	}
	if m.Fields.Has(FieldDlDst) && m.DlDst != dst {
		return false
	}
	if m.Fields.Has(FieldEtherType) && m.EtherType != etherType {
		return false
	}
	return true
}

// Equal reports exact structural equality (used for strict deletes).
func (m Match) Equal(o Match) bool { return m == o }

// Normalize returns the match with every wildcarded field zeroed, so two
// semantically equal matches — same mask, same constrained values, junk in
// the ignored fields — become structurally equal. The switch's classifier
// keys its mask-staged sub-tables on normalized matches.
func (m Match) Normalize() Match {
	if !m.Fields.Has(FieldInPort) {
		m.InPort = 0
	}
	if !m.Fields.Has(FieldDlSrc) {
		m.DlSrc = packet.Addr{}
	}
	if !m.Fields.Has(FieldDlDst) {
		m.DlDst = packet.Addr{}
	}
	if !m.Fields.Has(FieldEtherType) {
		m.EtherType = 0
	}
	return m
}

// String renders the match like ovs-ofctl output.
func (m Match) String() string {
	s := ""
	if m.Fields.Has(FieldInPort) {
		s += fmt.Sprintf("in_port=%d,", m.InPort)
	}
	if m.Fields.Has(FieldDlSrc) {
		s += fmt.Sprintf("dl_src=%s,", m.DlSrc)
	}
	if m.Fields.Has(FieldDlDst) {
		s += fmt.Sprintf("dl_dst=%s,", m.DlDst)
	}
	if m.Fields.Has(FieldEtherType) {
		s += fmt.Sprintf("eth_type=%#x,", m.EtherType)
	}
	if s == "" {
		return "any"
	}
	return s[:len(s)-1]
}

// ActionType enumerates frame actions.
type ActionType uint8

// Action types.
const (
	ActOutput ActionType = iota + 1
	ActSetDlDst
	ActSetTunnelDst
	ActGroup
	ActSetQueue
)

// Action is one forwarding action. Exactly one interpretation applies per
// Type:
//
//	ActOutput:       Port is the egress port (or PortController).
//	ActSetDlDst:     Addr rewrites the destination address (LB buckets).
//	ActSetTunnelDst: Host names the remote host of the TCP tunnel.
//	ActGroup:        Group selects a group table entry.
//	ActSetQueue:     Queue selects the egress QoS class for later outputs.
type Action struct {
	Type  ActionType
	Port  uint32
	Addr  packet.Addr
	Group uint32
	Host  string
	Queue uint32
}

// Output builds an output action.
func Output(port uint32) Action { return Action{Type: ActOutput, Port: port} }

// SetDlDst builds a destination-rewrite action.
func SetDlDst(a packet.Addr) Action { return Action{Type: ActSetDlDst, Addr: a} }

// SetTunnelDst builds a tunnel-destination action.
func SetTunnelDst(host string) Action { return Action{Type: ActSetTunnelDst, Host: host} }

// ToGroup builds a group action.
func ToGroup(id uint32) Action { return Action{Type: ActGroup, Group: id} }

// SetQueue builds a queue-selection action: frames output after it are
// enqueued on the egress port's per-class queue q (weighted fair queueing).
func SetQueue(q uint32) Action { return Action{Type: ActSetQueue, Queue: q} }

func (a Action) String() string {
	switch a.Type {
	case ActOutput:
		if a.Port == PortController {
			return "output=CONTROLLER"
		}
		return fmt.Sprintf("output=%d", a.Port)
	case ActSetDlDst:
		return fmt.Sprintf("set_dl_dst=%s", a.Addr)
	case ActSetTunnelDst:
		return fmt.Sprintf("set_tun_dst=%s", a.Host)
	case ActGroup:
		return fmt.Sprintf("group=%d", a.Group)
	case ActSetQueue:
		return fmt.Sprintf("set_queue=%d", a.Queue)
	default:
		return fmt.Sprintf("action(%d)", a.Type)
	}
}

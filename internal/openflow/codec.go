package openflow

import (
	"encoding/binary"

	"typhoon/internal/packet"
)

// Encode serializes a message with the given transaction ID into a
// self-framed byte slice.
func Encode(xid uint32, m Message) []byte {
	buf := make([]byte, HeaderLen, HeaderLen+64)
	buf[0] = Version
	buf[1] = byte(m.MsgType())
	binary.BigEndian.PutUint32(buf[8:12], xid)
	buf = m.appendBody(buf)
	binary.BigEndian.PutUint32(buf[4:8], uint32(len(buf)))
	return buf
}

// Decode parses one complete message. The input must be exactly one framed
// message (as returned by Conn.Read or Encode).
func Decode(raw []byte) (xid uint32, m Message, err error) {
	if len(raw) < HeaderLen {
		return 0, nil, ErrTruncated
	}
	if raw[0] != Version {
		return 0, nil, ErrBadVersion
	}
	if int(binary.BigEndian.Uint32(raw[4:8])) != len(raw) {
		return 0, nil, ErrTruncated
	}
	xid = binary.BigEndian.Uint32(raw[8:12])
	m, err = decodeBody(MsgType(raw[1]), raw[HeaderLen:])
	return xid, m, err
}

func decodeBody(t MsgType, b []byte) (Message, error) {
	r := reader{buf: b}
	var m Message
	switch t {
	case TypeHello:
		m = Hello{}
	case TypeEchoRequest:
		m = EchoRequest{Payload: r.blob()}
	case TypeEchoReply:
		m = EchoReply{Payload: r.blob()}
	case TypeError:
		m = Error{Code: r.u16(), Msg: string(r.blob())}
	case TypeFeaturesRequest:
		m = FeaturesRequest{}
	case TypeFeaturesReply:
		fr := FeaturesReply{DatapathID: r.u64(), Host: string(r.blob())}
		n := int(r.u16())
		for i := 0; i < n && r.err == nil; i++ {
			fr.Ports = append(fr.Ports, PortInfo{No: r.u32(), Name: string(r.blob())})
		}
		m = fr
	case TypeFlowMod:
		fm := FlowMod{
			Command:       FlowCommand(r.u8()),
			Priority:      r.u16(),
			IdleTimeoutMs: r.u32(),
			Cookie:        r.u64(),
			Flags:         r.u16(),
			Meter:         r.u32(),
			Match:         r.match(),
		}
		fm.Actions = r.actions()
		m = fm
	case TypeFlowRemoved:
		m = FlowRemoved{
			Match:    r.match(),
			Priority: r.u16(),
			Cookie:   r.u64(),
			Reason:   FlowRemovedReason(r.u8()),
			Packets:  r.u64(),
			Bytes:    r.u64(),
		}
	case TypeGroupMod:
		gm := GroupMod{
			Command: GroupCommand(r.u8()),
			GroupID: r.u32(),
			Type:    GroupType(r.u8()),
		}
		n := int(r.u16())
		for i := 0; i < n && r.err == nil; i++ {
			gm.Buckets = append(gm.Buckets, Bucket{Weight: r.u16(), Actions: r.actions()})
		}
		m = gm
	case TypePacketOut:
		po := PacketOut{InPort: r.u32()}
		po.Actions = r.actions()
		po.Data = r.blob()
		m = po
	case TypePacketIn:
		m = PacketIn{InPort: r.u32(), Reason: PacketInReason(r.u8()), Data: r.blob()}
	case TypePortStatus:
		m = PortStatus{
			Reason: PortReason(r.u8()),
			Port:   PortInfo{No: r.u32(), Name: string(r.blob())},
			Addr:   r.addr(),
		}
	case TypeStatsRequest:
		m = StatsRequest{Kind: StatsKind(r.u8()), Port: r.u32()}
	case TypeStatsReply:
		sr := StatsReply{Kind: StatsKind(r.u8())}
		switch sr.Kind {
		case StatsPort:
			n := int(r.u16())
			for i := 0; i < n && r.err == nil; i++ {
				sr.Ports = append(sr.Ports, PortStats{
					PortNo: r.u32(), RxPackets: r.u64(), TxPackets: r.u64(),
					RxBytes: r.u64(), TxBytes: r.u64(), RxDropped: r.u64(), TxDropped: r.u64(),
				})
			}
		case StatsFlow:
			n := int(r.u16())
			for i := 0; i < n && r.err == nil; i++ {
				sr.Flows = append(sr.Flows, FlowStats{
					Match: r.match(), Priority: r.u16(), Cookie: r.u64(),
					Packets: r.u64(), Bytes: r.u64(),
				})
			}
		default:
			return nil, ErrBadType
		}
		m = sr
	case TypeRoleRequest:
		m = RoleRequest{Master: r.u8() != 0, Epoch: r.u64()}
	case TypeMeterMod:
		m = MeterMod{
			Command:    MeterCommand(r.u8()),
			MeterID:    r.u32(),
			RateBps:    r.u64(),
			BurstBytes: r.u64(),
		}
	default:
		return nil, ErrBadType
	}
	if r.err != nil {
		return nil, r.err
	}
	return m, nil
}

// --- body encoders -------------------------------------------------------

func (Hello) appendBody(dst []byte) []byte           { return dst }
func (FeaturesRequest) appendBody(dst []byte) []byte { return dst }

func (m EchoRequest) appendBody(dst []byte) []byte { return appendBlob(dst, m.Payload) }
func (m EchoReply) appendBody(dst []byte) []byte   { return appendBlob(dst, m.Payload) }

func (m Error) appendBody(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, m.Code)
	return appendBlob(dst, []byte(m.Msg))
}

func (m FeaturesReply) appendBody(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, m.DatapathID)
	dst = appendBlob(dst, []byte(m.Host))
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(m.Ports)))
	for _, p := range m.Ports {
		dst = binary.BigEndian.AppendUint32(dst, p.No)
		dst = appendBlob(dst, []byte(p.Name))
	}
	return dst
}

func (m FlowMod) appendBody(dst []byte) []byte {
	dst = append(dst, byte(m.Command))
	dst = binary.BigEndian.AppendUint16(dst, m.Priority)
	dst = binary.BigEndian.AppendUint32(dst, m.IdleTimeoutMs)
	dst = binary.BigEndian.AppendUint64(dst, m.Cookie)
	dst = binary.BigEndian.AppendUint16(dst, m.Flags)
	dst = binary.BigEndian.AppendUint32(dst, m.Meter)
	dst = appendMatch(dst, m.Match)
	return appendActions(dst, m.Actions)
}

func (m MeterMod) appendBody(dst []byte) []byte {
	dst = append(dst, byte(m.Command))
	dst = binary.BigEndian.AppendUint32(dst, m.MeterID)
	dst = binary.BigEndian.AppendUint64(dst, m.RateBps)
	return binary.BigEndian.AppendUint64(dst, m.BurstBytes)
}

func (m FlowRemoved) appendBody(dst []byte) []byte {
	dst = appendMatch(dst, m.Match)
	dst = binary.BigEndian.AppendUint16(dst, m.Priority)
	dst = binary.BigEndian.AppendUint64(dst, m.Cookie)
	dst = append(dst, byte(m.Reason))
	dst = binary.BigEndian.AppendUint64(dst, m.Packets)
	return binary.BigEndian.AppendUint64(dst, m.Bytes)
}

func (m GroupMod) appendBody(dst []byte) []byte {
	dst = append(dst, byte(m.Command))
	dst = binary.BigEndian.AppendUint32(dst, m.GroupID)
	dst = append(dst, byte(m.Type))
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(m.Buckets)))
	for _, b := range m.Buckets {
		dst = binary.BigEndian.AppendUint16(dst, b.Weight)
		dst = appendActions(dst, b.Actions)
	}
	return dst
}

func (m PacketOut) appendBody(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, m.InPort)
	dst = appendActions(dst, m.Actions)
	return appendBlob(dst, m.Data)
}

func (m PacketIn) appendBody(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, m.InPort)
	dst = append(dst, byte(m.Reason))
	return appendBlob(dst, m.Data)
}

func (m PortStatus) appendBody(dst []byte) []byte {
	dst = append(dst, byte(m.Reason))
	dst = binary.BigEndian.AppendUint32(dst, m.Port.No)
	dst = appendBlob(dst, []byte(m.Port.Name))
	return append(dst, m.Addr[:]...)
}

func (m StatsRequest) appendBody(dst []byte) []byte {
	dst = append(dst, byte(m.Kind))
	return binary.BigEndian.AppendUint32(dst, m.Port)
}

func (m StatsReply) appendBody(dst []byte) []byte {
	dst = append(dst, byte(m.Kind))
	switch m.Kind {
	case StatsPort:
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(m.Ports)))
		for _, p := range m.Ports {
			dst = binary.BigEndian.AppendUint32(dst, p.PortNo)
			dst = binary.BigEndian.AppendUint64(dst, p.RxPackets)
			dst = binary.BigEndian.AppendUint64(dst, p.TxPackets)
			dst = binary.BigEndian.AppendUint64(dst, p.RxBytes)
			dst = binary.BigEndian.AppendUint64(dst, p.TxBytes)
			dst = binary.BigEndian.AppendUint64(dst, p.RxDropped)
			dst = binary.BigEndian.AppendUint64(dst, p.TxDropped)
		}
	case StatsFlow:
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(m.Flows)))
		for _, f := range m.Flows {
			dst = appendMatch(dst, f.Match)
			dst = binary.BigEndian.AppendUint16(dst, f.Priority)
			dst = binary.BigEndian.AppendUint64(dst, f.Cookie)
			dst = binary.BigEndian.AppendUint64(dst, f.Packets)
			dst = binary.BigEndian.AppendUint64(dst, f.Bytes)
		}
	}
	return dst
}

func (m RoleRequest) appendBody(dst []byte) []byte {
	b := byte(0)
	if m.Master {
		b = 1
	}
	dst = append(dst, b)
	return binary.BigEndian.AppendUint64(dst, m.Epoch)
}

// --- shared field helpers -------------------------------------------------

func appendBlob(dst, b []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(b)))
	return append(dst, b...)
}

func appendMatch(dst []byte, m Match) []byte {
	dst = append(dst, byte(m.Fields))
	dst = binary.BigEndian.AppendUint32(dst, m.InPort)
	dst = append(dst, m.DlSrc[:]...)
	dst = append(dst, m.DlDst[:]...)
	return binary.BigEndian.AppendUint16(dst, m.EtherType)
}

func appendActions(dst []byte, acts []Action) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(acts)))
	for _, a := range acts {
		dst = append(dst, byte(a.Type))
		switch a.Type {
		case ActOutput:
			dst = binary.BigEndian.AppendUint32(dst, a.Port)
		case ActSetDlDst:
			dst = append(dst, a.Addr[:]...)
		case ActSetTunnelDst:
			dst = appendBlob(dst, []byte(a.Host))
		case ActGroup:
			dst = binary.BigEndian.AppendUint32(dst, a.Group)
		case ActSetQueue:
			dst = binary.BigEndian.AppendUint32(dst, a.Queue)
		}
	}
	return dst
}

// reader is a cursor with sticky errors over a message body.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.err = ErrTruncated
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *reader) blob() []byte {
	n := int(r.u32())
	b := r.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

func (r *reader) addr() packet.Addr {
	var a packet.Addr
	copy(a[:], r.take(6))
	return a
}

func (r *reader) match() Match {
	return Match{
		Fields:    FieldSet(r.u8()),
		InPort:    r.u32(),
		DlSrc:     r.addr(),
		DlDst:     r.addr(),
		EtherType: r.u16(),
	}
}

func (r *reader) actions() []Action {
	n := int(r.u16())
	var acts []Action
	for i := 0; i < n && r.err == nil; i++ {
		a := Action{Type: ActionType(r.u8())}
		switch a.Type {
		case ActOutput:
			a.Port = r.u32()
		case ActSetDlDst:
			a.Addr = r.addr()
		case ActSetTunnelDst:
			a.Host = string(r.blob())
		case ActGroup:
			a.Group = r.u32()
		case ActSetQueue:
			a.Queue = r.u32()
		default:
			if r.err == nil {
				r.err = ErrBadType
			}
		}
		acts = append(acts, a)
	}
	return acts
}

package openflow

import (
	"math/rand"
	"net"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"typhoon/internal/packet"
)

func sampleMessages() []Message {
	w1 := packet.WorkerAddr(1, 10)
	w2 := packet.WorkerAddr(1, 20)
	return []Message{
		Hello{},
		EchoRequest{Payload: []byte("ping")},
		EchoReply{Payload: []byte("pong")},
		Error{Code: ErrCodeBadAction, Msg: "bad action"},
		FeaturesRequest{},
		FeaturesReply{
			DatapathID: 42, Host: "host-1",
			Ports: []PortInfo{{No: 1, Name: "w10"}, {No: 2, Name: "tun0"}},
		},
		FlowMod{
			Command: FlowAdd, Priority: 100, IdleTimeoutMs: 5000, Cookie: 7,
			Flags: FlagSendFlowRem, Meter: 12,
			Match: Match{
				Fields: FieldInPort | FieldDlSrc | FieldDlDst | FieldEtherType,
				InPort: 3, DlSrc: w1, DlDst: w2, EtherType: packet.EtherType,
			},
			Actions: []Action{Output(4), SetTunnelDst("host-2"), ToGroup(9), SetDlDst(w2), SetQueue(2)},
		},
		FlowRemoved{
			Match:    Match{Fields: FieldDlDst, DlDst: w2},
			Priority: 10, Cookie: 3, Reason: RemovedIdleTimeout, Packets: 100, Bytes: 9999,
		},
		GroupMod{
			Command: GroupAdd, GroupID: 5, Type: GroupSelect,
			Buckets: []Bucket{
				{Weight: 2, Actions: []Action{SetDlDst(w1), Output(1)}},
				{Weight: 1, Actions: []Action{SetDlDst(w2), Output(2)}},
			},
		},
		PacketOut{InPort: PortController, Actions: []Action{Output(7)}, Data: []byte{1, 2, 3}},
		PacketIn{InPort: 7, Reason: ReasonAction, Data: []byte{9, 8}},
		PortStatus{Reason: PortDeleted, Port: PortInfo{No: 7, Name: "w10"}, Addr: w1},
		StatsRequest{Kind: StatsPort, Port: PortAny},
		StatsReply{Kind: StatsPort, Ports: []PortStats{
			{PortNo: 1, RxPackets: 10, TxPackets: 20, RxBytes: 30, TxBytes: 40, RxDropped: 1, TxDropped: 2},
		}},
		StatsReply{Kind: StatsFlow, Flows: []FlowStats{
			{Match: Match{Fields: FieldDlSrc, DlSrc: w1}, Priority: 5, Cookie: 1, Packets: 2, Bytes: 3},
		}},
		MeterMod{Command: MeterAdd, MeterID: 3, RateBps: 1 << 20, BurstBytes: 1 << 16},
	}
}

func TestEncodeDecodeAllMessageTypes(t *testing.T) {
	for _, m := range sampleMessages() {
		raw := Encode(77, m)
		xid, out, err := Decode(raw)
		if err != nil {
			t.Fatalf("%v: decode: %v", m.MsgType(), err)
		}
		if xid != 77 {
			t.Fatalf("%v: xid = %d", m.MsgType(), xid)
		}
		if !reflect.DeepEqual(normalize(m), normalize(out)) {
			t.Fatalf("%v round trip mismatch:\n in=%#v\nout=%#v", m.MsgType(), m, out)
		}
	}
}

// normalize maps nil and empty slices to a comparable form.
func normalize(m Message) Message {
	switch v := m.(type) {
	case EchoRequest:
		if len(v.Payload) == 0 {
			v.Payload = nil
		}
		return v
	case EchoReply:
		if len(v.Payload) == 0 {
			v.Payload = nil
		}
		return v
	default:
		return m
	}
}

func TestDecodeErrors(t *testing.T) {
	raw := Encode(1, Hello{})
	if _, _, err := Decode(raw[:4]); err != ErrTruncated {
		t.Fatalf("short: %v", err)
	}
	bad := append([]byte(nil), raw...)
	bad[0] = 0x55
	if _, _, err := Decode(bad); err != ErrBadVersion {
		t.Fatalf("version: %v", err)
	}
	bad = append([]byte(nil), raw...)
	bad[1] = 0xEE
	if _, _, err := Decode(bad); err != ErrBadType {
		t.Fatalf("type: %v", err)
	}
	// Wrong framed length.
	bad = append(append([]byte(nil), raw...), 0)
	if _, _, err := Decode(bad); err != ErrTruncated {
		t.Fatalf("length: %v", err)
	}
	// Truncated body.
	fm := Encode(1, FlowMod{Command: FlowAdd, Actions: []Action{Output(1)}})
	fm = fm[:len(fm)-2]
	// fix up framed length so truncation is inside the body decode
	fm[7] = byte(len(fm))
	if _, _, err := Decode(fm); err == nil {
		t.Fatal("truncated body should fail")
	}
}

func TestMatchCovers(t *testing.T) {
	w1, w2, w3 := packet.WorkerAddr(1, 1), packet.WorkerAddr(1, 2), packet.WorkerAddr(1, 3)
	m := Match{Fields: FieldInPort | FieldDlDst, InPort: 2, DlDst: w2}
	if !m.Covers(2, w1, w2, packet.EtherType) {
		t.Fatal("should cover")
	}
	if m.Covers(3, w1, w2, packet.EtherType) {
		t.Fatal("wrong in_port should not cover")
	}
	if m.Covers(2, w1, w3, packet.EtherType) {
		t.Fatal("wrong dst should not cover")
	}
	any := Match{}
	if !any.Covers(9, w3, w1, 0x0800) {
		t.Fatal("empty match should cover everything")
	}
	e := Match{Fields: FieldEtherType, EtherType: packet.EtherType}
	if e.Covers(1, w1, w2, 0x0800) {
		t.Fatal("wrong ethertype should not cover")
	}
	s := Match{Fields: FieldDlSrc, DlSrc: w1}
	if s.Covers(1, w2, w2, packet.EtherType) {
		t.Fatal("wrong src should not cover")
	}
}

func TestMatchString(t *testing.T) {
	if (Match{}).String() != "any" {
		t.Fatal("empty match string")
	}
	m := Match{Fields: FieldInPort | FieldEtherType, InPort: 1, EtherType: 0xFFFF}
	if m.String() == "" || m.String() == "any" {
		t.Fatalf("match string = %q", m.String())
	}
	for _, a := range []Action{Output(1), Output(PortController), SetDlDst(packet.Broadcast), SetTunnelDst("h"), ToGroup(2), SetQueue(1)} {
		if a.String() == "" {
			t.Fatal("action string empty")
		}
	}
}

func TestConnExchange(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	defer ca.Close()
	defer cb.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, m := range sampleMessages() {
			if _, err := ca.Send(m); err != nil {
				t.Errorf("send: %v", err)
				return
			}
		}
	}()
	for _, want := range sampleMessages() {
		_, got, err := cb.Receive()
		if err != nil {
			t.Fatalf("receive: %v", err)
		}
		if got.MsgType() != want.MsgType() {
			t.Fatalf("got %v want %v", got.MsgType(), want.MsgType())
		}
	}
	wg.Wait()
}

func TestConnXIDEcho(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	defer ca.Close()
	defer cb.Close()
	go func() {
		xid, m, err := cb.Receive()
		if err != nil {
			return
		}
		if req, ok := m.(EchoRequest); ok {
			_ = cb.SendXID(xid, EchoReply{Payload: req.Payload})
		}
	}()
	xid, err := ca.Send(EchoRequest{Payload: []byte("hi")})
	if err != nil {
		t.Fatal(err)
	}
	gotXID, reply, err := ca.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if gotXID != xid {
		t.Fatalf("xid %d != %d", gotXID, xid)
	}
	if string(reply.(EchoReply).Payload) != "hi" {
		t.Fatal("payload mismatch")
	}
}

func TestConnXIDNeverZero(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	c := NewConn(a)
	for i := 0; i < 1000; i++ {
		if c.XID() == 0 {
			t.Fatal("zero XID allocated")
		}
	}
}

func TestPropertyFlowModRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fm := FlowMod{
			Command:       FlowCommand(1 + r.Intn(4)),
			Priority:      uint16(r.Intn(1 << 16)),
			IdleTimeoutMs: r.Uint32(),
			Cookie:        r.Uint64(),
			Flags:         uint16(r.Intn(2)),
			Meter:         r.Uint32(),
			Match: Match{
				Fields:    FieldSet(r.Intn(16)),
				InPort:    r.Uint32(),
				DlSrc:     packet.WorkerAddr(uint16(r.Intn(1<<16)), r.Uint32()),
				DlDst:     packet.WorkerAddr(uint16(r.Intn(1<<16)), r.Uint32()),
				EtherType: uint16(r.Intn(1 << 16)),
			},
		}
		n := r.Intn(5)
		for i := 0; i < n; i++ {
			switch r.Intn(5) {
			case 0:
				fm.Actions = append(fm.Actions, Output(r.Uint32()))
			case 1:
				fm.Actions = append(fm.Actions, SetDlDst(packet.WorkerAddr(1, r.Uint32())))
			case 2:
				fm.Actions = append(fm.Actions, SetTunnelDst("host"))
			case 3:
				fm.Actions = append(fm.Actions, ToGroup(r.Uint32()))
			case 4:
				fm.Actions = append(fm.Actions, SetQueue(r.Uint32()))
			}
		}
		_, out, err := Decode(Encode(r.Uint32(), fm))
		return err == nil && reflect.DeepEqual(fm, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMsgTypeStrings(t *testing.T) {
	for mt := TypeHello; mt <= TypeMeterMod; mt++ {
		if mt.String() == "" {
			t.Fatalf("empty string for type %d", mt)
		}
	}
	if MsgType(200).String() != "TYPE(200)" {
		t.Fatal("unknown type rendering")
	}
}

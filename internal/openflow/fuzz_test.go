package openflow

import (
	"bytes"
	"testing"

	"typhoon/internal/packet"
)

// FuzzDecode throws arbitrary bytes at the codec. Decode must never panic,
// and any message it accepts must survive a re-encode/re-decode round trip
// with a stable encoding — the canonical-form property the controller and
// switch rely on when relaying messages they did not author.
func FuzzDecode(f *testing.F) {
	addr := packet.WorkerAddr(7, 42)
	msgs := []Message{
		Hello{},
		EchoRequest{Payload: []byte("ping")},
		EchoReply{Payload: []byte{}},
		Error{Code: ErrCodeBadAction, Msg: "bad action"},
		FeaturesRequest{},
		FeaturesReply{DatapathID: 9, Host: "h1", Ports: []PortInfo{{No: 1, Name: "p1"}, {No: 2, Name: "p2"}}},
		FlowMod{
			Command: FlowAdd, Priority: 10, IdleTimeoutMs: 500, Cookie: 0xfeed,
			Flags: FlagSendFlowRem, Meter: 3,
			Match: Match{InPort: 4, DlDst: addr, EtherType: 0x88b5},
			Actions: []Action{
				{Type: ActOutput, Port: 2},
				{Type: ActSetTunnelDst, Host: "h2"},
				{Type: ActGroup, Group: 1},
			},
		},
		FlowRemoved{Priority: 5, Cookie: 1, Reason: RemovedIdleTimeout, Packets: 10, Bytes: 1000},
		GroupMod{
			Command: GroupAdd, GroupID: 1, Type: GroupSelect,
			Buckets: []Bucket{{Weight: 2, Actions: []Action{
				{Type: ActSetDlDst, Addr: addr},
				{Type: ActOutput, Port: 9},
			}}},
		},
		PacketOut{InPort: PortController, Actions: []Action{{Type: ActOutput, Port: 1}}, Data: []byte("tuple")},
		PacketIn{InPort: 3, Reason: ReasonNoMatch, Data: []byte("frame")},
		PortStatus{Reason: PortDeleted, Port: PortInfo{No: 7, Name: "w7"}, Addr: addr},
		StatsRequest{Kind: StatsPort, Port: PortAny},
		StatsReply{Kind: StatsPort, Ports: []PortStats{{PortNo: 1, RxPackets: 2, TxBytes: 3}}},
		StatsReply{Kind: StatsFlow, Flows: []FlowStats{{Priority: 1, Cookie: 2, Packets: 3, Bytes: 4}}},
		RoleRequest{Master: true, Epoch: 8},
		MeterMod{Command: MeterAdd, MeterID: 2, RateBps: 1 << 20, BurstBytes: 4096},
	}
	for _, m := range msgs {
		raw := Encode(77, m)
		f.Add(raw)
		f.Add(raw[:len(raw)-1]) // truncated tail
		f.Add(raw[:HeaderLen])  // header only
	}
	f.Add([]byte{})
	f.Add([]byte{Version, 0xff, 0, 0, 0, 0, 0, 12, 0, 0, 0, 1})

	f.Fuzz(func(t *testing.T, raw []byte) {
		xid, m, err := Decode(raw)
		if err != nil {
			return
		}
		re := Encode(xid, m)
		xid2, m2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode of accepted message failed: %v (msg %#v)", err, m)
		}
		if xid2 != xid {
			t.Fatalf("xid changed across round trip: %d -> %d", xid, xid2)
		}
		if re2 := Encode(xid2, m2); !bytes.Equal(re, re2) {
			t.Fatalf("encoding not canonical:\n first  %x\n second %x", re, re2)
		}
	})
}

package openflow

import "typhoon/internal/packet"

// Hello opens a connection; both sides send it first.
type Hello struct{}

// MsgType implements Message.
func (Hello) MsgType() MsgType { return TypeHello }

// EchoRequest is a keepalive probe; Payload is echoed back.
type EchoRequest struct{ Payload []byte }

// MsgType implements Message.
func (EchoRequest) MsgType() MsgType { return TypeEchoRequest }

// EchoReply answers an EchoRequest.
type EchoReply struct{ Payload []byte }

// MsgType implements Message.
func (EchoReply) MsgType() MsgType { return TypeEchoReply }

// Error reports a protocol or processing failure.
type Error struct {
	Code uint16
	Msg  string
}

// Error codes.
const (
	ErrCodeBadRequest uint16 = iota + 1
	ErrCodeBadAction
	ErrCodeUnknownGroup
	ErrCodeTableFull
)

// MsgType implements Message.
func (Error) MsgType() MsgType { return TypeError }

// FeaturesRequest asks a switch for its identity and ports.
type FeaturesRequest struct{}

// MsgType implements Message.
func (FeaturesRequest) MsgType() MsgType { return TypeFeaturesRequest }

// PortInfo describes one switch port.
type PortInfo struct {
	No   uint32
	Name string
}

// FeaturesReply announces the switch datapath ID, its host name and ports.
type FeaturesReply struct {
	DatapathID uint64
	Host       string
	Ports      []PortInfo
}

// MsgType implements Message.
func (FeaturesReply) MsgType() MsgType { return TypeFeaturesReply }

// FlowCommand selects the FlowMod operation.
type FlowCommand uint8

// Flow commands.
const (
	FlowAdd FlowCommand = iota + 1
	FlowModify
	FlowDelete       // delete all rules covered by Match
	FlowDeleteStrict // delete the rule with exactly Match and Priority
)

// FlowMod flags.
const (
	// FlagSendFlowRem requests a FlowRemoved message when the rule expires.
	FlagSendFlowRem uint16 = 1 << iota
)

// FlowMod installs, modifies or removes flow rules.
type FlowMod struct {
	Command FlowCommand
	// Priority orders overlapping rules; highest wins.
	Priority uint16
	// IdleTimeoutMs expires the rule after this many milliseconds without a
	// matching frame. Zero means no expiry. The paper relies on idle
	// timeout to garbage-collect rules of removed workers (§3.5).
	IdleTimeoutMs uint32
	Cookie        uint64
	Flags         uint16
	// Meter names the token-bucket meter frames matching this rule are
	// charged against before any action runs; zero leaves the rule
	// unmetered. A reference to a meter the switch has not (yet) been
	// programmed with passes traffic unmetered, so rule and meter
	// installation need no ordering.
	Meter   uint32
	Match   Match
	Actions []Action
}

// MsgType implements Message.
func (FlowMod) MsgType() MsgType { return TypeFlowMod }

// FlowRemovedReason explains why a rule disappeared.
type FlowRemovedReason uint8

// FlowRemoved reasons.
const (
	RemovedIdleTimeout FlowRemovedReason = iota + 1
	RemovedDelete
)

// FlowRemoved notifies the controller that a rule expired or was deleted.
type FlowRemoved struct {
	Match    Match
	Priority uint16
	Cookie   uint64
	Reason   FlowRemovedReason
	Packets  uint64
	Bytes    uint64
}

// MsgType implements Message.
func (FlowRemoved) MsgType() MsgType { return TypeFlowRemoved }

// GroupCommand selects the GroupMod operation.
type GroupCommand uint8

// Group commands.
const (
	GroupAdd GroupCommand = iota + 1
	GroupModify
	GroupDelete
)

// GroupType enumerates group semantics; only select groups (weighted
// round-robin across buckets) are needed for the SDN load balancer (§4).
type GroupType uint8

// Group types.
const (
	GroupSelect GroupType = iota + 1
	GroupAll
)

// Bucket is one weighted action list of a group.
type Bucket struct {
	Weight  uint16
	Actions []Action
}

// GroupMod installs, modifies or removes group table entries.
type GroupMod struct {
	Command GroupCommand
	GroupID uint32
	Type    GroupType
	Buckets []Bucket
}

// MsgType implements Message.
func (GroupMod) MsgType() MsgType { return TypeGroupMod }

// MeterCommand selects the MeterMod operation.
type MeterCommand uint8

// Meter commands.
const (
	MeterAdd MeterCommand = iota + 1
	MeterModify
	MeterDelete
)

// MeterMod installs, retunes or removes token-bucket meters. A meter admits
// RateBps bytes per second with a bucket depth of BurstBytes; frames arriving
// on an empty bucket are dropped at the ingress pipeline (rate policing, the
// data-plane half of the bandwidth-allocation loop). MeterAdd of an existing
// meter and MeterModify both retune rate and burst in place without
// disturbing the bucket's fill level, so the controller can continuously
// reassign rates online without perturbing traffic.
type MeterMod struct {
	Command MeterCommand
	MeterID uint32
	// RateBps is the sustained admission rate in bytes per second; zero
	// admits everything (an unconfigured meter never drops).
	RateBps uint64
	// BurstBytes is the bucket depth; zero selects a rate-derived default.
	BurstBytes uint64
}

// MsgType implements Message.
func (MeterMod) MsgType() MsgType { return TypeMeterMod }

// PacketOut injects a frame into the switch data path; the paper uses it to
// deliver control tuples to workers (§3.3.2).
type PacketOut struct {
	InPort  uint32 // typically PortController
	Actions []Action
	Data    []byte
}

// MsgType implements Message.
func (PacketOut) MsgType() MsgType { return TypePacketOut }

// PacketInReason explains why a frame reached the controller.
type PacketInReason uint8

// PacketIn reasons.
const (
	ReasonNoMatch PacketInReason = iota + 1
	ReasonAction
)

// PacketIn delivers a data-plane frame to the controller (METRIC_RESP
// statistics and other worker-to-controller traffic).
type PacketIn struct {
	InPort uint32
	Reason PacketInReason
	Data   []byte
}

// MsgType implements Message.
func (PacketIn) MsgType() MsgType { return TypePacketIn }

// PortReason explains a PortStatus event.
type PortReason uint8

// Port status reasons.
const (
	PortAdded PortReason = iota + 1
	PortDeleted
	PortModified
)

// PortStatus reports switch port lifecycle events; unexpected PortDeleted
// is what drives the fault detector app (§4, Fig 10).
type PortStatus struct {
	Reason PortReason
	Port   PortInfo
	// Addr is the worker address bound to the port when known, letting the
	// controller identify the victim without a coordinator round trip.
	Addr packet.Addr
}

// MsgType implements Message.
func (PortStatus) MsgType() MsgType { return TypePortStatus }

// StatsKind selects the statistics family.
type StatsKind uint8

// Stats kinds.
const (
	StatsPort StatsKind = iota + 1
	StatsFlow
)

// StatsRequest polls switch statistics.
type StatsRequest struct {
	Kind StatsKind
	// Port filters port stats (PortAny for all).
	Port uint32
}

// MsgType implements Message.
func (StatsRequest) MsgType() MsgType { return TypeStatsRequest }

// PortStats is one port counter row.
type PortStats struct {
	PortNo    uint32
	RxPackets uint64
	TxPackets uint64
	RxBytes   uint64
	TxBytes   uint64
	RxDropped uint64
	TxDropped uint64
}

// FlowStats is one flow counter row.
type FlowStats struct {
	Match    Match
	Priority uint16
	Cookie   uint64
	Packets  uint64
	Bytes    uint64
}

// StatsReply answers a StatsRequest with the matching family populated.
type StatsReply struct {
	Kind  StatsKind
	Ports []PortStats
	Flows []FlowStats
}

// MsgType implements Message.
func (StatsReply) MsgType() MsgType { return TypeStatsReply }

// RoleRequest sets the sender's role on the receiving switch. In a
// replicated control plane a controller claims (Master=true) or cedes
// (Master=false) master status for the datapath after winning or losing the
// coordinator-elected mastership lease. Epoch carries the lease epoch so a
// partitioned ex-master's stale claim can never override its successor's:
// the switch accepts a claim only when the epoch is no older than the
// highest it has seen.
type RoleRequest struct {
	Master bool
	Epoch  uint64
}

// MsgType implements Message.
func (RoleRequest) MsgType() MsgType { return TypeRoleRequest }

package openflow

import (
	"encoding/binary"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Conn is a framed, write-serialized protocol connection over a stream
// transport (TCP in the emulated cluster).
type Conn struct {
	nc      net.Conn
	wmu     sync.Mutex
	nextXID atomic.Uint32
}

// NewConn wraps a stream connection.
func NewConn(nc net.Conn) *Conn { return &Conn{nc: nc} }

// XID allocates a fresh non-zero transaction ID.
func (c *Conn) XID() uint32 {
	for {
		if x := c.nextXID.Add(1); x != 0 {
			return x
		}
	}
}

// Send encodes and writes a message with a fresh XID, returning the XID.
func (c *Conn) Send(m Message) (uint32, error) {
	xid := c.XID()
	return xid, c.SendXID(xid, m)
}

// SendXID encodes and writes a message under the caller's XID (used for
// replies that must echo the request's transaction ID).
func (c *Conn) SendXID(xid uint32, m Message) error {
	raw := Encode(xid, m)
	c.wmu.Lock()
	defer c.wmu.Unlock()
	_, err := c.nc.Write(raw)
	return err
}

// Receive reads the next complete message, blocking until one arrives, the
// connection fails, or the read deadline (if set) expires.
func (c *Conn) Receive() (uint32, Message, error) {
	var hdr [HeaderLen]byte
	if _, err := io.ReadFull(c.nc, hdr[:]); err != nil {
		return 0, nil, err
	}
	if hdr[0] != Version {
		return 0, nil, ErrBadVersion
	}
	total := int(binary.BigEndian.Uint32(hdr[4:8]))
	if total < HeaderLen {
		return 0, nil, ErrTruncated
	}
	if total > MaxMessageLen {
		return 0, nil, ErrTooLarge
	}
	raw := make([]byte, total)
	copy(raw, hdr[:])
	if _, err := io.ReadFull(c.nc, raw[HeaderLen:]); err != nil {
		return 0, nil, err
	}
	return Decode(raw)
}

// SetReadDeadline forwards to the underlying connection.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.nc.SetReadDeadline(t) }

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.nc.Close() }

// RemoteAddr reports the peer address.
func (c *Conn) RemoteAddr() net.Addr { return c.nc.RemoteAddr() }

package topology

import "typhoon/internal/tuple"

// Builder assembles a Logical topology with a fluent API, mirroring the
// framework-provided topology-building APIs of §2. Errors are deferred to
// Build, which validates the result.
type Builder struct {
	topo Logical
}

// NewBuilder starts a topology with the given name and application ID.
func NewBuilder(name string, app uint16) *Builder {
	return &Builder{topo: Logical{App: app, Name: name}}
}

// NodeBuilder adds edges to a node under construction.
type NodeBuilder struct {
	b    *Builder
	name string
}

// Source declares a tuple-generating node.
func (b *Builder) Source(name, logic string, parallelism int) *NodeBuilder {
	b.topo.Nodes = append(b.topo.Nodes, NodeSpec{
		Name: name, Logic: logic, Parallelism: parallelism, Source: true,
	})
	return &NodeBuilder{b: b, name: name}
}

// Node declares a processing node.
func (b *Builder) Node(name, logic string, parallelism int) *NodeBuilder {
	b.topo.Nodes = append(b.topo.Nodes, NodeSpec{
		Name: name, Logic: logic, Parallelism: parallelism,
	})
	return &NodeBuilder{b: b, name: name}
}

// Ackers enables guaranteed processing with n acker workers.
func (b *Builder) Ackers(n int) *Builder {
	b.topo.Ackers = n
	return b
}

// QoS assigns the topology's rate class and configured bandwidth
// (bytes/sec); see the QoS* class constants. rateBps zero lets the
// bandwidth allocator size the meter from observed demand.
func (b *Builder) QoS(class string, rateBps uint64) *Builder {
	b.topo.QoSClass = class
	b.topo.QoSRateBps = rateBps
	return b
}

// Build validates and returns the topology.
func (b *Builder) Build() (*Logical, error) {
	t := b.topo.Clone()
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Stateful marks the node as stateful (in-memory cache, Table 4).
func (n *NodeBuilder) Stateful() *NodeBuilder {
	if spec := n.b.topo.Node(n.name); spec != nil {
		spec.Stateful = true
	}
	return n
}

// ShuffleFrom subscribes via round-robin shuffle routing.
func (n *NodeBuilder) ShuffleFrom(from string) *NodeBuilder {
	return n.edge(from, Shuffle, nil, tuple.DefaultStream)
}

// FieldsFrom subscribes via key-based routing over the given field indices.
func (n *NodeBuilder) FieldsFrom(from string, fields ...int) *NodeBuilder {
	return n.edge(from, Fields, fields, tuple.DefaultStream)
}

// GlobalFrom subscribes via global routing (all tuples to instance 0).
func (n *NodeBuilder) GlobalFrom(from string) *NodeBuilder {
	return n.edge(from, Global, nil, tuple.DefaultStream)
}

// AllFrom subscribes via broadcast routing (every tuple to every instance).
func (n *NodeBuilder) AllFrom(from string) *NodeBuilder {
	return n.edge(from, All, nil, tuple.DefaultStream)
}

// SDNBalancedFrom subscribes via SDN-level weighted load balancing.
func (n *NodeBuilder) SDNBalancedFrom(from string) *NodeBuilder {
	return n.edge(from, SDNBalanced, nil, tuple.DefaultStream)
}

// DirectFrom subscribes via direct routing: each tuple names its
// destination worker in its first field.
func (n *NodeBuilder) DirectFrom(from string) *NodeBuilder {
	return n.edge(from, Direct, nil, tuple.DefaultStream)
}

// OnStream retargets the most recently added edge into this node to a named
// stream of the upstream node.
func (n *NodeBuilder) OnStream(s tuple.StreamID) *NodeBuilder {
	for i := len(n.b.topo.Edges) - 1; i >= 0; i-- {
		if n.b.topo.Edges[i].To == n.name {
			n.b.topo.Edges[i].Stream = s
			break
		}
	}
	return n
}

func (n *NodeBuilder) edge(from string, p RoutingPolicy, fields []int, s tuple.StreamID) *NodeBuilder {
	n.b.topo.Edges = append(n.b.topo.Edges, EdgeSpec{
		From: from, To: n.name, Policy: p, HashFields: fields, Stream: s,
	})
	return n
}

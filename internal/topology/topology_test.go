package topology

import (
	"reflect"
	"testing"

	"typhoon/internal/tuple"
)

// wordCount builds the canonical Fig 2 topology.
func wordCount(t *testing.T) *Logical {
	t.Helper()
	b := NewBuilder("wordcount", 1)
	b.Source("input", "sentences", 1)
	b.Node("split", "splitter", 2).ShuffleFrom("input")
	b.Node("count", "counter", 2).FieldsFrom("split", 0).Stateful()
	b.Node("agg", "aggregator", 1).GlobalFrom("count")
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestBuilderWordCount(t *testing.T) {
	l := wordCount(t)
	if len(l.Nodes) != 4 || len(l.Edges) != 3 {
		t.Fatalf("nodes=%d edges=%d", len(l.Nodes), len(l.Edges))
	}
	if !l.Node("input").Source || l.Node("split").Source {
		t.Fatal("source flags wrong")
	}
	if !l.Node("count").Stateful {
		t.Fatal("stateful flag lost")
	}
	e := l.InEdges("count")
	if len(e) != 1 || e[0].Policy != Fields || !reflect.DeepEqual(e[0].HashFields, []int{0}) {
		t.Fatalf("count in-edges = %+v", e)
	}
	if len(l.OutEdges("agg")) != 0 {
		t.Fatal("agg should be a sink")
	}
}

func TestValidateRejectsBadTopologies(t *testing.T) {
	cases := []struct {
		name string
		mk   func() *Builder
	}{
		{"no nodes", func() *Builder { return NewBuilder("x", 1) }},
		{"no source", func() *Builder {
			b := NewBuilder("x", 1)
			b.Node("a", "l", 1)
			return b
		}},
		{"duplicate node", func() *Builder {
			b := NewBuilder("x", 1)
			b.Source("a", "l", 1)
			b.Node("a", "l", 1)
			return b
		}},
		{"zero parallelism", func() *Builder {
			b := NewBuilder("x", 1)
			b.Source("a", "l", 0)
			return b
		}},
		{"empty logic", func() *Builder {
			b := NewBuilder("x", 1)
			b.Source("a", "", 1)
			return b
		}},
		{"unknown edge target", func() *Builder {
			b := NewBuilder("x", 1)
			b.Source("a", "l", 1)
			b.Node("b", "l", 1).ShuffleFrom("ghost")
			return b
		}},
		{"fields without hash fields", func() *Builder {
			b := NewBuilder("x", 1)
			b.Source("a", "l", 1)
			b.Node("b", "l", 1).FieldsFrom("a")
			return b
		}},
		{"cycle", func() *Builder {
			b := NewBuilder("x", 1)
			b.Source("a", "l", 1)
			b.Node("b", "l", 1).ShuffleFrom("a")
			b.Node("c", "l", 1).ShuffleFrom("b")
			// back edge c -> b
			nb := &NodeBuilder{b: b, name: "b"}
			nb.ShuffleFrom("c")
			return b
		}},
	}
	for _, c := range cases {
		if _, err := c.mk().Build(); err == nil {
			t.Errorf("%s: Build succeeded, want error", c.name)
		}
	}
	if (&Logical{Name: "", Nodes: []NodeSpec{{Name: "a", Logic: "l", Parallelism: 1, Source: true}}}).Validate() == nil {
		t.Error("empty topology name accepted")
	}
}

func TestLogicalEncodeDecodeRoundTrip(t *testing.T) {
	l := wordCount(t)
	l.Generation = 3
	out, err := DecodeLogical(l.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(l, out) {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", l, out)
	}
	if _, err := DecodeLogical([]byte("{bad")); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	l := wordCount(t)
	c := l.Clone()
	c.Nodes[0].Parallelism = 99
	c.Edges[1].HashFields = append(c.Edges[1].HashFields, 7)
	if l.Nodes[0].Parallelism == 99 {
		t.Fatal("node slice shared")
	}
	for _, e := range l.Edges {
		if len(e.HashFields) > 1 {
			t.Fatal("hash fields shared")
		}
	}
}

func samplePhysical() *Physical {
	return &Physical{
		App: 1, Name: "wordcount", Generation: 1, NextWorker: 8,
		Workers: []Assignment{
			{Worker: 1, Node: "input", Index: 0, Host: "h1", Port: 1},
			{Worker: 2, Node: "split", Index: 0, Host: "h1", Port: 2},
			{Worker: 3, Node: "split", Index: 1, Host: "h2", Port: 1},
			{Worker: 4, Node: "count", Index: 0, Host: "h2", Port: 2},
			{Worker: 5, Node: "count", Index: 1, Host: "h3", Port: 1},
			{Worker: 6, Node: "agg", Index: 0, Host: "h3", Port: 2},
		},
	}
}

func TestPhysicalAccessors(t *testing.T) {
	p := samplePhysical()
	if p.Worker(3) == nil || p.Worker(3).Node != "split" {
		t.Fatal("Worker lookup failed")
	}
	if p.Worker(99) != nil {
		t.Fatal("ghost worker found")
	}
	inst := p.Instances("count")
	if len(inst) != 2 || inst[0].Worker != 4 || inst[1].Worker != 5 {
		t.Fatalf("instances = %+v", inst)
	}
	hosts := p.Hosts()
	if !reflect.DeepEqual(hosts, []string{"h1", "h2", "h3"}) {
		t.Fatalf("hosts = %v", hosts)
	}
	c := p.Clone()
	c.Workers[0].Host = "elsewhere"
	if p.Workers[0].Host != "h1" {
		t.Fatal("clone not deep")
	}
}

func TestPhysicalEncodeDecodeRoundTrip(t *testing.T) {
	p := samplePhysical()
	out, err := DecodePhysical(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, out) {
		t.Fatal("round trip mismatch")
	}
	if _, err := DecodePhysical([]byte("nope")); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

func TestRoutesFor(t *testing.T) {
	l := wordCount(t)
	p := samplePhysical()
	routes := RoutesFor(l, p, "split")
	if len(routes) != 1 {
		t.Fatalf("routes = %+v", routes)
	}
	r := routes[0]
	if r.Edge.Policy != Fields || !reflect.DeepEqual(r.NextHops, []WorkerID{4, 5}) {
		t.Fatalf("route = %+v", r)
	}
	if routes := RoutesFor(l, p, "agg"); len(routes) != 0 {
		t.Fatal("sink should have no routes")
	}
	// Instances ordering must be respected even if assignment order differs.
	p.Workers[3], p.Workers[4] = p.Workers[4], p.Workers[3]
	r = RoutesFor(l, p, "split")[0]
	if !reflect.DeepEqual(r.NextHops, []WorkerID{4, 5}) {
		t.Fatalf("next hops not index-sorted: %v", r.NextHops)
	}
}

func TestPredecessorsAndSuccessors(t *testing.T) {
	l := wordCount(t)
	p := samplePhysical()
	pred := Predecessors(l, p, "count")
	if len(pred) != 2 || pred[0].Node != "split" {
		t.Fatalf("pred = %+v", pred)
	}
	succ := Successors(l, p, "split")
	if len(succ) != 2 || succ[0].Node != "count" {
		t.Fatalf("succ = %+v", succ)
	}
	if len(Predecessors(l, p, "input")) != 0 {
		t.Fatal("source has no predecessors")
	}
}

func TestOnStreamRetargetsEdge(t *testing.T) {
	b := NewBuilder("s", 1)
	b.Source("a", "l", 1)
	b.Node("b", "l", 1).ShuffleFrom("a").OnStream(tuple.SignalStream)
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if l.Edges[0].Stream != tuple.SignalStream {
		t.Fatal("OnStream not applied")
	}
}

func TestPolicyString(t *testing.T) {
	for p := Shuffle; p <= Direct; p++ {
		if p.String() == "" {
			t.Fatal("empty policy string")
		}
	}
	if RoutingPolicy(99).String() == "" {
		t.Fatal("unknown policy string")
	}
}

package topology

// Route is the policy-independent routing state of §3.3.2 for one outgoing
// edge: the routing policy descriptor plus the current set of next-hop
// workers (nextHops / numNextHops in Listing 1). The SDN controller carries
// updated Routes to workers inside ROUTING control tuples.
type Route struct {
	Edge EdgeSpec `json:"edge"`
	// NextHops are the destination worker IDs sorted by instance index.
	NextHops []WorkerID `json:"nextHops"`
}

// RoutesFor derives the outgoing routing table of a logical node from the
// current logical and physical topologies.
func RoutesFor(l *Logical, p *Physical, node string) []Route {
	var out []Route
	for _, e := range l.OutEdges(node) {
		r := Route{Edge: e}
		for _, a := range p.Instances(e.To) {
			r.NextHops = append(r.NextHops, a.Worker)
		}
		out = append(out, r)
	}
	return out
}

// Predecessors returns the worker assignments of every node with an edge
// into the named node; these are the workers whose routing state must be
// updated when the node is reconfigured (§3.5).
func Predecessors(l *Logical, p *Physical, node string) []Assignment {
	var out []Assignment
	seen := make(map[WorkerID]bool)
	for _, e := range l.InEdges(node) {
		for _, a := range p.Instances(e.From) {
			if !seen[a.Worker] {
				seen[a.Worker] = true
				out = append(out, a)
			}
		}
	}
	return out
}

// Successors returns the worker assignments of every node the named node
// feeds.
func Successors(l *Logical, p *Physical, node string) []Assignment {
	var out []Assignment
	seen := make(map[WorkerID]bool)
	for _, e := range l.OutEdges(node) {
		for _, a := range p.Instances(e.To) {
			if !seen[a.Worker] {
				seen[a.Worker] = true
				out = append(out, a)
			}
		}
	}
	return out
}

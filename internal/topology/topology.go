// Package topology models Typhoon stream topologies: the logical DAG an
// application declares (nodes with computation logic, parallelism and
// routing policies) and the physical topology the scheduler derives from it
// (workers pinned to hosts and switch ports).
//
// Logical and physical topologies are the global state rows of Table 1 and
// are stored JSON-encoded in the coordinator so every component (streaming
// manager, SDN controller, worker agents) shares one view.
package topology

import (
	"encoding/json"
	"fmt"
	"sort"

	"typhoon/internal/tuple"
)

// RoutingPolicy selects how a node routes output tuples to the instances of
// a downstream node (§2 "Data tuple routing policies").
type RoutingPolicy uint8

// Routing policies.
const (
	// Shuffle distributes tuples round-robin for load balancing.
	Shuffle RoutingPolicy = iota + 1
	// Fields routes by a hash of selected tuple fields, so equal keys
	// always reach the same instance (key-based routing).
	Fields
	// Global sends every tuple to the first instance (sink aggregation).
	Global
	// All broadcasts every tuple to all instances (one-to-many).
	All
	// SDNBalanced delegates destination choice to the network: the worker
	// stamps a broadcast destination and a switch select-group rewrites it
	// in weighted round robin (the SDN load balancer of §4).
	SDNBalanced
	// Direct routes each tuple to the worker ID carried in its first
	// field (Storm's direct grouping); ackers use it to notify the exact
	// source worker whose tuple tree completed.
	Direct
)

func (p RoutingPolicy) String() string {
	switch p {
	case Shuffle:
		return "shuffle"
	case Fields:
		return "fields"
	case Global:
		return "global"
	case All:
		return "all"
	case SDNBalanced:
		return "sdn-balanced"
	case Direct:
		return "direct"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// QoS rate classes. A topology's class selects the egress queue its data
// traffic rides (weighted fair queueing at every switch port and tunnel) and
// how the bandwidth allocator treats its meter: guaranteed tenants keep
// their configured rate under contention, burstable tenants share spare
// capacity in proportion to demand, and best-effort tenants take what is
// left. The empty class means best-effort.
const (
	QoSGuaranteed = "guaranteed"
	QoSBurstable  = "burstable"
	QoSBestEffort = "best-effort"
)

// QoSClassID maps a rate class to its egress queue ID. Queue 0 is the
// highest-weight queue; control-plane traffic (rules carry no set_queue
// action for it) rides queue 0 implicitly so reconfiguration is never
// starved by tenant floods.
func QoSClassID(class string) uint32 {
	switch class {
	case QoSGuaranteed:
		return 0
	case QoSBurstable:
		return 1
	default:
		return 2
	}
}

// ValidQoSClass reports whether class names a known rate class; the empty
// string is valid and means best-effort.
func ValidQoSClass(class string) bool {
	switch class {
	case "", QoSGuaranteed, QoSBurstable, QoSBestEffort:
		return true
	}
	return false
}

// NodeSpec declares one logical node.
type NodeSpec struct {
	// Name is unique within the topology.
	Name string `json:"name"`
	// Logic names the registered computation-logic factory. Swapping this
	// string at runtime is the "computation logic reconfiguration" of §6.2.
	Logic string `json:"logic"`
	// Parallelism is the number of worker instances.
	Parallelism int `json:"parallelism"`
	// Source marks spout nodes that generate tuples.
	Source bool `json:"source,omitempty"`
	// Stateful marks workers with in-memory caches that require
	// flush-before-reconfigure (Table 4, §3.5).
	Stateful bool `json:"stateful,omitempty"`
}

// EdgeSpec declares one logical edge with its routing policy.
type EdgeSpec struct {
	From   string        `json:"from"`
	To     string        `json:"to"`
	Policy RoutingPolicy `json:"policy"`
	// HashFields are the tuple field indices hashed by Fields routing.
	HashFields []int `json:"hashFields,omitempty"`
	// Stream restricts the edge to one output stream of From;
	// tuple.DefaultStream subscribes to the default stream.
	Stream tuple.StreamID `json:"stream,omitempty"`
}

// Logical is a validated logical topology.
type Logical struct {
	// App is the application ID used as address prefix on the data plane.
	App uint16 `json:"app"`
	// Name is the human-readable topology name.
	Name  string     `json:"name"`
	Nodes []NodeSpec `json:"nodes"`
	Edges []EdgeSpec `json:"edges"`
	// Ackers is the number of acker workers wired in for guaranteed
	// processing; zero disables acking (§6.1).
	Ackers int `json:"ackers,omitempty"`
	// Generation counts reconfigurations applied to this topology.
	Generation int64 `json:"generation"`
	// QoSClass is the topology's rate class (QoSGuaranteed, QoSBurstable or
	// QoSBestEffort); empty means best-effort.
	QoSClass string `json:"qosClass,omitempty"`
	// QoSRateBps is the configured bandwidth in bytes/sec: the floor a
	// guaranteed topology keeps under contention, or the cap a burstable
	// one starts from. Zero lets the bandwidth allocator size it purely
	// from observed demand.
	QoSRateBps uint64 `json:"qosRateBps,omitempty"`
}

// Node returns the spec of the named node, or nil.
func (l *Logical) Node(name string) *NodeSpec {
	for i := range l.Nodes {
		if l.Nodes[i].Name == name {
			return &l.Nodes[i]
		}
	}
	return nil
}

// OutEdges returns the edges leaving the named node.
func (l *Logical) OutEdges(name string) []EdgeSpec {
	var out []EdgeSpec
	for _, e := range l.Edges {
		if e.From == name {
			out = append(out, e)
		}
	}
	return out
}

// InEdges returns the edges entering the named node.
func (l *Logical) InEdges(name string) []EdgeSpec {
	var out []EdgeSpec
	for _, e := range l.Edges {
		if e.To == name {
			out = append(out, e)
		}
	}
	return out
}

// Validate checks structural invariants: unique node names, positive
// parallelism, edges referencing declared nodes, at least one source, and
// acyclicity.
func (l *Logical) Validate() error {
	if l.Name == "" {
		return fmt.Errorf("topology: empty name")
	}
	if len(l.Nodes) == 0 {
		return fmt.Errorf("topology %s: no nodes", l.Name)
	}
	seen := make(map[string]bool, len(l.Nodes))
	hasSource := false
	for _, n := range l.Nodes {
		if n.Name == "" {
			return fmt.Errorf("topology %s: node with empty name", l.Name)
		}
		if seen[n.Name] {
			return fmt.Errorf("topology %s: duplicate node %q", l.Name, n.Name)
		}
		seen[n.Name] = true
		if n.Parallelism < 1 {
			return fmt.Errorf("topology %s: node %q parallelism %d < 1", l.Name, n.Name, n.Parallelism)
		}
		if n.Logic == "" {
			return fmt.Errorf("topology %s: node %q has no logic", l.Name, n.Name)
		}
		if n.Source {
			hasSource = true
		}
	}
	if !hasSource {
		return fmt.Errorf("topology %s: no source node", l.Name)
	}
	if !ValidQoSClass(l.QoSClass) {
		return fmt.Errorf("topology %s: unknown QoS class %q", l.Name, l.QoSClass)
	}
	adj := make(map[string][]string)
	for _, e := range l.Edges {
		if !seen[e.From] || !seen[e.To] {
			return fmt.Errorf("topology %s: edge %s->%s references unknown node", l.Name, e.From, e.To)
		}
		if e.Policy < Shuffle || e.Policy > Direct {
			return fmt.Errorf("topology %s: edge %s->%s has invalid policy", l.Name, e.From, e.To)
		}
		if e.Policy == Fields && len(e.HashFields) == 0 {
			return fmt.Errorf("topology %s: edge %s->%s fields routing without hash fields", l.Name, e.From, e.To)
		}
		// Framework edges (acking, completion notifications) are exempt
		// from the DAG requirement: the acker both consumes from every
		// node and notifies sources, which is a benign cycle outside the
		// data flow.
		if e.Stream == tuple.AckStream || e.Stream == tuple.CompleteStream {
			continue
		}
		adj[e.From] = append(adj[e.From], e.To)
	}
	// DAG check via colouring.
	const (
		white, grey, black = 0, 1, 2
	)
	colour := make(map[string]int)
	var visit func(string) error
	visit = func(n string) error {
		colour[n] = grey
		for _, m := range adj[n] {
			switch colour[m] {
			case grey:
				return fmt.Errorf("topology %s: cycle through %q", l.Name, m)
			case white:
				if err := visit(m); err != nil {
					return err
				}
			}
		}
		colour[n] = black
		return nil
	}
	for _, n := range l.Nodes {
		if colour[n.Name] == white {
			if err := visit(n.Name); err != nil {
				return err
			}
		}
	}
	return nil
}

// Clone deep-copies the topology.
func (l *Logical) Clone() *Logical {
	out := &Logical{
		App: l.App, Name: l.Name, Ackers: l.Ackers, Generation: l.Generation,
		QoSClass: l.QoSClass, QoSRateBps: l.QoSRateBps,
	}
	out.Nodes = append([]NodeSpec(nil), l.Nodes...)
	for _, e := range l.Edges {
		e.HashFields = append([]int(nil), e.HashFields...)
		out.Edges = append(out.Edges, e)
	}
	return out
}

// Encode serializes the topology for coordinator storage.
func (l *Logical) Encode() []byte {
	b, err := json.Marshal(l)
	if err != nil {
		panic("topology: unmarshalable logical topology: " + err.Error())
	}
	return b
}

// DecodeLogical parses a topology encoded by Encode.
func DecodeLogical(b []byte) (*Logical, error) {
	var l Logical
	if err := json.Unmarshal(b, &l); err != nil {
		return nil, fmt.Errorf("topology: decode logical: %w", err)
	}
	return &l, nil
}

// WorkerID identifies one physical worker within an application.
type WorkerID uint32

// Assignment pins one worker instance to a host and switch port
// (the per-worker assignment info row of Table 1).
type Assignment struct {
	Worker WorkerID `json:"worker"`
	// Node is the logical node this worker instantiates.
	Node string `json:"node"`
	// Index is the instance index within the node (0..parallelism-1).
	Index int `json:"index"`
	// Host names the compute host.
	Host string `json:"host"`
	// Port is the SDN switch port the worker is attached to; zero until
	// the worker agent attaches it.
	Port uint32 `json:"port"`
}

// Physical is a scheduled physical topology.
type Physical struct {
	App  uint16 `json:"app"`
	Name string `json:"name"`
	// Generation mirrors the logical generation it was scheduled from.
	Generation int64 `json:"generation"`
	// NextWorker is the next unallocated worker ID; reconfigurations
	// allocate fresh IDs so addresses are never reused.
	NextWorker WorkerID     `json:"nextWorker"`
	Workers    []Assignment `json:"workers"`
}

// Worker returns the assignment of the given worker ID, or nil.
func (p *Physical) Worker(id WorkerID) *Assignment {
	for i := range p.Workers {
		if p.Workers[i].Worker == id {
			return &p.Workers[i]
		}
	}
	return nil
}

// Instances returns the assignments of a logical node sorted by instance
// index; routing tables depend on this ordering being stable.
func (p *Physical) Instances(node string) []Assignment {
	var out []Assignment
	for _, a := range p.Workers {
		if a.Node == node {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// Hosts returns the distinct host names in use, sorted.
func (p *Physical) Hosts() []string {
	seen := make(map[string]bool)
	for _, a := range p.Workers {
		seen[a.Host] = true
	}
	out := make([]string, 0, len(seen))
	for h := range seen {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// Clone deep-copies the physical topology.
func (p *Physical) Clone() *Physical {
	out := *p
	out.Workers = append([]Assignment(nil), p.Workers...)
	return &out
}

// Encode serializes the physical topology for coordinator storage.
func (p *Physical) Encode() []byte {
	b, err := json.Marshal(p)
	if err != nil {
		panic("topology: unmarshalable physical topology: " + err.Error())
	}
	return b
}

// DecodePhysical parses a topology encoded by Encode.
func DecodePhysical(b []byte) (*Physical, error) {
	var p Physical
	if err := json.Unmarshal(b, &p); err != nil {
		return nil, fmt.Errorf("topology: decode physical: %w", err)
	}
	return &p, nil
}

package control

import (
	"testing"

	"typhoon/internal/topology"
	"typhoon/internal/tuple"
)

func TestEncodeDecodeRouting(t *testing.T) {
	in := Routing{Routes: []topology.Route{{
		Edge:     topology.EdgeSpec{From: "a", To: "b", Policy: topology.Fields, HashFields: []int{0, 2}},
		NextHops: []topology.WorkerID{3, 4, 5},
	}}}
	ct := Encode(KindRouting, in)
	kind, err := DecodeKind(ct)
	if err != nil || kind != KindRouting {
		t.Fatalf("kind=%q err=%v", kind, err)
	}
	var out Routing
	if err := DecodePayload(ct, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Routes) != 1 || out.Routes[0].Edge.To != "b" || len(out.Routes[0].NextHops) != 3 {
		t.Fatalf("out = %+v", out)
	}
}

func TestEncodeDecodeAllKinds(t *testing.T) {
	cases := []struct {
		kind    Kind
		payload any
	}{
		{KindRouting, Routing{}},
		{KindSignal, nil},
		{KindMetricReq, MetricReq{Token: 9}},
		{KindMetricResp, MetricResp{Worker: 3, QueueLen: 7, Processed: 100}},
		{KindInputRate, InputRate{TuplesPerSec: 1000}},
		{KindActivate, nil},
		{KindDeactivate, nil},
		{KindBatchSize, BatchSize{Size: 250}},
	}
	for _, c := range cases {
		ct := Encode(c.kind, c.payload)
		if !ct.Stream.IsControl() {
			t.Fatalf("%s: not on control stream", c.kind)
		}
		kind, err := DecodeKind(ct)
		if err != nil || kind != c.kind {
			t.Fatalf("%s: kind=%q err=%v", c.kind, kind, err)
		}
	}
}

func TestMetricRespRoundTrip(t *testing.T) {
	in := MetricResp{Token: 1, Worker: 2, Node: "split", QueueLen: 3, Processed: 4, Emitted: 5, Dropped: 6, ProcNanos: 7}
	ct := Encode(KindMetricResp, in)
	var out MetricResp
	if err := DecodePayload(ct, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("out = %+v", out)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeKind(tuple.New(tuple.Int(1))); err != ErrNotControl {
		t.Fatalf("data tuple: %v", err)
	}
	var out Routing
	if err := DecodePayload(tuple.New(), &out); err != ErrNotControl {
		t.Fatalf("empty tuple: %v", err)
	}
	// Control tuple without payload.
	ct := Encode(KindSignal, nil)
	if err := DecodePayload(ct, &out); err == nil {
		t.Fatal("empty payload should error")
	}
	// Corrupt JSON payload.
	bad := tuple.OnStream(tuple.ControlStream, tuple.String(string(KindRouting)), tuple.Bytes([]byte("{")))
	if err := DecodePayload(bad, &out); err == nil {
		t.Fatal("corrupt payload should error")
	}
}

func TestSignalHelpers(t *testing.T) {
	s := NewSignal()
	if !IsSignal(s) {
		t.Fatal("NewSignal not a signal")
	}
	if IsSignal(tuple.New(tuple.Int(1))) {
		t.Fatal("data tuple classified as signal")
	}
	if s.Stream.IsControl() {
		t.Fatal("signal must reach the application layer, not the framework layer")
	}
}

func TestControlTupleSurvivesSerialization(t *testing.T) {
	ct := Encode(KindBatchSize, BatchSize{Size: 100})
	enc := tuple.Encode(ct)
	dec, _, err := tuple.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	var out BatchSize
	if err := DecodePayload(dec, &out); err != nil || out.Size != 100 {
		t.Fatalf("out=%+v err=%v", out, err)
	}
}

// Package control defines the control tuples of Table 2: the vocabulary the
// Typhoon SDN controller uses to reconfigure running workers through the
// data plane (PacketOut → switch → worker framework layer) and the replies
// workers send back (PacketIn).
//
// A control tuple is an ordinary tuple on tuple.ControlStream whose first
// field is the command kind and whose second field is a JSON payload, so it
// travels through exactly the same packetization and switching machinery as
// application data.
package control

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"typhoon/internal/topology"
	"typhoon/internal/tuple"
)

// Kind names a control tuple type (Table 2).
type Kind string

// Control tuple kinds. Each comment names the payload struct, who emits the
// tuple, and who consumes it; "controller → worker" kinds ride PACKET_OUT
// through the switch onto the worker's port, "worker → controller" kinds are
// punted to the controller by the control-stream flow rule and dispatched to
// apps via App.OnControlTuple.
const (
	// KindRouting updates a worker's routing state (§3.3.2). Payload
	// Routing. Emitted by the controller's reconfiguration sync and the
	// fault-detector app; consumed by the worker framework layer, which
	// swaps its routing table atomically between tuples.
	KindRouting Kind = "ROUTING"
	// KindSignal makes stateful workers flush their in-memory cache (§3.5).
	// No payload. Emitted by the controller during stable stateful
	// reconfiguration; consumed by the worker, which forwards a signal
	// tuple to the application layer (Listing 2's isSignalTuple pattern).
	KindSignal Kind = "SIGNAL"
	// KindMetricReq requests a worker's internal statistics. Payload
	// MetricReq. Emitted by the auto-scaler and metrics-collector apps;
	// consumed by the worker framework layer, which answers with a
	// KindMetricResp carrying the request's token.
	KindMetricReq Kind = "METRIC_REQ"
	// KindMetricResp carries a worker's statistics to the controller.
	// Payload MetricResp. Emitted by workers — both as the answer to
	// KindMetricReq and unsolicited every StatsInterval (Fig 4's worker
	// statistics reporter); consumed by the auto-scaler and the
	// metrics-collector, which caches the rows behind /api/top and the
	// typhoon_worker_* metrics.
	KindMetricResp Kind = "METRIC_RESP"
	// KindInputRate throttles a worker's input processing rate. Payload
	// InputRate. Emitted by controller apps (experiments use it to shape
	// load); consumed by the worker's input loop.
	KindInputRate Kind = "INPUT_RATE"
	// KindActivate unthrottles the first workers of a topology. No
	// payload. Emitted by the controller once rules for a new generation
	// are installed, so sources only emit into a programmed data plane;
	// consumed by source workers started inactive.
	KindActivate Kind = "ACTIVATE"
	// KindDeactivate throttles the first workers of a topology. No
	// payload. Emitted by the controller ahead of disruptive
	// reconfigurations; consumed by source workers.
	KindDeactivate Kind = "DEACTIVATE"
	// KindBatchSize adjusts the I/O layer batch size. Payload BatchSize.
	// Emitted by controller apps tuning the latency/throughput trade-off
	// of Fig 8; consumed by the worker's transport.
	KindBatchSize Kind = "BATCH_SIZE"
	// KindSnapshotReq asks a stateful worker for the state entries of a
	// key-partition range (§3.5 stable update). Payload SnapshotReq.
	// Emitted by the controller's updater app during a managed rescale;
	// consumed by the worker framework layer, which answers with a
	// KindSnapshotResp (empty for non-stateful logic, so the protocol
	// never hangs on a misdeclared node).
	KindSnapshotReq Kind = "SNAPSHOT_REQ"
	// KindSnapshotResp carries a worker's state snapshot back to the
	// controller. Payload SnapshotResp.
	KindSnapshotResp Kind = "SNAPSHOT_RESP"
	// KindRestore replaces a stateful worker's state with migrated
	// entries (§3.5). Payload Restore. Emitted by the updater app after
	// the new flow rules are installed; consumed by the worker framework
	// layer, which answers with a KindRestoreResp.
	KindRestore Kind = "RESTORE"
	// KindRestoreResp acknowledges a KindRestore. Payload RestoreResp.
	KindRestoreResp Kind = "RESTORE_RESP"
)

// ErrNotControl is returned when decoding a non-control tuple.
var ErrNotControl = errors.New("control: not a control tuple")

// Routing is the payload of KindRouting: the complete new routing table for
// the worker (policy-independent and policy-specific state of Listing 1).
type Routing struct {
	Routes []topology.Route `json:"routes"`
}

// InputRate is the payload of KindInputRate; zero or negative means
// unlimited.
type InputRate struct {
	TuplesPerSec float64 `json:"tuplesPerSec"`
}

// BatchSize is the payload of KindBatchSize. Zero values mean "unchanged":
// Size <= 0 leaves the batch threshold alone, FlushDeadline == 0 leaves the
// staging deadline alone (negative disables it).
type BatchSize struct {
	Size          int           `json:"size"`
	FlushDeadline time.Duration `json:"flushDeadlineNs,omitempty"`
}

// MetricReq is the payload of KindMetricReq.
type MetricReq struct {
	// Token correlates the reply.
	Token uint64 `json:"token"`
}

// MetricResp is the payload of KindMetricResp: the worker statistics rows
// the auto-scaler consumes (queue status, emitted tuples, Table 2).
type MetricResp struct {
	Token     uint64            `json:"token"`
	Worker    topology.WorkerID `json:"worker"`
	Node      string            `json:"node"`
	QueueLen  int               `json:"queueLen"`
	Processed uint64            `json:"processed"`
	Emitted   uint64            `json:"emitted"`
	Dropped   uint64            `json:"dropped"`
	// ProcNanos is cumulative execute time in nanoseconds.
	ProcNanos uint64 `json:"procNanos"`
}

// SnapshotReq is the payload of KindSnapshotReq: the key-partition range
// whose state entries the controller wants (see worker.KeyRange).
type SnapshotReq struct {
	// Token correlates the reply.
	Token uint64 `json:"token"`
	// From/To select the partitions [From, To).
	From uint32 `json:"from"`
	To   uint32 `json:"to"`
}

// SnapshotResp is the payload of KindSnapshotResp: one worker's state
// entries for the requested range, keyed by routing key. Blob values are
// opaque to the framework (JSON carries them base64-encoded).
type SnapshotResp struct {
	Token  uint64            `json:"token"`
	Worker topology.WorkerID `json:"worker"`
	Node   string            `json:"node"`
	State  map[string][]byte `json:"state,omitempty"`
}

// Restore is the payload of KindRestore: the complete new state of the
// receiving worker (replace semantics — entries absent here are dropped).
type Restore struct {
	Token uint64            `json:"token"`
	State map[string][]byte `json:"state,omitempty"`
}

// RestoreResp is the payload of KindRestoreResp.
type RestoreResp struct {
	Token  uint64            `json:"token"`
	Worker topology.WorkerID `json:"worker"`
}

// Encode builds the control tuple for a command. The payload may be nil for
// kinds without parameters (SIGNAL, ACTIVATE, DEACTIVATE).
func Encode(kind Kind, payload any) tuple.Tuple {
	var body []byte
	if payload != nil {
		b, err := json.Marshal(payload)
		if err != nil {
			panic("control: unmarshalable payload: " + err.Error())
		}
		body = b
	}
	return tuple.OnStream(tuple.ControlStream, tuple.String(string(kind)), tuple.Bytes(body))
}

// DecodeKind extracts the command kind of a control tuple.
func DecodeKind(t tuple.Tuple) (Kind, error) {
	if !t.Stream.IsControl() || t.Len() < 1 {
		return "", ErrNotControl
	}
	return Kind(t.Field(0).AsString()), nil
}

// DecodePayload unmarshals a control tuple's payload into out.
func DecodePayload(t tuple.Tuple, out any) error {
	if !t.Stream.IsControl() || t.Len() < 2 {
		return ErrNotControl
	}
	body := t.Field(1).AsBytes()
	if len(body) == 0 {
		return fmt.Errorf("control: empty payload")
	}
	return json.Unmarshal(body, out)
}

// NewSignal builds the flush-signal tuple stateful workers consume
// (Listing 2's isSignalTuple pattern). It travels on tuple.SignalStream so
// it reaches the application layer rather than being consumed by the
// framework layer.
func NewSignal() tuple.Tuple {
	return tuple.OnStream(tuple.SignalStream)
}

// IsSignal reports whether t is a flush signal.
func IsSignal(t tuple.Tuple) bool { return t.Stream.IsSignal() }

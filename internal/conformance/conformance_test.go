package conformance

import (
	"context"
	"testing"
	"time"

	"typhoon/internal/chaos"
	"typhoon/internal/core"
	"typhoon/internal/topology"
)

// newHarness builds a Typhoon cluster with fast test timings and the
// conformance environment installed.
func newHarness(t *testing.T, p *Params, strict bool, hosts ...string) (*core.Cluster, *Recorder) {
	t.Helper()
	if len(hosts) == 0 {
		hosts = []string{"h1", "h2"}
	}
	c, err := core.NewCluster(core.Config{
		Mode:              core.ModeTyphoon,
		Hosts:             hosts,
		HeartbeatInterval: 100 * time.Millisecond,
		HeartbeatTimeout:  2 * time.Second,
		MonitorInterval:   200 * time.Millisecond,
		DrainDelay:        100 * time.Millisecond,
		RestartDelay:      200 * time.Millisecond,
		DefaultBatchSize:  50,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	rec := NewRecorder(*p, strict)
	c.Env.Set(EnvParams, p)
	c.Env.Set(EnvRecorder, rec)
	return c, rec
}

// buildTopo is the conformance pipeline: tagged source -> keyed stateful
// counter (key-routed) -> recording sink.
func buildTopo(t *testing.T, name string, counterParallelism int) *topology.Logical {
	t.Helper()
	b := topology.NewBuilder(name, 9)
	b.Source("src", LogicTaggedSource, 1)
	b.Node("count", LogicKeyedCounter, counterParallelism).Stateful().FieldsFrom("src", 0)
	b.Node("sink", LogicRecordingSink, 1).GlobalFrom("count")
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func waitCond(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// pauseBound is the conformance ceiling on the rescale's source pause.
// The protocol's pause is drain + snapshot + reschedule + restore — far
// below this even under -race; the bound exists to catch regressions to
// unbounded stalls, not to benchmark.
const pauseBound = 10 * time.Second

// runRescaleConformance drives the seeded stream through the pipeline,
// rescales the stateful counter mid-stream, and audits every invariant.
func runRescaleConformance(t *testing.T, name string, from, to int) {
	p := &Params{
		Keys: 32, PerKey: 400, Window: 25, Seed: 42,
		ThrottleEvery: 32, ThrottleDelay: 3 * time.Millisecond,
	}
	c, rec := newHarness(t, p, true)
	if err := c.Submit(buildTopo(t, name, from), 15*time.Second); err != nil {
		t.Fatal(err)
	}

	waitCond(t, 30*time.Second, "stream underway", func() bool {
		return rec.Total() > p.Total()/8
	})
	if rec.Total() >= p.Total() {
		t.Fatalf("stream already complete before rescale; slow the source")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	report, err := c.Rescale(ctx, name, "count", to)
	if err != nil {
		t.Fatalf("rescale: %v", err)
	}
	if report.From != from || report.To != to {
		t.Fatalf("report parallelism %d -> %d, want %d -> %d", report.From, report.To, from, to)
	}
	if report.Pause <= 0 || report.Pause > pauseBound {
		t.Fatalf("pause %v outside (0, %v]", report.Pause, pauseBound)
	}
	if report.KeysMigrated == 0 {
		t.Fatalf("no state migrated in a mid-stream stateful rescale")
	}
	if got := len(c.WorkersOf(name, "count")); got != to {
		t.Fatalf("%d counter workers after rescale, want %d", got, to)
	}

	waitCond(t, 60*time.Second, "stream completion", rec.Complete)
	if bad := rec.Check(); len(bad) != 0 {
		for i, v := range bad {
			if i == 10 {
				t.Errorf("... (%d findings total)", len(bad))
				break
			}
			t.Errorf("conformance: %s", v)
		}
		t.FailNow()
	}
	t.Logf("rescale %d->%d: pause=%v drain=%v keys=%d bytes=%d",
		from, to, report.Pause, report.Drain, report.KeysMigrated, report.StateBytes)
}

func TestConformanceScaleOut(t *testing.T) {
	runRescaleConformance(t, "conf-out", 2, 4)
}

func TestConformanceScaleIn(t *testing.T) {
	runRescaleConformance(t, "conf-in", 4, 2)
}

// TestConformanceRescaleDuringChaos overlaps the rescale with a tunnel
// partition. Data frames between the hosts drop (at-most-once delivery),
// so the relaxed recorder tolerates forward gaps — but duplication,
// reordering, and state replay remain violations, the rescale must still
// converge, and the stream must keep flowing afterwards.
func TestConformanceRescaleDuringChaos(t *testing.T) {
	p := &Params{
		Keys: 16, PerKey: 2000, Window: 50, Seed: 7,
		ThrottleEvery: 16, ThrottleDelay: 2 * time.Millisecond,
	}
	c, rec := newHarness(t, p, false)
	if err := c.Submit(buildTopo(t, "conf-chaos", 2), 15*time.Second); err != nil {
		t.Fatal(err)
	}
	waitCond(t, 30*time.Second, "stream underway", func() bool {
		return rec.Total() > 500
	})

	if err := c.Chaos.Apply(chaos.Spec{
		Kind: chaos.KindPartition, Host: "h1", Peer: "h2",
		Duration: 1500 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Second)
	defer cancel()
	report, err := c.Rescale(ctx, "conf-chaos", "count", 4)
	if err != nil {
		t.Fatalf("rescale under partition: %v", err)
	}
	if report.To != 4 {
		t.Fatalf("report.To = %d, want 4", report.To)
	}

	after := rec.Total()
	waitCond(t, 30*time.Second, "stream flowing after chaos + rescale", func() bool {
		return rec.Total() > after+500
	})
	if bad, n := rec.Violations(); n != 0 {
		t.Fatalf("%d violations under chaos (first: %v)", n, bad[0])
	}
	t.Logf("chaos rescale: pause=%v keys=%d gaps=%d", report.Pause, report.KeysMigrated, rec.Gaps())
}

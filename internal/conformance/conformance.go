// Package conformance is the consistency-conformance harness for the §3.5
// stable topology update protocol: a seeded, deterministic workload whose
// every tuple is tagged (key, seq), driven through a live topology while
// the cluster rescales mid-stream, with a recorder asserting the
// protocol's end-to-end guarantees:
//
//   - no loss and no duplication: every key's sequence arrives exactly
//     once (each key sees exactly 1..N);
//   - per-key FIFO: sequences reach the sink strictly in order, across
//     the migration boundary;
//   - state integrity: the keyed counter's running count equals the
//     sequence number for every delivery, so migrated state is exactly
//     the state the old instances held;
//   - window integrity: tumbling windows over the tuples' virtual clock
//     contain exactly the expected number of entries.
//
// Time is virtual: a tuple's sequence number is its clock, so window
// membership (window = (seq-1)/W) is a pure function of the seeded input
// and never depends on wall-clock scheduling — the harness is
// deterministic under -race, chaos, and arbitrary rescale timing.
package conformance

import (
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"typhoon/internal/conformance/stream"
	"typhoon/internal/tuple"
	"typhoon/internal/worker"
)

// Shared environment keys.
const (
	// EnvRecorder holds the harness *Recorder.
	EnvRecorder = "conformance.recorder"
	// EnvParams holds the harness *Params.
	EnvParams = "conformance.params"
)

// Logic names registered by this package.
const (
	LogicTaggedSource  = "conformance/tagged-source"
	LogicKeyedCounter  = "conformance/keyed-counter"
	LogicRecordingSink = "conformance/recording-sink"
)

func init() {
	worker.RegisterLogic(LogicTaggedSource, func() worker.Component { return &TaggedSource{} })
	worker.RegisterLogic(LogicKeyedCounter, func() worker.Component { return &KeyedCounter{} })
	worker.RegisterLogic(LogicRecordingSink, func() worker.Component { return &RecordingSink{} })
}

// Params configures one conformance run.
type Params struct {
	// Keys is the number of distinct routing keys.
	Keys int
	// PerKey is how many sequenced tuples each key carries (1..PerKey).
	PerKey int64
	// Window is the tumbling window width in virtual-clock units.
	Window int64
	// Seed drives key naming and interleaving; the emitted stream is a
	// pure function of Params.
	Seed int64
	// ThrottleEvery/ThrottleDelay pace the source (a sleep every N
	// tuples) so the run spans long enough for a mid-stream rescale.
	// Pacing changes wall-clock timing only, never content.
	ThrottleEvery int
	ThrottleDelay time.Duration
}

// KeyName returns the i-th routing key. The seed participates so key→
// partition assignments differ across seeds.
func (p Params) KeyName(i int) string {
	return fmt.Sprintf("k%03d-%d", i, p.Seed)
}

// Total is the run's total tuple count.
func (p Params) Total() int64 { return int64(p.Keys) * p.PerKey }

func harnessEnv(ctx *worker.Context) (*Params, *Recorder) {
	var pr *Params
	var rec *Recorder
	if e := ctx.Env(); e != nil {
		pr, _ = e.Get(EnvParams).(*Params)
		rec, _ = e.Get(EnvRecorder).(*Recorder)
	}
	if pr == nil {
		pr = &Params{Keys: 1, PerKey: 1, Window: 1}
	}
	if rec == nil {
		rec = NewRecorder(*pr, true)
	}
	return pr, rec
}

// TaggedSource emits the seeded (key, seq) stream: per-key sequences
// counting 1..PerKey, interleaved across keys in a seed-shuffled round-
// robin order. Parallelism must be 1 — the tagged stream is one totally
// ordered log.
type TaggedSource struct {
	p        *Params
	order    []int   // seed-shuffled key visit order
	next     []int64 // next sequence per key
	pos      int
	emitted  int64
	sinceNap int
}

// Open implements worker.Component.
func (s *TaggedSource) Open(ctx *worker.Context) error {
	s.p, _ = harnessEnv(ctx)
	rng := rand.New(rand.NewSource(s.p.Seed))
	s.order = rng.Perm(s.p.Keys)
	s.next = make([]int64, s.p.Keys)
	for i := range s.next {
		s.next[i] = 1
	}
	return nil
}

// Close implements worker.Component.
func (s *TaggedSource) Close(*worker.Context) error { return nil }

// Next implements worker.Spout.
func (s *TaggedSource) Next(ctx *worker.Context) (bool, error) {
	if s.emitted >= s.p.Total() {
		return false, nil
	}
	if s.p.ThrottleEvery > 0 && s.p.ThrottleDelay > 0 {
		if s.sinceNap >= s.p.ThrottleEvery {
			s.sinceNap = 0
			time.Sleep(s.p.ThrottleDelay)
		}
		s.sinceNap++
	}
	// Round-robin the shuffled key order, skipping exhausted keys.
	for {
		k := s.order[s.pos]
		s.pos = (s.pos + 1) % len(s.order)
		if s.next[k] <= s.p.PerKey {
			ctx.Emit(tuple.String(s.p.KeyName(k)), tuple.Int(s.next[k]))
			s.next[k]++
			s.emitted++
			return true, nil
		}
	}
}

// KeyedCounter is the stateful node under rescale: it tracks each key's
// last sequence as its running count and forwards (key, seq, count). With
// exactly-once in-order delivery and correct state migration, count==seq
// always holds; any loss, duplication, reorder, or state corruption shows
// up as a mismatch. Implements worker.StatefulComponent so managed
// rescales migrate the counts.
type KeyedCounter struct {
	rec    *Recorder
	counts map[string]int64
}

// Open implements worker.Component.
func (c *KeyedCounter) Open(ctx *worker.Context) error {
	_, c.rec = harnessEnv(ctx)
	c.counts = make(map[string]int64)
	return nil
}

// Close implements worker.Component.
func (c *KeyedCounter) Close(*worker.Context) error { return nil }

// Execute implements worker.Bolt.
func (c *KeyedCounter) Execute(ctx *worker.Context, in tuple.Tuple) error {
	if in.Stream.IsSignal() {
		return nil
	}
	key := in.Field(0).AsString()
	seq := in.Field(1).AsInt()
	if want := c.counts[key] + 1; seq != want {
		c.rec.counterMismatch(key, seq, want)
	}
	c.counts[key] = seq
	ctx.Emit(tuple.String(key), tuple.Int(seq), tuple.Int(c.counts[key]))
	return nil
}

// SnapshotState implements worker.StatefulComponent.
func (c *KeyedCounter) SnapshotState(_ *worker.Context, r worker.KeyRange) (map[string][]byte, error) {
	out := make(map[string][]byte)
	for key, n := range c.counts {
		if r.Contains(worker.PartitionOfKey(key)) {
			out[key] = []byte(strconv.FormatInt(n, 10))
		}
	}
	return out, nil
}

// RestoreState implements worker.StatefulComponent (replace semantics).
func (c *KeyedCounter) RestoreState(_ *worker.Context, state map[string][]byte) error {
	counts := make(map[string]int64, len(state))
	for key, blob := range state {
		n, err := strconv.ParseInt(string(blob), 10, 64)
		if err != nil {
			return fmt.Errorf("conformance: bad count for %q: %w", key, err)
		}
		counts[key] = n
	}
	c.counts = counts
	return nil
}

// RecordingSink delivers every (key, seq, count) to the run's Recorder.
// Parallelism must be 1 so the recorder observes one global arrival order.
type RecordingSink struct {
	rec *Recorder
}

// Open implements worker.Component.
func (s *RecordingSink) Open(ctx *worker.Context) error {
	_, s.rec = harnessEnv(ctx)
	return nil
}

// Close implements worker.Component.
func (s *RecordingSink) Close(*worker.Context) error { return nil }

// Execute implements worker.Bolt.
func (s *RecordingSink) Execute(_ *worker.Context, in tuple.Tuple) error {
	if in.Stream.IsSignal() {
		return nil
	}
	s.rec.Record(in.Field(0).AsString(), in.Field(1).AsInt(), in.Field(2).AsInt())
	return nil
}

// Recorder collects sink deliveries and checks the conformance invariants
// online. In strict mode a sequence gap is a violation (no-loss runs);
// in relaxed mode gaps are counted but tolerated (chaos runs drop frames
// by design under at-most-once delivery) while duplication, reordering,
// and count mismatches remain violations.
//
// The per-key stream invariants ride on stream.Checker (in dedupe mode,
// so duplicates and reorders are reported distinctly); the Recorder adds
// the seeded run's ground truth: expected totals per key and tumbling-
// window population over the tuples' virtual clock.
type Recorder struct {
	p  Params
	sc *stream.Checker

	mu      sync.Mutex
	windows map[string]map[int64]int64
}

// NewRecorder builds a recorder for one run.
func NewRecorder(p Params, strict bool) *Recorder {
	return &Recorder{
		p:       p,
		sc:      stream.New(strict, true),
		windows: make(map[string]map[int64]int64),
	}
}

// Record ingests one sink delivery.
func (r *Recorder) Record(key string, seq, count int64) {
	if !r.sc.Observe(key, seq, count) {
		return // duplicate: never counts toward window population
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.windows[key] == nil {
		r.windows[key] = make(map[int64]int64)
	}
	r.windows[key][(seq-1)/r.p.Window]++
}

// counterMismatch is the KeyedCounter's in-pipeline invariant report.
func (r *Recorder) counterMismatch(key string, seq, want int64) {
	r.sc.CounterMismatch(key, seq, want)
}

// Total reports sink deliveries so far.
func (r *Recorder) Total() int64 { return r.sc.Total() }

// Gaps reports tolerated sequence gaps (relaxed mode only).
func (r *Recorder) Gaps() int64 { return r.sc.Gaps() }

// Violations returns the recorded violations (capped) and the full count.
func (r *Recorder) Violations() ([]string, int64) { return r.sc.Violations() }

// Complete reports whether every key has reached PerKey.
func (r *Recorder) Complete() bool {
	if r.sc.Keys() < r.p.Keys {
		return false
	}
	for i := 0; i < r.p.Keys; i++ {
		if r.sc.Last(r.p.KeyName(i)) < r.p.PerKey {
			return false
		}
	}
	return true
}

// Check runs the end-of-run audit for a strict (no-loss) run: exactly
// PerKey deliveries per key and every tumbling window carrying exactly
// its expected population. Returns all failures found (nil when clean).
func (r *Recorder) Check() []string {
	bad := r.sc.ViolationFindings()
	if total := r.sc.Total(); total != r.p.Total() {
		bad = append(bad, fmt.Sprintf("delivered %d tuples, want %d", total, r.p.Total()))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := 0; i < r.p.Keys; i++ {
		key := r.p.KeyName(i)
		if n := r.sc.SeqCount(key); n != r.p.PerKey {
			bad = append(bad, fmt.Sprintf("key %s: %d distinct seqs, want %d", key, n, r.p.PerKey))
		}
		lastWin := (r.p.PerKey - 1) / r.p.Window
		for win := int64(0); win <= lastWin; win++ {
			want := r.p.Window
			if win == lastWin {
				want = r.p.PerKey - win*r.p.Window
			}
			if got := r.windows[key][win]; got != want {
				bad = append(bad, fmt.Sprintf("key %s window %d: %d entries, want %d", key, win, got, want))
			}
		}
	}
	return bad
}

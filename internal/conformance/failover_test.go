package conformance

import (
	"testing"
	"time"

	"typhoon/internal/core"
)

// newReplicatedHarness is newHarness with a 3-instance replicated control
// plane: ctl-0/ctl-1/ctl-2 campaign for per-switch mastership over the
// coordinator, and each topology is driven by the master of its first
// host.
func newReplicatedHarness(t *testing.T, p *Params, strict bool) (*core.Cluster, *Recorder) {
	t.Helper()
	c, err := core.NewCluster(core.Config{
		Mode:              core.ModeTyphoon,
		Hosts:             []string{"h1", "h2"},
		Controllers:       3,
		HeartbeatInterval: 100 * time.Millisecond,
		HeartbeatTimeout:  2 * time.Second,
		MonitorInterval:   200 * time.Millisecond,
		DrainDelay:        100 * time.Millisecond,
		RestartDelay:      200 * time.Millisecond,
		DefaultBatchSize:  50,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	rec := NewRecorder(*p, strict)
	c.Env.Set(EnvParams, p)
	c.Env.Set(EnvRecorder, rec)
	return c, rec
}

// TestConformanceMasterFailover kills the controller mastering the
// topology's primary switch in the middle of a strict seeded stream. The
// surviving peers must take the switch over (a higher lease epoch under a
// new owner), reinstall its rules, and resume the control plane — while
// the data plane keeps forwarding from its hot flow caches with zero
// tuple loss, duplication, or reordering.
func TestConformanceMasterFailover(t *testing.T) {
	p := &Params{
		Keys: 24, PerKey: 500, Window: 25, Seed: 11,
		ThrottleEvery: 24, ThrottleDelay: 3 * time.Millisecond,
	}
	c, rec := newReplicatedHarness(t, p, true)
	if err := c.Submit(buildTopo(t, "conf-failover", 2), 20*time.Second); err != nil {
		t.Fatal(err)
	}

	waitCond(t, 30*time.Second, "stream underway", func() bool {
		return rec.Total() > p.Total()/8
	})
	if rec.Total() >= p.Total() {
		t.Fatalf("stream already complete before failover; slow the source")
	}

	// h1 sorts first, so its master also owns the topology's control
	// tuples and rescale/balancing apps — killing it exercises both the
	// switch-mastership and app-ownership failover paths at once.
	victim, victimEpoch, ok := c.MasterOf("h1")
	if !ok {
		t.Fatal("no master elected for h1")
	}
	if err := c.KillController(victim); err != nil {
		t.Fatal(err)
	}
	t.Logf("killed %s (h1 master, epoch %d) at %d/%d tuples",
		victim, victimEpoch, rec.Total(), p.Total())

	// Failover: a surviving peer must claim h1 at a fenced higher epoch.
	var owner string
	var epoch uint64
	waitCond(t, 10*time.Second, "h1 mastership failover", func() bool {
		owner, epoch, ok = c.MasterOf("h1")
		return ok && owner != victim && epoch > victimEpoch
	})
	t.Logf("h1 failed over to %s (epoch %d -> %d)", owner, victimEpoch, epoch)

	// Zero-interruption: the strict recorder tolerates nothing — every
	// (key, seq) exactly once, in order, with intact counter state.
	waitCond(t, 60*time.Second, "stream completion", rec.Complete)
	if bad := rec.Check(); len(bad) != 0 {
		for i, v := range bad {
			if i == 10 {
				t.Errorf("... (%d findings total)", len(bad))
				break
			}
			t.Errorf("conformance: %s", v)
		}
		t.FailNow()
	}
}

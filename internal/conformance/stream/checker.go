package stream

import (
	"fmt"
	"sync"
)

// Checker is the reusable per-key stream invariant checker the
// Recorder and the scenario harness share. It audits a tagged stream of
// (key, seq, count) deliveries online against the protocol guarantees:
//
//   - no duplication: a sequence never arrives twice (seq == last);
//   - per-key FIFO: sequences never go backwards (seq < last);
//   - no loss: sequences are contiguous — in strict mode a forward gap is
//     a violation, in relaxed mode (chaos runs under at-most-once
//     delivery) gaps are counted but tolerated;
//   - state integrity: the carried running count equals the sequence
//     number, so migrated or restored state matches what the pipeline
//     actually processed.
//
// With dedupe off the checker tracks only each key's high-water mark —
// O(keys) memory, which is what lets soak runs audit hours of traffic.
// With dedupe on it additionally remembers every delivered sequence so a
// duplicate is distinguishable from a reorder (the Recorder's mode).
type Checker struct {
	mu         sync.Mutex
	strict     bool
	dedupe     bool
	total      int64
	gaps       int64
	last       map[string]int64
	seen       map[string]map[int64]bool
	nviolation int64
	violations []string
}

// New builds a checker. strict promotes forward gaps to
// violations; dedupe tracks every sequence to tell duplicates from
// reorders at O(total) memory.
func New(strict, dedupe bool) *Checker {
	c := &Checker{
		strict: strict,
		dedupe: dedupe,
		last:   make(map[string]int64),
	}
	if dedupe {
		c.seen = make(map[string]map[int64]bool)
	}
	return c
}

// Observe ingests one delivery. It reports whether the delivery advanced
// the key's stream (false for duplicates, which callers should not count
// into completeness accounting).
func (c *Checker) Observe(key string, seq, count int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.total++
	if c.dedupe {
		if seen := c.seen[key]; seen != nil && seen[seq] {
			c.violatef("duplicate: key %s seq %d delivered twice", key, seq)
			return false
		}
		if c.seen[key] == nil {
			c.seen[key] = make(map[int64]bool)
		}
		c.seen[key][seq] = true
	}
	last := c.last[key]
	switch {
	case seq == last && !c.dedupe:
		c.violatef("duplicate: key %s seq %d delivered twice", key, seq)
		return false
	case seq <= last:
		c.violatef("reorder: key %s seq %d after %d", key, seq, last)
	case seq != last+1:
		if c.strict {
			c.violatef("gap: key %s jumped %d -> %d", key, last, seq)
		} else {
			c.gaps++
		}
	}
	if seq > last {
		c.last[key] = seq
	}
	if count != seq {
		c.violatef("count mismatch: key %s seq %d carried count %d", key, seq, count)
	}
	return true
}

// CounterMismatch is the in-pipeline stateful stage's invariant report:
// the stage expected sequence want for key but saw seq. Replays (seq
// below the expected count) are violations even in relaxed mode; forward
// jumps are tolerated gaps there, since drops upstream of the stage are
// the relaxed mode's whole point.
func (c *Checker) CounterMismatch(key string, seq, want int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.strict {
		c.violatef("counter state: key %s got seq %d, expected %d", key, seq, want)
	} else if seq < want {
		c.violatef("counter state: key %s replayed seq %d below %d", key, seq, want)
	} else {
		c.gaps++
	}
}

// maxViolations bounds the recorded violation list; the count keeps
// growing past it.
const maxViolations = 64

// violatef appends a violation under the held lock.
func (c *Checker) violatef(format string, args ...any) {
	c.nviolation++
	if len(c.violations) < maxViolations {
		c.violations = append(c.violations, fmt.Sprintf(format, args...))
	}
}

// Total reports deliveries observed so far.
func (c *Checker) Total() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Gaps reports tolerated sequence gaps (relaxed mode only).
func (c *Checker) Gaps() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gaps
}

// Last reports a key's delivered high-water mark.
func (c *Checker) Last(key string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last[key]
}

// Keys reports how many distinct keys have been delivered.
func (c *Checker) Keys() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.last)
}

// SeqCount reports a key's distinct delivered sequences (dedupe mode; in
// high-water-mark mode it reports the high-water mark, which equals the
// distinct count exactly when no gap or reorder violation was recorded).
func (c *Checker) SeqCount(key string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dedupe {
		return int64(len(c.seen[key]))
	}
	return c.last[key]
}

// Violations returns the recorded violations (capped) and the full count.
func (c *Checker) Violations() ([]string, int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.violations...), c.nviolation
}

// ViolationFindings renders the capped list plus an overflow marker.
func (c *Checker) ViolationFindings() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := append([]string(nil), c.violations...)
	if extra := c.nviolation - int64(len(c.violations)); extra > 0 {
		out = append(out, fmt.Sprintf("... and %d more violations", extra))
	}
	return out
}

// CheckComplete is the strict end-of-run no-loss audit against the
// emitted ground truth: every key must have been delivered exactly its
// emitted count. Combined with a clean violation record (FIFO + no-dup +
// contiguity), equality of the high-water mark proves exactly-once
// delivery. Returns all failures found (nil when clean), including any
// online violations.
func (c *Checker) CheckComplete(emitted map[string]int64) []string {
	bad := c.ViolationFindings()
	c.mu.Lock()
	defer c.mu.Unlock()
	var want int64
	for key, n := range emitted {
		want += n
		if got := c.last[key]; got != n {
			bad = append(bad, fmt.Sprintf("key %s: delivered through seq %d, emitted %d", key, got, n))
		}
	}
	for key := range c.last {
		if _, ok := emitted[key]; !ok {
			bad = append(bad, fmt.Sprintf("key %s: delivered but never emitted", key))
		}
	}
	if c.total != want {
		bad = append(bad, fmt.Sprintf("delivered %d tuples, emitted %d", c.total, want))
	}
	return bad
}

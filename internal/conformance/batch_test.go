package conformance

import (
	"testing"
	"time"

	"typhoon/internal/core"
)

// newBatchHarness is newHarness with the batching knobs exposed: the sweep
// runs the same strict pipeline at several batch sizes, and the deadline
// case needs the worker loop's periodic flush pushed out of the way so only
// the transport's bounded staging wait can move tuples.
func newBatchHarness(t *testing.T, p *Params, batch int, deadline, workerFlush time.Duration) (*core.Cluster, *Recorder) {
	t.Helper()
	c, err := core.NewCluster(core.Config{
		Mode:                 core.ModeTyphoon,
		Hosts:                []string{"h1", "h2"},
		HeartbeatInterval:    100 * time.Millisecond,
		HeartbeatTimeout:     2 * time.Second,
		MonitorInterval:      200 * time.Millisecond,
		DrainDelay:           100 * time.Millisecond,
		RestartDelay:         200 * time.Millisecond,
		DefaultBatchSize:     batch,
		DefaultFlushDeadline: deadline,
		WorkerFlushInterval:  workerFlush,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	rec := NewRecorder(*p, true)
	c.Env.Set(EnvParams, p)
	c.Env.Set(EnvRecorder, rec)
	return c, rec
}

// TestConformanceBatchSweep runs the strict pipeline — per-key FIFO,
// no-loss, no-dup — at batch size 1 (every tuple its own flush), the
// cluster default, and 256 (frames pack until the payload budget splits
// them). The delivery invariants must hold identically at every point of
// the latency/throughput trade-off.
func TestConformanceBatchSweep(t *testing.T) {
	for _, bs := range []struct {
		name  string
		batch int
	}{
		{"size-1", 1},
		{"size-default", 50},
		{"size-256", 256},
	} {
		t.Run(bs.name, func(t *testing.T) {
			p := &Params{
				Keys: 16, PerKey: 200, Window: 25, Seed: 11,
				ThrottleEvery: 64, ThrottleDelay: time.Millisecond,
			}
			c, rec := newBatchHarness(t, p, bs.batch, 0, 0)
			if err := c.Submit(buildTopo(t, "conf-batch-"+bs.name, 2), 15*time.Second); err != nil {
				t.Fatal(err)
			}
			waitCond(t, 60*time.Second, "stream completion", rec.Complete)
			if bad := rec.Check(); len(bad) != 0 {
				for i, v := range bad {
					if i == 10 {
						t.Errorf("... (%d findings total)", len(bad))
						break
					}
					t.Errorf("conformance: %s", v)
				}
				t.FailNow()
			}
		})
	}
}

// TestConformanceFlushDeadlineOnly pins the bounded staging wait end to
// end: the batch threshold is unreachable (100k) and the worker loop's
// periodic flush is pushed to a minute, so the ONLY mechanism that can move
// a staged tuple is the transport's flush deadline firing from the worker's
// Recv polling. A slow open-loop source then completes the strict stream —
// and does so promptly, bounding the per-tuple latency the deadline exists
// to cap.
func TestConformanceFlushDeadlineOnly(t *testing.T) {
	p := &Params{
		Keys: 8, PerKey: 50, Window: 10, Seed: 23,
		ThrottleEvery: 8, ThrottleDelay: 2 * time.Millisecond,
	}
	c, rec := newBatchHarness(t, p, 100_000, 2*time.Millisecond, time.Minute)
	if err := c.Submit(buildTopo(t, "conf-deadline", 2), 15*time.Second); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	waitCond(t, 30*time.Second, "deadline-driven stream completion", rec.Complete)
	elapsed := time.Since(start)
	if bad := rec.Check(); len(bad) != 0 {
		t.Fatalf("%d conformance findings (first: %v)", len(bad), bad[0])
	}
	// The source emits ~400 tuples at ~2ms per 8: roughly 100ms of open-loop
	// offered load. Without the deadline nothing would flush for a minute;
	// completing well under that proves the bound is what moved the tuples.
	if elapsed > 20*time.Second {
		t.Fatalf("deadline-only stream took %v; staging deadline is not firing", elapsed)
	}
	t.Logf("deadline-only completion in %v", elapsed)
}

// TestConformanceBatchRetuneMidStream retunes batch size and flush deadline
// through the cluster's SetBatch — the /api/v1/batch path — while the
// strict stream is in flight: the BATCH_SIZE control tuples must reach
// every running worker without disturbing FIFO/no-loss/no-dup delivery.
func TestConformanceBatchRetuneMidStream(t *testing.T) {
	p := &Params{
		Keys: 16, PerKey: 300, Window: 25, Seed: 31,
		ThrottleEvery: 32, ThrottleDelay: 2 * time.Millisecond,
	}
	c, rec := newBatchHarness(t, p, 50, 0, 0)
	if err := c.Submit(buildTopo(t, "conf-retune", 2), 15*time.Second); err != nil {
		t.Fatal(err)
	}
	waitCond(t, 30*time.Second, "stream underway", func() bool {
		return rec.Total() > p.Total()/8
	})
	if err := c.SetBatch(256, 2*time.Millisecond); err != nil {
		t.Fatalf("SetBatch: %v", err)
	}
	if rec.Complete() {
		t.Fatal("stream finished before the retune; slow the source")
	}
	waitCond(t, 60*time.Second, "stream completion after retune", rec.Complete)
	if bad := rec.Check(); len(bad) != 0 {
		t.Fatalf("%d conformance findings after retune (first: %v)", len(bad), bad[0])
	}
}

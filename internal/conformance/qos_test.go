package conformance

import (
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"typhoon/internal/core"
	"typhoon/internal/topology"
	"typhoon/internal/tuple"
	"typhoon/internal/worker"
)

// QoS contention scenario: a low-rate guaranteed tenant and a flooding
// best-effort tenant share the same two hosts (and therefore the same
// tunnel). With meters, weighted egress queues, and the bandwidth
// allocator online, the guaranteed tenant must lose nothing and keep a
// bounded tail latency while the flood is policed.

const (
	logicQoSPacedSource = "conformance/qos-paced-source"
	logicQoSLatencySink = "conformance/qos-latency-sink"
	logicQoSFloodSource = "conformance/qos-flood-source"
	logicQoSBlackhole   = "conformance/qos-blackhole-sink"

	// envQoSMeter holds the run's *latencyMeter.
	envQoSMeter = "conformance.qos.meter"
)

func init() {
	worker.RegisterLogic(logicQoSPacedSource, func() worker.Component { return &qosPacedSource{} })
	worker.RegisterLogic(logicQoSLatencySink, func() worker.Component { return &qosLatencySink{} })
	worker.RegisterLogic(logicQoSFloodSource, func() worker.Component { return &qosFloodSource{} })
	worker.RegisterLogic(logicQoSBlackhole, func() worker.Component { return &qosBlackhole{} })
}

// latencyMeter audits the guaranteed tenant: exactly-once delivery of the
// paced sequence and the emit-to-sink latency distribution.
type latencyMeter struct {
	// total tuples the paced source emits; pace is the per-tuple delay.
	total int64
	pace  time.Duration

	mu   sync.Mutex
	seen map[int64]bool
	dups int64
	lat  []time.Duration
}

func newLatencyMeter(total int64, pace time.Duration) *latencyMeter {
	return &latencyMeter{total: total, pace: pace, seen: make(map[int64]bool)}
}

func (m *latencyMeter) record(seq int64, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.seen[seq] {
		m.dups++
		return
	}
	m.seen[seq] = true
	m.lat = append(m.lat, d)
}

func (m *latencyMeter) delivered() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return int64(len(m.seen))
}

func (m *latencyMeter) duplicates() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dups
}

// p99 returns the 99th-percentile emit-to-sink latency.
func (m *latencyMeter) p99() time.Duration {
	m.mu.Lock()
	lat := append([]time.Duration(nil), m.lat...)
	m.mu.Unlock()
	if len(lat) == 0 {
		return 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return lat[(len(lat)-1)*99/100]
}

func qosMeter(ctx *worker.Context) *latencyMeter {
	if e := ctx.Env(); e != nil {
		if m, ok := e.Get(envQoSMeter).(*latencyMeter); ok {
			return m
		}
	}
	return newLatencyMeter(1, 0)
}

// qosPacedSource emits (seq, emitNanos) at a steady low rate — the
// guaranteed tenant's workload, far below link capacity.
type qosPacedSource struct {
	m   *latencyMeter
	seq int64
}

func (s *qosPacedSource) Open(ctx *worker.Context) error { s.m = qosMeter(ctx); return nil }
func (s *qosPacedSource) Close(*worker.Context) error    { return nil }

func (s *qosPacedSource) Next(ctx *worker.Context) (bool, error) {
	if s.seq >= s.m.total {
		return false, nil
	}
	if s.m.pace > 0 {
		time.Sleep(s.m.pace)
	}
	ctx.Emit(tuple.Int(s.seq), tuple.Int(time.Now().UnixNano()))
	s.seq++
	return true, nil
}

// qosLatencySink records each guaranteed delivery and its latency.
type qosLatencySink struct{ m *latencyMeter }

func (s *qosLatencySink) Open(ctx *worker.Context) error { s.m = qosMeter(ctx); return nil }
func (s *qosLatencySink) Close(*worker.Context) error    { return nil }

func (s *qosLatencySink) Execute(_ *worker.Context, in tuple.Tuple) error {
	if in.Stream.IsSignal() {
		return nil
	}
	seq := in.Field(0).AsInt()
	stamp := in.Field(1).AsInt()
	s.m.record(seq, time.Duration(time.Now().UnixNano()-stamp))
	return nil
}

// qosFloodSource emits 512-byte payloads as fast as the worker loop runs —
// the background tenant that would crowd the link without QoS.
type qosFloodSource struct{ payload string }

func (s *qosFloodSource) Open(*worker.Context) error {
	s.payload = strings.Repeat("x", 512)
	return nil
}
func (s *qosFloodSource) Close(*worker.Context) error { return nil }

func (s *qosFloodSource) Next(ctx *worker.Context) (bool, error) {
	ctx.Emit(tuple.String(s.payload))
	return true, nil
}

// qosBlackhole discards the flood.
type qosBlackhole struct{}

func (qosBlackhole) Open(*worker.Context) error                 { return nil }
func (qosBlackhole) Close(*worker.Context) error                { return nil }
func (qosBlackhole) Execute(*worker.Context, tuple.Tuple) error { return nil }

// goldLatencyBound is the guaranteed-class tail-latency ceiling under
// flood. Uncontended delivery is sub-millisecond; the bound is generous
// for -race and loaded CI machines while still catching a collapse to
// FIFO behavior, where the flood's standing queues add seconds.
const goldLatencyBound = 2 * time.Second

func TestQoSContentionGuaranteedTenantProtected(t *testing.T) {
	meter := newLatencyMeter(1500, 2*time.Millisecond)
	c, err := core.NewCluster(core.Config{
		Mode:              core.ModeTyphoon,
		Hosts:             []string{"h1", "h2"},
		HeartbeatInterval: 100 * time.Millisecond,
		HeartbeatTimeout:  2 * time.Second,
		MonitorInterval:   200 * time.Millisecond,
		DrainDelay:        100 * time.Millisecond,
		RestartDelay:      200 * time.Millisecond,
		DefaultBatchSize:  50,
		QoS: core.QoSConfig{
			Enable: true,
			// A small link budget so the flood saturates it instantly and
			// the allocator's caps visibly police.
			LinkCapacityBps: 2 << 20,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	c.Env.Set(envQoSMeter, meter)

	gold := topology.NewBuilder("qos-gold", 11)
	gold.Source("src", logicQoSPacedSource, 1)
	gold.Node("sink", logicQoSLatencySink, 1).GlobalFrom("src")
	gold.QoS(topology.QoSGuaranteed, 256<<10)
	gl, err := gold.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(gl, 15*time.Second); err != nil {
		t.Fatal(err)
	}
	waitCond(t, 30*time.Second, "guaranteed stream underway", func() bool {
		return meter.delivered() > 50
	})

	flood := topology.NewBuilder("qos-flood", 12)
	flood.Source("fsrc", logicQoSFloodSource, 2)
	flood.Node("void", logicQoSBlackhole, 2).ShuffleFrom("fsrc")
	flood.QoS(topology.QoSBestEffort, 0)
	fl, err := flood.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(fl, 15*time.Second); err != nil {
		t.Fatal(err)
	}

	waitCond(t, 60*time.Second, "guaranteed stream completion under flood", func() bool {
		return meter.delivered() >= meter.total
	})

	if d := meter.duplicates(); d != 0 {
		t.Errorf("guaranteed tenant saw %d duplicate deliveries", d)
	}
	if got := meter.delivered(); got != meter.total {
		t.Errorf("guaranteed tenant delivered %d of %d tuples (loss under flood)", got, meter.total)
	}
	p99 := meter.p99()
	if p99 <= 0 || p99 > goldLatencyBound {
		t.Errorf("guaranteed p99 latency %v outside (0, %v]", p99, goldLatencyBound)
	}

	// The flood must actually have contended: the allocator assigned it a
	// cap and the data plane policed it.
	st := c.QoSStatus()
	if !st.Enabled {
		t.Fatal("QoSStatus reports disabled on a QoS cluster")
	}
	classes := map[string]string{}
	var floodCapped bool
	for _, row := range st.Topologies {
		classes[row.Topology] = row.Class
		if row.Topology == "qos-flood" {
			for _, r := range row.HostRates {
				if r > 0 {
					floodCapped = true
				}
			}
		}
	}
	if classes["qos-gold"] != topology.QoSGuaranteed || classes["qos-flood"] != topology.QoSBestEffort {
		t.Errorf("topology classes = %v", classes)
	}
	if !floodCapped {
		t.Error("allocator never assigned the flooding tenant a meter rate")
	}
	var meterDrops uint64
	for _, h := range st.Hosts {
		meterDrops += h.MeterDrops
		for _, mi := range h.Meters {
			t.Logf("host %s meter %d: rate=%d burst=%d drops=%d", h.Host, mi.ID, mi.RateBps, mi.BurstBytes, mi.Drops)
		}
		for _, qs := range h.Queues {
			t.Logf("host %s queue %s: depth=%d enq=%d drop=%d", h.Host, qs.Class, qs.Depth, qs.Enqueued, qs.Dropped)
		}
	}
	for _, sw := range c.TopSnapshot().Switches {
		t.Logf("switch %s: rx=%d fwd=%d drop=%d", sw.Host, sw.RxFrames, sw.Forwarded, sw.Dropped)
	}
	if meterDrops == 0 {
		t.Error("no meter drops recorded — the flood was never policed")
	}
	t.Logf("guaranteed: %d/%d delivered, p99=%v; flood policed: %d meter drops",
		meter.delivered(), meter.total, p99, meterDrops)
}

// TestQoSReassignOnline flips the flooding tenant's class at runtime and
// asserts the control plane converges: the topology reports the new class
// and the allocator's rate assignment follows it.
func TestQoSReassignOnline(t *testing.T) {
	c, err := core.NewCluster(core.Config{
		Mode:              core.ModeTyphoon,
		Hosts:             []string{"h1", "h2"},
		HeartbeatInterval: 100 * time.Millisecond,
		HeartbeatTimeout:  2 * time.Second,
		MonitorInterval:   200 * time.Millisecond,
		DrainDelay:        100 * time.Millisecond,
		RestartDelay:      200 * time.Millisecond,
		DefaultBatchSize:  50,
		QoS:               core.QoSConfig{Enable: true, LinkCapacityBps: 4 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)

	b := topology.NewBuilder("qos-shift", 13)
	b.Source("fsrc", logicQoSFloodSource, 1)
	b.Node("void", logicQoSBlackhole, 1).GlobalFrom("fsrc")
	b.QoS(topology.QoSBestEffort, 0)
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(l, 15*time.Second); err != nil {
		t.Fatal(err)
	}
	waitCond(t, 15*time.Second, "best-effort cap assigned", func() bool {
		for _, row := range c.QoSStatus().Topologies {
			if row.Topology == "qos-shift" {
				for _, r := range row.HostRates {
					if r > 0 {
						return true
					}
				}
			}
		}
		return false
	})

	if err := c.SetTopologyQoS("qos-shift", topology.QoSGuaranteed, 512<<10); err != nil {
		t.Fatal(err)
	}
	waitCond(t, 15*time.Second, "reassignment to guaranteed converges", func() bool {
		for _, row := range c.QoSStatus().Topologies {
			if row.Topology != "qos-shift" {
				continue
			}
			if row.Class != topology.QoSGuaranteed || row.ConfiguredBps != 512<<10 {
				return false
			}
			// Guaranteed tenants run unmetered: every assigned host rate
			// must have converged to 0.
			for _, r := range row.HostRates {
				if r != 0 {
					return false
				}
			}
			return len(row.HostRates) > 0
		}
		return false
	})

	if err := c.SetTopologyQoS("qos-shift", "priority", 0); err == nil {
		t.Fatal("SetTopologyQoS accepted an unknown class")
	}
}

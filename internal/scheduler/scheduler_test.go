package scheduler

import (
	"testing"

	"typhoon/internal/topology"
)

func chainTopology(t *testing.T, par ...int) *topology.Logical {
	t.Helper()
	b := topology.NewBuilder("chain", 1)
	b.Source("n0", "l", par[0])
	for i := 1; i < len(par); i++ {
		b.Node(nodeName(i), "l", par[i]).ShuffleFrom(nodeName(i - 1))
	}
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func nodeName(i int) string {
	return string(rune('n')) + string(rune('0'+i))
}

func hosts(names ...string) []Host {
	out := make([]Host, len(names))
	for i, n := range names {
		out[i] = Host{Name: n}
	}
	return out
}

func TestRoundRobinSpreadsInstances(t *testing.T) {
	l := chainTopology(t, 1, 2, 4)
	p, err := (RoundRobin{}).Schedule(l, hosts("h1", "h2", "h3"))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Workers) != 7 {
		t.Fatalf("workers = %d", len(p.Workers))
	}
	perHost := map[string]int{}
	for _, a := range p.Workers {
		perHost[a.Host]++
	}
	for h, n := range perHost {
		if n < 2 || n > 3 {
			t.Fatalf("host %s has %d workers (uneven)", h, n)
		}
	}
	// Worker IDs unique and contiguous from 1.
	seen := map[topology.WorkerID]bool{}
	for _, a := range p.Workers {
		if seen[a.Worker] {
			t.Fatalf("duplicate worker ID %d", a.Worker)
		}
		seen[a.Worker] = true
	}
	if p.NextWorker != 8 {
		t.Fatalf("NextWorker = %d", p.NextWorker)
	}
}

func TestScheduleRespectsSlots(t *testing.T) {
	l := chainTopology(t, 1, 2)
	if _, err := (RoundRobin{}).Schedule(l, []Host{{Name: "h1", Slots: 2}}); err == nil {
		t.Fatal("over-capacity schedule should fail")
	}
	p, err := (RoundRobin{}).Schedule(l, []Host{{Name: "h1", Slots: 2}, {Name: "h2", Slots: 1}})
	if err != nil {
		t.Fatal(err)
	}
	perHost := map[string]int{}
	for _, a := range p.Workers {
		perHost[a.Host]++
	}
	if perHost["h1"] > 2 || perHost["h2"] > 1 {
		t.Fatalf("slot caps violated: %v", perHost)
	}
}

func TestScheduleNoHosts(t *testing.T) {
	l := chainTopology(t, 1)
	if _, err := (RoundRobin{}).Schedule(l, nil); err == nil {
		t.Fatal("no hosts should fail")
	}
	if _, err := (Locality{}).Schedule(l, nil); err == nil {
		t.Fatal("no hosts should fail")
	}
}

func TestRescheduleReusesSurvivors(t *testing.T) {
	l := chainTopology(t, 1, 2)
	sched := RoundRobin{}
	p1, err := sched.Schedule(l, hosts("h1", "h2"))
	if err != nil {
		t.Fatal(err)
	}
	// Scale n1 from 2 to 4.
	l2 := l.Clone()
	l2.Node("n1").Parallelism = 4
	l2.Generation = 1
	p2, err := sched.Reschedule(l2, p1, hosts("h1", "h2"))
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.Workers) != 5 {
		t.Fatalf("workers = %d", len(p2.Workers))
	}
	// The original two n1 instances keep their IDs and hosts.
	old := p1.Instances("n1")
	now := p2.Instances("n1")
	for i := 0; i < 2; i++ {
		if now[i].Worker != old[i].Worker || now[i].Host != old[i].Host {
			t.Fatalf("survivor %d reassigned: %+v -> %+v", i, old[i], now[i])
		}
	}
	// New instances get fresh, never-reused IDs.
	for _, a := range now[2:] {
		if a.Worker < p1.NextWorker {
			t.Fatalf("worker ID %d reused", a.Worker)
		}
	}
	if p2.Generation != 1 {
		t.Fatal("generation not propagated")
	}
}

func TestRescheduleScaleDownDropsHighestIndices(t *testing.T) {
	l := chainTopology(t, 1, 4)
	sched := RoundRobin{}
	p1, _ := sched.Schedule(l, hosts("h1", "h2"))
	l2 := l.Clone()
	l2.Node("n1").Parallelism = 2
	p2, err := sched.Reschedule(l2, p1, hosts("h1", "h2"))
	if err != nil {
		t.Fatal(err)
	}
	now := p2.Instances("n1")
	if len(now) != 2 {
		t.Fatalf("instances = %d", len(now))
	}
	old := p1.Instances("n1")
	if now[0].Worker != old[0].Worker || now[1].Worker != old[1].Worker {
		t.Fatal("scale-down should keep the lowest-index instances")
	}
}

func TestLocalityBeatsRoundRobinOnRemoteEdges(t *testing.T) {
	l := chainTopology(t, 1, 2, 2, 1)
	hs := hosts("h1", "h2", "h3")
	prr, err := (RoundRobin{}).Schedule(l, hs)
	if err != nil {
		t.Fatal(err)
	}
	ploc, err := (Locality{}).Schedule(l, hs)
	if err != nil {
		t.Fatal(err)
	}
	rr, loc := RemoteEdges(l, prr), RemoteEdges(l, ploc)
	if loc > rr {
		t.Fatalf("locality remote edges %d > round robin %d", loc, rr)
	}
	if loc == 0 && rr == 0 {
		t.Fatal("degenerate test: no remote edges at all")
	}
}

func TestLocalityRespectsSlots(t *testing.T) {
	l := chainTopology(t, 1, 3)
	p, err := (Locality{}).Schedule(l, []Host{{Name: "h1", Slots: 2}, {Name: "h2", Slots: 2}})
	if err != nil {
		t.Fatal(err)
	}
	perHost := map[string]int{}
	for _, a := range p.Workers {
		perHost[a.Host]++
	}
	if perHost["h1"] > 2 || perHost["h2"] > 2 {
		t.Fatalf("slots violated: %v", perHost)
	}
}

func TestLocalitySchedulesAllNodes(t *testing.T) {
	// Diamond: a -> b, a -> c, b -> d, c -> d.
	b := topology.NewBuilder("diamond", 1)
	b.Source("a", "l", 1)
	b.Node("b", "l", 2).ShuffleFrom("a")
	b.Node("c", "l", 2).ShuffleFrom("a")
	b.Node("d", "l", 1).ShuffleFrom("b").ShuffleFrom("c")
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := (Locality{}).Schedule(l, hosts("h1", "h2"))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Workers) != 6 {
		t.Fatalf("workers = %d", len(p.Workers))
	}
	for _, n := range []string{"a", "b", "c", "d"} {
		if len(p.Instances(n)) == 0 {
			t.Fatalf("node %s not scheduled", n)
		}
	}
}

// Package scheduler converts logical topologies into physical topologies:
// it expands node parallelism into worker instances, allocates worker IDs,
// and places workers on compute hosts.
//
// Two placement policies are provided, matching the paper's setup: the
// round-robin scheduler Storm defaults to (used for all head-to-head
// comparisons, §6) and the Typhoon locality-aware scheduler that co-locates
// topologically adjacent workers to minimise remote inter-worker
// communication (§5).
package scheduler

import (
	"fmt"
	"sort"

	"typhoon/internal/topology"
)

// Host describes one schedulable compute host.
type Host struct {
	// Name identifies the host.
	Name string
	// Slots is the number of workers the host can run; zero means
	// unlimited.
	Slots int
}

// Scheduler places logical topologies onto hosts.
type Scheduler interface {
	// Schedule produces a fresh physical topology for l on hosts.
	Schedule(l *topology.Logical, hosts []Host) (*topology.Physical, error)
	// Reschedule adapts an existing physical topology to an updated
	// logical topology, reusing surviving workers and allocating fresh
	// worker IDs for new instances. Removed instances simply disappear
	// from the assignment list.
	Reschedule(l *topology.Logical, prev *topology.Physical, hosts []Host) (*topology.Physical, error)
}

// expandError reports an unplaceable topology.
func expandError(l *topology.Logical, hosts []Host, need int) error {
	cap := 0
	unlimited := false
	for _, h := range hosts {
		if h.Slots <= 0 {
			unlimited = true
		}
		cap += h.Slots
	}
	if unlimited {
		return nil
	}
	if need > cap {
		return fmt.Errorf("scheduler: topology %s needs %d slots, cluster has %d", l.Name, need, cap)
	}
	return nil
}

func totalInstances(l *topology.Logical) int {
	n := 0
	for _, node := range l.Nodes {
		n += node.Parallelism
	}
	return n
}

// RoundRobin is Storm's default scheduler: instances are dealt across
// hosts in turn, irrespective of topology structure.
type RoundRobin struct{}

// Schedule implements Scheduler.
func (RoundRobin) Schedule(l *topology.Logical, hosts []Host) (*topology.Physical, error) {
	return rescheduleRR(l, &topology.Physical{App: l.App, Name: l.Name, NextWorker: 1}, hosts)
}

// Reschedule implements Scheduler.
func (RoundRobin) Reschedule(l *topology.Logical, prev *topology.Physical, hosts []Host) (*topology.Physical, error) {
	return rescheduleRR(l, prev, hosts)
}

func rescheduleRR(l *topology.Logical, prev *topology.Physical, hosts []Host) (*topology.Physical, error) {
	if len(hosts) == 0 {
		return nil, fmt.Errorf("scheduler: no hosts")
	}
	if err := expandError(l, hosts, totalInstances(l)); err != nil {
		return nil, err
	}
	next := prev.Clone()
	next.Generation = l.Generation
	next.Workers = nil
	if next.NextWorker == 0 {
		next.NextWorker = 1
	}
	used := map[string]int{}
	cursor := 0
	place := func() string {
		for {
			h := hosts[cursor%len(hosts)]
			cursor++
			if h.Slots <= 0 || used[h.Name] < h.Slots {
				used[h.Name]++
				return h.Name
			}
		}
	}
	for _, node := range l.Nodes {
		surviving := prev.Instances(node.Name)
		for i := 0; i < node.Parallelism; i++ {
			if i < len(surviving) {
				// Reuse the existing worker, keeping its host and port.
				a := surviving[i]
				a.Index = i
				next.Workers = append(next.Workers, a)
				used[a.Host]++
				continue
			}
			next.Workers = append(next.Workers, topology.Assignment{
				Worker: next.NextWorker,
				Node:   node.Name,
				Index:  i,
				Host:   place(),
			})
			next.NextWorker++
		}
	}
	return next, nil
}

// Locality is the Typhoon scheduler: it walks the DAG and prefers placing
// each instance on the host already running most of its neighbours
// (predecessors scheduled so far), falling back to the least-loaded host.
type Locality struct{}

// Schedule implements Scheduler.
func (Locality) Schedule(l *topology.Logical, hosts []Host) (*topology.Physical, error) {
	return rescheduleLocality(l, &topology.Physical{App: l.App, Name: l.Name, NextWorker: 1}, hosts)
}

// Reschedule implements Scheduler.
func (Locality) Reschedule(l *topology.Logical, prev *topology.Physical, hosts []Host) (*topology.Physical, error) {
	return rescheduleLocality(l, prev, hosts)
}

func rescheduleLocality(l *topology.Logical, prev *topology.Physical, hosts []Host) (*topology.Physical, error) {
	if len(hosts) == 0 {
		return nil, fmt.Errorf("scheduler: no hosts")
	}
	if err := expandError(l, hosts, totalInstances(l)); err != nil {
		return nil, err
	}
	next := prev.Clone()
	next.Generation = l.Generation
	next.Workers = nil
	if next.NextWorker == 0 {
		next.NextWorker = 1
	}
	load := map[string]int{}
	free := func(h Host) bool { return h.Slots <= 0 || load[h.Name] < h.Slots }

	// Process nodes in topological order so predecessors are placed first.
	order := topoOrder(l)
	placedHost := map[string][]string{} // node -> host per instance index
	for _, nodeName := range order {
		node := l.Node(nodeName)
		surviving := prev.Instances(nodeName)
		for i := 0; i < node.Parallelism; i++ {
			if i < len(surviving) {
				a := surviving[i]
				a.Index = i
				next.Workers = append(next.Workers, a)
				load[a.Host]++
				placedHost[nodeName] = append(placedHost[nodeName], a.Host)
				continue
			}
			host := pickNeighbourHost(l, nodeName, i, placedHost, hosts, load, free)
			next.Workers = append(next.Workers, topology.Assignment{
				Worker: next.NextWorker,
				Node:   nodeName,
				Index:  i,
				Host:   host,
			})
			next.NextWorker++
			load[host]++
			placedHost[nodeName] = append(placedHost[nodeName], host)
		}
	}
	return next, nil
}

// pickNeighbourHost prefers the host with the most already-placed
// predecessor instances of node, breaking ties by lowest load.
func pickNeighbourHost(l *topology.Logical, node string, _ int,
	placed map[string][]string, hosts []Host, load map[string]int, free func(Host) bool) string {
	affinity := map[string]int{}
	for _, e := range l.InEdges(node) {
		for _, h := range placed[e.From] {
			affinity[h]++
		}
	}
	best := ""
	bestScore := -1 << 30
	for _, h := range hosts {
		if !free(h) {
			continue
		}
		score := affinity[h.Name]*1000 - load[h.Name]
		if score > bestScore {
			best, bestScore = h.Name, score
		}
	}
	if best == "" {
		// All constrained hosts full; fall back to the first unlimited.
		for _, h := range hosts {
			if free(h) {
				return h.Name
			}
		}
		return hosts[0].Name
	}
	return best
}

// topoOrder returns node names in topological order (sources first).
func topoOrder(l *topology.Logical) []string {
	indeg := map[string]int{}
	for _, n := range l.Nodes {
		indeg[n.Name] = 0
	}
	for _, e := range l.Edges {
		indeg[e.To]++
	}
	var ready []string
	for _, n := range l.Nodes {
		if indeg[n.Name] == 0 {
			ready = append(ready, n.Name)
		}
	}
	sort.Strings(ready)
	var out []string
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		out = append(out, n)
		var next []string
		for _, e := range l.OutEdges(n) {
			indeg[e.To]--
			if indeg[e.To] == 0 {
				next = append(next, e.To)
			}
		}
		sort.Strings(next)
		ready = append(ready, next...)
	}
	return out
}

// RemoteEdges counts worker pairs that communicate across hosts under a
// physical topology — the metric the locality scheduler minimises.
func RemoteEdges(l *topology.Logical, p *topology.Physical) int {
	n := 0
	for _, e := range l.Edges {
		for _, from := range p.Instances(e.From) {
			for _, to := range p.Instances(e.To) {
				if from.Host != to.Host {
					n++
				}
			}
		}
	}
	return n
}

package core

import (
	"fmt"
	"time"

	"typhoon/internal/chaos"
	"typhoon/internal/topology"
)

// chaosTarget adapts a Cluster to the chaos engine's Target interface,
// giving the engine controlled reach into every layer of the deployment.
type chaosTarget struct{ c *Cluster }

// Netem implements chaos.Target. It is nil in Storm mode, where there is
// no tunnel fabric to impair.
func (t chaosTarget) Netem() *chaos.Netem { return t.c.netem }

// CrashWorker implements chaos.Target.
func (t chaosTarget) CrashWorker(topo string, id topology.WorkerID) error {
	w := t.c.Worker(topo, id)
	if w == nil {
		return fmt.Errorf("core: no running worker %d in topology %q", id, topo)
	}
	w.Fail(fmt.Errorf("chaos: injected crash"))
	return nil
}

// HangWorker implements chaos.Target.
func (t chaosTarget) HangWorker(topo string, id topology.WorkerID, d time.Duration) error {
	w := t.c.Worker(topo, id)
	if w == nil {
		return fmt.Errorf("core: no running worker %d in topology %q", id, topo)
	}
	w.Hang(d)
	return nil
}

// SlowWorker implements chaos.Target.
func (t chaosTarget) SlowWorker(topo string, id topology.WorkerID, d time.Duration) error {
	w := t.c.Worker(topo, id)
	if w == nil {
		return fmt.Errorf("core: no running worker %d in topology %q", id, topo)
	}
	w.Slow(d)
	return nil
}

// DropWorkerPort implements chaos.Target: it removes the worker's switch
// port out from under it, firing the §4 PortStatus fast path.
func (t chaosTarget) DropWorkerPort(topo string, id topology.WorkerID) error {
	var lastErr error
	for _, h := range t.c.hosts {
		err := h.Agent.DropWorkerPort(topo, id)
		if err == nil {
			return nil
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("core: no hosts")
	}
	return fmt.Errorf("core: drop port of worker %d in %q: %w", id, topo, lastErr)
}

// WipeFlows implements chaos.Target.
func (t chaosTarget) WipeFlows(host string) (int, error) {
	h := t.c.hosts[host]
	if h == nil {
		return 0, fmt.Errorf("core: unknown host %q", host)
	}
	if h.Switch == nil {
		return 0, fmt.Errorf("core: host %q has no SDN switch (Storm mode)", host)
	}
	return h.Switch.WipeFlows(), nil
}

// BeginControllerOutage implements chaos.Target.
func (t chaosTarget) BeginControllerOutage() error {
	if t.c.Controller == nil {
		return fmt.Errorf("core: no SDN controller (Storm mode)")
	}
	t.c.Controller.BeginOutage()
	return nil
}

// EndControllerOutage implements chaos.Target.
func (t chaosTarget) EndControllerOutage() error {
	if t.c.Controller == nil {
		return fmt.Errorf("core: no SDN controller (Storm mode)")
	}
	t.c.Controller.EndOutage()
	return nil
}

// KillController implements chaos.Target.
func (t chaosTarget) KillController(id string) error {
	return t.c.KillController(id)
}

// SetPacketOutDelay implements chaos.Target.
func (t chaosTarget) SetPacketOutDelay(d time.Duration) error {
	if t.c.Controller == nil {
		return fmt.Errorf("core: no SDN controller (Storm mode)")
	}
	t.c.Controller.SetPacketOutDelay(d)
	return nil
}

package core

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"typhoon/internal/agent"
	"typhoon/internal/controller"
	"typhoon/internal/observe"
	"typhoon/internal/switchfabric"
	"typhoon/internal/topology"
	"typhoon/internal/worker"
)

// Observability bundles the cluster-wide observability layer: the metric
// registry every component registers into, the frame sampler that selects
// tuple-path traces, and the ring of completed traces.
type Observability struct {
	// Registry is the cluster's hierarchical metric registry.
	Registry *observe.Registry
	// Sampler selects emitted frames to carry a trace annex (Typhoon mode).
	Sampler *observe.Sampler
	// Traces holds recently completed tuple-path traces.
	Traces *observe.TraceLog
	// Collector is the controller-side metrics app (nil in Storm mode).
	Collector *controller.MetricsCollector
}

// newObservability builds the layer with the e2e latency histogram and the
// trace accounting pre-registered.
func newObservability(traceEvery int) *Observability {
	if traceEvery == 0 {
		traceEvery = observe.DefaultTraceEvery
	}
	o := &Observability{
		Registry: observe.NewRegistry(),
		Sampler:  observe.NewSampler(traceEvery),
		Traces:   observe.NewTraceLog(0),
	}
	o.Traces.SetLatencyHistogram(o.Registry.Histogram(
		"typhoon_trace_e2e_seconds",
		"Emit-to-dequeue span of sampled tuple-path traces.",
		nil, nil))
	o.Registry.CounterFunc("typhoon_traces_recorded_total",
		"Completed tuple-path traces recorded (including evicted).",
		nil, o.Traces.Total)
	return o
}

// registerSwitch adds a collector exposing one switch's counters, rule and
// port population, and per-port egress queues.
func (o *Observability) registerSwitch(sw *switchfabric.Switch) {
	host := observe.Labels{"host": sw.Name()}
	o.Registry.AddCollector(func(emit func(observe.Sample)) {
		cnt := sw.CountersSnapshot()
		counter := func(name, help string, v uint64) {
			emit(observe.Sample{Name: name, Kind: observe.KindCounter, Help: help,
				Labels: host, Value: float64(v)})
		}
		counter("typhoon_switch_rx_frames_total", "Frames accepted from attached devices.", cnt.RxFrames)
		counter("typhoon_switch_tx_frames_total", "Frames delivered toward attached devices.", cnt.TxFrames)
		counter("typhoon_switch_forwarded_frames_total", "Frame deliveries made by the pipeline.", cnt.Forwarded)
		counter("typhoon_switch_replicated_frames_total", "Extra copies beyond the first delivery (switch-level fan-out).", cnt.Replicated)
		counter("typhoon_switch_dropped_frames_total", "Frames lost to table misses, malformed headers and full rings.", cnt.Dropped)
		counter("typhoon_switch_malformed_frames_total", "Frames rejected before lookup (short or corrupt header).", cnt.Malformed)
		counter("typhoon_switch_microflow_hits_total", "Frames forwarded via the microflow exact-match cache.", cnt.MicroflowHits)
		counter("typhoon_switch_microflow_misses_total", "Frames that missed the microflow cache.", cnt.MicroflowMisses)
		counter("typhoon_switch_megaflow_hits_total", "Microflow misses answered by the wildcarded megaflow cache.", cnt.MegaflowHits)
		counter("typhoon_switch_megaflow_misses_total", "Frames that missed both flow caches.", cnt.MegaflowMisses)
		counter("typhoon_switch_upcalls_total", "Slow-path staged flow-table lookups.", cnt.Upcalls)
		counter("typhoon_switch_meter_dropped_frames_total", "Frames dropped by QoS meters (rate policing).", cnt.MeterDrops)
		ports := sw.Ports()
		emit(observe.Sample{Name: "typhoon_switch_flow_rules", Kind: observe.KindGauge,
			Help: "Installed flow rules.", Labels: host, Value: float64(sw.RuleCount())})
		emit(observe.Sample{Name: "typhoon_switch_ports", Kind: observe.KindGauge,
			Help: "Attached switch ports.", Labels: host, Value: float64(len(ports))})
		for _, pi := range ports {
			p := sw.Port(pi.No)
			if p == nil {
				continue
			}
			emit(observe.Sample{Name: "typhoon_switch_port_queue_frames", Kind: observe.KindGauge,
				Help:   "Frames queued toward the port's device.",
				Labels: observe.Labels{"host": sw.Name(), "port": strconv.FormatUint(uint64(pi.No), 10)},
				Value:  float64(p.QueueLen())})
		}
	})
}

// registerAgentTransports adds a collector aggregating one host's worker
// transport counters — the realized batch occupancy (tuples per frame) is
// the knob /api/batch tunes.
func (o *Observability) registerAgentTransports(a *agent.Agent) {
	host := observe.Labels{"host": a.Host()}
	o.Registry.AddCollector(func(emit func(observe.Sample)) {
		var sent, frames, received uint64
		a.EachWorker(func(_ string, _ topology.WorkerID, w *worker.Worker) {
			s := w.Transport().Stats()
			sent += s.TuplesSent
			frames += s.FramesSent
			received += s.TuplesReceived
		})
		counter := func(name, help string, v uint64) {
			emit(observe.Sample{Name: name, Kind: observe.KindCounter, Help: help,
				Labels: host, Value: float64(v)})
		}
		counter("typhoon_transport_tuples_sent_total", "Tuples sent by the host's worker transports.", sent)
		counter("typhoon_transport_frames_sent_total", "Frames pushed into the switch by the host's worker transports.", frames)
		counter("typhoon_transport_tuples_received_total", "Tuples received by the host's worker transports.", received)
		occupancy := 0.0
		if frames > 0 {
			occupancy = float64(sent) / float64(frames)
		}
		emit(observe.Sample{Name: "typhoon_transport_batch_occupancy", Kind: observe.KindGauge,
			Help:   "Realized tuples per emitted frame (batching effectiveness).",
			Labels: host, Value: occupancy})
	})
}

// TopSnapshot assembles the live cluster table: per-switch frame counters
// and the controller's cached per-worker statistics.
func (c *Cluster) TopSnapshot() observe.TopSnapshot {
	snap := observe.TopSnapshot{At: time.Now()}
	for _, name := range c.cfg.Hosts {
		h := c.hosts[name]
		if h == nil || h.Switch == nil {
			continue
		}
		cnt := h.Switch.CountersSnapshot()
		snap.Switches = append(snap.Switches, observe.SwitchRow{
			Host:       name,
			DPID:       h.Switch.DatapathID(),
			Ports:      len(h.Switch.Ports()),
			Rules:      h.Switch.RuleCount(),
			RxFrames:   cnt.RxFrames,
			TxFrames:   cnt.TxFrames,
			Forwarded:  cnt.Forwarded,
			Replicated: cnt.Replicated,
			Dropped:    cnt.Dropped,
		})
	}
	if c.Obs.Collector != nil {
		snap.Workers = c.Obs.Collector.Rows()
	}
	return snap
}

// ObserveHandler returns the cluster's observability HTTP handler: the
// /metrics Prometheus exposition, the JSON /api/* endpoints, and pprof.
// Requesting /api/top triggers a METRIC_REQ sweep through the control-tuple
// path so worker rows are fresh.
func (c *Cluster) ObserveHandler() http.Handler {
	var poll func()
	if c.Obs.Collector != nil && c.Controller != nil {
		ctl := c.Controller
		poll = func() { c.Obs.Collector.Poll(ctl) }
	}
	var chaosHandler http.Handler
	if c.Chaos != nil {
		chaosHandler = c.Chaos.Handler()
	}
	var rescaleHandler http.Handler
	if c.updater != nil {
		rescaleHandler = http.HandlerFunc(c.serveRescale)
	}
	var controlPlaneHandler http.Handler
	if c.Controller != nil {
		controlPlaneHandler = http.HandlerFunc(c.serveControlPlane)
	}
	var qosHandler http.Handler
	if c.cfg.QoS.Enable {
		qosHandler = http.HandlerFunc(c.serveQoS)
	}
	return observe.Handler(observe.ServerOptions{
		Registry:     c.Obs.Registry,
		Traces:       c.Obs.Traces,
		Top:          c.TopSnapshot,
		Poll:         poll,
		Chaos:        chaosHandler,
		Rescale:      rescaleHandler,
		ControlPlane: controlPlaneHandler,
		Qos:          qosHandler,
		Batch:        http.HandlerFunc(c.serveBatch),
		Scenario:     http.HandlerFunc(c.serveScenario),
		EnablePprof:  true,
	})
}

// serveControlPlane reports controller registrations and per-switch
// mastership from coordinator state. In standalone mode both lists are
// empty — there are no leases to inspect.
func (c *Cluster) serveControlPlane(w http.ResponseWriter, _ *http.Request) {
	info, err := controller.ReadControlPlaneInfo(c.Store)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(info)
}

// serveRescale executes a managed stable rescale over HTTP: POST with
// topo, node, and parallelism query parameters; the response is the
// protocol's JSON report. An optional timeout parameter (Go duration)
// bounds the wait.
func (c *Cluster) serveRescale(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	topo, node := q.Get("topo"), q.Get("node")
	parallelism, err := strconv.Atoi(q.Get("parallelism"))
	if topo == "" || node == "" || err != nil || parallelism < 1 {
		http.Error(w, "topo, node, and parallelism >= 1 required", http.StatusBadRequest)
		return
	}
	timeout := 30 * time.Second
	if tv := q.Get("timeout"); tv != "" {
		d, perr := time.ParseDuration(tv)
		if perr != nil || d <= 0 {
			http.Error(w, "bad timeout", http.StatusBadRequest)
			return
		}
		timeout = d
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	report, err := c.Rescale(ctx, topo, node, parallelism)
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(report)
}

package core

import (
	"testing"
	"time"

	"typhoon/internal/controller"
	"typhoon/internal/topology"
	"typhoon/internal/workload"
)

// TestSDNBalancedRoutingEndToEnd drives the §4 SDN load balancer through a
// real pipeline: the source stamps broadcast destinations, the switch
// select-group picks workers in weighted round robin, and the app can
// reweight the buckets at runtime.
func TestSDNBalancedRoutingEndToEnd(t *testing.T) {
	c, _, cfg := newCluster(t, ModeTyphoon, "h1", "h2")
	cfg.Set(workload.CfgSeqLimit, 0)

	lb := controller.NewLoadBalancer()
	c.Controller.AddApp(lb)

	b := topology.NewBuilder("lb", 20)
	b.Source("src", workload.LogicSeqSource, 1)
	b.Node("sink", workload.LogicSink, 3).SDNBalancedFrom("src")
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(l, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	// All three sinks receive traffic (round robin with weight 1 each).
	waitCond(t, 10*time.Second, "all sinks active", func() bool {
		active := 0
		for _, w := range c.WorkersOf("lb", "sink") {
			if w.StatsSnapshot().Processed > 100 {
				active++
			}
		}
		return active == 3
	})
	// Source serialized once per tuple despite switch-side selection.
	src := c.WorkersOf("lb", "sink")
	_ = src

	// Reweight: sink instance 0 gets 8× the share of the others.
	sinks := c.WorkersOf("lb", "sink")
	favoured := sinks[0].ID()
	err = lb.SetWeights(c.Controller, "lb", "sink", map[topology.WorkerID]uint16{favoured: 8})
	if err != nil {
		t.Fatal(err)
	}
	base := map[topology.WorkerID]uint64{}
	for _, w := range sinks {
		base[w.ID()] = w.StatsSnapshot().Processed
	}
	time.Sleep(500 * time.Millisecond)
	var favouredDelta, otherDelta uint64
	for _, w := range sinks {
		d := w.StatsSnapshot().Processed - base[w.ID()]
		if w.ID() == favoured {
			favouredDelta = d
		} else {
			otherDelta += d
		}
	}
	// 8:1:1 weighting → the favoured worker should see several times the
	// combined traffic of the others; allow generous slack.
	if favouredDelta < 2*otherDelta {
		t.Fatalf("weights not applied: favoured=%d others=%d", favouredDelta, otherDelta)
	}
	if lb.Applied() == 0 {
		t.Fatal("no weight updates recorded")
	}
}

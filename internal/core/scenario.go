package core

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"time"

	"typhoon/internal/chaos"
	"typhoon/internal/scenario"
	"typhoon/internal/topology"
	"typhoon/internal/worker"
)

// scenarioTarget adapts the cluster onto the scenario runner's narrow
// surface (same pattern as chaosTarget: scenario must not import core).
type scenarioTarget struct{ c *Cluster }

func (t scenarioTarget) Env() *worker.SharedEnv { return t.c.Env }

func (t scenarioTarget) Submit(ctx context.Context, l *topology.Logical) error {
	return t.c.SubmitCtx(ctx, l)
}

func (t scenarioTarget) Kill(topo string) error { return t.c.Manager.Kill(topo) }

func (t scenarioTarget) Rescale(ctx context.Context, topo, node string, parallelism int) error {
	_, err := t.c.Rescale(ctx, topo, node, parallelism)
	return err
}

func (t scenarioTarget) InjectChaos(s chaos.Spec) error { return t.c.Chaos.Apply(s) }

func (t scenarioTarget) WorkersOf(topo, node string) []*worker.Worker {
	return t.c.WorkersOf(topo, node)
}

func (t scenarioTarget) Hosts() []string {
	return append([]string(nil), t.c.cfg.Hosts...)
}

// RunScenario executes one declarative scenario on this cluster. Runs are
// serialized — the harness owns the shared-environment run slot and the
// scn-* topology names, so a second concurrent run would corrupt the
// first's accounting.
func (c *Cluster) RunScenario(ctx context.Context, spec scenario.Spec, opts scenario.Options) (*scenario.Report, error) {
	c.scenarioMu.Lock()
	defer c.scenarioMu.Unlock()
	return scenario.Run(ctx, scenarioTarget{c}, spec, opts)
}

// serveScenario runs a scenario over HTTP: POST with the spec JSON as the
// body; an optional duration query parameter overrides the spec's play
// duration. The response is the run's full report. A second request while
// one is running answers 409 — scenario runs are exclusive.
func (c *Cluster) serveScenario(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	raw, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	spec, err := scenario.ParseSpec(raw)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var opts scenario.Options
	if dv := r.URL.Query().Get("duration"); dv != "" {
		d, perr := time.ParseDuration(dv)
		if perr != nil || d <= 0 {
			http.Error(w, "bad duration", http.StatusBadRequest)
			return
		}
		opts.Duration = d
	}
	if !c.scenarioMu.TryLock() {
		http.Error(w, "a scenario is already running", http.StatusConflict)
		return
	}
	defer c.scenarioMu.Unlock()
	report, err := scenario.Run(r.Context(), scenarioTarget{c}, spec, opts)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(report)
}

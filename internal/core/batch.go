package core

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"typhoon/internal/control"
	"typhoon/internal/topology"
	"typhoon/internal/worker"
)

// BatchHostRow is one host's aggregated transport batching statistics.
type BatchHostRow struct {
	Host    string `json:"host"`
	Workers int    `json:"workers"`
	// TuplesSent / FramesSent are summed over the host's live worker
	// transports; their ratio is the realized batch occupancy.
	TuplesSent     uint64  `json:"tuplesSent"`
	FramesSent     uint64  `json:"framesSent"`
	TuplesReceived uint64  `json:"tuplesReceived"`
	BatchOccupancy float64 `json:"batchOccupancy"`
}

// BatchStatusReport is the /api/batch GET payload: the live batching
// defaults new workers inherit plus per-host realized occupancy.
type BatchStatusReport struct {
	DefaultSize int `json:"defaultSize"`
	// FlushDeadlineNs is the bounded staging wait applied to new workers
	// (nanoseconds; negative means disabled).
	FlushDeadlineNs int64          `json:"flushDeadlineNs"`
	Hosts           []BatchHostRow `json:"hosts,omitempty"`
}

// BatchStatus assembles the cluster's batching view.
func (c *Cluster) BatchStatus() BatchStatusReport {
	var report BatchStatusReport
	for i, name := range c.cfg.Hosts {
		h := c.hosts[name]
		if h == nil || h.Agent == nil {
			continue
		}
		if i == 0 {
			size, deadline := h.Agent.BatchDefaults()
			report.DefaultSize = size
			if deadline == 0 {
				deadline = worker.DefaultFlushDeadline
			}
			report.FlushDeadlineNs = int64(deadline)
		}
		row := BatchHostRow{Host: name}
		h.Agent.EachWorker(func(_ string, _ topology.WorkerID, w *worker.Worker) {
			s := w.Transport().Stats()
			row.Workers++
			row.TuplesSent += s.TuplesSent
			row.FramesSent += s.FramesSent
			row.TuplesReceived += s.TuplesReceived
		})
		if row.FramesSent > 0 {
			row.BatchOccupancy = float64(row.TuplesSent) / float64(row.FramesSent)
		}
		report.Hosts = append(report.Hosts, row)
	}
	return report
}

// SetBatch retunes the data-plane batching knobs cluster-wide: the agents'
// defaults for future worker launches, and — through BATCH_SIZE control
// tuples broadcast by the owning controllers — every running worker's
// transport. size <= 0 and deadline == 0 leave the respective knob
// unchanged; a negative deadline disables the bounded staging wait.
func (c *Cluster) SetBatch(size int, deadline time.Duration) error {
	if size <= 0 && deadline == 0 {
		return fmt.Errorf("core: nothing to change (size and deadline both unset)")
	}
	for _, h := range c.hosts {
		if h.Agent != nil {
			h.Agent.SetBatchDefaults(size, deadline)
		}
	}
	req := control.Encode(control.KindBatchSize, control.BatchSize{Size: size, FlushDeadline: deadline})
	for _, ctl := range c.controllers {
		if ctl.Stopped() {
			continue
		}
		for _, name := range ctl.TopologyNames() {
			if !ctl.OwnsTopology(name) {
				continue
			}
			_, p := ctl.Topology(name)
			if p == nil {
				continue
			}
			for _, as := range p.Workers {
				_ = ctl.SendControlTuple(name, as.Worker, req)
			}
		}
	}
	return nil
}

// serveBatch is the /api/batch handler: GET reports BatchStatus, POST with
// size and/or deadline query parameters retunes the cluster (deadline is a
// Go duration; a negative one disables the bounded staging wait).
func (c *Cluster) serveBatch(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(c.BatchStatus())
	case http.MethodPost:
		q := r.URL.Query()
		var size int
		if sv := q.Get("size"); sv != "" {
			parsed, err := strconv.Atoi(sv)
			if err != nil || parsed <= 0 {
				http.Error(w, "bad size (positive integer required)", http.StatusBadRequest)
				return
			}
			size = parsed
		}
		var deadline time.Duration
		if dv := q.Get("deadline"); dv != "" {
			parsed, err := time.ParseDuration(dv)
			if err != nil || parsed == 0 {
				http.Error(w, "bad deadline (non-zero Go duration required; negative disables)", http.StatusBadRequest)
				return
			}
			deadline = parsed
		}
		if err := c.SetBatch(size, deadline); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
	default:
		http.Error(w, "GET or POST required", http.StatusMethodNotAllowed)
	}
}

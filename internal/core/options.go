package core

import (
	"fmt"
	"time"

	"typhoon/internal/chaos"
	"typhoon/internal/scheduler"
	"typhoon/internal/topology"
)

// Option configures a cluster built with NewCluster. A complete Config
// value is itself an Option (it replaces the whole configuration), which
// keeps the previous NewCluster(Config{...}) call style working.
type Option interface{ apply(*Config) }

// apply implements Option: a Config used as an option replaces the entire
// configuration, preserving the legacy positional-literal call style.
func (c Config) apply(dst *Config) { *dst = c }

type optionFunc func(*Config)

func (f optionFunc) apply(c *Config) { f(c) }

// WithMode selects the data plane (ModeTyphoon or ModeStorm).
// Default: ModeTyphoon.
func WithMode(m Mode) Option { return optionFunc(func(c *Config) { c.Mode = m }) }

// WithHosts names the emulated compute hosts. Required: at least one,
// no duplicates.
func WithHosts(hosts ...string) Option {
	return optionFunc(func(c *Config) { c.Hosts = append([]string(nil), hosts...) })
}

// WithScheduler sets the topology placement scheduler.
// Default: scheduler.RoundRobin (the paper's fair-comparison choice).
func WithScheduler(s scheduler.Scheduler) Option {
	return optionFunc(func(c *Config) { c.Scheduler = s })
}

// WithHeartbeatTimeout sets the manager's worker-failure timeout.
// Default: the manager's (Storm-style 30 s unless shrunk).
func WithHeartbeatTimeout(d time.Duration) Option {
	return optionFunc(func(c *Config) { c.HeartbeatTimeout = d })
}

// WithMonitorInterval sets the heartbeat scan period. Default: 0 (monitor
// disabled).
func WithMonitorInterval(d time.Duration) Option {
	return optionFunc(func(c *Config) { c.MonitorInterval = d })
}

// WithHeartbeatInterval sets how often agents report worker heartbeats.
// Default: the agent's built-in interval.
func WithHeartbeatInterval(d time.Duration) Option {
	return optionFunc(func(c *Config) { c.HeartbeatInterval = d })
}

// WithDefaultBatchSize sets the worker I/O batch size.
// Default: worker.DefaultBatchSize.
func WithDefaultBatchSize(n int) Option {
	return optionFunc(func(c *Config) { c.DefaultBatchSize = n })
}

// WithDefaultFlushDeadline bounds how long staged tuples wait for the batch
// threshold before flushing. Default 0 selects worker.DefaultFlushDeadline;
// negative disables the bound.
func WithDefaultFlushDeadline(d time.Duration) Option {
	return optionFunc(func(c *Config) { c.DefaultFlushDeadline = d })
}

// WithWorkerFlushInterval sets the worker loop's periodic transport flush
// cadence. Default: the worker's built-in interval.
func WithWorkerFlushInterval(d time.Duration) Option {
	return optionFunc(func(c *Config) { c.WorkerFlushInterval = d })
}

// WithAckTimeout sets the source replay timeout under guaranteed
// processing. Default: acking disabled.
func WithAckTimeout(d time.Duration) Option {
	return optionFunc(func(c *Config) { c.AckTimeout = d })
}

// WithSwitchRingCapacity sizes switch port rings.
// Default: switchfabric's built-in capacity.
func WithSwitchRingCapacity(n int) Option {
	return optionFunc(func(c *Config) { c.SwitchRingCapacity = n })
}

// WithDrainDelay sets the agent's stable-removal drain window.
// Default: the agent's built-in delay.
func WithDrainDelay(d time.Duration) Option {
	return optionFunc(func(c *Config) { c.DrainDelay = d })
}

// WithRestartDelay spaces local restarts of crashed workers.
// Default: the agent's built-in delay.
func WithRestartDelay(d time.Duration) Option {
	return optionFunc(func(c *Config) { c.RestartDelay = d })
}

// WithRuleIdleTimeout ages out flow rules (ablation knob). Default: 0
// (explicit deletion only).
func WithRuleIdleTimeout(d time.Duration) Option {
	return optionFunc(func(c *Config) { c.RuleIdleTimeout = d })
}

// WithOnWorkerCrash observes worker crashes (experiments). Default: none.
func WithOnWorkerCrash(fn func(topo string, id topology.WorkerID, err error)) Option {
	return optionFunc(func(c *Config) { c.OnWorkerCrash = fn })
}

// WithTraceEvery samples one in n emitted frames for tuple-path tracing.
// Default 0 selects observe.DefaultTraceEvery; negative disables tracing.
func WithTraceEvery(n int) Option {
	return optionFunc(func(c *Config) { c.TraceEvery = n })
}

// WithControllers runs n SDN controller instances as a replicated control
// plane (Typhoon mode): each switch gets a coordinator-elected master and
// the rest stay as hot-standby slaves, control-plane apps shard by
// topology ownership, and killing any controller fails its switches over
// to a peer without interrupting cached-path forwarding. Default (0 or 1):
// one standalone controller, identical to the single-controller behaviour.
func WithControllers(n int) Option {
	return optionFunc(func(c *Config) { c.Controllers = n })
}

// WithQoS enables multi-tenant QoS (Typhoon mode): per-topology meters in
// every switch, weighted fair queueing at switch and tunnel egress, and the
// bandwidth-allocator control plane app continuously reassigning meter
// rates from observed demand. Zero-value fields take defaults.
func WithQoS(q QoSConfig) Option {
	return optionFunc(func(c *Config) {
		q.Enable = true
		c.QoS = q
	})
}

// WithChaos schedules a fault-injection plan against the cluster: the plan
// seeds the link impairment table and its events fire on the cluster clock
// once NewCluster returns. Default: no plan (faults can still be injected
// at runtime through Cluster.Chaos).
func WithChaos(p chaos.Plan) Option {
	return optionFunc(func(c *Config) { c.Chaos = p })
}

// validate rejects configurations NewCluster must not build.
func (c *Config) validate() error {
	if len(c.Hosts) == 0 {
		return fmt.Errorf("core: at least one host required")
	}
	seen := make(map[string]bool, len(c.Hosts))
	for _, h := range c.Hosts {
		if h == "" {
			return fmt.Errorf("core: empty host name")
		}
		if seen[h] {
			return fmt.Errorf("core: duplicate host %q", h)
		}
		seen[h] = true
	}
	for _, d := range []struct {
		name string
		v    time.Duration
	}{
		{"HeartbeatTimeout", c.HeartbeatTimeout},
		{"MonitorInterval", c.MonitorInterval},
		{"HeartbeatInterval", c.HeartbeatInterval},
		{"WorkerFlushInterval", c.WorkerFlushInterval},
		{"AckTimeout", c.AckTimeout},
		{"DrainDelay", c.DrainDelay},
		{"RestartDelay", c.RestartDelay},
		{"RuleIdleTimeout", c.RuleIdleTimeout},
	} {
		if d.v < 0 {
			return fmt.Errorf("core: negative %s", d.name)
		}
	}
	if c.Controllers < 0 {
		return fmt.Errorf("core: negative Controllers")
	}
	if c.Controllers > 1 && c.Mode != ModeTyphoon {
		return fmt.Errorf("core: replicated controllers require ModeTyphoon")
	}
	if c.QoS.Enable && c.Mode != ModeTyphoon {
		return fmt.Errorf("core: QoS requires ModeTyphoon")
	}
	if err := c.Chaos.Validate(); err != nil {
		return err
	}
	return nil
}

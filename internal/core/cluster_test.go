package core

import (
	"testing"
	"time"

	"typhoon/internal/controller"
	"typhoon/internal/topology"
	"typhoon/internal/workload"
)

// newCluster builds a small cluster with fast test timings.
func newCluster(t *testing.T, mode Mode, hosts ...string) (*Cluster, *workload.Stats, *workload.Config) {
	t.Helper()
	if len(hosts) == 0 {
		hosts = []string{"h1", "h2"}
	}
	c, err := NewCluster(Config{
		Mode:              mode,
		Hosts:             hosts,
		HeartbeatInterval: 100 * time.Millisecond,
		HeartbeatTimeout:  2 * time.Second,
		MonitorInterval:   200 * time.Millisecond,
		DrainDelay:        100 * time.Millisecond,
		RestartDelay:      200 * time.Millisecond,
		DefaultBatchSize:  50,
		AckTimeout:        time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	stats := workload.NewStats(100 * time.Millisecond)
	cfg := workload.NewConfig()
	c.Env.Set(workload.EnvStats, stats)
	c.Env.Set(workload.EnvConfig, cfg)
	return c, stats, cfg
}

func waitCond(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestTyphoonPipelineEndToEnd(t *testing.T) {
	c, stats, cfg := newCluster(t, ModeTyphoon)
	cfg.Set(workload.CfgSeqLimit, 5000)

	b := topology.NewBuilder("pipeline", 1)
	b.Source("src", workload.LogicSeqSource, 1)
	b.Node("sink", workload.LogicSeqChecker, 1).ShuffleFrom("src")
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(l, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	waitCond(t, 15*time.Second, "all tuples at sink", func() bool {
		return stats.Counter("seq.seen").Value() == 5000
	})
	if gaps := stats.Counter("seq.gaps").Value(); gaps != 0 {
		t.Fatalf("sequence gaps: %d (tuples lost or reordered)", gaps)
	}
}

func TestTyphoonBroadcastSingleSerialization(t *testing.T) {
	c, stats, cfg := newCluster(t, ModeTyphoon, "h1", "h2", "h3")
	cfg.Set(workload.CfgSeqLimit, 2000)

	b := topology.NewBuilder("bcast", 2)
	b.Source("src", workload.LogicSeqSource, 1)
	b.Node("sink", workload.LogicSink, 4).AllFrom("src")
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(l, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	waitCond(t, 15*time.Second, "broadcast fan-out", func() bool {
		return stats.Counter("sink.total").Value() == 4*2000
	})
	// One serialization per tuple regardless of four sinks.
	src := c.WorkersOf("bcast", "src")
	if len(src) != 1 {
		t.Fatalf("source workers = %d", len(src))
	}
	ts := src[0].Transport().Stats()
	if ts.Serializations != 2000 {
		t.Fatalf("serializations = %d, want 2000", ts.Serializations)
	}
}

func TestStormBaselinePipeline(t *testing.T) {
	c, stats, cfg := newCluster(t, ModeStorm)
	cfg.Set(workload.CfgSeqLimit, 5000)

	b := topology.NewBuilder("storm-pipeline", 3)
	b.Source("src", workload.LogicSeqSource, 1)
	b.Node("sink", workload.LogicSeqChecker, 1).ShuffleFrom("src")
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(l, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	waitCond(t, 15*time.Second, "all tuples at baseline sink", func() bool {
		return stats.Counter("seq.seen").Value() == 5000
	})
	if gaps := stats.Counter("seq.gaps").Value(); gaps != 0 {
		t.Fatalf("sequence gaps: %d", gaps)
	}
}

func TestStormBaselineBroadcastSerializesPerDestination(t *testing.T) {
	c, stats, cfg := newCluster(t, ModeStorm)
	cfg.Set(workload.CfgSeqLimit, 1000)

	b := topology.NewBuilder("storm-bcast", 4)
	b.Source("src", workload.LogicSeqSource, 1)
	b.Node("sink", workload.LogicSink, 3).AllFrom("src")
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(l, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	waitCond(t, 15*time.Second, "baseline fan-out", func() bool {
		return stats.Counter("sink.total").Value() == 3*1000
	})
	src := c.WorkersOf("storm-bcast", "src")[0]
	if s := src.Transport().Stats(); s.Serializations != 3*1000 {
		t.Fatalf("serializations = %d, want 3000 (one per destination)", s.Serializations)
	}
}

func TestTyphoonScaleUpNoTupleLoss(t *testing.T) {
	c, stats, cfg := newCluster(t, ModeTyphoon)
	cfg.Set(workload.CfgSeqLimit, 0) // unlimited

	b := topology.NewBuilder("scale", 5)
	b.Source("src", workload.LogicSentenceSource, 1)
	b.Node("split", workload.LogicSplitter, 1).ShuffleFrom("src")
	b.Node("sink", workload.LogicSink, 1).ShuffleFrom("split")
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(l, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	waitCond(t, 10*time.Second, "traffic", func() bool {
		return stats.Counter("sink.total").Value() > 1000
	})
	if err := c.Manager.SetParallelism("scale", "split", 3); err != nil {
		t.Fatal(err)
	}
	if err := c.Manager.WaitReady("scale", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	waitCond(t, 10*time.Second, "three splitters running", func() bool {
		return len(c.WorkersOf("scale", "split")) == 3
	})
	// All three splitters eventually process tuples.
	waitCond(t, 10*time.Second, "new splitters active", func() bool {
		active := 0
		for _, w := range c.WorkersOf("scale", "split") {
			if w.StatsSnapshot().Processed > 0 {
				active++
			}
		}
		return active == 3
	})
}

func TestTyphoonScaleDownDrainsWorker(t *testing.T) {
	c, stats, cfg := newCluster(t, ModeTyphoon)
	cfg.Set(workload.CfgSeqLimit, 0)

	b := topology.NewBuilder("scaledown", 6)
	b.Source("src", workload.LogicSentenceSource, 1)
	b.Node("split", workload.LogicSplitter, 3).ShuffleFrom("src")
	b.Node("sink", workload.LogicSink, 1).ShuffleFrom("split")
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(l, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	waitCond(t, 10*time.Second, "traffic", func() bool {
		return stats.Counter("sink.total").Value() > 500
	})
	if err := c.Manager.SetParallelism("scaledown", "split", 1); err != nil {
		t.Fatal(err)
	}
	waitCond(t, 10*time.Second, "one splitter left", func() bool {
		return len(c.WorkersOf("scaledown", "split")) == 1
	})
	// Traffic keeps flowing through the survivor.
	before := stats.Counter("sink.total").Value()
	waitCond(t, 10*time.Second, "traffic after scale-down", func() bool {
		return stats.Counter("sink.total").Value() > before+500
	})
}

func TestTyphoonSwapLogicWithoutRestart(t *testing.T) {
	c, stats, cfg := newCluster(t, ModeTyphoon)
	cfg.Set(workload.CfgSeqLimit, 0)

	b := topology.NewBuilder("swap", 7)
	b.Source("src", workload.LogicSeqSource, 1)
	b.Node("mid", workload.LogicForwarder, 1).ShuffleFrom("src")
	b.Node("sink", workload.LogicSink, 1).ShuffleFrom("mid")
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(l, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	waitCond(t, 10*time.Second, "traffic", func() bool {
		return stats.Counter("sink.total").Value() > 500
	})
	oldMid := c.WorkersOf("swap", "mid")
	srcEmittedBefore := c.WorkersOf("swap", "src")[0].StatsSnapshot().Emitted

	// Hot-swap the forwarder for the splitter logic (it will split the
	// payload string; behaviourally different and observable).
	if err := c.Manager.SwapLogic("swap", "mid", workload.LogicSplitter); err != nil {
		t.Fatal(err)
	}
	if err := c.Manager.WaitReady("swap", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	waitCond(t, 10*time.Second, "replacement worker", func() bool {
		ws := c.WorkersOf("swap", "mid")
		return len(ws) == 1 && ws[0].ID() != oldMid[0].ID() && ws[0].StatsSnapshot().Processed > 0
	})
	// The source was never restarted: its emitted counter kept growing
	// monotonically through the swap.
	srcEmittedAfter := c.WorkersOf("swap", "src")[0].StatsSnapshot().Emitted
	if srcEmittedAfter <= srcEmittedBefore {
		t.Fatal("source restarted or stalled during logic swap")
	}
}

func TestTyphoonStatefulScaleUpFlushes(t *testing.T) {
	c, stats, cfg := newCluster(t, ModeTyphoon)
	cfg.Set(workload.CfgSeqLimit, 0)

	b := topology.NewBuilder("stateful", 8)
	b.Source("src", workload.LogicSentenceSource, 1)
	b.Node("count", workload.LogicCounter, 2).FieldsFrom("src", 0).Stateful()
	b.Node("sink", workload.LogicSink, 1).GlobalFrom("count")
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(l, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	waitCond(t, 10*time.Second, "counting", func() bool {
		ws := c.WorkersOf("stateful", "count")
		var n uint64
		for _, w := range ws {
			n += w.StatsSnapshot().Processed
		}
		return n > 500
	})
	if err := c.Manager.SetParallelism("stateful", "count", 3); err != nil {
		t.Fatal(err)
	}
	// §3.5: the existing stateful instances are flushed via SIGNAL before
	// routing changes.
	waitCond(t, 10*time.Second, "stateful flush", func() bool {
		return stats.Counter("count.flushes").Value() >= 2
	})
}

func TestTyphoonGuaranteedProcessing(t *testing.T) {
	c, _, cfg := newCluster(t, ModeTyphoon)
	cfg.Set(workload.CfgSeqLimit, 1000)

	b := topology.NewBuilder("acked", 9)
	b.Ackers(1)
	b.Source("src", workload.LogicSeqSource, 1)
	b.Node("sink", workload.LogicSeqChecker, 1).ShuffleFrom("src")
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(l, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	waitCond(t, 20*time.Second, "completions", func() bool {
		ws := c.WorkersOf("acked", "src")
		return len(ws) == 1 && ws[0].StatsSnapshot().Completed == 1000
	})
	src := c.WorkersOf("acked", "src")[0]
	if src.CompleteLatencies.Count() != 1000 {
		t.Fatalf("latency samples = %d", src.CompleteLatencies.Count())
	}
}

func TestFaultDetectorKeepsPipelineAlive(t *testing.T) {
	c, stats, cfg := newCluster(t, ModeTyphoon, "h1", "h2", "h3")
	cfg.Set(workload.CfgSeqLimit, 0)

	fd := newFaultDetectorForTest(c)
	b := topology.NewBuilder("fault", 10)
	b.Source("src", workload.LogicSentenceSource, 1)
	b.Node("split", workload.LogicFaultySplitter, 2).ShuffleFrom("src")
	b.Node("count", workload.LogicCounter, 2).FieldsFrom("split", 0).Stateful()
	b.Node("sink", workload.LogicSink, 1).GlobalFrom("count")
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(l, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	waitCond(t, 10*time.Second, "traffic", func() bool {
		var n uint64
		for _, w := range c.WorkersOf("fault", "count") {
			n += w.StatsSnapshot().Processed
		}
		return n > 1000
	})
	// Inject the split fault (instance 0 crashes on its next tuple).
	cfg.Set(workload.CfgFaultIndex, 0)
	cfg.Set(workload.CfgFaultArmed, 1)
	waitCond(t, 10*time.Second, "fault detected", func() bool {
		return fd.Detected() >= 1
	})
	// Counts keep growing through the surviving splitter.
	var before uint64
	for _, w := range c.WorkersOf("fault", "count") {
		before += w.StatsSnapshot().Processed
	}
	waitCond(t, 10*time.Second, "traffic after fault", func() bool {
		var n uint64
		for _, w := range c.WorkersOf("fault", "count") {
			n += w.StatsSnapshot().Processed
		}
		return n > before+1000
	})
	_ = stats
}

func TestAutoScalerAddsWorkerUnderLoad(t *testing.T) {
	c, _, cfg := newCluster(t, ModeTyphoon)
	cfg.Set(workload.CfgSeqLimit, 0)
	cfg.Set(workload.CfgWorkNanos, 200_000) // 200 µs per tuple: splitter saturates

	as := newAutoScalerForTest(c, "autoscale", "split", 50, 4)
	b := topology.NewBuilder("autoscale", 11)
	b.Source("src", workload.LogicSentenceSource, 1)
	b.Node("split", workload.LogicSplitter, 1).ShuffleFrom("src")
	b.Node("sink", workload.LogicSink, 1).ShuffleFrom("split")
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(l, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	waitCond(t, 30*time.Second, "scale-up", func() bool {
		return as.ScaleUps() >= 1 && len(c.WorkersOf("autoscale", "split")) >= 2
	})
}

func TestHeartbeatRescheduleMovesWorker(t *testing.T) {
	c, stats, cfg := newCluster(t, ModeStorm)
	cfg.Set(workload.CfgSeqLimit, 0)

	b := topology.NewBuilder("hb", 12)
	b.Source("src", workload.LogicSentenceSource, 1)
	b.Node("split", workload.LogicFaultySplitter, 2).ShuffleFrom("src")
	b.Node("sink", workload.LogicSink, 1).ShuffleFrom("split")
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(l, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	waitCond(t, 10*time.Second, "traffic", func() bool {
		return stats.Counter("sink.total").Value() > 200
	})
	_, p0, _ := c.Manager.Describe("hb")
	victim := p0.Instances("split")[0]

	cfg.Set(workload.CfgFaultIndex, 0)
	cfg.Set(workload.CfgFaultArmed, 1)
	// The dead worker's heartbeats go stale; the manager moves it to the
	// other host after the timeout.
	waitCond(t, 30*time.Second, "reschedule to another host", func() bool {
		_, p, err := c.Manager.Describe("hb")
		if err != nil {
			return false
		}
		as := p.Worker(victim.Worker)
		return as != nil && as.Host != victim.Host
	})
}

// --- helpers wiring controller apps into test clusters ------------------

func newFaultDetectorForTest(c *Cluster) *controller.FaultDetector {
	fd := controller.NewFaultDetector()
	c.Controller.AddApp(fd)
	return fd
}

func newAutoScalerForTest(c *Cluster, topo, node string, upQueue, max int) *controller.AutoScaler {
	as := controller.NewAutoScaler()
	as.AddPolicy(controller.AutoScalePolicy{
		Topo: topo, Node: node, ScaleUpQueue: upQueue, Max: max, Cooldown: time.Second,
	})
	c.Controller.AddApp(as)
	return as
}

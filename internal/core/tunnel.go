package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"typhoon/internal/chaos"
	"typhoon/internal/switchfabric"
)

// tunnelFabric interconnects the hosts' software switches with host-level
// TCP tunnels (§3.3.1): frames leaving a switch through its tunnel port are
// encapsulated with their destination host, carried over a TCP connection,
// and injected into the remote switch's tunnel port.
type tunnelFabric struct {
	mu    sync.Mutex
	addrs map[string]string
}

func newTunnelFabric() *tunnelFabric {
	return &tunnelFabric{addrs: make(map[string]string)}
}

func (f *tunnelFabric) register(host, addr string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.addrs[host] = addr
}

func (f *tunnelFabric) lookup(host string) (string, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	a, ok := f.addrs[host]
	return a, ok
}

// tunnelEndpoint is one host's end of the tunnel fabric.
type tunnelEndpoint struct {
	host   string
	port   *switchfabric.Port
	fabric *tunnelFabric
	// netem is the chaos impairment table consulted per egress frame
	// (nil-safe: a nil table is a perfect network).
	netem *chaos.Netem
	ln    net.Listener

	mu   sync.Mutex
	outs map[string]*tunnelConn
	// redial tracks per-peer dial backoff so an unreachable host does not
	// cost a full dial timeout on every frame batch.
	redial map[string]*redialState
	incon  map[net.Conn]struct{}

	closed chan struct{}
	once   sync.Once
	wg     sync.WaitGroup
}

type tunnelConn struct {
	c  net.Conn
	bw *bufio.Writer
}

// redialState spaces reconnection attempts toward one unreachable peer.
type redialState struct {
	fails int
	next  time.Time
}

// Tunnel redial backoff bounds: first retry after tunnelRedialBase,
// doubling per consecutive failure up to tunnelRedialMax.
const (
	tunnelRedialBase = 50 * time.Millisecond
	tunnelRedialMax  = 2 * time.Second
)

// maxTunnelFrame bounds one tunneled frame.
const maxTunnelFrame = 1 << 20

// startTunnel binds a host's tunnel endpoint and starts its pumps. netem,
// when non-nil, impairs egress frames (chaos link faults).
func startTunnel(host string, port *switchfabric.Port, fabric *tunnelFabric, netem *chaos.Netem) (*tunnelEndpoint, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("core: tunnel listen: %w", err)
	}
	t := &tunnelEndpoint{
		host:   host,
		port:   port,
		fabric: fabric,
		netem:  netem,
		ln:     ln,
		outs:   make(map[string]*tunnelConn),
		redial: make(map[string]*redialState),
		incon:  make(map[net.Conn]struct{}),
		closed: make(chan struct{}),
	}
	fabric.register(host, ln.Addr().String())
	t.wg.Add(2)
	go t.acceptLoop()
	go t.egressLoop()
	return t, nil
}

func (t *tunnelEndpoint) close() {
	t.once.Do(func() {
		close(t.closed)
		_ = t.ln.Close()
		t.mu.Lock()
		for _, oc := range t.outs {
			_ = oc.c.Close()
		}
		for c := range t.incon {
			_ = c.Close()
		}
		t.mu.Unlock()
	})
	t.wg.Wait()
}

// egressLoop moves frames from the switch's tunnel port onto TCP.
func (t *tunnelEndpoint) egressLoop() {
	defer t.wg.Done()
	var batch [][]byte
	var hdr [4]byte
	for {
		batch = batch[:0]
		var err error
		batch, err = t.port.ReadBatch(batch, 64, 500*time.Millisecond)
		if err != nil {
			return
		}
		touched := map[string]*tunnelConn{}
		for _, raw := range batch {
			host, inner, derr := switchfabric.DecapTunnel(raw)
			if derr != nil || host == "" {
				continue
			}
			// Chaos link impairment: drop or delay before the frame
			// reaches TCP, exactly where a lossy physical link would.
			if delay, drop := t.netem.Impair(t.host, host); drop {
				continue
			} else if delay > 0 {
				select {
				case <-t.closed:
					return
				case <-time.After(delay):
				}
			}
			oc := t.connTo(host)
			if oc == nil {
				continue
			}
			binary.BigEndian.PutUint32(hdr[:], uint32(len(inner)))
			if _, werr := oc.bw.Write(hdr[:]); werr != nil {
				t.dropConn(host)
				continue
			}
			if _, werr := oc.bw.Write(inner); werr != nil {
				t.dropConn(host)
				continue
			}
			touched[host] = oc
		}
		for host, oc := range touched {
			if oc.bw.Flush() != nil {
				t.dropConn(host)
			}
		}
	}
}

func (t *tunnelEndpoint) connTo(host string) *tunnelConn {
	t.mu.Lock()
	if oc, ok := t.outs[host]; ok {
		t.mu.Unlock()
		return oc
	}
	// Redial backoff: while a peer is unreachable, frames toward it are
	// dropped cheaply instead of stalling the egress pump for a full dial
	// timeout per batch.
	if rs := t.redial[host]; rs != nil && time.Now().Before(rs.next) {
		t.mu.Unlock()
		return nil
	}
	addr, ok := t.fabric.lookup(host)
	t.mu.Unlock()
	if !ok {
		return nil
	}
	// Dial outside the lock so a slow connect doesn't block dropConn or
	// close; the race of two concurrent dials is benign (one wins below).
	c, err := net.DialTimeout("tcp", addr, time.Second)
	t.mu.Lock()
	defer t.mu.Unlock()
	if err != nil {
		rs := t.redial[host]
		if rs == nil {
			rs = &redialState{}
			t.redial[host] = rs
		}
		backoff := tunnelRedialBase << min(rs.fails, 5)
		if backoff > tunnelRedialMax {
			backoff = tunnelRedialMax
		}
		rs.fails++
		rs.next = time.Now().Add(backoff)
		return nil
	}
	delete(t.redial, host)
	if oc, ok := t.outs[host]; ok {
		_ = c.Close()
		return oc
	}
	select {
	case <-t.closed:
		_ = c.Close()
		return nil
	default:
	}
	oc := &tunnelConn{c: c, bw: bufio.NewWriterSize(c, 128<<10)}
	t.outs[host] = oc
	return oc
}

func (t *tunnelEndpoint) dropConn(host string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if oc, ok := t.outs[host]; ok {
		_ = oc.c.Close()
		delete(t.outs, host)
	}
}

func (t *tunnelEndpoint) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.mu.Lock()
		select {
		case <-t.closed:
			t.mu.Unlock()
			_ = c.Close()
			return
		default:
		}
		t.incon[c] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.ingressLoop(c)
	}
}

// ingressLoop injects received frames into the switch's tunnel port.
func (t *tunnelEndpoint) ingressLoop(c net.Conn) {
	defer t.wg.Done()
	defer func() {
		t.mu.Lock()
		delete(t.incon, c)
		t.mu.Unlock()
		_ = c.Close()
	}()
	br := bufio.NewReaderSize(c, 128<<10)
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		n := int(binary.BigEndian.Uint32(hdr[:]))
		if n <= 0 || n > maxTunnelFrame {
			return
		}
		frame := make([]byte, n)
		if _, err := io.ReadFull(br, frame); err != nil {
			return
		}
		// Backpressure into the switch: retry briefly on a full ring.
		ok := t.port.WriteFrame(frame)
		for retries := 0; !ok && retries < 200 && !t.port.Closed(); retries++ {
			time.Sleep(50 * time.Microsecond)
			ok = t.port.WriteFrame(frame)
		}
	}
}

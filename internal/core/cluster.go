// Package core assembles complete Typhoon deployments in one process — the
// paper's primary contribution wired end to end: per-host software SDN
// switches connected by host-level TCP tunnels, a stateless SDN controller
// speaking the OpenFlow-style protocol, the central coordinator, the
// streaming manager, and per-host worker agents.
//
// The same assembly also builds the Storm-style baseline cluster (worker-
// level TCP, heartbeat-only fault detection) so the paper's head-to-head
// experiments run on identical substrate.
package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"typhoon/internal/agent"
	"typhoon/internal/chaos"
	"typhoon/internal/controller"
	"typhoon/internal/coordinator"
	"typhoon/internal/manager"
	"typhoon/internal/observe"
	"typhoon/internal/paths"
	"typhoon/internal/scheduler"
	"typhoon/internal/storm"
	"typhoon/internal/switchfabric"
	"typhoon/internal/topology"
	"typhoon/internal/worker"
)

// Mode selects the data plane of a cluster.
type Mode int

// Cluster modes.
const (
	// ModeTyphoon runs the SDN data plane.
	ModeTyphoon Mode = iota
	// ModeStorm runs the application-level TCP baseline.
	ModeStorm
)

// Config describes an emulated cluster.
type Config struct {
	Mode Mode
	// Hosts names the emulated compute hosts.
	Hosts []string
	// Scheduler places topologies; nil selects round robin, which the
	// paper uses on both systems for fair comparison (§6).
	Scheduler scheduler.Scheduler
	// HeartbeatTimeout is the manager's worker-failure timeout
	// (Storm defaults to 30 s; experiments shrink it).
	HeartbeatTimeout time.Duration
	// MonitorInterval is the heartbeat scan period; zero disables the
	// monitor.
	MonitorInterval time.Duration
	// HeartbeatInterval is how often agents report worker heartbeats.
	HeartbeatInterval time.Duration
	// DefaultBatchSize is the worker I/O batch size (Typhoon knob).
	DefaultBatchSize int
	// DefaultFlushDeadline bounds how long staged tuples wait for the
	// batch threshold; zero selects worker.DefaultFlushDeadline, negative
	// disables the bound.
	DefaultFlushDeadline time.Duration
	// WorkerFlushInterval is the worker loop's periodic transport flush
	// cadence; zero selects the worker default.
	WorkerFlushInterval time.Duration
	// AckTimeout is the source replay timeout under guaranteed
	// processing.
	AckTimeout time.Duration
	// SwitchRingCapacity sizes switch port rings.
	SwitchRingCapacity int
	// DrainDelay is the agent's stable-removal drain window.
	DrainDelay time.Duration
	// RestartDelay spaces local restarts of crashed workers.
	RestartDelay time.Duration
	// RuleIdleTimeout optionally ages out flow rules (ablation knob).
	RuleIdleTimeout time.Duration
	// OnWorkerCrash observes worker crashes (experiments).
	OnWorkerCrash func(topo string, id topology.WorkerID, err error)
	// TraceEvery samples one in N emitted frames for tuple-path tracing
	// (Typhoon mode). Zero selects observe.DefaultTraceEvery; negative
	// disables tracing.
	TraceEvery int
	// Controllers is the number of SDN controller instances (Typhoon
	// mode). 0 or 1 runs one standalone controller; n > 1 runs a
	// replicated control plane with coordinator-elected per-switch
	// mastership and zero-interruption failover.
	Controllers int
	// Chaos is an optional fault-injection plan executed once the cluster
	// is up; its Seed drives the link impairment table.
	Chaos chaos.Plan
	// QoS configures multi-tenant QoS; see WithQoS.
	QoS QoSConfig
}

// Host is one emulated compute host.
type Host struct {
	Name   string
	Switch *switchfabric.Switch
	Agent  *agent.Agent

	ofAgent    *controller.OFAgent
	multiAgent *controller.MultiAgent
	tunnel     *tunnelEndpoint
}

// Cluster is a running emulated deployment.
type Cluster struct {
	cfg Config

	// Store is the central coordinator state.
	Store *coordinator.Store
	// Manager is the streaming manager.
	Manager *manager.Manager
	// Controller is the SDN controller (nil in ModeStorm).
	Controller *controller.Controller
	// Env is the shared environment handed to computation logic.
	Env *worker.SharedEnv
	// Obs is the cluster-wide observability layer (always non-nil).
	Obs *Observability
	// Chaos is the fault-injection engine (always non-nil); use it to
	// inject faults at runtime beyond any configured plan.
	Chaos *chaos.Engine

	hosts    map[string]*Host
	fabric   *tunnelFabric
	netem    *chaos.Netem
	stormNet *storm.Network
	// controllers holds every SDN controller instance; Controller aliases
	// controllers[0]. updaters parallels controllers (one updater app per
	// instance, so rescale response tokens stay per-controller).
	controllers []*controller.Controller
	updaters    []*controller.Updater
	updater     *controller.Updater
	// allocators parallels controllers when QoS is enabled (one
	// bandwidth-allocator app per instance, sharded like the updaters).
	allocators []*controller.BandwidthAllocator

	rescalePause *observe.Histogram
	rescaleKeys  *observe.Counter

	// scenarioMu serializes scenario runs (they own the shared-env run
	// slot and the scn-* topology names).
	scenarioMu sync.Mutex
}

// NewCluster builds and starts a cluster from the given options. A plain
// Config value is itself an Option, so both call styles work:
//
//	core.NewCluster(core.Config{Hosts: []string{"h1"}})
//	core.NewCluster(core.WithHosts("h1"), core.WithMode(core.ModeTyphoon))
func NewCluster(options ...Option) (*Cluster, error) {
	var cfg Config
	for _, o := range options {
		o.apply(&cfg)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Scheduler == nil {
		cfg.Scheduler = scheduler.RoundRobin{}
	}
	if cfg.DefaultBatchSize <= 0 {
		cfg.DefaultBatchSize = worker.DefaultBatchSize
	}
	c := &Cluster{
		cfg:   cfg,
		Store: coordinator.NewStore(),
		Env:   worker.NewSharedEnv(),
		Obs:   newObservability(cfg.TraceEvery),
		hosts: make(map[string]*Host),
	}

	if cfg.Mode == ModeTyphoon {
		c.netem = chaos.NewNetem(cfg.Chaos.Seed)
		n := cfg.Controllers
		if n < 1 {
			n = 1
		}
		// One collector instance is shared by every controller so /api/top
		// aggregates all shards; each controller polls only the topologies
		// it owns.
		c.Obs.Collector = controller.NewMetricsCollector()
		c.Obs.Collector.Register(c.Obs.Registry)
		for i := 0; i < n; i++ {
			opts := controller.Options{
				RuleIdleTimeout: cfg.RuleIdleTimeout,
				EnableQoS:       cfg.QoS.Enable,
			}
			var labels observe.Labels
			if n > 1 {
				// Replicated control plane: tight ticks so mastership
				// campaigns — and therefore failover detection — run at
				// tens of milliseconds.
				opts.ID = fmt.Sprintf("ctl-%d", i)
				opts.TickInterval = 50 * time.Millisecond
				opts.LeaseTTL = 300 * time.Millisecond
				labels = observe.Labels{"controller": opts.ID}
			}
			ctl, err := controller.New(c.Store, opts)
			if err != nil {
				c.Stop()
				return nil, err
			}
			c.controllers = append(c.controllers, ctl)
			c.Obs.Registry.GaugeFunc("typhoon_controller_datapaths",
				"Switches connected to the SDN controller.", labels,
				func() float64 { return float64(len(ctl.Datapaths())) })
			ctl.AddApp(c.Obs.Collector)
			u := controller.NewUpdater()
			c.updaters = append(c.updaters, u)
			ctl.AddApp(u)
			if cfg.QoS.Enable {
				ba := controller.NewBandwidthAllocator(controller.BandwidthConfig{
					LinkCapacityBps: cfg.QoS.LinkCapacityBps,
				})
				c.allocators = append(c.allocators, ba)
				ctl.AddApp(ba)
			}
			if err := ctl.Start(); err != nil {
				c.Stop()
				return nil, err
			}
		}
		c.Controller = c.controllers[0]
		c.updater = c.updaters[0]
		c.rescalePause = c.Obs.Registry.Histogram("typhoon_rescale_pause_seconds",
			"Source pause duration of managed stable rescales.", nil, nil)
		c.rescaleKeys = c.Obs.Registry.Counter("typhoon_rescale_keys_migrated_total",
			"State entries migrated by managed stable rescales.", nil)
		c.fabric = newTunnelFabric()
	} else {
		c.stormNet = storm.NewNetwork()
	}

	c.Manager = manager.New(c.Store, manager.Options{
		Scheduler:        cfg.Scheduler,
		HeartbeatTimeout: cfg.HeartbeatTimeout,
		MonitorInterval:  cfg.MonitorInterval,
	})
	for _, ctl := range c.controllers {
		ctl.SetManager(c.Manager)
	}

	for i, name := range cfg.Hosts {
		h := &Host{Name: name}
		agentOpts := agent.Options{
			Host:                 name,
			KV:                   c.Store,
			Env:                  c.Env,
			HeartbeatInterval:    cfg.HeartbeatInterval,
			DrainDelay:           cfg.DrainDelay,
			RestartDelay:         cfg.RestartDelay,
			DefaultBatchSize:     cfg.DefaultBatchSize,
			DefaultFlushDeadline: cfg.DefaultFlushDeadline,
			WorkerFlushInterval:  cfg.WorkerFlushInterval,
			AckTimeout:           cfg.AckTimeout,
			OnWorkerCrash:        cfg.OnWorkerCrash,
		}
		if cfg.Mode == ModeTyphoon {
			swOpts := switchfabric.Options{
				RingCapacity: cfg.SwitchRingCapacity,
			}
			if cfg.QoS.Enable {
				swOpts.EgressQueues = cfg.QoS.queueClasses()
			}
			sw := switchfabric.New(name, uint64(i+1), swOpts)
			sw.Start()
			h.Switch = sw
			c.Obs.registerSwitch(sw)
			tport, err := sw.AddTunnelPort("tun0")
			if err != nil {
				c.Stop()
				return nil, err
			}
			tun, err := startTunnel(name, tport, c.fabric, c.netem)
			if err != nil {
				c.Stop()
				return nil, err
			}
			h.tunnel = tun
			if len(c.controllers) > 1 {
				addrs := make([]string, 0, len(c.controllers))
				for _, ctl := range c.controllers {
					addrs = append(addrs, ctl.Addr())
				}
				h.multiAgent = controller.ConnectSwitchMulti(addrs, sw)
			} else {
				ofa, err := controller.ConnectSwitch(c.Controller.Addr(), sw)
				if err != nil {
					c.Stop()
					return nil, err
				}
				h.ofAgent = ofa
			}
			agentOpts.Mode = agent.ModeSDN
			agentOpts.Switch = sw
			agentOpts.FrameSampler = c.Obs.Sampler
			agentOpts.TraceSink = c.Obs.Traces.Record
		} else {
			agentOpts.Mode = agent.ModeStorm
			agentOpts.StormNet = c.stormNet
		}
		ag, err := agent.New(agentOpts)
		if err != nil {
			c.Stop()
			return nil, err
		}
		if err := ag.Start(); err != nil {
			c.Stop()
			return nil, err
		}
		h.Agent = ag
		c.Obs.registerAgentTransports(ag)
		c.Obs.Registry.GaugeFunc("typhoon_agent_workers",
			"Live workers managed by the host's agent.",
			observe.Labels{"host": name},
			func() float64 { return float64(ag.WorkerCount()) })
		c.hosts[name] = h
	}
	c.Manager.Start()
	c.Chaos = chaos.NewEngine(chaosTarget{c}, c.Obs.Registry)
	if !cfg.Chaos.Empty() {
		if err := c.Chaos.RunPlan(cfg.Chaos); err != nil {
			c.Stop()
			return nil, err
		}
	}
	return c, nil
}

// Host returns a host by name, or nil.
func (c *Cluster) Host(name string) *Host { return c.hosts[name] }

// Controllers lists the SDN controller instances: one in standalone mode,
// n under WithControllers(n). Empty in ModeStorm.
func (c *Cluster) Controllers() []*controller.Controller {
	return append([]*controller.Controller(nil), c.controllers...)
}

// ControllerByID finds a controller instance by its control-plane ID, or
// nil (standalone controllers have ID "").
func (c *Cluster) ControllerByID(id string) *controller.Controller {
	for _, ctl := range c.controllers {
		if ctl.ID() == id {
			return ctl
		}
	}
	return nil
}

// KillController terminates one controller instance by ID (chaos): its
// switch connections drop, its heartbeat and lease renewals stop, and —
// in a replicated control plane — surviving peers take over its switches
// once the leases expire, reconciling rules with zero interruption to
// cached-path forwarding.
func (c *Cluster) KillController(id string) error {
	ctl := c.ControllerByID(id)
	if ctl == nil {
		return fmt.Errorf("core: unknown controller %q", id)
	}
	ctl.Stop()
	return nil
}

// MasterOf reports which controller currently masters a host's switch, as
// seen by the first live controller. Stopped instances are skipped — their
// cached view freezes at the moment of death.
func (c *Cluster) MasterOf(host string) (owner string, epoch uint64, ok bool) {
	for _, ctl := range c.controllers {
		if ctl.Stopped() {
			continue
		}
		if owner, epoch, ok = ctl.MasterOf(host); ok {
			return owner, epoch, ok
		}
	}
	return "", 0, false
}

// Submit submits a topology and, in Typhoon mode, waits until the SDN
// controller has programmed the data plane and activated the sources. It
// is SubmitCtx with a timeout-derived context.
func (c *Cluster) Submit(l *topology.Logical, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return c.SubmitCtx(ctx, l)
}

// SubmitCtx submits a topology and waits for data-plane readiness until
// ctx is cancelled or its deadline passes, returning the context error
// wrapped when the wait is cut short. The submission itself is not rolled
// back on cancellation.
func (c *Cluster) SubmitCtx(ctx context.Context, l *topology.Logical) error {
	if err := c.Manager.Submit(l); err != nil {
		return err
	}
	if c.Controller == nil {
		// Baseline: wait for all workers, then activate the topology so
		// throttled sources start emitting (no startup tuple loss).
		if err := c.waitWorkersRunning(ctx, l.Name); err != nil {
			return err
		}
		_, err := c.Store.Put(paths.Activated(l.Name), []byte("1"))
		return err
	}
	return c.Manager.WaitReadyCtx(ctx, l.Name)
}

func (c *Cluster) waitWorkersRunning(ctx context.Context, name string) error {
	for {
		_, p, err := c.Manager.Describe(name)
		if err == nil {
			running := 0
			for _, h := range c.hosts {
				running += len(h.Agent.RunningWorkers(name))
			}
			if running >= len(p.Workers) {
				return nil
			}
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("core: topology %s workers not running: %w", name, ctx.Err())
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// Worker finds a running worker by ID across hosts (experiments and
// tests); nil if not running.
func (c *Cluster) Worker(topo string, id topology.WorkerID) *worker.Worker {
	for _, h := range c.hosts {
		if w := h.Agent.Worker(topo, id); w != nil {
			return w
		}
	}
	return nil
}

// WorkersOf lists the running workers of a logical node.
func (c *Cluster) WorkersOf(topo, node string) []*worker.Worker {
	_, p, err := c.Manager.Describe(topo)
	if err != nil {
		return nil
	}
	var out []*worker.Worker
	for _, as := range p.Instances(node) {
		if w := c.Worker(topo, as.Worker); w != nil {
			out = append(out, w)
		}
	}
	return out
}

// Rescale changes the parallelism of one node of a running topology with
// the stable update protocol (§3.5): sources are paused, in-flight tuples
// drained, keyed state snapshotted and re-partitioned onto the new
// instance set, flow rules reprogrammed, and sources re-activated. It
// blocks until the rescale completes (ctx bounds the wait) and returns the
// protocol's report. Typhoon mode only.
func (c *Cluster) Rescale(ctx context.Context, topo, node string, parallelism int) (*controller.RescaleReport, error) {
	if c.updater == nil || c.Controller == nil {
		return nil, fmt.Errorf("core: rescale requires the Typhoon SDN control plane")
	}
	timeout := 30 * time.Second
	if dl, ok := ctx.Deadline(); ok {
		timeout = time.Until(dl)
	}
	// Drive through the first live instance: after a controller kill the
	// surviving replicas still accept rescales.
	for i, ctl := range c.controllers {
		if ctl.Stopped() {
			continue
		}
		report, err := c.updaters[i].Rescale(ctl, topo, node, parallelism, timeout)
		if err != nil {
			return nil, err
		}
		c.rescalePause.Observe(report.Pause.Seconds())
		c.rescaleKeys.Add(uint64(report.KeysMigrated))
		return report, nil
	}
	return nil, fmt.Errorf("core: no live controller to drive the rescale")
}

// RescaleVia runs a managed rescale driven by a specific controller
// instance of a replicated control plane (chaos experiments kill the
// driver mid-flight to prove the protocol degrades to a pause).
func (c *Cluster) RescaleVia(ctx context.Context, controllerID, topo, node string, parallelism int) (*controller.RescaleReport, error) {
	timeout := 30 * time.Second
	if dl, ok := ctx.Deadline(); ok {
		timeout = time.Until(dl)
	}
	for i, ctl := range c.controllers {
		if ctl.ID() == controllerID {
			return c.updaters[i].Rescale(ctl, topo, node, parallelism, timeout)
		}
	}
	return nil, fmt.Errorf("core: unknown controller %q", controllerID)
}

// StopCtx tears the cluster down, abandoning the wait (but not the
// teardown itself) when ctx is cancelled first. The teardown keeps running
// in the background in that case.
func (c *Cluster) StopCtx(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		c.Stop()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("core: stop: %w", ctx.Err())
	}
}

// Stop tears the cluster down.
func (c *Cluster) Stop() {
	if c.Chaos != nil {
		c.Chaos.Stop()
	}
	if c.Manager != nil {
		c.Manager.Stop()
	}
	for _, h := range c.hosts {
		if h.Agent != nil {
			h.Agent.Stop()
		}
	}
	for _, ctl := range c.controllers {
		ctl.Stop()
	}
	for _, h := range c.hosts {
		if h.ofAgent != nil {
			h.ofAgent.Close()
		}
		if h.multiAgent != nil {
			h.multiAgent.Close()
		}
		if h.Switch != nil {
			h.Switch.Stop()
		}
		if h.tunnel != nil {
			h.tunnel.close()
		}
	}
	if c.Store != nil {
		c.Store.Close()
	}
}

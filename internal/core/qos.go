package core

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"typhoon/internal/controller"
	"typhoon/internal/switchfabric"
	"typhoon/internal/topology"
)

// QoSConfig configures multi-tenant QoS (see WithQoS).
type QoSConfig struct {
	// Enable turns QoS on; WithQoS sets it.
	Enable bool
	// LinkCapacityBps is the per-host egress budget the bandwidth
	// allocator manages; zero selects the allocator's default.
	LinkCapacityBps uint64
	// Queues overrides the egress queue classes of every switch port and
	// tunnel; nil selects the standard three classes. Order matters: a
	// class's position is the queue ID flow rules select with set_queue.
	Queues []switchfabric.QueueClass
}

// DefaultQueueClasses is the standard three-class egress WFQ profile,
// indexed to match topology.QoSClassID: guaranteed traffic (and control
// punts, which ride queue 0 implicitly) outweighs burstable 2:1 and
// best-effort 8:1.
func DefaultQueueClasses() []switchfabric.QueueClass {
	return []switchfabric.QueueClass{
		{Name: topology.QoSGuaranteed, Weight: 8},
		{Name: topology.QoSBurstable, Weight: 4},
		{Name: topology.QoSBestEffort, Weight: 1},
	}
}

func (q QoSConfig) queueClasses() []switchfabric.QueueClass {
	if len(q.Queues) > 0 {
		return q.Queues
	}
	return DefaultQueueClasses()
}

// QoSHostRow is one host's data-plane QoS statistics.
type QoSHostRow struct {
	Host string `json:"host"`
	// MeterDrops counts frames dropped by meters on this host's switch.
	MeterDrops uint64                   `json:"meterDrops"`
	Meters     []switchfabric.MeterInfo `json:"meters,omitempty"`
	// Queues aggregates per-class egress queue counters across the
	// switch's ports.
	Queues []switchfabric.QueueStats `json:"queues,omitempty"`
}

// QoSStatusReport is the /api/qos GET payload.
type QoSStatusReport struct {
	Enabled    bool                      `json:"enabled"`
	Topologies []controller.TopologyQoS  `json:"topologies,omitempty"`
	Hosts      []QoSHostRow              `json:"hosts,omitempty"`
	Queues     []switchfabric.QueueClass `json:"queueClasses,omitempty"`
}

// QoSStatus assembles the cluster's QoS view: the controller's per-topology
// class and rate assignment joined with per-host meter and queue counters.
func (c *Cluster) QoSStatus() QoSStatusReport {
	report := QoSStatusReport{Enabled: c.cfg.QoS.Enable}
	if !report.Enabled {
		return report
	}
	report.Queues = c.cfg.QoS.queueClasses()
	for _, ctl := range c.controllers {
		if ctl.Stopped() {
			continue
		}
		report.Topologies = ctl.QoSStatus()
		break
	}
	for _, name := range c.cfg.Hosts {
		h := c.hosts[name]
		if h == nil || h.Switch == nil {
			continue
		}
		row := QoSHostRow{
			Host:       name,
			MeterDrops: h.Switch.MeterDrops(),
			Meters:     h.Switch.MeterStatsSnapshot(),
		}
		// Aggregate queue counters per class across ports.
		agg := make(map[string]*switchfabric.QueueStats)
		var order []string
		for _, pi := range h.Switch.Ports() {
			p := h.Switch.Port(pi.No)
			if p == nil {
				continue
			}
			for _, qs := range p.QueueStats() {
				a := agg[qs.Class]
				if a == nil {
					a = &switchfabric.QueueStats{Class: qs.Class}
					agg[qs.Class] = a
					order = append(order, qs.Class)
				}
				a.Depth += qs.Depth
				a.Enqueued += qs.Enqueued
				a.Dropped += qs.Dropped
			}
		}
		for _, class := range order {
			row.Queues = append(row.Queues, *agg[class])
		}
		report.Hosts = append(report.Hosts, row)
	}
	return report
}

// SetTopologyQoS reassigns a running topology's rate class and configured
// bandwidth through the streaming manager; the generation bump makes every
// controller recompile rules with the new class queue and re-program
// meters on its next sync.
func (c *Cluster) SetTopologyQoS(topo, class string, rateBps uint64) error {
	if !c.cfg.QoS.Enable {
		return fmt.Errorf("core: QoS is not enabled on this cluster")
	}
	return c.Manager.SetQoS(topo, class, rateBps)
}

// serveQoS is the /api/qos handler: GET reports QoSStatus, POST with
// topo, class and optional rate query parameters reassigns a topology.
func (c *Cluster) serveQoS(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(c.QoSStatus())
	case http.MethodPost:
		q := r.URL.Query()
		topo, class := q.Get("topo"), q.Get("class")
		if topo == "" || !topology.ValidQoSClass(class) || class == "" {
			http.Error(w, "topo and class (guaranteed|burstable|best-effort) required", http.StatusBadRequest)
			return
		}
		var rate uint64
		if rv := q.Get("rate"); rv != "" {
			parsed, err := strconv.ParseUint(rv, 10, 64)
			if err != nil {
				http.Error(w, "bad rate", http.StatusBadRequest)
				return
			}
			rate = parsed
		}
		if err := c.SetTopologyQoS(topo, class, rate); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
	default:
		http.Error(w, "GET or POST required", http.StatusMethodNotAllowed)
	}
}

package manager

import (
	"strconv"
	"testing"
	"time"

	"typhoon/internal/ack"
	"typhoon/internal/coordinator"
	"typhoon/internal/paths"
	"typhoon/internal/scheduler"
	"typhoon/internal/topology"
	"typhoon/internal/tuple"
)

func newManager(t *testing.T, hosts ...string) (*Manager, *coordinator.Store) {
	t.Helper()
	store := coordinator.NewStore()
	for _, h := range hosts {
		if _, err := store.Put(paths.Agent(h), []byte(`{"host":"`+h+`"}`)); err != nil {
			t.Fatal(err)
		}
	}
	m := New(store, Options{Scheduler: scheduler.RoundRobin{}})
	t.Cleanup(m.Stop)
	return m, store
}

func sampleTopology(t *testing.T, ackers int) *topology.Logical {
	t.Helper()
	b := topology.NewBuilder("sample", 1)
	if ackers > 0 {
		b.Ackers(ackers)
	}
	b.Source("src", "logic/src", 1)
	b.Node("mid", "logic/mid", 2).ShuffleFrom("src")
	b.Node("sink", "logic/sink", 1).GlobalFrom("mid")
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestSubmitStoresBothTopologies(t *testing.T) {
	m, store := newManager(t, "h1", "h2")
	if err := m.Submit(sampleTopology(t, 0)); err != nil {
		t.Fatal(err)
	}
	l, p, err := m.Describe("sample")
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Nodes) != 3 || len(p.Workers) != 4 {
		t.Fatalf("nodes=%d workers=%d", len(l.Nodes), len(p.Workers))
	}
	if err := m.Submit(sampleTopology(t, 0)); err == nil {
		t.Fatal("duplicate submit accepted")
	}
	if _, _, err := store.Get(paths.Physical("sample")); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitRequiresAgents(t *testing.T) {
	m, _ := newManager(t) // no agents registered
	if err := m.Submit(sampleTopology(t, 0)); err == nil {
		t.Fatal("submit without agents accepted")
	}
}

func TestSubmitWiresAckers(t *testing.T) {
	m, _ := newManager(t, "h1")
	if err := m.Submit(sampleTopology(t, 2)); err != nil {
		t.Fatal(err)
	}
	l, p, _ := m.Describe("sample")
	ackNode := l.Node(ack.NodeName)
	if ackNode == nil || ackNode.Parallelism != 2 || ackNode.Logic != ack.LogicName {
		t.Fatalf("acker node = %+v", ackNode)
	}
	// Every application node has an ack edge; the acker notifies sources.
	ackEdges, completeEdges := 0, 0
	for _, e := range l.Edges {
		if e.To == ack.NodeName && e.Stream == tuple.AckStream {
			ackEdges++
		}
		if e.From == ack.NodeName && e.Stream == tuple.CompleteStream {
			if e.Policy != topology.Direct {
				t.Fatal("completion edge must be direct")
			}
			completeEdges++
		}
	}
	if ackEdges != 3 || completeEdges != 1 {
		t.Fatalf("ackEdges=%d completeEdges=%d", ackEdges, completeEdges)
	}
	if len(p.Instances(ack.NodeName)) != 2 {
		t.Fatal("acker instances not scheduled")
	}
}

func TestSetParallelismBumpsGeneration(t *testing.T) {
	m, _ := newManager(t, "h1", "h2")
	if err := m.Submit(sampleTopology(t, 0)); err != nil {
		t.Fatal(err)
	}
	if err := m.SetParallelism("sample", "mid", 4); err != nil {
		t.Fatal(err)
	}
	l, p, _ := m.Describe("sample")
	if l.Generation != 1 || p.Generation != 1 {
		t.Fatalf("generations = %d/%d", l.Generation, p.Generation)
	}
	if l.Node("mid").Parallelism != 4 || len(p.Instances("mid")) != 4 {
		t.Fatal("parallelism not applied")
	}
	if err := m.SetParallelism("sample", "ghost", 2); err == nil {
		t.Fatal("unknown node accepted")
	}
	if err := m.SetParallelism("sample", "mid", 0); err == nil {
		t.Fatal("zero parallelism accepted")
	}
}

func TestSwapLogicReplacesWorkers(t *testing.T) {
	m, _ := newManager(t, "h1")
	if err := m.Submit(sampleTopology(t, 0)); err != nil {
		t.Fatal(err)
	}
	_, p0, _ := m.Describe("sample")
	oldIDs := map[topology.WorkerID]bool{}
	for _, a := range p0.Instances("mid") {
		oldIDs[a.Worker] = true
	}
	if err := m.SwapLogic("sample", "mid", "logic/mid-v2"); err != nil {
		t.Fatal(err)
	}
	l, p, _ := m.Describe("sample")
	if l.Node("mid").Logic != "logic/mid-v2" {
		t.Fatal("logic not swapped")
	}
	for _, a := range p.Instances("mid") {
		if oldIDs[a.Worker] {
			t.Fatalf("worker %d reused across logic swap", a.Worker)
		}
	}
	// Other nodes keep their workers.
	if p.Instances("src")[0].Worker != p0.Instances("src")[0].Worker {
		t.Fatal("unrelated workers replaced")
	}
}

func TestSetRoutingPolicy(t *testing.T) {
	m, _ := newManager(t, "h1")
	if err := m.Submit(sampleTopology(t, 0)); err != nil {
		t.Fatal(err)
	}
	if err := m.SetRoutingPolicy("sample", "src", "mid", topology.Fields, []int{0}); err != nil {
		t.Fatal(err)
	}
	l, _, _ := m.Describe("sample")
	for _, e := range l.Edges {
		if e.From == "src" && e.To == "mid" && e.Policy != topology.Fields {
			t.Fatal("policy not updated")
		}
	}
	if err := m.SetRoutingPolicy("sample", "a", "b", topology.Shuffle, nil); err == nil {
		t.Fatal("unknown edge accepted")
	}
}

func TestAddRemoveDetachedNode(t *testing.T) {
	m, _ := newManager(t, "h1", "h2")
	if err := m.Submit(sampleTopology(t, 0)); err != nil {
		t.Fatal(err)
	}
	spec := topology.NodeSpec{Name: "__debug-1", Logic: "logic/debug"}
	if err := m.AddDetachedNode("sample", spec, "h2"); err != nil {
		t.Fatal(err)
	}
	_, p, _ := m.Describe("sample")
	inst := p.Instances("__debug-1")
	if len(inst) != 1 || inst[0].Host != "h2" {
		t.Fatalf("debug instances = %+v", inst)
	}
	if err := m.AddDetachedNode("sample", spec, "h2"); err == nil {
		t.Fatal("duplicate node accepted")
	}
	if err := m.RemoveNode("sample", "__debug-1"); err != nil {
		t.Fatal(err)
	}
	_, p, _ = m.Describe("sample")
	if len(p.Instances("__debug-1")) != 0 {
		t.Fatal("debug node not removed")
	}
	if err := m.RemoveNode("sample", "mid"); err == nil {
		t.Fatal("removing a wired node must fail")
	}
}

func TestKillCleansUp(t *testing.T) {
	m, store := newManager(t, "h1")
	if err := m.Submit(sampleTopology(t, 0)); err != nil {
		t.Fatal(err)
	}
	store.Put(paths.Heartbeat("sample", 1), []byte("1"))
	if err := m.Kill("sample"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.Get(paths.Logical("sample")); err != coordinator.ErrNotFound {
		t.Fatal("logical topology survived kill")
	}
	if _, _, err := store.Get(paths.Heartbeat("sample", 1)); err != coordinator.ErrNotFound {
		t.Fatal("heartbeats survived kill")
	}
	if err := m.Kill("sample"); err == nil {
		t.Fatal("double kill accepted")
	}
}

func TestHeartbeatMonitorReschedules(t *testing.T) {
	store := coordinator.NewStore()
	for _, h := range []string{"h1", "h2"} {
		store.Put(paths.Agent(h), []byte(`{}`))
	}
	m := New(store, Options{
		Scheduler:        scheduler.RoundRobin{},
		HeartbeatTimeout: 150 * time.Millisecond,
		MonitorInterval:  50 * time.Millisecond,
	})
	m.Start()
	defer m.Stop()
	if err := m.Submit(sampleTopology(t, 0)); err != nil {
		t.Fatal(err)
	}
	_, p0, _ := m.Describe("sample")
	victim := p0.Workers[0]
	// Heartbeat everyone except the victim.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-time.After(30 * time.Millisecond):
				now := []byte(strconv.FormatInt(time.Now().UnixNano(), 10))
				for _, a := range p0.Workers[1:] {
					store.Put(paths.Heartbeat("sample", a.Worker), now)
				}
			}
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, p, err := m.Describe("sample")
		if err == nil {
			if as := p.Worker(victim.Worker); as != nil && as.Host != victim.Host && as.Port == 0 {
				return // rescheduled to the other host with port cleared
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("victim never rescheduled")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestWaitReady(t *testing.T) {
	m, store := newManager(t, "h1")
	if err := m.Submit(sampleTopology(t, 0)); err != nil {
		t.Fatal(err)
	}
	if err := m.WaitReady("sample", 50*time.Millisecond); err == nil {
		t.Fatal("ready before controller wrote netready")
	}
	store.Put(paths.NetReady("sample"), []byte("0"))
	if err := m.WaitReady("sample", time.Second); err != nil {
		t.Fatal(err)
	}
}

// Package manager implements the Typhoon streaming manager (§3.2): the
// Nimbus-equivalent that builds and schedules topologies, plus the dynamic
// topology manager that applies runtime reconfigurations — per-node
// parallelism changes, computation-logic swaps and routing-policy changes —
// by updating the coordinator's global state, from which worker agents and
// the SDN controller converge.
//
// It also runs the heartbeat fault monitor both systems share: workers
// whose heartbeats go stale are rescheduled onto another host.
package manager

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"typhoon/internal/ack"
	"typhoon/internal/coordinator"
	"typhoon/internal/paths"
	"typhoon/internal/scheduler"
	"typhoon/internal/topology"
	"typhoon/internal/tuple"
)

// Options tunes a Manager.
type Options struct {
	// Scheduler places topologies; nil selects the Typhoon locality-aware
	// scheduler.
	Scheduler scheduler.Scheduler
	// HeartbeatTimeout is how long a worker may go without a heartbeat
	// before being rescheduled (Storm defaults to 30 s; tests shrink it).
	HeartbeatTimeout time.Duration
	// MonitorInterval is how often heartbeats are scanned; zero disables
	// the monitor.
	MonitorInterval time.Duration
}

// Manager is the streaming manager.
type Manager struct {
	kv   coordinator.KV
	opts Options

	mu sync.Mutex
	// missingSince tracks workers with absent/stale heartbeats.
	missingSince map[string]time.Time

	stopOnce sync.Once
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

// New builds a manager.
func New(kv coordinator.KV, opts Options) *Manager {
	if opts.Scheduler == nil {
		opts.Scheduler = scheduler.Locality{}
	}
	if opts.HeartbeatTimeout <= 0 {
		opts.HeartbeatTimeout = 30 * time.Second
	}
	return &Manager{
		kv:           kv,
		opts:         opts,
		missingSince: make(map[string]time.Time),
		stopCh:       make(chan struct{}),
	}
}

// Start launches the heartbeat fault monitor (if configured).
func (m *Manager) Start() {
	if m.opts.MonitorInterval <= 0 {
		return
	}
	m.wg.Add(1)
	go m.monitorLoop()
}

// Stop halts the manager's background work.
func (m *Manager) Stop() {
	m.stopOnce.Do(func() { close(m.stopCh) })
	m.wg.Wait()
}

// hosts reads the registered worker agents from the coordinator.
func (m *Manager) hosts() ([]scheduler.Host, error) {
	names, err := m.kv.Children(paths.Agents)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("manager: no worker agents registered")
	}
	out := make([]scheduler.Host, 0, len(names))
	for _, n := range names {
		out = append(out, scheduler.Host{Name: n})
	}
	return out, nil
}

// Submit validates, normalizes, schedules and stores a topology. The
// returned error is non-nil if a topology with the same name exists.
func (m *Manager) Submit(l *topology.Logical) error {
	norm := withAckers(l)
	if err := norm.Validate(); err != nil {
		return err
	}
	hosts, err := m.hosts()
	if err != nil {
		return err
	}
	phys, err := m.opts.Scheduler.Schedule(norm, hosts)
	if err != nil {
		return err
	}
	if err := m.kv.Create(paths.Logical(norm.Name), norm.Encode()); err != nil {
		return err
	}
	if err := m.kv.Create(paths.Physical(norm.Name), phys.Encode()); err != nil {
		_ = m.kv.Delete(paths.Logical(norm.Name))
		return err
	}
	return nil
}

// Kill removes a topology; agents stop its workers and the controller
// tears down its rules.
func (m *Manager) Kill(name string) error {
	if err := m.kv.Delete(paths.Logical(name)); err != nil {
		return err
	}
	_ = m.kv.Delete(paths.Physical(name))
	if kids, err := m.kv.Children(paths.HeartbeatPrefix(name)); err == nil {
		for _, k := range kids {
			_ = m.kv.Delete(paths.HeartbeatPrefix(name) + "/" + k)
		}
	}
	_ = m.kv.Delete(paths.NetReady(name))
	_ = m.kv.Delete(paths.Activated(name))
	_ = m.kv.Delete(paths.Paused(name))
	return nil
}

// Describe returns the stored logical and physical topologies.
func (m *Manager) Describe(name string) (*topology.Logical, *topology.Physical, error) {
	lraw, _, err := m.kv.Get(paths.Logical(name))
	if err != nil {
		return nil, nil, err
	}
	praw, _, err := m.kv.Get(paths.Physical(name))
	if err != nil {
		return nil, nil, err
	}
	l, err := topology.DecodeLogical(lraw)
	if err != nil {
		return nil, nil, err
	}
	p, err := topology.DecodePhysical(praw)
	if err != nil {
		return nil, nil, err
	}
	return l, p, nil
}

// WaitReady blocks until the SDN controller reports rules installed for
// the topology's current generation, or the timeout elapses.
func (m *Manager) WaitReady(name string, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return m.WaitReadyCtx(ctx, name)
}

// WaitReadyCtx is WaitReady driven by a context: it returns nil once the
// network is programmed for the current generation, or the context error
// when ctx is cancelled or its deadline passes first.
func (m *Manager) WaitReadyCtx(ctx context.Context, name string) error {
	for {
		l, _, err := m.Describe(name)
		if err == nil {
			raw, _, gerr := m.kv.Get(paths.NetReady(name))
			if gerr == nil {
				if gen, perr := strconv.ParseInt(string(raw), 10, 64); perr == nil && gen >= l.Generation {
					return nil
				}
			}
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("manager: topology %s not ready: %w", name, ctx.Err())
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// reconfigure applies fn to the stored logical topology, bumps its
// generation, reschedules, and stores both states atomically with respect
// to other manager operations.
func (m *Manager) reconfigure(name string, fn func(l *topology.Logical, p *topology.Physical) (*topology.Physical, error)) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for attempt := 0; attempt < 10; attempt++ {
		lraw, lver, err := m.kv.Get(paths.Logical(name))
		if err != nil {
			return err
		}
		praw, pver, err := m.kv.Get(paths.Physical(name))
		if err != nil {
			return err
		}
		l, err := topology.DecodeLogical(lraw)
		if err != nil {
			return err
		}
		p, err := topology.DecodePhysical(praw)
		if err != nil {
			return err
		}
		l.Generation++
		prev := p
		newPhys, err := fn(l, prev)
		if err != nil {
			return err
		}
		if err := l.Validate(); err != nil {
			return err
		}
		newPhys.Generation = l.Generation
		if _, err := m.kv.CompareAndSet(paths.Logical(name), l.Encode(), lver); err != nil {
			if err == coordinator.ErrBadVersion {
				continue
			}
			return err
		}
		if _, err := m.kv.CompareAndSet(paths.Physical(name), newPhys.Encode(), pver); err != nil {
			if err == coordinator.ErrBadVersion {
				// Agents raced a port update in: merge by retrying the
				// physical write with fresh ports for surviving workers.
				praw2, pver2, gerr := m.kv.Get(paths.Physical(name))
				if gerr != nil {
					return gerr
				}
				cur, derr := topology.DecodePhysical(praw2)
				if derr != nil {
					return derr
				}
				for i := range newPhys.Workers {
					if as := cur.Worker(newPhys.Workers[i].Worker); as != nil && newPhys.Workers[i].Port == as.Port {
						continue
					} else if as != nil && newPhys.Workers[i].Host == as.Host {
						newPhys.Workers[i].Port = as.Port
					}
				}
				if _, err2 := m.kv.CompareAndSet(paths.Physical(name), newPhys.Encode(), pver2); err2 != nil {
					continue
				}
			} else {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("manager: reconfigure: too many conflicts")
}

// SetParallelism changes a node's parallelism at runtime (per-node
// parallelism reconfiguration of §3.2). It implements the controller's
// ManagerAPI for the auto-scaler.
func (m *Manager) SetParallelism(name, node string, parallelism int) error {
	if parallelism < 1 {
		return fmt.Errorf("manager: parallelism must be >= 1")
	}
	return m.reconfigure(name, func(l *topology.Logical, p *topology.Physical) (*topology.Physical, error) {
		spec := l.Node(node)
		if spec == nil {
			return nil, fmt.Errorf("manager: unknown node %q", node)
		}
		spec.Parallelism = parallelism
		hosts, err := m.hosts()
		if err != nil {
			return nil, err
		}
		return m.opts.Scheduler.Reschedule(l, p, hosts)
	})
}

// SwapLogic replaces a node's computation logic at runtime (§6.2 "runtime
// update on computation logic"): fresh workers with the new logic are
// launched, wired in and the old instances are killed — without restarting
// the topology.
func (m *Manager) SwapLogic(name, node, newLogic string) error {
	return m.reconfigure(name, func(l *topology.Logical, p *topology.Physical) (*topology.Physical, error) {
		spec := l.Node(node)
		if spec == nil {
			return nil, fmt.Errorf("manager: unknown node %q", node)
		}
		spec.Logic = newLogic
		// Drop the node's instances from the previous physical topology
		// so the scheduler allocates brand-new workers for the new logic.
		trimmed := p.Clone()
		kept := trimmed.Workers[:0]
		for _, as := range trimmed.Workers {
			if as.Node != node {
				kept = append(kept, as)
			}
		}
		// Zero the compacted tail so dropped assignments (and their
		// strings) don't linger in the backing array.
		clear(trimmed.Workers[len(kept):])
		trimmed.Workers = kept
		hosts, err := m.hosts()
		if err != nil {
			return nil, err
		}
		return m.opts.Scheduler.Reschedule(l, trimmed, hosts)
	})
}

// SetRoutingPolicy changes an edge's routing policy (and hash fields) at
// runtime (routing-policy reconfiguration of §3.2).
func (m *Manager) SetRoutingPolicy(name, from, to string, policy topology.RoutingPolicy, hashFields []int) error {
	return m.reconfigure(name, func(l *topology.Logical, p *topology.Physical) (*topology.Physical, error) {
		found := false
		for i := range l.Edges {
			if l.Edges[i].From == from && l.Edges[i].To == to {
				l.Edges[i].Policy = policy
				l.Edges[i].HashFields = hashFields
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("manager: no edge %s->%s", from, to)
		}
		return p.Clone(), nil
	})
}

// AddDetachedNode adds an edgeless node pinned to a host (used by the live
// debugger to deploy debug workers). It implements controller.ManagerAPI.
func (m *Manager) AddDetachedNode(name string, spec topology.NodeSpec, host string) error {
	if spec.Parallelism < 1 {
		spec.Parallelism = 1
	}
	return m.reconfigure(name, func(l *topology.Logical, p *topology.Physical) (*topology.Physical, error) {
		if l.Node(spec.Name) != nil {
			return nil, fmt.Errorf("manager: node %q exists", spec.Name)
		}
		l.Nodes = append(l.Nodes, spec)
		out := p.Clone()
		for i := 0; i < spec.Parallelism; i++ {
			out.Workers = append(out.Workers, topology.Assignment{
				Worker: out.NextWorker,
				Node:   spec.Name,
				Index:  i,
				Host:   host,
			})
			out.NextWorker++
		}
		return out, nil
	})
}

// RemoveNode removes a node previously added with AddDetachedNode. It
// implements controller.ManagerAPI.
func (m *Manager) RemoveNode(name, node string) error {
	return m.reconfigure(name, func(l *topology.Logical, p *topology.Physical) (*topology.Physical, error) {
		idx := -1
		for i := range l.Nodes {
			if l.Nodes[i].Name == node {
				idx = i
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("manager: unknown node %q", node)
		}
		for _, e := range l.Edges {
			if e.From == node || e.To == node {
				return nil, fmt.Errorf("manager: node %q has edges; reconfigure them first", node)
			}
		}
		l.Nodes = append(l.Nodes[:idx], l.Nodes[idx+1:]...)
		out := p.Clone()
		kept := out.Workers[:0]
		for _, as := range out.Workers {
			if as.Node != node {
				kept = append(kept, as)
			}
		}
		// Zero the compacted tail, as in SwapLogic.
		clear(out.Workers[len(kept):])
		out.Workers = kept
		return out, nil
	})
}

// monitorLoop is the heartbeat fault monitor: workers with stale or
// missing heartbeats are rescheduled onto a different host.
func (m *Manager) monitorLoop() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.opts.MonitorInterval)
	defer ticker.Stop()
	for {
		select {
		case <-m.stopCh:
			return
		case <-ticker.C:
			m.scanHeartbeats()
		}
	}
}

func (m *Manager) scanHeartbeats() {
	names, err := m.kv.Children(paths.Topologies)
	if err != nil {
		return
	}
	now := time.Now()
	for _, name := range names {
		_, p, err := m.Describe(name)
		if err != nil {
			continue
		}
		for _, as := range p.Workers {
			key := name + "/" + strconv.FormatUint(uint64(as.Worker), 10)
			raw, _, err := m.kv.Get(paths.Heartbeat(name, as.Worker))
			fresh := false
			if err == nil {
				if ts, perr := strconv.ParseInt(string(raw), 10, 64); perr == nil {
					fresh = now.Sub(time.Unix(0, ts)) < m.opts.HeartbeatTimeout
				}
			}
			m.mu.Lock()
			if fresh {
				delete(m.missingSince, key)
				m.mu.Unlock()
				continue
			}
			first, seen := m.missingSince[key]
			if !seen {
				m.missingSince[key] = now
				m.mu.Unlock()
				continue
			}
			expired := now.Sub(first) >= m.opts.HeartbeatTimeout
			if expired {
				delete(m.missingSince, key)
			}
			m.mu.Unlock()
			if expired {
				m.rescheduleWorker(name, as.Worker)
			}
		}
	}
}

// rescheduleWorker moves one dead worker to a different host, clearing its
// port so the new agent re-attaches it.
func (m *Manager) rescheduleWorker(name string, id topology.WorkerID) {
	hosts, err := m.hosts()
	if err != nil || len(hosts) < 2 {
		return
	}
	_ = m.reconfigure(name, func(l *topology.Logical, p *topology.Physical) (*topology.Physical, error) {
		out := p.Clone()
		as := out.Worker(id)
		if as == nil {
			return nil, fmt.Errorf("manager: worker %d gone", id)
		}
		for i, h := range hosts {
			if h.Name == as.Host {
				as.Host = hosts[(i+1)%len(hosts)].Name
				break
			}
		}
		as.Port = 0
		return out, nil
	})
}

// withAckers wires guaranteed processing into a topology: an acker node,
// ack edges from every application node, and completion edges back to the
// sources (the acker-worker arrangement of §6.1).
func withAckers(l *topology.Logical) *topology.Logical {
	out := l.Clone()
	if out.Ackers <= 0 {
		return out
	}
	appNodes := append([]topology.NodeSpec(nil), out.Nodes...)
	out.Nodes = append(out.Nodes, topology.NodeSpec{
		Name:        ack.NodeName,
		Logic:       ack.LogicName,
		Parallelism: out.Ackers,
	})
	for _, n := range appNodes {
		out.Edges = append(out.Edges, topology.EdgeSpec{
			From: n.Name, To: ack.NodeName,
			Policy: topology.Fields, HashFields: []int{1},
			Stream: tuple.AckStream,
		})
	}
	for _, n := range appNodes {
		if n.Source {
			out.Edges = append(out.Edges, topology.EdgeSpec{
				From: ack.NodeName, To: n.Name,
				Policy: topology.Direct,
				Stream: tuple.CompleteStream,
			})
		}
	}
	return out
}

// SetQoS reassigns a running topology's rate class and configured
// bandwidth (bytes/sec). The generation bump rides the standard
// reconfiguration path, so every SDN controller recompiles the topology's
// rules with the new class queue and meter treatment on its next sync.
func (m *Manager) SetQoS(name, class string, rateBps uint64) error {
	if !topology.ValidQoSClass(class) {
		return fmt.Errorf("manager: unknown QoS class %q", class)
	}
	return m.reconfigure(name, func(l *topology.Logical, p *topology.Physical) (*topology.Physical, error) {
		l.QoSClass = class
		l.QoSRateBps = rateBps
		return p, nil
	})
}

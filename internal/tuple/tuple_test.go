package tuple

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Int(-42), KindInt64},
		{Float(3.5), KindFloat64},
		{Bool(true), KindBool},
		{String("hello"), KindString},
		{Bytes([]byte{1, 2, 3}), KindBytes},
		{Nil(), KindNil},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("kind = %v, want %v", c.v.Kind(), c.kind)
		}
	}
	if Int(-42).AsInt() != -42 {
		t.Error("AsInt round trip failed")
	}
	if Float(3.5).AsFloat() != 3.5 {
		t.Error("AsFloat round trip failed")
	}
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Error("AsBool round trip failed")
	}
	if String("hello").AsString() != "hello" {
		t.Error("AsString round trip failed")
	}
	if !bytes.Equal(Bytes([]byte{1, 2, 3}).AsBytes(), []byte{1, 2, 3}) {
		t.Error("AsBytes round trip failed")
	}
}

func TestValueEqual(t *testing.T) {
	if !Int(7).Equal(Int(7)) {
		t.Error("equal ints not Equal")
	}
	if Int(7).Equal(Int(8)) {
		t.Error("different ints Equal")
	}
	if Int(1).Equal(Bool(true)) {
		t.Error("different kinds Equal")
	}
	if !Bytes([]byte("ab")).Equal(Bytes([]byte("ab"))) {
		t.Error("equal bytes not Equal")
	}
	if !Nil().Equal(Nil()) {
		t.Error("nil not Equal nil")
	}
}

func TestTupleFieldOutOfRange(t *testing.T) {
	tp := New(Int(1))
	if tp.Field(5).Kind() != KindNil {
		t.Error("out-of-range field should be nil value")
	}
	if tp.Field(-1).Kind() != KindNil {
		t.Error("negative field should be nil value")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := Tuple{
		Stream: 7,
		ID:     0xDEADBEEF,
		Root:   0xCAFE,
		Values: []Value{
			Int(-1), Float(math.Pi), Bool(true), Bool(false),
			String("word"), Bytes([]byte{0, 255, 128}), Nil(),
		},
	}
	enc := Encode(in)
	if len(enc) != EncodedSize(in) {
		t.Fatalf("EncodedSize = %d, actual %d", EncodedSize(in), len(enc))
	}
	out, n, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if n != len(enc) {
		t.Fatalf("Decode consumed %d of %d bytes", n, len(enc))
	}
	if !in.Equal(out) {
		t.Fatalf("round trip mismatch:\n in=%v\nout=%v", in, out)
	}
}

func TestDecodeTruncated(t *testing.T) {
	in := New(String("hello world"), Int(5))
	enc := Encode(in)
	for i := 0; i < len(enc); i++ {
		if _, _, err := Decode(enc[:i]); err == nil {
			t.Fatalf("Decode of %d/%d bytes should fail", i, len(enc))
		}
	}
}

func TestDecodeBadKind(t *testing.T) {
	in := New(Int(1))
	enc := Encode(in)
	enc[20] = 0x7F // corrupt the kind tag of the first value
	if _, _, err := Decode(enc); err != ErrBadKind {
		t.Fatalf("err = %v, want ErrBadKind", err)
	}
}

func TestDecodeConsumesExactly(t *testing.T) {
	a := New(Int(1), String("x"))
	b := OnStream(3, Float(2.5))
	buf := AppendEncode(Encode(a), b)
	outA, n, err := Decode(buf)
	if err != nil || !outA.Equal(a) {
		t.Fatalf("first decode: %v %v", outA, err)
	}
	outB, m, err := Decode(buf[n:])
	if err != nil || !outB.Equal(b) {
		t.Fatalf("second decode: %v %v", outB, err)
	}
	if n+m != len(buf) {
		t.Fatalf("consumed %d, want %d", n+m, len(buf))
	}
}

// genTuple builds a random but valid tuple for property tests.
func genTuple(r *rand.Rand) Tuple {
	n := r.Intn(8)
	tp := Tuple{Stream: StreamID(r.Intn(1 << 16)), ID: r.Uint64(), Root: r.Uint64()}
	for i := 0; i < n; i++ {
		switch r.Intn(6) {
		case 0:
			tp.Values = append(tp.Values, Int(r.Int63()-r.Int63()))
		case 1:
			tp.Values = append(tp.Values, Float(r.NormFloat64()))
		case 2:
			tp.Values = append(tp.Values, Bool(r.Intn(2) == 0))
		case 3:
			b := make([]byte, r.Intn(64))
			r.Read(b)
			tp.Values = append(tp.Values, String(string(b)))
		case 4:
			b := make([]byte, r.Intn(64))
			r.Read(b)
			tp.Values = append(tp.Values, Bytes(b))
		case 5:
			tp.Values = append(tp.Values, Nil())
		}
	}
	return tp
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := genTuple(r)
		out, n, err := Decode(Encode(in))
		return err == nil && n == EncodedSize(in) && in.Equal(out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyHashDeterministic(t *testing.T) {
	f := func(seed int64, rawFields []uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tp := genTuple(r)
		fields := make([]int, len(rawFields))
		for i, f := range rawFields {
			fields[i] = int(f % 10)
		}
		return HashFields(tp, fields) == HashFields(tp, fields)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHashFieldsSelectivity(t *testing.T) {
	a := New(String("apple"), Int(1))
	b := New(String("apple"), Int(2))
	c := New(String("banana"), Int(1))
	if HashFields(a, []int{0}) != HashFields(b, []int{0}) {
		t.Error("hash over field 0 should ignore field 1")
	}
	if HashFields(a, []int{0}) == HashFields(c, []int{0}) {
		t.Error("different keys should (overwhelmingly) hash differently")
	}
	// Hashing over both fields distinguishes a and b.
	if HashFields(a, []int{0, 1}) == HashFields(b, []int{0, 1}) {
		t.Error("hash over both fields should differ")
	}
}

func TestStreamPredicates(t *testing.T) {
	if !ControlStream.IsControl() || DefaultStream.IsControl() {
		t.Error("IsControl wrong")
	}
	if !SignalStream.IsSignal() || ControlStream.IsSignal() {
		t.Error("IsSignal wrong")
	}
}

func TestTupleStringRendering(t *testing.T) {
	s := New(Int(1), String("a")).String()
	if s == "" || !reflect.DeepEqual(s, s) {
		t.Error("String should render")
	}
	for _, v := range []Value{Int(1), Float(1), Bool(true), String("x"), Bytes(nil), Nil(), {kind: 99}} {
		if v.String() == "" {
			t.Errorf("empty String() for %v", v.Kind())
		}
	}
}

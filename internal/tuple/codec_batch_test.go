package tuple

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// encodeRun builds the multi-tuple frame payload layout: a run of
// uint32-length-prefixed encoded tuples.
func encodeRun(tuples ...Tuple) []byte {
	var run []byte
	for _, t := range tuples {
		enc := Encode(t)
		run = binary.LittleEndian.AppendUint32(run, uint32(len(enc)))
		run = append(run, enc...)
	}
	return run
}

func sampleTuples() []Tuple {
	return []Tuple{
		New(String("the quick brown fox"), Int(42), Float(3.14)),
		OnStream(7, Bool(true), Nil(), Bytes([]byte{0xde, 0xad, 0xbe, 0xef})),
		{Stream: 3, ID: 99, Root: 7, Values: []Value{String(""), Int(-1)}},
		New(), // zero-field tuple
		New(String(strings.Repeat("x", 5000))),
	}
}

func TestDecodeIntoMatchesDecode(t *testing.T) {
	var a Arena
	for i, in := range sampleTuples() {
		enc := Encode(in)
		want, wn, err := Decode(enc)
		if err != nil {
			t.Fatalf("tuple %d: Decode: %v", i, err)
		}
		got, gn, err := DecodeInto(enc, &a)
		if err != nil {
			t.Fatalf("tuple %d: DecodeInto: %v", i, err)
		}
		if gn != wn {
			t.Fatalf("tuple %d: consumed %d bytes, Decode consumed %d", i, gn, wn)
		}
		if !got.Equal(want) || !got.Equal(in) {
			t.Fatalf("tuple %d: DecodeInto = %v, want %v", i, got, in)
		}
	}
}

func TestDecodeBatchRoundTrip(t *testing.T) {
	var a Arena
	in := sampleTuples()
	out, err := DecodeBatch(encodeRun(in...), nil, &a)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d tuples, want %d", len(out), len(in))
	}
	for i := range in {
		if !out[i].Equal(in[i]) {
			t.Fatalf("tuple %d: got %v, want %v", i, out[i], in[i])
		}
	}
}

func TestDecodeBatchZeroTuples(t *testing.T) {
	var a Arena
	out, err := DecodeBatch(nil, nil, &a)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty run: got %d tuples, err %v; want 0, nil", len(out), err)
	}
}

func TestDecodeBatchReusesDst(t *testing.T) {
	var a Arena
	dst := make([]Tuple, 0, 16)
	out, err := DecodeBatch(encodeRun(New(Int(1)), New(Int(2))), dst, &a)
	if err != nil {
		t.Fatal(err)
	}
	if &out[0] != &dst[:1][0] {
		t.Fatal("DecodeBatch did not append into the caller's slice")
	}
}

// TestDecodeBatchTruncated covers a batch cut off mid-tuple at every
// possible byte boundary: each prefix must fail cleanly (never panic, never
// fabricate values) while tuples wholly before the cut still decode.
func TestDecodeBatchTruncated(t *testing.T) {
	full := encodeRun(New(String("alpha"), Int(1)), New(String("beta"), Int(2)))
	for cut := 0; cut < len(full); cut++ {
		var a Arena
		out, err := DecodeBatch(full[:cut], nil, &a)
		if cut == 0 {
			if err != nil || len(out) != 0 {
				t.Fatalf("cut=0: got %d tuples, err %v", len(out), err)
			}
			continue
		}
		if err == nil {
			// Only legal if the cut landed exactly on a record boundary.
			first := 4 + int(binary.LittleEndian.Uint32(full))
			if cut != first {
				t.Fatalf("cut=%d: expected error, got %d tuples", cut, len(out))
			}
			continue
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadKind) {
			t.Fatalf("cut=%d: unexpected error %v", cut, err)
		}
	}
}

func TestDecodeBatchLengthMismatch(t *testing.T) {
	enc := Encode(New(Int(7)))
	// A record whose prefix claims one extra byte beyond the tuple.
	run := binary.LittleEndian.AppendUint32(nil, uint32(len(enc)+1))
	run = append(run, enc...)
	run = append(run, 0xEE)
	var a Arena
	if _, err := DecodeBatch(run, nil, &a); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("got %v, want ErrLengthMismatch", err)
	}
}

// TestDecodeIntoBogusValueCount pins the slab-reservation cap: a header
// claiming 65535 values over a tiny buffer must fail with ErrTruncated
// without reserving a 64Ki-value slab first.
func TestDecodeIntoBogusValueCount(t *testing.T) {
	enc := Encode(New(Int(1)))
	binary.LittleEndian.PutUint16(enc[18:], 0xFFFF)
	var a Arena
	if _, _, err := DecodeInto(enc, &a); !errors.Is(err, ErrTruncated) {
		t.Fatalf("got %v, want ErrTruncated", err)
	}
	if cap(a.vals) > arenaValueSlab {
		t.Fatalf("arena grew a %d-value slab for a %d-byte buffer", cap(a.vals), len(enc))
	}
}

// TestArenaOwnershipTransfer is the retention-safety contract: tuples
// decoded through a shared arena stay intact forever, even as the arena
// moves on to new chunks and the decode buffer is rewritten — their strings
// are usable as long-lived map keys exactly like Decode's.
func TestArenaOwnershipTransfer(t *testing.T) {
	var a Arena
	counts := make(map[string]int)
	var kept []Tuple
	buf := make([]byte, 0, 256)
	for i := 0; i < 10_000; i++ {
		in := New(String(fmt.Sprintf("key-%04d", i%257)), Int(int64(i)), Bytes([]byte{byte(i)}))
		buf = AppendEncode(buf[:0], in)
		got, _, err := DecodeInto(buf, &a)
		if err != nil {
			t.Fatal(err)
		}
		counts[got.Field(0).AsString()]++
		if i%100 == 0 {
			kept = append(kept, got)
		}
		// Scribble over the decode buffer: arena copies must not alias it.
		for j := range buf {
			buf[j] = 0xAA
		}
	}
	if len(counts) != 257 {
		t.Fatalf("map holds %d keys, want 257", len(counts))
	}
	for i, k := range kept {
		n := i * 100
		wantKey := fmt.Sprintf("key-%04d", n%257)
		if k.Field(0).AsString() != wantKey || k.Field(1).AsInt() != int64(n) {
			t.Fatalf("retained tuple %d corrupted: %v", i, k)
		}
		if !bytes.Equal(k.Field(2).AsBytes(), []byte{byte(n)}) {
			t.Fatalf("retained tuple %d bytes corrupted: %v", i, k)
		}
	}
}

// TestDecodeIntoAmortizedAllocs pins the tentpole property: decoding
// through an arena costs ~0 allocations per tuple (one chunk per few
// thousand tuples), versus 2 for the stock Decode.
func TestDecodeIntoAmortizedAllocs(t *testing.T) {
	var a Arena
	enc := Encode(New(String("the quick brown fox"), Int(42), Float(3.14)))
	allocs := testing.AllocsPerRun(10_000, func() {
		if _, _, err := DecodeInto(enc, &a); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0.05 {
		t.Fatalf("DecodeInto allocates %.3f/op amortized, want ~0", allocs)
	}
}

// FuzzDecodeBatch cross-checks the batch decoder against the stock
// per-tuple decoder and pins the canonical round trip: whatever a run
// decodes to must re-encode and decode back to equal tuples.
func FuzzDecodeBatch(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeRun(sampleTuples()...))
	f.Add(encodeRun(New(Int(1))))
	f.Add([]byte{3, 0, 0, 0, 1, 2})       // truncated record
	f.Add([]byte{0, 0, 0, 0})             // zero-length record
	f.Add(append(encodeRun(New()), 9, 9)) // trailing garbage
	f.Fuzz(func(t *testing.T, run []byte) {
		var a Arena
		got, err := DecodeBatch(run, nil, &a)

		// Reference walk: the same framing loop over the stock decoder.
		var want []Tuple
		var wantErr error
		rest := run
		for len(rest) > 0 {
			if len(rest) < 4 {
				wantErr = ErrTruncated
				break
			}
			n := int(binary.LittleEndian.Uint32(rest))
			rest = rest[4:]
			if n > len(rest) {
				wantErr = ErrTruncated
				break
			}
			tp, used, derr := Decode(rest[:n])
			if derr != nil {
				wantErr = derr
				break
			}
			if used != n {
				wantErr = ErrLengthMismatch
				break
			}
			want = append(want, tp)
			rest = rest[n:]
		}
		if (err == nil) != (wantErr == nil) {
			t.Fatalf("DecodeBatch err %v, reference err %v", err, wantErr)
		}
		if len(got) != len(want) {
			t.Fatalf("DecodeBatch yielded %d tuples, reference %d", len(got), len(want))
		}
		for i := range want {
			if !got[i].Equal(want[i]) {
				t.Fatalf("tuple %d: batch %v, reference %v", i, got[i], want[i])
			}
		}
		if err != nil {
			return
		}
		// Canonical round trip over the successful decode.
		var b Arena
		again, err := DecodeBatch(encodeRun(got...), nil, &b)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		if len(again) != len(got) {
			t.Fatalf("canonical round trip yielded %d tuples, want %d", len(again), len(got))
		}
		for i := range got {
			if !again[i].Equal(got[i]) {
				t.Fatalf("tuple %d not canonical: %v vs %v", i, again[i], got[i])
			}
		}
	})
}

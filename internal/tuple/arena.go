package tuple

import "unsafe"

// Arena is a bump allocator backing the zero-alloc decode path
// (DecodeInto/DecodeBatch). Decoding a tuple needs two kinds of memory —
// a []Value slice for its fields and byte storage for string/bytes
// payloads — and the stock Decode pays one heap allocation for each.
// The arena hands both out of large pre-allocated blocks instead, so a
// receive loop decoding millions of tuples amortizes its allocations
// down to one block every few thousand tuples.
//
// Ownership of every handed-out region transfers to the decoded tuple:
// the arena never recycles or rewrites memory it has given away, it only
// drops its reference and lets the GC reclaim the block when the tuples
// referencing it die. That makes arena-decoded tuples indistinguishable
// from Decode's — safe to retain forever, use as map keys, or hand to
// other goroutines — which matters because downstream components do all
// three (a keyed bolt's state map keeps field strings alive
// indefinitely). The cost is proportional only to live tuples, exactly
// like individual allocations, minus the per-tuple overhead.
//
// An Arena is not safe for concurrent use; each receive loop owns one.
// The zero value is ready to use.
type Arena struct {
	bytes []byte
	vals  []Value
}

// Block sizing: chunks big enough to amortize allocation over thousands
// of small tuples, small enough that a dying batch doesn't pin megabytes.
const (
	arenaByteChunk = 16 << 10
	arenaValueSlab = 1 << 10
)

// grabBytes returns a fresh, zeroed, exactly-n-byte slice carved from the
// arena. The caller owns it; the arena will never touch those bytes again.
func (a *Arena) grabBytes(n int) []byte {
	if n > len(a.bytes) {
		c := arenaByteChunk
		if n > c {
			c = n
		}
		a.bytes = make([]byte, c)
	}
	b := a.bytes[:n:n]
	a.bytes = a.bytes[n:]
	return b
}

// grabValues returns an empty Value slice with capacity n carved from the
// arena. The full-slice expression caps it so an append past n can never
// step on a later grab.
func (a *Arena) grabValues(n int) []Value {
	if n > len(a.vals) {
		c := arenaValueSlab
		if n > c {
			c = n
		}
		a.vals = make([]Value, c)
	}
	v := a.vals[:0:n]
	a.vals = a.vals[n:]
	return v
}

// internBytes copies src into arena storage and returns the copy.
func (a *Arena) internBytes(src []byte) []byte {
	b := a.grabBytes(len(src))
	copy(b, src)
	return b
}

// internString copies src into arena storage and returns it as a string
// without a second allocation. This is the strings.Builder technique: the
// backing bytes are written exactly once (by the copy here) and the arena
// has relinquished them, so the string is as immutable as any other.
func (a *Arena) internString(src []byte) string {
	if len(src) == 0 {
		return ""
	}
	b := a.internBytes(src)
	return unsafe.String(&b[0], len(b))
}

// Package tuple defines the data model that flows through a Typhoon
// topology: dynamically typed tuples, stream identifiers, and a compact
// binary codec used by both the Typhoon data plane and the Storm-style
// baseline transport.
//
// A Tuple is an ordered list of Values plus the identifier of the stream it
// belongs to. Serialization cost is deliberately proportional to payload
// size: the paper's broadcast results (Fig 9) hinge on the baseline paying
// one serialization per destination while Typhoon pays exactly one.
package tuple

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// StreamID identifies a logical stream within a topology. Application
// streams use small values; the control plane reserves ControlStream.
type StreamID uint16

const (
	// DefaultStream is the stream used by components that do not declare
	// named output streams.
	DefaultStream StreamID = 0
	// SignalStream carries flush signals consumed by stateful workers.
	SignalStream StreamID = 0xFFFE
	// AckStream carries XOR acknowledgement tuples to acker workers when
	// guaranteed processing is enabled (§6.1 "tuple forwarding with
	// reliability guarantee").
	AckStream StreamID = 0xFFFD
	// CompleteStream carries tuple-tree completion notifications from
	// ackers back to the originating source workers.
	CompleteStream StreamID = 0xFFFC
	// ControlStream is the dedicated stream ID for control tuples injected
	// by the SDN controller (see Table 2 of the paper).
	ControlStream StreamID = 0xFFFF
)

// IsControl reports whether the stream carries control tuples.
func (s StreamID) IsControl() bool { return s == ControlStream }

// IsSignal reports whether the stream carries flush signals.
func (s StreamID) IsSignal() bool { return s == SignalStream }

// Kind enumerates the dynamic types a Value may hold.
type Kind uint8

// Value kinds understood by the codec.
const (
	KindNil Kind = iota
	KindInt64
	KindFloat64
	KindBool
	KindString
	KindBytes
)

func (k Kind) String() string {
	switch k {
	case KindNil:
		return "nil"
	case KindInt64:
		return "int64"
	case KindFloat64:
		return "float64"
	case KindBool:
		return "bool"
	case KindString:
		return "string"
	case KindBytes:
		return "bytes"
	default:
		return "kind(" + strconv.Itoa(int(k)) + ")"
	}
}

// Value is a single dynamically typed field of a Tuple.
type Value struct {
	kind Kind
	num  uint64 // int64 bits, float64 bits, or bool
	str  string // string payload
	raw  []byte // bytes payload
}

// Int returns a Value holding an int64.
func Int(v int64) Value { return Value{kind: KindInt64, num: uint64(v)} }

// Float returns a Value holding a float64.
func Float(v float64) Value { return Value{kind: KindFloat64, num: math.Float64bits(v)} }

// Bool returns a Value holding a bool.
func Bool(v bool) Value {
	var n uint64
	if v {
		n = 1
	}
	return Value{kind: KindBool, num: n}
}

// String returns a Value holding a string.
func String(v string) Value { return Value{kind: KindString, str: v} }

// Bytes returns a Value holding a byte slice. The slice is not copied.
func Bytes(v []byte) Value { return Value{kind: KindBytes, raw: v} }

// Nil returns the nil Value.
func Nil() Value { return Value{kind: KindNil} }

// Kind reports the dynamic type of the value.
func (v Value) Kind() Kind { return v.kind }

// AsInt returns the int64 payload; it is 0 for non-integer values.
func (v Value) AsInt() int64 { return int64(v.num) }

// AsFloat returns the float64 payload; it is 0 for non-float values.
func (v Value) AsFloat() float64 { return math.Float64frombits(v.num) }

// AsBool returns the bool payload; it is false for non-bool values.
func (v Value) AsBool() bool { return v.num != 0 }

// AsString returns the string payload; it is "" for non-string values.
func (v Value) AsString() string { return v.str }

// AsBytes returns the bytes payload; it is nil for non-bytes values.
func (v Value) AsBytes() []byte { return v.raw }

// Equal reports deep equality of two values.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindNil:
		return true
	case KindString:
		return v.str == o.str
	case KindBytes:
		return string(v.raw) == string(o.raw)
	default:
		return v.num == o.num
	}
}

// GoString renders the value for debugging.
func (v Value) GoString() string { return v.String() }

func (v Value) String() string {
	switch v.kind {
	case KindNil:
		return "nil"
	case KindInt64:
		return strconv.FormatInt(v.AsInt(), 10)
	case KindFloat64:
		return strconv.FormatFloat(v.AsFloat(), 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.AsBool())
	case KindString:
		return strconv.Quote(v.str)
	case KindBytes:
		return fmt.Sprintf("bytes[%d]", len(v.raw))
	default:
		return "invalid"
	}
}

// encodedSize returns the number of bytes Value occupies on the wire,
// excluding the 1-byte kind tag.
func (v Value) encodedSize() int {
	switch v.kind {
	case KindNil:
		return 0
	case KindBool:
		return 1
	case KindInt64, KindFloat64:
		return 8
	case KindString:
		return 4 + len(v.str)
	case KindBytes:
		return 4 + len(v.raw)
	default:
		return 0
	}
}

// Tuple is an ordered collection of values travelling on a stream.
// The zero Tuple is an empty tuple on DefaultStream.
type Tuple struct {
	// Stream identifies which logical stream the tuple belongs to.
	Stream StreamID
	// ID is the framework-assigned edge identifier of this tuple used by
	// guaranteed processing (each hop XORs the IDs of consumed and emitted
	// tuples). Zero means untracked.
	ID uint64
	// Root is the identifier of the spout tuple this tuple descends from;
	// acking completes when the XOR of all edge IDs under a root reaches
	// zero. Zero means untracked.
	Root uint64
	// Values are the tuple's fields.
	Values []Value
}

// New builds a Tuple on the default stream from the given values.
func New(values ...Value) Tuple { return Tuple{Stream: DefaultStream, Values: values} }

// OnStream builds a Tuple on the given stream.
func OnStream(s StreamID, values ...Value) Tuple { return Tuple{Stream: s, Values: values} }

// Len returns the number of fields.
func (t Tuple) Len() int { return len(t.Values) }

// Field returns field i, or the nil Value when out of range.
func (t Tuple) Field(i int) Value {
	if i < 0 || i >= len(t.Values) {
		return Nil()
	}
	return t.Values[i]
}

// Equal reports deep equality of two tuples (stream, ID and all fields).
func (t Tuple) Equal(o Tuple) bool {
	if t.Stream != o.Stream || t.ID != o.ID || t.Root != o.Root || len(t.Values) != len(o.Values) {
		return false
	}
	for i := range t.Values {
		if !t.Values[i].Equal(o.Values[i]) {
			return false
		}
	}
	return true
}

// String renders the tuple for logs and debugging.
func (t Tuple) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tuple{stream=%d id=%d [", t.Stream, t.ID)
	for i, v := range t.Values {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(v.String())
	}
	b.WriteString("]}")
	return b.String()
}

// ErrTruncated is returned when decoding runs out of bytes.
var ErrTruncated = errors.New("tuple: truncated encoding")

// ErrBadKind is returned when decoding meets an unknown value kind.
var ErrBadKind = errors.New("tuple: unknown value kind")

// ErrLengthMismatch is returned by DecodeBatch when a record's length
// prefix disagrees with the size of the tuple encoded inside it.
var ErrLengthMismatch = errors.New("tuple: batch record length mismatch")

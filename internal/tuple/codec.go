package tuple

import (
	"encoding/binary"
	"hash/fnv"
)

// Wire layout of an encoded tuple (little endian):
//
//	stream   uint16
//	id       uint64
//	root     uint64
//	nvalues  uint16
//	values   nvalues × (kind uint8, payload)
//
// String/bytes payloads are length-prefixed with uint32. The layout mirrors
// the "tuple length / stream ID / list of objects" format of Fig 5; the
// per-tuple length prefix itself is added by the packetizer (or by the
// baseline transport), not here, because the two transports frame tuples
// differently.

// EncodedSize returns the exact number of bytes Encode will produce.
func EncodedSize(t Tuple) int {
	n := 2 + 8 + 8 + 2
	for _, v := range t.Values {
		n += 1 + v.encodedSize()
	}
	return n
}

// AppendEncode appends the binary encoding of t to dst and returns the
// extended slice. It performs real byte-level work proportional to the
// payload size, which is what makes per-destination serialization in the
// baseline measurably expensive.
func AppendEncode(dst []byte, t Tuple) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(t.Stream))
	dst = binary.LittleEndian.AppendUint64(dst, t.ID)
	dst = binary.LittleEndian.AppendUint64(dst, t.Root)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(t.Values)))
	for _, v := range t.Values {
		dst = append(dst, byte(v.kind))
		switch v.kind {
		case KindNil:
		case KindBool:
			if v.num != 0 {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
			}
		case KindInt64, KindFloat64:
			dst = binary.LittleEndian.AppendUint64(dst, v.num)
		case KindString:
			dst = binary.LittleEndian.AppendUint32(dst, uint32(len(v.str)))
			dst = append(dst, v.str...)
		case KindBytes:
			dst = binary.LittleEndian.AppendUint32(dst, uint32(len(v.raw)))
			dst = append(dst, v.raw...)
		}
	}
	return dst
}

// Encode returns the binary encoding of t in a fresh slice.
func Encode(t Tuple) []byte {
	return AppendEncode(make([]byte, 0, EncodedSize(t)), t)
}

// Decode parses one tuple from the front of buf and returns it together
// with the number of bytes consumed.
func Decode(buf []byte) (Tuple, int, error) {
	if len(buf) < 20 {
		return Tuple{}, 0, ErrTruncated
	}
	t := Tuple{
		Stream: StreamID(binary.LittleEndian.Uint16(buf)),
		ID:     binary.LittleEndian.Uint64(buf[2:]),
		Root:   binary.LittleEndian.Uint64(buf[10:]),
	}
	n := int(binary.LittleEndian.Uint16(buf[18:]))
	off := 20
	if n > 0 {
		t.Values = make([]Value, 0, n)
	}
	for i := 0; i < n; i++ {
		if off >= len(buf) {
			return Tuple{}, 0, ErrTruncated
		}
		kind := Kind(buf[off])
		off++
		switch kind {
		case KindNil:
			t.Values = append(t.Values, Nil())
		case KindBool:
			if off+1 > len(buf) {
				return Tuple{}, 0, ErrTruncated
			}
			t.Values = append(t.Values, Bool(buf[off] != 0))
			off++
		case KindInt64:
			if off+8 > len(buf) {
				return Tuple{}, 0, ErrTruncated
			}
			t.Values = append(t.Values, Int(int64(binary.LittleEndian.Uint64(buf[off:]))))
			off += 8
		case KindFloat64:
			if off+8 > len(buf) {
				return Tuple{}, 0, ErrTruncated
			}
			t.Values = append(t.Values, Value{kind: KindFloat64, num: binary.LittleEndian.Uint64(buf[off:])})
			off += 8
		case KindString:
			s, m, err := decodeBlob(buf[off:])
			if err != nil {
				return Tuple{}, 0, err
			}
			t.Values = append(t.Values, String(string(s)))
			off += m
		case KindBytes:
			s, m, err := decodeBlob(buf[off:])
			if err != nil {
				return Tuple{}, 0, err
			}
			b := make([]byte, len(s))
			copy(b, s)
			t.Values = append(t.Values, Bytes(b))
			off += m
		default:
			return Tuple{}, 0, ErrBadKind
		}
	}
	return t, off, nil
}

// DecodeInto parses one tuple from the front of buf like Decode, but draws
// the tuple's Values slice and string/bytes storage from the caller's arena
// instead of the heap. Payload bytes are copied out of buf exactly once, so
// buf may be recycled as soon as the call returns; the decoded tuple itself
// is safe to retain indefinitely (see Arena's ownership-transfer contract).
// This is the receive-path fast decode: ~0 allocations per tuple amortized.
func DecodeInto(buf []byte, a *Arena) (Tuple, int, error) {
	if len(buf) < 20 {
		return Tuple{}, 0, ErrTruncated
	}
	t := Tuple{
		Stream: StreamID(binary.LittleEndian.Uint16(buf)),
		ID:     binary.LittleEndian.Uint64(buf[2:]),
		Root:   binary.LittleEndian.Uint64(buf[10:]),
	}
	n := int(binary.LittleEndian.Uint16(buf[18:]))
	off := 20
	if n > 0 {
		// Cap the slab grab by what the buffer could possibly hold (each
		// value needs at least its kind byte), so a corrupt count cannot
		// reserve 64 Ki values against a 30-byte frame.
		reserve := n
		if max := len(buf) - off; reserve > max {
			reserve = max
		}
		t.Values = a.grabValues(reserve)
	}
	for i := 0; i < n; i++ {
		if off >= len(buf) {
			return Tuple{}, 0, ErrTruncated
		}
		kind := Kind(buf[off])
		off++
		switch kind {
		case KindNil:
			t.Values = append(t.Values, Nil())
		case KindBool:
			if off+1 > len(buf) {
				return Tuple{}, 0, ErrTruncated
			}
			t.Values = append(t.Values, Bool(buf[off] != 0))
			off++
		case KindInt64:
			if off+8 > len(buf) {
				return Tuple{}, 0, ErrTruncated
			}
			t.Values = append(t.Values, Int(int64(binary.LittleEndian.Uint64(buf[off:]))))
			off += 8
		case KindFloat64:
			if off+8 > len(buf) {
				return Tuple{}, 0, ErrTruncated
			}
			t.Values = append(t.Values, Value{kind: KindFloat64, num: binary.LittleEndian.Uint64(buf[off:])})
			off += 8
		case KindString:
			s, m, err := decodeBlob(buf[off:])
			if err != nil {
				return Tuple{}, 0, err
			}
			t.Values = append(t.Values, Value{kind: KindString, str: a.internString(s)})
			off += m
		case KindBytes:
			s, m, err := decodeBlob(buf[off:])
			if err != nil {
				return Tuple{}, 0, err
			}
			t.Values = append(t.Values, Value{kind: KindBytes, raw: a.internBytes(s)})
			off += m
		default:
			return Tuple{}, 0, ErrBadKind
		}
	}
	return t, off, nil
}

// DecodeBatch parses a run of uint32-length-prefixed encoded tuples — the
// payload layout of a multi-tuple data frame — appending the decoded tuples
// to dst (reusing its capacity) and drawing all per-tuple storage from the
// arena. On error the tuples decoded before the corrupt record are returned
// alongside it. An empty run decodes to zero tuples.
func DecodeBatch(run []byte, dst []Tuple, a *Arena) ([]Tuple, error) {
	for len(run) > 0 {
		if len(run) < 4 {
			return dst, ErrTruncated
		}
		n := int(binary.LittleEndian.Uint32(run))
		run = run[4:]
		if n > len(run) {
			return dst, ErrTruncated
		}
		t, used, err := DecodeInto(run[:n], a)
		if err != nil {
			return dst, err
		}
		if used != n {
			return dst, ErrLengthMismatch
		}
		dst = append(dst, t)
		run = run[n:]
	}
	return dst, nil
}

func decodeBlob(buf []byte) ([]byte, int, error) {
	if len(buf) < 4 {
		return nil, 0, ErrTruncated
	}
	n := int(binary.LittleEndian.Uint32(buf))
	if len(buf) < 4+n {
		return nil, 0, ErrTruncated
	}
	return buf[4 : 4+n], 4 + n, nil
}

// HashFields computes a stable non-cryptographic hash over the selected
// field indices, used by key-based (fields) routing. Out-of-range indices
// hash as the nil value, matching the behaviour of hashing a missing key.
func HashFields(t Tuple, fields []int) uint64 {
	h := fnv.New64a()
	var scratch [8]byte
	for _, idx := range fields {
		v := t.Field(idx)
		scratch[0] = byte(v.kind)
		_, _ = h.Write(scratch[:1])
		switch v.kind {
		case KindString:
			_, _ = h.Write([]byte(v.str))
		case KindBytes:
			_, _ = h.Write(v.raw)
		default:
			binary.LittleEndian.PutUint64(scratch[:], v.num)
			_, _ = h.Write(scratch[:])
		}
	}
	return h.Sum64()
}

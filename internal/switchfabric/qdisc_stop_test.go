package switchfabric

import (
	"testing"
	"time"

	"typhoon/internal/ring"
)

// TestTunnelPortReadBatchUnblocksAfterStop reproduces the tunnel-egress
// shutdown path: a consumer loops on ReadBatch against a backlogged,
// QoS-enabled tunnel port while the switch stops underneath it. The loop
// must observe ring.ErrClosed after draining — a consumer stuck cycling on
// timeouts deadlocks tunnelEndpoint.close's WaitGroup.
func TestTunnelPortReadBatchUnblocksAfterStop(t *testing.T) {
	sw := New("host-stop", 1, Options{
		RingCapacity:     1024,
		IdleScanInterval: 10 * time.Millisecond,
		EgressQueues: []QueueClass{
			{Name: "guaranteed", Weight: 4},
			{Name: "best-effort", Weight: 1},
		},
	})
	sw.SetController(&recordingSink{})
	sw.Start()
	p, err := sw.AddTunnelPort("tun0")
	if err != nil {
		t.Fatal(err)
	}
	// Backlog the best-effort class directly, as a flood would.
	for i := 0; i < 900; i++ {
		p.qd.enqueue(1, make([]byte, 512))
	}

	done := make(chan error, 1)
	go func() {
		drained := 0
		for {
			batch, err := p.ReadBatch(nil, 64, 500*time.Millisecond)
			drained += len(batch)
			if err != nil {
				t.Logf("consumer exited after draining %d frames: %v", drained, err)
				done <- err
				return
			}
		}
	}()

	time.Sleep(50 * time.Millisecond)
	sw.Stop()

	select {
	case err := <-done:
		if err != ring.ErrClosed {
			t.Fatalf("consumer exited with %v, want ring.ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ReadBatch consumer still running 5s after Switch.Stop")
	}
}

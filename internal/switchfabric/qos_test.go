package switchfabric

import (
	"strings"
	"testing"
	"time"

	"typhoon/internal/openflow"
	"typhoon/internal/packet"
)

func meteredRule(in uint32, src, dst packet.Addr, outPort, meterID uint32) openflow.FlowMod {
	fm := unicastRule(in, src, dst, outPort)
	fm.Meter = meterID
	return fm
}

func TestMeterPolicesTraffic(t *testing.T) {
	sw, _ := newTestSwitch(t)
	a1, a2 := packet.WorkerAddr(1, 1), packet.WorkerAddr(1, 2)
	p1, _ := sw.AddPort("w1", a1)
	p2, _ := sw.AddPort("w2", a2)

	// 1 KB/s with a 100-byte bucket: the first small frame passes, the
	// burst behind it is dropped (coarse-clock refill cannot keep up).
	if err := sw.ApplyMeterMod(openflow.MeterMod{
		Command: openflow.MeterAdd, MeterID: 7, RateBps: 1000, BurstBytes: 100,
	}); err != nil {
		t.Fatal(err)
	}
	if err := sw.ApplyFlowMod(meteredRule(p1.No(), a1, a2, p2.No(), 7)); err != nil {
		t.Fatal(err)
	}
	const total = 50
	for i := 0; i < total; i++ {
		for !p1.WriteFrame(frameFor(a2, a1, "metered-payload")) {
			time.Sleep(time.Millisecond)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for sw.MeterDrops() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if sw.MeterDrops() == 0 {
		t.Fatal("meter never dropped a frame")
	}
	if got := mustRead(t, p2); got == nil {
		t.Fatal("conformant head of the burst should pass")
	}
	c := sw.CountersSnapshot()
	if c.MeterDrops == 0 {
		t.Fatal("counters missing meter drops")
	}
	infos := sw.MeterStatsSnapshot()
	if len(infos) != 1 || infos[0].ID != 7 || infos[0].Drops == 0 {
		t.Fatalf("meter stats = %+v", infos)
	}
}

func TestMeterRetuneInPlaceKeepsCachesHot(t *testing.T) {
	sw, _ := newTestSwitch(t)
	if err := sw.ApplyMeterMod(openflow.MeterMod{
		Command: openflow.MeterAdd, MeterID: 3, RateBps: 1 << 20,
	}); err != nil {
		t.Fatal(err)
	}
	gen := sw.gen.Load()
	// Identical re-add (reconciliation resends every meter each sync).
	sw.ApplyMeterMod(openflow.MeterMod{Command: openflow.MeterAdd, MeterID: 3, RateBps: 1 << 20})
	// Online rate reassignment by the bandwidth allocator.
	sw.ApplyMeterMod(openflow.MeterMod{Command: openflow.MeterModify, MeterID: 3, RateBps: 2 << 20})
	if sw.gen.Load() != gen {
		t.Fatal("meter retune bumped the flow-cache generation")
	}
	infos := sw.MeterStatsSnapshot()
	if len(infos) != 1 || infos[0].RateBps != 2<<20 {
		t.Fatalf("retune not applied: %+v", infos)
	}
	// Deleting does invalidate (rules referencing it change behavior).
	sw.ApplyMeterMod(openflow.MeterMod{Command: openflow.MeterDelete, MeterID: 3})
	if sw.gen.Load() == gen {
		t.Fatal("meter delete must rebuild the view")
	}
}

func TestUnmeteredRuleWithDanglingMeterPasses(t *testing.T) {
	sw, _ := newTestSwitch(t)
	a1, a2 := packet.WorkerAddr(1, 1), packet.WorkerAddr(1, 2)
	p1, _ := sw.AddPort("w1", a1)
	p2, _ := sw.AddPort("w2", a2)
	// Rule references meter 99 which was never programmed: traffic passes.
	if err := sw.ApplyFlowMod(meteredRule(p1.No(), a1, a2, p2.No(), 99)); err != nil {
		t.Fatal(err)
	}
	p1.WriteFrame(frameFor(a2, a1, "dangling"))
	mustRead(t, p2)
	if sw.MeterDrops() != 0 {
		t.Fatal("dangling meter reference dropped traffic")
	}
}

func TestRuleMeterChangeReplacesRule(t *testing.T) {
	sw, _ := newTestSwitch(t)
	a1, a2 := packet.WorkerAddr(1, 1), packet.WorkerAddr(1, 2)
	p1, _ := sw.AddPort("w1", a1)
	p2, _ := sw.AddPort("w2", a2)
	fm := meteredRule(p1.No(), a1, a2, p2.No(), 1)
	sw.ApplyFlowMod(fm)
	gen := sw.gen.Load()
	sw.ApplyFlowMod(fm) // identical re-add: no-op
	if sw.gen.Load() != gen {
		t.Fatal("identical re-add bumped generation")
	}
	fm.Meter = 2
	sw.ApplyFlowMod(fm) // meter changed: must replace and invalidate
	if sw.gen.Load() == gen {
		t.Fatal("meter change did not invalidate caches")
	}
}

// TestSelectGroupModifyRebuildsSlots is the regression test for the WRR
// bucket-selection precompute: the modify path must rebuild the slot table,
// and the new weights must be honored exactly.
func TestSelectGroupModifyRebuildsSlots(t *testing.T) {
	sw, _ := newTestSwitch(t)
	src := packet.WorkerAddr(1, 1)
	d1, d2 := packet.WorkerAddr(1, 2), packet.WorkerAddr(1, 3)
	p1, _ := sw.AddPort("w1", src)
	q1, _ := sw.AddPort("w2", d1)
	q2, _ := sw.AddPort("w3", d2)
	mod := func(cmd openflow.GroupCommand, w1, w2 uint16) {
		if err := sw.ApplyGroupMod(openflow.GroupMod{
			Command: cmd, GroupID: 1, Type: openflow.GroupSelect,
			Buckets: []openflow.Bucket{
				{Weight: w1, Actions: []openflow.Action{openflow.SetDlDst(d1), openflow.Output(q1.No())}},
				{Weight: w2, Actions: []openflow.Action{openflow.SetDlDst(d2), openflow.Output(q2.No())}},
			},
		}); err != nil {
			t.Fatal(err)
		}
	}
	mod(openflow.GroupAdd, 3, 1)
	sw.ApplyFlowMod(openflow.FlowMod{
		Command:  openflow.FlowAdd,
		Priority: 100,
		Match:    openflow.Match{Fields: openflow.FieldInPort, InPort: p1.No()},
		Actions:  []openflow.Action{openflow.ToGroup(1)},
	})
	run := func(total int) (int, int) {
		for i := 0; i < total; i++ {
			for !p1.WriteFrame(frameFor(packet.Broadcast, src, "lb")) {
				time.Sleep(time.Millisecond)
			}
		}
		count := func(p *Port) int {
			n := 0
			for {
				frames, err := p.ReadBatch(nil, 64, 100*time.Millisecond)
				if err != nil || len(frames) == 0 {
					return n
				}
				n += len(frames)
			}
		}
		return count(q1), count(q2)
	}
	// Totals divide the slot-cycle length evenly so counts are exact, and
	// stay under the 256-frame egress ring so nothing drops pre-drain.
	n1, n2 := run(200)
	if n1 != 150 || n2 != 50 {
		t.Fatalf("initial weights not honored: %d vs %d", n1, n2)
	}
	mod(openflow.GroupModify, 1, 4)
	n1, n2 = run(300)
	if n1 != 60 || n2 != 240 {
		t.Fatalf("modified weights not honored: %d vs %d", n1, n2)
	}
}

// TestSelectGroupHugeWeightsBinarySearch exercises the fallback path for
// groups whose total weight exceeds the slot-table bound.
func TestSelectGroupHugeWeightsBinarySearch(t *testing.T) {
	sw, _ := newTestSwitch(t)
	src := packet.WorkerAddr(1, 1)
	d1, d2 := packet.WorkerAddr(1, 2), packet.WorkerAddr(1, 3)
	p1, _ := sw.AddPort("w1", src)
	q1, _ := sw.AddPort("w2", d1)
	q2, _ := sw.AddPort("w3", d2)
	sw.ApplyGroupMod(openflow.GroupMod{
		Command: openflow.GroupAdd, GroupID: 1, Type: openflow.GroupSelect,
		Buckets: []openflow.Bucket{
			{Weight: 30000, Actions: []openflow.Action{openflow.SetDlDst(d1), openflow.Output(q1.No())}},
			{Weight: 10000, Actions: []openflow.Action{openflow.SetDlDst(d2), openflow.Output(q2.No())}},
		},
	})
	sw.ApplyFlowMod(openflow.FlowMod{
		Command:  openflow.FlowAdd,
		Priority: 100,
		Match:    openflow.Match{Fields: openflow.FieldInPort, InPort: p1.No()},
		Actions:  []openflow.Action{openflow.ToGroup(1)},
	})
	const total = 200
	for i := 0; i < total; i++ {
		for !p1.WriteFrame(frameFor(packet.Broadcast, src, "lb")) {
			time.Sleep(time.Millisecond)
		}
	}
	count := func(p *Port) int {
		n := 0
		for {
			frames, err := p.ReadBatch(nil, 64, 100*time.Millisecond)
			if err != nil || len(frames) == 0 {
				return n
			}
			n += len(frames)
		}
	}
	n1, n2 := count(q1), count(q2)
	if n1+n2 != total {
		t.Fatalf("delivered %d+%d, want %d", n1, n2, total)
	}
	// The first 200 slots of a 40000-slot cycle all land in bucket 0.
	if n2 != 0 || n1 != total {
		t.Fatalf("binary-search selection wrong: %d vs %d", n1, n2)
	}
}

// TestEgressQueuesDRR proves weighted fair queueing on a shared egress
// port: with both classes backlogged, the heavy class drains roughly its
// weight share and the light class is never starved.
func TestEgressQueuesDRR(t *testing.T) {
	sink := &recordingSink{}
	sw := New("host-q", 1, Options{
		RingCapacity:     4096,
		IdleScanInterval: 10 * time.Millisecond,
		EgressQueues: []QueueClass{
			{Name: "guaranteed", Weight: 4},
			{Name: "best-effort", Weight: 1},
		},
	})
	sw.SetController(sink)
	sw.Start()
	t.Cleanup(sw.Stop)

	gold, flood := packet.WorkerAddr(1, 1), packet.WorkerAddr(1, 2)
	dst := packet.WorkerAddr(1, 3)
	pg, _ := sw.AddPort("gold", gold)
	pf, _ := sw.AddPort("flood", flood)
	pd, _ := sw.AddPort("dst", dst)

	classed := func(in uint32, src packet.Addr, class uint32) openflow.FlowMod {
		return openflow.FlowMod{
			Command:  openflow.FlowAdd,
			Priority: 100,
			Match: openflow.Match{
				Fields: openflow.FieldInPort | openflow.FieldDlSrc,
				InPort: in, DlSrc: src,
			},
			Actions: []openflow.Action{openflow.SetQueue(class), openflow.Output(pd.No())},
		}
	}
	sw.ApplyFlowMod(classed(pg.No(), gold, 0))
	sw.ApplyFlowMod(classed(pf.No(), flood, 1))

	payload := strings.Repeat("x", 500)
	const perClass = 200
	for i := 0; i < perClass; i++ {
		for !pg.WriteFrame(frameFor(dst, gold, payload)) {
			time.Sleep(time.Millisecond)
		}
		for !pf.WriteFrame(frameFor(dst, flood, payload)) {
			time.Sleep(time.Millisecond)
		}
	}
	// Wait for the backlog to build in the egress class queues.
	deadline := time.Now().Add(2 * time.Second)
	for pd.QueueLen() < 2*perClass && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if pd.QueueLen() != 2*perClass {
		t.Fatalf("backlog %d, want %d", pd.QueueLen(), 2*perClass)
	}
	qs := pd.QueueStats()
	if len(qs) != 2 || qs[0].Class != "guaranteed" || qs[0].Depth != perClass {
		t.Fatalf("queue stats = %+v", qs)
	}

	// Drain the first 100 frames: DRR at 4:1 should hand the guaranteed
	// class about 80 of them, and must not starve best-effort.
	var goldN, floodN int
	for goldN+floodN < 100 {
		frames, err := pd.ReadBatch(nil, 10, time.Second)
		if err != nil || len(frames) == 0 {
			t.Fatalf("drain stalled at %d+%d (err=%v)", goldN, floodN, err)
		}
		for _, fr := range frames {
			_, src, _ := packet.PeekAddrs(fr)
			switch src {
			case gold:
				goldN++
			case flood:
				floodN++
			}
		}
	}
	if goldN < 2*floodN {
		t.Fatalf("weights not honored in drain order: gold=%d flood=%d", goldN, floodN)
	}
	if floodN == 0 {
		t.Fatal("best-effort class starved")
	}
}

// TestEgressQueueDefaultClassAndClamp: unclassified traffic rides class 0;
// an out-of-range set_queue clamps to the last class instead of dropping.
func TestEgressQueueDefaultClassAndClamp(t *testing.T) {
	sink := &recordingSink{}
	sw := New("host-q2", 1, Options{
		RingCapacity: 256,
		EgressQueues: []QueueClass{{Name: "a", Weight: 2}, {Name: "b", Weight: 1}},
	})
	sw.SetController(sink)
	sw.Start()
	t.Cleanup(sw.Stop)
	a1, a2 := packet.WorkerAddr(1, 1), packet.WorkerAddr(1, 2)
	p1, _ := sw.AddPort("w1", a1)
	p2, _ := sw.AddPort("w2", a2)
	sw.ApplyFlowMod(unicastRule(p1.No(), a1, a2, p2.No())) // no set_queue
	p1.WriteFrame(frameFor(a2, a1, "plain"))
	mustRead(t, p2)
	qs := p2.QueueStats()
	if qs[0].Enqueued != 1 {
		t.Fatalf("unclassified frame not on class 0: %+v", qs)
	}
	fm := unicastRule(p1.No(), a1, a2, p2.No())
	fm.Actions = []openflow.Action{openflow.SetQueue(9), openflow.Output(p2.No())}
	sw.ApplyFlowMod(fm)
	p1.WriteFrame(frameFor(a2, a1, "clamped"))
	mustRead(t, p2)
	qs = p2.QueueStats()
	if qs[1].Enqueued != 1 {
		t.Fatalf("out-of-range class not clamped to last: %+v", qs)
	}
}

// TestDRROversizedBatchFrames pins the deficit accounting for multi-tuple
// batch frames that exceed a class quantum: an 8 KiB frame is four times the
// 2 KiB quantum unit, so a weight-1 class owes several rounds of credit per
// frame. The discipline must still honor the byte-weighted share and must
// never starve a class behind another class's oversized batch frames.
func TestDRROversizedBatchFrames(t *testing.T) {
	// classFrame tags byte 0 with the class so drained frames can be
	// attributed; the rest stands in for packed tuple records.
	classFrame := func(class byte, size int) []byte {
		fr := make([]byte, size)
		fr[0] = class
		return fr
	}

	t.Run("uniform-oversized", func(t *testing.T) {
		q := newQdisc([]QueueClass{{Name: "heavy", Weight: 4}, {Name: "light", Weight: 1}}, 256)
		const perClass = 60
		for i := 0; i < perClass; i++ {
			if !q.enqueue(0, classFrame(0, 8<<10)) || !q.enqueue(1, classFrame(1, 8<<10)) {
				t.Fatal("enqueue refused with ring capacity to spare")
			}
		}
		// Drain 50 frames in small reads: with equal 8 KiB frames the 4:1
		// byte weights become a 4:1 frame split. Both frame sizes exceed the
		// light class's 2 KiB quantum, so it goes several rounds in debt per
		// frame — but must keep earning credit rather than starve.
		var heavyN, lightN int
		for heavyN+lightN < 50 {
			frames, err := q.readBatch(nil, 7, time.Second)
			if err != nil || len(frames) == 0 {
				t.Fatalf("drain stalled at %d+%d (err=%v)", heavyN, lightN, err)
			}
			for _, fr := range frames {
				if fr[0] == 0 {
					heavyN++
				} else {
					lightN++
				}
			}
		}
		if lightN == 0 {
			t.Fatal("light class starved behind oversized batch frames")
		}
		if heavyN < 2*lightN {
			t.Fatalf("weights not honored: heavy=%d light=%d, want ~4:1", heavyN, lightN)
		}
	})

	t.Run("byte-accounted-mixed-sizes", func(t *testing.T) {
		// Heavy sends 8 KiB batch frames, light sends 512 B singles. Byte
		// fairness at 4:1 weights means the FRAME split inverts to ~1:4 —
		// one oversized batch frame buys the other class sixteen small
		// frames of catch-up credit, of which it can spend four per round.
		q := newQdisc([]QueueClass{{Name: "heavy", Weight: 4}, {Name: "light", Weight: 1}}, 1024)
		for i := 0; i < 40; i++ {
			if !q.enqueue(0, classFrame(0, 8<<10)) {
				t.Fatal("heavy enqueue refused")
			}
		}
		for i := 0; i < 640; i++ {
			if !q.enqueue(1, classFrame(1, 512)) {
				t.Fatal("light enqueue refused")
			}
		}
		var heavyN, lightN, heavyBytes, lightBytes int
		for heavyN+lightN < 100 {
			frames, err := q.readBatch(nil, 13, time.Second)
			if err != nil || len(frames) == 0 {
				t.Fatalf("drain stalled at %d+%d (err=%v)", heavyN, lightN, err)
			}
			for _, fr := range frames {
				if fr[0] == 0 {
					heavyN++
					heavyBytes += len(fr)
				} else {
					lightN++
					lightBytes += len(fr)
				}
			}
		}
		if heavyN == 0 || lightN == 0 {
			t.Fatalf("a class starved: heavy=%d light=%d", heavyN, lightN)
		}
		// Byte split should track weights (4:1), not frame counts.
		if heavyBytes < 2*lightBytes {
			t.Fatalf("byte accounting lost: heavy=%dB light=%dB, want ~4:1", heavyBytes, lightBytes)
		}
		if lightN < heavyN {
			t.Fatalf("small frames should outnumber oversized ones: heavy=%d light=%d", heavyN, lightN)
		}
	})
}

package switchfabric

import (
	"encoding/binary"
	"errors"
)

// Tunnel encapsulation: frames leaving through a tunnel port are wrapped
// with the destination host name chosen by the set_tun_dst action, hiding
// the Typhoon frame format from the underlying network exactly as the
// prototype's host-level TCP tunnels do (§3.3.1).
//
// Layout: hostLen(2, big endian) host frame.

// ErrBadEncap is returned for malformed tunnel encapsulation.
var ErrBadEncap = errors.New("switchfabric: malformed tunnel encapsulation")

// EncapTunnel wraps a frame with its tunnel destination host.
func EncapTunnel(host string, frame []byte) []byte {
	out := make([]byte, 0, 2+len(host)+len(frame))
	out = binary.BigEndian.AppendUint16(out, uint16(len(host)))
	out = append(out, host...)
	return append(out, frame...)
}

// DecapTunnel splits an encapsulated frame into destination host and inner
// frame. The returned frame aliases raw.
func DecapTunnel(raw []byte) (host string, frame []byte, err error) {
	if len(raw) < 2 {
		return "", nil, ErrBadEncap
	}
	n := int(binary.BigEndian.Uint16(raw))
	if len(raw) < 2+n {
		return "", nil, ErrBadEncap
	}
	return string(raw[2 : 2+n]), raw[2+n:], nil
}

package switchfabric

import (
	"math/rand"
	"runtime"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"typhoon/internal/openflow"
	"typhoon/internal/packet"
)

func mkMatch(fields openflow.FieldSet, inPort uint32, src, dst uint32, et uint16) openflow.Match {
	return openflow.Match{
		Fields: fields, InPort: inPort,
		DlSrc: packet.WorkerAddr(1, src), DlDst: packet.WorkerAddr(1, dst),
		EtherType: et,
	}
}

func TestSubsumesSemantics(t *testing.T) {
	full := mkMatch(openflow.FieldInPort|openflow.FieldDlSrc|openflow.FieldDlDst|openflow.FieldEtherType,
		1, 10, 20, packet.EtherType)
	byDst := openflow.Match{Fields: openflow.FieldDlDst, DlDst: packet.WorkerAddr(1, 20)}
	if !subsumes(byDst, full) {
		t.Fatal("wildcard-heavy pattern should subsume the specific rule")
	}
	if subsumes(full, byDst) {
		t.Fatal("specific pattern must not subsume a wildcard rule")
	}
	otherDst := openflow.Match{Fields: openflow.FieldDlDst, DlDst: packet.WorkerAddr(1, 99)}
	if subsumes(otherDst, full) {
		t.Fatal("different value must not subsume")
	}
	empty := openflow.Match{}
	if !subsumes(empty, full) || !subsumes(empty, byDst) {
		t.Fatal("empty pattern subsumes everything")
	}
}

func TestPropertySubsumedRuleAlsoCovered(t *testing.T) {
	// Whenever pattern subsumes rule, any frame the rule matches would
	// also match the pattern — the property loose deletion relies on.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		randMatch := func(fields openflow.FieldSet) openflow.Match {
			return mkMatch(fields, r.Uint32()%4, r.Uint32()%4, r.Uint32()%4, uint16(r.Intn(2)))
		}
		pattern := randMatch(openflow.FieldSet(r.Intn(16)))
		rule := randMatch(openflow.FieldSet(r.Intn(16)))
		if !subsumes(pattern, rule) {
			return true // vacuous
		}
		// Sample frames that the rule covers; the pattern must too.
		for i := 0; i < 20; i++ {
			in := r.Uint32() % 4
			src := packet.WorkerAddr(1, r.Uint32()%4)
			dst := packet.WorkerAddr(1, r.Uint32()%4)
			et := uint16(r.Intn(2))
			if rule.Covers(in, src, dst, et) && !pattern.Covers(in, src, dst, et) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFlowTablePriorityStability(t *testing.T) {
	var ft flowTable
	// Two rules with equal priority: first-installed wins ties.
	a := openflow.FlowMod{Priority: 10, Match: openflow.Match{Fields: openflow.FieldInPort, InPort: 1},
		Actions: []openflow.Action{openflow.Output(100)}}
	b := openflow.FlowMod{Priority: 10, Match: openflow.Match{Fields: openflow.FieldEtherType, EtherType: packet.EtherType},
		Actions: []openflow.Action{openflow.Output(200)}}
	ft.add(a)
	ft.add(b)
	r := ft.lookup(1, packet.Addr{}, packet.Addr{}, packet.EtherType)
	if r == nil || r.loadActions()[0].Port != 100 {
		t.Fatal("stable tie-break broken")
	}
}

func TestFlowTableModifyCounts(t *testing.T) {
	var ft flowTable
	ft.add(openflow.FlowMod{Priority: 1, Match: openflow.Match{Fields: openflow.FieldInPort, InPort: 1}})
	ft.add(openflow.FlowMod{Priority: 1, Match: openflow.Match{Fields: openflow.FieldInPort, InPort: 2}})
	n := ft.modify(openflow.FlowMod{
		Match:   openflow.Match{Fields: openflow.FieldInPort, InPort: 1},
		Actions: []openflow.Action{openflow.Output(9)},
	})
	if n != 1 {
		t.Fatalf("modified %d rules", n)
	}
	r := ft.lookup(1, packet.Addr{}, packet.Addr{}, 0)
	if r == nil || len(r.loadActions()) != 1 || r.loadActions()[0].Port != 9 {
		t.Fatal("modify did not take effect")
	}
}

func TestFlowTableExpireOnlyIdle(t *testing.T) {
	var ft flowTable
	ft.add(openflow.FlowMod{Priority: 1, IdleTimeoutMs: 10,
		Match: openflow.Match{Fields: openflow.FieldInPort, InPort: 1}})
	ft.add(openflow.FlowMod{Priority: 1,
		Match: openflow.Match{Fields: openflow.FieldInPort, InPort: 2}})
	time.Sleep(30 * time.Millisecond)
	removed := ft.expire(time.Now().UnixNano())
	if len(removed) != 1 || ft.len() != 1 {
		t.Fatalf("removed=%d left=%d", len(removed), ft.len())
	}
	// The remaining rule has no timeout and never expires.
	if r := ft.lookup(2, packet.Addr{}, packet.Addr{}, 0); r == nil {
		t.Fatal("persistent rule expired")
	}
}

func TestFlowTableSnapshotCounters(t *testing.T) {
	var ft flowTable
	ft.add(openflow.FlowMod{Priority: 1, Cookie: 77,
		Match: openflow.Match{Fields: openflow.FieldInPort, InPort: 1}})
	r := ft.lookup(1, packet.Addr{}, packet.Addr{}, 0)
	r.touch(100, time.Now().UnixNano())
	r.touch(50, time.Now().UnixNano())
	snap := ft.snapshot()
	if len(snap) != 1 || snap[0].Packets != 2 || snap[0].Bytes != 150 || snap[0].Cookie != 77 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

// linearTable is the pre-staged classifier: rules sorted by descending
// priority with stable insertion order, lookup by linear scan. The
// conformance tests below hold the staged classifier to exactly these
// semantics.
type linearTable struct {
	rules []*rule
}

func (t *linearTable) add(fm openflow.FlowMod) {
	nr := &rule{match: fm.Match.Normalize(), priority: fm.Priority, cookie: fm.Cookie}
	acts := fm.Actions
	nr.actions.Store(&acts)
	for i, r := range t.rules {
		if r.priority == fm.Priority && r.match.Equal(nr.match) {
			t.rules[i] = nr
			return
		}
	}
	t.rules = append(t.rules, nr)
	sort.SliceStable(t.rules, func(i, j int) bool {
		return t.rules[i].priority > t.rules[j].priority
	})
}

func (t *linearTable) remove(m openflow.Match, priority uint16, strict bool) {
	nm := m.Normalize()
	kept := t.rules[:0]
	for _, r := range t.rules {
		del := false
		if strict {
			del = r.priority == priority && r.match.Equal(nm)
		} else {
			del = subsumes(m, r.match)
		}
		if !del {
			kept = append(kept, r)
		}
	}
	clear(t.rules[len(kept):])
	t.rules = kept
}

func (t *linearTable) lookup(inPort uint32, src, dst packet.Addr, etherType uint16) *rule {
	for _, r := range t.rules {
		if r.match.Covers(inPort, src, dst, etherType) {
			return r
		}
	}
	return nil
}

// TestStagedMatchesLinearConformance drives the staged classifier and the
// reference linear table through the same randomized install/delete churn
// and requires identical lookup decisions on a frame sweep after every
// mutation.
func TestStagedMatchesLinearConformance(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		var staged flowTable
		var linear linearTable
		randMatch := func() openflow.Match {
			return mkMatch(openflow.FieldSet(r.Intn(16)), r.Uint32()%3,
				r.Uint32()%3, r.Uint32()%3, uint16(r.Intn(2)))
		}
		sweep := func(step int) {
			for in := uint32(0); in < 3; in++ {
				for srcW := uint32(0); srcW < 3; srcW++ {
					for dstW := uint32(0); dstW < 3; dstW++ {
						for et := uint16(0); et < 2; et++ {
							src := packet.WorkerAddr(1, srcW)
							dst := packet.WorkerAddr(1, dstW)
							want := linear.lookup(in, src, dst, et)
							got := staged.lookup(in, src, dst, et)
							switch {
							case want == nil && got == nil:
							case want == nil || got == nil:
								t.Fatalf("seed %d step %d frame(%d,%d,%d,%d): staged=%v linear=%v",
									seed, step, in, srcW, dstW, et, got != nil, want != nil)
							case want.cookie != got.cookie:
								t.Fatalf("seed %d step %d frame(%d,%d,%d,%d): staged picked cookie %d (prio %d, %s), linear %d (prio %d, %s)",
									seed, step, in, srcW, dstW, et,
									got.cookie, got.priority, got.match.Fields,
									want.cookie, want.priority, want.match.Fields)
							}
						}
					}
				}
			}
		}
		for step := 0; step < 60; step++ {
			m := randMatch()
			prio := uint16(r.Intn(4))
			switch r.Intn(4) {
			case 0, 1: // add twice as often as deletes
				fm := openflow.FlowMod{Priority: prio, Match: m, Cookie: uint64(seed)<<32 | uint64(step),
					Actions: []openflow.Action{openflow.Output(uint32(step))}}
				staged.add(fm)
				linear.add(fm)
			case 2:
				staged.remove(m, prio, true)
				linear.remove(m, prio, true)
			case 3:
				staged.remove(m, prio, false)
				linear.remove(m, prio, false)
			}
			if staged.len() != len(linear.rules) {
				t.Fatalf("seed %d step %d: staged holds %d rules, linear %d", seed, step, staged.len(), len(linear.rules))
			}
			sweep(step)
		}
	}
}

// TestPriorityTieAcrossSubTables pins the cross-sub-table tie-break: among
// equal priorities the earliest-installed rule wins, and a delete +
// reinstall demotes the rule to the back of the tie.
func TestPriorityTieAcrossSubTables(t *testing.T) {
	var ft flowTable
	byDst := openflow.Match{Fields: openflow.FieldDlDst, DlDst: packet.WorkerAddr(1, 2)}
	byPort := openflow.Match{Fields: openflow.FieldInPort, InPort: 1}
	a := openflow.FlowMod{Priority: 10, Match: byDst, Actions: []openflow.Action{openflow.Output(100)}}
	b := openflow.FlowMod{Priority: 10, Match: byPort, Actions: []openflow.Action{openflow.Output(200)}}
	ft.add(a)
	ft.add(b)
	frame := func() *rule { return ft.lookup(1, packet.WorkerAddr(1, 9), packet.WorkerAddr(1, 2), packet.EtherType) }
	if r := frame(); r == nil || r.loadActions()[0].Port != 100 {
		t.Fatal("first-installed rule should win the priority tie")
	}
	// Replacing a's actions in place (ADD with same match+priority) must
	// keep its install rank.
	a.Actions = []openflow.Action{openflow.Output(101)}
	ft.add(a)
	if r := frame(); r == nil || r.loadActions()[0].Port != 101 {
		t.Fatal("in-place replacement should keep the tie-break rank")
	}
	// Delete + reinstall sends a to the back of the tie: b now wins.
	ft.remove(byDst, 10, true)
	ft.add(a)
	if r := frame(); r == nil || r.loadActions()[0].Port != 200 {
		t.Fatal("reinstalled rule should lose the tie to the older rule")
	}
}

// TestLookupMaskSoundness is the megaflow property: for any frame, any
// other frame agreeing with it on the fields of lookupMask's reported
// mask must resolve to the same rule — that is what makes installing
// (mask, maskedKey) → rule into the megaflow cache safe.
func TestLookupMaskSoundness(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(1000 + seed))
		var ft flowTable
		for i := 0; i < 12; i++ {
			ft.add(openflow.FlowMod{
				Priority: uint16(r.Intn(4)),
				Cookie:   uint64(i),
				Match: mkMatch(openflow.FieldSet(r.Intn(16)), r.Uint32()%3,
					r.Uint32()%3, r.Uint32()%3, uint16(r.Intn(2))),
				Actions: []openflow.Action{openflow.Output(uint32(i))},
			})
		}
		for probe := 0; probe < 200; probe++ {
			in := r.Uint32() % 3
			src := packet.WorkerAddr(1, r.Uint32()%3)
			dst := packet.WorkerAddr(1, r.Uint32()%3)
			et := uint16(r.Intn(2))
			want, mask := ft.lookupMask(in, src, dst, et)
			// Scramble every field outside the mask; the decision may not
			// change.
			in2, src2, dst2, et2 := in, src, dst, et
			if !mask.Has(openflow.FieldInPort) {
				in2 = r.Uint32() % 3
			}
			if !mask.Has(openflow.FieldDlSrc) {
				src2 = packet.WorkerAddr(1, r.Uint32()%3)
			}
			if !mask.Has(openflow.FieldDlDst) {
				dst2 = packet.WorkerAddr(1, r.Uint32()%3)
			}
			if !mask.Has(openflow.FieldEtherType) {
				et2 = uint16(r.Intn(2))
			}
			if got := ft.lookup(in2, src2, dst2, et2); got != want {
				t.Fatalf("seed %d: scrambling outside mask %s changed the decision", seed, mask)
			}
		}
	}
}

// ruleReleased asserts that the rule selected by pick becomes unreachable
// (its finalizer runs) after mutate removes it from the table — the
// regression guard for compacted slices retaining removed rules through
// their backing arrays.
func ruleReleased(t *testing.T, ft *flowTable, pick func() *rule, mutate func()) {
	t.Helper()
	freed := make(chan struct{})
	func() {
		r := pick()
		if r == nil {
			t.Fatal("pick returned no rule")
		}
		runtime.SetFinalizer(r, func(*rule) { close(freed) })
	}()
	mutate() // removed rules returned here are dropped on the floor
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		select {
		case <-freed:
			return
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("removed rule still reachable after GC: retained by a compacted backing array?")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// sharedBucketRules installs count rules with the identical match at
// distinct priorities, so they share one sub-table bucket and removal
// exercises the in-place slice compaction.
func sharedBucketRules(ft *flowTable, count int) openflow.Match {
	m := openflow.Match{Fields: openflow.FieldDlDst, DlDst: packet.WorkerAddr(1, 7)}
	for i := 0; i < count; i++ {
		ft.add(openflow.FlowMod{Priority: uint16(10 + i), Match: m,
			Actions: []openflow.Action{openflow.Output(uint32(i))}})
	}
	return m
}

// ruleByPriority digs the rule with the given priority out of the table's
// internals, so retention tests can finalize a specific bucket position.
func ruleByPriority(ft *flowTable, prio uint16) *rule {
	ft.mu.RLock()
	defer ft.mu.RUnlock()
	for _, st := range ft.subs {
		for _, bucket := range st.entries {
			for _, r := range bucket {
				if r.priority == prio {
					return r
				}
			}
		}
	}
	return nil
}

// The retention tests target the bucket's LAST element (lowest priority):
// left-shift compaction overwrites removed leading elements, so only a
// removed trailing rule stays pinned by the backing array — exactly the
// slot the clear() in removeWhere exists to release.
func TestFlowTableRemoveReleasesRule(t *testing.T) {
	var ft flowTable
	m := sharedBucketRules(&ft, 4)
	ruleReleased(t, &ft,
		func() *rule { return ruleByPriority(&ft, 10) }, // bucket tail
		func() { ft.remove(m, 10, true) })
	if ft.len() != 3 {
		t.Fatalf("len = %d, want 3", ft.len())
	}
}

func TestFlowTableExpireReleasesRule(t *testing.T) {
	var ft flowTable
	m := sharedBucketRules(&ft, 4)
	// Give the tail (lowest-priority) rule an idle timeout; the re-add
	// replaces it in place so it stays at the end of the bucket.
	ft.add(openflow.FlowMod{Priority: 10, Match: m, IdleTimeoutMs: 1,
		Actions: []openflow.Action{openflow.Output(99)}})
	ruleReleased(t, &ft,
		func() *rule { return ruleByPriority(&ft, 10) }, // bucket tail
		func() {
			time.Sleep(10 * time.Millisecond)
			ft.expire(time.Now().UnixNano())
		})
	if ft.len() != 3 {
		t.Fatalf("len = %d, want 3", ft.len())
	}
}

// TestRuleExpiryBoundary pins the idle-expiry comparison to a single clock
// domain: exactly-at-timeout does not expire, one nanosecond past does,
// and a scanner stamp behind the rule's lastHit (negative idle — the old
// cross-domain skew scenario) never expires the rule.
func TestRuleExpiryBoundary(t *testing.T) {
	var ft flowTable
	ft.add(openflow.FlowMod{Priority: 1, IdleTimeoutMs: 10,
		Match: openflow.Match{Fields: openflow.FieldInPort, InPort: 1}})
	r := ft.lookup(1, packet.Addr{}, packet.Addr{}, 0)
	if r == nil {
		t.Fatal("rule not installed")
	}
	const base = int64(1_000_000_000)
	timeout := int64(10 * time.Millisecond)
	r.lastHit.Store(base)
	if removed := ft.expire(base + timeout); len(removed) != 0 {
		t.Fatal("expired exactly at the timeout boundary")
	}
	// The coarse clock lagging the stamp (negative idle) must clamp to
	// zero, not expire — this is the skew that previously shaved the
	// timeout when expire ran on real time against coarse-clock stamps.
	r.lastHit.Store(base + timeout + int64(time.Millisecond))
	if removed := ft.expire(base); len(removed) != 0 {
		t.Fatal("expired a rule whose lastHit is ahead of the scanner clock")
	}
	r.lastHit.Store(base)
	if removed := ft.expire(base + timeout + 1); len(removed) != 1 {
		t.Fatal("did not expire past the boundary")
	}
}

package switchfabric

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"typhoon/internal/openflow"
	"typhoon/internal/packet"
)

func mkMatch(fields openflow.FieldSet, inPort uint32, src, dst uint32, et uint16) openflow.Match {
	return openflow.Match{
		Fields: fields, InPort: inPort,
		DlSrc: packet.WorkerAddr(1, src), DlDst: packet.WorkerAddr(1, dst),
		EtherType: et,
	}
}

func TestSubsumesSemantics(t *testing.T) {
	full := mkMatch(openflow.FieldInPort|openflow.FieldDlSrc|openflow.FieldDlDst|openflow.FieldEtherType,
		1, 10, 20, packet.EtherType)
	byDst := openflow.Match{Fields: openflow.FieldDlDst, DlDst: packet.WorkerAddr(1, 20)}
	if !subsumes(byDst, full) {
		t.Fatal("wildcard-heavy pattern should subsume the specific rule")
	}
	if subsumes(full, byDst) {
		t.Fatal("specific pattern must not subsume a wildcard rule")
	}
	otherDst := openflow.Match{Fields: openflow.FieldDlDst, DlDst: packet.WorkerAddr(1, 99)}
	if subsumes(otherDst, full) {
		t.Fatal("different value must not subsume")
	}
	empty := openflow.Match{}
	if !subsumes(empty, full) || !subsumes(empty, byDst) {
		t.Fatal("empty pattern subsumes everything")
	}
}

func TestPropertySubsumedRuleAlsoCovered(t *testing.T) {
	// Whenever pattern subsumes rule, any frame the rule matches would
	// also match the pattern — the property loose deletion relies on.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		randMatch := func(fields openflow.FieldSet) openflow.Match {
			return mkMatch(fields, r.Uint32()%4, r.Uint32()%4, r.Uint32()%4, uint16(r.Intn(2)))
		}
		pattern := randMatch(openflow.FieldSet(r.Intn(16)))
		rule := randMatch(openflow.FieldSet(r.Intn(16)))
		if !subsumes(pattern, rule) {
			return true // vacuous
		}
		// Sample frames that the rule covers; the pattern must too.
		for i := 0; i < 20; i++ {
			in := r.Uint32() % 4
			src := packet.WorkerAddr(1, r.Uint32()%4)
			dst := packet.WorkerAddr(1, r.Uint32()%4)
			et := uint16(r.Intn(2))
			if rule.Covers(in, src, dst, et) && !pattern.Covers(in, src, dst, et) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFlowTablePriorityStability(t *testing.T) {
	var ft flowTable
	// Two rules with equal priority: first-installed wins ties.
	a := openflow.FlowMod{Priority: 10, Match: openflow.Match{Fields: openflow.FieldInPort, InPort: 1},
		Actions: []openflow.Action{openflow.Output(100)}}
	b := openflow.FlowMod{Priority: 10, Match: openflow.Match{Fields: openflow.FieldEtherType, EtherType: packet.EtherType},
		Actions: []openflow.Action{openflow.Output(200)}}
	ft.add(a)
	ft.add(b)
	r := ft.lookup(1, packet.Addr{}, packet.Addr{}, packet.EtherType)
	if r == nil || r.loadActions()[0].Port != 100 {
		t.Fatal("stable tie-break broken")
	}
}

func TestFlowTableModifyCounts(t *testing.T) {
	var ft flowTable
	ft.add(openflow.FlowMod{Priority: 1, Match: openflow.Match{Fields: openflow.FieldInPort, InPort: 1}})
	ft.add(openflow.FlowMod{Priority: 1, Match: openflow.Match{Fields: openflow.FieldInPort, InPort: 2}})
	n := ft.modify(openflow.FlowMod{
		Match:   openflow.Match{Fields: openflow.FieldInPort, InPort: 1},
		Actions: []openflow.Action{openflow.Output(9)},
	})
	if n != 1 {
		t.Fatalf("modified %d rules", n)
	}
	r := ft.lookup(1, packet.Addr{}, packet.Addr{}, 0)
	if r == nil || len(r.loadActions()) != 1 || r.loadActions()[0].Port != 9 {
		t.Fatal("modify did not take effect")
	}
}

func TestFlowTableExpireOnlyIdle(t *testing.T) {
	var ft flowTable
	ft.add(openflow.FlowMod{Priority: 1, IdleTimeoutMs: 10,
		Match: openflow.Match{Fields: openflow.FieldInPort, InPort: 1}})
	ft.add(openflow.FlowMod{Priority: 1,
		Match: openflow.Match{Fields: openflow.FieldInPort, InPort: 2}})
	time.Sleep(30 * time.Millisecond)
	removed := ft.expire(time.Now())
	if len(removed) != 1 || ft.len() != 1 {
		t.Fatalf("removed=%d left=%d", len(removed), ft.len())
	}
	// The remaining rule has no timeout and never expires.
	if r := ft.lookup(2, packet.Addr{}, packet.Addr{}, 0); r == nil {
		t.Fatal("persistent rule expired")
	}
}

func TestFlowTableSnapshotCounters(t *testing.T) {
	var ft flowTable
	ft.add(openflow.FlowMod{Priority: 1, Cookie: 77,
		Match: openflow.Match{Fields: openflow.FieldInPort, InPort: 1}})
	r := ft.lookup(1, packet.Addr{}, packet.Addr{}, 0)
	r.touch(100, time.Now().UnixNano())
	r.touch(50, time.Now().UnixNano())
	snap := ft.snapshot()
	if len(snap) != 1 || snap[0].Packets != 2 || snap[0].Bytes != 150 || snap[0].Cookie != 77 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

package switchfabric

import "typhoon/internal/packet"

// microCacheCap bounds a microflow cache. A port rarely sees more than a few
// hundred distinct (src, dst, ethertype) microflows — one per upstream
// worker × destination pair — so 4096 entries make eviction effectively
// never happen in steady state; overflow resets the whole map rather than
// tracking LRU order, mirroring the brutal-but-cheap policy of OVS's EMC.
const microCacheCap = 4096

// microKey identifies one microflow seen by a port. The in_port dimension of
// the flow-table match is implicit: each switch port has its own pump
// goroutine and therefore its own cache.
type microKey struct {
	src, dst  packet.Addr
	etherType uint16
}

// microCache is a per-pump exact-match cache in front of flowTable.lookup,
// the software analogue of Open vSwitch's exact-match cache. Because it is
// owned by a single goroutine it takes no locks and needs no atomics; the
// per-frame cost of a hit is one map probe.
//
// Coherence is generation-based: every flow-table mutation, group-table
// mutation and port change bumps the switch's generation counter inside the
// mutating critical section. The pump revalidates once per batch — a frame
// enqueued after a mutating call returns is, by the ring's channel
// happens-before edge, always processed under a generation at least as new
// as that mutation, so the cache can never serve a rule deleted or modified
// before the frame was sent.
type microCache struct {
	gen     uint64
	entries map[microKey]*rule
}

func newMicroCache() *microCache {
	return &microCache{entries: make(map[microKey]*rule)}
}

// validate drops every entry when the switch generation moved.
func (c *microCache) validate(gen uint64) {
	if gen != c.gen {
		clear(c.entries)
		c.gen = gen
	}
}

func (c *microCache) lookup(k microKey) (*rule, bool) {
	r, ok := c.entries[k]
	return r, ok
}

func (c *microCache) insert(k microKey, r *rule) {
	if len(c.entries) >= microCacheCap {
		clear(c.entries)
	}
	c.entries[k] = r
}

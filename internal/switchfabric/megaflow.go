package switchfabric

import (
	"typhoon/internal/openflow"
	"typhoon/internal/packet"
)

// megaCacheCap bounds the total entries of a pump's megaflow cache.
// Megaflows are far coarser than microflows — one entry absorbs every
// microflow that agrees on the masked fields — so the population tracks
// rule-mask diversity rather than traffic diversity; overflow resets the
// whole cache rather than tracking LRU order, mirroring microflow.go.
const megaCacheCap = 4096

// megaCache is a per-pump wildcarded flow cache between the exact-match
// microflow cache and the staged flow table — the software analogue of Open
// vSwitch's megaflow layer. Entries are installed on slow-path resolution
// with the mask the classifier reports for the decision (the union of
// every sub-table mask it probed, see flowTable.lookupMask): any frame
// agreeing on exactly those fields resolves to the same rule, so one entry
// covers an arbitrary scatter of microflows. Lookup is one map probe per
// distinct installed mask.
//
// Overlapping entries are safe in any probe order: two entries can only
// both cover a frame if the full lookup of that frame yields the same rule
// for each (the mask-union guarantee), so the first hit is always correct.
//
// Like the microflow cache it is owned by a single pump goroutine — no
// locks, no atomics — and coherence is generation-based: the pump samples
// the switch generation once per batch and resets the cache on any
// control-plane mutation, so the PR 5 churn guarantees (no stale
// forwarding after any flow/group/port change) extend to this layer.
type megaCache struct {
	gen    uint64
	masks  []openflow.FieldSet // distinct masks with live entries, probe order
	tables map[openflow.FieldSet]map[flowKey]*rule
	count  int
}

func newMegaCache() *megaCache {
	return &megaCache{tables: make(map[openflow.FieldSet]map[flowKey]*rule)}
}

// reset drops every entry, keeping the per-mask maps for reuse.
func (c *megaCache) reset() {
	for _, m := range c.masks {
		clear(c.tables[m])
	}
	c.masks = c.masks[:0]
	c.count = 0
}

// validate resets the cache when the switch generation moved.
func (c *megaCache) validate(gen uint64) {
	if gen != c.gen {
		c.reset()
		c.gen = gen
	}
}

// lookup probes every installed mask with the frame attributes projected
// onto it.
func (c *megaCache) lookup(inPort uint32, src, dst packet.Addr, etherType uint16) (*rule, bool) {
	for _, m := range c.masks {
		if r, ok := c.tables[m][maskedKey(m, inPort, src, dst, etherType)]; ok {
			return r, true
		}
	}
	return nil, false
}

// insert installs the slow path's decision for the frame under the mask
// the classifier derived for it.
func (c *megaCache) insert(mask openflow.FieldSet, inPort uint32, src, dst packet.Addr, etherType uint16, r *rule) {
	if c.count >= megaCacheCap {
		c.reset()
	}
	tbl := c.tables[mask]
	if tbl == nil {
		tbl = make(map[flowKey]*rule)
		c.tables[mask] = tbl
	}
	if len(tbl) == 0 {
		c.masks = append(c.masks, mask)
	}
	k := maskedKey(mask, inPort, src, dst, etherType)
	if _, exists := tbl[k]; !exists {
		c.count++
	}
	tbl[k] = r
}

package switchfabric

import (
	"testing"
	"time"

	"typhoon/internal/openflow"
	"typhoon/internal/packet"
)

// expectFrame asserts that exactly one frame arrives at p and returns it.
func expectFrame(t *testing.T, p *Port) []byte {
	t.Helper()
	return mustRead(t, p)
}

// expectNoFrame asserts that nothing arrives at p within a grace window.
func expectNoFrame(t *testing.T, p *Port) {
	t.Helper()
	frames, err := p.ReadBatch(nil, 1, 150*time.Millisecond)
	if err == nil && len(frames) > 0 {
		t.Fatalf("unexpected frame forwarded: %d bytes", len(frames[0]))
	}
}

// waitCounter polls fn until it reaches at least want.
func waitCounter(t *testing.T, fn func() uint64, want uint64, what string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for fn() < want {
		if time.Now().After(deadline) {
			t.Fatalf("%s = %d, want >= %d", what, fn(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// warm sends one frame through the installed rule and reads it at out,
// populating the ingress port's microflow cache with the rule.
func warm(t *testing.T, in, out *Port, dst, src packet.Addr) {
	t.Helper()
	if !in.WriteFrame(frameFor(dst, src, "warm")) {
		t.Fatal("WriteFrame failed")
	}
	expectFrame(t, out)
}

func TestMicroflowNoStaleAfterFlowDelete(t *testing.T) {
	sw, _ := newTestSwitch(t)
	a1, a2 := packet.WorkerAddr(1, 1), packet.WorkerAddr(1, 2)
	p1, _ := sw.AddPort("w1", a1)
	p2, _ := sw.AddPort("w2", a2)
	fm := unicastRule(p1.No(), a1, a2, p2.No())
	if err := sw.ApplyFlowMod(fm); err != nil {
		t.Fatal(err)
	}
	warm(t, p1, p2, a2, a1)

	fm.Command = openflow.FlowDeleteStrict
	if err := sw.ApplyFlowMod(fm); err != nil {
		t.Fatal(err)
	}
	drops := sw.NoMatchDrops()
	if !p1.WriteFrame(frameFor(a2, a1, "stale?")) {
		t.Fatal("WriteFrame failed")
	}
	waitCounter(t, sw.NoMatchDrops, drops+1, "NoMatchDrops")
	expectNoFrame(t, p2)
}

func TestMicroflowNoStaleAfterFlowModify(t *testing.T) {
	sw, _ := newTestSwitch(t)
	a1, a2 := packet.WorkerAddr(1, 1), packet.WorkerAddr(1, 2)
	p1, _ := sw.AddPort("w1", a1)
	p2, _ := sw.AddPort("w2", a2)
	p3, _ := sw.AddPort("w3", packet.WorkerAddr(1, 3))
	fm := unicastRule(p1.No(), a1, a2, p2.No())
	if err := sw.ApplyFlowMod(fm); err != nil {
		t.Fatal(err)
	}
	warm(t, p1, p2, a2, a1)

	// Redirect the cached rule's actions to p3; the cached entry itself
	// stays valid (the rule object is shared) but must forward to p3 only.
	if err := sw.ApplyFlowMod(openflow.FlowMod{
		Command: openflow.FlowModify,
		Match:   fm.Match,
		Actions: []openflow.Action{openflow.Output(p3.No())},
	}); err != nil {
		t.Fatal(err)
	}
	if !p1.WriteFrame(frameFor(a2, a1, "redirected")) {
		t.Fatal("WriteFrame failed")
	}
	expectFrame(t, p3)
	expectNoFrame(t, p2)
}

func TestMicroflowNoStaleAfterGroupMod(t *testing.T) {
	sw, _ := newTestSwitch(t)
	a1, a2 := packet.WorkerAddr(1, 1), packet.WorkerAddr(1, 2)
	p1, _ := sw.AddPort("w1", a1)
	p2, _ := sw.AddPort("w2", a2)
	p3, _ := sw.AddPort("w3", packet.WorkerAddr(1, 3))
	const gid = 7
	if err := sw.ApplyGroupMod(openflow.GroupMod{
		Command: openflow.GroupAdd, GroupID: gid, Type: openflow.GroupSelect,
		Buckets: []openflow.Bucket{{Actions: []openflow.Action{openflow.Output(p2.No())}}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := sw.ApplyFlowMod(openflow.FlowMod{
		Command: openflow.FlowAdd, Priority: 100,
		Match: openflow.Match{
			Fields: openflow.FieldInPort | openflow.FieldDlDst | openflow.FieldEtherType,
			InPort: p1.No(), DlDst: a2, EtherType: packet.EtherType,
		},
		Actions: []openflow.Action{openflow.ToGroup(gid)},
	}); err != nil {
		t.Fatal(err)
	}
	warm(t, p1, p2, a2, a1)

	if err := sw.ApplyGroupMod(openflow.GroupMod{
		Command: openflow.GroupModify, GroupID: gid, Type: openflow.GroupSelect,
		Buckets: []openflow.Bucket{{Actions: []openflow.Action{openflow.Output(p3.No())}}},
	}); err != nil {
		t.Fatal(err)
	}
	if !p1.WriteFrame(frameFor(a2, a1, "regrouped")) {
		t.Fatal("WriteFrame failed")
	}
	expectFrame(t, p3)
	expectNoFrame(t, p2)
}

func TestMicroflowNoStaleAfterWipeFlows(t *testing.T) {
	sw, _ := newTestSwitch(t)
	a1, a2 := packet.WorkerAddr(1, 1), packet.WorkerAddr(1, 2)
	p1, _ := sw.AddPort("w1", a1)
	p2, _ := sw.AddPort("w2", a2)
	if err := sw.ApplyFlowMod(unicastRule(p1.No(), a1, a2, p2.No())); err != nil {
		t.Fatal(err)
	}
	warm(t, p1, p2, a2, a1)

	if n := sw.WipeFlows(); n != 1 {
		t.Fatalf("WipeFlows removed %d rules, want 1", n)
	}
	drops := sw.NoMatchDrops()
	if !p1.WriteFrame(frameFor(a2, a1, "wiped")) {
		t.Fatal("WriteFrame failed")
	}
	waitCounter(t, sw.NoMatchDrops, drops+1, "NoMatchDrops")
	expectNoFrame(t, p2)
}

func TestMicroflowNoStaleAfterIdleExpiry(t *testing.T) {
	sw, _ := newTestSwitch(t)
	a1, a2 := packet.WorkerAddr(1, 1), packet.WorkerAddr(1, 2)
	p1, _ := sw.AddPort("w1", a1)
	p2, _ := sw.AddPort("w2", a2)
	fm := unicastRule(p1.No(), a1, a2, p2.No())
	fm.IdleTimeoutMs = 30
	if err := sw.ApplyFlowMod(fm); err != nil {
		t.Fatal(err)
	}
	warm(t, p1, p2, a2, a1)

	deadline := time.Now().Add(2 * time.Second)
	for sw.RuleCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("rule never idle-expired; RuleCount = %d", sw.RuleCount())
		}
		time.Sleep(5 * time.Millisecond)
	}
	drops := sw.NoMatchDrops()
	if !p1.WriteFrame(frameFor(a2, a1, "expired")) {
		t.Fatal("WriteFrame failed")
	}
	waitCounter(t, sw.NoMatchDrops, drops+1, "NoMatchDrops")
	expectNoFrame(t, p2)
}

func TestMicroflowRuleChurnLoop(t *testing.T) {
	// Repeated add/delete churn with traffic in between: forwarding must
	// exactly track the installed state every round.
	sw, _ := newTestSwitch(t)
	a1, a2 := packet.WorkerAddr(1, 1), packet.WorkerAddr(1, 2)
	p1, _ := sw.AddPort("w1", a1)
	p2, _ := sw.AddPort("w2", a2)
	fm := unicastRule(p1.No(), a1, a2, p2.No())
	for round := 0; round < 10; round++ {
		fm.Command = openflow.FlowAdd
		if err := sw.ApplyFlowMod(fm); err != nil {
			t.Fatal(err)
		}
		warm(t, p1, p2, a2, a1)
		fm.Command = openflow.FlowDeleteStrict
		if err := sw.ApplyFlowMod(fm); err != nil {
			t.Fatal(err)
		}
		drops := sw.NoMatchDrops()
		if !p1.WriteFrame(frameFor(a2, a1, "churn")) {
			t.Fatal("WriteFrame failed")
		}
		waitCounter(t, sw.NoMatchDrops, drops+1, "NoMatchDrops")
	}
	expectNoFrame(t, p2)
}

func TestMicroflowHitMissAccounting(t *testing.T) {
	sw, _ := newTestSwitch(t)
	a1, a2 := packet.WorkerAddr(1, 1), packet.WorkerAddr(1, 2)
	p1, _ := sw.AddPort("w1", a1)
	p2, _ := sw.AddPort("w2", a2)
	if err := sw.ApplyFlowMod(unicastRule(p1.No(), a1, a2, p2.No())); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		warm(t, p1, p2, a2, a1)
	}
	hits, misses := sw.MicroflowStats()
	if misses < 1 {
		t.Fatalf("MicroflowStats misses = %d, want >= 1", misses)
	}
	if hits < 1 {
		t.Fatalf("MicroflowStats hits = %d, want >= 1 after repeated traffic", hits)
	}
	c := sw.CountersSnapshot()
	if c.MicroflowHits != hits || c.MicroflowMisses != misses {
		t.Fatalf("CountersSnapshot microflow fields diverge: %+v vs (%d, %d)", c, hits, misses)
	}
}

func TestMicroflowCacheDisabled(t *testing.T) {
	sink := &recordingSink{}
	sw := New("host-nc", 1, Options{RingCapacity: 256}, WithoutMicroflowCache())
	sw.SetController(sink)
	sw.Start()
	t.Cleanup(sw.Stop)
	a1, a2 := packet.WorkerAddr(1, 1), packet.WorkerAddr(1, 2)
	p1, _ := sw.AddPort("w1", a1)
	p2, _ := sw.AddPort("w2", a2)
	if err := sw.ApplyFlowMod(unicastRule(p1.No(), a1, a2, p2.No())); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		warm(t, p1, p2, a2, a1)
	}
	if hits, misses := sw.MicroflowStats(); hits != 0 || misses != 0 {
		t.Fatalf("disabled cache recorded traffic: hits=%d misses=%d", hits, misses)
	}
}

func TestMalformedFramesCountedAsReceived(t *testing.T) {
	// A frame rejected before lookup must still appear in the port's RX
	// counters (it was received!) and be accounted in its own drop bucket,
	// not the table-miss one.
	sw, _ := newTestSwitch(t)
	p1, _ := sw.AddPort("w1", packet.WorkerAddr(1, 1))
	if !p1.WriteFrame([]byte{0xde, 0xad}) {
		t.Fatal("WriteFrame failed")
	}
	waitCounter(t, sw.MalformedDrops, 1, "MalformedDrops")
	if n := sw.NoMatchDrops(); n != 0 {
		t.Fatalf("malformed frame counted as table miss: NoMatchDrops = %d", n)
	}
	var rx uint64
	for _, ps := range sw.PortStatsSnapshot() {
		if ps.PortNo == p1.No() {
			rx = ps.RxPackets
		}
	}
	if rx != 1 {
		t.Fatalf("malformed frame missing from RxPackets: %d", rx)
	}
	c := sw.CountersSnapshot()
	if c.Malformed != 1 || c.Dropped < 1 {
		t.Fatalf("counters = %+v, want Malformed=1 and Dropped>=1", c)
	}
}

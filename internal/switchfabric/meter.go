package switchfabric

import (
	"sync/atomic"
	"time"
)

// meter is one token-bucket rate policer of the switch meter table. Flow
// rules reference a meter by ID (FlowMod.Meter); every frame matching such a
// rule is charged against the bucket before its actions run, and frames
// arriving on an empty bucket are dropped at the pipeline — the data-plane
// enforcement half of the online bandwidth-allocation loop.
//
// All state is atomic so the per-frame path takes no locks and the
// controller can retune rate and burst in place (MeterModify) without
// touching the data-path view or the flow-cache generation: a rate
// reassignment is invisible to the forwarding caches.
type meter struct {
	rateBps atomic.Uint64 // admitted bytes per second; 0 admits everything
	burst   atomic.Uint64 // bucket depth in bytes
	tokens  atomic.Int64  // current fill, may briefly exceed burst on retune
	last    atomic.Int64  // coarse-clock stamp of the latest refill
	drops   atomic.Uint64
}

// defaultBurst derives a bucket depth from the rate: 125 ms worth of
// traffic, floored so slow meters still absorb one reasonable batch.
func defaultBurst(rate uint64) uint64 {
	b := rate / 8
	if b < 64<<10 {
		b = 64 << 10
	}
	return b
}

func newMeter(rate, burst uint64, now int64) *meter {
	m := &meter{}
	m.configure(rate, burst)
	m.tokens.Store(int64(m.burst.Load()))
	m.last.Store(now)
	return m
}

// configure retunes rate and burst in place. The bucket fill is left alone
// so continuous reassignment never manufactures or destroys credit.
func (m *meter) configure(rate, burst uint64) {
	if burst == 0 {
		burst = defaultBurst(rate)
	}
	m.rateBps.Store(rate)
	m.burst.Store(burst)
}

// allow charges n bytes against the bucket, refilling from the elapsed
// coarse-clock time first. It reports false (and counts a drop) when the
// bucket cannot cover the frame. Lock-free: the refill is serialized by a
// CAS on the last-refill stamp, spending by a CAS loop on the fill level.
func (m *meter) allow(n int, now int64) bool {
	rate := m.rateBps.Load()
	if rate == 0 {
		return true
	}
	last := m.last.Load()
	if now > last && m.last.CompareAndSwap(last, now) {
		elapsed := now - last
		if elapsed > int64(time.Second) {
			elapsed = int64(time.Second)
		}
		add := int64(float64(elapsed) * float64(rate) / float64(time.Second))
		burst := int64(m.burst.Load())
		for {
			t := m.tokens.Load()
			nt := t + add
			if nt > burst {
				nt = burst
			}
			if m.tokens.CompareAndSwap(t, nt) {
				break
			}
		}
	}
	for {
		t := m.tokens.Load()
		if t < int64(n) {
			m.drops.Add(1)
			return false
		}
		if m.tokens.CompareAndSwap(t, t-int64(n)) {
			return true
		}
	}
}

// MeterInfo is one meter-table row of the switch observability snapshot.
type MeterInfo struct {
	ID         uint32 `json:"id"`
	RateBps    uint64 `json:"rateBps"`
	BurstBytes uint64 `json:"burstBytes"`
	Drops      uint64 `json:"drops"`
}

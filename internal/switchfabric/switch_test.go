package switchfabric

import (
	"sync"
	"testing"
	"time"

	"typhoon/internal/openflow"
	"typhoon/internal/packet"
	"typhoon/internal/tuple"
)

type recordingSink struct {
	mu       sync.Mutex
	packetIn []openflow.PacketIn
	ports    []openflow.PortStatus
	removed  []openflow.FlowRemoved
}

func (r *recordingSink) PacketIn(m openflow.PacketIn) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.packetIn = append(r.packetIn, m)
}

func (r *recordingSink) PortStatus(m openflow.PortStatus) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ports = append(r.ports, m)
}

func (r *recordingSink) FlowRemoved(m openflow.FlowRemoved) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.removed = append(r.removed, m)
}

func (r *recordingSink) counts() (int, int, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.packetIn), len(r.ports), len(r.removed)
}

func newTestSwitch(t *testing.T) (*Switch, *recordingSink) {
	t.Helper()
	sink := &recordingSink{}
	sw := New("host-1", 1, Options{RingCapacity: 256, IdleScanInterval: 10 * time.Millisecond})
	sw.SetController(sink)
	sw.Start()
	t.Cleanup(sw.Stop)
	return sw, sink
}

func frameFor(dst, src packet.Addr, payload string) []byte {
	enc := tuple.Encode(tuple.New(tuple.String(payload)))
	return packet.EncodeTuples(dst, src, [][]byte{enc})
}

func unicastRule(in uint32, src, dst packet.Addr, outPort uint32) openflow.FlowMod {
	return openflow.FlowMod{
		Command:  openflow.FlowAdd,
		Priority: 100,
		Match: openflow.Match{
			Fields: openflow.FieldInPort | openflow.FieldDlSrc | openflow.FieldDlDst | openflow.FieldEtherType,
			InPort: in, DlSrc: src, DlDst: dst, EtherType: packet.EtherType,
		},
		Actions: []openflow.Action{openflow.Output(outPort)},
	}
}

func mustRead(t *testing.T, p *Port) []byte {
	t.Helper()
	frames, err := p.ReadBatch(nil, 1, 2*time.Second)
	if err != nil {
		t.Fatalf("ReadBatch: %v", err)
	}
	if len(frames) != 1 {
		t.Fatalf("got %d frames, want 1", len(frames))
	}
	return frames[0]
}

func TestUnicastForwarding(t *testing.T) {
	sw, _ := newTestSwitch(t)
	a1, a2 := packet.WorkerAddr(1, 1), packet.WorkerAddr(1, 2)
	p1, _ := sw.AddPort("w1", a1)
	p2, _ := sw.AddPort("w2", a2)

	if err := sw.ApplyFlowMod(unicastRule(p1.No(), a1, a2, p2.No())); err != nil {
		t.Fatal(err)
	}
	frame := frameFor(a2, a1, "hello")
	if !p1.WriteFrame(frame) {
		t.Fatal("WriteFrame failed")
	}
	got := mustRead(t, p2)
	f, err := packet.Decode(got)
	if err != nil || f.Src != a1 || f.Dst != a2 {
		t.Fatalf("decoded %v err=%v", f, err)
	}
}

func TestTableMissDrops(t *testing.T) {
	sw, _ := newTestSwitch(t)
	a1, a2 := packet.WorkerAddr(1, 1), packet.WorkerAddr(1, 2)
	p1, _ := sw.AddPort("w1", a1)
	p1.WriteFrame(frameFor(a2, a1, "x"))
	deadline := time.Now().Add(time.Second)
	for sw.NoMatchDrops() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if sw.NoMatchDrops() != 1 {
		t.Fatalf("NoMatchDrops = %d", sw.NoMatchDrops())
	}
}

func TestBroadcastReplication(t *testing.T) {
	sw, _ := newTestSwitch(t)
	src := packet.WorkerAddr(1, 1)
	p1, _ := sw.AddPort("w1", src)
	var sinks []*Port
	var acts []openflow.Action
	for i := 2; i <= 5; i++ {
		p, _ := sw.AddPort("w", packet.WorkerAddr(1, uint32(i)))
		sinks = append(sinks, p)
		acts = append(acts, openflow.Output(p.No()))
	}
	err := sw.ApplyFlowMod(openflow.FlowMod{
		Command:  openflow.FlowAdd,
		Priority: 100,
		Match: openflow.Match{
			Fields: openflow.FieldInPort | openflow.FieldDlDst | openflow.FieldEtherType,
			InPort: p1.No(), DlDst: packet.Broadcast, EtherType: packet.EtherType,
		},
		Actions: acts,
	})
	if err != nil {
		t.Fatal(err)
	}
	p1.WriteFrame(frameFor(packet.Broadcast, src, "fanout"))
	for _, p := range sinks {
		f, err := packet.Decode(mustRead(t, p))
		if err != nil || f.Src != src {
			t.Fatalf("sink %d: %v err=%v", p.No(), f, err)
		}
	}
}

func TestPriorityOrdering(t *testing.T) {
	sw, _ := newTestSwitch(t)
	a1, a2 := packet.WorkerAddr(1, 1), packet.WorkerAddr(1, 2)
	p1, _ := sw.AddPort("w1", a1)
	p2, _ := sw.AddPort("w2", a2)
	p3, _ := sw.AddPort("w3", packet.WorkerAddr(1, 3))

	low := unicastRule(p1.No(), a1, a2, p3.No())
	low.Priority = 10
	if err := sw.ApplyFlowMod(low); err != nil {
		t.Fatal(err)
	}
	high := unicastRule(p1.No(), a1, a2, p2.No())
	high.Priority = 200
	if err := sw.ApplyFlowMod(high); err != nil {
		t.Fatal(err)
	}
	p1.WriteFrame(frameFor(a2, a1, "pri"))
	mustRead(t, p2) // the high-priority output port receives the frame
	if frames, _ := p3.ReadBatch(nil, 1, 50*time.Millisecond); len(frames) != 0 {
		t.Fatal("low-priority rule should not fire")
	}
}

func TestAddReplacesSamePriorityMatch(t *testing.T) {
	sw, _ := newTestSwitch(t)
	a1, a2 := packet.WorkerAddr(1, 1), packet.WorkerAddr(1, 2)
	p1, _ := sw.AddPort("w1", a1)
	p2, _ := sw.AddPort("w2", a2)
	p3, _ := sw.AddPort("w3", packet.WorkerAddr(1, 3))
	sw.ApplyFlowMod(unicastRule(p1.No(), a1, a2, p2.No()))
	sw.ApplyFlowMod(unicastRule(p1.No(), a1, a2, p3.No())) // same match+prio, new action
	if sw.RuleCount() != 1 {
		t.Fatalf("rule count = %d, want 1 (replace)", sw.RuleCount())
	}
	p1.WriteFrame(frameFor(a2, a1, "replaced"))
	mustRead(t, p3)
}

func TestFlowDeleteLooseAndStrict(t *testing.T) {
	sw, _ := newTestSwitch(t)
	a1, a2, a3 := packet.WorkerAddr(1, 1), packet.WorkerAddr(1, 2), packet.WorkerAddr(1, 3)
	p1, _ := sw.AddPort("w1", a1)
	p2, _ := sw.AddPort("w2", a2)
	sw.ApplyFlowMod(unicastRule(p1.No(), a1, a2, p2.No()))
	sw.ApplyFlowMod(unicastRule(p1.No(), a1, a3, p2.No()))
	if sw.RuleCount() != 2 {
		t.Fatal("setup failed")
	}
	// Loose delete by dl_dst subsumption removes only the a2 rule.
	sw.ApplyFlowMod(openflow.FlowMod{
		Command: openflow.FlowDelete,
		Match:   openflow.Match{Fields: openflow.FieldDlDst, DlDst: a2},
	})
	if sw.RuleCount() != 1 {
		t.Fatalf("rule count after loose delete = %d", sw.RuleCount())
	}
	// Strict delete with wrong priority removes nothing.
	sw.ApplyFlowMod(openflow.FlowMod{
		Command:  openflow.FlowDeleteStrict,
		Priority: 5,
		Match:    unicastRule(p1.No(), a1, a3, p2.No()).Match,
	})
	if sw.RuleCount() != 1 {
		t.Fatal("strict delete with wrong priority should not remove")
	}
	sw.ApplyFlowMod(openflow.FlowMod{
		Command:  openflow.FlowDeleteStrict,
		Priority: 100,
		Match:    unicastRule(p1.No(), a1, a3, p2.No()).Match,
	})
	if sw.RuleCount() != 0 {
		t.Fatal("strict delete failed")
	}
}

func TestIdleTimeoutExpiryNotifies(t *testing.T) {
	sw, sink := newTestSwitch(t)
	a1, a2 := packet.WorkerAddr(1, 1), packet.WorkerAddr(1, 2)
	p1, _ := sw.AddPort("w1", a1)
	p2, _ := sw.AddPort("w2", a2)
	fm := unicastRule(p1.No(), a1, a2, p2.No())
	fm.IdleTimeoutMs = 30
	fm.Flags = openflow.FlagSendFlowRem
	sw.ApplyFlowMod(fm)
	deadline := time.Now().Add(2 * time.Second)
	for sw.RuleCount() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if sw.RuleCount() != 0 {
		t.Fatal("rule did not expire")
	}
	deadline = time.Now().Add(time.Second)
	for {
		_, _, rem := sink.counts()
		if rem > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, _, rem := sink.counts(); rem != 1 {
		t.Fatalf("FlowRemoved count = %d", rem)
	}
}

func TestIdleTimeoutRefreshedByTraffic(t *testing.T) {
	sw, _ := newTestSwitch(t)
	a1, a2 := packet.WorkerAddr(1, 1), packet.WorkerAddr(1, 2)
	p1, _ := sw.AddPort("w1", a1)
	p2, _ := sw.AddPort("w2", a2)
	fm := unicastRule(p1.No(), a1, a2, p2.No())
	fm.IdleTimeoutMs = 80
	sw.ApplyFlowMod(fm)
	// Keep the rule warm for 300 ms.
	stop := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(stop) {
		p1.WriteFrame(frameFor(a2, a1, "warm"))
		time.Sleep(20 * time.Millisecond)
	}
	if sw.RuleCount() != 1 {
		t.Fatal("active rule must not expire")
	}
}

func TestPacketInViaControllerOutput(t *testing.T) {
	sw, sink := newTestSwitch(t)
	a1 := packet.WorkerAddr(1, 1)
	p1, _ := sw.AddPort("w1", a1)
	sw.ApplyFlowMod(openflow.FlowMod{
		Command:  openflow.FlowAdd,
		Priority: 100,
		Match: openflow.Match{
			Fields: openflow.FieldInPort | openflow.FieldDlDst,
			InPort: p1.No(), DlDst: packet.ControllerAddr,
		},
		Actions: []openflow.Action{openflow.Output(openflow.PortController)},
	})
	p1.WriteFrame(frameFor(packet.ControllerAddr, a1, "metrics"))
	deadline := time.Now().Add(time.Second)
	for {
		pi, _, _ := sink.counts()
		if pi > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if pi, _, _ := sink.counts(); pi != 1 {
		t.Fatalf("PacketIn count = %d", pi)
	}
}

func TestPacketOutInjection(t *testing.T) {
	sw, _ := newTestSwitch(t)
	a1 := packet.WorkerAddr(1, 1)
	p1, _ := sw.AddPort("w1", a1)
	frame := frameFor(a1, packet.ControllerAddr, "ctrl")
	err := sw.Inject(openflow.PacketOut{
		InPort:  openflow.PortController,
		Actions: []openflow.Action{openflow.Output(p1.No())},
		Data:    frame,
	})
	if err != nil {
		t.Fatal(err)
	}
	mustRead(t, p1)
	if err := sw.Inject(openflow.PacketOut{}); err == nil {
		t.Fatal("empty packet-out should fail")
	}
}

func TestSelectGroupWeightedRoundRobin(t *testing.T) {
	sw, _ := newTestSwitch(t)
	src := packet.WorkerAddr(1, 1)
	d1, d2 := packet.WorkerAddr(1, 2), packet.WorkerAddr(1, 3)
	p1, _ := sw.AddPort("w1", src)
	q1, _ := sw.AddPort("w2", d1)
	q2, _ := sw.AddPort("w3", d2)
	sw.ApplyGroupMod(openflow.GroupMod{
		Command: openflow.GroupAdd, GroupID: 1, Type: openflow.GroupSelect,
		Buckets: []openflow.Bucket{
			{Weight: 3, Actions: []openflow.Action{openflow.SetDlDst(d1), openflow.Output(q1.No())}},
			{Weight: 1, Actions: []openflow.Action{openflow.SetDlDst(d2), openflow.Output(q2.No())}},
		},
	})
	sw.ApplyFlowMod(openflow.FlowMod{
		Command:  openflow.FlowAdd,
		Priority: 100,
		Match:    openflow.Match{Fields: openflow.FieldInPort, InPort: p1.No()},
		Actions:  []openflow.Action{openflow.ToGroup(1)},
	})
	const total = 400
	for i := 0; i < total; i++ {
		for !p1.WriteFrame(frameFor(packet.Broadcast, src, "lb")) {
			time.Sleep(time.Millisecond) // ingress ring full; retry
		}
	}
	count := func(p *Port, want packet.Addr) int {
		n := 0
		for {
			frames, err := p.ReadBatch(nil, 64, 100*time.Millisecond)
			if err != nil || len(frames) == 0 {
				return n
			}
			for _, fr := range frames {
				dst, _, _ := packet.PeekAddrs(fr)
				if dst != want {
					t.Fatalf("frame dst %v, want %v (SetDlDst not applied)", dst, want)
				}
			}
			n += len(frames)
		}
	}
	n1, n2 := count(q1, d1), count(q2, d2)
	if n1+n2 != total {
		t.Fatalf("delivered %d+%d, want %d", n1, n2, total)
	}
	if n1 != 300 || n2 != 100 {
		t.Fatalf("weights not honored: %d vs %d", n1, n2)
	}
}

func TestGroupAllReplicates(t *testing.T) {
	sw, _ := newTestSwitch(t)
	src := packet.WorkerAddr(1, 1)
	p1, _ := sw.AddPort("w1", src)
	q1, _ := sw.AddPort("w2", packet.WorkerAddr(1, 2))
	q2, _ := sw.AddPort("w3", packet.WorkerAddr(1, 3))
	sw.ApplyGroupMod(openflow.GroupMod{
		Command: openflow.GroupAdd, GroupID: 2, Type: openflow.GroupAll,
		Buckets: []openflow.Bucket{
			{Actions: []openflow.Action{openflow.Output(q1.No())}},
			{Actions: []openflow.Action{openflow.Output(q2.No())}},
		},
	})
	sw.ApplyFlowMod(openflow.FlowMod{
		Command: openflow.FlowAdd, Priority: 1,
		Match:   openflow.Match{Fields: openflow.FieldInPort, InPort: p1.No()},
		Actions: []openflow.Action{openflow.ToGroup(2)},
	})
	p1.WriteFrame(frameFor(packet.Broadcast, src, "all"))
	mustRead(t, q1)
	mustRead(t, q2)
}

func TestTunnelEncapOnOutput(t *testing.T) {
	sw, _ := newTestSwitch(t)
	a1, a2 := packet.WorkerAddr(1, 1), packet.WorkerAddr(1, 2)
	p1, _ := sw.AddPort("w1", a1)
	tun, _ := sw.AddTunnelPort("tun0")
	if !tun.IsTunnel() {
		t.Fatal("tunnel port not marked")
	}
	sw.ApplyFlowMod(openflow.FlowMod{
		Command: openflow.FlowAdd, Priority: 100,
		Match: openflow.Match{
			Fields: openflow.FieldInPort | openflow.FieldDlDst,
			InPort: p1.No(), DlDst: a2,
		},
		Actions: []openflow.Action{openflow.SetTunnelDst("host-2"), openflow.Output(tun.No())},
	})
	inner := frameFor(a2, a1, "remote")
	p1.WriteFrame(inner)
	got := mustRead(t, tun)
	host, decap, err := DecapTunnel(got)
	if err != nil || host != "host-2" {
		t.Fatalf("host=%q err=%v", host, err)
	}
	if string(decap) != string(inner) {
		t.Fatal("inner frame mangled")
	}
}

func TestPortLifecycleEvents(t *testing.T) {
	sw, sink := newTestSwitch(t)
	p, _ := sw.AddPort("w1", packet.WorkerAddr(1, 1))
	if err := sw.RemovePort(p.No()); err != nil {
		t.Fatal(err)
	}
	if err := sw.RemovePort(p.No()); err == nil {
		t.Fatal("double remove should fail")
	}
	_, ports, _ := sink.counts()
	if ports != 2 { // add + delete
		t.Fatalf("port events = %d, want 2", ports)
	}
	if !p.Closed() {
		t.Fatal("removed port should be closed")
	}
	if sw.Port(p.No()) != nil {
		t.Fatal("removed port still resolvable")
	}
}

func TestStatsSnapshots(t *testing.T) {
	sw, _ := newTestSwitch(t)
	a1, a2 := packet.WorkerAddr(1, 1), packet.WorkerAddr(1, 2)
	p1, _ := sw.AddPort("w1", a1)
	p2, _ := sw.AddPort("w2", a2)
	sw.ApplyFlowMod(unicastRule(p1.No(), a1, a2, p2.No()))
	for i := 0; i < 10; i++ {
		p1.WriteFrame(frameFor(a2, a1, "s"))
	}
	for i := 0; i < 10; i++ {
		mustRead(t, p2)
	}
	var rx, tx uint64
	for _, ps := range sw.PortStatsSnapshot() {
		rx += ps.RxPackets
		tx += ps.TxPackets
	}
	if rx != 10 || tx != 10 {
		t.Fatalf("port stats rx=%d tx=%d", rx, tx)
	}
	fs := sw.FlowStatsSnapshot()
	if len(fs) != 1 || fs[0].Packets != 10 || fs[0].Bytes == 0 {
		t.Fatalf("flow stats = %+v", fs)
	}
}

func TestModifyRuleActions(t *testing.T) {
	sw, _ := newTestSwitch(t)
	a1, a2 := packet.WorkerAddr(1, 1), packet.WorkerAddr(1, 2)
	p1, _ := sw.AddPort("w1", a1)
	p2, _ := sw.AddPort("w2", a2)
	p3, _ := sw.AddPort("w3", packet.WorkerAddr(1, 3))
	sw.ApplyFlowMod(unicastRule(p1.No(), a1, a2, p2.No()))
	sw.ApplyFlowMod(openflow.FlowMod{
		Command: openflow.FlowModify,
		Match:   openflow.Match{Fields: openflow.FieldDlDst, DlDst: a2},
		Actions: []openflow.Action{openflow.Output(p3.No())},
	})
	p1.WriteFrame(frameFor(a2, a1, "mod"))
	mustRead(t, p3)
}

func TestFeaturesPorts(t *testing.T) {
	sw, _ := newTestSwitch(t)
	sw.AddPort("w1", packet.WorkerAddr(1, 1))
	sw.AddTunnelPort("tun0")
	if len(sw.Ports()) != 2 {
		t.Fatalf("ports = %d", len(sw.Ports()))
	}
	if sw.Name() != "host-1" || sw.DatapathID() != 1 {
		t.Fatal("identity accessors")
	}
}

func TestStoppedSwitchRejectsPorts(t *testing.T) {
	sw := New("h", 9, Options{})
	sw.Start()
	sw.Stop()
	if _, err := sw.AddPort("w", packet.WorkerAddr(1, 1)); err == nil {
		t.Fatal("AddPort after Stop should fail")
	}
}

func TestEncapDecapErrors(t *testing.T) {
	if _, _, err := DecapTunnel([]byte{0}); err != ErrBadEncap {
		t.Fatalf("short: %v", err)
	}
	if _, _, err := DecapTunnel([]byte{0, 9, 'a'}); err != ErrBadEncap {
		t.Fatalf("bad len: %v", err)
	}
	h, f, err := DecapTunnel(EncapTunnel("h", []byte("frame")))
	if err != nil || h != "h" || string(f) != "frame" {
		t.Fatal("round trip failed")
	}
}

package switchfabric

import (
	"time"

	"typhoon/internal/ring"
)

// QueueClass configures one egress class of the per-port weighted fair
// queueing discipline. Classes are indexed by position: a rule's set_queue
// action selects the class its frames are enqueued on.
type QueueClass struct {
	Name string `json:"name"`
	// Weight is the class's DRR share; larger weights drain proportionally
	// more bytes per scheduling round. Values <= 0 count as 1.
	Weight int `json:"weight"`
}

// drrQuantumUnit is the byte credit one weight unit earns per DRR round.
// Batch-encoded frames can exceed it; such a class carries a negative
// deficit and earns it back over subsequent rounds (readBatch runs extra
// rounds back-to-back when a sweep pops nothing, so oversized frames delay
// a class but never starve it).
const drrQuantumUnit = 2048

// qdisc is a per-port egress queueing discipline: one ring per class,
// drained by byte-accounted deficit round-robin. The enqueue side (switch
// pumps) is concurrency-safe; the dequeue side carries the scheduler state
// (cursor, deficits, scratch) unlocked and therefore requires the single
// consumer every port already has (its attached device or tunnel pump).
type qdisc struct {
	classes []qclass
	notify  chan struct{} // capacity 1; kicked on every enqueue

	// Consumer-side state.
	cur    int
	resume bool     // cur's visit was cut off by max with deficit left
	one    [][]byte // scratch for single-frame pops
}

type qclass struct {
	name    string
	ring    *ring.Ring
	quantum int
	deficit int
}

func newQdisc(classes []QueueClass, capacity int) *qdisc {
	q := &qdisc{
		classes: make([]qclass, len(classes)),
		notify:  make(chan struct{}, 1),
		one:     make([][]byte, 0, 1),
	}
	for i, c := range classes {
		w := c.Weight
		if w <= 0 {
			w = 1
		}
		q.classes[i] = qclass{
			name:    c.Name,
			ring:    ring.New(capacity),
			quantum: w * drrQuantumUnit,
		}
	}
	return q
}

// enqueue offers a frame to one class without blocking; out-of-range
// classes clamp to the last (lowest-weight, best-effort) class. It reports
// false when the class ring is full.
func (q *qdisc) enqueue(class uint32, frame []byte) bool {
	if int(class) >= len(q.classes) {
		class = uint32(len(q.classes) - 1)
	}
	if !q.classes[class].ring.TryEnqueue(frame) {
		return false
	}
	select {
	case q.notify <- struct{}{}:
	default:
	}
	return true
}

// readBatch drains up to max frames by deficit round-robin, waiting up to
// wait for the first frame. Each backlogged class earns its quantum per
// round and spends it by frame bytes; unspent deficit carries over while
// the class stays backlogged and is forfeited when it drains, the classic
// DRR discipline. Returns ring.ErrClosed only when every class ring is
// closed and empty.
func (q *qdisc) readBatch(dst [][]byte, max int, wait time.Duration) ([][]byte, error) {
	if max <= 0 {
		max = pumpBatchSize
	}
	var deadline time.Time
	advance := func() {
		q.cur++
		if q.cur == len(q.classes) {
			q.cur = 0
		}
	}
	for {
		closedAll := true
		backlogged := false
		for range q.classes {
			c := &q.classes[q.cur]
			resumed := q.resume
			q.resume = false
			if c.ring.Len() == 0 {
				c.deficit = 0
				if !c.ring.Closed() {
					closedAll = false
				}
				advance()
				continue
			}
			closedAll = false
			backlogged = true
			// A visit interrupted by max resumes spending its carried
			// deficit; a fresh quantum per visit would let short reads
			// erode the weight ratio (the class earns per round but can
			// only spend up to max).
			if !resumed {
				c.deficit += c.quantum
			}
			for c.deficit > 0 && len(dst) < max {
				q.one = q.one[:0]
				one, err := c.ring.DequeueBatch(q.one, 1, 0)
				if err != nil || len(one) == 0 {
					c.deficit = 0
					break
				}
				q.one = one
				c.deficit -= len(one[0])
				dst = append(dst, one[0])
			}
			if len(dst) >= max {
				if c.deficit > 0 && c.ring.Len() > 0 {
					q.resume = true // stay on cur, no fresh quantum
				} else {
					advance()
				}
				return dst, nil
			}
			advance()
		}
		if len(dst) > 0 {
			return dst, nil
		}
		if closedAll {
			return dst, ring.ErrClosed
		}
		if backlogged {
			// Work conservation: a backlogged class whose frames outsize
			// its quantum (batch-encoded frames can) pops nothing this
			// round and owes a negative deficit. With the link otherwise
			// idle, DRR rounds proceed at link speed — re-sweep so quanta
			// accrue immediately instead of once per timer wait, which
			// would stall the queue (and deadlock shutdown drains).
			continue
		}
		if wait <= 0 {
			return dst, nil
		}
		if deadline.IsZero() {
			deadline = time.Now().Add(wait)
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return dst, nil
		}
		timer := time.NewTimer(remain)
		select {
		case <-q.notify:
			timer.Stop()
		case <-timer.C:
			return dst, nil
		}
	}
}

// queueLen sums frames queued across all classes.
func (q *qdisc) queueLen() int {
	n := 0
	for i := range q.classes {
		n += q.classes[i].ring.Len()
	}
	return n
}

// close closes every class ring and kicks the notify channel so a consumer
// blocked in readBatch re-sweeps and observes the closure immediately.
func (q *qdisc) close() {
	for i := range q.classes {
		q.classes[i].ring.Close()
	}
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// QueueStats is one per-class egress-queue row of a port snapshot.
type QueueStats struct {
	Class    string `json:"class"`
	Depth    int    `json:"depth"`
	Enqueued uint64 `json:"enqueued"`
	Dropped  uint64 `json:"dropped"`
}

// queueStats snapshots per-class counters.
func (q *qdisc) queueStats() []QueueStats {
	out := make([]QueueStats, len(q.classes))
	for i := range q.classes {
		st := q.classes[i].ring.Stats()
		out[i] = QueueStats{
			Class:    q.classes[i].name,
			Depth:    q.classes[i].ring.Len(),
			Enqueued: st.Enqueued,
			Dropped:  st.Dropped,
		}
	}
	return out
}

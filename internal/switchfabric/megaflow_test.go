package switchfabric

import (
	"testing"
	"time"

	"typhoon/internal/openflow"
	"typhoon/internal/packet"
)

// dstRule matches on destination only — the shape the megaflow cache is
// built for: one wildcarded entry absorbing every source talking to dst.
func dstRule(dst packet.Addr, outPort uint32, priority uint16) openflow.FlowMod {
	return openflow.FlowMod{
		Command:  openflow.FlowAdd,
		Priority: priority,
		Match:    openflow.Match{Fields: openflow.FieldDlDst, DlDst: dst},
		Actions:  []openflow.Action{openflow.Output(outPort)},
	}
}

// newMegaTestSwitch builds a started switch with the given extra options.
func newMegaTestSwitch(t *testing.T, extra ...Option) *Switch {
	t.Helper()
	opts := []Option{Options{RingCapacity: 256, IdleScanInterval: 10 * time.Millisecond}}
	opts = append(opts, extra...)
	sw := New("host-m", 7, opts...)
	sw.Start()
	t.Cleanup(sw.Stop)
	return sw
}

// scatter writes n frames to in, one per distinct source address, all
// destined for dst, and asserts each one arrives on out.
func scatter(t *testing.T, in, out *Port, dst packet.Addr, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		src := packet.WorkerAddr(9, uint32(i+1))
		if !in.WriteFrame(frameFor(dst, src, "scatter")) {
			t.Fatalf("WriteFrame %d failed", i)
		}
		f, err := packet.Decode(mustRead(t, out))
		if err != nil || f.Src != src || f.Dst != dst {
			t.Fatalf("frame %d: decoded %+v err=%v", i, f, err)
		}
	}
}

// TestMegaflowCoalescesScatter drives many distinct sources at a
// destination-only rule. Every frame misses the exact-match microflow
// cache (the key includes the source), but after the first upcall the
// megaflow entry — masked to the destination field alone — answers all of
// them: one slow-path lookup total, regardless of source fan-in.
func TestMegaflowCoalescesScatter(t *testing.T) {
	for _, tc := range []struct {
		name  string
		extra []Option
	}{
		{"microflow-on", nil},
		{"microflow-off", []Option{WithoutMicroflowCache()}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sw := newMegaTestSwitch(t, tc.extra...)
			a2 := packet.WorkerAddr(1, 2)
			p1, _ := sw.AddPort("w1", packet.WorkerAddr(1, 1))
			p2, _ := sw.AddPort("w2", a2)
			if err := sw.ApplyFlowMod(dstRule(a2, p2.No(), 100)); err != nil {
				t.Fatal(err)
			}
			const n = 50
			scatter(t, p1, p2, a2, n)
			hits, misses := sw.MegaflowStats()
			if hits != n-1 || misses != 1 {
				t.Fatalf("megaflow hits/misses = %d/%d, want %d/1", hits, misses, n-1)
			}
			if up := sw.UpcallCount(); up != 1 {
				t.Fatalf("upcalls = %d, want 1 (megaflow should absorb the scatter)", up)
			}
		})
	}
}

// TestMegaflowInvalidation covers the staleness hazard of a wildcarded
// cache: after the rule it answers for is deleted and replaced, frames
// must follow the new rule, not the cached entry.
func TestMegaflowInvalidation(t *testing.T) {
	sw := newMegaTestSwitch(t)
	a2 := packet.WorkerAddr(1, 2)
	p1, _ := sw.AddPort("w1", packet.WorkerAddr(1, 1))
	p2, _ := sw.AddPort("w2", a2)
	p3, _ := sw.AddPort("w3", packet.WorkerAddr(1, 3))

	if err := sw.ApplyFlowMod(dstRule(a2, p2.No(), 100)); err != nil {
		t.Fatal(err)
	}
	scatter(t, p1, p2, a2, 5) // warm the megaflow entry

	// Replace the route: delete the old rule, install one toward p3.
	if err := sw.ApplyFlowMod(openflow.FlowMod{
		Command: openflow.FlowDeleteStrict, Priority: 100,
		Match: openflow.Match{Fields: openflow.FieldDlDst, DlDst: a2},
	}); err != nil {
		t.Fatal(err)
	}
	if err := sw.ApplyFlowMod(dstRule(a2, p3.No(), 100)); err != nil {
		t.Fatal(err)
	}
	scatter(t, p1, p3, a2, 5) // must hit the fresh rule, not the stale entry
}

// TestMegaflowOverlapPriority installs a broad low-priority rule and a
// narrow high-priority override. The megaflow mask for frames matching the
// broad rule must include the source field (the probe consulted the
// narrow sub-table on the way), so override traffic can never be captured
// by a cached broad decision or vice versa.
func TestMegaflowOverlapPriority(t *testing.T) {
	sw := newMegaTestSwitch(t)
	a2 := packet.WorkerAddr(1, 2)
	special := packet.WorkerAddr(9, 500)
	p1, _ := sw.AddPort("w1", packet.WorkerAddr(1, 1))
	p2, _ := sw.AddPort("w2", a2)
	p3, _ := sw.AddPort("w3", packet.WorkerAddr(1, 3))

	if err := sw.ApplyFlowMod(dstRule(a2, p2.No(), 100)); err != nil {
		t.Fatal(err)
	}
	if err := sw.ApplyFlowMod(openflow.FlowMod{
		Command:  openflow.FlowAdd,
		Priority: 200,
		Match: openflow.Match{
			Fields: openflow.FieldDlSrc | openflow.FieldDlDst,
			DlSrc:  special, DlDst: a2,
		},
		Actions: []openflow.Action{openflow.Output(p3.No())},
	}); err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 3; round++ {
		// Broad traffic from rotating sources lands on p2...
		src := packet.WorkerAddr(9, uint32(100+round))
		if !p1.WriteFrame(frameFor(a2, src, "broad")) {
			t.Fatal("WriteFrame failed")
		}
		f, err := packet.Decode(mustRead(t, p2))
		if err != nil || f.Src != src {
			t.Fatalf("round %d broad: %+v err=%v", round, f, err)
		}
		// ...while the override source always lands on p3.
		if !p1.WriteFrame(frameFor(a2, special, "override")) {
			t.Fatal("WriteFrame failed")
		}
		f, err = packet.Decode(mustRead(t, p3))
		if err != nil || f.Src != special {
			t.Fatalf("round %d override: %+v err=%v", round, f, err)
		}
	}
}

// TestMegaflowDisabled pins the opt-out path: with both caches off every
// frame is an upcall and the megaflow counters stay untouched.
func TestMegaflowDisabled(t *testing.T) {
	sw := newMegaTestSwitch(t, WithoutMicroflowCache(), WithoutMegaflowCache())
	a2 := packet.WorkerAddr(1, 2)
	p1, _ := sw.AddPort("w1", packet.WorkerAddr(1, 1))
	p2, _ := sw.AddPort("w2", a2)
	if err := sw.ApplyFlowMod(dstRule(a2, p2.No(), 100)); err != nil {
		t.Fatal(err)
	}
	const n = 10
	scatter(t, p1, p2, a2, n)
	if hits, misses := sw.MegaflowStats(); hits != 0 || misses != 0 {
		t.Fatalf("megaflow stats = %d/%d with cache disabled", hits, misses)
	}
	if up := sw.UpcallCount(); up != n {
		t.Fatalf("upcalls = %d, want %d", up, n)
	}
}

// Package switchfabric implements the host-based software SDN switch of the
// Typhoon data plane: an OpenFlow-programmable forwarding element whose
// ports are DPDK-style ring buffers connecting local workers, tunnels and
// the controller.
//
// The switch implements exactly the rule vocabulary of Table 3: matching on
// in_port / dl_src / dl_dst / eth_type, output to one or many ports (the
// serialization-free broadcast of Fig 9), set_tun_dst + tunnel-port output
// for remote transfer, controller output for PACKET_IN, and select groups
// with destination rewrite for SDN-level load balancing (§4).
package switchfabric

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"typhoon/internal/openflow"
	"typhoon/internal/packet"
	"typhoon/internal/ring"
)

// ControllerSink receives asynchronous switch-to-controller events. The
// in-process agent forwards them over the OpenFlow connection.
type ControllerSink interface {
	PacketIn(openflow.PacketIn)
	PortStatus(openflow.PortStatus)
	FlowRemoved(openflow.FlowRemoved)
}

// Options configures a Switch. The zero value selects every default; it
// also implements Option, so a literal can be passed straight to New
// alongside (or instead of) With* options.
type Options struct {
	// RingCapacity sizes each port's RX and TX rings (frames). Zero
	// selects the ring package's default capacity.
	RingCapacity int
	// IdleScanInterval is how often idle timeouts are evaluated. Zero
	// selects 50 ms.
	IdleScanInterval time.Duration
}

// Option configures a Switch under construction. An Options literal is
// itself an Option (it replaces the whole configuration), which keeps the
// pre-options call style `New(name, dpid, Options{...})` compiling.
type Option interface{ apply(*Options) }

func (o Options) apply(dst *Options) { *dst = o }

type optionFunc func(*Options)

func (f optionFunc) apply(o *Options) { f(o) }

// WithRingCapacity sizes each port's RX and TX rings in frames.
// Default: the ring package's default capacity.
func WithRingCapacity(n int) Option {
	return optionFunc(func(o *Options) { o.RingCapacity = n })
}

// WithIdleScanInterval sets how often flow-rule idle timeouts are
// evaluated. Default: 50 ms.
func WithIdleScanInterval(d time.Duration) Option {
	return optionFunc(func(o *Options) { o.IdleScanInterval = d })
}

// Switch is a host-local software SDN switch.
type Switch struct {
	name string
	dpid uint64
	opts Options

	mu       sync.RWMutex
	ports    map[uint32]*Port
	nextPort uint32
	groups   map[uint32]*group
	sink     ControllerSink

	flows flowTable

	stopOnce sync.Once
	stopped  chan struct{}
	wg       sync.WaitGroup

	rxDropsNoMatch atomic.Uint64
	forwarded      atomic.Uint64
	replicated     atomic.Uint64
}

// Counters is a switch-level snapshot of frame accounting, the per-switch
// rows of the cluster observability layer.
type Counters struct {
	// RxFrames counts frames accepted from attached devices (all ports).
	RxFrames uint64
	// TxFrames counts frames delivered toward attached devices.
	TxFrames uint64
	// Forwarded counts frame deliveries made by the pipeline (equals
	// TxFrames plus controller punts).
	Forwarded uint64
	// Replicated counts extra copies beyond the first delivery of a frame
	// (GroupAll broadcast, multi-output rules, mirror taps).
	Replicated uint64
	// Dropped counts frames lost in this switch: table misses, full egress
	// rings, and full ingress rings.
	Dropped uint64
}

type group struct {
	typ     openflow.GroupType
	buckets []openflow.Bucket
	next    atomic.Uint64 // weighted round-robin cursor
	weights []uint32      // cumulative weights for bucket selection
	total   uint32
}

// Port is one switch port. The device side (worker I/O layer, tunnel pump,
// controller agent) writes frames in with WriteFrame and reads frames out
// with ReadBatch; the switch side runs a pump goroutine per port.
type Port struct {
	no     uint32
	name   string
	addr   packet.Addr
	tunnel bool

	rx *ring.Ring // device -> switch
	tx *ring.Ring // switch -> device

	rxPackets atomic.Uint64
	rxBytes   atomic.Uint64
	txPackets atomic.Uint64
	txBytes   atomic.Uint64
	txDropped atomic.Uint64
}

// No returns the port number.
func (p *Port) No() uint32 { return p.no }

// Name returns the port name.
func (p *Port) Name() string { return p.name }

// Addr returns the worker address bound to the port (zero for tunnels).
func (p *Port) Addr() packet.Addr { return p.addr }

// IsTunnel reports whether the port is a tunnel port.
func (p *Port) IsTunnel() bool { return p.tunnel }

// WriteFrame submits a frame from the attached device into the switch.
// It reports false when the ingress ring is full (frame dropped).
func (p *Port) WriteFrame(frame []byte) bool { return p.rx.TryEnqueue(frame) }

// ReadBatch reads frames the switch delivered to this port, waiting up to
// wait for the first frame. It returns ring.ErrClosed after the port is
// removed and drained.
func (p *Port) ReadBatch(dst [][]byte, max int, wait time.Duration) ([][]byte, error) {
	return p.tx.DequeueBatch(dst, max, wait)
}

// Closed reports whether the port has been removed from the switch.
func (p *Port) Closed() bool { return p.rx.Closed() }

// QueueLen reports frames queued toward the attached device, the
// switch-side component of a worker's queue-status metric.
func (p *Port) QueueLen() int { return p.tx.Len() }

// New builds a switch named after its host with the given datapath ID,
// configured by options (see Options for the defaults).
func New(name string, dpid uint64, options ...Option) *Switch {
	var opts Options
	for _, o := range options {
		o.apply(&opts)
	}
	if opts.IdleScanInterval <= 0 {
		opts.IdleScanInterval = 50 * time.Millisecond
	}
	return &Switch{
		name:    name,
		dpid:    dpid,
		opts:    opts,
		ports:   make(map[uint32]*Port),
		groups:  make(map[uint32]*group),
		stopped: make(chan struct{}),
	}
}

// Name returns the switch (host) name.
func (s *Switch) Name() string { return s.name }

// DatapathID returns the datapath identifier.
func (s *Switch) DatapathID() uint64 { return s.dpid }

// SetController attaches the controller event sink.
func (s *Switch) SetController(sink ControllerSink) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sink = sink
}

// Start launches the idle-timeout scanner. Port pumps start as ports are
// added.
func (s *Switch) Start() {
	s.wg.Add(1)
	go s.idleScanner()
}

// Stop halts the switch: all ports are closed and pumps drained.
func (s *Switch) Stop() {
	s.stopOnce.Do(func() { close(s.stopped) })
	s.mu.Lock()
	for _, p := range s.ports {
		p.rx.Close()
		p.tx.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// AddPort creates a worker port bound to addr and starts its pump.
func (s *Switch) AddPort(name string, addr packet.Addr) (*Port, error) {
	return s.addPort(name, addr, false)
}

// AddTunnelPort creates the host's tunnel port.
func (s *Switch) AddTunnelPort(name string) (*Port, error) {
	return s.addPort(name, packet.Addr{}, true)
}

func (s *Switch) addPort(name string, addr packet.Addr, tunnel bool) (*Port, error) {
	s.mu.Lock()
	select {
	case <-s.stopped:
		s.mu.Unlock()
		return nil, fmt.Errorf("switchfabric: switch %s stopped", s.name)
	default:
	}
	s.nextPort++
	p := &Port{
		no:     s.nextPort,
		name:   name,
		addr:   addr,
		tunnel: tunnel,
		rx:     ring.New(s.opts.RingCapacity),
		tx:     ring.New(s.opts.RingCapacity),
	}
	s.ports[p.no] = p
	sink := s.sink
	s.mu.Unlock()

	s.wg.Add(1)
	go s.pump(p)

	if sink != nil {
		sink.PortStatus(openflow.PortStatus{
			Reason: openflow.PortAdded,
			Port:   openflow.PortInfo{No: p.no, Name: p.name},
			Addr:   p.addr,
		})
	}
	return p, nil
}

// RemovePort removes a port, closing its rings and emitting a PortStatus
// event. A worker crash manifests as exactly this event (Fig 10's
// SwitchPortChanged notification).
func (s *Switch) RemovePort(no uint32) error {
	s.mu.Lock()
	p, ok := s.ports[no]
	if ok {
		delete(s.ports, no)
	}
	sink := s.sink
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("switchfabric: no port %d", no)
	}
	p.rx.Close()
	p.tx.Close()
	if sink != nil {
		sink.PortStatus(openflow.PortStatus{
			Reason: openflow.PortDeleted,
			Port:   openflow.PortInfo{No: p.no, Name: p.name},
			Addr:   p.addr,
		})
	}
	return nil
}

// Port returns the port with the given number, or nil.
func (s *Switch) Port(no uint32) *Port {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ports[no]
}

// Ports lists current ports for FEATURES replies.
func (s *Switch) Ports() []openflow.PortInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]openflow.PortInfo, 0, len(s.ports))
	for _, p := range s.ports {
		out = append(out, openflow.PortInfo{No: p.no, Name: p.name})
	}
	return out
}

// ApplyFlowMod programs the flow table.
func (s *Switch) ApplyFlowMod(fm openflow.FlowMod) error {
	switch fm.Command {
	case openflow.FlowAdd:
		s.flows.add(fm)
	case openflow.FlowModify:
		s.flows.modify(fm)
	case openflow.FlowDelete, openflow.FlowDeleteStrict:
		removed := s.flows.remove(fm.Match, fm.Priority, fm.Command == openflow.FlowDeleteStrict)
		s.notifyRemoved(removed, openflow.RemovedDelete)
	default:
		return fmt.Errorf("switchfabric: bad flow command %d", fm.Command)
	}
	return nil
}

// ApplyGroupMod programs the group table.
func (s *Switch) ApplyGroupMod(gm openflow.GroupMod) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch gm.Command {
	case openflow.GroupAdd, openflow.GroupModify:
		g := &group{typ: gm.Type, buckets: gm.Buckets}
		for _, b := range gm.Buckets {
			w := uint32(b.Weight)
			if w == 0 {
				w = 1
			}
			g.total += w
			g.weights = append(g.weights, g.total)
		}
		s.groups[gm.GroupID] = g
	case openflow.GroupDelete:
		delete(s.groups, gm.GroupID)
	default:
		return fmt.Errorf("switchfabric: bad group command %d", gm.Command)
	}
	return nil
}

// Inject processes a controller PACKET_OUT: the data frame is run through
// the explicit action list with in_port as given.
func (s *Switch) Inject(po openflow.PacketOut) error {
	if len(po.Data) == 0 {
		return fmt.Errorf("switchfabric: empty packet-out")
	}
	if n := s.execute(po.InPort, po.Data, po.Actions, 0); n > 0 {
		s.forwarded.Add(uint64(n))
		if n > 1 {
			s.replicated.Add(uint64(n - 1))
		}
	}
	return nil
}

// PortStatsSnapshot returns per-port counters.
func (s *Switch) PortStatsSnapshot() []openflow.PortStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]openflow.PortStats, 0, len(s.ports))
	for _, p := range s.ports {
		rs := p.rx.Stats()
		out = append(out, openflow.PortStats{
			PortNo:    p.no,
			RxPackets: p.rxPackets.Load(),
			RxBytes:   p.rxBytes.Load(),
			TxPackets: p.txPackets.Load(),
			TxBytes:   p.txBytes.Load(),
			RxDropped: rs.Dropped,
			TxDropped: p.txDropped.Load(),
		})
	}
	return out
}

// FlowStatsSnapshot returns per-rule counters.
func (s *Switch) FlowStatsSnapshot() []openflow.FlowStats { return s.flows.snapshot() }

// WipeFlows destroys the entire flow table — the chaos subsystem's
// switch-state fault. Unlike ordinary deletion, every wiped rule is
// reported to the controller regardless of its FlagSendFlowRem flag, so
// reconciliation knows its installed state is gone and reinstalls.
func (s *Switch) WipeFlows() int {
	removed := s.flows.wipe()
	s.notify(removed, openflow.RemovedDelete, true)
	return len(removed)
}

// RuleCount reports the number of installed rules.
func (s *Switch) RuleCount() int { return s.flows.len() }

// NoMatchDrops reports frames dropped due to table miss.
func (s *Switch) NoMatchDrops() uint64 { return s.rxDropsNoMatch.Load() }

// CountersSnapshot aggregates the switch's frame accounting across ports.
func (s *Switch) CountersSnapshot() Counters {
	var c Counters
	c.Forwarded = s.forwarded.Load()
	c.Replicated = s.replicated.Load()
	c.Dropped = s.rxDropsNoMatch.Load()
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, p := range s.ports {
		rs := p.rx.Stats()
		c.RxFrames += p.rxPackets.Load()
		c.TxFrames += p.txPackets.Load()
		c.Dropped += rs.Dropped + p.txDropped.Load()
	}
	return c
}

// pump moves frames from a port's RX ring through the pipeline.
func (s *Switch) pump(p *Port) {
	defer s.wg.Done()
	var batch [][]byte
	for {
		batch = batch[:0]
		var err error
		batch, err = p.rx.DequeueBatch(batch, 64, time.Second)
		if err != nil {
			return
		}
		for _, frame := range batch {
			s.process(p, frame)
		}
	}
}

func (s *Switch) process(in *Port, frame []byte) {
	dst, src, ok := packet.PeekAddrs(frame)
	if !ok {
		s.rxDropsNoMatch.Add(1)
		return
	}
	in.rxPackets.Add(1)
	in.rxBytes.Add(uint64(len(frame)))
	if packet.Traced(frame) {
		frame = packet.AppendTraceHop(frame, packet.TraceHop{
			Kind: packet.HopSwitchIn, Actor: s.dpid, Detail: in.no,
			At: time.Now().UnixNano(),
		})
	}
	etherType := binary.BigEndian.Uint16(frame[12:14])
	r := s.flows.lookup(in.no, src, dst, etherType)
	if r == nil {
		s.rxDropsNoMatch.Add(1)
		return
	}
	r.touch(len(frame))
	if packet.Traced(frame) {
		frame = packet.AppendTraceHop(frame, packet.TraceHop{
			Kind: packet.HopMatch, Actor: s.dpid, Detail: uint32(r.priority),
			At: time.Now().UnixNano(),
		})
	}
	n := s.execute(in.no, frame, r.actions, 0)
	if n > 0 {
		s.forwarded.Add(uint64(n))
		if n > 1 {
			s.replicated.Add(uint64(n - 1))
		}
	}
}

// execute runs an action list on a frame and returns the number of copies
// actually delivered (ports plus controller punts). depth guards group
// recursion.
func (s *Switch) execute(inPort uint32, frame []byte, actions []openflow.Action, depth int) int {
	if depth > 2 {
		return 0
	}
	tunDst := ""
	delivered := 0
	for _, a := range actions {
		switch a.Type {
		case openflow.ActSetTunnelDst:
			tunDst = a.Host
		case openflow.ActSetDlDst:
			// Copy before rewrite: other outputs may alias this frame.
			cp := make([]byte, len(frame))
			copy(cp, frame)
			packet.RewriteDst(cp, a.Addr)
			frame = cp
		case openflow.ActOutput:
			delivered += s.deliver(a.Port, frame, tunDst)
		case openflow.ActGroup:
			delivered += s.executeGroup(inPort, frame, a.Group, depth+1)
		}
	}
	return delivered
}

func (s *Switch) executeGroup(inPort uint32, frame []byte, id uint32, depth int) int {
	s.mu.RLock()
	g := s.groups[id]
	s.mu.RUnlock()
	if g == nil {
		return 0
	}
	switch g.typ {
	case openflow.GroupSelect:
		if g.total == 0 {
			return 0
		}
		// Weighted round robin over cumulative weights.
		slot := uint32(g.next.Add(1)-1) % g.total
		for i, cum := range g.weights {
			if slot < cum {
				return s.execute(inPort, frame, g.buckets[i].Actions, depth)
			}
		}
	case openflow.GroupAll:
		delivered := 0
		for _, b := range g.buckets {
			delivered += s.execute(inPort, frame, b.Actions, depth)
		}
		return delivered
	}
	return 0
}

// deliver sends one copy of a frame toward a port (or the controller) and
// reports how many copies were actually delivered (0 or 1).
func (s *Switch) deliver(portNo uint32, frame []byte, tunDst string) int {
	if portNo == openflow.PortController {
		s.mu.RLock()
		sink := s.sink
		s.mu.RUnlock()
		if sink == nil {
			return 0
		}
		if packet.Traced(frame) {
			frame = packet.AppendTraceHop(frame, packet.TraceHop{
				Kind: packet.HopController, Actor: s.dpid, Detail: portNo,
				At: time.Now().UnixNano(),
			})
		}
		sink.PacketIn(openflow.PacketIn{InPort: portNo, Reason: openflow.ReasonAction, Data: frame})
		return 1
	}
	s.mu.RLock()
	p := s.ports[portNo]
	s.mu.RUnlock()
	if p == nil {
		return 0
	}
	if packet.Traced(frame) {
		kind := packet.HopEgress
		if p.tunnel {
			kind = packet.HopTunnel
		}
		// AppendTraceHop copies, so replicated deliveries that alias this
		// frame each record their own egress hop.
		frame = packet.AppendTraceHop(frame, packet.TraceHop{
			Kind: kind, Actor: s.dpid, Detail: portNo,
			At: time.Now().UnixNano(),
		})
	}
	out := frame
	if p.tunnel {
		out = EncapTunnel(tunDst, frame)
	}
	if p.tx.TryEnqueue(out) {
		p.txPackets.Add(1)
		p.txBytes.Add(uint64(len(out)))
		return 1
	}
	p.txDropped.Add(1)
	return 0
}

func (s *Switch) idleScanner() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.opts.IdleScanInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stopped:
			return
		case now := <-ticker.C:
			removed := s.flows.expire(now)
			s.notifyRemoved(removed, openflow.RemovedIdleTimeout)
		}
	}
}

func (s *Switch) notifyRemoved(rules []*rule, reason openflow.FlowRemovedReason) {
	s.notify(rules, reason, false)
}

// notify emits FlowRemoved events; forced bypasses the FlagSendFlowRem
// opt-in (used when rules vanish behind the controller's back).
func (s *Switch) notify(rules []*rule, reason openflow.FlowRemovedReason, forced bool) {
	if len(rules) == 0 {
		return
	}
	s.mu.RLock()
	sink := s.sink
	s.mu.RUnlock()
	if sink == nil {
		return
	}
	for _, r := range rules {
		if !forced && r.flags&openflow.FlagSendFlowRem == 0 {
			continue
		}
		sink.FlowRemoved(openflow.FlowRemoved{
			Match:    r.match,
			Priority: r.priority,
			Cookie:   r.cookie,
			Reason:   reason,
			Packets:  r.packets.Load(),
			Bytes:    r.bytes.Load(),
		})
	}
}

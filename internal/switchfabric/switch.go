// Package switchfabric implements the host-based software SDN switch of the
// Typhoon data plane: an OpenFlow-programmable forwarding element whose
// ports are DPDK-style ring buffers connecting local workers, tunnels and
// the controller.
//
// The switch implements exactly the rule vocabulary of Table 3: matching on
// in_port / dl_src / dl_dst / eth_type, output to one or many ports (the
// serialization-free broadcast of Fig 9), set_tun_dst + tunnel-port output
// for remote transfer, controller output for PACKET_IN, and select groups
// with destination rewrite for SDN-level load balancing (§4).
//
// # Fast path
//
// The per-frame pipeline is engineered to take zero locks and make zero
// allocations in steady state:
//
//   - Each port pump owns a two-level flow cache in front of the flow
//     table — an exact-match microflow cache (microflow.go) and a
//     wildcarded megaflow cache (megaflow.go) — both invalidated by a
//     generation counter that every control mutation bumps. Misses fall
//     through to the mask-staged classifier (flowtable.go), whose cost
//     scales with distinct rule masks, not rule count.
//   - Ports, groups and the controller sink are read from an immutable
//     dataView snapshot swapped atomically on control-plane changes.
//   - Frames are processed in batches: the view, the generation and a
//     coarse wall-clock stamp (internal/clock) are loaded once per batch,
//     and counters are accumulated locally and flushed once per batch.
//   - Frame buffers follow the unique-ownership protocol of internal/packet:
//     the first enqueue of a frame hands the original slice to exactly one
//     egress ring; every additional delivery (broadcast, multi-output,
//     mirror) gets its own pooled copy, and controller punts always copy.
//     The receiving transport may therefore recycle every frame it reads.
package switchfabric

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"typhoon/internal/clock"
	"typhoon/internal/openflow"
	"typhoon/internal/packet"
	"typhoon/internal/ring"
)

// ControllerSink receives asynchronous switch-to-controller events. The
// in-process agent forwards them over the OpenFlow connection.
type ControllerSink interface {
	PacketIn(openflow.PacketIn)
	PortStatus(openflow.PortStatus)
	FlowRemoved(openflow.FlowRemoved)
}

// Options configures a Switch. The zero value selects every default; it
// also implements Option, so a literal can be passed straight to New
// alongside (or instead of) With* options.
type Options struct {
	// RingCapacity sizes each port's RX and TX rings (frames). Zero
	// selects the ring package's default capacity.
	RingCapacity int
	// IdleScanInterval is how often idle timeouts are evaluated. Zero
	// selects 50 ms.
	IdleScanInterval time.Duration
	// DisableMicroflowCache turns off the per-port exact-match cache so
	// every frame takes the megaflow probe (or, with both caches off, the
	// full flow-table lookup). Benchmarks use it to measure the cache's
	// contribution; production has no reason to.
	DisableMicroflowCache bool
	// DisableMegaflowCache turns off the per-port wildcarded megaflow
	// cache so microflow misses go straight to the staged flow table.
	DisableMegaflowCache bool
	// EgressQueues, when non-empty, replaces every port's single FIFO TX
	// ring with per-class queues drained by deficit round-robin (weighted
	// fair queueing). Rules pick a class with the set_queue action;
	// unclassified traffic uses class 0. Applies to worker and tunnel ports
	// alike, so tunnels inherit WFQ through the same egress path.
	EgressQueues []QueueClass
}

// Option configures a Switch under construction. An Options literal is
// itself an Option (it replaces the whole configuration), which keeps the
// pre-options call style `New(name, dpid, Options{...})` compiling.
type Option interface{ apply(*Options) }

func (o Options) apply(dst *Options) { *dst = o }

type optionFunc func(*Options)

func (f optionFunc) apply(o *Options) { f(o) }

// WithRingCapacity sizes each port's RX and TX rings in frames.
// Default: the ring package's default capacity.
func WithRingCapacity(n int) Option {
	return optionFunc(func(o *Options) { o.RingCapacity = n })
}

// WithIdleScanInterval sets how often flow-rule idle timeouts are
// evaluated. Default: 50 ms.
func WithIdleScanInterval(d time.Duration) Option {
	return optionFunc(func(o *Options) { o.IdleScanInterval = d })
}

// WithoutMicroflowCache disables the per-port exact-match cache.
func WithoutMicroflowCache() Option {
	return optionFunc(func(o *Options) { o.DisableMicroflowCache = true })
}

// WithoutMegaflowCache disables the per-port wildcarded megaflow cache.
func WithoutMegaflowCache() Option {
	return optionFunc(func(o *Options) { o.DisableMegaflowCache = true })
}

// WithEgressQueues enables per-class weighted fair queueing on every port.
func WithEgressQueues(classes ...QueueClass) Option {
	return optionFunc(func(o *Options) { o.EgressQueues = classes })
}

// pumpBatchSize is how many frames a port pump drains per wakeup; trace
// checks, clock reads and counter flushes amortize over the batch.
const pumpBatchSize = 64

// Switch is a host-local software SDN switch.
type Switch struct {
	name string
	dpid uint64
	opts Options

	mu       sync.Mutex
	ports    map[uint32]*Port
	nextPort uint32
	groups   map[uint32]*group
	meters   map[uint32]*meter

	// sinks are the attached controller channels. PACKET_IN broadcasts to
	// every sink (each replicated controller filters by its own shard);
	// PORT_STATUS and FLOW_REMOVED go to the master only, because exactly
	// one controller may react to switch events (fault steering, rule
	// reinstallation) without duplicating work.
	sinks       []ControllerSink
	master      ControllerSink
	masterEpoch uint64
	// pendingEv buffers master-only events raised while the master role is
	// vacant (a failover window); they flush to the next master so no
	// fault or rule-expiry notification is lost across a controller crash.
	pendingEv []masterEvent

	// ctlSinks is the lock-free snapshot of sinks the punt path reads.
	// Kept outside dataView so controller churn (attach/detach during
	// failover) does not bump the flow-cache generation: the cached
	// forwarding path stays hot while the control plane re-homes.
	ctlSinks atomic.Pointer[[]ControllerSink]

	// view is the immutable snapshot of ports/groups the data path reads;
	// rebuilt under mu on every control-plane change.
	view atomic.Pointer[dataView]
	// gen invalidates microflow caches; bumped inside the mutating critical
	// section of every flow-table, group-table and port change.
	gen atomic.Uint64

	flows flowTable

	stopOnce sync.Once
	stopped  chan struct{}
	wg       sync.WaitGroup

	rxDropsNoMatch atomic.Uint64
	malformed      atomic.Uint64
	forwarded      atomic.Uint64
	replicated     atomic.Uint64
	mfHits         atomic.Uint64
	mfMisses       atomic.Uint64
	megaHits       atomic.Uint64
	megaMisses     atomic.Uint64
	upcalls        atomic.Uint64
	meterDrops     atomic.Uint64
}

// dataView is the lock-free snapshot the per-frame path reads. Its maps are
// never mutated after publication (meter objects are internally atomic, so
// rate retunes never require a new view).
type dataView struct {
	ports  map[uint32]*Port
	groups map[uint32]*group
	meters map[uint32]*meter
}

// masterEvent is one buffered master-only event (exactly one field set).
type masterEvent struct {
	ps *openflow.PortStatus
	fr *openflow.FlowRemoved
}

// pendingEventCap bounds the vacant-master event buffer (drop-oldest).
const pendingEventCap = 256

// Counters is a switch-level snapshot of frame accounting, the per-switch
// rows of the cluster observability layer.
type Counters struct {
	// RxFrames counts frames accepted from attached devices (all ports).
	RxFrames uint64
	// TxFrames counts frames delivered toward attached devices.
	TxFrames uint64
	// Forwarded counts frame deliveries made by the pipeline (equals
	// TxFrames plus controller punts).
	Forwarded uint64
	// Replicated counts extra copies beyond the first delivery of a frame
	// (GroupAll broadcast, multi-output rules, mirror taps).
	Replicated uint64
	// Dropped counts frames lost in this switch: malformed frames, table
	// misses, full egress rings, and full ingress rings.
	Dropped uint64
	// Malformed counts received frames discarded before lookup because
	// their header failed to parse (also included in Dropped).
	Malformed uint64
	// MicroflowHits and MicroflowMisses count exact-match cache outcomes
	// across all port pumps.
	MicroflowHits   uint64
	MicroflowMisses uint64
	// MegaflowHits and MegaflowMisses count wildcarded-cache outcomes for
	// frames that missed the microflow cache.
	MegaflowHits   uint64
	MegaflowMisses uint64
	// Upcalls counts slow-path classifier lookups (both caches missed, or
	// caches disabled).
	Upcalls uint64
	// MeterDrops counts frames dropped by token-bucket meter policing
	// (also included in Dropped).
	MeterDrops uint64
}

type group struct {
	typ     openflow.GroupType
	buckets []openflow.Bucket
	next    atomic.Uint64 // weighted round-robin cursor
	// slots maps every round-robin slot to its bucket index, precomputed on
	// GroupMod so per-frame selection is one array read. Groups whose total
	// weight exceeds maxWRRSlots skip the table (it would be large) and
	// fall back to a binary search over the cumulative weights.
	slots   []uint16
	weights []uint32 // cumulative weights for bucket selection
	total   uint32
}

// maxWRRSlots bounds the precomputed slot table of a select group.
const maxWRRSlots = 4096

// Port is one switch port. The device side (worker I/O layer, tunnel pump,
// controller agent) writes frames in with WriteFrame and reads frames out
// with ReadBatch; the switch side runs a pump goroutine per port.
type Port struct {
	no     uint32
	name   string
	addr   packet.Addr
	tunnel bool

	rx *ring.Ring // device -> switch
	tx *ring.Ring // switch -> device
	// qd, when set, replaces tx with per-class DRR queues (immutable after
	// port construction).
	qd *qdisc

	rxPackets atomic.Uint64
	rxBytes   atomic.Uint64
	txPackets atomic.Uint64
	txBytes   atomic.Uint64
	txDropped atomic.Uint64
}

// No returns the port number.
func (p *Port) No() uint32 { return p.no }

// Name returns the port name.
func (p *Port) Name() string { return p.name }

// Addr returns the worker address bound to the port (zero for tunnels).
func (p *Port) Addr() packet.Addr { return p.addr }

// IsTunnel reports whether the port is a tunnel port.
func (p *Port) IsTunnel() bool { return p.tunnel }

// WriteFrame submits a frame from the attached device into the switch.
// It reports false when the ingress ring is full (frame dropped).
func (p *Port) WriteFrame(frame []byte) bool { return p.rx.TryEnqueue(frame) }

// WriteFrameTimeout submits a frame, blocking up to wait for ring space.
// It returns ring.ErrFull past the deadline (one drop counted) or
// ring.ErrClosed after the port is removed.
func (p *Port) WriteFrameTimeout(frame []byte, wait time.Duration) error {
	return p.rx.EnqueueTimeout(frame, wait)
}

// ReadBatch reads frames the switch delivered to this port, waiting up to
// wait for the first frame. With egress queues enabled frames arrive in
// deficit-round-robin order across classes. It returns ring.ErrClosed after
// the port is removed and drained.
func (p *Port) ReadBatch(dst [][]byte, max int, wait time.Duration) ([][]byte, error) {
	if p.qd != nil {
		return p.qd.readBatch(dst, max, wait)
	}
	return p.tx.DequeueBatch(dst, max, wait)
}

// Closed reports whether the port has been removed from the switch.
func (p *Port) Closed() bool { return p.rx.Closed() }

// QueueLen reports frames queued toward the attached device, the
// switch-side component of a worker's queue-status metric.
func (p *Port) QueueLen() int {
	if p.qd != nil {
		return p.qd.queueLen()
	}
	return p.tx.Len()
}

// QueueStats reports per-class egress queue counters, or nil when the port
// runs a single FIFO (egress queues disabled).
func (p *Port) QueueStats() []QueueStats {
	if p.qd == nil {
		return nil
	}
	return p.qd.queueStats()
}

// closeRings closes every ring attached to the port.
func (p *Port) closeRings() {
	p.rx.Close()
	p.tx.Close()
	if p.qd != nil {
		p.qd.close()
	}
}

// New builds a switch named after its host with the given datapath ID,
// configured by options (see Options for the defaults).
func New(name string, dpid uint64, options ...Option) *Switch {
	var opts Options
	for _, o := range options {
		o.apply(&opts)
	}
	if opts.IdleScanInterval <= 0 {
		opts.IdleScanInterval = 50 * time.Millisecond
	}
	s := &Switch{
		name:    name,
		dpid:    dpid,
		opts:    opts,
		ports:   make(map[uint32]*Port),
		groups:  make(map[uint32]*group),
		meters:  make(map[uint32]*meter),
		stopped: make(chan struct{}),
	}
	s.flows.gen = &s.gen
	s.ctlSinks.Store(&[]ControllerSink{})
	s.rebuildView()
	return s
}

// rebuildView publishes a fresh immutable data-path snapshot and bumps the
// microflow generation. Callers hold s.mu (except New, pre-publication).
func (s *Switch) rebuildView() {
	v := &dataView{
		ports:  make(map[uint32]*Port, len(s.ports)),
		groups: make(map[uint32]*group, len(s.groups)),
		meters: make(map[uint32]*meter, len(s.meters)),
	}
	for no, p := range s.ports {
		v.ports[no] = p
	}
	for id, g := range s.groups {
		v.groups[id] = g
	}
	for id, m := range s.meters {
		v.meters[id] = m
	}
	s.view.Store(v)
	s.gen.Add(1)
}

// Name returns the switch (host) name.
func (s *Switch) Name() string { return s.name }

// DatapathID returns the datapath identifier.
func (s *Switch) DatapathID() uint64 { return s.dpid }

// SetController attaches a single controller event sink with the master
// role, replacing any existing attachments — the standalone (single
// controller) wiring. Replicated control planes use AttachController +
// ClaimMaster instead.
func (s *Switch) SetController(sink ControllerSink) {
	s.mu.Lock()
	if sink == nil {
		s.sinks = nil
		s.master = nil
		s.publishSinksLocked()
		s.mu.Unlock()
		return
	}
	s.sinks = []ControllerSink{sink}
	s.master = sink
	s.masterEpoch++
	s.publishSinksLocked()
	pend := s.takePendingLocked()
	s.mu.Unlock()
	flushPending(sink, pend)
}

// AttachController adds a controller event sink in the slave role: it
// receives PACKET_IN broadcasts but no master-only events until it claims
// mastership.
func (s *Switch) AttachController(sink ControllerSink) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, existing := range s.sinks {
		if existing == sink {
			return
		}
	}
	s.sinks = append(s.sinks, sink)
	s.publishSinksLocked()
}

// DetachController removes a controller event sink (its connection died).
// If it held the master role the role becomes vacant and master-only
// events buffer until the next claim.
func (s *Switch) DetachController(sink ControllerSink) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, existing := range s.sinks {
		if existing == sink {
			s.sinks = append(s.sinks[:i], s.sinks[i+1:]...)
			break
		}
	}
	if s.master == sink {
		s.master = nil
	}
	s.publishSinksLocked()
}

// ClaimMaster grants the master role to an attached sink, fenced by the
// mastership-lease epoch: a claim older than the highest accepted epoch is
// refused, so a partitioned ex-master can never displace its successor.
// Events buffered while the role was vacant flush to the new master.
func (s *Switch) ClaimMaster(sink ControllerSink, epoch uint64) bool {
	s.mu.Lock()
	if epoch < s.masterEpoch {
		s.mu.Unlock()
		return false
	}
	s.masterEpoch = epoch
	s.master = sink
	pend := s.takePendingLocked()
	s.mu.Unlock()
	flushPending(sink, pend)
	return true
}

// ReleaseMaster cedes the master role if the sink still holds it at the
// given epoch (a newer claim wins over a stale release).
func (s *Switch) ReleaseMaster(sink ControllerSink, epoch uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.master == sink && epoch >= s.masterEpoch {
		s.master = nil
	}
}

// MasterEpoch reports the highest mastership epoch the switch has accepted
// and whether a master is currently attached.
func (s *Switch) MasterEpoch() (epoch uint64, held bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.masterEpoch, s.master != nil
}

// publishSinksLocked snapshots the sink registry for the punt path.
func (s *Switch) publishSinksLocked() {
	cp := make([]ControllerSink, len(s.sinks))
	copy(cp, s.sinks)
	s.ctlSinks.Store(&cp)
}

func (s *Switch) takePendingLocked() []masterEvent {
	pend := s.pendingEv
	s.pendingEv = nil
	return pend
}

func flushPending(sink ControllerSink, pend []masterEvent) {
	for _, ev := range pend {
		switch {
		case ev.ps != nil:
			sink.PortStatus(*ev.ps)
		case ev.fr != nil:
			sink.FlowRemoved(*ev.fr)
		}
	}
}

// emitToMaster routes one master-only event: delivered to the master when
// one is attached, buffered during a vacancy (only if any controller is
// attached at all — a bare switch with no control plane drops events, as
// before), capped drop-oldest.
func (s *Switch) emitToMaster(ev masterEvent) {
	s.mu.Lock()
	m := s.master
	if m == nil {
		if len(s.sinks) > 0 {
			if len(s.pendingEv) >= pendingEventCap {
				n := copy(s.pendingEv, s.pendingEv[1:])
				s.pendingEv = s.pendingEv[:n]
			}
			s.pendingEv = append(s.pendingEv, ev)
		}
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	switch {
	case ev.ps != nil:
		m.PortStatus(*ev.ps)
	case ev.fr != nil:
		m.FlowRemoved(*ev.fr)
	}
}

// Start launches the idle-timeout scanner. Port pumps start as ports are
// added.
func (s *Switch) Start() {
	s.wg.Add(1)
	go s.idleScanner()
}

// Stop halts the switch: all ports are closed and pumps drained.
func (s *Switch) Stop() {
	s.stopOnce.Do(func() { close(s.stopped) })
	s.mu.Lock()
	for _, p := range s.ports {
		p.closeRings()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// AddPort creates a worker port bound to addr and starts its pump.
func (s *Switch) AddPort(name string, addr packet.Addr) (*Port, error) {
	return s.addPort(name, addr, false)
}

// AddTunnelPort creates the host's tunnel port.
func (s *Switch) AddTunnelPort(name string) (*Port, error) {
	return s.addPort(name, packet.Addr{}, true)
}

func (s *Switch) addPort(name string, addr packet.Addr, tunnel bool) (*Port, error) {
	s.mu.Lock()
	select {
	case <-s.stopped:
		s.mu.Unlock()
		return nil, fmt.Errorf("switchfabric: switch %s stopped", s.name)
	default:
	}
	s.nextPort++
	p := &Port{
		no:     s.nextPort,
		name:   name,
		addr:   addr,
		tunnel: tunnel,
		rx:     ring.New(s.opts.RingCapacity),
		tx:     ring.New(s.opts.RingCapacity),
	}
	if len(s.opts.EgressQueues) > 0 {
		p.qd = newQdisc(s.opts.EgressQueues, s.opts.RingCapacity)
	}
	s.ports[p.no] = p
	s.rebuildView()
	s.mu.Unlock()

	s.wg.Add(1)
	go s.pump(p)

	ev := openflow.PortStatus{
		Reason: openflow.PortAdded,
		Port:   openflow.PortInfo{No: p.no, Name: p.name},
		Addr:   p.addr,
	}
	s.emitToMaster(masterEvent{ps: &ev})
	return p, nil
}

// RemovePort removes a port, closing its rings and emitting a PortStatus
// event. A worker crash manifests as exactly this event (Fig 10's
// SwitchPortChanged notification).
func (s *Switch) RemovePort(no uint32) error {
	s.mu.Lock()
	p, ok := s.ports[no]
	if ok {
		delete(s.ports, no)
		s.rebuildView()
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("switchfabric: no port %d", no)
	}
	p.closeRings()
	ev := openflow.PortStatus{
		Reason: openflow.PortDeleted,
		Port:   openflow.PortInfo{No: p.no, Name: p.name},
		Addr:   p.addr,
	}
	s.emitToMaster(masterEvent{ps: &ev})
	return nil
}

// Port returns the port with the given number, or nil.
func (s *Switch) Port(no uint32) *Port {
	return s.view.Load().ports[no]
}

// Ports lists current ports for FEATURES replies.
func (s *Switch) Ports() []openflow.PortInfo {
	v := s.view.Load()
	out := make([]openflow.PortInfo, 0, len(v.ports))
	for _, p := range v.ports {
		out = append(out, openflow.PortInfo{No: p.no, Name: p.name})
	}
	return out
}

// ApplyFlowMod programs the flow table.
func (s *Switch) ApplyFlowMod(fm openflow.FlowMod) error {
	switch fm.Command {
	case openflow.FlowAdd:
		s.flows.add(fm)
	case openflow.FlowModify:
		s.flows.modify(fm)
	case openflow.FlowDelete, openflow.FlowDeleteStrict:
		removed := s.flows.remove(fm.Match, fm.Priority, fm.Command == openflow.FlowDeleteStrict)
		s.notifyRemoved(removed, openflow.RemovedDelete)
	default:
		return fmt.Errorf("switchfabric: bad flow command %d", fm.Command)
	}
	return nil
}

// ApplyGroupMod programs the group table.
func (s *Switch) ApplyGroupMod(gm openflow.GroupMod) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch gm.Command {
	case openflow.GroupAdd, openflow.GroupModify:
		if old := s.groups[gm.GroupID]; old != nil && groupUnchanged(old, gm) {
			// Identical re-add (controller reconciliation re-sends every
			// group each sync): keep the installed group and the cache
			// generation so cached paths through the group stay valid.
			return nil
		}
		g := &group{typ: gm.Type, buckets: gm.Buckets}
		for _, b := range gm.Buckets {
			w := uint32(b.Weight)
			if w == 0 {
				w = 1
			}
			g.total += w
			g.weights = append(g.weights, g.total)
		}
		if g.total <= maxWRRSlots {
			g.slots = make([]uint16, 0, g.total)
			for i, b := range gm.Buckets {
				w := uint32(b.Weight)
				if w == 0 {
					w = 1
				}
				for j := uint32(0); j < w; j++ {
					g.slots = append(g.slots, uint16(i))
				}
			}
		}
		s.groups[gm.GroupID] = g
	case openflow.GroupDelete:
		if _, ok := s.groups[gm.GroupID]; !ok {
			return nil
		}
		delete(s.groups, gm.GroupID)
	default:
		return fmt.Errorf("switchfabric: bad group command %d", gm.Command)
	}
	s.rebuildView()
	return nil
}

// groupUnchanged reports whether an installed group is semantically
// identical to an incoming add/modify.
func groupUnchanged(g *group, gm openflow.GroupMod) bool {
	if g.typ != gm.Type || len(g.buckets) != len(gm.Buckets) {
		return false
	}
	for i, b := range gm.Buckets {
		if g.buckets[i].Weight != b.Weight || !actionsEqual(g.buckets[i].Actions, b.Actions) {
			return false
		}
	}
	return true
}

// ApplyMeterMod programs the meter table. Adding a meter that already
// exists, or modifying one, retunes rate and burst in place: the data-path
// view and the flow-cache generation are untouched, so the bandwidth
// allocator can reassign rates continuously without perturbing cached
// forwarding. Only genuinely new or deleted meters rebuild the view.
func (s *Switch) ApplyMeterMod(mm openflow.MeterMod) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch mm.Command {
	case openflow.MeterAdd, openflow.MeterModify:
		if m := s.meters[mm.MeterID]; m != nil {
			burst := mm.BurstBytes
			if burst == 0 {
				burst = defaultBurst(mm.RateBps)
			}
			if m.rateBps.Load() != mm.RateBps || m.burst.Load() != burst {
				m.configure(mm.RateBps, mm.BurstBytes)
			}
			return nil
		}
		s.meters[mm.MeterID] = newMeter(mm.RateBps, mm.BurstBytes, clock.CoarseUnixNano())
	case openflow.MeterDelete:
		if _, ok := s.meters[mm.MeterID]; !ok {
			return nil
		}
		delete(s.meters, mm.MeterID)
	default:
		return fmt.Errorf("switchfabric: bad meter command %d", mm.Command)
	}
	s.rebuildView()
	return nil
}

// MeterStatsSnapshot returns per-meter configuration and drop counters.
func (s *Switch) MeterStatsSnapshot() []MeterInfo {
	v := s.view.Load()
	out := make([]MeterInfo, 0, len(v.meters))
	for id, m := range v.meters {
		out = append(out, MeterInfo{
			ID:         id,
			RateBps:    m.rateBps.Load(),
			BurstBytes: m.burst.Load(),
			Drops:      m.drops.Load(),
		})
	}
	return out
}

// MeterDrops reports frames dropped by meter policing across all meters.
func (s *Switch) MeterDrops() uint64 { return s.meterDrops.Load() }

// Inject processes a controller PACKET_OUT: the data frame is run through
// the explicit action list with in_port as given.
func (s *Switch) Inject(po openflow.PacketOut) error {
	if len(po.Data) == 0 {
		return fmt.Errorf("switchfabric: empty packet-out")
	}
	// The controller owns po.Data and may retain it; marking the frame
	// already-consumed forces every delivery onto the copy path so the
	// original never enters a ring whose reader recycles buffers.
	consumed := true
	v := s.view.Load()
	now := clock.CoarseUnixNano()
	if n := s.execute(v, po.InPort, po.Data, po.Actions, 0, 0, now, &consumed); n > 0 {
		s.forwarded.Add(uint64(n))
		if n > 1 {
			s.replicated.Add(uint64(n - 1))
		}
	}
	return nil
}

// PortStatsSnapshot returns per-port counters.
func (s *Switch) PortStatsSnapshot() []openflow.PortStats {
	v := s.view.Load()
	out := make([]openflow.PortStats, 0, len(v.ports))
	for _, p := range v.ports {
		rs := p.rx.Stats()
		out = append(out, openflow.PortStats{
			PortNo:    p.no,
			RxPackets: p.rxPackets.Load(),
			RxBytes:   p.rxBytes.Load(),
			TxPackets: p.txPackets.Load(),
			TxBytes:   p.txBytes.Load(),
			RxDropped: rs.Dropped,
			TxDropped: p.txDropped.Load(),
		})
	}
	return out
}

// FlowStatsSnapshot returns per-rule counters.
func (s *Switch) FlowStatsSnapshot() []openflow.FlowStats { return s.flows.snapshot() }

// WipeFlows destroys the entire flow table — the chaos subsystem's
// switch-state fault. Unlike ordinary deletion, every wiped rule is
// reported to the controller regardless of its FlagSendFlowRem flag, so
// reconciliation knows its installed state is gone and reinstalls.
func (s *Switch) WipeFlows() int {
	removed := s.flows.wipe()
	s.notify(removed, openflow.RemovedDelete, true)
	return len(removed)
}

// RuleCount reports the number of installed rules.
func (s *Switch) RuleCount() int { return s.flows.len() }

// NoMatchDrops reports frames dropped due to table miss.
func (s *Switch) NoMatchDrops() uint64 { return s.rxDropsNoMatch.Load() }

// MalformedDrops reports received frames discarded because their header
// failed to parse.
func (s *Switch) MalformedDrops() uint64 { return s.malformed.Load() }

// MicroflowStats reports exact-match cache hits and misses across all
// pumps.
func (s *Switch) MicroflowStats() (hits, misses uint64) {
	return s.mfHits.Load(), s.mfMisses.Load()
}

// MegaflowStats reports wildcarded-cache hits and misses across all pumps.
func (s *Switch) MegaflowStats() (hits, misses uint64) {
	return s.megaHits.Load(), s.megaMisses.Load()
}

// UpcallCount reports slow-path classifier lookups across all pumps.
func (s *Switch) UpcallCount() uint64 { return s.upcalls.Load() }

// CountersSnapshot aggregates the switch's frame accounting across ports.
func (s *Switch) CountersSnapshot() Counters {
	var c Counters
	c.Forwarded = s.forwarded.Load()
	c.Replicated = s.replicated.Load()
	c.Malformed = s.malformed.Load()
	c.MicroflowHits = s.mfHits.Load()
	c.MicroflowMisses = s.mfMisses.Load()
	c.MegaflowHits = s.megaHits.Load()
	c.MegaflowMisses = s.megaMisses.Load()
	c.Upcalls = s.upcalls.Load()
	c.MeterDrops = s.meterDrops.Load()
	c.Dropped = s.rxDropsNoMatch.Load() + c.Malformed + c.MeterDrops
	v := s.view.Load()
	for _, p := range v.ports {
		rs := p.rx.Stats()
		c.RxFrames += p.rxPackets.Load()
		c.TxFrames += p.txPackets.Load()
		c.Dropped += rs.Dropped + p.txDropped.Load()
	}
	return c
}

// pump moves frames from a port's RX ring through the pipeline.
func (s *Switch) pump(p *Port) {
	defer s.wg.Done()
	var mc *microCache
	if !s.opts.DisableMicroflowCache {
		mc = newMicroCache()
	}
	var mg *megaCache
	if !s.opts.DisableMegaflowCache {
		mg = newMegaCache()
	}
	batch := make([][]byte, 0, pumpBatchSize)
	for {
		batch = batch[:0]
		var err error
		batch, err = p.rx.DequeueBatch(batch, pumpBatchSize, time.Second)
		if err != nil {
			return
		}
		s.processBatch(p, batch, mc, mg)
	}
}

// batchAcct accumulates per-batch counter deltas so the hot loop touches
// shared atomics once per batch instead of several times per frame.
type batchAcct struct {
	rxFrames, rxBytes     uint64
	malformed, noMatch    uint64
	forwarded, replicated uint64
	mfHits, mfMisses      uint64
	megaHits, megaMisses  uint64
	upcalls               uint64
	meterDrops            uint64
}

// processBatch runs a batch of ingress frames through the pipeline. The
// data view, microflow generation and coarse clock are sampled once for the
// whole batch: every frame in it was enqueued before this moment, so
// forwarding it under the sampled state is linearizable.
func (s *Switch) processBatch(in *Port, batch [][]byte, mc *microCache, mg *megaCache) {
	if len(batch) == 0 {
		return
	}
	v := s.view.Load()
	now := clock.CoarseUnixNano()
	gen := s.gen.Load()
	if mc != nil {
		mc.validate(gen)
	}
	if mg != nil {
		mg.validate(gen)
	}
	var acct batchAcct
	for _, frame := range batch {
		acct.rxFrames++
		acct.rxBytes += uint64(len(frame))
		dst, src, ok := packet.PeekAddrs(frame)
		if !ok {
			acct.malformed++
			packet.PutFrameBuf(frame) // dequeued → solely ours; recycle
			continue
		}
		if packet.Traced(frame) {
			traced := packet.AppendTraceHop(frame, packet.TraceHop{
				Kind: packet.HopSwitchIn, Actor: s.dpid, Detail: in.no, At: now,
			})
			packet.PutFrameBuf(frame) // AppendTraceHop copied
			frame = traced
		}
		etherType := binary.BigEndian.Uint16(frame[12:14])
		// Lookup hierarchy: exact-match microflow cache → wildcarded
		// megaflow cache → staged flow table (the upcall). The microflow
		// cache is only populated on upcalls, never on megaflow hits: when
		// one megaflow absorbs a scatter of distinct microflows, per-frame
		// microflow inserts would be pure map churn (and allocation) for
		// entries the megaflow already answers in one probe.
		var r *rule
		if mc != nil {
			key := microKey{src: src, dst: dst, etherType: etherType}
			if hit, ok := mc.lookup(key); ok {
				r = hit
				acct.mfHits++
			} else {
				acct.mfMisses++
				if mg != nil {
					if hit, ok := mg.lookup(in.no, src, dst, etherType); ok {
						r = hit
						acct.megaHits++
					} else {
						acct.megaMisses++
					}
				}
				if r == nil {
					var used openflow.FieldSet
					r, used = s.flows.lookupMask(in.no, src, dst, etherType)
					acct.upcalls++
					if r != nil {
						mc.insert(key, r)
						if mg != nil {
							mg.insert(used, in.no, src, dst, etherType, r)
						}
					}
				}
			}
		} else if mg != nil {
			if hit, ok := mg.lookup(in.no, src, dst, etherType); ok {
				r = hit
				acct.megaHits++
			} else {
				acct.megaMisses++
				var used openflow.FieldSet
				r, used = s.flows.lookupMask(in.no, src, dst, etherType)
				acct.upcalls++
				if r != nil {
					mg.insert(used, in.no, src, dst, etherType, r)
				}
			}
		} else {
			r = s.flows.lookup(in.no, src, dst, etherType)
			acct.upcalls++
		}
		if r == nil {
			acct.noMatch++
			packet.PutFrameBuf(frame) // dropped before any handoff
			continue
		}
		r.touch(len(frame), now)
		if mid := r.meter; mid != 0 {
			// Token-bucket policing before any action runs. A rule naming a
			// meter the switch does not hold passes unmetered, so rule and
			// meter programming need no ordering.
			if m := v.meters[mid]; m != nil && !m.allow(len(frame), now) {
				acct.meterDrops++
				packet.PutFrameBuf(frame) // dropped before any handoff
				continue
			}
		}
		if packet.Traced(frame) {
			traced := packet.AppendTraceHop(frame, packet.TraceHop{
				Kind: packet.HopMatch, Actor: s.dpid, Detail: uint32(r.priority), At: now,
			})
			packet.PutFrameBuf(frame)
			frame = traced
		}
		consumed := false
		if n := s.execute(v, in.no, frame, r.loadActions(), 0, 0, now, &consumed); n > 0 {
			acct.forwarded += uint64(n)
			if n > 1 {
				acct.replicated += uint64(n - 1)
			}
		}
		if !consumed {
			// Every delivery shipped a copy (controller punt, tunnel encap,
			// trace copy, egress drop) — the original is still solely ours.
			packet.PutFrameBuf(frame)
		}
	}
	in.rxPackets.Add(acct.rxFrames)
	in.rxBytes.Add(acct.rxBytes)
	if acct.malformed > 0 {
		s.malformed.Add(acct.malformed)
	}
	if acct.noMatch > 0 {
		s.rxDropsNoMatch.Add(acct.noMatch)
	}
	if acct.forwarded > 0 {
		s.forwarded.Add(acct.forwarded)
	}
	if acct.replicated > 0 {
		s.replicated.Add(acct.replicated)
	}
	if acct.mfHits > 0 {
		s.mfHits.Add(acct.mfHits)
	}
	if acct.mfMisses > 0 {
		s.mfMisses.Add(acct.mfMisses)
	}
	if acct.megaHits > 0 {
		s.megaHits.Add(acct.megaHits)
	}
	if acct.megaMisses > 0 {
		s.megaMisses.Add(acct.megaMisses)
	}
	if acct.upcalls > 0 {
		s.upcalls.Add(acct.upcalls)
	}
	if acct.meterDrops > 0 {
		s.meterDrops.Add(acct.meterDrops)
	}
}

// execute runs an action list on a frame and returns the number of copies
// actually delivered (ports plus controller punts). depth guards group
// recursion. queue is the egress class selected so far (set_queue actions
// update it, and it propagates into group buckets so LB'd traffic keeps its
// class). consumed tracks whether the current frame slice has already been
// handed to an egress ring; once it has, further deliveries copy
// (unique-ownership protocol, see the package comment).
func (s *Switch) execute(v *dataView, inPort uint32, frame []byte, actions []openflow.Action, depth int, queue uint32, now int64, consumed *bool) int {
	if depth > 2 {
		return 0
	}
	// Ownership ordering: once a slice is handed to an egress ring its
	// receiver may recycle and overwrite it at any moment, so only the LAST
	// action that reads the frame may take the original; every earlier
	// delivery ships a copy made while the frame is still safe to read.
	last := -1
	for i, a := range actions {
		switch a.Type {
		case openflow.ActOutput, openflow.ActGroup, openflow.ActSetDlDst:
			last = i
		}
	}
	forceCopy := true
	tunDst := ""
	delivered := 0
	for i, a := range actions {
		switch a.Type {
		case openflow.ActSetTunnelDst:
			tunDst = a.Host
		case openflow.ActSetQueue:
			queue = a.Queue
		case openflow.ActSetDlDst:
			// Copy before rewrite: other outputs may alias this frame. The
			// copy is a fresh uniquely-owned slice, so it gets its own
			// consumed flag.
			cp := packet.CopyFrame(frame)
			packet.RewriteDst(cp, a.Addr)
			frame = cp
			fresh := false
			consumed = &fresh
		case openflow.ActOutput:
			cptr := consumed
			if i != last {
				cptr = &forceCopy
			}
			delivered += s.deliver(v, a.Port, frame, tunDst, queue, now, cptr)
		case openflow.ActGroup:
			cptr := consumed
			if i != last {
				cptr = &forceCopy
			}
			delivered += s.executeGroup(v, inPort, frame, a.Group, depth+1, queue, now, cptr)
		}
	}
	return delivered
}

func (s *Switch) executeGroup(v *dataView, inPort uint32, frame []byte, id uint32, depth int, queue uint32, now int64, consumed *bool) int {
	g := v.groups[id]
	if g == nil {
		return 0
	}
	switch g.typ {
	case openflow.GroupSelect:
		if g.total == 0 {
			return 0
		}
		// Weighted round robin: the slot table resolves the bucket in one
		// array read; oversized groups binary-search the cumulative weights.
		slot := uint32(g.next.Add(1)-1) % g.total
		idx := 0
		if g.slots != nil {
			idx = int(g.slots[slot])
		} else {
			lo, hi := 0, len(g.weights)
			for lo < hi {
				mid := (lo + hi) / 2
				if slot < g.weights[mid] {
					hi = mid
				} else {
					lo = mid + 1
				}
			}
			idx = lo
		}
		return s.execute(v, inPort, frame, g.buckets[idx].Actions, depth, queue, now, consumed)
	case openflow.GroupAll:
		// Same last-reader rule as execute: only the final bucket's actions
		// may take the original frame.
		delivered := 0
		forceCopy := true
		lastB := len(g.buckets) - 1
		for i, b := range g.buckets {
			cptr := consumed
			if i != lastB {
				cptr = &forceCopy
			}
			delivered += s.execute(v, inPort, frame, b.Actions, depth, queue, now, cptr)
		}
		return delivered
	}
	return 0
}

// deliver sends one copy of a frame toward a port (or the controller) and
// reports how many copies were actually delivered (0 or 1). queue selects
// the egress class on ports running per-class queues.
func (s *Switch) deliver(v *dataView, portNo uint32, frame []byte, tunDst string, queue uint32, now int64, consumed *bool) int {
	if portNo == openflow.PortController {
		sinks := *s.ctlSinks.Load()
		if len(sinks) == 0 {
			return 0
		}
		if packet.Traced(frame) {
			// AppendTraceHop copies, detaching the punt from the original.
			frame = packet.AppendTraceHop(frame, packet.TraceHop{
				Kind: packet.HopController, Actor: s.dpid, Detail: portNo, At: now,
			})
		} else {
			// The controllers hold punted frames indefinitely; give them a
			// plain (non-pooled) copy so the original stays uniquely owned.
			// One copy serves every sink: sends are sequential and sinks
			// never mutate the frame.
			cp := make([]byte, len(frame))
			copy(cp, frame)
			frame = cp
		}
		for _, sink := range sinks {
			sink.PacketIn(openflow.PacketIn{InPort: portNo, Reason: openflow.ReasonAction, Data: frame})
		}
		return 1
	}
	p := v.ports[portNo]
	if p == nil {
		return 0
	}
	out := frame
	copied := false
	if packet.Traced(frame) {
		kind := packet.HopEgress
		if p.tunnel {
			kind = packet.HopTunnel
		}
		// AppendTraceHop copies, so replicated deliveries that alias this
		// frame each record their own egress hop.
		out = packet.AppendTraceHop(frame, packet.TraceHop{
			Kind: kind, Actor: s.dpid, Detail: portNo, At: now,
		})
		copied = true
	}
	owned := false // out is the original frame, not a copy
	switch {
	case p.tunnel:
		out = EncapTunnel(tunDst, out) // fresh slice; original untouched
	case copied:
		// already a uniquely-owned copy
	case *consumed:
		out = packet.CopyFrame(out)
	default:
		owned = true
	}
	n := len(out)
	accepted := false
	if p.qd != nil {
		accepted = p.qd.enqueue(queue, out)
	} else {
		accepted = p.tx.TryEnqueue(out)
	}
	if accepted {
		if owned {
			*consumed = true
		}
		p.txPackets.Add(1)
		p.txBytes.Add(uint64(n))
		return 1
	}
	p.txDropped.Add(1)
	if !owned {
		// The copy never entered the ring; we are its sole owner.
		packet.PutFrameBuf(out)
	}
	return 0
}

func (s *Switch) idleScanner() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.opts.IdleScanInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stopped:
			return
		case <-ticker.C:
			// Judge idleness in the coarse-clock domain that stamps
			// rule.lastHit: the ticker's real time.Now runs up to the
			// coarse granularity (plus jitter) ahead of the cached clock,
			// and that skew would shave the same amount off every idle
			// timeout.
			removed := s.flows.expire(clock.CoarseUnixNano())
			s.notifyRemoved(removed, openflow.RemovedIdleTimeout)
		}
	}
}

func (s *Switch) notifyRemoved(rules []*rule, reason openflow.FlowRemovedReason) {
	s.notify(rules, reason, false)
}

// notify emits FlowRemoved events to the master controller; forced
// bypasses the FlagSendFlowRem opt-in (used when rules vanish behind the
// controller's back).
func (s *Switch) notify(rules []*rule, reason openflow.FlowRemovedReason, forced bool) {
	for _, r := range rules {
		if !forced && r.flags&openflow.FlagSendFlowRem == 0 {
			continue
		}
		ev := openflow.FlowRemoved{
			Match:    r.match,
			Priority: r.priority,
			Cookie:   r.cookie,
			Reason:   reason,
			Packets:  r.packets.Load(),
			Bytes:    r.bytes.Load(),
		}
		s.emitToMaster(masterEvent{fr: &ev})
	}
}

package switchfabric

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"typhoon/internal/clock"
	"typhoon/internal/openflow"
	"typhoon/internal/packet"
)

// rule is one installed flow entry.
type rule struct {
	match         openflow.Match // normalized: wildcarded fields zeroed
	priority      uint16
	cookie        uint64
	idleTimeoutMs uint32
	flags         uint16
	// meter is the ID of the token-bucket meter frames matching this rule
	// are charged against (0 = unmetered). Immutable once installed: rate
	// changes retune the meter object itself, never the rule.
	meter uint32

	// seq is the global install rank, used to break priority ties: among
	// equal-priority rules the earliest-installed wins, matching the stable
	// insertion order of the pre-staged linear table. A replacement (same
	// match and priority) inherits the rank of the rule it replaces.
	seq uint64

	// actions is swapped atomically by FlowModify. The fast path reads the
	// action list without holding the table lock (directly after lookup, or
	// later via the microflow/megaflow caches), so in-place mutation of a
	// shared slice would race; publishing a fresh slice through an atomic
	// pointer keeps every reader on a consistent list.
	actions atomic.Pointer[[]openflow.Action]

	packets atomic.Uint64
	bytes   atomic.Uint64
	lastHit atomic.Int64 // coarse-clock unix nanos of last match (or install)
}

func (r *rule) loadActions() []openflow.Action { return *r.actions.Load() }

// touch records a match. now is a coarse wall-clock stamp supplied by the
// caller so the per-frame path never calls time.Now.
func (r *rule) touch(bytes int, now int64) {
	r.packets.Add(1)
	r.bytes.Add(uint64(bytes))
	r.lastHit.Store(now)
}

// expired reports whether the rule's idle timeout elapsed. now must come
// from the same clock domain as the lastHit stamps (the coarse clock):
// mixing domains lets the coarse clock's lag masquerade as idle time.
// Negative idle — the scanner's stamp landing behind the rule's — is
// clamped to zero rather than wrapping the comparison.
func (r *rule) expired(now int64) bool {
	if r.idleTimeoutMs == 0 {
		return false
	}
	idle := now - r.lastHit.Load()
	if idle < 0 {
		idle = 0
	}
	return idle > int64(r.idleTimeoutMs)*int64(time.Millisecond)
}

// flowKey is the tuple a sub-table is probed with: the frame attributes
// restricted to the sub-table's mask, with wildcarded fields zeroed.
type flowKey struct {
	inPort    uint32
	src, dst  packet.Addr
	etherType uint16
}

// maskedKey projects frame attributes onto a mask.
func maskedKey(fs openflow.FieldSet, inPort uint32, src, dst packet.Addr, etherType uint16) flowKey {
	var k flowKey
	if fs.Has(openflow.FieldInPort) {
		k.inPort = inPort
	}
	if fs.Has(openflow.FieldDlSrc) {
		k.src = src
	}
	if fs.Has(openflow.FieldDlDst) {
		k.dst = dst
	}
	if fs.Has(openflow.FieldEtherType) {
		k.etherType = etherType
	}
	return k
}

// ruleKey is the masked key a normalized match occupies in its sub-table.
func ruleKey(m openflow.Match) flowKey {
	return flowKey{inPort: m.InPort, src: m.DlSrc, dst: m.DlDst, etherType: m.EtherType}
}

// subTable holds every rule sharing one wildcard mask, keyed by the values
// of the masked fields. A bucket carries the (rare) rules with identical
// match but different priorities, ordered by descending priority, so a
// probe reads bucket[0] and is done.
type subTable struct {
	mask openflow.FieldSet
	// maxPriority is the highest priority of any rule in the sub-table; the
	// probe loop stops once the running best beats every remaining one.
	maxPriority uint16
	entries     map[flowKey][]*rule
}

// recompute refreshes maxPriority after removals.
func (st *subTable) recompute() {
	st.maxPriority = 0
	for _, bucket := range st.entries {
		if len(bucket) > 0 && bucket[0].priority > st.maxPriority {
			st.maxPriority = bucket[0].priority
		}
	}
}

// flowTable is a tuple-space-search classifier: rules live in priority-
// staged sub-tables keyed by wildcard mask, so a lookup probes one small
// map per distinct mask instead of scanning every rule. The streaming
// workload produces only a handful of distinct masks (Table 3's rule
// vocabulary), so a slow-path lookup is a few map probes regardless of
// rule count; the per-pump microflow and megaflow caches (microflow.go,
// megaflow.go) keep repeated lookups off it entirely.
type flowTable struct {
	mu sync.RWMutex
	// subs is the probe order: descending maxPriority, so the scan can stop
	// as soon as the best hit so far outranks every remaining sub-table.
	subs    []*subTable
	count   int
	nextSeq uint64

	// gen, when set, is bumped inside the write lock by every mutation so
	// microflow/megaflow caches are invalidated with a happens-before edge:
	// any observer that sees the mutation (same lock, or the mutating call
	// returning) also sees the new generation.
	gen *atomic.Uint64
}

func (t *flowTable) bump() {
	if t.gen != nil {
		t.gen.Add(1)
	}
}

// resort restores the descending-maxPriority probe order. Callers hold mu.
func (t *flowTable) resort() {
	sort.SliceStable(t.subs, func(i, j int) bool {
		return t.subs[i].maxPriority > t.subs[j].maxPriority
	})
}

// sub returns the sub-table for a mask, creating it if needed. Callers
// hold mu.
func (t *flowTable) sub(mask openflow.FieldSet) *subTable {
	for _, st := range t.subs {
		if st.mask == mask {
			return st
		}
	}
	st := &subTable{mask: mask, entries: make(map[flowKey][]*rule)}
	t.subs = append(t.subs, st)
	return st
}

// lookup returns the highest-priority rule covering the frame attributes.
func (t *flowTable) lookup(inPort uint32, src, dst packet.Addr, etherType uint16) *rule {
	r, _ := t.lookupMask(inPort, src, dst, etherType)
	return r
}

// lookupMask returns the winning rule together with the union of every
// sub-table mask probed on the way to the decision. Any frame agreeing
// with this one on exactly those fields walks the same probe sequence and
// resolves to the same rule, which is what makes the union a sound
// megaflow mask (megaflow.go): entries installed from it can never shadow
// a higher-priority rule the lookup did not consult.
func (t *flowTable) lookupMask(inPort uint32, src, dst packet.Addr, etherType uint16) (*rule, openflow.FieldSet) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var best *rule
	var used openflow.FieldSet
	for _, st := range t.subs {
		// Strictly-better only: an equal-priority rule in a later sub-table
		// may still win its tie on install rank, so keep probing ties.
		if best != nil && best.priority > st.maxPriority {
			break
		}
		used |= st.mask
		bucket := st.entries[maskedKey(st.mask, inPort, src, dst, etherType)]
		if len(bucket) == 0 {
			continue
		}
		r := bucket[0]
		if best == nil || r.priority > best.priority ||
			(r.priority == best.priority && r.seq < best.seq) {
			best = r
		}
	}
	return best, used
}

// add installs a rule, replacing any entry with the identical match and
// priority (OpenFlow ADD semantics).
func (t *flowTable) add(fm openflow.FlowMod) {
	m := fm.Match.Normalize()
	nr := &rule{
		match:         m,
		priority:      fm.Priority,
		cookie:        fm.Cookie,
		idleTimeoutMs: fm.IdleTimeoutMs,
		flags:         fm.Flags,
		meter:         fm.Meter,
	}
	acts := fm.Actions
	nr.actions.Store(&acts)
	nr.lastHit.Store(clock.CoarseUnixNano())
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.sub(m.Fields)
	key := ruleKey(m)
	bucket := st.entries[key]
	for i, r := range bucket {
		if r.priority == fm.Priority {
			if ruleUnchanged(r, fm) {
				// Identical re-add: refresh the idle timer (exactly what a
				// replacement would do) but keep the installed rule, its
				// counters, and — critically — the cache generation. A new
				// master reconciling after failover re-sends every rule it
				// believes installed; treating those as no-ops keeps the
				// microflow/megaflow caches hot, so the data plane never
				// notices the control plane re-homing.
				r.lastHit.Store(clock.CoarseUnixNano())
				return
			}
			nr.seq = r.seq // replacement keeps the original's tie-break rank
			bucket[i] = nr
			t.bump()
			return
		}
	}
	nr.seq = t.nextSeq
	t.nextSeq++
	bucket = append(bucket, nr)
	sort.SliceStable(bucket, func(i, j int) bool {
		return bucket[i].priority > bucket[j].priority
	})
	st.entries[key] = bucket
	t.count++
	if fm.Priority > st.maxPriority {
		st.maxPriority = fm.Priority
	}
	t.resort()
	t.bump()
}

// ruleUnchanged reports whether an installed rule is semantically identical
// to an incoming FlowAdd with the same (normalized) match and priority.
func ruleUnchanged(r *rule, fm openflow.FlowMod) bool {
	return r.cookie == fm.Cookie &&
		r.idleTimeoutMs == fm.IdleTimeoutMs &&
		r.flags == fm.Flags &&
		r.meter == fm.Meter &&
		actionsEqual(r.loadActions(), fm.Actions)
}

func actionsEqual(a, b []openflow.Action) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// modify replaces the actions of rules subsumed by the match; it returns
// the number of rules updated.
func (t *flowTable) modify(fm openflow.FlowMod) int {
	acts := fm.Actions
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, st := range t.subs {
		for _, bucket := range st.entries {
			for _, r := range bucket {
				if subsumes(fm.Match, r.match) {
					r.actions.Store(&acts)
					n++
				}
			}
		}
	}
	if n > 0 {
		t.bump()
	}
	return n
}

// removeWhere deletes every rule del reports true for, returning the
// removed set in table order (priority descending, install order among
// ties). Callers hold mu.
func (t *flowTable) removeWhere(del func(*rule) bool) []*rule {
	var removed []*rule
	changed := false
	for _, st := range t.subs {
		stChanged := false
		for key, bucket := range st.entries {
			kept := bucket[:0]
			for _, r := range bucket {
				if del(r) {
					removed = append(removed, r)
				} else {
					kept = append(kept, r)
				}
			}
			if len(kept) == len(bucket) {
				continue
			}
			// Nil the compacted tail: without this the trailing *rule
			// objects — and their action slices — stay reachable through
			// the bucket's backing array until it regrows past them.
			clear(bucket[len(kept):])
			stChanged = true
			if len(kept) == 0 {
				delete(st.entries, key)
			} else {
				st.entries[key] = kept
			}
		}
		if stChanged {
			st.recompute()
			changed = true
		}
	}
	if changed {
		t.dropEmptySubs()
		t.resort()
		t.count -= len(removed)
		t.bump()
	}
	sortRules(removed)
	return removed
}

// dropEmptySubs discards sub-tables left without entries. Callers hold mu.
func (t *flowTable) dropEmptySubs() {
	kept := t.subs[:0]
	for _, st := range t.subs {
		if len(st.entries) > 0 {
			kept = append(kept, st)
		}
	}
	clear(t.subs[len(kept):])
	t.subs = kept
}

// remove deletes rules. Strict deletion requires exact match and priority;
// loose deletion removes every rule subsumed by the match. Removed rules
// are returned so the switch can emit FlowRemoved notifications.
func (t *flowTable) remove(m openflow.Match, priority uint16, strict bool) []*rule {
	t.mu.Lock()
	defer t.mu.Unlock()
	if strict {
		nm := m.Normalize()
		return t.removeWhere(func(r *rule) bool {
			return r.priority == priority && r.match.Equal(nm)
		})
	}
	return t.removeWhere(func(r *rule) bool { return subsumes(m, r.match) })
}

// wipe removes every rule, returning the removed set (chaos flow-table
// wipe; the switch notifies the controller so rules get reinstalled).
func (t *flowTable) wipe() []*rule {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.removeWhere(func(*rule) bool { return true })
}

// expire removes rules whose idle timeout elapsed, returning them. now is
// a coarse-clock stamp (clock.CoarseUnixNano), the same domain rule.touch
// writes, so skew between the coarse and real clocks can never shorten an
// idle timeout.
func (t *flowTable) expire(now int64) []*rule {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.removeWhere(func(r *rule) bool { return r.expired(now) })
}

// snapshot returns flow statistics rows for all rules in table order.
func (t *flowTable) snapshot() []openflow.FlowStats {
	t.mu.RLock()
	rules := make([]*rule, 0, t.count)
	for _, st := range t.subs {
		for _, bucket := range st.entries {
			rules = append(rules, bucket...)
		}
	}
	t.mu.RUnlock()
	sortRules(rules)
	out := make([]openflow.FlowStats, 0, len(rules))
	for _, r := range rules {
		out = append(out, openflow.FlowStats{
			Match:    r.match,
			Priority: r.priority,
			Cookie:   r.cookie,
			Packets:  r.packets.Load(),
			Bytes:    r.bytes.Load(),
		})
	}
	return out
}

func (t *flowTable) len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.count
}

// sortRules orders rules like the classifier ranks them: priority
// descending, install order among ties.
func sortRules(rules []*rule) {
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].priority != rules[j].priority {
			return rules[i].priority > rules[j].priority
		}
		return rules[i].seq < rules[j].seq
	})
}

// subsumes reports whether outer (a deletion/modification pattern) covers
// rule match inner: every field constrained by outer must be constrained to
// the same value in inner.
func subsumes(outer, inner openflow.Match) bool {
	if outer.Fields.Has(openflow.FieldInPort) &&
		(!inner.Fields.Has(openflow.FieldInPort) || inner.InPort != outer.InPort) {
		return false
	}
	if outer.Fields.Has(openflow.FieldDlSrc) &&
		(!inner.Fields.Has(openflow.FieldDlSrc) || inner.DlSrc != outer.DlSrc) {
		return false
	}
	if outer.Fields.Has(openflow.FieldDlDst) &&
		(!inner.Fields.Has(openflow.FieldDlDst) || inner.DlDst != outer.DlDst) {
		return false
	}
	if outer.Fields.Has(openflow.FieldEtherType) &&
		(!inner.Fields.Has(openflow.FieldEtherType) || inner.EtherType != outer.EtherType) {
		return false
	}
	return true
}

package switchfabric

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"typhoon/internal/clock"
	"typhoon/internal/openflow"
	"typhoon/internal/packet"
)

// rule is one installed flow entry.
type rule struct {
	match         openflow.Match
	priority      uint16
	cookie        uint64
	idleTimeoutMs uint32
	flags         uint16

	// actions is swapped atomically by FlowModify. The fast path reads the
	// action list without holding the table lock (directly after lookup, or
	// later via the microflow cache), so in-place mutation of a shared slice
	// would race; publishing a fresh slice through an atomic pointer keeps
	// every reader on a consistent list.
	actions atomic.Pointer[[]openflow.Action]

	packets atomic.Uint64
	bytes   atomic.Uint64
	lastHit atomic.Int64 // unix nanos of last match (or install time)
}

func (r *rule) loadActions() []openflow.Action { return *r.actions.Load() }

// touch records a match. now is a coarse wall-clock stamp supplied by the
// caller so the per-frame path never calls time.Now.
func (r *rule) touch(bytes int, now int64) {
	r.packets.Add(1)
	r.bytes.Add(uint64(bytes))
	r.lastHit.Store(now)
}

func (r *rule) expired(now time.Time) bool {
	if r.idleTimeoutMs == 0 {
		return false
	}
	idle := now.UnixNano() - r.lastHit.Load()
	return idle > int64(r.idleTimeoutMs)*int64(time.Millisecond)
}

// flowTable holds rules sorted by descending priority with stable insertion
// order among equal priorities. Lookup is a linear scan, which is exact and
// fast at the rule counts a streaming topology produces; the per-port
// microflow cache (microflow.go) keeps repeated lookups off it entirely.
type flowTable struct {
	mu    sync.RWMutex
	rules []*rule

	// gen, when set, is bumped inside the write lock by every mutation so
	// microflow caches are invalidated with a happens-before edge: any
	// observer that sees the mutation (same lock, or the mutating call
	// returning) also sees the new generation.
	gen *atomic.Uint64
}

func (t *flowTable) bump() {
	if t.gen != nil {
		t.gen.Add(1)
	}
}

// lookup returns the highest-priority rule covering the frame attributes.
func (t *flowTable) lookup(inPort uint32, src, dst packet.Addr, etherType uint16) *rule {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, r := range t.rules {
		if r.match.Covers(inPort, src, dst, etherType) {
			return r
		}
	}
	return nil
}

// add installs a rule, replacing any entry with the identical match and
// priority (OpenFlow ADD semantics).
func (t *flowTable) add(fm openflow.FlowMod) {
	nr := &rule{
		match:         fm.Match,
		priority:      fm.Priority,
		cookie:        fm.Cookie,
		idleTimeoutMs: fm.IdleTimeoutMs,
		flags:         fm.Flags,
	}
	acts := fm.Actions
	nr.actions.Store(&acts)
	nr.lastHit.Store(clock.CoarseUnixNano())
	t.mu.Lock()
	defer t.mu.Unlock()
	defer t.bump()
	for i, r := range t.rules {
		if r.priority == fm.Priority && r.match.Equal(fm.Match) {
			t.rules[i] = nr
			return
		}
	}
	t.rules = append(t.rules, nr)
	sort.SliceStable(t.rules, func(i, j int) bool {
		return t.rules[i].priority > t.rules[j].priority
	})
}

// modify replaces the actions of rules subsumed by the match; it returns
// the number of rules updated.
func (t *flowTable) modify(fm openflow.FlowMod) int {
	acts := fm.Actions
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, r := range t.rules {
		if subsumes(fm.Match, r.match) {
			r.actions.Store(&acts)
			n++
		}
	}
	if n > 0 {
		t.bump()
	}
	return n
}

// remove deletes rules. Strict deletion requires exact match and priority;
// loose deletion removes every rule subsumed by the match. Removed rules
// are returned so the switch can emit FlowRemoved notifications.
func (t *flowTable) remove(m openflow.Match, priority uint16, strict bool) []*rule {
	t.mu.Lock()
	defer t.mu.Unlock()
	var removed []*rule
	kept := t.rules[:0]
	for _, r := range t.rules {
		del := false
		if strict {
			del = r.priority == priority && r.match.Equal(m)
		} else {
			del = subsumes(m, r.match)
		}
		if del {
			removed = append(removed, r)
		} else {
			kept = append(kept, r)
		}
	}
	t.rules = kept
	if len(removed) > 0 {
		t.bump()
	}
	return removed
}

// wipe removes every rule, returning the removed set (chaos flow-table
// wipe; the switch notifies the controller so rules get reinstalled).
func (t *flowTable) wipe() []*rule {
	t.mu.Lock()
	defer t.mu.Unlock()
	removed := t.rules
	t.rules = nil
	if len(removed) > 0 {
		t.bump()
	}
	return removed
}

// expire removes rules whose idle timeout elapsed, returning them.
func (t *flowTable) expire(now time.Time) []*rule {
	t.mu.Lock()
	defer t.mu.Unlock()
	var removed []*rule
	kept := t.rules[:0]
	for _, r := range t.rules {
		if r.expired(now) {
			removed = append(removed, r)
		} else {
			kept = append(kept, r)
		}
	}
	t.rules = kept
	if len(removed) > 0 {
		t.bump()
	}
	return removed
}

// snapshot returns flow statistics rows for all rules.
func (t *flowTable) snapshot() []openflow.FlowStats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]openflow.FlowStats, 0, len(t.rules))
	for _, r := range t.rules {
		out = append(out, openflow.FlowStats{
			Match:    r.match,
			Priority: r.priority,
			Cookie:   r.cookie,
			Packets:  r.packets.Load(),
			Bytes:    r.bytes.Load(),
		})
	}
	return out
}

func (t *flowTable) len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rules)
}

// subsumes reports whether outer (a deletion/modification pattern) covers
// rule match inner: every field constrained by outer must be constrained to
// the same value in inner.
func subsumes(outer, inner openflow.Match) bool {
	if outer.Fields.Has(openflow.FieldInPort) &&
		(!inner.Fields.Has(openflow.FieldInPort) || inner.InPort != outer.InPort) {
		return false
	}
	if outer.Fields.Has(openflow.FieldDlSrc) &&
		(!inner.Fields.Has(openflow.FieldDlSrc) || inner.DlSrc != outer.DlSrc) {
		return false
	}
	if outer.Fields.Has(openflow.FieldDlDst) &&
		(!inner.Fields.Has(openflow.FieldDlDst) || inner.DlDst != outer.DlDst) {
		return false
	}
	if outer.Fields.Has(openflow.FieldEtherType) &&
		(!inner.Fields.Has(openflow.FieldEtherType) || inner.EtherType != outer.EtherType) {
		return false
	}
	return true
}

// Package agent implements the per-host worker agent: it watches the
// coordinator for physical-topology assignments, launches and kills workers
// on its host, attaches them to the host's SDN switch (Typhoon mode) or the
// worker-level TCP fabric (Storm baseline mode), reports worker heartbeats,
// and performs Storm-style local restarts when a worker crashes.
package agent

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"typhoon/internal/coordinator"
	"typhoon/internal/packet"
	"typhoon/internal/paths"
	"typhoon/internal/storm"
	"typhoon/internal/switchfabric"
	"typhoon/internal/topology"
	"typhoon/internal/worker"
)

// Mode selects the transport fabric the agent attaches workers to.
type Mode int

// Agent modes.
const (
	// ModeSDN attaches workers to the host's software SDN switch
	// (Typhoon).
	ModeSDN Mode = iota
	// ModeStorm attaches workers to worker-level TCP connections
	// (baseline).
	ModeStorm
)

// Options configures an Agent.
type Options struct {
	Host string
	Mode Mode
	KV   coordinator.KV
	// Switch is required in ModeSDN.
	Switch *switchfabric.Switch
	// StormNet is required in ModeStorm.
	StormNet *storm.Network
	// Env is handed to every worker's computation logic.
	Env *worker.SharedEnv
	// HeartbeatInterval is how often worker heartbeats are written.
	HeartbeatInterval time.Duration
	// DrainDelay is how long a worker keeps running after its assignment
	// disappears, letting predecessors reroute and in-flight tuples drain
	// (the stable-update procedure of §3.5).
	DrainDelay time.Duration
	// RestartDelay spaces Storm-style local restarts of crashed workers.
	// It is the base delay: consecutive quick crashes back off
	// exponentially (up to 64×), so a crash-looping worker's heartbeats
	// go stale and the manager can reschedule it elsewhere.
	RestartDelay time.Duration
	// DefaultBatchSize is the initial I/O batch size for workers.
	DefaultBatchSize int
	// DefaultFlushDeadline is the initial bounded staging wait for worker
	// transports; zero selects the transport default, negative disables.
	DefaultFlushDeadline time.Duration
	// WorkerFlushInterval is the worker loop's periodic transport flush
	// cadence; zero selects the worker default.
	WorkerFlushInterval time.Duration
	// StatsInterval is the workers' statistics push period (Fig 4's
	// worker statistics reporter); zero selects 500 ms in SDN mode.
	StatsInterval time.Duration
	// AckTimeout configures source replay when acking is enabled.
	AckTimeout time.Duration
	// OnWorkerCrash, when set, observes crashes (tests, fault stats).
	OnWorkerCrash func(topo string, id topology.WorkerID, err error)
	// FrameSampler, when set, selects emitted frames to carry a tuple-path
	// trace annex (SDN mode; typically the host's *observe.Sampler).
	FrameSampler worker.FrameSampler
	// TraceSink, when set, receives completed trace annexes extracted by
	// this host's worker transports (typically observe.TraceLog.Record).
	TraceSink func(packet.TraceAnnex)
}

// Info is the agent registration record kept in the coordinator
// (hostname and port usage, Table 1's worker-agent row).
type Info struct {
	Host      string `json:"host"`
	Mode      string `json:"mode"`
	UsedPorts int    `json:"usedPorts"`
}

type running struct {
	w       *worker.Worker
	port    *switchfabric.Port
	topo    string
	node    string
	logic   string
	started time.Time
	crashed bool
	// draining marks workers whose assignment disappeared.
	draining bool
}

// Agent is one per-host worker agent.
type Agent struct {
	opts Options

	// batchSize and flushDeadline are the live batching defaults applied to
	// newly launched workers; /api/v1/batch retunes them alongside the
	// control-tuple broadcast to running workers, so restarts and rescales
	// inherit the tuned values.
	batchSize     atomic.Int64
	flushDeadline atomic.Int64

	mu      sync.Mutex
	workers map[string]map[topology.WorkerID]*running // topo -> id -> worker
	// crashStreaks counts consecutive quick crashes per topo/worker for
	// restart backoff; a healthy run (uptime ≥ 10×RestartDelay) resets it.
	crashStreaks map[string]int
	stopped      bool

	stopCh chan struct{}
	wg     sync.WaitGroup
}

// New builds an agent.
func New(opts Options) (*Agent, error) {
	if opts.Host == "" || opts.KV == nil {
		return nil, fmt.Errorf("agent: host and KV are required")
	}
	if opts.Mode == ModeSDN && opts.Switch == nil {
		return nil, fmt.Errorf("agent: ModeSDN requires a switch")
	}
	if opts.Mode == ModeStorm && opts.StormNet == nil {
		return nil, fmt.Errorf("agent: ModeStorm requires a storm network")
	}
	if opts.HeartbeatInterval <= 0 {
		opts.HeartbeatInterval = 500 * time.Millisecond
	}
	if opts.DrainDelay <= 0 {
		opts.DrainDelay = 250 * time.Millisecond
	}
	if opts.RestartDelay <= 0 {
		opts.RestartDelay = 500 * time.Millisecond
	}
	if opts.StatsInterval <= 0 && opts.Mode == ModeSDN {
		opts.StatsInterval = 500 * time.Millisecond
	}
	a := &Agent{
		opts:         opts,
		crashStreaks: make(map[string]int),
		workers:      make(map[string]map[topology.WorkerID]*running),
		stopCh:       make(chan struct{}),
	}
	a.batchSize.Store(int64(opts.DefaultBatchSize))
	a.flushDeadline.Store(int64(opts.DefaultFlushDeadline))
	return a, nil
}

// BatchDefaults reports the live batching defaults applied to newly
// launched workers (size, staging deadline).
func (a *Agent) BatchDefaults() (int, time.Duration) {
	return int(a.batchSize.Load()), time.Duration(a.flushDeadline.Load())
}

// SetBatchDefaults retunes the defaults for future worker launches. size <=
// 0 and deadline == 0 leave the respective knob unchanged; a negative
// deadline disables the bounded staging wait.
func (a *Agent) SetBatchDefaults(size int, deadline time.Duration) {
	if size > 0 {
		a.batchSize.Store(int64(size))
	}
	if deadline != 0 {
		a.flushDeadline.Store(int64(deadline))
	}
}

// EachWorker calls fn for every live (non-crashed) worker on this host. The
// callback runs outside the agent lock, against a snapshot.
func (a *Agent) EachWorker(fn func(topo string, id topology.WorkerID, w *worker.Worker)) {
	type ent struct {
		topo string
		id   topology.WorkerID
		w    *worker.Worker
	}
	a.mu.Lock()
	var snap []ent
	for topo, m := range a.workers {
		for id, r := range m {
			if !r.crashed {
				snap = append(snap, ent{topo, id, r.w})
			}
		}
	}
	a.mu.Unlock()
	for _, e := range snap {
		fn(e.topo, e.id, e.w)
	}
}

// Host returns the agent's host name.
func (a *Agent) Host() string { return a.opts.Host }

// Start registers the agent and begins watching for assignments.
func (a *Agent) Start() error {
	mode := "sdn"
	if a.opts.Mode == ModeStorm {
		mode = "storm"
	}
	info, _ := json.Marshal(Info{Host: a.opts.Host, Mode: mode})
	if _, err := a.opts.KV.Put(paths.Agent(a.opts.Host), info); err != nil {
		return err
	}
	events, cancel, err := a.opts.KV.Watch(paths.Topologies)
	if err != nil {
		return err
	}
	statusEvents, statusCancel, err := a.opts.KV.Watch(paths.Status)
	if err != nil {
		cancel()
		return err
	}
	a.wg.Add(3)
	go a.watchLoop(events, cancel)
	go a.statusLoop(statusEvents, statusCancel)
	go a.heartbeatLoop()
	return a.syncAll()
}

// Stop kills all workers and halts the agent.
func (a *Agent) Stop() {
	a.mu.Lock()
	if a.stopped {
		a.mu.Unlock()
		return
	}
	a.stopped = true
	a.mu.Unlock()
	close(a.stopCh)
	a.wg.Wait()
	a.mu.Lock()
	var all []*running
	for _, m := range a.workers {
		for _, r := range m {
			all = append(all, r)
		}
	}
	a.workers = make(map[string]map[topology.WorkerID]*running)
	a.mu.Unlock()
	for _, r := range all {
		a.stopWorker(r)
	}
}

// WorkerCount reports live (non-crashed) workers across all topologies on
// this host — the agent's row in the observability registry.
func (a *Agent) WorkerCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, m := range a.workers {
		for _, r := range m {
			if !r.crashed {
				n++
			}
		}
	}
	return n
}

// RunningWorkers reports the live worker IDs for a topology (tests).
func (a *Agent) RunningWorkers(topo string) []topology.WorkerID {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []topology.WorkerID
	for id, r := range a.workers[topo] {
		if !r.crashed {
			out = append(out, id)
		}
	}
	return out
}

// Worker returns the running worker with the given ID, or nil (tests and
// in-process experiments).
func (a *Agent) Worker(topo string, id topology.WorkerID) *worker.Worker {
	a.mu.Lock()
	defer a.mu.Unlock()
	if r := a.workers[topo][id]; r != nil {
		return r.w
	}
	return nil
}

// DropWorkerPort removes a running worker's switch port out from under it
// (chaos port-down fault). The removal emits the PortStatus event of §4
// for the fault detector, and the worker's transport collapses beneath it,
// taking the ordinary crash-restart path.
func (a *Agent) DropWorkerPort(topo string, id topology.WorkerID) error {
	if a.opts.Mode != ModeSDN {
		return fmt.Errorf("agent: port faults need the SDN data plane")
	}
	a.mu.Lock()
	r := a.workers[topo][id]
	var port *switchfabric.Port
	if r != nil && !r.crashed {
		port = r.port
	}
	a.mu.Unlock()
	if port == nil {
		return fmt.Errorf("agent: worker %s/%d has no live port on %s", topo, id, a.opts.Host)
	}
	return a.opts.Switch.RemovePort(port.No())
}

func (a *Agent) watchLoop(events <-chan coordinator.Event, cancel func()) {
	defer a.wg.Done()
	defer cancel()
	for {
		select {
		case <-a.stopCh:
			return
		case ev, ok := <-events:
			if !ok {
				return
			}
			// Any physical-topology change triggers a re-sync of that
			// topology; the event stream is advisory (drop-oldest), so
			// state is always re-read from the coordinator.
			if name, kind, ok := paths.SplitTopology(ev.Path); ok && kind == "physical" {
				a.syncTopology(name)
			}
		}
	}
}

// statusLoop activates baseline source workers when the manager marks a
// topology activated.
func (a *Agent) statusLoop(events <-chan coordinator.Event, cancel func()) {
	defer a.wg.Done()
	defer cancel()
	for {
		select {
		case <-a.stopCh:
			return
		case ev, ok := <-events:
			if !ok {
				return
			}
			if ev.Type == coordinator.EventDeleted || !strings.HasSuffix(ev.Path, "/activated") {
				continue
			}
			name := strings.TrimSuffix(strings.TrimPrefix(ev.Path, paths.Status+"/"), "/activated")
			a.mu.Lock()
			var ws []*worker.Worker
			for _, r := range a.workers[name] {
				if !r.crashed {
					ws = append(ws, r.w)
				}
			}
			a.mu.Unlock()
			for _, w := range ws {
				w.Activate()
			}
		}
	}
}

func (a *Agent) syncAll() error {
	names, err := a.opts.KV.Children(paths.Topologies)
	if err != nil {
		return err
	}
	for _, n := range names {
		a.syncTopology(n)
	}
	return nil
}

// syncTopology reconciles this host's workers with the stored assignment.
func (a *Agent) syncTopology(name string) {
	lraw, _, lerr := a.opts.KV.Get(paths.Logical(name))
	praw, _, perr := a.opts.KV.Get(paths.Physical(name))
	if lerr != nil || perr != nil {
		// Topology gone: kill everything we run for it.
		a.killTopology(name)
		return
	}
	l, err := topology.DecodeLogical(lraw)
	if err != nil {
		return
	}
	p, err := topology.DecodePhysical(praw)
	if err != nil {
		return
	}

	desired := make(map[topology.WorkerID]topology.Assignment)
	for _, as := range p.Workers {
		if as.Host == a.opts.Host {
			desired[as.Worker] = as
		}
	}

	a.mu.Lock()
	if a.stopped {
		a.mu.Unlock()
		return
	}
	cur := a.workers[name]
	if cur == nil {
		cur = make(map[topology.WorkerID]*running)
		a.workers[name] = cur
	}
	var toStart []topology.Assignment
	var toDrain []*running
	for id, as := range desired {
		if r, ok := cur[id]; !ok || r.crashed {
			toStart = append(toStart, as)
		}
	}
	for id, r := range cur {
		if _, ok := desired[id]; !ok && !r.draining {
			r.draining = true
			toDrain = append(toDrain, r)
		}
	}
	a.mu.Unlock()

	for _, as := range toStart {
		if err := a.launch(l, p, as); err != nil {
			continue
		}
	}
	for _, r := range toDrain {
		a.wg.Add(1)
		go a.drainAndStop(name, r)
	}
}

func (a *Agent) killTopology(name string) {
	a.mu.Lock()
	m := a.workers[name]
	delete(a.workers, name)
	a.mu.Unlock()
	for _, r := range m {
		a.stopWorker(r)
	}
}

// launch starts one assigned worker on this host.
func (a *Agent) launch(l *topology.Logical, p *topology.Physical, as topology.Assignment) error {
	node := l.Node(as.Node)
	if node == nil {
		return fmt.Errorf("agent: assignment references unknown node %q", as.Node)
	}
	batchSize, flushDeadline := a.BatchDefaults()
	cfg := worker.Config{
		App:           l.App,
		ID:            as.Worker,
		Node:          as.Node,
		Index:         as.Index,
		Logic:         node.Logic,
		Source:        node.Source,
		Stateful:      node.Stateful,
		Routes:        topology.RoutesFor(l, p, as.Node),
		Acking:        l.Ackers > 0,
		BatchSize:     batchSize,
		FlushInterval: a.opts.WorkerFlushInterval,
		AckTimeout:    a.opts.AckTimeout,
		StatsInterval: a.opts.StatsInterval,
		Env:           a.opts.Env,
	}
	for _, e := range l.InEdges(as.Node) {
		cfg.Subscriptions = append(cfg.Subscriptions, e.Stream)
	}
	var tr worker.Transport
	var port *switchfabric.Port
	switch a.opts.Mode {
	case ModeSDN:
		// Sources wait for the controller's ACTIVATE after rules exist.
		cfg.StartInactive = node.Source
		pt, err := a.opts.Switch.AddPort("w"+strconv.FormatUint(uint64(as.Worker), 10),
			packet.WorkerAddr(l.App, uint32(as.Worker)))
		if err != nil {
			return err
		}
		port = pt
		tr = worker.NewSDNTransport(l.App, as.Worker, pt, worker.SDNTransportConfig{
			BatchSize:     batchSize,
			FlushDeadline: flushDeadline,
			Sampler:       a.opts.FrameSampler,
			TraceSink:     a.opts.TraceSink,
		})
		if err := a.publishPort(l.Name, as.Worker, pt.No()); err != nil {
			a.opts.Switch.RemovePort(pt.No())
			return err
		}
	case ModeStorm:
		// Baseline sources stay throttled until the topology is
		// activated, so startup ordering cannot lose tuples.
		if node.Source {
			if _, _, err := a.opts.KV.Get(paths.Activated(l.Name)); err != nil {
				cfg.StartInactive = true
			}
		}
		t, err := storm.Listen(as.Worker, a.opts.StormNet)
		if err != nil {
			return err
		}
		tr = t
	}

	topoName := l.Name
	cfg.OnExit = func(id topology.WorkerID, err error) {
		if err == nil {
			return
		}
		a.handleCrash(topoName, id, err)
	}
	w, err := worker.New(cfg, tr)
	if err != nil {
		if port != nil {
			a.opts.Switch.RemovePort(port.No())
		}
		_ = tr.Close()
		return err
	}
	a.mu.Lock()
	if a.stopped {
		a.mu.Unlock()
		if port != nil {
			a.opts.Switch.RemovePort(port.No())
		}
		_ = tr.Close()
		return fmt.Errorf("agent: stopped")
	}
	m := a.workers[topoName]
	if m == nil {
		m = make(map[topology.WorkerID]*running)
		a.workers[topoName] = m
	}
	m[as.Worker] = &running{
		w: w, port: port, topo: topoName, node: as.Node,
		logic: node.Logic, started: time.Now(),
	}
	a.mu.Unlock()
	w.Start()
	return nil
}

// publishPort CAS-updates the stored physical topology with the switch
// port this host bound for a worker, so the controller can program rules.
func (a *Agent) publishPort(name string, id topology.WorkerID, portNo uint32) error {
	for attempt := 0; attempt < 20; attempt++ {
		raw, ver, err := a.opts.KV.Get(paths.Physical(name))
		if err != nil {
			return err
		}
		p, err := topology.DecodePhysical(raw)
		if err != nil {
			return err
		}
		as := p.Worker(id)
		if as == nil {
			return fmt.Errorf("agent: worker %d vanished from physical topology", id)
		}
		as.Port = portNo
		if _, err := a.opts.KV.CompareAndSet(paths.Physical(name), p.Encode(), ver); err == nil {
			return nil
		} else if err != coordinator.ErrBadVersion {
			return err
		}
	}
	return fmt.Errorf("agent: publishPort: too many CAS conflicts")
}

// handleCrash implements the Storm recovery behaviour both systems share
// (§6.2): the dead worker's port disappears (emitting the PortStatus event
// Typhoon's fault detector reacts to), its heartbeats stop (so the manager
// eventually reschedules it), and the agent restarts it locally with
// exponential backoff — without backoff a crash-looping worker would write
// a fresh heartbeat on every restart and never look dead to the manager.
func (a *Agent) handleCrash(topoName string, id topology.WorkerID, err error) {
	a.mu.Lock()
	r := a.workers[topoName][id]
	if r == nil || a.stopped {
		a.mu.Unlock()
		return
	}
	r.crashed = true
	port := r.port
	r.port = nil
	key := crashKey(topoName, id)
	if time.Since(r.started) >= 10*a.opts.RestartDelay {
		a.crashStreaks[key] = 0 // healthy run: not a crash loop
	}
	a.crashStreaks[key]++
	shift := a.crashStreaks[key] - 1
	if shift > 6 {
		shift = 6
	}
	delay := a.opts.RestartDelay << shift
	a.mu.Unlock()

	if port != nil {
		_ = a.opts.Switch.RemovePort(port.No())
	}
	if a.opts.OnWorkerCrash != nil {
		a.opts.OnWorkerCrash(topoName, id, err)
	}

	// Local restart after the backoff, if the assignment still names us.
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		select {
		case <-a.stopCh:
			return
		case <-time.After(delay):
		}
		a.syncTopology(topoName)
	}()
}

func crashKey(topo string, id topology.WorkerID) string {
	return topo + "/" + strconv.FormatUint(uint64(id), 10)
}

// drainAndStop waits for the drain window, then stops a de-assigned
// worker once its input queue is empty (§3.5 stateless removal).
func (a *Agent) drainAndStop(name string, r *running) {
	defer a.wg.Done()
	select {
	case <-a.stopCh:
		return
	case <-time.After(a.opts.DrainDelay):
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if r.crashed || r.w.Transport().InQueueLen() == 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	a.mu.Lock()
	delete(a.workers[name], r.w.ID())
	delete(a.crashStreaks, crashKey(name, r.w.ID()))
	a.mu.Unlock()
	a.stopWorker(r)
}

func (a *Agent) stopWorker(r *running) {
	if !r.crashed {
		r.w.Stop()
	}
	if r.port != nil {
		_ = a.opts.Switch.RemovePort(r.port.No())
	}
}

func (a *Agent) heartbeatLoop() {
	defer a.wg.Done()
	ticker := time.NewTicker(a.opts.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-a.stopCh:
			return
		case now := <-ticker.C:
			a.mu.Lock()
			type hb struct {
				topo string
				id   topology.WorkerID
			}
			var alive []hb
			for topo, m := range a.workers {
				for id, r := range m {
					// A worker heartbeats only once fully up, so a
					// crash-looping worker (restarted locally, failing
					// again) never refreshes its heartbeat and the
					// manager's timeout eventually fires, as in Storm.
					if !r.crashed && !r.draining && now.Sub(r.started) >= a.opts.HeartbeatInterval {
						alive = append(alive, hb{topo, id})
					}
				}
			}
			a.mu.Unlock()
			stamp := []byte(strconv.FormatInt(now.UnixNano(), 10))
			for _, h := range alive {
				_, _ = a.opts.KV.Put(paths.Heartbeat(h.topo, h.id), stamp)
			}
		}
	}
}

package agent

import (
	"testing"
	"time"

	"typhoon/internal/coordinator"
	"typhoon/internal/paths"
	"typhoon/internal/storm"
	"typhoon/internal/switchfabric"
	"typhoon/internal/topology"
	"typhoon/internal/worker"
	"typhoon/internal/workload"
)

func testTopology(t *testing.T) (*topology.Logical, *topology.Physical) {
	t.Helper()
	b := topology.NewBuilder("agenttest", 1)
	b.Source("src", workload.LogicSeqSource, 1)
	b.Node("sink", workload.LogicSink, 1).ShuffleFrom("src")
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := &topology.Physical{
		App: 1, Name: "agenttest", NextWorker: 3,
		Workers: []topology.Assignment{
			{Worker: 1, Node: "src", Index: 0, Host: "h1"},
			{Worker: 2, Node: "sink", Index: 0, Host: "h1"},
		},
	}
	return l, p
}

func newSDNAgent(t *testing.T) (*Agent, *coordinator.Store, *switchfabric.Switch) {
	t.Helper()
	store := coordinator.NewStore()
	sw := switchfabric.New("h1", 1, switchfabric.Options{})
	sw.Start()
	t.Cleanup(sw.Stop)
	env := worker.NewSharedEnv()
	env.Set(workload.EnvStats, workload.NewStats(time.Second))
	env.Set(workload.EnvConfig, workload.NewConfig())
	a, err := New(Options{
		Host: "h1", Mode: ModeSDN, KV: store, Switch: sw, Env: env,
		HeartbeatInterval: 50 * time.Millisecond,
		DrainDelay:        50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Stop)
	return a, store, sw
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout: %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestAgentLaunchesAssignedWorkers(t *testing.T) {
	a, store, _ := newSDNAgent(t)
	l, p := testTopology(t)
	store.Put(paths.Logical(l.Name), l.Encode())
	store.Put(paths.Physical(l.Name), p.Encode())
	waitFor(t, 5*time.Second, "workers running", func() bool {
		return len(a.RunningWorkers("agenttest")) == 2
	})
	// Ports published back to the coordinator via CAS.
	waitFor(t, 5*time.Second, "ports published", func() bool {
		raw, _, err := store.Get(paths.Physical("agenttest"))
		if err != nil {
			return false
		}
		cur, err := topology.DecodePhysical(raw)
		if err != nil {
			return false
		}
		for _, as := range cur.Workers {
			if as.Port == 0 {
				return false
			}
		}
		return true
	})
	// Heartbeats appear for both workers.
	waitFor(t, 5*time.Second, "heartbeats", func() bool {
		kids, err := store.Children(paths.HeartbeatPrefix("agenttest"))
		return err == nil && len(kids) == 2
	})
}

func TestAgentIgnoresOtherHosts(t *testing.T) {
	a, store, _ := newSDNAgent(t)
	l, p := testTopology(t)
	p.Workers[1].Host = "elsewhere"
	store.Put(paths.Logical(l.Name), l.Encode())
	store.Put(paths.Physical(l.Name), p.Encode())
	waitFor(t, 5*time.Second, "local worker running", func() bool {
		return len(a.RunningWorkers("agenttest")) == 1
	})
	time.Sleep(100 * time.Millisecond)
	if n := len(a.RunningWorkers("agenttest")); n != 1 {
		t.Fatalf("running = %d", n)
	}
}

func TestAgentStopsDeassignedWorkers(t *testing.T) {
	a, store, _ := newSDNAgent(t)
	l, p := testTopology(t)
	store.Put(paths.Logical(l.Name), l.Encode())
	store.Put(paths.Physical(l.Name), p.Encode())
	waitFor(t, 5*time.Second, "workers running", func() bool {
		return len(a.RunningWorkers("agenttest")) == 2
	})
	// Remove the sink from the assignment.
	raw, _, _ := store.Get(paths.Physical("agenttest"))
	cur, _ := topology.DecodePhysical(raw)
	cur.Workers = cur.Workers[:1]
	store.Put(paths.Physical("agenttest"), cur.Encode())
	waitFor(t, 5*time.Second, "worker drained", func() bool {
		return len(a.RunningWorkers("agenttest")) == 1
	})
}

func TestAgentKillsTopologyOnDelete(t *testing.T) {
	a, store, _ := newSDNAgent(t)
	l, p := testTopology(t)
	store.Put(paths.Logical(l.Name), l.Encode())
	store.Put(paths.Physical(l.Name), p.Encode())
	waitFor(t, 5*time.Second, "workers running", func() bool {
		return len(a.RunningWorkers("agenttest")) == 2
	})
	store.Delete(paths.Logical(l.Name))
	store.Delete(paths.Physical(l.Name))
	waitFor(t, 5*time.Second, "workers killed", func() bool {
		return len(a.RunningWorkers("agenttest")) == 0
	})
}

func TestAgentRegistersItself(t *testing.T) {
	_, store, _ := newSDNAgent(t)
	if _, _, err := store.Get(paths.Agent("h1")); err != nil {
		t.Fatal("agent not registered")
	}
}

func TestStormAgentActivation(t *testing.T) {
	store := coordinator.NewStore()
	env := worker.NewSharedEnv()
	stats := workload.NewStats(time.Second)
	cfg := workload.NewConfig()
	cfg.Set(workload.CfgSeqLimit, 100)
	env.Set(workload.EnvStats, stats)
	env.Set(workload.EnvConfig, cfg)
	a, err := New(Options{
		Host: "h1", Mode: ModeStorm, KV: store, StormNet: storm.NewNetwork(), Env: env,
		HeartbeatInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Stop)

	l, p := testTopology(t)
	store.Put(paths.Logical(l.Name), l.Encode())
	store.Put(paths.Physical(l.Name), p.Encode())
	waitFor(t, 5*time.Second, "workers running", func() bool {
		return len(a.RunningWorkers("agenttest")) == 2
	})
	// Sources start throttled in baseline mode: no tuples yet.
	time.Sleep(150 * time.Millisecond)
	if n := stats.Counter("sink.total").Value(); n != 0 {
		t.Fatalf("source emitted %d before activation", n)
	}
	store.Put(paths.Activated("agenttest"), []byte("1"))
	waitFor(t, 5*time.Second, "tuples after activation", func() bool {
		return stats.Counter("sink.total").Value() == 100
	})
}

func TestAgentValidatesOptions(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("empty options accepted")
	}
	if _, err := New(Options{Host: "h", KV: coordinator.NewStore(), Mode: ModeSDN}); err == nil {
		t.Fatal("SDN mode without switch accepted")
	}
	if _, err := New(Options{Host: "h", KV: coordinator.NewStore(), Mode: ModeStorm}); err == nil {
		t.Fatal("storm mode without network accepted")
	}
}

package agent

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"typhoon/internal/coordinator"
	"typhoon/internal/paths"
	"typhoon/internal/switchfabric"
	"typhoon/internal/topology"
	"typhoon/internal/worker"
	"typhoon/internal/workload"
)

// TestAgentCrashRestartBackoff drives a worker through a crash loop and
// asserts consecutive local restarts space out exponentially: the gap
// between crash N and crash N+1 must be at least RestartDelay<<(N-1), so a
// crash-looping worker's heartbeats go stale and the manager can
// reschedule it.
func TestAgentCrashRestartBackoff(t *testing.T) {
	const restartDelay = 60 * time.Millisecond

	store := coordinator.NewStore()
	sw := switchfabric.New("h1", 1, switchfabric.Options{})
	sw.Start()
	t.Cleanup(sw.Stop)
	env := worker.NewSharedEnv()
	env.Set(workload.EnvStats, workload.NewStats(time.Second))
	env.Set(workload.EnvConfig, workload.NewConfig())

	var mu sync.Mutex
	var crashes []time.Time
	a, err := New(Options{
		Host: "h1", Mode: ModeSDN, KV: store, Switch: sw, Env: env,
		HeartbeatInterval: 50 * time.Millisecond,
		RestartDelay:      restartDelay,
		OnWorkerCrash: func(topo string, id topology.WorkerID, err error) {
			mu.Lock()
			crashes = append(crashes, time.Now())
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Stop)

	l, p := testTopology(t)
	store.Put(paths.Logical(l.Name), l.Encode())
	store.Put(paths.Physical(l.Name), p.Encode())
	waitFor(t, 5*time.Second, "workers running", func() bool {
		return len(a.RunningWorkers("agenttest")) == 2
	})

	// Fail the sink worker as soon as each incarnation comes up, four
	// crashes in a row (each incarnation is a distinct *worker.Worker).
	const sink = topology.WorkerID(2)
	var prev *worker.Worker
	for i := 0; i < 4; i++ {
		var w *worker.Worker
		waitFor(t, 5*time.Second, fmt.Sprintf("incarnation %d", i+1), func() bool {
			w = a.Worker("agenttest", sink)
			return w != nil && w != prev
		})
		prev = w
		w.Fail(fmt.Errorf("test crash %d", i+1))
		waitFor(t, 5*time.Second, fmt.Sprintf("crash %d observed", i+1), func() bool {
			mu.Lock()
			defer mu.Unlock()
			return len(crashes) >= i+1
		})
	}

	mu.Lock()
	defer mu.Unlock()
	if len(crashes) < 4 {
		t.Fatalf("crashes = %d, want 4", len(crashes))
	}
	// After crash N the restart waits RestartDelay<<(N-1) (quick crashes
	// never reset the streak), so that much time must separate the crashes.
	for i := 1; i < 4; i++ {
		gap := crashes[i].Sub(crashes[i-1])
		want := restartDelay << (i - 1)
		if gap < want {
			t.Fatalf("crash gap %d = %v, want at least %v (exponential backoff)", i, gap, want)
		}
	}
}

package experiments

import (
	"fmt"
	"time"

	"typhoon/internal/control"
	"typhoon/internal/core"
	"typhoon/internal/topology"
	"typhoon/internal/workload"
)

// StableUpdate exercises the §3.5 stable topology update procedures
// (Fig 6): a rate-limited source feeds a stateless splitter and a stateful
// counter; the splitter is scaled up and back down and the counter is
// scaled up, while every tuple is accounted for.
//
// It reports the tuple balance (sent vs received downstream) across the
// reconfigurations and the SIGNAL-driven flushes of the stateful node.
func StableUpdate(p Params) Result {
	p = p.WithDefaults()
	res := Result{ID: "Stable update", Title: "§3.5 stable topology update (zero-loss reconfiguration)"}

	e, err := startCluster(core.ModeTyphoon, 2, nil)
	if err != nil {
		res.Err = err
		return res
	}
	defer e.stop()
	// Bounded source: every emitted sentence must be split downstream.
	e.cfg.Set(workload.CfgSeqLimit, 0)

	b := topology.NewBuilder("stable", 1)
	b.Source("src", workload.LogicSeqSource, 1)
	b.Node("split", workload.LogicForwarder, 1).ShuffleFrom("src")
	b.Node("count", workload.LogicCounter, 2).FieldsFrom("split", 0).Stateful()
	b.Node("sink", workload.LogicSink, 1).GlobalFrom("count")
	l, err := b.Build()
	if err != nil {
		res.Err = err
		return res
	}
	if err := e.cluster.Submit(l, 10*time.Second); err != nil {
		res.Err = err
		return res
	}
	// Zero-loss guarantees hold under non-saturating load (§8 discusses
	// switch-level drops under overload); throttle the source with an
	// INPUT_RATE control tuple, exercising that path end to end.
	for _, w := range e.cluster.WorkersOf("stable", "src") {
		err := e.cluster.Controller.SendControlTuple("stable", w.ID(),
			control.Encode(control.KindInputRate, control.InputRate{TuplesPerSec: 20000}))
		if err != nil {
			res.Err = err
			return res
		}
	}
	time.Sleep(p.Warmup)

	// Quiesced baseline: pause the source, drain, and snapshot counters,
	// so the balance below covers exactly the reconfiguration window
	// (startup bursts before the rate limit landed are excluded).
	quiesce(e, true)
	time.Sleep(p.Measure / 2)
	emitted0 := totalEmitted(e, "stable", "src")
	processed0 := e.stats.Counter("forward.total").Value()
	quiesce(e, false)

	// Stateless scale-up and scale-down (Fig 6a).
	for _, par := range []int{3, 1} {
		if err := e.cluster.Manager.SetParallelism("stable", "split", par); err != nil {
			res.Err = err
			return res
		}
		if err := e.cluster.Manager.WaitReady("stable", 10*time.Second); err != nil {
			res.Err = err
			return res
		}
		time.Sleep(p.Measure / 2)
	}
	// Stateful scale-up (Fig 6b): SIGNAL flush precedes rerouting.
	if err := e.cluster.Manager.SetParallelism("stable", "count", 3); err != nil {
		res.Err = err
		return res
	}
	if err := e.cluster.Manager.WaitReady("stable", 10*time.Second); err != nil {
		res.Err = err
		return res
	}
	time.Sleep(p.Measure / 2)

	// Quiesce: stop the source, let the pipeline drain, then compare.
	quiesce(e, true)
	time.Sleep(p.Measure)

	emitted := totalEmitted(e, "stable", "src") - emitted0
	processed := e.stats.Counter("forward.total").Value() - processed0
	flushes := e.stats.Counter("count.flushes").Value()
	lost := int64(emitted) - int64(processed)
	res.Rows = []Row{
		{Label: "source emitted", Values: []float64{float64(emitted)}},
		{Label: "splitter processed", Values: []float64{float64(processed)}},
		{Label: "tuples lost", Values: []float64{float64(lost)}},
		{Label: "stateful SIGNAL flushes", Values: []float64{float64(flushes)}},
		{Label: "verdict", Text: verdict(lost == 0 && flushes >= 2)},
	}
	return res
}

// quiesce pauses or resumes the source workers through DEACTIVATE and
// ACTIVATE control tuples.
func quiesce(e *env, pause bool) {
	kind := control.KindActivate
	if pause {
		kind = control.KindDeactivate
	}
	for _, w := range e.cluster.WorkersOf("stable", "src") {
		_ = e.cluster.Controller.SendControlTuple("stable", w.ID(), control.Encode(kind, nil))
	}
}

func totalEmitted(e *env, topo, node string) uint64 {
	var n uint64
	for _, w := range e.cluster.WorkersOf(topo, node) {
		n += w.StatsSnapshot().Emitted
	}
	return n
}

func totalProcessedOf(e *env, topo, node string) uint64 {
	var n uint64
	for _, w := range e.cluster.WorkersOf(topo, node) {
		n += w.StatsSnapshot().Processed
	}
	return n
}

func verdict(ok bool) string {
	if ok {
		return "PASS: zero loss across reconfigurations, stateful caches flushed"
	}
	return fmt.Sprintf("CHECK: see rows above")
}

package experiments

// Entry is one runnable experiment.
type Entry struct {
	// ID matches the paper's table/figure numbering.
	ID string
	// Run regenerates the result.
	Run func(Params) Result
}

// All lists every experiment in paper order.
func All() []Entry {
	return []Entry{
		{"fig8a", Fig8a},
		{"fig8b", Fig8b},
		{"fig8c", Fig8c},
		{"fig8d", Fig8d},
		{"fig9", Fig9},
		{"fig10", Fig10},
		{"fig11", Fig11},
		{"fig12", Fig12},
		{"fig14", Fig14},
		{"table5", Table5},
		{"stable", StableUpdate},
		{"ablation-scheduler", AblationScheduler},
	}
}

// ByID finds one experiment, or nil.
func ByID(id string) *Entry {
	for _, e := range All() {
		if e.ID == id {
			out := e
			return &out
		}
	}
	return nil
}

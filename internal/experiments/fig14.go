package experiments

import (
	"fmt"
	"sync/atomic"
	"time"

	"typhoon/internal/core"
	"typhoon/internal/kafkasim"
	"typhoon/internal/kvstore"
	"typhoon/internal/topology"
	"typhoon/internal/workload"
)

// YahooTopology builds the Fig 13 advertisement-analytics pipeline with
// the given filter logic.
func YahooTopology(name string, app uint16, filterLogic string) (*topology.Logical, error) {
	b := topology.NewBuilder(name, app)
	b.Source("kafka", workload.LogicKafkaClient, 1)
	b.Node("parse", workload.LogicParse, 1).ShuffleFrom("kafka")
	b.Node("filter", filterLogic, 3).ShuffleFrom("parse")
	b.Node("projection", workload.LogicProjection, 3).ShuffleFrom("filter")
	b.Node("join", workload.LogicJoin, 3).FieldsFrom("projection", 0)
	b.Node("agg", workload.LogicAggStore, 1).FieldsFrom("join", 0)
	return b.Build()
}

// Fig14 regenerates Fig 14: a runtime computation-logic update on the
// Yahoo pipeline. The filter initially passes only "view" events (one
// third of traffic); mid-run the filter workers are hot-swapped for logic
// that also passes "click" events — without restarting the topology — and
// the windowed count at the aggregation worker roughly doubles.
//
// The row is the aggregated-events-per-second time series; the summary
// reports the before/after rates and their ratio (expected ≈ 2×).
func Fig14(p Params) Result {
	p = p.WithDefaults()
	res := Result{ID: "Fig 14", Title: "Runtime update on computation logic (agg events/s)"}

	e, err := startCluster(core.ModeTyphoon, 3, nil)
	if err != nil {
		res.Err = err
		return res
	}
	defer e.stop()

	log := kafkasim.New(4)
	kv := kvstore.New()
	gen := workload.NewAdEventGen(1, 10, 10)
	gen.PrepopulateCampaigns(kv)
	e.cluster.Env.Set(workload.EnvKafka, log)
	e.cluster.Env.Set(workload.EnvKV, kv)
	e.cfg.Set(workload.CfgWindowMillis, 1000)

	// Continuous event production at a fixed rate.
	stop := make(chan struct{})
	var produced atomic.Int64
	go func() {
		ticker := time.NewTicker(10 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case now := <-ticker.C:
				gen.Produce(log, 300, now)
				produced.Add(300)
			}
		}
	}()
	defer close(stop)

	l, err := YahooTopology("yahoo", 1, workload.LogicFilterView)
	if err != nil {
		res.Err = err
		return res
	}
	if err := e.cluster.Submit(l, 10*time.Second); err != nil {
		res.Err = err
		return res
	}

	before := e.rate("yahoo.agg.total", p.Warmup, p.Measure)

	// Reconfiguration request: swap the filter computation logic while
	// the pipeline keeps running.
	if err := e.cluster.Manager.SwapLogic("yahoo", "filter", workload.LogicFilterViewClick); err != nil {
		res.Err = err
		return res
	}
	if err := e.cluster.Manager.WaitReady("yahoo", 10*time.Second); err != nil {
		res.Err = err
		return res
	}
	after := e.rate("yahoo.agg.total", p.Warmup, p.Measure)

	series := sumSeries(e.stats, countTimelinesOf(e, "agg/"))
	res.Rows = append(res.Rows, Row{Label: "agg events/s", Values: downsample(series, 12)})
	res.Rows = append(res.Rows, Row{
		Label: "summary",
		Text: fmt.Sprintf("view-only %.0f ev/s → view+click %.0f ev/s (×%.2f, expect ≈2.0); windows stored: %d",
			before, after, after/maxf(before, 1), len(kv.Keys("window:"))),
	})
	return res
}

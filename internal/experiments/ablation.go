package experiments

import (
	"time"

	"typhoon/internal/control"
	"typhoon/internal/core"
	"typhoon/internal/scheduler"
	"typhoon/internal/topology"
	"typhoon/internal/workload"
)

// AblationScheduler quantifies the §5 scheduler design choice: the Typhoon
// locality-aware scheduler co-locates topologically adjacent workers, the
// round-robin baseline spreads them. The experiment schedules the same
// word-count topology both ways on three hosts and reports (a) the static
// remote-edge count and (b) the measured fraction of data frames that
// crossed a host-level tunnel.
func AblationScheduler(p Params) Result {
	p = p.WithDefaults()
	res := Result{
		ID:      "Ablation: scheduler",
		Title:   "Locality-aware vs round-robin placement",
		Columns: []string{"remote-edges", "tunnel-frac"},
	}
	for _, cfg := range []struct {
		name  string
		sched scheduler.Scheduler
	}{
		{"ROUND-ROBIN", scheduler.RoundRobin{}},
		{"LOCALITY", scheduler.Locality{}},
	} {
		remoteEdges, tunnelFrac, err := measurePlacement(cfg.sched, p)
		if err != nil {
			res.Err = err
			return res
		}
		res.Rows = append(res.Rows, Row{
			Label:  cfg.name,
			Values: []float64{float64(remoteEdges), tunnelFrac},
		})
	}
	return res
}

func measurePlacement(sched scheduler.Scheduler, p Params) (int, float64, error) {
	e, err := startCluster(core.ModeTyphoon, 3, func(c *core.Config) {
		c.Scheduler = sched
	})
	if err != nil {
		return 0, 0, err
	}
	defer e.stop()

	b := topology.NewBuilder("placement", 1)
	b.Source("src", workload.LogicSentenceSource, 1)
	b.Node("split", workload.LogicSplitter, 3).ShuffleFrom("src")
	b.Node("count", workload.LogicCounter, 3).FieldsFrom("split", 0)
	l, err := b.Build()
	if err != nil {
		return 0, 0, err
	}
	if err := e.cluster.Submit(l, 10*time.Second); err != nil {
		return 0, 0, err
	}
	for _, w := range e.cluster.WorkersOf("placement", "src") {
		_ = e.cluster.Controller.SendControlTuple("placement", w.ID(),
			control.Encode(control.KindInputRate, control.InputRate{TuplesPerSec: 10000}))
	}
	time.Sleep(p.Warmup + p.Measure)

	lStored, pStored, err := e.cluster.Manager.Describe("placement")
	if err != nil {
		return 0, 0, err
	}
	remoteEdges := scheduler.RemoteEdges(lStored, pStored)

	// Measured: fraction of delivered frames that traversed a tunnel.
	var tunnelTx, totalTx uint64
	for _, host := range pStored.Hosts() {
		h := e.cluster.Host(host)
		if h == nil || h.Switch == nil {
			continue
		}
		for _, ps := range h.Switch.PortStatsSnapshot() {
			totalTx += ps.TxPackets
			if port := h.Switch.Port(ps.PortNo); port != nil && port.IsTunnel() {
				tunnelTx += ps.TxPackets
			}
		}
	}
	frac := 0.0
	if totalTx > 0 {
		frac = float64(tunnelTx) / float64(totalTx)
	}
	return remoteEdges, frac, nil
}

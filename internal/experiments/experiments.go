// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) on the emulated cluster: Fig 8 (forwarding throughput
// and latency, with and without acking), Fig 9 (one-to-many), Fig 10
// (fault recovery), Fig 11 (auto scaling), Fig 12 (live debugging
// overhead), Fig 14 (runtime computation-logic update) and Table 5 (live
// debugger comparison).
//
// Absolute numbers differ from the paper's DPDK/10G testbed; the harness
// reproduces the *shape* of each result: who wins, by what factor, and
// where behaviour changes. Durations are scaled down by default and can be
// stretched via Params.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"typhoon/internal/core"
	"typhoon/internal/metrics"
	"typhoon/internal/topology"
	"typhoon/internal/workload"
)

// Params scales every experiment.
type Params struct {
	// Warmup is discarded before measuring.
	Warmup time.Duration
	// Measure is the measurement window.
	Measure time.Duration
	// Hosts is the cluster size (defaults per experiment).
	Hosts int
}

// WithDefaults fills missing fields.
func (p Params) WithDefaults() Params {
	if p.Warmup <= 0 {
		p.Warmup = time.Second
	}
	if p.Measure <= 0 {
		p.Measure = 2 * time.Second
	}
	return p
}

// Row is one printable result row.
type Row struct {
	Label  string
	Values []float64
	Text   string
}

// Result is one regenerated table or figure.
type Result struct {
	ID      string
	Title   string
	Columns []string
	Rows    []Row
	Err     error
}

// Print renders the result in the paper's row/series format.
func (r Result) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	if r.Err != nil {
		fmt.Fprintf(w, "  ERROR: %v\n", r.Err)
		return
	}
	if len(r.Columns) > 0 {
		fmt.Fprintf(w, "  %-28s %s\n", "", strings.Join(r.Columns, "  "))
	}
	for _, row := range r.Rows {
		if row.Text != "" {
			fmt.Fprintf(w, "  %-28s %s\n", row.Label, row.Text)
			continue
		}
		vals := make([]string, len(row.Values))
		for i, v := range row.Values {
			vals[i] = formatValue(v)
		}
		fmt.Fprintf(w, "  %-28s %s\n", row.Label, strings.Join(vals, "  "))
	}
}

func formatValue(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fK", v/1e3)
	case v == float64(int64(v)):
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// env is one running cluster with its measurement plumbing.
type env struct {
	cluster *core.Cluster
	stats   *workload.Stats
	cfg     *workload.Config
}

// startCluster builds a cluster in the given mode with fast test timings.
func startCluster(mode core.Mode, hosts int, mutate func(*core.Config)) (*env, error) {
	names := make([]string, hosts)
	for i := range names {
		names[i] = fmt.Sprintf("h%d", i+1)
	}
	cfg := core.Config{
		Mode:              mode,
		Hosts:             names,
		HeartbeatInterval: 200 * time.Millisecond,
		HeartbeatTimeout:  3 * time.Second,
		MonitorInterval:   300 * time.Millisecond,
		DrainDelay:        150 * time.Millisecond,
		RestartDelay:      300 * time.Millisecond,
		AckTimeout:        2 * time.Second,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := core.NewCluster(cfg)
	if err != nil {
		return nil, err
	}
	e := &env{
		cluster: c,
		stats:   workload.NewStats(250 * time.Millisecond),
		cfg:     workload.NewConfig(),
	}
	c.Env.Set(workload.EnvStats, e.stats)
	c.Env.Set(workload.EnvConfig, e.cfg)
	return e, nil
}

func (e *env) stop() { e.cluster.Stop() }

// await polls cond every 10ms until it holds or timeout passes, reporting
// whether it held. Condition-based settling replaces fixed sleeps so the
// suite runs as fast as the cluster actually settles — and doesn't flake
// when -race makes it settle slower.
func await(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// rate measures a counter's steady-state rate: warmup, then delta over the
// measurement window, in events per second.
func (e *env) rate(counter string, warmup, window time.Duration) float64 {
	time.Sleep(warmup)
	before := e.stats.Counter(counter).Value()
	start := time.Now()
	time.Sleep(window)
	delta := e.stats.Counter(counter).Value() - before
	return float64(delta) / time.Since(start).Seconds()
}

// sumSeries adds multiple timelines pointwise.
func sumSeries(stats *workload.Stats, names []string) []float64 {
	var out []float64
	for _, n := range names {
		s := stats.Timeline(n).Rates()
		for i, v := range s {
			if i >= len(out) {
				out = append(out, 0)
			}
			out[i] += v
		}
	}
	return out
}

// modeName renders a cluster mode like the paper's labels.
func modeName(m core.Mode) string {
	if m == core.ModeStorm {
		return "STORM"
	}
	return "TYPHOON"
}

// forwardingTopology is the two-worker chain of §6.1.
func forwardingTopology(name string, app uint16, ackers int) (*topology.Logical, error) {
	b := topology.NewBuilder(name, app)
	if ackers > 0 {
		b.Ackers(ackers)
	}
	b.Source("src", workload.LogicSeqSource, 1)
	b.Node("sink", workload.LogicSeqChecker, 1).ShuffleFrom("src")
	return b.Build()
}

// downsample reduces a series to at most n points by averaging buckets.
func downsample(s []float64, n int) []float64 {
	if len(s) <= n || n <= 0 {
		return s
	}
	out := make([]float64, n)
	per := float64(len(s)) / float64(n)
	for i := 0; i < n; i++ {
		lo, hi := int(float64(i)*per), int(float64(i+1)*per)
		if hi > len(s) {
			hi = len(s)
		}
		sum := 0.0
		for _, v := range s[lo:hi] {
			sum += v
		}
		if hi > lo {
			out[i] = sum / float64(hi-lo)
		}
	}
	return out
}

// cdfRow renders CDF points as a row.
func cdfRow(label string, lat *metrics.Latencies) Row {
	points := lat.CDF(10)
	vals := make([]float64, 0, len(points))
	for _, p := range points {
		vals = append(vals, float64(p.Latency.Microseconds())/1000.0)
	}
	return Row{Label: label, Values: vals}
}

package experiments

import (
	"fmt"

	"typhoon/internal/core"
)

// Table5 regenerates Table 5: the Storm vs Typhoon live-debugger
// comparison. The qualitative rows follow from the two mechanisms'
// construction; the measured rows quantify them by running the Fig 12
// scenario on both systems.
func Table5(p Params) Result {
	p = p.WithDefaults()
	res := Result{
		ID:    "Table 5",
		Title: "Storm vs Typhoon: live debugger comparison",
		Rows: []Row{
			{Label: "Debugging granularity", Text: "Storm: entire topology or worker set | Typhoon: each worker"},
			{Label: "Resource requirement", Text: "Storm: pre-provisioned memory and TCP connections | Typhoon: memory allocated on demand"},
			{Label: "Dynamic provisioning", Text: "Storm: no (predefined in topology) | Typhoon: yes (debug worker deployed at runtime)"},
			{Label: "Multiple serialization", Text: "Storm: yes (per-destination copies) | Typhoon: no (switch-level frame mirroring)"},
		},
	}
	for _, mode := range []core.Mode{core.ModeStorm, core.ModeTyphoon} {
		row, captured, err := runDebugScenario(mode, p)
		if err != nil {
			res.Err = err
			return res
		}
		before, during := row.Values[0], row.Values[1]
		res.Rows = append(res.Rows, Row{
			Label: fmt.Sprintf("Measured impact (%s)", modeName(mode)),
			Text: fmt.Sprintf("throughput %.0f → %.0f t/s while debugging (%.0f%% retained), %d tuples captured",
				before, during, 100*during/maxf(before, 1), captured),
		})
	}
	return res
}

package experiments

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"typhoon/internal/metrics"
)

func TestRegistryIDsUniqueAndResolvable(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Run == nil {
			t.Fatalf("malformed entry %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if ByID(e.ID) == nil {
			t.Fatalf("ByID(%q) = nil", e.ID)
		}
	}
	if ByID("nope") != nil {
		t.Fatal("unknown id resolved")
	}
}

func TestResultPrintFormats(t *testing.T) {
	res := Result{
		ID:      "Fig X",
		Title:   "demo",
		Columns: []string{"a", "b"},
		Rows: []Row{
			{Label: "numbers", Values: []float64{1234567, 2500, 3, 0.5}},
			{Label: "text", Text: "hello"},
		},
	}
	var buf bytes.Buffer
	res.Print(&buf)
	out := buf.String()
	for _, want := range []string{"Fig X", "demo", "1.23M", "2.5K", "hello", "0.500"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	res.Err = errors.New("boom")
	buf.Reset()
	res.Print(&buf)
	if !strings.Contains(buf.String(), "ERROR: boom") {
		t.Fatal("error not rendered")
	}
}

func TestDownsample(t *testing.T) {
	s := make([]float64, 100)
	for i := range s {
		s[i] = float64(i)
	}
	out := downsample(s, 10)
	if len(out) != 10 {
		t.Fatalf("len = %d", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i] <= out[i-1] {
			t.Fatal("monotone input should stay monotone after averaging")
		}
	}
	// Short series pass through untouched.
	if got := downsample([]float64{1, 2}, 10); len(got) != 2 {
		t.Fatal("short series resampled")
	}
}

func TestCDFRowConvertsToMilliseconds(t *testing.T) {
	lat := metrics.NewLatencies(0)
	for i := 1; i <= 100; i++ {
		lat.Record(time.Duration(i) * time.Millisecond)
	}
	row := cdfRow("x", lat)
	if len(row.Values) != 10 {
		t.Fatalf("points = %d", len(row.Values))
	}
	if row.Values[9] < 99 || row.Values[9] > 101 {
		t.Fatalf("P100 = %v ms", row.Values[9])
	}
}

func TestParamsDefaults(t *testing.T) {
	p := Params{}.WithDefaults()
	if p.Warmup <= 0 || p.Measure <= 0 {
		t.Fatal("defaults not applied")
	}
	q := Params{Warmup: time.Minute, Measure: time.Minute}.WithDefaults()
	if q.Warmup != time.Minute {
		t.Fatal("explicit values overridden")
	}
}

package experiments

import (
	"testing"
	"time"

	"typhoon/internal/control"
	"typhoon/internal/core"
	"typhoon/internal/topology"
	"typhoon/internal/workload"
)

// TestReconfigurationZeroLoss asserts the §3.5 stable-update property at
// the tuple level: under non-saturating load, scale-up and scale-down of a
// stateless node lose no tuples (counted via the stats registry, which
// survives worker removal).
func TestReconfigurationZeroLoss(t *testing.T) {
	e, err := startCluster(core.ModeTyphoon, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer e.stop()
	b := topology.NewBuilder("stable", 1)
	b.Source("src", workload.LogicSeqSource, 1)
	b.Node("split", workload.LogicForwarder, 1).ShuffleFrom("src")
	b.Node("count", workload.LogicCounter, 2).FieldsFrom("split", 0).Stateful()
	b.Node("sink", workload.LogicSink, 1).GlobalFrom("count")
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.cluster.Submit(l, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	for _, w := range e.cluster.WorkersOf("stable", "src") {
		err := e.cluster.Controller.SendControlTuple("stable", w.ID(),
			control.Encode(control.KindInputRate, control.InputRate{TuplesPerSec: 20000}))
		if err != nil {
			t.Fatal(err)
		}
	}
	if !await(5*time.Second, func() bool {
		return e.stats.Counter("forward.total").Value() > 1000
	}) {
		t.Fatal("stream never got underway")
	}

	balance := func(tag string) {
		t.Helper()
		quiesce(e, true)
		// Settle: the pause control tuple is asynchronous, so require the
		// emitted count to hold still across several consecutive polls with
		// processing fully caught up before declaring the stream drained. A
		// timeout means the counts never converged — i.e. tuples were lost.
		var last, emitted, processed uint64
		stable := 0
		if !await(10*time.Second, func() bool {
			emitted = totalEmitted(e, "stable", "src")
			processed = e.stats.Counter("forward.total").Value()
			if emitted > 0 && emitted == last && processed == emitted {
				stable++
			} else {
				stable = 0
			}
			last = emitted
			return stable >= 5
		}) {
			t.Fatalf("%s: never drained clean: emitted %d, processed %d (lost %d)",
				tag, emitted, processed, int64(emitted)-int64(processed))
		}
		quiesce(e, false)
	}
	// awaitFlow waits for traffic to actually move through the updated
	// placement before the next balance check.
	awaitFlow := func() {
		t.Helper()
		before := e.stats.Counter("forward.total").Value()
		if !await(5*time.Second, func() bool {
			return e.stats.Counter("forward.total").Value() > before+1000
		}) {
			t.Fatal("flow never resumed after reconfiguration")
		}
	}

	balance("steady state")
	if err := e.cluster.Manager.SetParallelism("stable", "split", 3); err != nil {
		t.Fatal(err)
	}
	if err := e.cluster.Manager.WaitReady("stable", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	awaitFlow()
	balance("after scale-up 1->3")

	if err := e.cluster.Manager.SetParallelism("stable", "split", 1); err != nil {
		t.Fatal(err)
	}
	if err := e.cluster.Manager.WaitReady("stable", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	awaitFlow()
	balance("after scale-down 3->1")
}

package experiments

import (
	"fmt"
	"time"

	"typhoon/internal/controller"
	"typhoon/internal/core"
	"typhoon/internal/topology"
	"typhoon/internal/workload"
)

// Fig10 regenerates Fig 10: the word-count topology (1 source, 2 split, 4
// count on 3 hosts) with one split worker failing mid-run.
//
// In Storm (Fig 10a) the dead splitter's share of traffic is lost until
// heartbeat-timeout rescheduling — and stays lost because the restarted
// worker keeps failing, so aggregate count throughput drops roughly in
// half. In Typhoon (Fig 10b) the fault detector sees the switch port
// disappear and immediately redirects tuples to the surviving splitter, so
// the aggregate recovers at once.
//
// Rows are the aggregate count-worker throughput time series (tuples/s,
// downsampled), plus summary statistics.
func Fig10(p Params) Result {
	p = p.WithDefaults()
	res := Result{ID: "Fig 10", Title: "Fault recovery: aggregate count throughput over time"}
	for _, mode := range []core.Mode{core.ModeStorm, core.ModeTyphoon} {
		series, summary, err := runFaultScenario(mode, p)
		if err != nil {
			res.Err = err
			return res
		}
		res.Rows = append(res.Rows, Row{
			Label:  fmt.Sprintf("%s (t/s)", modeName(mode)),
			Values: downsample(series, 12),
		})
		res.Rows = append(res.Rows, Row{Label: "  " + modeName(mode) + " summary", Text: summary})
	}
	return res
}

func runFaultScenario(mode core.Mode, p Params) ([]float64, string, error) {
	crashes := 0
	e, err := startCluster(mode, 3, func(c *core.Config) {
		c.OnWorkerCrash = func(string, topology.WorkerID, error) { crashes++ }
	})
	if err != nil {
		return nil, "", err
	}
	defer e.stop()
	e.cfg.Set(workload.CfgSourceRate, 8000)
	var fd *controller.FaultDetector
	if mode == core.ModeTyphoon {
		fd = controller.NewFaultDetector()
		e.cluster.Controller.AddApp(fd)
	}

	b := topology.NewBuilder("wordcount", 1)
	b.Source("input", workload.LogicSentenceSource, 1)
	b.Node("split", workload.LogicFaultySplitter, 2).ShuffleFrom("input")
	b.Node("count", workload.LogicCounter, 4).FieldsFrom("split", 0)
	l, err := b.Build()
	if err != nil {
		return nil, "", err
	}
	if err := e.cluster.Submit(l, 10*time.Second); err != nil {
		return nil, "", err
	}

	// Healthy phase, fault, observation phase. A controlled input rate
	// keeps the effect attributable to the fault, not CPU contention.
	time.Sleep(p.Warmup + p.Measure)
	preRate := e.rate("count.total", 0, p.Measure)
	e.cfg.Set(workload.CfgFaultIndex, 0)
	e.cfg.Set(workload.CfgFaultArmed, 1)
	time.Sleep(p.Measure)
	postRate := e.rate("count.total", 0, p.Measure)

	series := sumSeries(e.stats, countTimelines(e))
	summary := fmt.Sprintf("pre-fault %.0f t/s, post-fault %.0f t/s (%.0f%%), crashes %d",
		preRate, postRate, 100*postRate/maxf(preRate, 1), crashes)
	if fd != nil {
		summary += fmt.Sprintf(", detected %d", fd.Detected())
	}
	return series, summary, nil
}

func countTimelines(e *env) []string {
	var names []string
	for _, n := range e.stats.Names() {
		if len(n) > 6 && n[:6] == "count/" {
			names = append(names, n)
		}
	}
	return names
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

package experiments

import (
	"fmt"
	"time"

	"typhoon/internal/controller"
	"typhoon/internal/core"
	"typhoon/internal/topology"
	"typhoon/internal/workload"
)

// Fig11 regenerates Fig 11: the word-count topology under an input rate
// the configured splitters cannot sustain.
//
// In the baseline (Fig 11a) the overloaded splitter eventually dies with
// an OutOfMemoryError analogue, recovers after restart, and keeps dying —
// count throughput repeatedly dips. In Typhoon (Fig 11b/c) the auto-scaler
// app notices the growing queue from pushed worker statistics and adds a
// third splitter before memory runs out, after which throughput is stable
// and no worker crashes.
func Fig11(p Params) Result {
	p = p.WithDefaults()
	res := Result{ID: "Fig 11", Title: "Auto scaling under overload"}
	for _, mode := range []core.Mode{core.ModeStorm, core.ModeTyphoon} {
		series, summary, err := runOverloadScenario(mode, p)
		if err != nil {
			res.Err = err
			return res
		}
		res.Rows = append(res.Rows, Row{
			Label:  fmt.Sprintf("%s count t/s", modeName(mode)),
			Values: downsample(series, 12),
		})
		res.Rows = append(res.Rows, Row{Label: "  " + modeName(mode) + " summary", Text: summary})
	}
	return res
}

func runOverloadScenario(mode core.Mode, p Params) ([]float64, string, error) {
	crashes := 0
	e, err := startCluster(mode, 3, func(c *core.Config) {
		c.OnWorkerCrash = func(string, topology.WorkerID, error) { crashes++ }
		c.SwitchRingCapacity = 8192
	})
	if err != nil {
		return nil, "", err
	}
	defer e.stop()
	// Queueing-theoretic setup: each splitter serves 1/work ≈ 6.6k
	// tuples/s; the source produces 15k/s, so two splitters are
	// overloaded (queues grow ~1.7k/s) but three are not. The "memory"
	// limit (OOM) is hit after ~2 s of unchecked growth — enough time for
	// Typhoon's auto-scaler to add the third splitter first.
	e.cfg.Set(workload.CfgSourceRate, 15000)
	e.cfg.Set(workload.CfgWorkNanos, 150_000)
	e.cfg.Set(workload.CfgOOMThreshold, 4000)

	var as *controller.AutoScaler
	if mode == core.ModeTyphoon {
		as = controller.NewAutoScaler()
		as.AddPolicy(controller.AutoScalePolicy{
			Topo: "overload", Node: "split",
			ScaleUpQueue: 300, Max: 6, Cooldown: time.Second,
		})
		e.cluster.Controller.AddApp(as)
	}

	b := topology.NewBuilder("overload", 1)
	b.Source("input", workload.LogicSentenceSource, 1)
	b.Node("split", workload.LogicOOMSplitter, 2).ShuffleFrom("input")
	b.Node("count", workload.LogicCounter, 4).FieldsFrom("split", 0)
	l, err := b.Build()
	if err != nil {
		return nil, "", err
	}
	if err := e.cluster.Submit(l, 10*time.Second); err != nil {
		return nil, "", err
	}

	time.Sleep(p.Warmup + 4*p.Measure)

	series := sumSeries(e.stats, countTimelinesOf(e, "count/"))
	splitters := len(e.cluster.WorkersOf("overload", "split"))
	summary := fmt.Sprintf("splitter crashes %d, final splitters %d", crashes, splitters)
	if as != nil {
		summary += fmt.Sprintf(", scale-ups %d", as.ScaleUps())
	}
	return series, summary, nil
}

func countTimelinesOf(e *env, prefix string) []string {
	var names []string
	for _, n := range e.stats.Names() {
		if len(n) >= len(prefix) && n[:len(prefix)] == prefix {
			names = append(names, n)
		}
	}
	return names
}

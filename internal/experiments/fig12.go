package experiments

import (
	"fmt"
	"time"

	"typhoon/internal/controller"
	"typhoon/internal/core"
	"typhoon/internal/topology"
	"typhoon/internal/workload"
)

// Fig12 regenerates Fig 12: live-debugging overhead. A source→sink
// pipeline runs at maximum speed; partway through, live logging of the
// source's tuples is activated and later deactivated.
//
// The baseline taps by emitting every tuple a second time to a
// pre-provisioned debug worker (extra application-level serialization), so
// its throughput drops while the tap is active. Typhoon attaches a debug
// worker dynamically and mirrors frames with switch rules, so its
// throughput is unaffected.
//
// Rows report throughput before / during / after the tap plus the number
// of tuples the debug worker captured.
func Fig12(p Params) Result {
	p = p.WithDefaults()
	res := Result{
		ID:      "Fig 12",
		Title:   "Live debugging overhead (sink tuples/s)",
		Columns: []string{"before", "during", "after", "ser/tuple"},
	}
	for _, mode := range []core.Mode{core.ModeStorm, core.ModeTyphoon} {
		row, captured, err := runDebugScenario(mode, p)
		if err != nil {
			res.Err = err
			return res
		}
		res.Rows = append(res.Rows, row)
		res.Rows = append(res.Rows, Row{
			Label: "  " + modeName(mode) + " captured",
			Text:  fmt.Sprintf("%d tuples at debug worker", captured),
		})
	}
	return res
}

func runDebugScenario(mode core.Mode, p Params) (Row, uint64, error) {
	e, err := startCluster(mode, 1, nil)
	if err != nil {
		return Row{}, 0, err
	}
	defer e.stop()

	b := topology.NewBuilder("livedbg", 1)
	b.Source("src", workload.LogicTappableSeqSource, 1)
	b.Node("sink", workload.LogicSink, 1).ShuffleFrom("src")
	if mode == core.ModeStorm {
		// Pre-provisioned debug worker wired at application design time
		// (Table 5's "predefined" provisioning).
		b.Node("debug", workload.LogicDebugSink, 1).
			ShuffleFrom("src").OnStream(workload.DebugTapStream)
	}
	l, err := b.Build()
	if err != nil {
		return Row{}, 0, err
	}
	if err := e.cluster.Submit(l, 10*time.Second); err != nil {
		return Row{}, 0, err
	}

	var dbg *controller.LiveDebugger
	srcWorker := e.cluster.WorkersOf("livedbg", "src")[0]
	before := e.rate("sink.total", p.Warmup, p.Measure)
	seen0 := e.stats.Counter("debug.seen").Value()

	// Activate the tap.
	if mode == core.ModeStorm {
		e.cfg.Set(workload.CfgDebugTap, 1)
	} else {
		dbg = controller.NewLiveDebugger()
		e.cluster.Controller.AddApp(dbg)
		src := e.cluster.WorkersOf("livedbg", "src")
		if len(src) != 1 {
			return Row{}, 0, fmt.Errorf("experiments: source missing")
		}
		if _, err := dbg.Attach(e.cluster.Controller, "livedbg", src[0].ID(), workload.LogicDebugSink); err != nil {
			return Row{}, 0, err
		}
	}
	// Measure the tap window, tracking the intrinsic cost: source-side
	// serializations per pipeline tuple (2.0 for the baseline's extra
	// copy, 1.0 for Typhoon's switch-level mirroring). The tap is live
	// once mirrored tuples reach the debug sink — wait on that evidence
	// instead of a fixed fraction of the warmup.
	await(p.Warmup, func() bool {
		return e.stats.Counter("debug.seen").Value() > seen0
	})
	emittedCounter := fmt.Sprintf("emitted/src/%d", srcWorker.ID())
	ser0 := srcWorker.Transport().Stats().Serializations
	emit0 := e.stats.Counter(emittedCounter).Value()
	sink0 := e.stats.Counter("sink.total").Value()
	start := time.Now()
	time.Sleep(p.Measure)
	during := float64(e.stats.Counter("sink.total").Value()-sink0) / time.Since(start).Seconds()
	serPerTuple := float64(srcWorker.Transport().Stats().Serializations-ser0) /
		maxf(float64(e.stats.Counter(emittedCounter).Value()-emit0), 1)
	captured := e.stats.Counter("debug.seen").Value()

	// Deactivate the tap.
	if mode == core.ModeStorm {
		e.cfg.Set(workload.CfgDebugTap, 0)
	} else {
		src := e.cluster.WorkersOf("livedbg", "src")
		if err := dbg.Detach(e.cluster.Controller, "livedbg", src[0].ID()); err != nil {
			return Row{}, 0, err
		}
	}
	after := e.rate("sink.total", p.Warmup/2, p.Measure)

	return Row{
		Label:  modeName(mode),
		Values: []float64{before, during, after, serPerTuple},
	}, captured, nil
}

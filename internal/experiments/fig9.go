package experiments

import (
	"fmt"
	"time"

	"typhoon/internal/core"
	"typhoon/internal/topology"
	"typhoon/internal/workload"
)

// FanOuts are the sink counts swept in Fig 9.
var FanOuts = []int{2, 3, 4, 5, 6}

// Fig9 regenerates Fig 9: one-to-many tuple forwarding throughput as the
// number of broadcast sinks grows. The baseline pays one serialization and
// one TCP write per sink, so its source throughput falls with fan-out;
// Typhoon serializes once and the switch replicates, so it stays flat.
//
// Values are source tuples/s per fan-out (columns 2..6 sinks); rows cover
// Storm and Typhoon in LOCAL and REMOTE placements, like the figure's
// four bar groups.
func Fig9(p Params) Result {
	p = p.WithDefaults()
	res := Result{
		ID:    "Fig 9",
		Title: "One-to-many communication (source tuples/s)",
		Columns: func() []string {
			var c []string
			for _, n := range FanOuts {
				c = append(c, fmt.Sprintf("%d", n))
			}
			return c
		}(),
	}
	for _, mode := range []core.Mode{core.ModeStorm, core.ModeTyphoon} {
		for _, place := range placements {
			row := Row{Label: fmt.Sprintf("%s (%s)", modeName(mode), place.name)}
			for _, sinks := range FanOuts {
				tput, err := measureBroadcast(mode, place.hosts, sinks, p)
				if err != nil {
					res.Err = err
					return res
				}
				row.Values = append(row.Values, tput)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res
}

func measureBroadcast(mode core.Mode, hosts, sinks int, p Params) (float64, error) {
	e, err := startCluster(mode, hosts, nil)
	if err != nil {
		return 0, err
	}
	defer e.stop()
	b := topology.NewBuilder("bcast", 1)
	b.Source("src", workload.LogicSeqSource, 1)
	b.Node("sink", workload.LogicSink, sinks).AllFrom("src")
	l, err := b.Build()
	if err != nil {
		return 0, err
	}
	if err := e.cluster.Submit(l, 10*time.Second); err != nil {
		return 0, err
	}
	// Source throughput: every emitted tuple reaches all sinks, so the
	// sink aggregate divided by fan-out is the per-tuple rate.
	agg := e.rate("sink.total", p.Warmup, p.Measure)
	return agg / float64(sinks), nil
}

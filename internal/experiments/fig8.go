package experiments

import (
	"fmt"
	"time"

	"typhoon/internal/core"
	"typhoon/internal/metrics"
)

// BatchSizes are the Typhoon I/O batch sizes swept in Fig 8.
var BatchSizes = []int{100, 250, 500, 1000}

// placements are the LOCAL / REMOTE configurations of §6.1.
var placements = []struct {
	name  string
	hosts int
}{
	{"LOCAL", 1},
	{"REMOTE", 2},
}

// Fig8a regenerates Fig 8(a): maximum tuple forwarding throughput of the
// two-worker topology, Storm vs Typhoon at several batch sizes, with both
// workers co-located (LOCAL) and on separate hosts (REMOTE).
func Fig8a(p Params) Result {
	return runForwarding("Fig 8a", "Tuple forwarding throughput (tuples/s)", p, 0)
}

// Fig8b regenerates Fig 8(b): the same topology with guaranteed processing
// through one acker worker.
func Fig8b(p Params) Result {
	return runForwarding("Fig 8b", "Tuple forwarding with ACK (tuples/s)", p, 1)
}

func runForwarding(id, title string, p Params, ackers int) Result {
	p = p.WithDefaults()
	res := Result{ID: id, Title: title, Columns: []string{"LOCAL", "REMOTE"}}

	type config struct {
		label string
		mode  core.Mode
		batch int
	}
	configs := []config{{"STORM", core.ModeStorm, 0}}
	for _, b := range BatchSizes {
		configs = append(configs, config{fmt.Sprintf("TYPHOON (%d)", b), core.ModeTyphoon, b})
	}
	for _, cfg := range configs {
		row := Row{Label: cfg.label}
		for _, place := range placements {
			tput, err := measureForwarding(cfg.mode, cfg.batch, place.hosts, ackers, p)
			if err != nil {
				res.Err = err
				return res
			}
			row.Values = append(row.Values, tput)
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

func measureForwarding(mode core.Mode, batch, hosts, ackers int, p Params) (float64, error) {
	e, err := startCluster(mode, hosts, func(c *core.Config) {
		if batch > 0 {
			c.DefaultBatchSize = batch
		}
	})
	if err != nil {
		return 0, err
	}
	defer e.stop()
	l, err := forwardingTopology("fwd", 1, ackers)
	if err != nil {
		return 0, err
	}
	if err := e.cluster.Submit(l, 10*time.Second); err != nil {
		return 0, err
	}
	return e.rate("seq.seen", p.Warmup, p.Measure), nil
}

// Fig8c regenerates Fig 8(c): the CDF of end-to-end tuple latency with
// acking, both workers on one host, Storm vs Typhoon batch sizes. Values
// are milliseconds at the 10th..100th percentile.
func Fig8c(p Params) Result {
	return runLatency("Fig 8c", "Tuple latency CDF, local (ms at P10..P100)", p, 1)
}

// Fig8d regenerates Fig 8(d): the remote-placement latency CDF.
func Fig8d(p Params) Result {
	return runLatency("Fig 8d", "Tuple latency CDF, remote (ms at P10..P100)", p, 2)
}

func runLatency(id, title string, p Params, hosts int) Result {
	p = p.WithDefaults()
	res := Result{
		ID: id, Title: title,
		Columns: []string{"P10", "P20", "P30", "P40", "P50", "P60", "P70", "P80", "P90", "P100"},
	}
	type config struct {
		label string
		mode  core.Mode
		batch int
	}
	configs := []config{{"STORM", core.ModeStorm, 0}}
	for _, b := range BatchSizes {
		configs = append(configs, config{fmt.Sprintf("TYPHOON (%d)", b), core.ModeTyphoon, b})
	}
	for _, cfg := range configs {
		lat, err := measureLatency(cfg.mode, cfg.batch, hosts, p)
		if err != nil {
			res.Err = err
			return res
		}
		res.Rows = append(res.Rows, cdfRow(cfg.label, lat))
	}
	return res
}

func measureLatency(mode core.Mode, batch, hosts int, p Params) (*metrics.Latencies, error) {
	e, err := startCluster(mode, hosts, func(c *core.Config) {
		if batch > 0 {
			c.DefaultBatchSize = batch
		}
	})
	if err != nil {
		return nil, err
	}
	defer e.stop()
	l, err := forwardingTopology("lat", 1, 1)
	if err != nil {
		return nil, err
	}
	if err := e.cluster.Submit(l, 10*time.Second); err != nil {
		return nil, err
	}
	time.Sleep(p.Warmup + p.Measure)
	srcs := e.cluster.WorkersOf("lat", "src")
	if len(srcs) != 1 {
		return nil, fmt.Errorf("experiments: source worker missing")
	}
	return srcs[0].CompleteLatencies, nil
}

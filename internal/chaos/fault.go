package chaos

import (
	"fmt"
	"time"

	"typhoon/internal/topology"
)

// Kind names one fault class. Kinds are strings so Specs round-trip
// through JSON (HTTP endpoint, typhoon-ctl) without a registry.
type Kind string

// The fault catalogue, one entry per injection point.
const (
	// KindPartition cuts the Host↔Peer tunnel link; Duration > 0 heals
	// it automatically after the window.
	KindPartition Kind = "partition"
	// KindHeal restores the Host↔Peer link (both empty: every link).
	KindHeal Kind = "heal"
	// KindNetem sets DropRate/Latency/Jitter on the Host↔Peer link.
	KindNetem Kind = "netem"
	// KindPortDown removes the switch port of worker Topo/Worker,
	// driving the §4 PortStatus fast path.
	KindPortDown Kind = "port-down"
	// KindWipeFlows clears Host's switch flow table.
	KindWipeFlows Kind = "wipe-flows"
	// KindWorkerCrash makes worker Topo/Worker exit with an error.
	KindWorkerCrash Kind = "crash"
	// KindWorkerHang stalls worker Topo/Worker's loop for Duration.
	KindWorkerHang Kind = "hang"
	// KindWorkerSlow adds Delay of processing time per tuple on worker
	// Topo/Worker (zero Delay restores full speed).
	KindWorkerSlow Kind = "slow"
	// KindControllerOutage takes the SDN controller offline; Duration
	// > 0 restores it automatically after the window.
	KindControllerOutage Kind = "controller-outage"
	// KindControllerRestore brings the controller back online.
	KindControllerRestore Kind = "controller-restore"
	// KindPacketOutDelay delays every controller PACKET_OUT by Delay
	// (zero Delay removes the impairment).
	KindPacketOutDelay Kind = "packet-out-delay"
	// KindControllerKill permanently stops the replicated controller
	// instance named by Controller, driving coordinator-elected failover
	// of its mastered switches to a surviving peer.
	KindControllerKill Kind = "controller-kill"
)

// Spec is one declarative fault. Only the fields its Kind documents are
// consulted; Validate rejects specs whose required fields are missing.
type Spec struct {
	Kind Kind `json:"kind"`

	// Topo and Worker select a worker (crash, hang, slow, port-down).
	Topo   string            `json:"topo,omitempty"`
	Worker topology.WorkerID `json:"worker,omitempty"`

	// Host selects a host (wipe-flows) or one end of a link; Peer is
	// the other end (partition, heal, netem).
	Host string `json:"host,omitempty"`
	Peer string `json:"peer,omitempty"`

	// Duration bounds a fault window (partition, hang, controller
	// outage); zero means until explicitly reversed.
	Duration time.Duration `json:"duration,omitempty"`

	// Netem knobs (netem kind).
	DropRate float64       `json:"dropRate,omitempty"`
	Latency  time.Duration `json:"latency,omitempty"`
	Jitter   time.Duration `json:"jitter,omitempty"`

	// Delay is a per-operation delay (slow, packet-out-delay).
	Delay time.Duration `json:"delay,omitempty"`

	// Controller selects a replicated controller instance by ID
	// (controller-kill).
	Controller string `json:"controller,omitempty"`
}

// Validate checks the spec is complete for its kind.
func (s Spec) Validate() error {
	switch s.Kind {
	case KindPartition, KindNetem:
		if s.Host == "" || s.Peer == "" {
			return fmt.Errorf("chaos: %s requires host and peer", s.Kind)
		}
		if s.Host == s.Peer {
			return fmt.Errorf("chaos: %s host and peer must differ", s.Kind)
		}
		if s.Kind == KindNetem && (s.DropRate < 0 || s.DropRate > 1) {
			return fmt.Errorf("chaos: netem drop rate %v outside [0,1]", s.DropRate)
		}
	case KindHeal:
		if (s.Host == "") != (s.Peer == "") {
			return fmt.Errorf("chaos: heal requires both host and peer, or neither")
		}
	case KindWipeFlows:
		if s.Host == "" {
			return fmt.Errorf("chaos: wipe-flows requires host")
		}
	case KindPortDown, KindWorkerCrash, KindWorkerHang, KindWorkerSlow:
		if s.Topo == "" || s.Worker == 0 {
			return fmt.Errorf("chaos: %s requires topo and worker", s.Kind)
		}
		if s.Kind == KindWorkerHang && s.Duration <= 0 {
			return fmt.Errorf("chaos: hang requires a positive duration")
		}
	case KindControllerOutage, KindControllerRestore, KindPacketOutDelay:
		// No required fields.
	case KindControllerKill:
		if s.Controller == "" {
			return fmt.Errorf("chaos: controller-kill requires controller")
		}
	default:
		return fmt.Errorf("chaos: unknown fault kind %q", s.Kind)
	}
	if s.Duration < 0 || s.Latency < 0 || s.Jitter < 0 || s.Delay < 0 {
		return fmt.Errorf("chaos: %s has a negative duration field", s.Kind)
	}
	return nil
}

// String renders the spec compactly for logs and the injection record.
func (s Spec) String() string {
	switch s.Kind {
	case KindHeal:
		if s.Host == "" {
			return "heal all"
		}
		fallthrough
	case KindPartition, KindNetem:
		return fmt.Sprintf("%s %s<->%s", s.Kind, s.Host, s.Peer)
	case KindWipeFlows:
		return fmt.Sprintf("%s %s", s.Kind, s.Host)
	case KindPortDown, KindWorkerCrash, KindWorkerHang, KindWorkerSlow:
		return fmt.Sprintf("%s %s/%d", s.Kind, s.Topo, s.Worker)
	case KindControllerKill:
		return fmt.Sprintf("%s %s", s.Kind, s.Controller)
	default:
		return string(s.Kind)
	}
}

package chaos

import (
	"fmt"
	"sync"
	"time"

	"typhoon/internal/observe"
	"typhoon/internal/topology"
)

// Target is the narrow slice of a running cluster the engine injects
// faults into. internal/core implements it; keeping the interface here
// keeps the import direction core → chaos.
type Target interface {
	// Netem returns the cluster's link impairment table (nil when the
	// deployment has no tunnel fabric, e.g. the Storm baseline).
	Netem() *Netem
	// CrashWorker makes a running worker exit with an error, as if its
	// process died.
	CrashWorker(topo string, id topology.WorkerID) error
	// HangWorker stalls a worker's processing loop for d.
	HangWorker(topo string, id topology.WorkerID, d time.Duration) error
	// SlowWorker adds d of processing time per tuple (0 restores).
	SlowWorker(topo string, id topology.WorkerID, d time.Duration) error
	// DropWorkerPort removes a worker's switch port out from under it,
	// emitting the PortStatus event of §4.
	DropWorkerPort(topo string, id topology.WorkerID) error
	// WipeFlows clears a host switch's flow table, returning the number
	// of rules destroyed.
	WipeFlows(host string) (int, error)
	// BeginControllerOutage takes the SDN controller offline.
	BeginControllerOutage() error
	// EndControllerOutage brings the controller back and triggers
	// reconciliation.
	EndControllerOutage() error
	// SetPacketOutDelay delays every controller PACKET_OUT by d.
	SetPacketOutDelay(d time.Duration) error
	// KillController permanently stops one replicated controller
	// instance; its switches fail over to a surviving peer.
	KillController(id string) error
}

// Injection records one applied fault.
type Injection struct {
	At   time.Time `json:"at"`
	Spec Spec      `json:"spec"`
	// Detail carries kind-specific results ("wiped 12 rules").
	Detail string `json:"detail,omitempty"`
}

// Engine applies fault Specs against a Target, executes Plans, and
// accounts every injection in the observe registry:
//
//	typhoon_chaos_injections_total{kind=...}  applied faults by kind
//	typhoon_chaos_active_windows              open auto-reverting windows
//	typhoon_chaos_netem_dropped_frames_total  frames killed by impairments
//	typhoon_chaos_impaired_links              directed links impaired
type Engine struct {
	target Target
	reg    *observe.Registry

	mu       sync.Mutex
	counters map[Kind]*observe.Counter
	log      []Injection
	windows  int

	stopOnce sync.Once
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

// NewEngine builds an engine over a target, registering the chaos metric
// family into reg (may be nil for metric-less use in unit tests).
func NewEngine(target Target, reg *observe.Registry) *Engine {
	e := &Engine{
		target:   target,
		reg:      reg,
		counters: make(map[Kind]*observe.Counter),
		stopCh:   make(chan struct{}),
	}
	if reg != nil {
		reg.CounterFunc("typhoon_chaos_netem_dropped_frames_total",
			"Tunnel frames discarded by chaos link impairments.",
			nil, func() uint64 { return target.Netem().Dropped() })
		reg.CounterFunc("typhoon_chaos_netem_delayed_frames_total",
			"Tunnel frames delayed by chaos link impairments.",
			nil, func() uint64 { return target.Netem().Delayed() })
		reg.GaugeFunc("typhoon_chaos_impaired_links",
			"Directed host links with an active chaos impairment.",
			nil, func() float64 { return float64(target.Netem().ImpairedLinks()) })
		reg.GaugeFunc("typhoon_chaos_active_windows",
			"Open auto-reverting fault windows (partitions, outages).",
			nil, func() float64 {
				e.mu.Lock()
				defer e.mu.Unlock()
				return float64(e.windows)
			})
	}
	return e
}

// Stop cancels pending plan events and auto-reversals. Already-applied
// faults are not reverted.
func (e *Engine) Stop() {
	e.stopOnce.Do(func() { close(e.stopCh) })
	e.wg.Wait()
}

// Injections returns the applied-fault record, oldest first.
func (e *Engine) Injections() []Injection {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Injection{}, e.log...)
}

// Count reports how many faults of one kind were applied.
func (e *Engine) Count(k Kind) uint64 {
	e.mu.Lock()
	c := e.counters[k]
	e.mu.Unlock()
	if c == nil {
		return 0
	}
	return c.Value()
}

// Apply validates and injects one fault. Faults with a Duration that
// bounds a window (partition, controller outage) schedule their own
// reversal; Engine.Stop cancels pending reversals.
func (e *Engine) Apply(s Spec) error {
	if err := s.Validate(); err != nil {
		return err
	}
	detail := ""
	switch s.Kind {
	case KindPartition:
		net := e.target.Netem()
		if net == nil {
			return fmt.Errorf("chaos: deployment has no tunnel fabric to partition")
		}
		net.Partition(s.Host, s.Peer)
		if s.Duration > 0 {
			e.after(s.Duration, func() {
				_ = e.Apply(Spec{Kind: KindHeal, Host: s.Host, Peer: s.Peer})
			})
		}
	case KindHeal:
		net := e.target.Netem()
		if net == nil {
			return fmt.Errorf("chaos: deployment has no tunnel fabric to heal")
		}
		if s.Host == "" {
			net.HealAll()
		} else {
			net.Heal(s.Host, s.Peer)
		}
	case KindNetem:
		net := e.target.Netem()
		if net == nil {
			return fmt.Errorf("chaos: deployment has no tunnel fabric to impair")
		}
		net.SetLink(s.Host, s.Peer, Impairment{
			DropRate: s.DropRate, Latency: s.Latency, Jitter: s.Jitter,
		})
	case KindPortDown:
		if err := e.target.DropWorkerPort(s.Topo, s.Worker); err != nil {
			return err
		}
	case KindWipeFlows:
		n, err := e.target.WipeFlows(s.Host)
		if err != nil {
			return err
		}
		detail = fmt.Sprintf("wiped %d rules", n)
	case KindWorkerCrash:
		if err := e.target.CrashWorker(s.Topo, s.Worker); err != nil {
			return err
		}
	case KindWorkerHang:
		if err := e.target.HangWorker(s.Topo, s.Worker, s.Duration); err != nil {
			return err
		}
	case KindWorkerSlow:
		if err := e.target.SlowWorker(s.Topo, s.Worker, s.Delay); err != nil {
			return err
		}
	case KindControllerOutage:
		if err := e.target.BeginControllerOutage(); err != nil {
			return err
		}
		if s.Duration > 0 {
			e.after(s.Duration, func() {
				_ = e.Apply(Spec{Kind: KindControllerRestore})
			})
		}
	case KindControllerRestore:
		if err := e.target.EndControllerOutage(); err != nil {
			return err
		}
	case KindPacketOutDelay:
		if err := e.target.SetPacketOutDelay(s.Delay); err != nil {
			return err
		}
	case KindControllerKill:
		if err := e.target.KillController(s.Controller); err != nil {
			return err
		}
	}
	e.record(s, detail)
	return nil
}

// RunPlan executes a plan's events on their schedule in a background
// goroutine. Call Stop to cancel outstanding events.
func (e *Engine) RunPlan(p Plan) error {
	if err := p.Validate(); err != nil {
		return err
	}
	events := p.sorted()
	if len(events) == 0 {
		return nil
	}
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		start := time.Now()
		for _, ev := range events {
			wait := ev.After - time.Since(start)
			if wait > 0 {
				select {
				case <-e.stopCh:
					return
				case <-time.After(wait):
				}
			}
			select {
			case <-e.stopCh:
				return
			default:
			}
			_ = e.Apply(ev.Spec)
		}
	}()
	return nil
}

// after schedules an automatic reversal, tracked as an open window.
func (e *Engine) after(d time.Duration, fn func()) {
	e.mu.Lock()
	e.windows++
	e.mu.Unlock()
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		defer func() {
			e.mu.Lock()
			e.windows--
			e.mu.Unlock()
		}()
		select {
		case <-e.stopCh:
		case <-time.After(d):
			fn()
		}
	}()
}

func (e *Engine) record(s Spec, detail string) {
	e.mu.Lock()
	c := e.counters[s.Kind]
	if c == nil && e.reg != nil {
		c = e.reg.Counter("typhoon_chaos_injections_total",
			"Faults injected by the chaos engine.",
			observe.Labels{"kind": string(s.Kind)})
		e.counters[s.Kind] = c
	} else if c == nil {
		c = &observe.Counter{}
		e.counters[s.Kind] = c
	}
	e.log = append(e.log, Injection{At: time.Now(), Spec: s, Detail: detail})
	if len(e.log) > 1024 {
		e.log = e.log[len(e.log)-1024:]
	}
	e.mu.Unlock()
	c.Inc()
}

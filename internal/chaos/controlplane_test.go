package chaos_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"typhoon/internal/chaos"
	"typhoon/internal/coordinator"
	"typhoon/internal/core"
	"typhoon/internal/paths"
)

// TestRecoveryControllerKillDuringRescale kills the controller driving a
// §3.5 stable rescale after it has paused the topology. The protocol must
// degrade to a pause, never a wedge: the dead driver's Rescale call
// returns an error instead of hanging, a surviving peer reaps the
// orphaned pause marker once the driver's heartbeat lapses, and tuple
// flow resumes under the new topology owner.
func TestRecoveryControllerKillDuringRescale(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: partition smoke only")
	}
	c, stats, _ := newRecoveryCluster(t, []core.Option{core.WithControllers(3)})
	submitWordcount(t, c, stats, "wc-ctlkill", 26)

	// The master of h1 (the topology's first host) owns the topology's
	// control plane — killing it mid-rescale exercises driver death and
	// ownership failover in one stroke.
	driver, _, ok := c.MasterOf("h1")
	if !ok {
		t.Fatal("no master elected for h1")
	}
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		_, err := c.RescaleVia(ctx, driver, "wc-ctlkill", "split", 4)
		done <- err
	}()

	// Wait for phase 1: the driver has written its pause marker and is
	// draining the pipeline.
	waitCond(t, 10*time.Second, "pause marker from the driver", func() bool {
		raw, _, err := c.Store.Get(paths.Paused("wc-ctlkill"))
		return err == nil && string(raw) == driver
	})
	if err := c.Chaos.Apply(chaos.Spec{
		Kind: chaos.KindControllerKill, Controller: driver,
	}); err != nil {
		t.Fatal(err)
	}

	// Degradation: the dead driver's rescale aborts with an error.
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("rescale driven by a killed controller reported success")
		}
		t.Logf("rescale aborted: %v", err)
	case <-time.After(20 * time.Second):
		t.Fatal("rescale wedged after its driver was killed")
	}

	// Recovery: the new topology owner reaps the orphaned marker as soon
	// as the driver's registration heartbeat lapses...
	waitCond(t, 10*time.Second, "orphaned pause marker reaped", func() bool {
		_, _, err := c.Store.Get(paths.Paused("wc-ctlkill"))
		return errors.Is(err, coordinator.ErrNotFound)
	})
	// ...h1 mastership moves to a survivor...
	waitCond(t, 10*time.Second, "h1 mastership failover", func() bool {
		owner, _, ok := c.MasterOf("h1")
		return ok && owner != driver
	})
	// ...and re-activated sources drive tuples through the pipeline.
	before := stats.Counter("sink.total").Value()
	waitCond(t, 15*time.Second, "tuple flow after driver death", func() bool {
		return stats.Counter("sink.total").Value() > before+1000
	})
	if v := metricValue(c.Obs.Registry, "typhoon_chaos_injections_total",
		map[string]string{"kind": "controller-kill"}); v != 1 {
		t.Fatalf("controller-kill injection metric = %v, want 1", v)
	}
}

package chaos

import (
	"encoding/json"
	"net/http"
)

// Handler exposes the engine over HTTP, mounted by the cluster's
// observability endpoint at /api/chaos:
//
//	POST  a JSON Spec to inject a fault
//	GET   the applied-injection record as JSON
//
// This is what `typhoon-ctl chaos ...` talks to.
func (e *Engine) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(e.Injections())
		case http.MethodPost:
			var s Spec
			if err := json.NewDecoder(r.Body).Decode(&s); err != nil {
				http.Error(w, "chaos: bad spec: "+err.Error(), http.StatusBadRequest)
				return
			}
			if err := e.Apply(s); err != nil {
				http.Error(w, err.Error(), http.StatusUnprocessableEntity)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(map[string]string{"applied": s.String()})
		default:
			http.Error(w, "chaos: use GET or POST", http.StatusMethodNotAllowed)
		}
	})
}

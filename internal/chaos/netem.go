// Package chaos is Typhoon's deterministic fault-injection subsystem: a
// single place to break every layer of the emulation — host-to-host tunnel
// links, switch ports and flow tables, workers, and the SDN controller —
// so the paper's recovery claims (§4 fault detection via PortStatus, §3.5
// stable updates) become repeatable, metric-asserted tests instead of
// by-hand experiments.
//
// The subsystem has four parts:
//
//   - Netem: a per-link impairment table (partition, drop rate, latency,
//     jitter) the tunnel fabric consults on every egress frame. Random
//     decisions come from a single seeded generator, so a fixed seed
//     reproduces the exact same loss pattern.
//
//   - Spec: one declarative, JSON-encodable fault (its Kind selects the
//     layer), validated before application. Specs are what the HTTP
//     endpoint and `typhoon-ctl chaos` submit.
//
//   - Plan: an ordered, clock-driven schedule of Specs plus the seed,
//     for scripted experiments (typhoon.WithChaos).
//
//   - Engine: applies Specs against a Target (the running cluster),
//     schedules Plan events and automatic reversals (heal after a
//     partition window, restore after a controller outage), and stamps
//     every injection into the observe registry so recovery SLOs are
//     assertable from metrics alone.
package chaos

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Impairment describes the quality of one directed host-to-host link.
// The zero value is a perfect link.
type Impairment struct {
	// Partitioned drops every frame on the link.
	Partitioned bool
	// DropRate drops this fraction of frames uniformly at random [0,1].
	DropRate float64
	// Latency delays every frame by this much.
	Latency time.Duration
	// Jitter adds a uniformly random extra delay in [0, Jitter).
	Jitter time.Duration
}

func (im Impairment) zero() bool {
	return !im.Partitioned && im.DropRate == 0 && im.Latency == 0 && im.Jitter == 0
}

type linkKey struct{ from, to string }

// Netem is the per-link impairment table consulted by the tunnel fabric.
// All methods are safe for concurrent use; a nil *Netem is a valid,
// always-perfect table so data-path call sites need no guard.
type Netem struct {
	mu    sync.Mutex
	rng   *rand.Rand
	links map[linkKey]Impairment

	dropped atomic.Uint64
	delayed atomic.Uint64
}

// NewNetem builds an impairment table whose random decisions (drop rate,
// jitter) are driven by the given seed.
func NewNetem(seed int64) *Netem {
	return &Netem{
		rng:   rand.New(rand.NewSource(seed)),
		links: make(map[linkKey]Impairment),
	}
}

// SetLink sets the impairment on the a→b and b→a links.
func (n *Netem) SetLink(a, b string, im Impairment) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.setDir(a, b, im)
	n.setDir(b, a, im)
}

// SetLinkDir sets the impairment on the directed from→to link only.
func (n *Netem) SetLinkDir(from, to string, im Impairment) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.setDir(from, to, im)
}

func (n *Netem) setDir(from, to string, im Impairment) {
	k := linkKey{from, to}
	if im.zero() {
		delete(n.links, k)
		return
	}
	n.links[k] = im
}

// Partition cuts the a↔b link in both directions.
func (n *Netem) Partition(a, b string) {
	n.SetLink(a, b, Impairment{Partitioned: true})
}

// Heal restores the a↔b link to perfect in both directions.
func (n *Netem) Heal(a, b string) { n.SetLink(a, b, Impairment{}) }

// HealAll restores every link.
func (n *Netem) HealAll() {
	if n == nil {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links = make(map[linkKey]Impairment)
}

// Impair decides the fate of one frame on the from→to link: drop reports
// that the frame must be discarded, otherwise delay is how long to hold it
// before transmission. A nil receiver always returns a perfect link.
func (n *Netem) Impair(from, to string) (delay time.Duration, drop bool) {
	if n == nil {
		return 0, false
	}
	n.mu.Lock()
	im, ok := n.links[linkKey{from, to}]
	if !ok {
		n.mu.Unlock()
		return 0, false
	}
	if im.Partitioned || (im.DropRate > 0 && n.rng.Float64() < im.DropRate) {
		n.mu.Unlock()
		n.dropped.Add(1)
		return 0, true
	}
	delay = im.Latency
	if im.Jitter > 0 {
		delay += time.Duration(n.rng.Int63n(int64(im.Jitter)))
	}
	n.mu.Unlock()
	if delay > 0 {
		n.delayed.Add(1)
	}
	return delay, false
}

// Dropped counts frames discarded by impairments since creation.
func (n *Netem) Dropped() uint64 {
	if n == nil {
		return 0
	}
	return n.dropped.Load()
}

// Delayed counts frames held back by latency/jitter since creation.
func (n *Netem) Delayed() uint64 {
	if n == nil {
		return 0
	}
	return n.delayed.Load()
}

// ImpairedLinks reports how many directed links currently carry a
// non-zero impairment.
func (n *Netem) ImpairedLinks() int {
	if n == nil {
		return 0
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.links)
}

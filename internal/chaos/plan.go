package chaos

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"
)

// Event schedules one fault at an offset from plan start.
type Event struct {
	// After is the delay from plan start to injection.
	After time.Duration `json:"after"`
	// Spec is the fault to inject.
	Spec Spec `json:"spec"`
}

// Plan is an ordered, clock-driven fault schedule. The zero Plan injects
// nothing; a cluster built with one starts executing it immediately.
type Plan struct {
	// Seed drives every random decision the subsystem makes (netem drop
	// sampling, jitter). A fixed seed reproduces the exact fault pattern.
	Seed int64 `json:"seed"`
	// Events fire in After order.
	Events []Event `json:"events"`
}

// Empty reports whether the plan schedules nothing.
func (p Plan) Empty() bool { return len(p.Events) == 0 }

// Validate checks every scheduled spec.
func (p Plan) Validate() error {
	for i, ev := range p.Events {
		if ev.After < 0 {
			return fmt.Errorf("chaos: plan event %d has negative offset", i)
		}
		if err := ev.Spec.Validate(); err != nil {
			return fmt.Errorf("chaos: plan event %d: %w", i, err)
		}
	}
	return nil
}

// sorted returns the events ordered by After (stable for equal offsets).
func (p Plan) sorted() []Event {
	out := append([]Event(nil), p.Events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].After < out[j].After })
	return out
}

// DecodePlan parses a JSON-encoded plan.
func DecodePlan(raw []byte) (Plan, error) {
	var p Plan
	if err := json.Unmarshal(raw, &p); err != nil {
		return Plan{}, fmt.Errorf("chaos: decode plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// Encode renders the plan as JSON.
func (p Plan) Encode() []byte {
	raw, _ := json.Marshal(p)
	return raw
}

package chaos

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"typhoon/internal/topology"
)

func TestNetemPartitionAndHeal(t *testing.T) {
	n := NewNetem(1)
	n.Partition("h1", "h2")
	if _, drop := n.Impair("h1", "h2"); !drop {
		t.Fatal("partitioned link forwarded a frame")
	}
	if _, drop := n.Impair("h2", "h1"); !drop {
		t.Fatal("partition is bidirectional; reverse direction forwarded")
	}
	if _, drop := n.Impair("h1", "h3"); drop {
		t.Fatal("unrelated link dropped a frame")
	}
	if n.ImpairedLinks() != 2 {
		t.Fatalf("ImpairedLinks() = %d, want 2", n.ImpairedLinks())
	}
	n.Heal("h1", "h2")
	if _, drop := n.Impair("h1", "h2"); drop {
		t.Fatal("healed link dropped a frame")
	}
	if n.Dropped() != 2 {
		t.Fatalf("Dropped() = %d, want 2", n.Dropped())
	}
}

func TestNetemDeterministicUnderFixedSeed(t *testing.T) {
	pattern := func(seed int64) []bool {
		n := NewNetem(seed)
		n.SetLink("a", "b", Impairment{DropRate: 0.5})
		out := make([]bool, 200)
		for i := range out {
			_, out[i] = n.Impair("a", "b")
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("drop decision %d differs under identical seed", i)
		}
	}
	c := pattern(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 200-frame drop pattern")
	}
}

func TestNetemLatencyAndJitter(t *testing.T) {
	n := NewNetem(7)
	n.SetLinkDir("a", "b", Impairment{Latency: 5 * time.Millisecond, Jitter: 2 * time.Millisecond})
	for i := 0; i < 50; i++ {
		delay, drop := n.Impair("a", "b")
		if drop {
			t.Fatal("latency-only link dropped a frame")
		}
		if delay < 5*time.Millisecond || delay >= 7*time.Millisecond {
			t.Fatalf("delay %v outside [5ms, 7ms)", delay)
		}
	}
	if n.Delayed() != 50 {
		t.Fatalf("Delayed() = %d, want 50", n.Delayed())
	}
	// Directed impairment: the reverse direction is untouched.
	if delay, _ := n.Impair("b", "a"); delay != 0 {
		t.Fatalf("reverse direction delayed by %v", delay)
	}
}

func TestNetemNilReceiverIsPerfect(t *testing.T) {
	var n *Netem
	if delay, drop := n.Impair("a", "b"); drop || delay != 0 {
		t.Fatal("nil Netem impaired a frame")
	}
	if n.Dropped() != 0 || n.Delayed() != 0 || n.ImpairedLinks() != 0 {
		t.Fatal("nil Netem reported activity")
	}
	n.HealAll() // must not panic
}

func TestSpecValidate(t *testing.T) {
	valid := []Spec{
		{Kind: KindPartition, Host: "h1", Peer: "h2"},
		{Kind: KindPartition, Host: "h1", Peer: "h2", Duration: time.Second},
		{Kind: KindHeal},
		{Kind: KindHeal, Host: "h1", Peer: "h2"},
		{Kind: KindNetem, Host: "h1", Peer: "h2", DropRate: 0.5},
		{Kind: KindWipeFlows, Host: "h1"},
		{Kind: KindPortDown, Topo: "t", Worker: 1},
		{Kind: KindWorkerCrash, Topo: "t", Worker: 1},
		{Kind: KindWorkerHang, Topo: "t", Worker: 1, Duration: time.Second},
		{Kind: KindWorkerSlow, Topo: "t", Worker: 1, Delay: time.Millisecond},
		{Kind: KindWorkerSlow, Topo: "t", Worker: 1}, // zero delay restores
		{Kind: KindControllerOutage},
		{Kind: KindControllerOutage, Duration: time.Second},
		{Kind: KindControllerRestore},
		{Kind: KindPacketOutDelay, Delay: time.Millisecond},
	}
	for _, s := range valid {
		if err := s.Validate(); err != nil {
			t.Errorf("%v rejected: %v", s, err)
		}
	}
	invalid := []Spec{
		{},
		{Kind: "explode"},
		{Kind: KindPartition, Host: "h1"},
		{Kind: KindPartition, Host: "h1", Peer: "h1"},
		{Kind: KindHeal, Host: "h1"},
		{Kind: KindNetem, Host: "h1", Peer: "h2", DropRate: 1.5},
		{Kind: KindNetem, Host: "h1", Peer: "h2", DropRate: -0.1},
		{Kind: KindWipeFlows},
		{Kind: KindPortDown, Topo: "t"},
		{Kind: KindWorkerCrash, Worker: 1},
		{Kind: KindWorkerHang, Topo: "t", Worker: 1},
		{Kind: KindPartition, Host: "h1", Peer: "h2", Duration: -time.Second},
		{Kind: KindPacketOutDelay, Delay: -time.Millisecond},
	}
	for _, s := range invalid {
		if err := s.Validate(); err == nil {
			t.Errorf("%+v accepted", s)
		}
	}
}

func TestPlanDecodeRoundTripAndOrdering(t *testing.T) {
	p := Plan{
		Seed: 42,
		Events: []Event{
			{After: 2 * time.Second, Spec: Spec{Kind: KindControllerRestore}},
			{After: time.Second, Spec: Spec{Kind: KindPartition, Host: "h1", Peer: "h2"}},
		},
	}
	got, err := DecodePlan(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != 42 || len(got.Events) != 2 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	s := got.sorted()
	if s[0].Spec.Kind != KindPartition || s[1].Spec.Kind != KindControllerRestore {
		t.Fatalf("sorted() order wrong: %v then %v", s[0].Spec.Kind, s[1].Spec.Kind)
	}
	if _, err := DecodePlan([]byte(`{"events":[{"after":-1,"spec":{"kind":"heal"}}]}`)); err == nil {
		t.Fatal("negative-offset plan accepted")
	}
	if _, err := DecodePlan([]byte("not json")); err == nil {
		t.Fatal("garbage plan accepted")
	}
}

// fakeTarget records engine calls for dispatch tests. The engine invokes
// auto-reversal callbacks from its own goroutines, so every field access
// goes through the mutex.
type fakeTarget struct {
	mu       sync.Mutex
	netem    *Netem
	crashes  []topology.WorkerID
	ports    []topology.WorkerID
	hangs    []time.Duration
	slows    []time.Duration
	wipes    []string
	outages  int
	restores int
	poDelay  time.Duration
	killed   []string
}

func (f *fakeTarget) Netem() *Netem { return f.netem }
func (f *fakeTarget) CrashWorker(topo string, id topology.WorkerID) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashes = append(f.crashes, id)
	return nil
}
func (f *fakeTarget) HangWorker(topo string, id topology.WorkerID, d time.Duration) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.hangs = append(f.hangs, d)
	return nil
}
func (f *fakeTarget) SlowWorker(topo string, id topology.WorkerID, d time.Duration) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.slows = append(f.slows, d)
	return nil
}
func (f *fakeTarget) DropWorkerPort(topo string, id topology.WorkerID) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ports = append(f.ports, id)
	return nil
}
func (f *fakeTarget) WipeFlows(host string) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.wipes = append(f.wipes, host)
	return 3, nil
}
func (f *fakeTarget) BeginControllerOutage() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.outages++
	return nil
}
func (f *fakeTarget) EndControllerOutage() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.restores++
	return nil
}
func (f *fakeTarget) SetPacketOutDelay(d time.Duration) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.poDelay = d
	return nil
}
func (f *fakeTarget) KillController(id string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.killed = append(f.killed, id)
	return nil
}

// snapshot copies the recorded state under the lock.
func (f *fakeTarget) snapshot() (crashes, ports []topology.WorkerID, wipes []string, outages, restores int, poDelay time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]topology.WorkerID(nil), f.crashes...),
		append([]topology.WorkerID(nil), f.ports...),
		append([]string(nil), f.wipes...),
		f.outages, f.restores, f.poDelay
}

func TestEngineApplyDispatchesAndRecords(t *testing.T) {
	ft := &fakeTarget{netem: NewNetem(1)}
	e := NewEngine(ft, nil)
	defer e.Stop()

	specs := []Spec{
		{Kind: KindPartition, Host: "h1", Peer: "h2"},
		{Kind: KindWorkerCrash, Topo: "t", Worker: 5},
		{Kind: KindPortDown, Topo: "t", Worker: 6},
		{Kind: KindWipeFlows, Host: "h1"},
		{Kind: KindWorkerHang, Topo: "t", Worker: 5, Duration: time.Second},
		{Kind: KindWorkerSlow, Topo: "t", Worker: 5, Delay: time.Millisecond},
		{Kind: KindControllerOutage},
		{Kind: KindControllerRestore},
		{Kind: KindPacketOutDelay, Delay: 2 * time.Millisecond},
		{Kind: KindHeal},
	}
	for _, s := range specs {
		if err := e.Apply(s); err != nil {
			t.Fatalf("Apply(%v): %v", s, err)
		}
	}
	if _, drop := ft.netem.Impair("h1", "h2"); drop {
		t.Fatal("heal did not clear the partition")
	}
	crashes, ports, wipes, outages, restores, poDelay := ft.snapshot()
	if len(crashes) != 1 || crashes[0] != 5 {
		t.Fatalf("crashes = %v", crashes)
	}
	if len(ports) != 1 || ports[0] != 6 {
		t.Fatalf("ports = %v", ports)
	}
	if len(wipes) != 1 || outages != 1 || restores != 1 {
		t.Fatalf("wipes=%v outages=%d restores=%d", wipes, outages, restores)
	}
	if poDelay != 2*time.Millisecond {
		t.Fatalf("poDelay = %v", poDelay)
	}
	if e.Count(KindWorkerCrash) != 1 || e.Count(KindPartition) != 1 {
		t.Fatal("injection counters not incremented")
	}
	if got := len(e.Injections()); got != len(specs) {
		t.Fatalf("Injections() = %d records, want %d", got, len(specs))
	}
	if err := e.Apply(Spec{Kind: "explode"}); err == nil {
		t.Fatal("invalid spec applied")
	}
}

func TestEngineAutoReversalWindows(t *testing.T) {
	ft := &fakeTarget{netem: NewNetem(1)}
	e := NewEngine(ft, nil)
	defer e.Stop()

	if err := e.Apply(Spec{Kind: KindPartition, Host: "h1", Peer: "h2", Duration: 30 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if _, drop := ft.netem.Impair("h1", "h2"); !drop {
		t.Fatal("partition not applied")
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, drop := ft.netem.Impair("h1", "h2"); !drop {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("partition window never auto-healed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if e.Count(KindHeal) != 1 {
		t.Fatalf("Count(heal) = %d after auto-reversal, want 1", e.Count(KindHeal))
	}

	if err := e.Apply(Spec{Kind: KindControllerOutage, Duration: 20 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(2 * time.Second)
	for {
		if _, _, _, _, restores, _ := ft.snapshot(); restores > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("outage window never auto-restored")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestEngineRunPlanFiresInOrder(t *testing.T) {
	ft := &fakeTarget{netem: NewNetem(9)}
	e := NewEngine(ft, nil)
	defer e.Stop()

	plan := Plan{Events: []Event{
		{After: 20 * time.Millisecond, Spec: Spec{Kind: KindWorkerCrash, Topo: "t", Worker: 2}},
		{After: 0, Spec: Spec{Kind: KindWorkerCrash, Topo: "t", Worker: 1}},
	}}
	if err := e.RunPlan(plan); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for e.Count(KindWorkerCrash) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("plan events did not all fire")
		}
		time.Sleep(5 * time.Millisecond)
	}
	crashes, _, _, _, _, _ := ft.snapshot()
	if crashes[0] != 1 || crashes[1] != 2 {
		t.Fatalf("plan fired out of order: %v", crashes)
	}
	if err := e.RunPlan(Plan{Events: []Event{{Spec: Spec{Kind: "explode"}}}}); err == nil {
		t.Fatal("invalid plan accepted")
	}
}

func TestEngineStormModeRejectsLinkFaults(t *testing.T) {
	e := NewEngine(&fakeTarget{netem: nil}, nil)
	defer e.Stop()
	for _, s := range []Spec{
		{Kind: KindPartition, Host: "h1", Peer: "h2"},
		{Kind: KindNetem, Host: "h1", Peer: "h2", DropRate: 0.1},
		{Kind: KindHeal},
	} {
		if err := e.Apply(s); err == nil {
			t.Fatalf("%v applied without a tunnel fabric", s.Kind)
		}
	}
}

func TestEngineHandler(t *testing.T) {
	ft := &fakeTarget{netem: NewNetem(1)}
	e := NewEngine(ft, nil)
	defer e.Stop()
	h := e.Handler()

	post := httptest.NewRequest("POST", "/api/chaos",
		strings.NewReader(`{"kind":"partition","host":"h1","peer":"h2"}`))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, post)
	if rec.Code != 200 {
		t.Fatalf("POST status = %d: %s", rec.Code, rec.Body)
	}
	if _, drop := ft.netem.Impair("h1", "h2"); !drop {
		t.Fatal("POSTed partition not applied")
	}

	bad := httptest.NewRequest("POST", "/api/chaos", strings.NewReader(`{"kind":"partition"}`))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, bad)
	if rec.Code != 422 {
		t.Fatalf("invalid spec status = %d, want 422", rec.Code)
	}

	get := httptest.NewRequest("GET", "/api/chaos", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, get)
	var log []Injection
	if err := json.Unmarshal(rec.Body.Bytes(), &log); err != nil {
		t.Fatalf("GET body: %v", err)
	}
	if len(log) != 1 || log[0].Spec.Kind != KindPartition {
		t.Fatalf("injection log = %+v", log)
	}

	del := httptest.NewRequest("DELETE", "/api/chaos", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, del)
	if rec.Code != 405 {
		t.Fatalf("DELETE status = %d, want 405", rec.Code)
	}
}

// Recovery hardening suite: each test injects one fault class against a
// running wordcount topology and asserts — through the observe registry and
// the chaos engine's injection counters — that the fault was detected, the
// system recovered (rescheduling, flow-rule reconvergence), and tuple flow
// resumed within a bounded window. The chaos seed is fixed, so netem's
// random decisions reproduce run to run.
package chaos_test

import (
	"sync/atomic"
	"testing"
	"time"

	"typhoon/internal/chaos"
	"typhoon/internal/controller"
	"typhoon/internal/core"
	"typhoon/internal/observe"
	"typhoon/internal/topology"
	"typhoon/internal/worker"
	"typhoon/internal/workload"
)

const chaosSeed = 42

// newRecoveryCluster builds a Typhoon cluster with fast fault-handling
// timings and a fixed chaos seed, via the options API.
func newRecoveryCluster(t *testing.T, extra []core.Option, hosts ...string) (*core.Cluster, *workload.Stats, *workload.Config) {
	t.Helper()
	if len(hosts) == 0 {
		hosts = []string{"h1", "h2"}
	}
	opts := []core.Option{
		core.WithHosts(hosts...),
		core.WithHeartbeatInterval(100 * time.Millisecond),
		core.WithHeartbeatTimeout(2 * time.Second),
		core.WithMonitorInterval(200 * time.Millisecond),
		core.WithDrainDelay(100 * time.Millisecond),
		core.WithRestartDelay(200 * time.Millisecond),
		core.WithDefaultBatchSize(50),
		core.WithChaos(chaos.Plan{Seed: chaosSeed}),
	}
	opts = append(opts, extra...)
	c, err := core.NewCluster(opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	stats := workload.NewStats(100 * time.Millisecond)
	cfg := workload.NewConfig()
	cfg.Set(workload.CfgSeqLimit, 0) // unlimited
	c.Env.Set(workload.EnvStats, stats)
	c.Env.Set(workload.EnvConfig, cfg)
	return c, stats, cfg
}

// submitWordcount deploys the canonical wordcount pipeline and waits for
// traffic to reach the sink.
func submitWordcount(t *testing.T, c *core.Cluster, stats *workload.Stats, name string, app uint16) {
	t.Helper()
	b := topology.NewBuilder(name, app)
	b.Source("src", workload.LogicSentenceSource, 1)
	b.Node("split", workload.LogicSplitter, 2).ShuffleFrom("src")
	b.Node("sink", workload.LogicSink, 1).ShuffleFrom("split")
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(l, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	waitCond(t, 15*time.Second, "initial traffic at sink", func() bool {
		return stats.Counter("sink.total").Value() > 1000
	})
}

func waitCond(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// metricValue reads one sample from the cluster's observe registry,
// matching by name and (subset of) labels; -1 when absent.
func metricValue(reg *observe.Registry, name string, labels map[string]string) float64 {
	for _, s := range reg.Snapshot() {
		if s.Name != name {
			continue
		}
		match := true
		for k, v := range labels {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.Value
		}
	}
	return -1
}

// splitWorker picks one running splitter worker to victimize.
func splitWorker(t *testing.T, c *core.Cluster, topo string) (topology.WorkerID, *worker.Worker) {
	t.Helper()
	_, p, err := c.Manager.Describe(topo)
	if err != nil {
		t.Fatal(err)
	}
	for _, as := range p.Instances("split") {
		if w := c.Worker(topo, as.Worker); w != nil {
			return as.Worker, w
		}
	}
	t.Fatal("no running split worker")
	return 0, nil
}

// TestRecoveryTunnelPartition cuts the inter-host link mid-stream for a
// bounded window and asserts frames were dropped (netem metrics), the
// window auto-healed, and tuple flow resumed. This is the short-mode chaos
// smoke test CI runs on every push.
func TestRecoveryTunnelPartition(t *testing.T) {
	c, stats, _ := newRecoveryCluster(t, nil)
	submitWordcount(t, c, stats, "wc-partition", 21)

	if err := c.Chaos.Apply(chaos.Spec{
		Kind: chaos.KindPartition, Host: "h1", Peer: "h2",
		Duration: 700 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	if got := c.Chaos.Count(chaos.KindPartition); got != 1 {
		t.Fatalf("partition injections = %d, want 1", got)
	}
	// Detection: the partition visibly destroys frames, accounted in the
	// registry the moment cross-host traffic hits the cut link.
	waitCond(t, 5*time.Second, "frames dropped on the cut link", func() bool {
		return metricValue(c.Obs.Registry, "typhoon_chaos_netem_dropped_frames_total", nil) > 0
	})
	if v := metricValue(c.Obs.Registry, "typhoon_chaos_injections_total",
		map[string]string{"kind": "partition"}); v != 1 {
		t.Fatalf("injection metric = %v, want 1", v)
	}
	// Recovery: the window reverses itself...
	waitCond(t, 5*time.Second, "auto-heal", func() bool {
		return c.Chaos.Count(chaos.KindHeal) == 1
	})
	// ...and tuple flow resumes across the healed link.
	before := stats.Counter("sink.total").Value()
	waitCond(t, 10*time.Second, "tuple flow after heal", func() bool {
		return stats.Counter("sink.total").Value() > before+1000
	})
}

// TestRecoveryPortDownFastPath removes a live worker's switch port and
// asserts the §4 fast path: the fault detector reacts to the PortStatus
// event (before any heartbeat timeout), the worker is locally restarted,
// flow rules reconverge onto its new port, and tuple flow resumes.
func TestRecoveryPortDownFastPath(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: partition smoke only")
	}
	c, stats, _ := newRecoveryCluster(t, nil, "h1", "h2", "h3")
	fd := controller.NewFaultDetector()
	c.Controller.AddApp(fd)
	submitWordcount(t, c, stats, "wc-portdown", 22)

	victim, w0 := splitWorker(t, c, "wc-portdown")
	if err := c.Chaos.Apply(chaos.Spec{
		Kind: chaos.KindPortDown, Topo: "wc-portdown", Worker: victim,
	}); err != nil {
		t.Fatal(err)
	}
	if got := c.Chaos.Count(chaos.KindPortDown); got != 1 {
		t.Fatalf("port-down injections = %d, want 1", got)
	}
	// Detection: the PortStatus event reaches the fault detector.
	waitCond(t, 5*time.Second, "fault detector reaction", func() bool {
		return fd.Detected() >= 1
	})
	// Recovery: a fresh incarnation comes up on a new port and the
	// controller re-programs rules for it (it can only process tuples once
	// predecessors' frames reach its new port).
	waitCond(t, 15*time.Second, "restarted worker processing", func() bool {
		w := c.Worker("wc-portdown", victim)
		return w != nil && w != w0 && w.StatsSnapshot().Processed > 0
	})
	before := stats.Counter("sink.total").Value()
	waitCond(t, 10*time.Second, "tuple flow after port loss", func() bool {
		return stats.Counter("sink.total").Value() > before+1000
	})
}

// TestRecoveryWorkerCrash kills a worker outright and asserts the crash is
// observed, the agent restarts it with backoff, rules reconverge, and flow
// resumes.
func TestRecoveryWorkerCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: partition smoke only")
	}
	var crashes atomic.Int64
	c, stats, _ := newRecoveryCluster(t, []core.Option{
		core.WithOnWorkerCrash(func(topo string, id topology.WorkerID, err error) {
			crashes.Add(1)
		}),
	})
	submitWordcount(t, c, stats, "wc-crash", 23)

	victim, w0 := splitWorker(t, c, "wc-crash")
	if err := c.Chaos.Apply(chaos.Spec{
		Kind: chaos.KindWorkerCrash, Topo: "wc-crash", Worker: victim,
	}); err != nil {
		t.Fatal(err)
	}
	// Detection: the injected failure surfaces through the agent's crash
	// path, and the injection is on the chaos record.
	waitCond(t, 5*time.Second, "crash observed", func() bool {
		return crashes.Load() >= 1
	})
	if v := metricValue(c.Obs.Registry, "typhoon_chaos_injections_total",
		map[string]string{"kind": "crash"}); v != 1 {
		t.Fatalf("crash injection metric = %v, want 1", v)
	}
	found := false
	for _, inj := range c.Chaos.Injections() {
		if inj.Spec.Kind == chaos.KindWorkerCrash && inj.Spec.Worker == victim {
			found = true
		}
	}
	if !found {
		t.Fatal("injection log missing the crash record")
	}
	// Recovery: local restart plus rule reconvergence onto the new port.
	waitCond(t, 15*time.Second, "restarted worker processing", func() bool {
		w := c.Worker("wc-crash", victim)
		return w != nil && w != w0 && w.StatsSnapshot().Processed > 0
	})
	before := stats.Counter("sink.total").Value()
	waitCond(t, 10*time.Second, "tuple flow after crash", func() bool {
		return stats.Counter("sink.total").Value() > before+1000
	})
}

// TestRecoveryControllerOutage takes the controller offline for a bounded
// window, crashes a worker mid-outage, and asserts graceful degradation:
// the data plane keeps forwarding on installed rules, the agent restarts
// the worker locally without controller help, and once the outage ends the
// controller reconciles the drifted state so the restarted worker rejoins.
func TestRecoveryControllerOutage(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: partition smoke only")
	}
	c, stats, _ := newRecoveryCluster(t, nil)
	submitWordcount(t, c, stats, "wc-outage", 24)

	victim, w0 := splitWorker(t, c, "wc-outage")
	if err := c.Chaos.Apply(chaos.Spec{
		Kind: chaos.KindControllerOutage, Duration: 800 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	if !c.Controller.Outage() {
		t.Fatal("controller not in outage after injection")
	}
	// Crash a worker while the controller is down: only the local agent
	// can act on it.
	if err := c.Chaos.Apply(chaos.Spec{
		Kind: chaos.KindWorkerCrash, Topo: "wc-outage", Worker: victim,
	}); err != nil {
		t.Fatal(err)
	}
	// Degradation: the rest of the pipeline keeps flowing on installed
	// rules while the controller is dark.
	during := stats.Counter("sink.total").Value()
	waitCond(t, 10*time.Second, "tuple flow during outage", func() bool {
		return stats.Counter("sink.total").Value() > during+200
	})
	// Recovery: the window auto-restores and reconciliation reinstalls
	// rules for the locally restarted worker, which then rejoins.
	waitCond(t, 5*time.Second, "outage auto-restore", func() bool {
		return c.Chaos.Count(chaos.KindControllerRestore) == 1 && !c.Controller.Outage()
	})
	waitCond(t, 15*time.Second, "restarted worker rejoined", func() bool {
		w := c.Worker("wc-outage", victim)
		return w != nil && w != w0 && w.StatsSnapshot().Processed > 0
	})
	before := stats.Counter("sink.total").Value()
	waitCond(t, 10*time.Second, "tuple flow after restore", func() bool {
		return stats.Counter("sink.total").Value() > before+1000
	})
	if v := metricValue(c.Obs.Registry, "typhoon_chaos_injections_total",
		map[string]string{"kind": "controller-outage"}); v != 1 {
		t.Fatalf("outage injection metric = %v, want 1", v)
	}
}

// TestRecoveryPlanDrivenInjection runs a scripted plan (the WithChaos
// shape) against live traffic: a netem drop-rate impairment followed by a
// heal, asserting the plan's events fire in order and the seeded drop
// pattern repeats what the unit tests established.
func TestRecoveryPlanDrivenInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: partition smoke only")
	}
	c, stats, _ := newRecoveryCluster(t, nil)
	submitWordcount(t, c, stats, "wc-plan", 25)

	plan := chaos.Plan{
		Seed: chaosSeed,
		Events: []chaos.Event{
			{After: 0, Spec: chaos.Spec{Kind: chaos.KindNetem, Host: "h1", Peer: "h2", DropRate: 0.4}},
			{After: 600 * time.Millisecond, Spec: chaos.Spec{Kind: chaos.KindHeal}},
		},
	}
	if err := c.Chaos.RunPlan(plan); err != nil {
		t.Fatal(err)
	}
	waitCond(t, 5*time.Second, "plan events fired", func() bool {
		return c.Chaos.Count(chaos.KindNetem) == 1 && c.Chaos.Count(chaos.KindHeal) == 1
	})
	waitCond(t, 5*time.Second, "lossy window dropped frames", func() bool {
		return metricValue(c.Obs.Registry, "typhoon_chaos_netem_dropped_frames_total", nil) > 0
	})
	if n := metricValue(c.Obs.Registry, "typhoon_chaos_impaired_links", nil); n != 0 {
		t.Fatalf("impaired links = %v after heal, want 0", n)
	}
	before := stats.Counter("sink.total").Value()
	waitCond(t, 10*time.Second, "tuple flow after heal", func() bool {
		return stats.Counter("sink.total").Value() > before+1000
	})
}

// Lease-based mastership for the replicated control plane.
//
// A lease is a versioned KV node whose JSON value names the holder, an
// epoch, and a renewal deadline. Holders renew with CompareAndSet so two
// contenders can never both believe they won: the version check serializes
// every transition through the coordinator, exactly as the znode-based
// master election of "Controlling a Software-Defined Network via
// Distributed Controllers" (Yazıcı et al.). The epoch increments on every
// change of ownership and fences downstream consumers — a switch ignores
// role claims carrying an epoch older than the highest it has accepted, so
// a paused ex-master waking up after its lease expired cannot reassert
// itself over its successor.
package coordinator

import (
	"encoding/json"
	"errors"
	"time"
)

// Lease is the decoded value of a mastership or registration node.
type Lease struct {
	// Owner identifies the holder (a controller ID).
	Owner string `json:"owner"`
	// Epoch counts ownership transfers; it never decreases.
	Epoch uint64 `json:"epoch"`
	// RenewedAtNanos is the holder's clock at the last renewal.
	RenewedAtNanos int64 `json:"renewedAtNanos"`
	// TTLNanos bounds how stale a renewal may be before the lease is
	// considered abandoned and open to takeover.
	TTLNanos int64 `json:"ttlNanos"`
}

// Expired reports whether the lease is past its renewal deadline.
func (l Lease) Expired(now time.Time) bool {
	return now.UnixNano()-l.RenewedAtNanos > l.TTLNanos
}

// Encode serializes the lease value.
func (l Lease) Encode() []byte {
	b, _ := json.Marshal(l)
	return b
}

// DecodeLease parses a lease value.
func DecodeLease(raw []byte) (Lease, error) {
	var l Lease
	if err := json.Unmarshal(raw, &l); err != nil {
		return Lease{}, err
	}
	if l.Owner == "" {
		return Lease{}, errors.New("coordinator: lease has no owner")
	}
	return l, nil
}

// AcquireLease acquires, renews, or takes over the lease at path for owner
// and returns the resulting lease plus whether owner now holds it. The
// outcome is decided by the coordinator's version check:
//
//   - absent           → Create a fresh epoch-1 lease
//   - held by owner    → CompareAndSet renewal, same epoch
//   - expired by other → CompareAndSet takeover, epoch+1
//   - live by other    → no write; the current lease is returned
//
// A lost race (ErrExists / ErrBadVersion) is not an error: the winner's
// lease is re-read and reported.
func AcquireLease(kv KV, path, owner string, ttl time.Duration, now time.Time) (Lease, bool, error) {
	for attempt := 0; attempt < 3; attempt++ {
		raw, version, err := kv.Get(path)
		if errors.Is(err, ErrNotFound) {
			fresh := Lease{Owner: owner, Epoch: 1, RenewedAtNanos: now.UnixNano(), TTLNanos: int64(ttl)}
			if err := kv.Create(path, fresh.Encode()); err != nil {
				if errors.Is(err, ErrExists) {
					continue // lost the creation race; re-read the winner
				}
				return Lease{}, false, err
			}
			return fresh, true, nil
		}
		if err != nil {
			return Lease{}, false, err
		}
		cur, err := DecodeLease(raw)
		if err != nil {
			// A corrupt lease must not wedge the control plane forever:
			// claim it as a takeover.
			cur = Lease{Owner: "?", Epoch: 0, RenewedAtNanos: 0, TTLNanos: int64(ttl)}
		}
		switch {
		case cur.Owner == owner:
			next := cur
			next.RenewedAtNanos = now.UnixNano()
			next.TTLNanos = int64(ttl)
			if _, err := kv.CompareAndSet(path, next.Encode(), version); err != nil {
				if errors.Is(err, ErrBadVersion) || errors.Is(err, ErrNotFound) {
					continue // someone took over between Get and CAS
				}
				return Lease{}, false, err
			}
			return next, true, nil
		case cur.Expired(now):
			next := Lease{Owner: owner, Epoch: cur.Epoch + 1, RenewedAtNanos: now.UnixNano(), TTLNanos: int64(ttl)}
			if _, err := kv.CompareAndSet(path, next.Encode(), version); err != nil {
				if errors.Is(err, ErrBadVersion) || errors.Is(err, ErrNotFound) {
					continue // lost the takeover race
				}
				return Lease{}, false, err
			}
			return next, true, nil
		default:
			return cur, false, nil
		}
	}
	// Three straight CAS races means another holder is actively writing;
	// report whatever is there now.
	raw, _, err := kv.Get(path)
	if err != nil {
		return Lease{}, false, err
	}
	cur, err := DecodeLease(raw)
	return cur, cur.Owner == owner, err
}

// ReadLease returns the current lease at path, if any.
func ReadLease(kv KV, path string) (Lease, error) {
	raw, _, err := kv.Get(path)
	if err != nil {
		return Lease{}, err
	}
	return DecodeLease(raw)
}

// Package coordinator implements the central coordinator of the Typhoon
// architecture: a hierarchical, versioned key-value store with watches,
// standing in for Apache ZooKeeper (§5, Table 1).
//
// All Typhoon components coordinate through it: the streaming manager writes
// logical/physical topologies, worker agents register themselves and watch
// for assignments, and the stateless SDN controller reconstructs the global
// state it needs to generate flow rules.
//
// The store is usable in process (Store) or over TCP (Server/Client); both
// present the same KV interface.
package coordinator

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Errors returned by store operations.
var (
	ErrNotFound   = errors.New("coordinator: node not found")
	ErrExists     = errors.New("coordinator: node already exists")
	ErrBadVersion = errors.New("coordinator: version conflict")
	ErrBadPath    = errors.New("coordinator: malformed path")
	ErrClosed     = errors.New("coordinator: closed")
)

// EventType classifies watch events.
type EventType uint8

// Watch event types.
const (
	EventCreated EventType = iota + 1
	EventUpdated
	EventDeleted
)

func (t EventType) String() string {
	switch t {
	case EventCreated:
		return "created"
	case EventUpdated:
		return "updated"
	case EventDeleted:
		return "deleted"
	default:
		return fmt.Sprintf("event(%d)", uint8(t))
	}
}

// Event describes one change under a watched prefix.
type Event struct {
	Type    EventType
	Path    string
	Data    []byte
	Version int64
}

// KV is the coordination API shared by the in-process store and the TCP
// client.
type KV interface {
	// Create makes a node; it fails with ErrExists if present.
	Create(path string, data []byte) error
	// Put upserts a node and returns its new version.
	Put(path string, data []byte) (int64, error)
	// CompareAndSet updates a node only at the expected version and
	// returns the new version.
	CompareAndSet(path string, data []byte, version int64) (int64, error)
	// Get returns a node's data and version.
	Get(path string) ([]byte, int64, error)
	// Delete removes a node.
	Delete(path string) error
	// Children lists the immediate child names under path, sorted.
	Children(path string) ([]string, error)
	// Watch streams events for every node whose path has the given
	// prefix. Cancel releases the watch. Watches are persistent (unlike
	// ZooKeeper's one-shot watches) — each change produces one event.
	Watch(prefix string) (<-chan Event, func(), error)
}

type node struct {
	data    []byte
	version int64
}

type watcher struct {
	prefix string
	ch     chan Event
}

// Store is the in-process coordinator state.
type Store struct {
	mu       sync.Mutex
	nodes    map[string]*node
	watchers map[int64]*watcher
	nextWID  int64
	closed   bool
}

// NewStore builds an empty store.
func NewStore() *Store {
	return &Store{nodes: make(map[string]*node), watchers: make(map[int64]*watcher)}
}

// ValidPath reports whether p is a well-formed absolute path.
func ValidPath(p string) bool {
	if p == "" || p[0] != '/' || (len(p) > 1 && strings.HasSuffix(p, "/")) {
		return false
	}
	return !strings.Contains(p, "//")
}

// Create implements KV.
func (s *Store) Create(path string, data []byte) error {
	if !ValidPath(path) {
		return ErrBadPath
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.nodes[path]; ok {
		return ErrExists
	}
	s.nodes[path] = &node{data: cloneBytes(data), version: 1}
	s.notifyLocked(Event{Type: EventCreated, Path: path, Data: cloneBytes(data), Version: 1})
	return nil
}

// Put implements KV.
func (s *Store) Put(path string, data []byte) (int64, error) {
	if !ValidPath(path) {
		return 0, ErrBadPath
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	n, ok := s.nodes[path]
	if !ok {
		s.nodes[path] = &node{data: cloneBytes(data), version: 1}
		s.notifyLocked(Event{Type: EventCreated, Path: path, Data: cloneBytes(data), Version: 1})
		return 1, nil
	}
	n.data = cloneBytes(data)
	n.version++
	s.notifyLocked(Event{Type: EventUpdated, Path: path, Data: cloneBytes(data), Version: n.version})
	return n.version, nil
}

// CompareAndSet implements KV.
func (s *Store) CompareAndSet(path string, data []byte, version int64) (int64, error) {
	if !ValidPath(path) {
		return 0, ErrBadPath
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	n, ok := s.nodes[path]
	if !ok {
		return 0, ErrNotFound
	}
	if n.version != version {
		return 0, ErrBadVersion
	}
	n.data = cloneBytes(data)
	n.version++
	s.notifyLocked(Event{Type: EventUpdated, Path: path, Data: cloneBytes(data), Version: n.version})
	return n.version, nil
}

// Get implements KV.
func (s *Store) Get(path string) ([]byte, int64, error) {
	if !ValidPath(path) {
		return nil, 0, ErrBadPath
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.nodes[path]
	if !ok {
		return nil, 0, ErrNotFound
	}
	return cloneBytes(n.data), n.version, nil
}

// Delete implements KV.
func (s *Store) Delete(path string) error {
	if !ValidPath(path) {
		return ErrBadPath
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.nodes[path]
	if !ok {
		return ErrNotFound
	}
	delete(s.nodes, path)
	s.notifyLocked(Event{Type: EventDeleted, Path: path, Version: n.version})
	return nil
}

// Children implements KV. A node need not exist to have children; the tree
// is implied by paths, as with prefixes in etcd.
func (s *Store) Children(path string) ([]string, error) {
	if !ValidPath(path) {
		return nil, ErrBadPath
	}
	prefix := path
	if prefix != "/" {
		prefix += "/"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := make(map[string]bool)
	for p := range s.nodes {
		if !strings.HasPrefix(p, prefix) {
			continue
		}
		rest := p[len(prefix):]
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			rest = rest[:i]
		}
		seen[rest] = true
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out, nil
}

// Watch implements KV. Events are delivered on a buffered channel; a
// persistently slow consumer loses the oldest events rather than blocking
// writers (watchers must treat the stream as advisory and re-read state).
func (s *Store) Watch(prefix string) (<-chan Event, func(), error) {
	if !ValidPath(prefix) {
		return nil, nil, ErrBadPath
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, nil, ErrClosed
	}
	s.nextWID++
	id := s.nextWID
	w := &watcher{prefix: prefix, ch: make(chan Event, 256)}
	s.watchers[id] = w
	cancel := func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if _, ok := s.watchers[id]; ok {
			delete(s.watchers, id)
			close(w.ch)
		}
	}
	return w.ch, cancel, nil
}

// Close releases all watchers; subsequent writes fail.
func (s *Store) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for id, w := range s.watchers {
		delete(s.watchers, id)
		close(w.ch)
	}
}

// Dump returns a copy of all nodes, for debugging and tests.
func (s *Store) Dump() map[string][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string][]byte, len(s.nodes))
	for p, n := range s.nodes {
		out[p] = cloneBytes(n.data)
	}
	return out
}

func (s *Store) notifyLocked(ev Event) {
	for id, w := range s.watchers {
		if !watchCovers(w.prefix, ev.Path) {
			continue
		}
		select {
		case w.ch <- ev:
		default:
			// Drop-oldest: evict one and retry once.
			select {
			case <-w.ch:
			default:
			}
			select {
			case w.ch <- ev:
			default:
				_ = id // still full; drop the event
			}
		}
	}
}

// watchCovers reports whether a watch on prefix should see path.
func watchCovers(prefix, path string) bool {
	if prefix == "/" {
		return true
	}
	return path == prefix || strings.HasPrefix(path, prefix+"/")
}

func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

package coordinator

import (
	"encoding/gob"
	"net"
	"sync"
)

// Client is a TCP client for a coordinator Server, implementing KV.
type Client struct {
	conn net.Conn
	enc  *gob.Encoder
	wmu  sync.Mutex

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan wireResponse
	watches map[int64]*clientWatch
	closed  bool

	readDone chan struct{}
}

type clientWatch struct {
	ch     chan Event
	closed bool
}

// Dial connects to a coordinator server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:     conn,
		enc:      gob.NewEncoder(conn),
		pending:  make(map[uint64]chan wireResponse),
		watches:  make(map[int64]*clientWatch),
		readDone: make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// Close drops the connection; outstanding calls fail with ErrClosed.
func (c *Client) Close() error {
	err := c.conn.Close()
	<-c.readDone
	return err
}

func (c *Client) readLoop() {
	defer close(c.readDone)
	dec := gob.NewDecoder(c.conn)
	for {
		var resp wireResponse
		if err := dec.Decode(&resp); err != nil {
			c.failAll()
			return
		}
		if resp.Event != nil {
			c.mu.Lock()
			w := c.watches[resp.WatchID]
			c.mu.Unlock()
			if w != nil {
				select {
				case w.ch <- *resp.Event:
				default:
					// Drop-oldest mirrors the server-side policy.
					select {
					case <-w.ch:
					default:
					}
					select {
					case w.ch <- *resp.Event:
					default:
					}
				}
			}
			continue
		}
		c.mu.Lock()
		ch := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- resp
		}
	}
}

func (c *Client) failAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for id, ch := range c.pending {
		delete(c.pending, id)
		ch <- wireResponse{Err: ErrClosed.Error()}
	}
	for id, w := range c.watches {
		delete(c.watches, id)
		if !w.closed {
			w.closed = true
			close(w.ch)
		}
	}
}

func (c *Client) call(req wireRequest) (wireResponse, error) {
	ch := make(chan wireResponse, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return wireResponse{}, ErrClosed
	}
	c.nextID++
	req.ID = c.nextID
	c.pending[req.ID] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	err := c.enc.Encode(req)
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		return wireResponse{}, err
	}
	resp := <-ch
	return resp, errFromString(resp.Err)
}

// Create implements KV.
func (c *Client) Create(path string, data []byte) error {
	_, err := c.call(wireRequest{Op: opCreate, Path: path, Data: data})
	return err
}

// Put implements KV.
func (c *Client) Put(path string, data []byte) (int64, error) {
	resp, err := c.call(wireRequest{Op: opPut, Path: path, Data: data})
	return resp.Version, err
}

// CompareAndSet implements KV.
func (c *Client) CompareAndSet(path string, data []byte, version int64) (int64, error) {
	resp, err := c.call(wireRequest{Op: opCAS, Path: path, Data: data, Version: version})
	return resp.Version, err
}

// Get implements KV.
func (c *Client) Get(path string) ([]byte, int64, error) {
	resp, err := c.call(wireRequest{Op: opGet, Path: path})
	return resp.Data, resp.Version, err
}

// Delete implements KV.
func (c *Client) Delete(path string) error {
	_, err := c.call(wireRequest{Op: opDelete, Path: path})
	return err
}

// Children implements KV.
func (c *Client) Children(path string) ([]string, error) {
	resp, err := c.call(wireRequest{Op: opChildren, Path: path})
	return resp.Children, err
}

// Watch implements KV.
func (c *Client) Watch(prefix string) (<-chan Event, func(), error) {
	resp, err := c.call(wireRequest{Op: opWatch, Path: prefix})
	if err != nil {
		return nil, nil, err
	}
	w := &clientWatch{ch: make(chan Event, 256)}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, nil, ErrClosed
	}
	c.watches[resp.WatchID] = w
	c.mu.Unlock()
	cancel := func() {
		c.mu.Lock()
		if ww, ok := c.watches[resp.WatchID]; ok {
			delete(c.watches, resp.WatchID)
			if !ww.closed {
				ww.closed = true
				close(ww.ch)
			}
		}
		closed := c.closed
		c.mu.Unlock()
		if !closed {
			_, _ = c.call(wireRequest{Op: opUnwatch, WatchID: resp.WatchID})
		}
	}
	return w.ch, cancel, nil
}

var _ KV = (*Client)(nil)
var _ KV = (*Store)(nil)

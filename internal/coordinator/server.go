package coordinator

import (
	"encoding/gob"
	"net"
	"sync"
)

// Wire protocol: gob-encoded request/response pairs over TCP, with
// server-initiated pushes for watch events (ID == 0, Event != nil). This
// plays the role ZooKeeper's client protocol plays in the prototype.

type opCode uint8

const (
	opCreate opCode = iota + 1
	opPut
	opCAS
	opGet
	opDelete
	opChildren
	opWatch
	opUnwatch
)

type wireRequest struct {
	ID      uint64
	Op      opCode
	Path    string
	Data    []byte
	Version int64
	WatchID int64
}

type wireResponse struct {
	ID       uint64
	Err      string
	Data     []byte
	Version  int64
	Children []string
	WatchID  int64
	Event    *Event
}

// Server exposes a Store over TCP.
type Server struct {
	store *Store
	ln    net.Listener

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	done  bool
	wg    sync.WaitGroup
}

// Serve starts a server on addr (e.g. "127.0.0.1:0") backed by store.
func Serve(addr string, store *Store) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{store: store, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and drops all client connections.
func (s *Server) Close() {
	s.mu.Lock()
	s.done = true
	_ = s.ln.Close()
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.done {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var wmu sync.Mutex
	send := func(r wireResponse) error {
		wmu.Lock()
		defer wmu.Unlock()
		return enc.Encode(r)
	}

	type activeWatch struct {
		cancel func()
		done   chan struct{}
	}
	watches := make(map[int64]*activeWatch)
	var nextWatch int64
	defer func() {
		for _, w := range watches {
			w.cancel()
			<-w.done
		}
	}()

	for {
		var req wireRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := wireResponse{ID: req.ID}
		switch req.Op {
		case opCreate:
			resp.Err = errString(s.store.Create(req.Path, req.Data))
		case opPut:
			v, err := s.store.Put(req.Path, req.Data)
			resp.Version, resp.Err = v, errString(err)
		case opCAS:
			v, err := s.store.CompareAndSet(req.Path, req.Data, req.Version)
			resp.Version, resp.Err = v, errString(err)
		case opGet:
			data, v, err := s.store.Get(req.Path)
			resp.Data, resp.Version, resp.Err = data, v, errString(err)
		case opDelete:
			resp.Err = errString(s.store.Delete(req.Path))
		case opChildren:
			kids, err := s.store.Children(req.Path)
			resp.Children, resp.Err = kids, errString(err)
		case opWatch:
			ch, cancel, err := s.store.Watch(req.Path)
			if err != nil {
				resp.Err = errString(err)
				break
			}
			nextWatch++
			wid := nextWatch
			resp.WatchID = wid
			aw := &activeWatch{cancel: cancel, done: make(chan struct{})}
			watches[wid] = aw
			go func() {
				defer close(aw.done)
				for ev := range ch {
					e := ev
					if send(wireResponse{WatchID: wid, Event: &e}) != nil {
						return
					}
				}
			}()
		case opUnwatch:
			if aw, ok := watches[req.WatchID]; ok {
				delete(watches, req.WatchID)
				aw.cancel()
			}
		default:
			resp.Err = "coordinator: unknown op"
		}
		if err := send(resp); err != nil {
			return
		}
	}
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

func errFromString(s string) error {
	switch s {
	case "":
		return nil
	case ErrNotFound.Error():
		return ErrNotFound
	case ErrExists.Error():
		return ErrExists
	case ErrBadVersion.Error():
		return ErrBadVersion
	case ErrBadPath.Error():
		return ErrBadPath
	case ErrClosed.Error():
		return ErrClosed
	default:
		return &remoteError{s}
	}
}

type remoteError struct{ msg string }

func (e *remoteError) Error() string { return e.msg }

package coordinator

import (
	"net"
	"testing"
	"time"
)

// TestReconnectingClientSurvivesRestart bounces the coordinator server
// while a ReconnectingClient holds live calls and a watch, and asserts the
// client transparently redials: post-restart operations succeed and the
// watch channel replays the surviving subtree.
func TestReconnectingClientSurvivesRestart(t *testing.T) {
	store := NewStore()
	defer store.Close()
	srv, err := Serve("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	cli, err := DialReconnecting(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	if _, err := cli.Put("/topologies/wc/logical", []byte("v1")); err != nil {
		t.Fatalf("put before restart: %v", err)
	}
	events, cancel, err := cli.Watch("/topologies")
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	// Bounce the server; the store (and its data) survives, as when a
	// coordinator process restarts over its persisted state.
	srv.Close()
	done := make(chan error, 1)
	go func() {
		_, _, err := cli.Get("/topologies/wc/logical")
		done <- err
	}()
	time.Sleep(100 * time.Millisecond) // let the Get hit the dead server and start redialing
	srv2, err := reserve(t, addr, store)
	if err != nil {
		t.Fatalf("restart server: %v", err)
	}
	defer srv2.Close()

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("get across restart: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("get did not recover after server restart")
	}

	// Ordinary write path works again.
	if _, err := cli.Put("/topologies/wc/logical", []byte("v2")); err != nil {
		t.Fatalf("put after restart: %v", err)
	}

	// The watch was re-established: it sees the resync replay of the
	// surviving node and then live updates.
	deadline := time.After(5 * time.Second)
	sawNode := false
	for !sawNode {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatal("watch channel closed")
			}
			if ev.Path == "/topologies/wc/logical" {
				sawNode = true
			}
		case <-deadline:
			t.Fatal("watch never recovered after restart")
		}
	}
}

// reserve retries binding the just-released address: the OS may briefly
// hold the listener port.
func reserve(t *testing.T, addr string, store *Store) (*Server, error) {
	t.Helper()
	var (
		srv *Server
		err error
	)
	for i := 0; i < 50; i++ {
		srv, err = Serve(addr, store)
		if err == nil {
			return srv, nil
		}
		if _, ok := err.(*net.OpError); !ok {
			return nil, err
		}
		time.Sleep(20 * time.Millisecond)
	}
	return nil, err
}

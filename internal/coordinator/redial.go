package coordinator

import (
	"errors"
	"sync"
	"time"
)

// Redial backoff mirrors the data-plane tunnel pattern: exponential from
// redialBase, capped at redialMax, reset on success.
const (
	redialBase = 50 * time.Millisecond
	redialMax  = 2 * time.Second
)

// ReconnectingClient wraps Client with transparent redial so a coordinator
// restart does not kill its consumers: an operation that fails on a dead
// connection blocks (with exponential backoff) until the server is back,
// then retries. Domain errors — ErrNotFound, ErrExists, ErrBadVersion,
// ErrBadPath — pass straight through; only transport failures trigger a
// redial.
//
// Watches survive reconnection: each subscription is re-established on the
// new connection and then replayed a resync — one EventCreated per node
// currently under the watched prefix — because any change during the gap
// was missed. Consumers already treat watch events as re-read triggers, so
// the replay converges them on the post-restart state.
//
// Operations block while the server stays down; Close unblocks them with
// ErrClosed.
type ReconnectingClient struct {
	addr string

	mu      sync.Mutex
	cond    *sync.Cond
	cur     *Client // nil while disconnected
	closed  bool
	subs    map[int64]*resub
	nextSub int64
}

type resub struct {
	prefix string
	out    chan Event

	mu        sync.Mutex
	closed    bool
	cancelCur func()
}

// deliver forwards one event with the drop-oldest overflow policy of the
// underlying watch channels.
func (s *resub) deliver(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	select {
	case s.out <- ev:
	default:
		select {
		case <-s.out:
		default:
		}
		select {
		case s.out <- ev:
		default:
		}
	}
}

// DialReconnecting connects to a coordinator server, returning a KV that
// transparently redials across server restarts. The initial dial must
// succeed (a wrong address should fail fast, not retry forever).
func DialReconnecting(addr string) (*ReconnectingClient, error) {
	cli, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	rc := &ReconnectingClient{addr: addr, cur: cli, subs: make(map[int64]*resub)}
	rc.cond = sync.NewCond(&rc.mu)
	return rc, nil
}

// Close releases the client; blocked operations fail with ErrClosed.
func (rc *ReconnectingClient) Close() error {
	rc.mu.Lock()
	if rc.closed {
		rc.mu.Unlock()
		return nil
	}
	rc.closed = true
	cur := rc.cur
	rc.cur = nil
	subs := make([]*resub, 0, len(rc.subs))
	for _, s := range rc.subs {
		subs = append(subs, s)
	}
	rc.subs = map[int64]*resub{}
	rc.cond.Broadcast()
	rc.mu.Unlock()
	for _, s := range subs {
		s.mu.Lock()
		if !s.closed {
			s.closed = true
			close(s.out)
		}
		s.mu.Unlock()
	}
	if cur != nil {
		return cur.Close()
	}
	return nil
}

// take returns the live connection, waiting out any redial in progress.
func (rc *ReconnectingClient) take() (*Client, error) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	for rc.cur == nil && !rc.closed {
		rc.cond.Wait()
	}
	if rc.closed {
		return nil, ErrClosed
	}
	return rc.cur, nil
}

// dropped reports a connection as dead; the first reporter starts the
// redial loop, later reporters are no-ops (cur has already moved on).
func (rc *ReconnectingClient) dropped(failed *Client) {
	rc.mu.Lock()
	if rc.closed || rc.cur != failed {
		rc.mu.Unlock()
		return
	}
	rc.cur = nil
	rc.mu.Unlock()
	_ = failed.Close()
	go rc.redialLoop()
}

func (rc *ReconnectingClient) redialLoop() {
	fails := 0
	for {
		rc.mu.Lock()
		closed := rc.closed
		rc.mu.Unlock()
		if closed {
			return
		}
		cli, err := Dial(rc.addr)
		if err != nil {
			shift := fails
			if shift > 5 {
				shift = 5
			}
			time.Sleep(redialBase << shift)
			fails++
			continue
		}
		rc.mu.Lock()
		if rc.closed {
			rc.mu.Unlock()
			_ = cli.Close()
			return
		}
		rc.cur = cli
		subs := make([]*resub, 0, len(rc.subs))
		for _, s := range rc.subs {
			subs = append(subs, s)
		}
		rc.cond.Broadcast()
		rc.mu.Unlock()
		for _, s := range subs {
			if err := rc.attach(cli, s); err != nil {
				// The fresh connection died already; the next operation
				// will report it and restart the loop.
				return
			}
			rc.resync(cli, s)
		}
		return
	}
}

// attach subscribes one watch on the given connection and pumps its events
// into the subscription's stable output channel.
func (rc *ReconnectingClient) attach(cli *Client, s *resub) error {
	ch, cancel, err := cli.Watch(s.prefix)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel()
		return nil
	}
	s.cancelCur = cancel
	s.mu.Unlock()
	go func() {
		for ev := range ch {
			s.deliver(ev)
		}
	}()
	return nil
}

// resync replays the current subtree under a watch prefix as EventCreated
// events, covering whatever changed while the connection was down.
func (rc *ReconnectingClient) resync(cli *Client, s *resub) {
	var walk func(p string)
	walk = func(p string) {
		if data, ver, err := cli.Get(p); err == nil {
			s.deliver(Event{Type: EventCreated, Path: p, Data: data, Version: ver})
		}
		kids, err := cli.Children(p)
		if err != nil {
			return
		}
		for _, k := range kids {
			walk(p + "/" + k)
		}
	}
	walk(s.prefix)
}

// retryable reports whether an error is a transport failure worth a
// redial, as opposed to a coordinator domain error.
func retryable(err error) bool {
	if err == nil {
		return false
	}
	switch {
	case errors.Is(err, ErrNotFound), errors.Is(err, ErrExists),
		errors.Is(err, ErrBadVersion), errors.Is(err, ErrBadPath):
		return false
	}
	return true
}

// do runs one operation against the live connection, redialing and
// retrying on transport failure until it succeeds or the client closes.
func (rc *ReconnectingClient) do(op func(*Client) error) error {
	for {
		cli, err := rc.take()
		if err != nil {
			return err
		}
		err = op(cli)
		if !retryable(err) {
			return err
		}
		rc.dropped(cli)
	}
}

// Create implements KV.
func (rc *ReconnectingClient) Create(path string, data []byte) error {
	return rc.do(func(c *Client) error { return c.Create(path, data) })
}

// Put implements KV.
func (rc *ReconnectingClient) Put(path string, data []byte) (int64, error) {
	var v int64
	err := rc.do(func(c *Client) error {
		var e error
		v, e = c.Put(path, data)
		return e
	})
	return v, err
}

// CompareAndSet implements KV.
func (rc *ReconnectingClient) CompareAndSet(path string, data []byte, version int64) (int64, error) {
	var v int64
	err := rc.do(func(c *Client) error {
		var e error
		v, e = c.CompareAndSet(path, data, version)
		return e
	})
	return v, err
}

// Get implements KV.
func (rc *ReconnectingClient) Get(path string) ([]byte, int64, error) {
	var (
		data []byte
		v    int64
	)
	err := rc.do(func(c *Client) error {
		var e error
		data, v, e = c.Get(path)
		return e
	})
	return data, v, err
}

// Delete implements KV.
func (rc *ReconnectingClient) Delete(path string) error {
	return rc.do(func(c *Client) error { return c.Delete(path) })
}

// Children implements KV.
func (rc *ReconnectingClient) Children(path string) ([]string, error) {
	var kids []string
	err := rc.do(func(c *Client) error {
		var e error
		kids, e = c.Children(path)
		return e
	})
	return kids, err
}

// Watch implements KV. The returned channel survives reconnection; cancel
// releases it.
func (rc *ReconnectingClient) Watch(prefix string) (<-chan Event, func(), error) {
	s := &resub{prefix: prefix, out: make(chan Event, 256)}
	var id int64
	err := rc.do(func(c *Client) error {
		if err := rc.attach(c, s); err != nil {
			return err
		}
		rc.mu.Lock()
		rc.nextSub++
		id = rc.nextSub
		rc.subs[id] = s
		rc.mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	cancel := func() {
		rc.mu.Lock()
		delete(rc.subs, id)
		rc.mu.Unlock()
		s.mu.Lock()
		cc := s.cancelCur
		if !s.closed {
			s.closed = true
			close(s.out)
		}
		s.mu.Unlock()
		if cc != nil {
			cc()
		}
	}
	return s.out, cancel, nil
}

var _ KV = (*ReconnectingClient)(nil)

package coordinator

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

func TestStoreCRUD(t *testing.T) {
	s := NewStore()
	if err := s.Create("/a/b", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Create("/a/b", []byte("2")); err != ErrExists {
		t.Fatalf("duplicate create: %v", err)
	}
	data, v, err := s.Get("/a/b")
	if err != nil || string(data) != "1" || v != 1 {
		t.Fatalf("get: %q v=%d err=%v", data, v, err)
	}
	v, err = s.Put("/a/b", []byte("2"))
	if err != nil || v != 2 {
		t.Fatalf("put: v=%d err=%v", v, err)
	}
	if _, err := s.CompareAndSet("/a/b", []byte("x"), 1); err != ErrBadVersion {
		t.Fatalf("stale CAS: %v", err)
	}
	if v, err = s.CompareAndSet("/a/b", []byte("3"), 2); err != nil || v != 3 {
		t.Fatalf("CAS: v=%d err=%v", v, err)
	}
	if _, err := s.CompareAndSet("/missing", nil, 1); err != ErrNotFound {
		t.Fatalf("CAS missing: %v", err)
	}
	if err := s.Delete("/a/b"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("/a/b"); err != ErrNotFound {
		t.Fatalf("double delete: %v", err)
	}
	if _, _, err := s.Get("/a/b"); err != ErrNotFound {
		t.Fatalf("get deleted: %v", err)
	}
}

func TestStorePathValidation(t *testing.T) {
	s := NewStore()
	for _, p := range []string{"", "a", "/a/", "//a", "/a//b"} {
		if err := s.Create(p, nil); err != ErrBadPath {
			t.Errorf("Create(%q) = %v, want ErrBadPath", p, err)
		}
	}
	if !ValidPath("/") || !ValidPath("/a/b/c") {
		t.Error("valid paths rejected")
	}
}

func TestStoreChildren(t *testing.T) {
	s := NewStore()
	s.Put("/t/1/logical", []byte("a"))
	s.Put("/t/1/physical", []byte("b"))
	s.Put("/t/2/logical", []byte("c"))
	s.Put("/other", []byte("d"))
	kids, err := s.Children("/t")
	if err != nil {
		t.Fatal(err)
	}
	if len(kids) != 2 || kids[0] != "1" || kids[1] != "2" {
		t.Fatalf("children = %v", kids)
	}
	kids, _ = s.Children("/t/1")
	if len(kids) != 2 || kids[0] != "logical" {
		t.Fatalf("children = %v", kids)
	}
	root, _ := s.Children("/")
	if len(root) != 2 { // t, other
		t.Fatalf("root children = %v", root)
	}
}

func TestStoreWatch(t *testing.T) {
	s := NewStore()
	ch, cancel, err := s.Watch("/topo")
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	s.Put("/topo/1", []byte("x"))
	s.Put("/topo/1", []byte("y"))
	s.Delete("/topo/1")
	s.Put("/elsewhere", []byte("z")) // not covered

	want := []EventType{EventCreated, EventUpdated, EventDeleted}
	for i, wt := range want {
		select {
		case ev := <-ch:
			if ev.Type != wt || ev.Path != "/topo/1" {
				t.Fatalf("event %d = %v %s", i, ev.Type, ev.Path)
			}
		case <-time.After(time.Second):
			t.Fatalf("missing event %d", i)
		}
	}
	select {
	case ev := <-ch:
		t.Fatalf("unexpected event %v %s", ev.Type, ev.Path)
	case <-time.After(20 * time.Millisecond):
	}
}

func TestWatchExactNodeAndCancel(t *testing.T) {
	s := NewStore()
	ch, cancel, _ := s.Watch("/a")
	s.Put("/a", []byte("1"))
	select {
	case ev := <-ch:
		if ev.Type != EventCreated {
			t.Fatalf("ev = %v", ev.Type)
		}
	case <-time.After(time.Second):
		t.Fatal("no event for exact node")
	}
	// /ab must NOT be covered by a watch on /a.
	s.Put("/ab", []byte("1"))
	select {
	case ev := <-ch:
		t.Fatalf("sibling leak: %v", ev.Path)
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	if _, ok := <-ch; ok {
		t.Fatal("channel should close on cancel")
	}
	cancel() // idempotent
}

func TestStoreClose(t *testing.T) {
	s := NewStore()
	ch, _, _ := s.Watch("/x")
	s.Close()
	if _, ok := <-ch; ok {
		t.Fatal("watch channel should close")
	}
	if err := s.Create("/x", nil); err != ErrClosed {
		t.Fatalf("create after close: %v", err)
	}
	if _, _, err := s.Watch("/x"); err != ErrClosed {
		t.Fatalf("watch after close: %v", err)
	}
	s.Close() // idempotent
}

func TestPropertyPutGetRoundTrip(t *testing.T) {
	s := NewStore()
	f := func(key uint16, data []byte) bool {
		path := fmt.Sprintf("/prop/%d", key)
		if _, err := s.Put(path, data); err != nil {
			return false
		}
		got, _, err := s.Get(path)
		if err != nil {
			return false
		}
		return string(got) == string(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyVersionsMonotonic(t *testing.T) {
	s := NewStore()
	var last int64
	for i := 0; i < 100; i++ {
		v, err := s.Put("/mono", []byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		if v <= last {
			t.Fatalf("version %d not > %d", v, last)
		}
		last = v
	}
}

func newClientServer(t *testing.T) (*Client, *Store) {
	t.Helper()
	store := NewStore()
	srv, err := Serve("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return cli, store
}

func TestClientServerCRUD(t *testing.T) {
	cli, _ := newClientServer(t)
	if err := cli.Create("/a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := cli.Create("/a", []byte("1")); err != ErrExists {
		t.Fatalf("remote duplicate create: %v", err)
	}
	v, err := cli.Put("/a", []byte("2"))
	if err != nil || v != 2 {
		t.Fatalf("remote put: v=%d err=%v", v, err)
	}
	data, v, err := cli.Get("/a")
	if err != nil || string(data) != "2" || v != 2 {
		t.Fatalf("remote get: %q %d %v", data, v, err)
	}
	if _, err := cli.CompareAndSet("/a", []byte("3"), 1); err != ErrBadVersion {
		t.Fatalf("remote stale CAS: %v", err)
	}
	if _, err := cli.CompareAndSet("/a", []byte("3"), 2); err != nil {
		t.Fatal(err)
	}
	kids, err := cli.Children("/")
	if err != nil || len(kids) != 1 {
		t.Fatalf("remote children: %v %v", kids, err)
	}
	if err := cli.Delete("/a"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cli.Get("/a"); err != ErrNotFound {
		t.Fatalf("remote get deleted: %v", err)
	}
}

func TestClientWatchSeesServerSideWrites(t *testing.T) {
	cli, store := newClientServer(t)
	ch, cancel, err := cli.Watch("/topo")
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	// Write through a different path: directly into the store.
	store.Put("/topo/x", []byte("v"))
	select {
	case ev := <-ch:
		if ev.Type != EventCreated || ev.Path != "/topo/x" || string(ev.Data) != "v" {
			t.Fatalf("event = %+v", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no watch event over TCP")
	}
	cancel()
	// After cancel, further writes produce no events.
	store.Put("/topo/y", []byte("v"))
	select {
	case ev, ok := <-ch:
		if ok {
			t.Fatalf("event after cancel: %+v", ev)
		}
	case <-time.After(50 * time.Millisecond):
	}
}

func TestClientCloseFailsPending(t *testing.T) {
	cli, _ := newClientServer(t)
	ch, _, err := cli.Watch("/w")
	if err != nil {
		t.Fatal(err)
	}
	cli.Close()
	if _, ok := <-ch; ok {
		t.Fatal("watch should close when client closes")
	}
	if err := cli.Create("/x", nil); err == nil {
		t.Fatal("call after close should fail")
	}
}

func TestMultipleClients(t *testing.T) {
	cli1, _ := newClientServer(t)
	cli2, err := Dial(cli1.conn.RemoteAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli2.Close()
	ch, cancel, _ := cli2.Watch("/shared")
	defer cancel()
	if _, err := cli1.Put("/shared/k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-ch:
		if ev.Path != "/shared/k" {
			t.Fatalf("path = %s", ev.Path)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cross-client watch failed")
	}
	got, _, err := cli2.Get("/shared/k")
	if err != nil || string(got) != "v" {
		t.Fatalf("cross-client get: %q %v", got, err)
	}
}

func TestEventTypeString(t *testing.T) {
	for _, et := range []EventType{EventCreated, EventUpdated, EventDeleted, EventType(9)} {
		if et.String() == "" {
			t.Fatal("empty event type string")
		}
	}
}

func TestDump(t *testing.T) {
	s := NewStore()
	s.Put("/a", []byte("1"))
	s.Put("/b", []byte("2"))
	d := s.Dump()
	if len(d) != 2 || string(d["/a"]) != "1" {
		t.Fatalf("dump = %v", d)
	}
}

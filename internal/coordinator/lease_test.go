package coordinator

import (
	"testing"
	"time"
)

func TestLeaseAcquireRenewTakeover(t *testing.T) {
	st := NewStore()
	defer st.Close()
	const path = "/controlplane/masters/h1"
	ttl := 100 * time.Millisecond
	t0 := time.Unix(0, 0)

	l, held, err := AcquireLease(st, path, "ctl-0", ttl, t0)
	if err != nil || !held {
		t.Fatalf("initial acquire: held=%v err=%v", held, err)
	}
	if l.Owner != "ctl-0" || l.Epoch != 1 {
		t.Fatalf("fresh lease = %+v, want owner ctl-0 epoch 1", l)
	}

	// A live lease resists a contender.
	l2, held, err := AcquireLease(st, path, "ctl-1", ttl, t0.Add(ttl/2))
	if err != nil || held {
		t.Fatalf("contender acquired live lease: held=%v err=%v", held, err)
	}
	if l2.Owner != "ctl-0" || l2.Epoch != 1 {
		t.Fatalf("contender saw %+v, want holder ctl-0 epoch 1", l2)
	}

	// The holder renews; the deadline moves.
	l3, held, err := AcquireLease(st, path, "ctl-0", ttl, t0.Add(ttl/2))
	if err != nil || !held {
		t.Fatalf("renewal: held=%v err=%v", held, err)
	}
	if l3.Epoch != 1 || l3.RenewedAtNanos != t0.Add(ttl/2).UnixNano() {
		t.Fatalf("renewed lease = %+v", l3)
	}

	// Past the deadline the contender takes over with a bumped epoch.
	l4, held, err := AcquireLease(st, path, "ctl-1", ttl, t0.Add(3*ttl))
	if err != nil || !held {
		t.Fatalf("takeover: held=%v err=%v", held, err)
	}
	if l4.Owner != "ctl-1" || l4.Epoch != 2 {
		t.Fatalf("takeover lease = %+v, want owner ctl-1 epoch 2", l4)
	}

	// The ex-holder's next attempt observes the loss.
	l5, held, err := AcquireLease(st, path, "ctl-0", ttl, t0.Add(3*ttl))
	if err != nil || held {
		t.Fatalf("ex-holder reacquired: held=%v err=%v", held, err)
	}
	if l5.Owner != "ctl-1" {
		t.Fatalf("ex-holder saw %+v", l5)
	}
}

func TestLeaseCASRace(t *testing.T) {
	st := NewStore()
	defer st.Close()
	const path = "/controlplane/masters/h1"
	ttl := 50 * time.Millisecond
	t0 := time.Unix(0, 0)

	if _, held, err := AcquireLease(st, path, "ctl-0", ttl, t0); err != nil || !held {
		t.Fatalf("seed acquire: held=%v err=%v", held, err)
	}
	// Two contenders race for the expired lease; exactly one may win and
	// the loser must observe the winner, not an error.
	late := t0.Add(10 * ttl)
	la, heldA, errA := AcquireLease(st, path, "ctl-1", ttl, late)
	lb, heldB, errB := AcquireLease(st, path, "ctl-2", ttl, late)
	if errA != nil || errB != nil {
		t.Fatalf("race errors: %v %v", errA, errB)
	}
	if heldA == heldB {
		t.Fatalf("want exactly one winner, got heldA=%v heldB=%v", heldA, heldB)
	}
	if la.Epoch != 2 || lb.Epoch != 2 {
		t.Fatalf("epochs after race: %d %d, want 2", la.Epoch, lb.Epoch)
	}
}

package packet

import (
	"bytes"
	"testing"
)

// TestPacketizerRoundTripUnderScratchReuse drives mixed small and oversized
// tuples through one encode scratch buffer that is overwritten after every
// Add — the exact reuse pattern of the worker transport — and verifies the
// byte-exact payloads survive segmentation and reassembly.
func TestPacketizerRoundTripUnderScratchReuse(t *testing.T) {
	src := WorkerAddr(1, 1)
	dst := WorkerAddr(1, 2)
	p := NewPacketizer(src, 128)
	d := NewDepacketizer()

	want := make([][]byte, 0, 64)
	scratch := make([]byte, 0, 1024)
	var frames [][]byte
	for i := 0; i < 64; i++ {
		size := 16
		if i%5 == 0 {
			size = 300 // forces segmentation at maxPayload 128
		}
		scratch = scratch[:0]
		for j := 0; j < size; j++ {
			scratch = append(scratch, byte(i), byte(j))
		}
		cp := make([]byte, len(scratch))
		copy(cp, scratch)
		want = append(want, cp)
		frames = append(frames, p.Add(dst, scratch)...)
		// Poison the scratch to prove Add copied it.
		for j := range scratch {
			scratch[j] = 0xFF
		}
	}
	frames = append(frames, p.FlushAll()...)

	var got [][]byte
	for _, fr := range frames {
		ins, err := d.Feed(fr)
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range ins {
			if in.Src != src || in.Dst != dst {
				t.Fatalf("addresses %v -> %v", in.Src, in.Dst)
			}
			cp := make([]byte, len(in.Data))
			copy(cp, in.Data)
			got = append(got, cp)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("round-tripped %d tuples, want %d", len(got), len(want))
	}
	// Multiplexed tuples keep order per destination; segmented ones are
	// emitted immediately. Compare as multisets keyed by content.
	seen := make(map[string]int)
	for _, w := range want {
		seen[string(w)]++
	}
	for _, g := range got {
		seen[string(g)]--
	}
	for k, v := range seen {
		if v != 0 {
			t.Fatalf("tuple %q count off by %d", k[:min(len(k), 8)], v)
		}
	}
}

// TestPacketizerReadySliceIsReused documents that Add/FlushAll return an
// internal scratch: the contents must be consumed before the next call.
func TestPacketizerReadySliceIsReused(t *testing.T) {
	p := NewPacketizer(WorkerAddr(1, 1), 64)
	big := bytes.Repeat([]byte{1}, 120)
	first := p.Add(WorkerAddr(1, 2), big)
	if len(first) < 2 {
		t.Fatalf("expected a segment train, got %d frames", len(first))
	}
	firstFrame := first[0]
	second := p.Add(WorkerAddr(1, 2), big)
	if len(second) < 2 {
		t.Fatalf("expected a segment train, got %d frames", len(second))
	}
	if &first[0] != &second[0] {
		t.Fatal("ready slice was reallocated; expected reuse of the same backing array")
	}
	_ = firstFrame
}

// TestDepacketizerCompactsCompletedReassemblies verifies the eviction FIFO
// shrinks when reassemblies complete, so long-lived transports do not
// accumulate an unbounded tail of dead keys (the pre-fix behaviour).
func TestDepacketizerCompactsCompletedReassemblies(t *testing.T) {
	src := WorkerAddr(1, 1)
	dst := WorkerAddr(1, 2)
	p := NewPacketizer(src, 64)
	d := NewDepacketizer()
	big := bytes.Repeat([]byte{7}, 500)
	for i := 0; i < 100; i++ {
		delivered := 0
		for _, fr := range p.Add(dst, big) {
			ins, err := d.Feed(fr)
			if err != nil {
				t.Fatal(err)
			}
			delivered += len(ins)
		}
		if delivered != 1 {
			t.Fatalf("round %d delivered %d tuples", i, delivered)
		}
	}
	if n := d.PendingReassemblies(); n != 0 {
		t.Fatalf("%d reassemblies pending after completion", n)
	}
	if n := len(d.order); n != 0 {
		t.Fatalf("eviction FIFO holds %d dead keys after completion", n)
	}
}

// TestFrameBufPoolRecycles verifies Get/Put round-trips reuse capacity and
// that undersized buffers are rejected.
func TestFrameBufPoolRecycles(t *testing.T) {
	// Drain pool state from other tests.
	for i := 0; i < framePoolSize+1; i++ {
		GetFrameBuf()
	}
	b := GetFrameBuf()
	if cap(b) < frameBufCap {
		t.Fatalf("pool buffer cap %d < %d", cap(b), frameBufCap)
	}
	b = append(b, 1, 2, 3)
	PutFrameBuf(b)
	b2 := GetFrameBuf()
	if len(b2) != 0 {
		t.Fatal("recycled buffer not reset to zero length")
	}
	if &b[:1][0] != &b2[:1][0] {
		t.Fatal("recycled buffer not returned by next Get")
	}
	PutFrameBuf(make([]byte, 0, 16)) // too small: must be rejected
	b3 := GetFrameBuf()
	if cap(b3) < frameBufCap {
		t.Fatalf("undersized buffer entered the pool (cap %d)", cap(b3))
	}
}

// TestPacketizerSteadyStateAllocFree is the allocation regression guard for
// the egress fast path: once the pool is warm, staging a tuple and flushing
// a frame allocate nothing.
func TestPacketizerSteadyStateAllocFree(t *testing.T) {
	src := WorkerAddr(1, 1)
	dst := WorkerAddr(1, 2)
	p := NewPacketizer(src, 0)
	enc := bytes.Repeat([]byte{9}, 64)
	// Warm: populate the stage map, ready slice and buffer pool.
	for i := 0; i < 4; i++ {
		for _, fr := range p.FlushAll() {
			PutFrameBuf(fr)
		}
		p.Add(dst, enc)
	}
	if n := testing.AllocsPerRun(1000, func() {
		p.Add(dst, enc)
		for _, fr := range p.FlushAll() {
			PutFrameBuf(fr)
		}
	}); n != 0 {
		t.Fatalf("Add+FlushAll allocates %.2f per op in steady state", n)
	}
}

// TestDepacketizerMultiplexedAllocFree guards the ingress fast path: feeding
// a multiplexed frame yields tuples with zero allocations.
func TestDepacketizerMultiplexedAllocFree(t *testing.T) {
	src := WorkerAddr(1, 1)
	dst := WorkerAddr(1, 2)
	frame := EncodeTuples(dst, src, [][]byte{
		bytes.Repeat([]byte{1}, 32),
		bytes.Repeat([]byte{2}, 32),
	})
	d := NewDepacketizer()
	if _, err := d.Feed(frame); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(1000, func() {
		ins, err := d.Feed(frame)
		if err != nil || len(ins) != 2 {
			t.Fatalf("feed: %d tuples, err=%v", len(ins), err)
		}
	}); n != 0 {
		t.Fatalf("Feed allocates %.2f per multiplexed frame", n)
	}
}

// TestPacketizerEvictsIdleStages is the regression guard for the
// unbounded staged map: destinations that go quiet (placement churn, a
// crashed downstream) must be evicted after stageIdleFlushes FlushAll
// generations instead of pinning a stage entry forever.
func TestPacketizerEvictsIdleStages(t *testing.T) {
	src := WorkerAddr(1, 1)
	p := NewPacketizer(src, 0)
	enc := bytes.Repeat([]byte{7}, 32)
	const dsts = 10
	for i := 0; i < dsts; i++ {
		p.Add(WorkerAddr(2, uint32(i)), enc)
	}
	for _, fr := range p.FlushAll() {
		PutFrameBuf(fr)
	}
	if got := p.Stages(); got != dsts {
		t.Fatalf("Stages = %d after first flush, want %d", got, dsts)
	}
	// Only one destination stays live; the rest idle out.
	live := WorkerAddr(2, 0)
	for round := 0; round < stageIdleFlushes+2; round++ {
		p.Add(live, enc)
		for _, fr := range p.FlushAll() {
			PutFrameBuf(fr)
		}
	}
	if got := p.Stages(); got != 1 {
		t.Fatalf("Stages = %d after idle rounds, want 1 (idle stages not evicted)", got)
	}
	// The survivor still works.
	p.Add(live, enc)
	frames := p.FlushAll()
	if len(frames) != 1 {
		t.Fatalf("got %d frames from live stage, want 1", len(frames))
	}
	PutFrameBuf(frames[0])
}

package packet

// Frame buffer pool for the zero-alloc data path.
//
// The emit→switch→recv pipeline hands every frame slice off exactly once at
// each stage: the Packetizer builds a frame in a pooled buffer and gives it
// to the switch ingress ring; the switch enqueues each slice into at most
// one egress ring (replicated deliveries get their own pooled copies, see
// internal/switchfabric); the receiving transport recycles the slice after
// depacketizing. That unique-ownership protocol is what makes recycling
// safe: a buffer re-enters the pool only when no other goroutine can still
// reference it.
//
// PutFrameBuf is always discretionary — failing to recycle costs an
// allocation later, never correctness — so any path that cannot prove sole
// ownership (controller punts, frames handed to external sinks) simply
// drops its reference and lets the GC take the buffer.
//
// The pool is a bounded lock-free free list built on a buffered channel
// rather than sync.Pool: channel sends/receives of a []byte do not allocate,
// whereas sync.Pool's interface{} conversion would put a slice header on the
// heap per Put — exactly the per-frame allocation this pool exists to kill.

const (
	// frameBufCap sizes pooled buffers: the default payload budget plus
	// headroom for the frame header, segment header, trace annexes and
	// tunnel encapsulation, so steady-state appends never regrow.
	frameBufCap = DefaultMaxPayload + 512
	// framePoolSize bounds pooled buffers (memory ceiling ~4.3 MiB).
	framePoolSize = 512
)

var framePool = make(chan []byte, framePoolSize)

// GetFrameBuf returns an empty buffer with at least frameBufCap capacity,
// reusing a recycled one when available.
func GetFrameBuf() []byte {
	select {
	case b := <-framePool:
		return b[:0]
	default:
		return make([]byte, 0, frameBufCap)
	}
}

// PutFrameBuf recycles a frame buffer whose owner is done with it. Only the
// sole owner of the slice may call it (see the package comment); buffers of
// unusual size (segmented jumbo payloads, tiny control frames grown
// elsewhere) are dropped so Get's capacity contract holds.
func PutFrameBuf(b []byte) {
	if cap(b) < frameBufCap || cap(b) > 4*frameBufCap {
		return
	}
	select {
	case framePool <- b[:0]:
	default:
	}
}

// CopyFrame clones a frame into a uniquely-owned slice. The switch uses it
// to give replicated deliveries their own buffers. When the pool has a spare
// buffer the copy is allocation-free; when it is empty (deep egress rings can
// hold far more in-flight buffers than the pool ever will) the copy is
// exact-size rather than frameBufCap, so an overloaded fan-out path allocates
// bytes proportional to the frame, not the pool's headroom budget. Exact-size
// copies fail PutFrameBuf's capacity gate and simply die to the GC.
func CopyFrame(frame []byte) []byte {
	select {
	case b := <-framePool:
		return append(b[:0], frame...)
	default:
		cp := make([]byte, len(frame))
		copy(cp, frame)
		return cp
	}
}

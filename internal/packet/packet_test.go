package packet

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"typhoon/internal/tuple"
)

func TestAddrRoundTrip(t *testing.T) {
	a := WorkerAddr(7, 123456)
	if a.App() != 7 || a.Worker() != 123456 {
		t.Fatalf("addr round trip: app=%d worker=%d", a.App(), a.Worker())
	}
	if a.IsBroadcast() || a.IsController() {
		t.Fatal("worker addr misclassified")
	}
	if !Broadcast.IsBroadcast() || !ControllerAddr.IsController() {
		t.Fatal("special addrs misclassified")
	}
	if Broadcast.String() != "bcast" || ControllerAddr.String() != "ctrl" {
		t.Fatal("special addr rendering")
	}
	if a.String() != "app7/w123456" {
		t.Fatalf("addr string = %q", a.String())
	}
}

func TestEncodeDecodeTupleFrame(t *testing.T) {
	src, dst := WorkerAddr(1, 10), WorkerAddr(1, 20)
	a := tuple.Encode(tuple.New(tuple.String("hello")))
	b := tuple.Encode(tuple.New(tuple.Int(42)))
	raw := EncodeTuples(dst, src, [][]byte{a, b})

	f, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if f.Src != src || f.Dst != dst || f.EtherType != EtherType {
		t.Fatal("header mismatch")
	}
	if len(f.Tuples) != 2 || !bytes.Equal(f.Tuples[0], a) || !bytes.Equal(f.Tuples[1], b) {
		t.Fatal("payload mismatch")
	}
}

func TestPeekAddrsAndRewrite(t *testing.T) {
	src, dst := WorkerAddr(1, 10), WorkerAddr(1, 20)
	raw := EncodeTuples(dst, src, [][]byte{tuple.Encode(tuple.New(tuple.Int(1)))})
	d, s, ok := PeekAddrs(raw)
	if !ok || d != dst || s != src {
		t.Fatal("PeekAddrs mismatch")
	}
	if _, _, ok := PeekAddrs(raw[:5]); ok {
		t.Fatal("PeekAddrs on short frame should fail")
	}
	newDst := WorkerAddr(1, 30)
	if !RewriteDst(raw, newDst) {
		t.Fatal("RewriteDst failed")
	}
	d, _, _ = PeekAddrs(raw)
	if d != newDst {
		t.Fatal("RewriteDst did not take effect")
	}
	if RewriteDst(raw[:3], newDst) {
		t.Fatal("RewriteDst on short frame should fail")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err != ErrShortFrame {
		t.Fatalf("nil frame: %v", err)
	}
	raw := EncodeTuples(Broadcast, WorkerAddr(1, 1), [][]byte{{1, 2, 3}})
	raw[12], raw[13] = 0x08, 0x00 // IPv4 ethertype
	if _, err := Decode(raw); err != ErrBadEtherType {
		t.Fatalf("bad ethertype: %v", err)
	}
	raw = EncodeTuples(Broadcast, WorkerAddr(1, 1), [][]byte{{1, 2, 3}})
	if _, err := Decode(raw[:len(raw)-1]); err != ErrCorruptFrame {
		t.Fatalf("truncated payload: %v", err)
	}
	raw = EncodeTuples(Broadcast, WorkerAddr(1, 1), nil)
	raw[14] = 0x55 // unknown flags
	if _, err := Decode(raw); err == nil {
		t.Fatal("unknown flags should fail")
	}
}

func TestPacketizerMultiplexing(t *testing.T) {
	src := WorkerAddr(1, 1)
	dst := WorkerAddr(1, 2)
	p := NewPacketizer(src, 0)
	enc := tuple.Encode(tuple.New(tuple.String("abc")))
	for i := 0; i < 10; i++ {
		if frames := p.Add(dst, enc); len(frames) != 0 {
			t.Fatal("small adds should stage, not emit")
		}
	}
	if p.Pending() != 10 {
		t.Fatalf("pending = %d", p.Pending())
	}
	frames := p.FlushAll()
	if len(frames) != 1 {
		t.Fatalf("FlushAll emitted %d frames, want 1", len(frames))
	}
	f, err := Decode(frames[0])
	if err != nil || len(f.Tuples) != 10 {
		t.Fatalf("decoded %d tuples, err=%v", len(f.Tuples), err)
	}
	if p.Pending() != 0 {
		t.Fatal("staging not cleared")
	}
}

func TestPacketizerEmitsWhenFull(t *testing.T) {
	src, dst := WorkerAddr(1, 1), WorkerAddr(1, 2)
	p := NewPacketizer(src, 256)
	big := tuple.Encode(tuple.New(tuple.Bytes(make([]byte, 100))))
	var emitted int
	for i := 0; i < 10; i++ {
		emitted += len(p.Add(dst, big))
	}
	if emitted == 0 {
		t.Fatal("full staging buffer should emit frames")
	}
	emitted += len(p.FlushAll())
	dp := NewDepacketizer()
	// Re-run to count tuples: collect frames deterministically.
	p = NewPacketizer(src, 256)
	var frames [][]byte
	for i := 0; i < 10; i++ {
		frames = append(frames, p.Add(dst, big)...)
	}
	frames = append(frames, p.FlushAll()...)
	total := 0
	for _, fr := range frames {
		in, err := dp.Feed(fr)
		if err != nil {
			t.Fatal(err)
		}
		total += len(in)
	}
	if total != 10 {
		t.Fatalf("recovered %d tuples, want 10", total)
	}
}

func TestSegmentationReassembly(t *testing.T) {
	src, dst := WorkerAddr(1, 1), WorkerAddr(1, 2)
	p := NewPacketizer(src, 128)
	payload := make([]byte, 1000)
	rand.New(rand.NewSource(1)).Read(payload)
	enc := tuple.Encode(tuple.New(tuple.Bytes(payload)))
	frames := p.Add(dst, enc)
	if len(frames) < 2 {
		t.Fatalf("oversized tuple produced %d frames, want >=2", len(frames))
	}
	dp := NewDepacketizer()
	var out []Incoming
	for i, fr := range frames {
		in, err := dp.Feed(fr)
		if err != nil {
			t.Fatal(err)
		}
		if i < len(frames)-1 && len(in) != 0 {
			t.Fatal("tuple completed before last fragment")
		}
		out = append(out, in...)
	}
	if len(out) != 1 {
		t.Fatalf("reassembled %d tuples, want 1", len(out))
	}
	if !bytes.Equal(out[0].Data, enc) {
		t.Fatal("reassembled bytes differ")
	}
	tp, _, err := tuple.Decode(out[0].Data)
	if err != nil || !bytes.Equal(tp.Field(0).AsBytes(), payload) {
		t.Fatal("reassembled tuple does not decode")
	}
	if dp.PendingReassemblies() != 0 {
		t.Fatal("reassembly state not cleared")
	}
}

func TestSegmentOrderingAfterStagedTuples(t *testing.T) {
	// An oversized tuple must flush staged tuples first to keep ordering.
	src, dst := WorkerAddr(1, 1), WorkerAddr(1, 2)
	p := NewPacketizer(src, 128)
	small := tuple.Encode(tuple.New(tuple.Int(1)))
	p.Add(dst, small)
	big := tuple.Encode(tuple.New(tuple.Bytes(make([]byte, 500))))
	frames := p.Add(dst, big)
	if len(frames) < 2 {
		t.Fatalf("got %d frames", len(frames))
	}
	f0, err := Decode(frames[0])
	if err != nil || f0.Segment != nil || len(f0.Tuples) != 1 {
		t.Fatal("first frame should carry the staged small tuple")
	}
}

func TestDepacketizerDuplicateAndCorruptSegments(t *testing.T) {
	src, dst := WorkerAddr(1, 1), WorkerAddr(1, 2)
	p := NewPacketizer(src, 128)
	enc := tuple.Encode(tuple.New(tuple.Bytes(make([]byte, 300))))
	frames := p.Add(dst, enc)
	dp := NewDepacketizer()
	// Duplicate first fragment: must be idempotent.
	if _, err := dp.Feed(frames[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := dp.Feed(frames[0]); err != nil {
		t.Fatal(err)
	}
	var got int
	for _, fr := range frames[1:] {
		in, err := dp.Feed(fr)
		if err != nil {
			t.Fatal(err)
		}
		got += len(in)
	}
	if got != 1 {
		t.Fatalf("reassembled %d, want 1", got)
	}
	// Zero-count segment is corrupt.
	bad := EncodeSegment(dst, src, Segment{ID: 9, Index: 0, Count: 0, Data: []byte("x")})
	if _, err := dp.Feed(bad); err != ErrCorruptFrame {
		t.Fatalf("zero-count segment: %v", err)
	}
	// Mismatched count across fragments of the same ID is corrupt.
	a := EncodeSegment(dst, src, Segment{ID: 10, Index: 0, Count: 3, Data: []byte("x")})
	b := EncodeSegment(dst, src, Segment{ID: 10, Index: 1, Count: 4, Data: []byte("y")})
	if _, err := dp.Feed(a); err != nil {
		t.Fatal(err)
	}
	if _, err := dp.Feed(b); err != ErrCorruptFrame {
		t.Fatalf("mismatched count: %v", err)
	}
}

func TestReassemblyEviction(t *testing.T) {
	src, dst := WorkerAddr(1, 1), WorkerAddr(1, 2)
	dp := NewDepacketizer()
	for i := 0; i < maxReassemblies+10; i++ {
		fr := EncodeSegment(dst, src, Segment{ID: uint32(i), Index: 0, Count: 2, Data: []byte("x")})
		if _, err := dp.Feed(fr); err != nil {
			t.Fatal(err)
		}
	}
	if dp.PendingReassemblies() > maxReassemblies {
		t.Fatalf("pending %d exceeds cap %d", dp.PendingReassemblies(), maxReassemblies)
	}
}

func TestPropertyPacketizerLossless(t *testing.T) {
	// Any mix of tuple sizes and destinations round-trips losslessly and
	// in order per destination.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := WorkerAddr(1, 99)
		dsts := []Addr{WorkerAddr(1, 1), WorkerAddr(1, 2), WorkerAddr(1, 3)}
		p := NewPacketizer(src, 64+r.Intn(512))
		type sent struct {
			dst Addr
			enc []byte
		}
		var all []sent
		var frames [][]byte
		n := 1 + r.Intn(60)
		for i := 0; i < n; i++ {
			dst := dsts[r.Intn(len(dsts))]
			b := make([]byte, r.Intn(700))
			r.Read(b)
			enc := tuple.Encode(tuple.New(tuple.Bytes(b), tuple.Int(int64(i))))
			all = append(all, sent{dst, enc})
			frames = append(frames, p.Add(dst, enc)...)
		}
		frames = append(frames, p.FlushAll()...)
		dp := NewDepacketizer()
		gotPerDst := map[Addr][][]byte{}
		for _, fr := range frames {
			in, err := dp.Feed(fr)
			if err != nil {
				return false
			}
			for _, inc := range in {
				cp := make([]byte, len(inc.Data))
				copy(cp, inc.Data)
				gotPerDst[inc.Dst] = append(gotPerDst[inc.Dst], cp)
			}
		}
		wantPerDst := map[Addr][][]byte{}
		for _, s := range all {
			wantPerDst[s.dst] = append(wantPerDst[s.dst], s.enc)
		}
		for dst, want := range wantPerDst {
			got := gotPerDst[dst]
			if len(got) != len(want) {
				return false
			}
			for i := range want {
				if !bytes.Equal(got[i], want[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Package packet implements the Typhoon data-plane frame format of Fig 5:
// Ethernet-style frames with a custom EtherType whose source/destination
// addresses are worker IDs prefixed by the application (topology) ID.
//
// The package provides frame encoding/decoding, a Packetizer that multiplexes
// small tuples into shared frames and segments large tuples across frames,
// and a Depacketizer that reverses both, mirroring the southbound transport
// library of the prototype.
//
// Frames can additionally carry an optional tuple-path trace annex (see
// trace.go) between the header and the payload: sampled frames accumulate a
// hop record at every stage they traverse — emission, switch ingress, rule
// match, egress or tunnel, controller punt, worker dequeue — which the
// observability layer (internal/observe) collects into end-to-end traces.
package packet

import (
	"encoding/binary"
	"fmt"
)

// EtherType is the custom EtherType carried by all Typhoon frames so SDN
// switches can match them without IPv4 wildcards (paper §3.4).
const EtherType uint16 = 0xFFFF

// Addr is a 6-byte worker address: a 2-byte application (topology) ID prefix
// followed by a 4-byte worker ID, taking the place of a MAC address.
type Addr [6]byte

// Broadcast is the destination address used for one-to-many transfer; the
// switch replicates matching frames to every destination port.
var Broadcast = Addr{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}

// ControllerAddr is the pseudo-address workers use to reach the SDN
// controller (the dl_dst of worker→controller rules in Table 3).
var ControllerAddr = Addr{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFE}

// WorkerAddr builds the address of worker id within application app.
func WorkerAddr(app uint16, worker uint32) Addr {
	var a Addr
	binary.BigEndian.PutUint16(a[0:2], app)
	binary.BigEndian.PutUint32(a[2:6], worker)
	return a
}

// App returns the application ID prefix of the address.
func (a Addr) App() uint16 { return binary.BigEndian.Uint16(a[0:2]) }

// Worker returns the worker ID portion of the address.
func (a Addr) Worker() uint32 { return binary.BigEndian.Uint32(a[2:6]) }

// IsBroadcast reports whether the address is the broadcast address.
func (a Addr) IsBroadcast() bool { return a == Broadcast }

// IsController reports whether the address is the controller pseudo-address.
func (a Addr) IsController() bool { return a == ControllerAddr }

// String renders the address in MAC-like notation.
func (a Addr) String() string {
	if a.IsBroadcast() {
		return "bcast"
	}
	if a.IsController() {
		return "ctrl"
	}
	return fmt.Sprintf("app%d/w%d", a.App(), a.Worker())
}

package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// HeaderLen is the size of the frame header: dst(6) src(6) ethertype(2)
// flags(1) — the low flag bits distinguish multiplexed-tuple payloads from
// segment payloads; the high bit marks an optional trace annex (trace.go)
// between the header and the payload.
const HeaderLen = 6 + 6 + 2 + 1

// Frame payload flavours (low bits of the flags byte).
const (
	flagTuples  = 0x00 // payload is a sequence of length-prefixed tuples
	flagSegment = 0x01 // payload is one fragment of a segmented tuple

	flagKindMask = 0x7F // payload flavour bits (flagTraced is the high bit)
)

// segHeaderLen is the extra header inside segment payloads:
// segID(4) index(2) count(2) fragLen(4).
const segHeaderLen = 4 + 2 + 2 + 4

// DefaultMaxPayload is the default frame payload capacity. The prototype
// runs on DPDK with jumbo-capable rings; 8 KiB keeps segmentation exercised
// without making it the common case.
const DefaultMaxPayload = 8192

// Frame is a decoded Typhoon data-plane frame.
type Frame struct {
	Dst       Addr
	Src       Addr
	EtherType uint16
	// Segment is non-nil when the frame carries one fragment of a large
	// tuple; Tuples is then empty.
	Segment *Segment
	// Tuples holds the encoded bytes of each multiplexed tuple. The slices
	// alias the decode buffer.
	Tuples [][]byte
	// Trace is the decoded trace annex of a sampled frame, nil otherwise.
	Trace *TraceAnnex
}

// Segment describes one fragment of a tuple too large for a single frame.
type Segment struct {
	ID    uint32 // per-sender segmented-tuple sequence number
	Index uint16 // fragment index, 0-based
	Count uint16 // total number of fragments
	Data  []byte // fragment payload
}

// Errors returned by Decode.
var (
	ErrShortFrame    = errors.New("packet: frame shorter than header")
	ErrBadEtherType  = errors.New("packet: unexpected ethertype")
	ErrCorruptFrame  = errors.New("packet: corrupt frame payload")
	ErrOversizeTuple = errors.New("packet: tuple exceeds segment limits")
)

// EncodeTuples builds a frame carrying the given pre-encoded tuples, which
// must jointly fit the payload budget (the Packetizer guarantees this).
func EncodeTuples(dst, src Addr, encoded [][]byte) []byte {
	size := HeaderLen
	for _, e := range encoded {
		size += 4 + len(e)
	}
	buf := make([]byte, 0, size)
	buf = appendHeader(buf, dst, src, flagTuples)
	for _, e := range encoded {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e)))
		buf = append(buf, e...)
	}
	return buf
}

// EncodeSegment builds a frame carrying one fragment of a segmented tuple.
func EncodeSegment(dst, src Addr, seg Segment) []byte {
	return appendSegment(make([]byte, 0, HeaderLen+segHeaderLen+len(seg.Data)), dst, src, seg)
}

// appendSegment appends a segment frame to buf (the zero-alloc path when buf
// comes from the frame pool).
func appendSegment(buf []byte, dst, src Addr, seg Segment) []byte {
	buf = appendHeader(buf, dst, src, flagSegment)
	buf = binary.LittleEndian.AppendUint32(buf, seg.ID)
	buf = binary.LittleEndian.AppendUint16(buf, seg.Index)
	buf = binary.LittleEndian.AppendUint16(buf, seg.Count)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(seg.Data)))
	buf = append(buf, seg.Data...)
	return buf
}

func appendHeader(buf []byte, dst, src Addr, flags byte) []byte {
	buf = append(buf, dst[:]...)
	buf = append(buf, src[:]...)
	buf = binary.BigEndian.AppendUint16(buf, EtherType)
	buf = append(buf, flags)
	return buf
}

// TupleCount reports how many tuples a raw frame carries without decoding
// any of them: a multiplexed frame is walked by its length prefixes, a
// segment frame counts as 1 (one fragment of one tuple), and a trace annex
// is skipped. Malformed frames report 0. The trace path uses it to record
// one hop per batch frame annotated with the batch's population.
func TupleCount(raw []byte) int {
	if len(raw) < HeaderLen {
		return 0
	}
	flags := raw[14]
	body := raw[HeaderLen:]
	if flags&flagTraced != 0 {
		if len(body) < 2 {
			return 0
		}
		n := int(binary.LittleEndian.Uint16(body))
		if n > len(body)-2 {
			return 0
		}
		body = body[2+n:]
	}
	if flags&flagKindMask == flagSegment {
		return 1
	}
	count := 0
	for len(body) > 0 {
		if len(body) < 4 {
			return 0
		}
		n := int(binary.LittleEndian.Uint32(body))
		body = body[4:]
		if n > len(body) {
			return 0
		}
		body = body[n:]
		count++
	}
	return count
}

// PeekAddrs extracts the destination and source addresses without a full
// decode; the switch data path matches on these fields only.
func PeekAddrs(raw []byte) (dst, src Addr, ok bool) {
	if len(raw) < HeaderLen {
		return dst, src, false
	}
	copy(dst[:], raw[0:6])
	copy(src[:], raw[6:12])
	if binary.BigEndian.Uint16(raw[12:14]) != EtherType {
		return dst, src, false
	}
	return dst, src, true
}

// RewriteDst overwrites the destination address in place. The SDN load
// balancer (paper §4) uses this in switch group buckets.
func RewriteDst(raw []byte, dst Addr) bool {
	if len(raw) < HeaderLen {
		return false
	}
	copy(raw[0:6], dst[:])
	return true
}

// Decode parses raw into a Frame. Tuple and segment slices alias raw.
func Decode(raw []byte) (Frame, error) { return decodeInto(raw, nil) }

// decodeInto is Decode with a caller-supplied tuple-slice scratch so the hot
// receive path (Depacketizer.Feed) avoids growing a fresh Tuples slice per
// frame.
func decodeInto(raw []byte, tuples [][]byte) (Frame, error) {
	if len(raw) < HeaderLen {
		return Frame{}, ErrShortFrame
	}
	var f Frame
	copy(f.Dst[:], raw[0:6])
	copy(f.Src[:], raw[6:12])
	f.EtherType = binary.BigEndian.Uint16(raw[12:14])
	if f.EtherType != EtherType {
		return Frame{}, ErrBadEtherType
	}
	flags := raw[14]
	body := raw[HeaderLen:]
	if flags&flagTraced != 0 {
		if len(body) < 2 {
			return Frame{}, ErrCorruptFrame
		}
		n := int(binary.LittleEndian.Uint16(body))
		if n > len(body)-2 {
			return Frame{}, ErrCorruptFrame
		}
		annex, err := decodeTraceAnnex(body[2 : 2+n])
		if err != nil {
			return Frame{}, ErrCorruptFrame
		}
		f.Trace = &annex
		body = body[2+n:]
	}
	switch flags & flagKindMask {
	case flagTuples:
		f.Tuples = tuples
		for len(body) > 0 {
			if len(body) < 4 {
				return Frame{}, ErrCorruptFrame
			}
			n := int(binary.LittleEndian.Uint32(body))
			body = body[4:]
			if n > len(body) {
				return Frame{}, ErrCorruptFrame
			}
			f.Tuples = append(f.Tuples, body[:n])
			body = body[n:]
		}
	case flagSegment:
		if len(body) < segHeaderLen {
			return Frame{}, ErrCorruptFrame
		}
		seg := Segment{
			ID:    binary.LittleEndian.Uint32(body),
			Index: binary.LittleEndian.Uint16(body[4:]),
			Count: binary.LittleEndian.Uint16(body[6:]),
		}
		n := int(binary.LittleEndian.Uint32(body[8:]))
		if n != len(body)-segHeaderLen {
			return Frame{}, ErrCorruptFrame
		}
		seg.Data = body[segHeaderLen:]
		f.Segment = &seg
	default:
		return Frame{}, fmt.Errorf("packet: unknown frame flags %#x", flags)
	}
	return f, nil
}

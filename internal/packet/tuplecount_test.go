package packet

import "testing"

func TestTupleCountMultiplexed(t *testing.T) {
	dst, src := WorkerAddr(1, 2), WorkerAddr(1, 1)
	for _, n := range []int{0, 1, 3, 100} {
		encoded := make([][]byte, n)
		for i := range encoded {
			encoded[i] = []byte{1, 2, 3, byte(i)}
		}
		raw := EncodeTuples(dst, src, encoded)
		if got := TupleCount(raw); got != n {
			t.Fatalf("TupleCount = %d, want %d", got, n)
		}
	}
}

func TestTupleCountZeroTupleFrameDecodes(t *testing.T) {
	// A header-only tuples frame is legal on the wire: zero tuples, no
	// error, nothing delivered.
	raw := EncodeTuples(WorkerAddr(1, 2), WorkerAddr(1, 1), nil)
	if got := TupleCount(raw); got != 0 {
		t.Fatalf("TupleCount = %d, want 0", got)
	}
	d := NewDepacketizer()
	ins, err := d.Feed(raw)
	if err != nil || len(ins) != 0 {
		t.Fatalf("Feed of zero-tuple frame: %d tuples, err %v", len(ins), err)
	}
}

func TestTupleCountTraced(t *testing.T) {
	raw := EncodeTuples(WorkerAddr(1, 2), WorkerAddr(1, 1), [][]byte{{9}, {8}})
	traced := WithTrace(raw, TraceAnnex{ID: 42, Hops: []TraceHop{{Kind: HopEmit, Actor: 1, Detail: 2}}})
	if got := TupleCount(traced); got != 2 {
		t.Fatalf("TupleCount of traced frame = %d, want 2", got)
	}
}

func TestTupleCountSegment(t *testing.T) {
	raw := EncodeSegment(WorkerAddr(1, 2), WorkerAddr(1, 1), Segment{ID: 1, Index: 0, Count: 3, Data: []byte{1, 2}})
	if got := TupleCount(raw); got != 1 {
		t.Fatalf("TupleCount of segment frame = %d, want 1", got)
	}
}

func TestTupleCountMalformed(t *testing.T) {
	good := EncodeTuples(WorkerAddr(1, 2), WorkerAddr(1, 1), [][]byte{{1, 2, 3, 4, 5}})
	for _, raw := range [][]byte{
		nil,
		good[:HeaderLen-1], // shorter than a header
		good[:len(good)-2], // cut mid-tuple
		good[:HeaderLen+2], // cut mid-length-prefix
	} {
		if got := TupleCount(raw); got != 0 {
			t.Fatalf("TupleCount of malformed frame = %d, want 0", got)
		}
	}
}

// TestPacketizerStageCacheEviction pins the memoized-stage invalidation:
// after idle eviction removes the cached destination, the next Add must not
// resurrect the stale stage pointer.
func TestPacketizerStageCacheEviction(t *testing.T) {
	src, dst := WorkerAddr(1, 1), WorkerAddr(1, 2)
	p := NewPacketizer(src, 0)
	p.Add(dst, []byte{1, 2, 3})
	for _, fr := range p.FlushAll() {
		PutFrameBuf(fr)
	}
	for i := 0; i < stageIdleFlushes+2; i++ {
		for _, fr := range p.FlushAll() {
			PutFrameBuf(fr)
		}
	}
	if p.Stages() != 0 {
		t.Fatalf("idle stage not evicted: %d stages", p.Stages())
	}
	p.Add(dst, []byte{4, 5, 6})
	if p.Pending() != 1 {
		t.Fatalf("pending = %d after post-eviction Add, want 1", p.Pending())
	}
	frames := p.FlushAll()
	if len(frames) != 1 {
		t.Fatalf("flushed %d frames, want 1", len(frames))
	}
	if got := TupleCount(frames[0]); got != 1 {
		t.Fatalf("flushed frame carries %d tuples, want 1", got)
	}
	PutFrameBuf(frames[0])
}
